package main

// End-to-end observability tests: scrape /metrics and /debug/pprof from a
// LIVE CLI run held open on a stdin pipe, and pin the abort-path summary
// bugfix (bad-record/retry counts survive an aborted run because every exit
// path prints from the telemetry registry).

import (
	"bytes"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// scrape GETs a path from the live telemetry server and returns the body.
func scrape(t *testing.T, addr, path string) string {
	t.Helper()
	resp, err := http.Get("http://" + addr + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: reading body: %v", path, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d\n%s", path, resp.StatusCode, body)
	}
	return string(body)
}

// TestRunTelemetryLiveScrape starts the CLI on a stdin pipe with
// -telemetry-addr 127.0.0.1:0, discovers the bound port through the
// telemetryStarted hook, and — while the run is still streaming — scrapes
// /metrics and /debug/vars and takes a 1-second CPU profile from
// /debug/pprof. This is the acceptance walkthrough of OBSERVABILITY.md run
// for real.
func TestRunTelemetryLiveScrape(t *testing.T) {
	addrCh := make(chan string, 1)
	telemetryStarted = func(addr string) { addrCh <- addr }
	defer func() { telemetryStarted = nil }()

	pr, pw := io.Pipe()
	var out bytes.Buffer
	errCh := make(chan error, 1)
	go func() {
		errCh <- run([]string{
			"-input", "-", "-window", "6", "-support", "2", "-vuln", "1",
			"-epsilon", "0.5", "-delta", "0.3", "-scheme", "basic",
			"-publish-every", "3",
			"-telemetry-addr", "127.0.0.1:0",
		}, pr, &out)
	}()

	var addr string
	select {
	case addr = <-addrCh:
	case err := <-errCh:
		t.Fatalf("run exited before telemetry came up: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("telemetry server never started")
	}

	// Feed enough transactions to fill the window and publish a few times,
	// keeping stdin OPEN so the run stays live while we scrape.
	if _, err := io.WriteString(pw, strings.Repeat("a b c\na b\nb c\n", 5)); err != nil {
		t.Fatal(err)
	}

	// The pipeline consumes stdin asynchronously; poll until the ingest
	// counter is visible on /metrics.
	deadline := time.Now().Add(10 * time.Second)
	var metrics string
	for {
		metrics = scrape(t, addr, "/metrics")
		if strings.Contains(metrics, "butterfly_windows_published_total") &&
			!strings.Contains(metrics, "butterfly_records_total 0\n") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("/metrics never showed ingest progress:\n%s", metrics)
		}
		time.Sleep(10 * time.Millisecond)
	}
	for _, want := range []string{
		"# TYPE butterfly_records_total counter",
		"# TYPE butterfly_stage_seconds histogram",
		`butterfly_stage_seconds_bucket{stage="mine",le="+Inf"}`,
		"# TYPE butterfly_privacy_avg_prig gauge",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q:\n%s", want, metrics)
		}
	}

	if vars := scrape(t, addr, "/debug/vars"); !strings.Contains(vars, `"butterfly_records_total"`) {
		t.Errorf("/debug/vars missing the records counter:\n%s", vars)
	}

	// Acceptance criterion: /debug/pprof/profile returns a valid CPU
	// profile DURING a run. Profiles are gzip-compressed protobuf; check
	// the gzip magic rather than parsing.
	profile := scrape(t, addr, "/debug/pprof/profile?seconds=1")
	if len(profile) < 2 || profile[0] != 0x1f || profile[1] != 0x8b {
		t.Errorf("/debug/pprof/profile did not return a gzip pprof payload (got %d bytes)", len(profile))
	}

	// Close stdin: the stream drains, the run finishes, the server shuts
	// down gracefully.
	pw.Close()
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("run failed: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not finish after stdin closed")
	}
	if !strings.Contains(out.String(), "window(s) published over 15 records") {
		t.Errorf("summary wrong:\n%s", out.String())
	}
	if _, err := http.Get("http://" + addr + "/metrics"); err == nil {
		t.Error("telemetry server still serving after the run ended")
	}
}

// TestRunAbortSummaryCounts pins the abort-path bugfix: a run that dies on
// an exhausted bad-record budget still prints the full summary — including
// the bad-record count — to stdout, sourced from the telemetry registry.
func TestRunAbortSummaryCounts(t *testing.T) {
	in := strings.Repeat("a b c\na b\nb c\n", 4) +
		"bad\x00one\n" + "a b\n" + "bad\x00two\n" + strings.Repeat("a b\n", 3)
	var out bytes.Buffer
	err := run([]string{
		"-input", "-", "-window", "6", "-support", "2", "-vuln", "1",
		"-epsilon", "0.5", "-delta", "0.3", "-scheme", "basic",
		"-max-bad-records", "1", // the second bad line exhausts the budget
	}, strings.NewReader(in), &out)
	if err == nil {
		t.Fatalf("run survived an exhausted bad-record budget:\n%s", out.String())
	}
	got := out.String()
	if !strings.Contains(got, "# aborted") {
		t.Errorf("aborted run did not print the aborted summary header:\n%s", got)
	}
	// Both bad records were seen (the second one killed the run) and both
	// must be reported — this count was silently dropped before the
	// summary was unified onto the telemetry registry.
	if !strings.Contains(got, "2 malformed record(s) skipped") {
		t.Errorf("aborted summary missing the bad-record count:\n%s", got)
	}
	if !strings.Contains(got, "line 13") {
		t.Errorf("aborted summary missing quarantine detail:\n%s", got)
	}
}

// TestRunLogJSON checks that -log-json switches status lines to structured
// one-object-per-line JSON on stderr while stdout stays untouched.
func TestRunLogJSON(t *testing.T) {
	// Capture stderr by swapping os.Stderr is invasive; instead drive the
	// statusLogger directly in both modes and check the framing the CLI
	// wires up behind -log-json.
	var plainBuf, jsonBuf bytes.Buffer
	plain := newStatusLoggerTo(&plainBuf, false)
	plain.Warn("checkpoint skipped", "path", "x.bfck")
	if got := plainBuf.String(); !strings.HasPrefix(got, "butterfly: checkpoint skipped") ||
		!strings.Contains(got, `path=x.bfck`) {
		t.Errorf("plain status line wrong: %q", got)
	}
	jl := newStatusLoggerTo(&jsonBuf, true)
	jl.Info("telemetry listening", "addr", "127.0.0.1:1")
	line := jsonBuf.String()
	if !strings.HasPrefix(line, "{") || !strings.Contains(line, `"msg":"telemetry listening"`) ||
		!strings.Contains(line, `"addr":"127.0.0.1:1"`) {
		t.Errorf("json status line wrong: %q", line)
	}
	if n := strings.Count(strings.TrimSpace(line), "\n"); n != 0 {
		t.Errorf("json status emitted %d extra newlines: %q", n+1, line)
	}
}
