package main

// End-to-end tracing tests: the /debug/trace/events endpoint on a LIVE run,
// the -trace-out flush on the clean and aborted exit paths, and flag
// validation for the tracer knobs.

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// chromeTraceDoc mirrors the Chrome trace-event envelope for decoding in
// assertions.
type chromeTraceDoc struct {
	DisplayTimeUnit string `json:"displayTimeUnit"`
	TraceEvents     []struct {
		Name string         `json:"name"`
		Cat  string         `json:"cat"`
		Ph   string         `json:"ph"`
		Tid  uint64         `json:"tid"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
}

// decodeTrace parses Chrome trace-event JSON, failing the test on anything
// malformed — the format Perfetto loads is the acceptance criterion.
func decodeTrace(t *testing.T, data string) chromeTraceDoc {
	t.Helper()
	var doc chromeTraceDoc
	if err := json.Unmarshal([]byte(data), &doc); err != nil {
		t.Fatalf("invalid Chrome trace-event JSON: %v\n%s", err, data)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q, want ms", doc.DisplayTimeUnit)
	}
	return doc
}

// stageNames collects the stage-category event names of a trace, with
// multiplicity.
func stageNames(doc chromeTraceDoc) map[string]int {
	names := map[string]int{}
	for _, ev := range doc.TraceEvents {
		if ev.Cat == "stage" {
			names[ev.Name]++
		}
	}
	return names
}

// TestRunTraceLiveEndpoint scrapes /debug/trace/events from a live CLI run
// held open on a stdin pipe — the `curl` of the acceptance criteria — and
// checks the payload is complete, valid Chrome trace-event JSON.
func TestRunTraceLiveEndpoint(t *testing.T) {
	addrCh := make(chan string, 1)
	telemetryStarted = func(addr string) { addrCh <- addr }
	defer func() { telemetryStarted = nil }()

	pr, pw := io.Pipe()
	var out bytes.Buffer
	errCh := make(chan error, 1)
	go func() {
		errCh <- run([]string{
			"-input", "-", "-window", "6", "-support", "2", "-vuln", "1",
			"-epsilon", "0.5", "-delta", "0.3", "-scheme", "basic",
			"-publish-every", "3",
			"-telemetry-addr", "127.0.0.1:0",
		}, pr, &out)
	}()

	var addr string
	select {
	case addr = <-addrCh:
	case err := <-errCh:
		t.Fatalf("run exited before telemetry came up: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("telemetry server never started")
	}

	if _, err := io.WriteString(pw, strings.Repeat("a b c\na b\nb c\n", 5)); err != nil {
		t.Fatal(err)
	}

	// Poll the trace endpoint until a committed window shows up.
	deadline := time.Now().Add(10 * time.Second)
	var doc chromeTraceDoc
	for {
		doc = decodeTrace(t, scrape(t, addr, "/debug/trace/events"))
		if len(doc.TraceEvents) > 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("/debug/trace/events never showed a committed window")
		}
		time.Sleep(10 * time.Millisecond)
	}
	names := stageNames(doc)
	for _, want := range []string{"source", "mine", "perturb", "emit", "bias.opt", "cache"} {
		if names[want] == 0 {
			t.Errorf("live trace has no %q stage span (stages: %v)", want, names)
		}
	}
	var window6 bool
	for _, ev := range doc.TraceEvents {
		if ev.Cat == "window" && ev.Tid == 6 {
			window6 = true
			if ev.Args["window"] != float64(6) {
				t.Errorf("window root args = %v, want window=6", ev.Args)
			}
		}
	}
	if !window6 {
		t.Errorf("live trace missing the first window's root span (position 6)")
	}

	// The flight-recorder metrics registered alongside: the slowest-window
	// gauge and the span histograms are on /metrics.
	metrics := scrape(t, addr, "/metrics")
	for _, want := range []string{
		"# TYPE butterfly_trace_slowest_window_seconds gauge",
		`butterfly_trace_span_seconds_bucket{span="window",le="+Inf"}`,
		`butterfly_trace_span_seconds_bucket{span="perturb",le="+Inf"}`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	pw.Close()
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("run failed: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not finish after stdin closed")
	}
}

// TestRunTraceOutCleanExit: a clean run writes -trace-out at exit and
// reports the path in the summary.
func TestRunTraceOutCleanExit(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	var out bytes.Buffer
	err := run([]string{
		"-gen", "webview", "-n", "400", "-window", "300", "-support", "10",
		"-vuln", "5", "-epsilon", "0.1", "-delta", "0.4",
		"-publish-every", "100", "-workers", "2",
		"-trace-out", path,
	}, strings.NewReader(""), &out)
	if err != nil {
		t.Fatalf("run failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "# trace: "+path) {
		t.Errorf("summary does not report the trace path:\n%s", out.String())
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("trace file not written: %v", err)
	}
	doc := decodeTrace(t, string(b))
	var windows int
	for _, ev := range doc.TraceEvents {
		if ev.Cat == "window" {
			windows++
		}
	}
	if windows != 2 { // positions 300 and 400
		t.Errorf("trace file holds %d windows, want 2", windows)
	}
	names := stageNames(doc)
	for _, want := range []string{"source", "mine", "perturb", "emit"} {
		if names[want] != 2 {
			t.Errorf("trace file has %d %q spans, want 2 (stages: %v)", names[want], want, names)
		}
	}
}

// TestRunTraceOutAbortExit pins the small-fix satellite: an ABORTED run
// still flushes -trace-out — including the window whose emission failed —
// and the aborted summary names the path. The abort is a deterministic
// emit-side failure: the first window's audit dump collides with a
// directory planted at its path.
func TestRunTraceOutAbortExit(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	dumpDir := t.TempDir()
	if err := os.Mkdir(filepath.Join(dumpDir, "window-6.txt"), 0o755); err != nil {
		t.Fatal(err)
	}
	in := strings.Repeat("a b c\na b\nb c\n", 4)
	var out bytes.Buffer
	err := run([]string{
		"-input", "-", "-window", "6", "-support", "2", "-vuln", "1",
		"-epsilon", "0.5", "-delta", "0.3", "-scheme", "basic",
		"-publish-every", "3",
		"-dump-dir", dumpDir,
		"-trace-out", path,
	}, strings.NewReader(in), &out)
	if err == nil {
		t.Fatalf("run survived an unwritable window dump:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "# aborted") {
		t.Errorf("aborted summary header missing:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "# trace: "+path) {
		t.Errorf("aborted summary does not report the trace path:\n%s", out.String())
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("aborted run did not flush the trace file: %v", err)
	}
	doc := decodeTrace(t, string(b))
	var windows int
	for _, ev := range doc.TraceEvents {
		if ev.Cat == "window" {
			windows++
		}
	}
	if windows == 0 {
		t.Errorf("aborted trace dump holds no windows; the pre-abort windows were dropped:\n%s", b)
	}
}

// TestRunTraceFlagValidation: the tracer knobs reject nonsense up front.
func TestRunTraceFlagValidation(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-gen", "webview", "-n", "10", "-window", "5",
		"-trace-windows", "0",
	}, strings.NewReader(""), &out)
	if err == nil || !strings.Contains(err.Error(), "-trace-windows") {
		t.Errorf("zero -trace-windows accepted (err: %v)", err)
	}
}
