// Command butterfly runs the full output-privacy pipeline of the paper over
// a transaction stream: sliding-window frequent-itemset mining (Moment-style
// incremental miner) followed by Butterfly perturbation, publishing
// sanitized frequent itemsets window by window.
//
// Input is either a file/stdin in the conventional one-transaction-per-line
// format (whitespace-separated item tokens) or a built-in synthetic stream:
//
//	butterfly -input transactions.dat -window 2000 -support 25
//	butterfly -gen webview -n 10000 -publish-every 500 -scheme hybrid
//
// Records are consumed incrementally — a file larger than memory or an
// unbounded stdin stream both work. Malformed input lines are rejected by
// default; -max-bad-records N skips and quarantines up to N of them (-1 for
// no limit). Transient sink failures are retried with exponential backoff
// (-emit-retries), and -window-timeout bounds how long any one window may
// take end to end.
//
// On SIGINT or SIGTERM the stream is drained gracefully: in-flight windows
// finish publishing, then a partial-run summary prints. A second signal
// aborts immediately.
//
// Each published window prints the top itemsets with SANITIZED supports —
// the only supports that ever leave the system.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/pipeline"
)

// flagValues collects the numeric/durability flags for up-front validation.
type flagValues struct {
	n, window, support, vuln        int
	publishEvery, top, workers      int
	maxBadRecords, emitRetries      int
	windowTimeout                   time.Duration
	checkpointDir                   string
	checkpointEvery, checkpointKeep int
	resume                          bool
	input                           string
}

// validateFlags rejects flag values that would otherwise surface as
// undefined behavior deep inside the run — a clear usage error at startup
// instead.
func validateFlags(v flagValues) error {
	if v.n <= 0 {
		return fmt.Errorf("-n %d must be >= 1", v.n)
	}
	if v.window <= 0 {
		return fmt.Errorf("-window %d must be >= 1", v.window)
	}
	if v.support <= 0 {
		return fmt.Errorf("-support %d must be >= 1", v.support)
	}
	if v.vuln <= 0 {
		return fmt.Errorf("-vuln %d must be >= 1", v.vuln)
	}
	if v.publishEvery < 0 {
		return fmt.Errorf("-publish-every %d must be >= 0 (0: publish once, at the end)", v.publishEvery)
	}
	if v.top < 0 {
		return fmt.Errorf("-top %d must be >= 0 (0: print all)", v.top)
	}
	if v.workers < 1 {
		return fmt.Errorf("-workers %d must be >= 1", v.workers)
	}
	if v.maxBadRecords < -1 {
		return fmt.Errorf("-max-bad-records %d must be -1 (unlimited), 0 (fail fast) or a positive budget", v.maxBadRecords)
	}
	if v.emitRetries < 0 {
		return fmt.Errorf("-emit-retries %d must be >= 0", v.emitRetries)
	}
	if v.windowTimeout < 0 {
		return fmt.Errorf("-window-timeout %v must be >= 0 (0: disabled)", v.windowTimeout)
	}
	if v.checkpointDir != "" && v.checkpointEvery <= 0 {
		return fmt.Errorf("-checkpoint-every %d must be >= 1", v.checkpointEvery)
	}
	if v.checkpointDir != "" && v.checkpointKeep < 1 {
		return fmt.Errorf("-checkpoint-keep %d must be >= 1", v.checkpointKeep)
	}
	if v.resume && v.checkpointDir == "" {
		return fmt.Errorf("-resume requires -checkpoint-dir")
	}
	if v.resume && v.input == "-" {
		return fmt.Errorf("-resume cannot replay stdin; use a file -input or a -gen stream")
	}
	return nil
}

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "butterfly: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("butterfly", flag.ContinueOnError)
	var (
		input          = fs.String("input", "", "transaction file (one transaction per line); '-' for stdin")
		gen            = fs.String("gen", "", "synthetic stream instead of -input: webview or pos")
		n              = fs.Int("n", 10000, "records to stream with -gen")
		window         = fs.Int("window", 2000, "sliding window size H")
		support        = fs.Int("support", 25, "minimum support C")
		vuln           = fs.Int("vuln", 5, "vulnerable support K")
		epsilon        = fs.Float64("epsilon", 0.016, "precision bound ε (max relative squared error)")
		delta          = fs.Float64("delta", 0.4, "privacy floor δ (min relative inference error)")
		scheme         = fs.String("scheme", "hybrid", "bias scheme: basic, order, ratio or hybrid")
		lambda         = fs.Float64("lambda", 0.4, "hybrid weight λ (order vs ratio)")
		gamma          = fs.Int("gamma", 2, "order-preserving DP lookback γ")
		publishEvery   = fs.Int("publish-every", 0, "publish every N slides after the window fills (0: once at end)")
		top            = fs.Int("top", 10, "itemsets printed per published window (0 = all)")
		closed         = fs.Bool("closed", false, "publish only closed frequent itemsets")
		seed           = fs.Uint64("seed", 1, "random seed")
		dumpDir        = fs.String("dump-dir", "", "also write each published window to DIR/window-N.txt (audit format)")
		raw            = fs.Bool("raw", false, "UNPROTECTED: publish true supports (for audits and comparisons)")
		workers        = fs.Int("workers", runtime.NumCPU(), "pipeline parallelism (1: serial reference path)")
		maxBadRecords  = fs.Int("max-bad-records", 0, "malformed input records to skip before failing (0: fail fast, -1: unlimited)")
		emitRetries    = fs.Int("emit-retries", 3, "retries for transient publish failures before the run fails")
		windowTimeout  = fs.Duration("window-timeout", 0, "per-window watchdog: fail the run if one window takes longer (0: disabled)")
		checkpointDir  = fs.String("checkpoint-dir", "", "write crash-safe state snapshots to DIR (see -checkpoint-every, -resume)")
		checkpointEvry = fs.Int("checkpoint-every", 16, "published windows between checkpoints (with -checkpoint-dir)")
		checkpointKeep = fs.Int("checkpoint-keep", 3, "checkpoint generations to retain (with -checkpoint-dir)")
		resume         = fs.Bool("resume", false, "resume from the newest usable checkpoint in -checkpoint-dir")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := validateFlags(flagValues{
		n: *n, window: *window, support: *support, vuln: *vuln,
		publishEvery: *publishEvery, top: *top, workers: *workers,
		maxBadRecords: *maxBadRecords, emitRetries: *emitRetries,
		windowTimeout: *windowTimeout, checkpointDir: *checkpointDir,
		checkpointEvery: *checkpointEvry, checkpointKeep: *checkpointKeep,
		resume: *resume, input: *input,
	}); err != nil {
		return err
	}

	src, vocab, closeSrc, err := buildSource(*input, *gen, *n, *seed, stdin)
	if err != nil {
		return err
	}
	if closeSrc != nil {
		defer closeSrc()
	}

	sch, err := buildScheme(*scheme, *lambda, *gamma)
	if err != nil {
		return err
	}

	// Durability: open the checkpoint store up front so a bad directory
	// fails before any streaming starts, and load the resume snapshot —
	// falling back a generation past corrupt files, with a warning.
	var store *checkpoint.Store
	var resumeSnap *checkpoint.Snapshot
	if *checkpointDir != "" {
		store, err = checkpoint.NewStore(*checkpointDir, *checkpointKeep)
		if err != nil {
			return err
		}
		store.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "butterfly: "+format+"\n", args...)
		}
	}
	if *resume {
		snap, path, err := store.Latest()
		if err != nil {
			return err
		}
		if snap == nil {
			fmt.Fprintf(os.Stderr, "butterfly: -resume: no usable checkpoint in %s; starting from the beginning\n",
				*checkpointDir)
		} else {
			fmt.Fprintf(os.Stderr, "butterfly: resuming from %s (record %d, %d windows published)\n",
				path, snap.Records, snap.Published)
			resumeSnap = snap
		}
	}

	ckptEvery := 0
	if store != nil {
		ckptEvery = *checkpointEvry
	}
	pipe, err := pipeline.New(pipeline.Config{
		WindowSize: *window,
		Params: core.Params{
			Epsilon:     *epsilon,
			Delta:       *delta,
			MinSupport:  *support,
			VulnSupport: *vuln,
		},
		Scheme:          sch,
		Seed:            *seed,
		ClosedOnly:      *closed,
		Raw:             *raw,
		PublishEvery:    *publishEvery,
		Workers:         *workers,
		MaxBadRecords:   *maxBadRecords,
		EmitRetries:     *emitRetries,
		WindowTimeout:   *windowTimeout,
		CheckpointEvery: ckptEvery,
		CheckpointKeep:  *checkpointKeep,
		Checkpoints:     store,
		Resume:          resumeSnap,
	})
	if err != nil {
		return err
	}

	mode := "scheme=" + sch.Name()
	if *raw {
		mode = "RAW (no protection)"
	}
	fmt.Fprintf(stdout, "# butterfly: H=%d C=%d K=%d ε=%g δ=%g %s\n",
		*window, *support, *vuln, *epsilon, *delta, mode)
	if *dumpDir != "" {
		if err := os.MkdirAll(*dumpDir, 0o755); err != nil {
			return err
		}
	}

	// Graceful shutdown: the first SIGINT/SIGTERM stops the source so
	// in-flight windows drain and a partial summary prints; a second signal
	// cancels the run outright.
	drain := pipeline.NewDrainSource(src)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)
	go func() {
		select {
		case <-sigc:
		case <-ctx.Done():
			return
		}
		fmt.Fprintln(os.Stderr, "butterfly: interrupt — draining in-flight windows (interrupt again to abort)")
		drain.Stop()
		select {
		case <-sigc:
			cancel()
		case <-ctx.Done():
		}
	}()

	rep, err := pipe.RunContext(ctx, drain, func(w pipeline.Window) error {
		printWindow(stdout, w.Output, vocab, *top, w.Position, *window)
		if *dumpDir != "" {
			return dumpWindow(*dumpDir, w.Position, w.Output, vocab)
		}
		return nil
	})
	if err != nil {
		// A drain interrupt before the window ever filled is a deliberate
		// partial run, not a stream defect — fall through to the summary.
		if !(drain.Stopped() && errors.Is(err, pipeline.ErrShortStream)) {
			if rep != nil && rep.Records > 0 {
				fmt.Fprintf(os.Stderr, "butterfly: aborting after %d window(s) over %d records\n",
					rep.Published, rep.Records)
			}
			return err
		}
	}
	if drain.Stopped() {
		fmt.Fprintf(stdout, "# interrupted: the summary reflects a partial stream\n")
	}
	fmt.Fprintf(stdout, "# %d window(s) published over %d records\n", rep.Published, rep.Records)
	if rep.BadRecords > 0 {
		fmt.Fprintf(stdout, "# %d malformed record(s) skipped\n", rep.BadRecords)
		for _, b := range rep.Quarantined {
			fmt.Fprintf(stdout, "#   %s\n", b.String())
		}
	}
	if rep.Retries > 0 {
		fmt.Fprintf(stdout, "# %d transient failure(s) absorbed by retries\n", rep.Retries)
	}
	if rep.Checkpoints > 0 {
		fmt.Fprintf(stdout, "# %d checkpoint(s) written\n", rep.Checkpoints)
	}
	return nil
}

// dumpWindow writes one published window in the audit format, surfacing
// flush and close failures instead of dropping them in a deferred Close.
func dumpWindow(dir string, position int, out *core.Output, vocab *data.Vocabulary) error {
	entries := make([]data.PublishedEntry, out.Len())
	for i, it := range out.Items {
		entries[i] = data.PublishedEntry{Support: it.Support, Set: it.Set}
	}
	path := fmt.Sprintf("%s/window-%d.txt", dir, position)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := data.WritePublished(f, entries, vocab); err != nil {
		f.Close()
		return fmt.Errorf("writing %s: %w", path, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("syncing %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("closing %s: %w", path, err)
	}
	return nil
}

// buildSource assembles the incremental record source for the chosen input.
// File and stdin inputs stream through a shared vocabulary (used to render
// published itemsets); generated streams render numeric ids. The returned
// closer, when non-nil, must be called once the run finishes.
func buildSource(input, gen string, n int, seed uint64, stdin io.Reader) (pipeline.RecordSource, *data.Vocabulary, func() error, error) {
	switch {
	case input != "" && gen != "":
		return nil, nil, nil, fmt.Errorf("-input and -gen are mutually exclusive")
	case input == "-":
		vocab := data.NewVocabulary()
		return pipeline.ReaderSource(stdin, vocab), vocab, nil, nil
	case input != "":
		f, err := os.Open(input)
		if err != nil {
			return nil, nil, nil, err
		}
		vocab := data.NewVocabulary()
		return pipeline.ReaderSource(f, vocab), vocab, f.Close, nil
	case gen == "webview":
		return pipeline.GeneratorSource(data.WebViewLike(seed), n), nil, nil, nil
	case gen == "pos":
		return pipeline.GeneratorSource(data.POSLike(seed), n), nil, nil, nil
	case gen != "":
		return nil, nil, nil, fmt.Errorf("unknown generator %q (webview or pos)", gen)
	default:
		return nil, nil, nil, fmt.Errorf("need -input FILE or -gen NAME")
	}
}

func buildScheme(name string, lambda float64, gamma int) (core.Scheme, error) {
	switch strings.ToLower(name) {
	case "basic":
		return core.Basic{}, nil
	case "order", "op":
		return core.OrderPreserving{Gamma: gamma}, nil
	case "ratio", "rp":
		return core.RatioPreserving{}, nil
	case "hybrid":
		if lambda < 0 || lambda > 1 {
			return nil, fmt.Errorf("lambda %v outside [0,1]", lambda)
		}
		return core.Hybrid{Lambda: lambda, Order: core.OrderPreserving{Gamma: gamma}}, nil
	default:
		return nil, fmt.Errorf("unknown scheme %q (basic, order, ratio, hybrid)", name)
	}
}

func printWindow(w io.Writer, out *core.Output, vocab *data.Vocabulary, top, position, windowSize int) {
	fmt.Fprintf(w, "\n== window Ds(%d,%d): %d frequent itemsets ==\n", position, windowSize, out.Len())
	limit := len(out.Items)
	if top > 0 && top < limit {
		limit = top
	}
	for _, item := range out.Items[:limit] {
		var name string
		if vocab != nil {
			name = vocab.Render(item.Set)
		} else {
			name = item.Set.String()
		}
		fmt.Fprintf(w, "  %-40s %d\n", name, item.Support)
	}
	if limit < len(out.Items) {
		fmt.Fprintf(w, "  ... and %d more\n", len(out.Items)-limit)
	}
}
