// Command butterfly runs the full output-privacy pipeline of the paper over
// a transaction stream: sliding-window frequent-itemset mining (Moment-style
// incremental miner) followed by Butterfly perturbation, publishing
// sanitized frequent itemsets window by window.
//
// Input is either a file/stdin in the conventional one-transaction-per-line
// format (whitespace-separated item tokens) or a built-in synthetic stream:
//
//	butterfly -input transactions.dat -window 2000 -support 25
//	butterfly -gen webview -n 10000 -publish-every 500 -scheme hybrid
//
// Each published window prints the top itemsets with SANITIZED supports —
// the only supports that ever leave the system.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/itemset"
	"repro/internal/pipeline"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "butterfly: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("butterfly", flag.ContinueOnError)
	var (
		input        = fs.String("input", "", "transaction file (one transaction per line); '-' for stdin")
		gen          = fs.String("gen", "", "synthetic stream instead of -input: webview or pos")
		n            = fs.Int("n", 10000, "records to stream with -gen")
		window       = fs.Int("window", 2000, "sliding window size H")
		support      = fs.Int("support", 25, "minimum support C")
		vuln         = fs.Int("vuln", 5, "vulnerable support K")
		epsilon      = fs.Float64("epsilon", 0.016, "precision bound ε (max relative squared error)")
		delta        = fs.Float64("delta", 0.4, "privacy floor δ (min relative inference error)")
		scheme       = fs.String("scheme", "hybrid", "bias scheme: basic, order, ratio or hybrid")
		lambda       = fs.Float64("lambda", 0.4, "hybrid weight λ (order vs ratio)")
		gamma        = fs.Int("gamma", 2, "order-preserving DP lookback γ")
		publishEvery = fs.Int("publish-every", 0, "publish every N slides after the window fills (0: once at end)")
		top          = fs.Int("top", 10, "itemsets printed per published window (0 = all)")
		closed       = fs.Bool("closed", false, "publish only closed frequent itemsets")
		seed         = fs.Uint64("seed", 1, "random seed")
		dumpDir      = fs.String("dump-dir", "", "also write each published window to DIR/window-N.txt (audit format)")
		raw          = fs.Bool("raw", false, "UNPROTECTED: publish true supports (for audits and comparisons)")
		workers      = fs.Int("workers", runtime.NumCPU(), "pipeline parallelism (1: serial reference path)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *workers < 1 {
		return fmt.Errorf("-workers %d must be >= 1", *workers)
	}

	records, vocab, err := loadRecords(*input, *gen, *n, *seed, stdin)
	if err != nil {
		return err
	}
	if len(records) < *window {
		return fmt.Errorf("stream has %d records, fewer than the window size %d", len(records), *window)
	}

	sch, err := buildScheme(*scheme, *lambda, *gamma)
	if err != nil {
		return err
	}
	pipe, err := pipeline.New(pipeline.Config{
		WindowSize: *window,
		Params: core.Params{
			Epsilon:     *epsilon,
			Delta:       *delta,
			MinSupport:  *support,
			VulnSupport: *vuln,
		},
		Scheme:       sch,
		Seed:         *seed,
		ClosedOnly:   *closed,
		Raw:          *raw,
		PublishEvery: *publishEvery,
		Workers:      *workers,
	})
	if err != nil {
		return err
	}

	mode := "scheme=" + sch.Name()
	if *raw {
		mode = "RAW (no protection)"
	}
	fmt.Fprintf(stdout, "# butterfly: H=%d C=%d K=%d ε=%g δ=%g %s\n",
		*window, *support, *vuln, *epsilon, *delta, mode)
	if *dumpDir != "" {
		if err := os.MkdirAll(*dumpDir, 0o755); err != nil {
			return err
		}
	}

	published := 0
	err = pipe.Run(records, func(w pipeline.Window) error {
		published++
		printWindow(stdout, w.Output, vocab, *top, w.Position, *window)
		if *dumpDir != "" {
			return dumpWindow(*dumpDir, w.Position, w.Output, vocab)
		}
		return nil
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "# %d window(s) published over %d records\n", published, len(records))
	return nil
}

// dumpWindow writes one published window in the audit format.
func dumpWindow(dir string, position int, out *core.Output, vocab *data.Vocabulary) error {
	entries := make([]data.PublishedEntry, out.Len())
	for i, it := range out.Items {
		entries[i] = data.PublishedEntry{Support: it.Support, Set: it.Set}
	}
	path := fmt.Sprintf("%s/window-%d.txt", dir, position)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return data.WritePublished(f, entries, vocab)
}

func loadRecords(input, gen string, n int, seed uint64, stdin io.Reader) ([]itemset.Itemset, *data.Vocabulary, error) {
	switch {
	case input != "" && gen != "":
		return nil, nil, fmt.Errorf("-input and -gen are mutually exclusive")
	case input == "-":
		recs, vocab, err := data.ReadTransactions(stdin)
		return recs, vocab, err
	case input != "":
		f, err := os.Open(input)
		if err != nil {
			return nil, nil, err
		}
		defer f.Close()
		recs, vocab, err := data.ReadTransactions(f)
		return recs, vocab, err
	case gen == "webview":
		return data.WebViewLike(seed).Generate(n), nil, nil
	case gen == "pos":
		return data.POSLike(seed).Generate(n), nil, nil
	case gen != "":
		return nil, nil, fmt.Errorf("unknown generator %q (webview or pos)", gen)
	default:
		return nil, nil, fmt.Errorf("need -input FILE or -gen NAME")
	}
}

func buildScheme(name string, lambda float64, gamma int) (core.Scheme, error) {
	switch strings.ToLower(name) {
	case "basic":
		return core.Basic{}, nil
	case "order", "op":
		return core.OrderPreserving{Gamma: gamma}, nil
	case "ratio", "rp":
		return core.RatioPreserving{}, nil
	case "hybrid":
		if lambda < 0 || lambda > 1 {
			return nil, fmt.Errorf("lambda %v outside [0,1]", lambda)
		}
		return core.Hybrid{Lambda: lambda, Order: core.OrderPreserving{Gamma: gamma}}, nil
	default:
		return nil, fmt.Errorf("unknown scheme %q (basic, order, ratio, hybrid)", name)
	}
}

func printWindow(w io.Writer, out *core.Output, vocab *data.Vocabulary, top, position, windowSize int) {
	fmt.Fprintf(w, "\n== window Ds(%d,%d): %d frequent itemsets ==\n", position, windowSize, out.Len())
	limit := len(out.Items)
	if top > 0 && top < limit {
		limit = top
	}
	for _, item := range out.Items[:limit] {
		var name string
		if vocab != nil {
			name = vocab.Render(item.Set)
		} else {
			name = item.Set.String()
		}
		fmt.Fprintf(w, "  %-40s %d\n", name, item.Support)
	}
	if limit < len(out.Items) {
		fmt.Fprintf(w, "  ... and %d more\n", len(out.Items)-limit)
	}
}
