// Command butterfly runs the full output-privacy pipeline of the paper over
// a transaction stream: sliding-window frequent-itemset mining (Moment-style
// incremental miner) followed by Butterfly perturbation, publishing
// sanitized frequent itemsets window by window.
//
// Input is either a file/stdin in the conventional one-transaction-per-line
// format (whitespace-separated item tokens) or a built-in synthetic stream:
//
//	butterfly -input transactions.dat -window 2000 -support 25
//	butterfly -gen webview -n 10000 -publish-every 500 -scheme hybrid
//
// Records are consumed incrementally — a file larger than memory or an
// unbounded stdin stream both work. Malformed input lines are rejected by
// default; -max-bad-records N skips and quarantines up to N of them (-1 for
// no limit). Transient sink failures are retried with exponential backoff
// (-emit-retries), and -window-timeout bounds how long any one window may
// take end to end.
//
// On SIGINT or SIGTERM the stream is drained gracefully: in-flight windows
// finish publishing, then a partial-run summary prints. A second signal
// aborts immediately.
//
// Observability: -telemetry-addr HOST:PORT serves /metrics (Prometheus text
// format), /debug/vars (JSON snapshot of the same registry),
// /debug/trace/events (the per-window flight recorder as Chrome trace-event
// JSON, loadable in Perfetto) and net/http/pprof on a private mux, covering
// per-stage latency, retry and quarantine counters, checkpoint cadence and
// the live privacy/utility posture (see OBSERVABILITY.md). -trace-out FILE
// writes the same trace JSON at exit — on graceful drain, abort and resume
// failure alike — retaining the last -trace-windows windows plus the
// slowest-window exemplars. -log-json switches the stderr status lines to
// structured JSON (log/slog). Telemetry and tracing are observation-only:
// published output is byte-identical with them on or off.
//
// Each published window prints the top itemsets with SANITIZED supports —
// the only supports that ever leave the system.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/pipeline"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// statusLogger renders the CLI's operator-facing status lines: plain
// `butterfly: ...` stderr lines by default, structured JSON records (one
// per line, via log/slog) under -log-json. Window output on stdout is the
// published data product and is never routed through here.
type statusLogger struct {
	json *slog.Logger // nil in plain mode
	out  io.Writer    // plain-mode destination
}

func newStatusLogger(jsonMode bool) *statusLogger {
	return newStatusLoggerTo(os.Stderr, jsonMode)
}

// newStatusLoggerTo routes status lines to an explicit writer (tests
// capture both framings through it).
func newStatusLoggerTo(w io.Writer, jsonMode bool) *statusLogger {
	if jsonMode {
		return &statusLogger{json: slog.New(slog.NewJSONHandler(w, nil))}
	}
	return &statusLogger{out: w}
}

// log writes one status event. attrs are alternating key, value pairs
// (slog convention); plain mode renders them as trailing key=value tokens.
func (l *statusLogger) log(level slog.Level, msg string, attrs ...any) {
	if l.json != nil {
		l.json.Log(context.Background(), level, msg, attrs...)
		return
	}
	var b strings.Builder
	fmt.Fprintf(&b, "butterfly: %s", msg)
	for i := 0; i+1 < len(attrs); i += 2 {
		fmt.Fprintf(&b, " %v=%v", attrs[i], attrs[i+1])
	}
	fmt.Fprintln(l.out, b.String())
}

func (l *statusLogger) Info(msg string, attrs ...any)  { l.log(slog.LevelInfo, msg, attrs...) }
func (l *statusLogger) Warn(msg string, attrs ...any)  { l.log(slog.LevelWarn, msg, attrs...) }
func (l *statusLogger) Error(msg string, attrs ...any) { l.log(slog.LevelError, msg, attrs...) }

// telemetryStarted, when non-nil, receives the bound telemetry address once
// the listener is up. Test-only: the end-to-end scrape test uses it to
// discover the :0-assigned port.
var telemetryStarted func(addr string)

// flagValues collects the numeric/durability flags for up-front validation.
type flagValues struct {
	n, window, support, vuln        int
	publishEvery, top, workers      int
	maxBadRecords, emitRetries      int
	windowTimeout                   time.Duration
	checkpointDir                   string
	checkpointEvery, checkpointKeep int
	checkpointFullEvery             int
	resume                          bool
	input                           string
	traceWindows                    int
}

// validateFlags rejects flag values that would otherwise surface as
// undefined behavior deep inside the run — a clear usage error at startup
// instead.
func validateFlags(v flagValues) error {
	if v.n <= 0 {
		return fmt.Errorf("-n %d must be >= 1", v.n)
	}
	if v.window <= 0 {
		return fmt.Errorf("-window %d must be >= 1", v.window)
	}
	if v.support <= 0 {
		return fmt.Errorf("-support %d must be >= 1", v.support)
	}
	if v.vuln <= 0 {
		return fmt.Errorf("-vuln %d must be >= 1", v.vuln)
	}
	if v.publishEvery < 0 {
		return fmt.Errorf("-publish-every %d must be >= 0 (0: publish once, at the end)", v.publishEvery)
	}
	if v.top < 0 {
		return fmt.Errorf("-top %d must be >= 0 (0: print all)", v.top)
	}
	if v.workers < 1 {
		return fmt.Errorf("-workers %d must be >= 1", v.workers)
	}
	if v.maxBadRecords < -1 {
		return fmt.Errorf("-max-bad-records %d must be -1 (unlimited), 0 (fail fast) or a positive budget", v.maxBadRecords)
	}
	if v.emitRetries < 0 {
		return fmt.Errorf("-emit-retries %d must be >= 0", v.emitRetries)
	}
	if v.windowTimeout < 0 {
		return fmt.Errorf("-window-timeout %v must be >= 0 (0: disabled)", v.windowTimeout)
	}
	if v.checkpointDir != "" && v.checkpointEvery <= 0 {
		return fmt.Errorf("-checkpoint-every %d must be >= 1", v.checkpointEvery)
	}
	if v.checkpointDir != "" && v.checkpointKeep < 1 {
		return fmt.Errorf("-checkpoint-keep %d must be >= 1", v.checkpointKeep)
	}
	if v.checkpointDir != "" && v.checkpointFullEvery < 1 {
		return fmt.Errorf("-checkpoint-full-every %d must be >= 1 (1: every checkpoint a full snapshot)", v.checkpointFullEvery)
	}
	if v.resume && v.checkpointDir == "" {
		return fmt.Errorf("-resume requires -checkpoint-dir")
	}
	if v.resume && v.input == "-" {
		return fmt.Errorf("-resume cannot replay stdin; use a file -input or a -gen stream")
	}
	if v.traceWindows < 1 {
		return fmt.Errorf("-trace-windows %d must be >= 1", v.traceWindows)
	}
	return nil
}

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "butterfly: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("butterfly", flag.ContinueOnError)
	var (
		input          = fs.String("input", "", "transaction file (one transaction per line); '-' for stdin")
		gen            = fs.String("gen", "", "synthetic stream instead of -input: webview or pos")
		n              = fs.Int("n", 10000, "records to stream with -gen")
		window         = fs.Int("window", 2000, "sliding window size H")
		support        = fs.Int("support", 25, "minimum support C")
		vuln           = fs.Int("vuln", 5, "vulnerable support K")
		epsilon        = fs.Float64("epsilon", 0.016, "precision bound ε (max relative squared error)")
		delta          = fs.Float64("delta", 0.4, "privacy floor δ (min relative inference error)")
		scheme         = fs.String("scheme", "hybrid", "bias scheme: basic, order, ratio or hybrid")
		lambda         = fs.Float64("lambda", 0.4, "hybrid weight λ (order vs ratio)")
		gamma          = fs.Int("gamma", 2, "order-preserving DP lookback γ")
		publishEvery   = fs.Int("publish-every", 0, "publish every N slides after the window fills (0: once at end)")
		top            = fs.Int("top", 10, "itemsets printed per published window (0 = all)")
		closed         = fs.Bool("closed", false, "publish only closed frequent itemsets")
		seed           = fs.Uint64("seed", 1, "random seed")
		dumpDir        = fs.String("dump-dir", "", "also write each published window to DIR/window-N.txt (audit format)")
		raw            = fs.Bool("raw", false, "UNPROTECTED: publish true supports (for audits and comparisons)")
		workers        = fs.Int("workers", runtime.NumCPU(), "pipeline parallelism (1: serial reference path)")
		maxBadRecords  = fs.Int("max-bad-records", 0, "malformed input records to skip before failing (0: fail fast, -1: unlimited)")
		emitRetries    = fs.Int("emit-retries", 3, "retries for transient publish failures before the run fails")
		windowTimeout  = fs.Duration("window-timeout", 0, "per-window watchdog: fail the run if one window takes longer (0: disabled)")
		checkpointDir  = fs.String("checkpoint-dir", "", "write crash-safe state snapshots to DIR (see -checkpoint-every, -resume)")
		checkpointEvry = fs.Int("checkpoint-every", 16, "published windows between checkpoints (with -checkpoint-dir)")
		checkpointKeep = fs.Int("checkpoint-keep", 3, "checkpoint generations to retain (with -checkpoint-dir)")
		checkpointFull = fs.Int("checkpoint-full-every", 16, "checkpoints between full snapshots; the rest are appended delta frames (1: all full)")
		resume         = fs.Bool("resume", false, "resume from the newest usable checkpoint in -checkpoint-dir")
		telemetryAddr  = fs.String("telemetry-addr", "", "serve /metrics, /debug/vars, /debug/trace/events and /debug/pprof on HOST:PORT (empty: off)")
		traceOut       = fs.String("trace-out", "", "write the per-window trace as Chrome trace-event JSON to FILE at exit (Perfetto-loadable)")
		traceWindows   = fs.Int("trace-windows", trace.DefaultWindows, "windows retained by the in-process flight recorder")
		logJSON        = fs.Bool("log-json", false, "emit status lines as structured JSON (log/slog) on stderr")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := validateFlags(flagValues{
		n: *n, window: *window, support: *support, vuln: *vuln,
		publishEvery: *publishEvery, top: *top, workers: *workers,
		maxBadRecords: *maxBadRecords, emitRetries: *emitRetries,
		windowTimeout: *windowTimeout, checkpointDir: *checkpointDir,
		checkpointEvery: *checkpointEvry, checkpointKeep: *checkpointKeep,
		checkpointFullEvery: *checkpointFull,
		resume:              *resume, input: *input, traceWindows: *traceWindows,
	}); err != nil {
		return err
	}
	logger := newStatusLogger(*logJSON)

	// The telemetry registry always exists — the end-of-run summary is
	// sourced from it, whether or not it is served over HTTP — so the
	// normal and interrupted summary paths read the same counters. The
	// flight recorder exists whenever anything can read it: a -trace-out
	// file, or the live /debug/trace/events endpoint.
	reg := telemetry.NewRegistry()
	var tracer *trace.Tracer
	if *traceOut != "" || *telemetryAddr != "" {
		tracer = trace.New(trace.Options{Windows: *traceWindows})
		tracer.SetMetrics(reg)
	}
	// Flush the trace file on EVERY exit path — graceful drain, signal
	// abort, resume failure, pipeline error — mirroring the summary fix
	// that stopped aborted runs from dropping counters. The deferred flush
	// runs after the summary prints; WriteChromeFile syncs before close so
	// the dump survives the process exiting right after.
	defer func() {
		if tracer == nil || *traceOut == "" {
			return
		}
		if err := tracer.WriteChromeFile(*traceOut); err != nil {
			logger.Error("trace flush failed", "path", *traceOut, "error", err.Error())
			return
		}
		logger.Info("trace written", "path", *traceOut)
	}()
	if *telemetryAddr != "" {
		ln, err := net.Listen("tcp", *telemetryAddr)
		if err != nil {
			return fmt.Errorf("-telemetry-addr: %w", err)
		}
		mux := reg.Mux()
		mux.Handle("/debug/trace/events", tracer.Handler())
		// Slow-loris hardening: a client trickling its header, idling on a
		// kept-alive connection, or never draining a response cannot pin
		// the server open past the graceful drain below. The write timeout
		// is generous because /debug/pprof/profile?seconds=N streams for
		// the profile duration.
		srv := &http.Server{
			Handler:           mux,
			ReadHeaderTimeout: 5 * time.Second,
			IdleTimeout:       60 * time.Second,
			WriteTimeout:      2 * time.Minute,
			MaxHeaderBytes:    1 << 20,
		}
		logger.Info("telemetry listening", "addr", ln.Addr().String())
		if telemetryStarted != nil {
			telemetryStarted(ln.Addr().String())
		}
		go func() { _ = srv.Serve(ln) }()
		// Drain the observability server alongside the pipeline's own
		// graceful shutdown: in-flight scrapes finish, new ones are refused.
		defer func() {
			shctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			if err := srv.Shutdown(shctx); err != nil {
				logger.Warn("telemetry server shutdown", "error", err.Error())
			}
		}()
	}

	src, vocab, closeSrc, err := buildSource(*input, *gen, *n, *seed, stdin)
	if err != nil {
		return err
	}
	if closeSrc != nil {
		defer closeSrc()
	}

	sch, err := buildScheme(*scheme, *lambda, *gamma)
	if err != nil {
		return err
	}

	// Durability: open the checkpoint store up front so a bad directory
	// fails before any streaming starts, and load the resume snapshot —
	// falling back a generation past corrupt files, with a warning.
	var store *checkpoint.Store
	var resumeSnap *checkpoint.Snapshot
	if *checkpointDir != "" {
		store, err = checkpoint.NewStore(*checkpointDir, *checkpointKeep)
		if err != nil {
			return err
		}
		store.Logf = func(format string, args ...any) {
			logger.Warn(fmt.Sprintf(format, args...))
		}
	}
	if *resume {
		snap, path, err := store.Latest()
		if err != nil {
			return err
		}
		if snap == nil {
			logger.Warn("no usable checkpoint; starting from the beginning", "dir", *checkpointDir)
		} else {
			logger.Info("resuming from checkpoint",
				"path", path, "record", snap.Records, "published", snap.Published)
			resumeSnap = snap
		}
	}

	ckptEvery := 0
	if store != nil {
		ckptEvery = *checkpointEvry
	}
	pipe, err := pipeline.New(pipeline.Config{
		WindowSize: *window,
		Params: core.Params{
			Epsilon:     *epsilon,
			Delta:       *delta,
			MinSupport:  *support,
			VulnSupport: *vuln,
		},
		Scheme:              sch,
		Seed:                *seed,
		ClosedOnly:          *closed,
		Raw:                 *raw,
		PublishEvery:        *publishEvery,
		Workers:             *workers,
		MaxBadRecords:       *maxBadRecords,
		EmitRetries:         *emitRetries,
		WindowTimeout:       *windowTimeout,
		CheckpointEvery:     ckptEvery,
		CheckpointFullEvery: *checkpointFull,
		CheckpointKeep:      *checkpointKeep,
		Checkpoints:         store,
		Resume:              resumeSnap,
		Metrics:             reg,
		Trace:               tracer,
	})
	if err != nil {
		return err
	}

	mode := "scheme=" + sch.Name()
	if *raw {
		mode = "RAW (no protection)"
	}
	fmt.Fprintf(stdout, "# butterfly: H=%d C=%d K=%d ε=%g δ=%g %s\n",
		*window, *support, *vuln, *epsilon, *delta, mode)
	if *dumpDir != "" {
		if err := os.MkdirAll(*dumpDir, 0o755); err != nil {
			return err
		}
	}

	// Graceful shutdown: the first SIGINT/SIGTERM stops the source so
	// in-flight windows drain and a partial summary prints; a second signal
	// cancels the run outright.
	drain := pipeline.NewDrainSource(src)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)
	go func() {
		select {
		case <-sigc:
		case <-ctx.Done():
			return
		}
		logger.Info("interrupt — draining in-flight windows (interrupt again to abort)")
		drain.Stop()
		select {
		case <-sigc:
			cancel()
		case <-ctx.Done():
		}
	}()

	// The audit-dump entry buffer outlives the emit callback so each window
	// reuses the previous window's storage (the dump file is written and
	// synced before the callback returns, so nothing aliases it afterwards).
	var entryBuf []data.PublishedEntry
	rep, err := pipe.RunContext(ctx, drain, func(w pipeline.Window) error {
		printWindow(stdout, w.Output, vocab, *top, w.Position, *window)
		if *dumpDir != "" {
			var err error
			entryBuf, err = dumpWindow(*dumpDir, w.Position, w.Output, vocab, entryBuf)
			return err
		}
		return nil
	})
	if err != nil {
		// A drain interrupt before the window ever filled is a deliberate
		// partial run, not a stream defect — fall through to the summary.
		if !(drain.Stopped() && errors.Is(err, pipeline.ErrShortStream)) {
			logger.Error("aborting", "error", err.Error())
			// The aborted-run summary prints the SAME counters as a clean
			// run — sourced from the telemetry registry, so the two paths
			// cannot diverge and bad-record/retry counts are never lost.
			printSummary(stdout, reg, rep, "aborted", *traceOut)
			return err
		}
	}
	status := ""
	if drain.Stopped() {
		status = "interrupted"
	}
	printSummary(stdout, reg, rep, status, *traceOut)
	return nil
}

// printSummary renders the end-of-run summary block from the telemetry
// registry — the single source the clean, signal-drained and aborted exits
// all share. Only the quarantine detail lines come from the Report (the
// registry holds counts, not line text). status is "" for a clean run,
// "interrupted" for a signal drain, "aborted" for a failed run; tracePath
// names the -trace-out file flushed at exit ("" when tracing to a file is
// off).
func printSummary(w io.Writer, reg *telemetry.Registry, rep *pipeline.Report, status, tracePath string) {
	switch status {
	case "interrupted":
		fmt.Fprintf(w, "# interrupted: the summary reflects a partial stream\n")
	case "aborted":
		fmt.Fprintf(w, "# aborted: the summary reflects a partial stream\n")
	}
	fmt.Fprintf(w, "# %d window(s) published over %d records\n",
		reg.CounterValue(pipeline.MetricWindows), reg.CounterValue(pipeline.MetricRecords))
	if bad := reg.CounterValue(pipeline.MetricBadRecords); bad > 0 {
		fmt.Fprintf(w, "# %d malformed record(s) skipped\n", bad)
		if rep != nil {
			for _, b := range rep.Quarantined {
				fmt.Fprintf(w, "#   %s\n", b.String())
			}
		}
	}
	if retries := reg.CounterValue(pipeline.MetricRetries); retries > 0 {
		fmt.Fprintf(w, "# %d transient failure(s) absorbed by retries\n", retries)
	}
	if ckpts := reg.CounterValue(pipeline.MetricCheckpoints); ckpts > 0 {
		fmt.Fprintf(w, "# %d checkpoint(s) written\n", ckpts)
	}
	if tracePath != "" {
		fmt.Fprintf(w, "# trace: %s\n", tracePath)
	}
}

// dumpWindow writes one published window in the audit format, surfacing
// flush and close failures instead of dropping them in a deferred Close.
// The published itemsets are staged zero-copy — the entries alias the
// Output's itemsets — into buf, which is returned (possibly grown) for the
// next window to reuse.
func dumpWindow(dir string, position int, out *core.Output, vocab *data.Vocabulary, buf []data.PublishedEntry) ([]data.PublishedEntry, error) {
	entries := buf[:0]
	for _, it := range out.Items {
		entries = append(entries, data.PublishedEntry{Support: it.Support, Set: it.Set})
	}
	path := fmt.Sprintf("%s/window-%d.txt", dir, position)
	f, err := os.Create(path)
	if err != nil {
		return entries, err
	}
	if err := data.WritePublished(f, entries, vocab); err != nil {
		f.Close()
		return entries, fmt.Errorf("writing %s: %w", path, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return entries, fmt.Errorf("syncing %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return entries, fmt.Errorf("closing %s: %w", path, err)
	}
	return entries, nil
}

// buildSource assembles the incremental record source for the chosen input.
// File and stdin inputs stream through a shared vocabulary (used to render
// published itemsets); generated streams render numeric ids. The returned
// closer, when non-nil, must be called once the run finishes.
func buildSource(input, gen string, n int, seed uint64, stdin io.Reader) (pipeline.RecordSource, *data.Vocabulary, func() error, error) {
	switch {
	case input != "" && gen != "":
		return nil, nil, nil, fmt.Errorf("-input and -gen are mutually exclusive")
	case input == "-":
		vocab := data.NewVocabulary()
		return pipeline.ReaderSource(stdin, vocab), vocab, nil, nil
	case input != "":
		f, err := os.Open(input)
		if err != nil {
			return nil, nil, nil, err
		}
		vocab := data.NewVocabulary()
		return pipeline.ReaderSource(f, vocab), vocab, f.Close, nil
	case gen == "webview":
		return pipeline.GeneratorSource(data.WebViewLike(seed), n), nil, nil, nil
	case gen == "pos":
		return pipeline.GeneratorSource(data.POSLike(seed), n), nil, nil, nil
	case gen != "":
		return nil, nil, nil, fmt.Errorf("unknown generator %q (webview or pos)", gen)
	default:
		return nil, nil, nil, fmt.Errorf("need -input FILE or -gen NAME")
	}
}

func buildScheme(name string, lambda float64, gamma int) (core.Scheme, error) {
	return core.SchemeByName(name, lambda, gamma)
}

func printWindow(w io.Writer, out *core.Output, vocab *data.Vocabulary, top, position, windowSize int) {
	fmt.Fprintf(w, "\n== window Ds(%d,%d): %d frequent itemsets ==\n", position, windowSize, out.Len())
	limit := len(out.Items)
	if top > 0 && top < limit {
		limit = top
	}
	for _, item := range out.Items[:limit] {
		var name string
		if vocab != nil {
			name = vocab.Render(item.Set)
		} else {
			name = item.Set.String()
		}
		fmt.Fprintf(w, "  %-40s %d\n", name, item.Support)
	}
	if limit < len(out.Items) {
		fmt.Fprintf(w, "  ... and %d more\n", len(out.Items)-limit)
	}
}
