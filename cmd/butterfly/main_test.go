package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/data"
	"repro/internal/itemset"
)

func TestRunStdinPipeline(t *testing.T) {
	in := strings.Repeat("a b c\na b\nb c\n", 4)
	var out bytes.Buffer
	err := run([]string{
		"-input", "-", "-window", "6", "-support", "2", "-vuln", "1",
		"-epsilon", "0.5", "-delta", "0.3", "-scheme", "basic",
	}, strings.NewReader(in), &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "window Ds(") {
		t.Errorf("no window published:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "{a,b}") {
		t.Errorf("expected itemset {a,b} in output:\n%s", out.String())
	}
}

func TestRunGeneratedStream(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-gen", "webview", "-n", "1200", "-window", "600", "-support", "12",
		"-epsilon", "0.1", "-delta", "0.4", "-scheme", "hybrid", "-top", "3",
	}, nil, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "1 window(s) published") {
		t.Errorf("unexpected output:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{},                                 // no input at all
		{"-input", "x", "-gen", "webview"}, // mutually exclusive
		{"-gen", "nope"},                   // unknown generator
		{"-gen", "webview", "-n", "5", "-window", "100"}, // too few records
		{"-gen", "webview", "-scheme", "nope"},
		{"-gen", "webview", "-scheme", "hybrid", "-lambda", "3"},
	}
	for i, args := range cases {
		var out bytes.Buffer
		if err := run(args, strings.NewReader(""), &out); err == nil {
			t.Errorf("case %d (%v) did not error", i, args)
		}
	}
}

func TestRunRawAndDump(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	err := run([]string{
		"-gen", "webview", "-n", "700", "-window", "600", "-support", "12",
		"-epsilon", "0.1", "-delta", "0.4", "-raw", "-dump-dir", dir,
	}, nil, &out)
	if err != nil {
		t.Fatal(err)
	}
	matches, err := filepath.Glob(filepath.Join(dir, "window-*.txt"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no dumped windows: %v %v", matches, err)
	}
	content, err := os.ReadFile(matches[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(content) == 0 {
		t.Error("dumped window is empty")
	}
	if !strings.Contains(out.String(), "RAW") {
		t.Error("raw mode not announced")
	}
}

// TestRunWorkersDeterminism pins the CLI half of the chunked-RNG contract:
// every -workers count >= 2 must print byte-identical output for a fixed
// seed, and -workers 1 (the serial reference path) must itself be
// reproducible run over run.
func TestRunWorkersDeterminism(t *testing.T) {
	runWith := func(workers string) string {
		var out bytes.Buffer
		err := run([]string{
			"-gen", "webview", "-n", "1500", "-window", "600", "-support", "12",
			"-epsilon", "0.1", "-delta", "0.4", "-scheme", "hybrid",
			"-publish-every", "200", "-seed", "9", "-workers", workers,
		}, nil, &out)
		if err != nil {
			t.Fatal(err)
		}
		return out.String()
	}
	ref := runWith("2")
	if !strings.Contains(ref, "window(s) published") {
		t.Fatalf("unexpected output:\n%s", ref)
	}
	for _, workers := range []string{"3", "8"} {
		if got := runWith(workers); got != ref {
			t.Errorf("-workers %s output differs from -workers 2:\n%s\nvs\n%s", workers, got, ref)
		}
	}
	if first, second := runWith("1"), runWith("1"); first != second {
		t.Error("-workers 1 not reproducible across runs")
	}
}

// TestRunWorkersValidation rejects non-positive worker counts.
func TestRunWorkersValidation(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-gen", "webview", "-workers", "0"}, nil, &out); err == nil {
		t.Error("-workers 0 accepted")
	}
}

// TestRunMalformedStdin: malformed lines fail fast by default; with a
// -max-bad-records budget they are skipped, counted, and reported with
// their line numbers in the summary.
func TestRunMalformedStdin(t *testing.T) {
	in := strings.Repeat("a b c\na b\nb c\n", 4) + "bad\x00line\n" + strings.Repeat("a b\n", 3)
	base := []string{
		"-input", "-", "-window", "6", "-support", "2", "-vuln", "1",
		"-epsilon", "0.5", "-delta", "0.3", "-scheme", "basic",
	}

	var out bytes.Buffer
	if err := run(base, strings.NewReader(in), &out); err == nil {
		t.Fatal("malformed input accepted without a bad-record budget")
	}

	out.Reset()
	if err := run(append(base, "-max-bad-records", "1"), strings.NewReader(in), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "1 malformed record(s) skipped") {
		t.Errorf("summary missing the skip count:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "line 13") {
		t.Errorf("summary missing the quarantined line number:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "window(s) published over 15 records") {
		t.Errorf("summary should count only well-formed records:\n%s", out.String())
	}
}

// TestRunSupervisionFlagValidation rejects out-of-range supervision knobs.
func TestRunSupervisionFlagValidation(t *testing.T) {
	cases := [][]string{
		{"-gen", "webview", "-max-bad-records", "-2"},
		{"-gen", "webview", "-emit-retries", "-1"},
		{"-gen", "webview", "-window-timeout", "-1s"},
	}
	for i, args := range cases {
		var out bytes.Buffer
		if err := run(args, nil, &out); err == nil {
			t.Errorf("case %d (%v) did not error", i, args)
		}
	}
}

func TestBuildScheme(t *testing.T) {
	for _, name := range []string{"basic", "order", "op", "ratio", "rp", "hybrid"} {
		if _, err := buildScheme(name, 0.4, 2); err != nil {
			t.Errorf("scheme %q rejected: %v", name, err)
		}
	}
	if _, err := buildScheme("bogus", 0.4, 2); err == nil {
		t.Error("bogus scheme accepted")
	}
}

// runArgs executes the CLI and returns its stdout, failing the test on
// error.
func runArgs(t *testing.T, args []string) string {
	t.Helper()
	var out bytes.Buffer
	if err := run(args, nil, &out); err != nil {
		t.Fatalf("run %v: %v", args, err)
	}
	return out.String()
}

// windowBlocks slices a CLI transcript into its published-window sections,
// the units compared byte-for-byte across runs.
func windowBlocks(t *testing.T, transcript string) []string {
	t.Helper()
	parts := strings.Split(transcript, "== window Ds(")
	var blocks []string
	for _, p := range parts[1:] {
		if i := strings.Index(p, "\n#"); i >= 0 {
			p = p[:i]
		}
		blocks = append(blocks, strings.TrimRight(p, "\n"))
	}
	return blocks
}

// writeTransactionFile renders records to a temp transaction file.
func writeTransactionFile(t *testing.T, dir, name string, records []itemset.Itemset) string {
	t.Helper()
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := data.WriteTransactions(f, records, nil); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestRunCheckpointResumeWalkthrough is the CLI half of the kill-and-resume
// guarantee, mirroring the README walkthrough: a checkpointed run over a
// truncated stream (standing in for a killed service), then -resume over the
// full stream, publishes exactly the windows an uninterrupted run publishes
// past the cut — byte-identical.
func TestRunCheckpointResumeWalkthrough(t *testing.T) {
	records := data.WebViewLike(5).Generate(300)
	dir := t.TempDir()
	full := writeTransactionFile(t, dir, "full.dat", records)
	// The cut sits on a scheduled publication position (window 60, publish
	// every 4 → 60, 64, ..., 200, ...), so the truncated run's final window
	// coincides with a scheduled one.
	part := writeTransactionFile(t, dir, "part.dat", records[:200])
	ckdir := filepath.Join(dir, "ckpt")
	base := []string{
		"-window", "60", "-support", "10", "-vuln", "5",
		"-epsilon", "0.1", "-delta", "0.4", "-scheme", "hybrid",
		"-publish-every", "4", "-seed", "17", "-workers", "2", "-top", "0",
	}

	ref := windowBlocks(t, runArgs(t, append([]string{"-input", full}, base...)))
	if len(ref) != 61 {
		t.Fatalf("reference run published %d windows, want 61", len(ref))
	}

	firstOut := runArgs(t, append([]string{
		"-input", part, "-checkpoint-dir", ckdir, "-checkpoint-every", "1",
	}, base...))
	first := windowBlocks(t, firstOut)
	if len(first) != 36 { // positions 60..200
		t.Fatalf("truncated run published %d windows, want 36", len(first))
	}
	for i := range first {
		if first[i] != ref[i] {
			t.Fatalf("truncated-run window %d differs from reference", i)
		}
	}
	if !strings.Contains(firstOut, "checkpoint(s) written") {
		t.Fatalf("summary missing the checkpoint count:\n%s", firstOut)
	}

	resumedOut := runArgs(t, append([]string{
		"-input", full, "-checkpoint-dir", ckdir, "-checkpoint-every", "1", "-resume",
	}, base...))
	resumed := windowBlocks(t, resumedOut)
	if len(resumed) != len(ref)-36 {
		t.Fatalf("resumed run published %d windows, want %d", len(resumed), len(ref)-36)
	}
	for i := range resumed {
		if resumed[i] != ref[36+i] {
			t.Fatalf("resumed window %d differs from the uninterrupted reference:\n got %s\nwant %s",
				i, resumed[i], ref[36+i])
		}
	}
	// The replayed prefix counts: the summary sees the whole stream.
	if !strings.Contains(resumedOut, "window(s) published over 300 records") {
		t.Fatalf("resumed summary does not span the full stream:\n%s", resumedOut)
	}
}

// TestRunResumeWithoutCheckpointStartsFresh: -resume against an empty store
// warns and runs from the beginning instead of failing.
func TestRunResumeWithoutCheckpointStartsFresh(t *testing.T) {
	ckdir := filepath.Join(t.TempDir(), "ckpt")
	out := runArgs(t, []string{
		"-gen", "webview", "-n", "700", "-window", "600", "-support", "12",
		"-epsilon", "0.1", "-delta", "0.4",
		"-checkpoint-dir", ckdir, "-resume",
	})
	if !strings.Contains(out, "1 window(s) published") {
		t.Fatalf("fresh -resume run did not publish:\n%s", out)
	}
}

// TestRunCheckpointFlagValidation rejects out-of-range durability flags at
// startup.
func TestRunCheckpointFlagValidation(t *testing.T) {
	cases := [][]string{
		{"-gen", "webview", "-checkpoint-dir", "x", "-checkpoint-every", "0"},
		{"-gen", "webview", "-checkpoint-dir", "x", "-checkpoint-every", "-3"},
		{"-gen", "webview", "-checkpoint-dir", "x", "-checkpoint-keep", "0"},
		{"-gen", "webview", "-resume"},                     // no -checkpoint-dir
		{"-input", "-", "-checkpoint-dir", "x", "-resume"}, // stdin cannot replay
		{"-gen", "webview", "-n", "0"},
		{"-gen", "webview", "-window", "0"},
		{"-gen", "webview", "-support", "0"},
		{"-gen", "webview", "-vuln", "-1"},
		{"-gen", "webview", "-publish-every", "-1"},
		{"-gen", "webview", "-top", "-1"},
	}
	for i, args := range cases {
		var out bytes.Buffer
		if err := run(args, strings.NewReader(""), &out); err == nil {
			t.Errorf("case %d (%v) did not error", i, args)
		}
	}
}
