// Command experiments regenerates the evaluation figures of the Butterfly
// paper (Wang & Liu, ICDE 2008, §VII) as text series: for every figure it
// prints one table per panel, one row per x-value, one column per series.
//
// Usage:
//
//	experiments -fig 4              # one figure at paper scale (100 windows)
//	experiments -fig 0 -windows 20  # all figures, reduced window count
//	experiments -fig 5 -dataset POS # one dataset only
//
// Absolute numbers (especially Fig. 8 timings) depend on the host; the
// qualitative shapes are the reproduction target — see EXPERIMENTS.md.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/experiment"
)

func main() {
	// Buffer stdout and check every write: a full disk or closed pipe must
	// fail the command, not silently truncate a figure.
	out := bufio.NewWriter(os.Stdout)
	err := run(out)
	if ferr := out.Flush(); err == nil {
		err = ferr
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
}

func run(out *bufio.Writer) error {
	var (
		fig        = flag.Int("fig", 0, "figure to regenerate (4-8); 0 runs all")
		ablation   = flag.String("ablation", "", "run an ablation instead of a figure: knowledge, republication or suppression")
		windows    = flag.Int("windows", 100, "published windows measured per configuration")
		windowSize = flag.Int("window-size", 2000, "sliding window H (Fig. 8 uses 5000 when left at default)")
		stride     = flag.Int("stride", 1, "record slides between consecutive publications")
		seed       = flag.Uint64("seed", 1, "random seed for data generation and perturbation")
		gamma      = flag.Int("gamma", 2, "order-preserving DP lookback γ")
		dataset    = flag.String("dataset", "", "restrict to one dataset: WebView1 or POS (default both)")
		pseeds     = flag.Int("privacy-seeds", 5, "independent perturbation runs averaged by the Fig. 4 privacy metric")
		format     = flag.String("format", "table", "output format: table or csv")
	)
	flag.Parse()
	if *format != "table" && *format != "csv" {
		return fmt.Errorf("unknown format %q (table, csv)", *format)
	}
	outputFormat = *format

	opts := experiment.FigureOptions{
		WindowSize:    *windowSize,
		Windows:       *windows,
		Stride:        *stride,
		Seed:          *seed,
		Gamma:         *gamma,
		DatasetFilter: *dataset,
		PrivacySeeds:  *pseeds,
	}

	if *ablation != "" {
		if err := runAblation(out, *ablation, opts); err != nil {
			return fmt.Errorf("ablation %s: %w", *ablation, err)
		}
		return nil
	}

	figs := []int{*fig}
	if *fig == 0 {
		figs = []int{4, 5, 6, 7, 8}
	}
	for _, f := range figs {
		t0 := time.Now()
		panels, err := experiment.Figure(f, opts)
		if err != nil {
			return fmt.Errorf("figure %d: %w", f, err)
		}
		for _, p := range panels {
			if err := printPanel(out, p); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(out, "# figure %d regenerated in %v\n\n",
			f, time.Since(t0).Round(time.Millisecond)); err != nil {
			return err
		}
		// Flush after every figure so long runs stream progress instead of
		// holding everything until exit.
		if err := out.Flush(); err != nil {
			return err
		}
	}
	return nil
}

var outputFormat = "table"

func printPanel(w io.Writer, p experiment.Panel) error {
	if outputFormat == "csv" {
		_, err := io.WriteString(w, p.CSV())
		return err
	}
	if _, err := io.WriteString(w, p.Table()); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w)
	return err
}

// runAblation executes one of the design-choice ablations DESIGN.md calls
// out and prints its series.
func runAblation(out io.Writer, name string, opts experiment.FigureOptions) error {
	if opts.WindowSize == 0 {
		opts.WindowSize = 2000
	}
	if opts.Windows == 0 {
		opts.Windows = 100
	}
	if opts.Stride == 0 {
		opts.Stride = 1
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	ds := experiment.Datasets()[0]
	if opts.DatasetFilter == "POS" {
		ds = experiment.Datasets()[1]
	}
	params := core.Params{Epsilon: 0.016, Delta: 0.4, MinSupport: 25, VulnSupport: 5}

	switch name {
	case "knowledge":
		w, err := experiment.Precompute(ds, opts.WindowSize, opts.Windows, opts.Stride, 25, 5, opts.Seed, true)
		if err != nil {
			return err
		}
		s, err := experiment.AblationKnowledge(w, params, core.Basic{}, opts.Seed,
			[]int{0, 1, 2, 4, 8, 16, 32, 64})
		if err != nil {
			return err
		}
		return printPanel(out, experiment.Panel{
			Title:  fmt.Sprintf("Ablation %s: privacy vs adversary knowledge points (δ=%.2g)", ds.Name, params.Delta),
			XLabel: "knowledge points (top-k true supports)", YLabel: "avg_prig",
			Series: []experiment.Series{s},
		})
	case "republication":
		w, err := experiment.Precompute(ds, opts.WindowSize, opts.Windows, opts.Stride, 25, 5, opts.Seed, false)
		if err != nil {
			return err
		}
		series, err := experiment.AblationRepublication(w, params, core.Basic{}, opts.Seed)
		if err != nil {
			return err
		}
		return printPanel(out, experiment.Panel{
			Title:  fmt.Sprintf("Ablation %s: averaging adversary MSE vs observed windows", ds.Name),
			XLabel: "windows observed", YLabel: "MSE of averaged estimate",
			Series: series,
		})
	case "suppression":
		w, err := experiment.Precompute(ds, opts.WindowSize, opts.Windows, opts.Stride, 25, 5, opts.Seed, false)
		if err != nil {
			return err
		}
		cmp, err := experiment.AblationSuppression(w, params, core.Hybrid{Lambda: 0.4}, opts.Seed)
		if err != nil {
			return err
		}
		if _, err := fmt.Fprintf(out, "== Ablation %s: detecting-then-removing vs Butterfly (%d windows) ==\n",
			ds.Name, cmp.Windows); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(out, "suppression: deletes %.1f%% of published itemsets/window, %.1f detect-remove rounds, %v total\n",
			100*cmp.SuppressedFrac, cmp.SuppressRounds, cmp.SuppressTime.Round(time.Millisecond)); err != nil {
			return err
		}
		_, err = fmt.Fprintf(out, "butterfly:   deletes nothing, avg_pred %.4g (ε=%.2g), %v total\n",
			cmp.ButterflyPred, params.Epsilon, cmp.ButterflyTime.Round(time.Millisecond))
		return err
	default:
		return fmt.Errorf("unknown ablation %q (knowledge, republication, suppression)", name)
	}
}
