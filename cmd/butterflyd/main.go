// Command butterflyd is the long-running Butterfly sanitization service: it
// hosts many independent sanitized streams behind an HTTP API (see
// internal/server) next to the usual observability endpoints (/metrics,
// /debug/vars, /debug/pprof).
//
//	butterflyd -addr :8080 -data-dir /var/lib/butterflyd
//
// With -data-dir, acceptance is durable: every 2xx ingest response means
// the lines are fsynced to the stream's write-ahead log, and a restart
// over the same directory recovers every admitted stream — checkpoints,
// WAL tails, quarantine states — so a kill -9 loses nothing accepted.
//
// Streams are created, fed, and drained over the v1 control plane:
//
//	POST   /v1/streams                 create (JSON body, see StreamConfig)
//	GET    /v1/streams                 list
//	GET    /v1/streams/{id}            status
//	DELETE /v1/streams/{id}            delete
//	POST   /v1/streams/{id}/records    ingest (one transaction per line)
//	POST   /v1/streams/{id}/close      end of stream: final window + checkpoint
//	POST   /v1/streams/{id}/pause      gate the stream's source
//	POST   /v1/streams/{id}/resume     reopen the gate / leave quarantine
//	GET    /v1/streams/{id}/windows    retained published windows (?from=N)
//	GET    /v1/streams/{id}/trace      flight-recorder spans (trace_windows > 0)
//
// Health probes ride the same mux: GET /healthz is liveness plus a
// diagnostic snapshot (always 200 once the listener binds — the daemon
// binds before boot recovery so probes can watch a long WAL replay), and
// GET /readyz is readiness (503 with reasons while recovering or
// draining). The /v1 surface is gated 503 until recovery completes.
//
// The first SIGINT/SIGTERM starts a graceful drain: ingest is refused, every
// stream publishes its final window and checkpoints, and the process exits
// once all streams settle or -drain-timeout expires. A second signal aborts
// immediately.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
	"repro/internal/telemetry"
)

// serverStarted, when non-nil, receives the bound address once the listener
// is up. Test-only: the end-to-end test uses it to discover the :0 port.
var serverStarted func(addr string)

// flagValues collects the flags for up-front validation.
type flagValues struct {
	addr             string
	maxStreams       int
	maxInflightBytes int64
	queueDepth       int
	history          int
	breakerFailures  int
	restartBackoff   time.Duration
	replayLimit      int
	drainTimeout     time.Duration
	ckptFullEvery    int
}

// validateFlags rejects values that would otherwise surface as undefined
// behavior deep inside the service — a clear usage error at startup instead.
func validateFlags(v flagValues) error {
	if v.addr == "" {
		return fmt.Errorf("-addr must not be empty")
	}
	if v.maxStreams < 1 {
		return fmt.Errorf("-max-streams %d must be >= 1", v.maxStreams)
	}
	if v.maxInflightBytes < 1 {
		return fmt.Errorf("-max-inflight-bytes %d must be >= 1", v.maxInflightBytes)
	}
	if v.queueDepth < 1 {
		return fmt.Errorf("-queue-depth %d must be >= 1", v.queueDepth)
	}
	if v.history < 1 {
		return fmt.Errorf("-history %d must be >= 1", v.history)
	}
	if v.breakerFailures < 1 {
		return fmt.Errorf("-breaker-failures %d must be >= 1", v.breakerFailures)
	}
	if v.restartBackoff <= 0 {
		return fmt.Errorf("-restart-backoff %v must be > 0", v.restartBackoff)
	}
	if v.replayLimit < 1 {
		return fmt.Errorf("-replay-limit %d must be >= 1", v.replayLimit)
	}
	if v.drainTimeout <= 0 {
		return fmt.Errorf("-drain-timeout %v must be > 0", v.drainTimeout)
	}
	if v.ckptFullEvery < 1 {
		return fmt.Errorf("-checkpoint-full-every %d must be >= 1 (1: every checkpoint a full snapshot)", v.ckptFullEvery)
	}
	return nil
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "butterflyd: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("butterflyd", flag.ContinueOnError)
	var (
		addr            = fs.String("addr", ":8080", "HOST:PORT the service listens on")
		dataDir         = fs.String("data-dir", "", "durable state root: stream manifest, per-stream checkpoints + ingest WAL under DIR/streams/<stream-id>/ (empty: memory only)")
		checkpointRoot  = fs.String("checkpoint-root", "", "deprecated alias for -data-dir")
		maxStreams      = fs.Int("max-streams", 1024, "admission cap on concurrently hosted streams")
		maxInflight     = fs.Int64("max-inflight-bytes", 256<<20, "server-wide cap on queued ingest bytes (503 beyond it)")
		queueDepth      = fs.Int("queue-depth", 1024, "default per-stream ingest queue depth in records (429 when full)")
		history         = fs.Int("history", 64, "default published windows retained per stream for GET /windows")
		breakerFailures = fs.Int("breaker-failures", 3, "consecutive failed runs before a stream is quarantined")
		restartBackoff  = fs.Duration("restart-backoff", 25*time.Millisecond, "initial in-process restart delay (doubles per consecutive failure)")
		replayLimit     = fs.Int("replay-limit", 65536, "per-stream replay buffer cap in records (restartability bound)")
		ckptFullEvery   = fs.Int("checkpoint-full-every", 16, "default checkpoints between full snapshots per stream; the rest are delta frames (1: all full)")
		drainTimeout    = fs.Duration("drain-timeout", 30*time.Second, "graceful-drain deadline after the first signal")
		logJSON         = fs.Bool("log-json", false, "emit logs as structured JSON (log/slog) on stderr")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dataDir == "" {
		*dataDir = *checkpointRoot
	} else if *checkpointRoot != "" && *checkpointRoot != *dataDir {
		return fmt.Errorf("-checkpoint-root is a deprecated alias for -data-dir; set only one")
	}
	if err := validateFlags(flagValues{
		addr: *addr, maxStreams: *maxStreams, maxInflightBytes: *maxInflight,
		queueDepth: *queueDepth, history: *history,
		breakerFailures: *breakerFailures, restartBackoff: *restartBackoff,
		replayLimit: *replayLimit, drainTimeout: *drainTimeout,
		ckptFullEvery: *ckptFullEvery,
	}); err != nil {
		return err
	}

	var handler slog.Handler
	if *logJSON {
		handler = slog.NewJSONHandler(os.Stderr, nil)
	} else {
		handler = slog.NewTextHandler(os.Stderr, nil)
	}
	logger := slog.New(handler)

	reg := telemetry.NewRegistry()
	srv := server.New(server.Options{
		DataDir:             *dataDir,
		MaxStreams:          *maxStreams,
		MaxInflightBytes:    *maxInflight,
		QueueDepth:          *queueDepth,
		History:             *history,
		BreakerFailures:     *breakerFailures,
		RestartBackoff:      *restartBackoff,
		ReplayLimit:         *replayLimit,
		DrainTimeout:        *drainTimeout,
		CheckpointFullEvery: *ckptFullEvery,
		Logger:              logger,
		Registry:            reg,
	})

	// One mux serves the v1 control plane and the observability endpoints.
	mux := reg.Mux()
	srv.Routes(mux)

	// A durable boot binds the listener *before* recovery runs, so probes
	// can watch a long WAL replay instead of timing out on a dead port:
	// /healthz answers 200 immediately, /readyz says "recovering", and the
	// gated /v1 surface refuses with 503 + Retry-After until the registry
	// is rebuilt. Clients still never reach half-adopted streams.
	if *dataDir != "" {
		srv.BeginBoot()
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("-addr: %w", err)
	}
	// Slow-loris hardening, matching cmd/butterfly's telemetry server: a
	// client trickling headers, idling keep-alives, or never draining a
	// response cannot pin the process open past the drain deadline. The
	// write timeout is generous because /debug/pprof/profile?seconds=N
	// streams for the profile duration. Ingest bodies are read under it
	// too, so a well-behaved client should keep individual POSTs bounded.
	hs := &http.Server{
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       60 * time.Second,
		WriteTimeout:      2 * time.Minute,
		MaxHeaderBytes:    1 << 20,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	if serverStarted != nil {
		serverStarted(ln.Addr().String())
	}

	if *dataDir != "" {
		rep, err := srv.Recover()
		if err != nil {
			hs.Close()
			return fmt.Errorf("recovering %s: %w", *dataDir, err)
		}
		logger.Info("recovered", "data_dir", *dataDir, "adopted", rep.Adopted,
			"parked", rep.Parked, "replayed", rep.Replayed, "orphans_swept", len(rep.Orphans),
			"took", rep.Took.String(), "chain_apply", rep.ChainApply.String(),
			"wal_replay", rep.WALReplay.String(),
			"replay_lines_per_sec", fmt.Sprintf("%.0f", rep.ReplayRate))
	}
	// Logged after recovery on purpose: tooling that waits for this line
	// gets a server whose /v1 surface is open for business.
	logger.Info("butterflyd listening", "addr", ln.Addr().String(),
		"data_dir", *dataDir, "max_streams", *maxStreams)

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)

	select {
	case err := <-serveErr:
		srv.Abort()
		return fmt.Errorf("serve: %w", err)
	case sig := <-sigc:
		logger.Info("draining", "signal", sig.String(), "deadline", drainTimeout.String())
	}

	// Graceful drain under the deadline; a second signal aborts immediately.
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	done := make(chan server.DrainReport, 1)
	go func() { done <- srv.Shutdown(drainCtx) }()

	var rep server.DrainReport
	select {
	case rep = <-done:
	case sig := <-sigc:
		logger.Warn("drain aborted", "signal", sig.String())
		cancel()
		srv.Abort()
		rep = <-done
	}

	// Stop accepting HTTP after the streams settle (requests racing the
	// drain got their 503s from the draining flag, not connection resets).
	shctx, shcancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer shcancel()
	if err := hs.Shutdown(shctx); err != nil {
		logger.Warn("http shutdown", "error", err.Error())
	}

	for id, state := range rep.Streams {
		logger.Info("stream drained", "stream", id, "state", state)
	}
	fmt.Fprintf(stdout, "butterflyd: drained %d streams in %s (clean=%v)\n",
		len(rep.Streams), rep.Took.Round(time.Millisecond), rep.Clean)
	if !rep.Clean {
		return fmt.Errorf("drain incomplete after %s", rep.Took.Round(time.Millisecond))
	}
	return nil
}
