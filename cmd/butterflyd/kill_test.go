package main

// Real-process kill-and-recover chaos test: the daemon is re-executed as a
// child process (see TestMain), fed over real HTTP by a durability-aware
// client, and SIGKILLed — no drain, no warning — several times mid-stream.
// Each successor boots over the same -data-dir, steals the dead process's
// lease (the pid is gone), recovers the stream, and the client resumes from
// its acknowledged offset. Nothing the client got a 2xx for may be lost
// (a loss would surface as a 409 offset gap), every window observed across
// all incarnations must be byte-identical to an uninterrupted run's, and
// the stream must still drain to done at the end.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"testing"
	"time"
)

const (
	childEnv     = "BUTTERFLYD_KILL_CHILD"
	childArgsEnv = "BUTTERFLYD_KILL_ARGS"
)

// TestMain doubles as the daemon entry point: with childEnv set, the test
// binary runs the real daemon main loop instead of the test suite, so the
// chaos test can SIGKILL an actual butterflyd process and watch a fresh one
// recover its data dir.
func TestMain(m *testing.M) {
	if os.Getenv(childEnv) == "1" {
		args := strings.Split(os.Getenv(childArgsEnv), "\x1f")
		if err := run(args, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "butterflyd: %v\n", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// daemon is one child butterflyd process.
type daemon struct {
	t    *testing.T
	cmd  *exec.Cmd
	base string // http://host:port
}

// startDaemon re-execs the test binary as butterflyd on 127.0.0.1:0 over
// dataDir and waits for the listening log line to learn the port.
func startDaemon(t *testing.T, dataDir string) *daemon {
	t.Helper()
	args := []string{
		"-addr", "127.0.0.1:0",
		"-data-dir", dataDir,
		"-drain-timeout", "30s",
		"-restart-backoff", "5ms",
		"-log-json",
	}
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(),
		childEnv+"=1",
		childArgsEnv+"="+strings.Join(args, "\x1f"))
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	d := &daemon{t: t, cmd: cmd}
	t.Cleanup(func() {
		if d.cmd.ProcessState == nil {
			d.cmd.Process.Kill()
			d.cmd.Wait()
		}
	})

	// The listening address arrives as a structured log line on stderr; keep
	// draining the pipe afterwards so the child never blocks on a full pipe.
	addrc := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			var line struct {
				Msg  string `json:"msg"`
				Addr string `json:"addr"`
			}
			if json.Unmarshal(sc.Bytes(), &line) == nil && line.Msg == "butterflyd listening" {
				select {
				case addrc <- line.Addr:
				default:
				}
			}
		}
	}()
	select {
	case addr := <-addrc:
		d.base = "http://" + addr
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never logged its listening address")
	}
	return d
}

// kill delivers SIGKILL and reaps the child — the reap matters: the pid must
// be truly gone so the successor's lease acquisition sees a stale owner.
func (d *daemon) kill() {
	d.t.Helper()
	if err := d.cmd.Process.Kill(); err != nil {
		d.t.Fatal(err)
	}
	if err := d.cmd.Wait(); err == nil {
		d.t.Fatal("SIGKILLed daemon exited cleanly")
	}
}

// term asks for a graceful drain and waits for a clean exit.
func (d *daemon) term() {
	d.t.Helper()
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		d.t.Fatal(err)
	}
	if err := d.cmd.Wait(); err != nil {
		d.t.Fatalf("daemon exit after SIGTERM: %v", err)
	}
}

func (d *daemon) post(path, body string) (int, []byte) {
	d.t.Helper()
	resp, err := http.Post(d.base+path, "application/octet-stream", strings.NewReader(body))
	if err != nil {
		d.t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, b
}

func (d *daemon) get(path string, out any) {
	d.t.Helper()
	resp, err := http.Get(d.base + path)
	if err != nil {
		d.t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		d.t.Fatalf("GET %s: %d %s", path, resp.StatusCode, b)
	}
	if err := json.Unmarshal(b, out); err != nil {
		d.t.Fatalf("GET %s: bad body %q: %v", path, b, err)
	}
}

func (d *daemon) windows(id string) map[int]string {
	d.t.Helper()
	var out struct {
		Windows []struct {
			Position int    `json:"position"`
			Body     string `json:"body"`
		} `json:"windows"`
	}
	d.get("/v1/streams/"+id+"/windows", &out)
	m := map[int]string{}
	for _, w := range out.Windows {
		m[w.Position] = w.Body
	}
	return m
}

func (d *daemon) waitDone(id string) {
	d.t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		var st struct {
			State string `json:"state"`
		}
		d.get("/v1/streams/"+id, &st)
		if st.State == "done" {
			return
		}
		if time.Now().After(deadline) {
			d.t.Fatalf("stream %s stuck in %q", id, st.State)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

const killStreamCfg = `{"id":"k","window":100,"epsilon":0.1,"delta":0.4,` +
	`"min_support":10,"vuln_support":5,"scheme":"hybrid","lambda":0.4,` +
	`"seed":11,"publish_every":50,"checkpoint_every":1,"history":64}`

func killInput(n int) []string {
	lines := make([]string, n)
	for i := range lines {
		lines[i] = fmt.Sprintf("i%d i%d i%d i%d", i%7, (i+1)%9, (i+3)%11, (i+5)%13)
	}
	return lines
}

// feedTo sends lines until at least target are acked, always carrying the
// acked offset so retries and post-kill resends are idempotent. It fatals on
// any response the durability contract forbids — a 409 here means recovery
// lost acknowledged lines.
func feedTo(d *daemon, lines []string, acked *int, target int) {
	d.t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for *acked < target {
		end := *acked + 31
		if end > len(lines) {
			end = len(lines)
		}
		chunk := strings.Join(lines[*acked:end], "\n") + "\n"
		code, body := d.post(fmt.Sprintf("/v1/streams/k/records?offset=%d", *acked), chunk)
		var ir struct {
			Accepted      int    `json:"accepted"`
			AcceptedLines int    `json:"accepted_lines"`
			Error         string `json:"error"`
		}
		if err := json.Unmarshal(body, &ir); err != nil {
			d.t.Fatalf("ingest: bad body %q", body)
		}
		switch code {
		case http.StatusOK, http.StatusTooManyRequests, http.StatusServiceUnavailable:
			*acked += ir.Accepted
			if ir.AcceptedLines > *acked && ir.AcceptedLines <= len(lines) {
				*acked = ir.AcceptedLines
			}
			if code != http.StatusOK {
				time.Sleep(5 * time.Millisecond)
			}
		default:
			d.t.Fatalf("ingest at offset %d: %d %s", *acked, code, body)
		}
		if time.Now().After(deadline) {
			d.t.Fatalf("ingest stuck at %d/%d", *acked, target)
		}
	}
}

func TestKillDashNineRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real daemon processes")
	}
	lines := killInput(500)

	// Reference: one uninterrupted daemon over the same input.
	refDir := t.TempDir()
	refd := startDaemon(t, refDir)
	if code, body := refd.post("/v1/streams", killStreamCfg); code != http.StatusCreated {
		t.Fatalf("reference create: %d %s", code, body)
	}
	refAcked := 0
	feedTo(refd, lines, &refAcked, len(lines))
	if code, body := refd.post("/v1/streams/k/close", ""); code != http.StatusOK {
		t.Fatalf("reference close: %d %s", code, body)
	}
	refd.waitDone("k")
	ref := refd.windows("k")
	refd.term()
	if len(ref) == 0 {
		t.Fatal("reference run published no windows")
	}

	// Chaos run: SIGKILL at three points mid-stream, recover each time.
	dataDir := t.TempDir()
	d := startDaemon(t, dataDir)
	if code, body := d.post("/v1/streams", killStreamCfg); code != http.StatusCreated {
		t.Fatalf("create: %d %s", code, body)
	}
	union := map[int]string{}
	merge := func(got map[int]string) {
		t.Helper()
		for pos, body := range got {
			if prev, ok := union[pos]; ok && prev != body {
				t.Errorf("window at position %d republished with different bytes", pos)
			}
			union[pos] = body
		}
	}
	acked := 0
	for _, kill := range []int{120, 260, 400} {
		feedTo(d, lines, &acked, kill)
		merge(d.windows("k"))
		d.kill()
		d = startDaemon(t, dataDir)
	}
	feedTo(d, lines, &acked, len(lines))
	if code, body := d.post("/v1/streams/k/close", ""); code != http.StatusOK {
		t.Fatalf("close: %d %s", code, body)
	}
	d.waitDone("k")
	merge(d.windows("k"))

	// Every window observed across the four incarnations is byte-identical
	// to the uninterrupted run's, and the final window made it out.
	for pos, body := range union {
		if want, ok := ref[pos]; !ok {
			t.Errorf("chaos run published spurious window at position %d", pos)
		} else if want != body {
			t.Errorf("window at position %d differs from the uninterrupted run", pos)
		}
	}
	if union[500] != ref[500] || ref[500] == "" {
		t.Errorf("final window missing or wrong (union has %d windows, reference %d)", len(union), len(ref))
	}
	d.term()
}
