package main

// End-to-end health-probe contract: /healthz answers 200 the moment the
// listener binds (even mid-recovery), /readyz flips 503→200→503 across
// the boot-recovery → serving → draining lifecycle, and the /v1 surface
// is gated while recovery runs. The recovery phase is made observable by
// scraping from inside the serverStarted hook, which run() calls
// synchronously between binding the listener and calling Recover.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"syscall"
	"testing"
	"time"
)

// probeGet fetches url, returning the status code and body; a transport
// error reports 0 (the server may legitimately be gone during shutdown).
func probeGet(url string) (int, []byte) {
	resp, err := http.Get(url)
	if err != nil {
		return 0, nil
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, b
}

// waitReady polls /readyz until it answers 200.
func waitReady(t *testing.T, base string, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		if code, _ := probeGet(base + "/readyz"); code == http.StatusOK {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("/readyz never answered 200")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

type readyResponse struct {
	Ready   bool     `json:"ready"`
	Reasons []string `json:"reasons"`
}

func hasReason(r readyResponse, want string) bool {
	for _, reason := range r.Reasons {
		if reason == want {
			return true
		}
	}
	return false
}

func TestHealthReadyTransitions(t *testing.T) {
	addrc := make(chan string, 1)
	// Phase A runs inside the hook: run() calls it after the listener is
	// up but before Recover, so the server is provably mid-boot while the
	// probes are scraped. Failures use t.Errorf (the hook is not the test
	// goroutine).
	serverStarted = func(addr string) {
		base := "http://" + addr
		code, body := probeGet(base + "/healthz")
		if code != http.StatusOK {
			t.Errorf("boot /healthz: got %d, want 200 (liveness must answer during recovery)", code)
		}
		var health struct {
			Status     string `json:"status"`
			Ready      bool   `json:"ready"`
			Recovering bool   `json:"recovering"`
		}
		if err := json.Unmarshal(body, &health); err != nil {
			t.Errorf("boot /healthz body %q: %v", body, err)
		} else if health.Status != "recovering" || health.Ready || !health.Recovering {
			t.Errorf("boot /healthz reported %+v, want status=recovering ready=false", health)
		}
		code, body = probeGet(base + "/readyz")
		var ready readyResponse
		json.Unmarshal(body, &ready)
		if code != http.StatusServiceUnavailable || !hasReason(ready, "recovering") {
			t.Errorf("boot /readyz: got %d %s, want 503 with reason \"recovering\"", code, body)
		}
		if code, body = probeGet(base + "/v1/streams"); code != http.StatusServiceUnavailable {
			t.Errorf("boot /v1/streams: got %d %s, want 503 (gated during recovery)", code, body)
		}
		addrc <- addr
	}
	defer func() { serverStarted = nil }()

	var out bytes.Buffer
	runErr := make(chan error, 1)
	go func() {
		runErr <- run([]string{
			"-addr", "127.0.0.1:0",
			"-data-dir", t.TempDir(),
			"-drain-timeout", "60s",
			"-log-json",
		}, &out)
	}()
	var base string
	select {
	case addr := <-addrc:
		base = "http://" + addr
	case err := <-runErr:
		t.Fatalf("run exited before listening: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server did not start")
	}

	// Phase B: recovery over the empty data dir completes and the server
	// turns ready; the /v1 surface opens and /healthz reflects live streams.
	waitReady(t, base, 10*time.Second)

	post := func(path, body string, want int) []byte {
		t.Helper()
		resp, err := http.Post(base+path, "application/octet-stream", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != want {
			t.Fatalf("POST %s: %d %s, want %d", path, resp.StatusCode, b, want)
		}
		return b
	}
	var input strings.Builder
	for i := 0; i < 150; i++ {
		fmt.Fprintf(&input, "i%d i%d i%d\n", i%7, (i+1)%7, (i+3)%11)
	}
	post("/v1/streams", `{"id":"hz","window":50,"epsilon":0.1,"delta":0.4,"min_support":5,"vuln_support":2,"seed":7,"publish_every":50,"checkpoint_every":1}`, http.StatusCreated)
	post("/v1/streams/hz/records", input.String(), http.StatusOK)
	post("/v1/streams/hz/close", "", http.StatusOK)

	// The closed stream drains to done and its final checkpoint stamps
	// last_checkpoint_age into the status JSON.
	deadline := time.Now().Add(10 * time.Second)
	for {
		code, body := probeGet(base + "/v1/streams/hz")
		if code != http.StatusOK {
			t.Fatalf("status hz: %d %s", code, body)
		}
		var status struct {
			State             string  `json:"state"`
			LastCheckpointAge float64 `json:"last_checkpoint_age"`
		}
		if err := json.Unmarshal(body, &status); err != nil {
			t.Fatal(err)
		}
		if status.State == "done" && status.LastCheckpointAge > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stream hz stuck: %s", body)
		}
		time.Sleep(10 * time.Millisecond)
	}
	code, body := probeGet(base + "/healthz")
	if code != http.StatusOK {
		t.Fatalf("serving /healthz: %d", code)
	}
	var health struct {
		Status  string         `json:"status"`
		Ready   bool           `json:"ready"`
		Streams map[string]int `json:"streams"`
		Uptime  float64        `json:"uptime_seconds"`
	}
	if err := json.Unmarshal(body, &health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" || !health.Ready || health.Streams["done"] < 1 || health.Uptime <= 0 {
		t.Errorf("serving /healthz reported %+v, want status=ok ready=true with a done stream", health)
	}

	// Phase C: the drain itself is too fast on a test box to catch by
	// timing, so the test holds it open deterministically: an ingest
	// request left in flight on a raw connection pins Shutdown's
	// closeIngest (which waits for in-flight requests), keeping the
	// server in the draining state until the connection goes away.
	post("/v1/streams", `{"id":"drain","window":50,"epsilon":0.1,"delta":0.4,"min_support":5,"vuln_support":2,"seed":9,"publish_every":50,"checkpoint_every":1}`, http.StatusCreated)
	var input2 strings.Builder
	for i := 0; i < 150; i++ {
		fmt.Fprintf(&input2, "i%d i%d i%d\n", i%7, (i+1)%7, (i+3)%11)
	}
	post("/v1/streams/drain/records", input2.String(), http.StatusOK)

	conn, err := net.Dial("tcp", strings.TrimPrefix(base, "http://"))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Headers plus one complete line of a much longer body; the handler
	// blocks reading the rest while holding the stream's ingest lock.
	fmt.Fprintf(conn, "POST /v1/streams/drain/records HTTP/1.1\r\nHost: butterflyd\r\n"+
		"Content-Type: application/octet-stream\r\nContent-Length: 1000000\r\n\r\ni1 i2 i3\n")
	// Give the handler time to reach the body read before the drain starts;
	// if it loses this race the poll loop below fails loudly, not flakily.
	time.Sleep(250 * time.Millisecond)

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	sawDraining := false
	drainDeadline := time.Now().Add(10 * time.Second)
	for !sawDraining {
		code, body := probeGet(base + "/readyz")
		var ready readyResponse
		json.Unmarshal(body, &ready)
		if code == http.StatusServiceUnavailable && hasReason(ready, "draining") {
			sawDraining = true
			break
		}
		if time.Now().After(drainDeadline) {
			t.Fatalf("/readyz never reported 503 \"draining\" (last: %d %s)", code, body)
		}
		time.Sleep(time.Millisecond)
	}
	conn.Close() // release the in-flight ingest; the drain completes
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("run: %v", err)
		}
	case <-time.After(90 * time.Second):
		t.Fatal("daemon did not drain after SIGTERM")
	}
	if !strings.Contains(out.String(), "clean=true") {
		t.Errorf("unexpected drain summary: %q", out.String())
	}
}
