package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"syscall"
	"testing"
	"time"
)

func validFlags() flagValues {
	return flagValues{
		addr:             ":0",
		maxStreams:       8,
		maxInflightBytes: 1 << 20,
		queueDepth:       16,
		history:          4,
		breakerFailures:  3,
		restartBackoff:   time.Millisecond,
		replayLimit:      1024,
		drainTimeout:     time.Second,
		ckptFullEvery:    16,
	}
}

func TestValidateFlags(t *testing.T) {
	if err := validateFlags(validFlags()); err != nil {
		t.Fatalf("valid flags rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*flagValues)
		want   string
	}{
		{"empty addr", func(v *flagValues) { v.addr = "" }, "-addr"},
		{"zero max-streams", func(v *flagValues) { v.maxStreams = 0 }, "-max-streams"},
		{"negative max-streams", func(v *flagValues) { v.maxStreams = -3 }, "-max-streams"},
		{"zero inflight bytes", func(v *flagValues) { v.maxInflightBytes = 0 }, "-max-inflight-bytes"},
		{"zero queue depth", func(v *flagValues) { v.queueDepth = 0 }, "-queue-depth"},
		{"zero history", func(v *flagValues) { v.history = 0 }, "-history"},
		{"zero breaker failures", func(v *flagValues) { v.breakerFailures = 0 }, "-breaker-failures"},
		{"zero restart backoff", func(v *flagValues) { v.restartBackoff = 0 }, "-restart-backoff"},
		{"negative restart backoff", func(v *flagValues) { v.restartBackoff = -time.Second }, "-restart-backoff"},
		{"zero replay limit", func(v *flagValues) { v.replayLimit = 0 }, "-replay-limit"},
		{"zero drain timeout", func(v *flagValues) { v.drainTimeout = 0 }, "-drain-timeout"},
		{"zero checkpoint-full-every", func(v *flagValues) { v.ckptFullEvery = 0 }, "-checkpoint-full-every"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			v := validFlags()
			tc.mutate(&v)
			err := validateFlags(v)
			if err == nil {
				t.Fatalf("%+v passed validation", v)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not name the flag %q", err, tc.want)
			}
		})
	}
}

func TestRunFlagErrors(t *testing.T) {
	for i, args := range [][]string{
		{"-max-streams", "0"},
		{"-queue-depth", "-1"},
		{"-drain-timeout", "0s"},
		{"-restart-backoff", "-5ms"},
		{"-no-such-flag"},
	} {
		var out bytes.Buffer
		if err := run(args, &out); err == nil {
			t.Errorf("case %d (%v) did not error", i, args)
		}
	}
}

// TestRunEndToEnd boots the daemon on :0, drives a stream through the full
// lifecycle over real HTTP (create, ingest, close, windows), then delivers
// SIGTERM and expects a clean drain with the summary line on stdout.
func TestRunEndToEnd(t *testing.T) {
	addrc := make(chan string, 1)
	serverStarted = func(addr string) { addrc <- addr }
	defer func() { serverStarted = nil }()

	var out bytes.Buffer
	runErr := make(chan error, 1)
	go func() {
		runErr <- run([]string{
			"-addr", "127.0.0.1:0",
			"-checkpoint-root", t.TempDir(),
			"-drain-timeout", "30s",
			"-log-json",
		}, &out)
	}()

	var base string
	select {
	case addr := <-addrc:
		base = "http://" + addr
	case err := <-runErr:
		t.Fatalf("run exited before listening: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server did not start")
	}
	// serverStarted fires as soon as the listener binds — before boot
	// recovery; wait for readiness so the /v1 calls below are not refused.
	waitReady(t, base, 10*time.Second)

	post := func(path, body string, want int) []byte {
		t.Helper()
		resp, err := http.Post(base+path, "application/octet-stream", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != want {
			t.Fatalf("POST %s: %d %s, want %d", path, resp.StatusCode, b, want)
		}
		return b
	}

	post("/v1/streams", `{"id":"e2e","window":50,"epsilon":0.1,"delta":0.4,"min_support":5,"vuln_support":2,"seed":7,"publish_every":50,"checkpoint_every":1}`, http.StatusCreated)

	var input strings.Builder
	for i := 0; i < 150; i++ {
		fmt.Fprintf(&input, "i%d i%d i%d\n", i%7, (i+1)%7, (i+3)%11)
	}
	var ir struct {
		Accepted int `json:"accepted"`
	}
	if err := json.Unmarshal(post("/v1/streams/e2e/records", input.String(), http.StatusOK), &ir); err != nil {
		t.Fatal(err)
	}
	if ir.Accepted != 150 {
		t.Fatalf("accepted %d records, want 150", ir.Accepted)
	}
	post("/v1/streams/e2e/close", "", http.StatusOK)

	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(base + "/v1/streams/e2e/windows")
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		var wr struct {
			Windows []json.RawMessage `json:"windows"`
		}
		if err := json.Unmarshal(b, &wr); err != nil {
			t.Fatalf("windows response %s: %v", b, err)
		}
		if len(wr.Windows) >= 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d windows published, want 3: %s", len(wr.Windows), b)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// /metrics rides on the same listener as the control plane.
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(mb), "butterfly_server_streams") {
		t.Errorf("/metrics missing server gauges:\n%.400s", mb)
	}

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("run: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not drain after SIGTERM")
	}
	if !strings.Contains(out.String(), "drained 1 streams") || !strings.Contains(out.String(), "clean=true") {
		t.Errorf("unexpected drain summary: %q", out.String())
	}
}
