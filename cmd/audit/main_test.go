package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// Publish the paper's two example windows as audit-format files and verify
// the CLI reproduces the Example 5 inter-window breach.
func writeWindowFile(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// The true frequent itemsets (C=4) of the paperex windows, hand-written in
// the audit format with letter tokens.
const window11 = `# Ds(11,8), C=4
8 c
6 a
6 b
6 a c
6 b c
4 a b
4 a b c
`

const window12 = `# Ds(12,8), C=4
8 c
5 a
5 b
5 a c
5 b c
`

func TestAuditExample5(t *testing.T) {
	dir := t.TempDir()
	prev := writeWindowFile(t, dir, "w11.txt", window11)
	cur := writeWindowFile(t, dir, "w12.txt", window12)

	var out bytes.Buffer
	err := run([]string{"-window-size", "8", "-k", "1", "-slide", "1", prev, cur}, &out)
	if err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "inter-window") {
		t.Fatalf("no inter-window section:\n%s", text)
	}
	// The derived pattern c¬a¬b with support 1 must appear.
	if !strings.Contains(text, "c ¬a ¬b") {
		t.Errorf("Example 5 breach missing:\n%s", text)
	}
	if !strings.Contains(text, "support  1") {
		t.Errorf("support 1 missing:\n%s", text)
	}
}

func TestAuditSingleWindowClean(t *testing.T) {
	dir := t.TempDir()
	cur := writeWindowFile(t, dir, "w12.txt", window12)
	var out bytes.Buffer
	if err := run([]string{"-window-size", "8", "-k", "1", cur}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "0 intra-window breach(es)") {
		t.Errorf("Ds(12,8) alone should be immune:\n%s", out.String())
	}
}

func TestAuditErrors(t *testing.T) {
	dir := t.TempDir()
	f := writeWindowFile(t, dir, "w.txt", window12)
	cases := [][]string{
		{},                             // no files
		{"-window-size", "8"},          // still no files
		{f},                            // missing -window-size
		{"-window-size", "8", f, f, f}, // too many files
		{"-window-size", "8", filepath.Join(dir, "absent.txt")},
	}
	for i, args := range cases {
		var out bytes.Buffer
		if err := run(args, &out); err == nil {
			t.Errorf("case %d (%v) did not error", i, args)
		}
	}
}
