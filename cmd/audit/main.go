// Command audit runs the Butterfly paper's inference attacks (§IV) against
// published mining output, answering the operator's question "what could an
// adversary derive from what we just released?".
//
// It consumes published-output files in the format cmd/butterfly dumps with
// -dump-dir ("<support> <item tokens...>", one itemset per line):
//
//	audit -window-size 2000 -k 5 window-2000.txt
//	audit -window-size 2000 -k 5 -slide 1 window-2000.txt window-2001.txt
//
// With one file it reports every intra-window breach; with two consecutive
// files it additionally runs the inter-window attack across them. Run it on
// RAW output to enumerate real breaches (the derived supports are exact);
// run it on Butterfly-sanitized output to see what the adversary would
// *believe* — the derivations still execute, but their results carry the
// calibrated error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/attack"
	"repro/internal/data"
	"repro/internal/itemset"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "audit: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("audit", flag.ContinueOnError)
	var (
		windowSize = fs.Int("window-size", 0, "window size H the output was mined over (required)")
		k          = fs.Int("k", 5, "vulnerable support K: report patterns with 0 < support <= K")
		slide      = fs.Int("slide", 1, "records replaced between the two windows (two-file mode)")
		maxSize    = fs.Int("max-size", 6, "largest itemset size the attack derives from")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	files := fs.Args()
	if len(files) < 1 || len(files) > 2 {
		return fmt.Errorf("need one or two published-output files, got %d", len(files))
	}
	if *windowSize <= 0 {
		return fmt.Errorf("-window-size is required and must be positive")
	}

	vocab := data.NewVocabulary()
	views := make([]*attack.View, len(files))
	for i, path := range files {
		v, err := loadView(path, vocab, *windowSize)
		if err != nil {
			return err
		}
		views[i] = v
	}

	opts := attack.Options{VulnSupport: *k, MaxTargetSize: *maxSize}
	total := 0
	for i, v := range views {
		infs := attack.IntraWindow(v, opts)
		fmt.Fprintf(stdout, "%s: %d published itemsets, %d intra-window breach(es)\n",
			files[i], v.Len(), len(infs))
		printInferences(stdout, infs, vocab)
		total += len(infs)
	}
	if len(views) == 2 {
		infs := attack.InterWindow(views[0], views[1], *slide, opts)
		fmt.Fprintf(stdout, "inter-window (%s -> %s, slide %d): %d additional breach(es)\n",
			files[0], files[1], *slide, len(infs))
		printInferences(stdout, infs, vocab)
		total += len(infs)
	}
	fmt.Fprintf(stdout, "total: %d derivable vulnerable pattern(s) at K=%d\n", total, *k)
	return nil
}

func loadView(path string, vocab *data.Vocabulary, windowSize int) (*attack.View, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	entries, err := data.ReadPublished(f, vocab)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	sets := make([]itemset.Itemset, len(entries))
	sups := make([]int, len(entries))
	for i, e := range entries {
		sets[i] = e.Set
		sups[i] = e.Support
	}
	return attack.NewView(windowSize, sets, sups), nil
}

func printInferences(w io.Writer, infs []attack.Inference, vocab *data.Vocabulary) {
	for _, inf := range infs {
		fmt.Fprintf(w, "  support %2d  %s  (%s, via lattice X_%s^%s)\n",
			inf.Support, renderPattern(inf.Pattern, vocab), inf.Source,
			vocab.Render(inf.I), vocab.Render(inf.J))
	}
}

func renderPattern(p itemset.Pattern, vocab *data.Vocabulary) string {
	out := ""
	for _, it := range p.Positive.Items() {
		out += vocab.Token(it) + " "
	}
	for _, it := range p.Negative.Items() {
		out += "¬" + vocab.Token(it) + " "
	}
	if out == "" {
		return "∅"
	}
	return out[:len(out)-1]
}
