// Command datagen writes synthetic transaction streams in the conventional
// one-transaction-per-line format, for use with cmd/butterfly -input or any
// other frequent-pattern tool.
//
//	datagen -profile webview -n 59602 > webview.dat   # BMS-WebView-1 scale
//	datagen -profile pos -n 515597 > pos.dat          # BMS-POS scale
//	datagen -items 200 -avg-len 4 -patterns 80 -n 10000 > custom.dat
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/data"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("datagen", flag.ContinueOnError)
	var (
		profile  = fs.String("profile", "", "preset profile: webview or pos (overrides the custom flags)")
		n        = fs.Int("n", 10000, "transactions to generate")
		items    = fs.Int("items", 100, "item universe size (custom profile)")
		avgLen   = fs.Float64("avg-len", 3, "mean transaction length (custom profile)")
		patterns = fs.Int("patterns", 0, "planted pattern pool size (custom profile; 0 = items/2)")
		patLen   = fs.Float64("pattern-len", 2, "mean planted pattern length (custom profile)")
		corrupt  = fs.Float64("corruption", 0.3, "mean pattern corruption level (custom profile)")
		seed     = fs.Uint64("seed", 1, "random seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *n <= 0 {
		return fmt.Errorf("transaction count %d must be positive", *n)
	}

	var gen *data.Generator
	switch *profile {
	case "webview":
		gen = data.WebViewLike(*seed)
	case "pos":
		gen = data.POSLike(*seed)
	case "":
		g, err := data.NewQuest(data.QuestConfig{
			Items:             *items,
			AvgTransactionLen: *avgLen,
			AvgPatternLen:     *patLen,
			NumPatterns:       *patterns,
			CorruptionMean:    *corrupt,
			Seed:              *seed,
		})
		if err != nil {
			return err
		}
		gen = g
	default:
		return fmt.Errorf("unknown profile %q (webview, pos)", *profile)
	}

	return data.WriteTransactions(stdout, gen.Generate(*n), nil)
}
