package main

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/data"
)

func TestDatagenPresets(t *testing.T) {
	for _, profile := range []string{"webview", "pos"} {
		var out bytes.Buffer
		if err := run([]string{"-profile", profile, "-n", "50"}, &out); err != nil {
			t.Fatalf("%s: %v", profile, err)
		}
		lines := strings.Split(strings.TrimSpace(out.String()), "\n")
		if len(lines) != 50 {
			t.Errorf("%s: %d lines, want 50", profile, len(lines))
		}
	}
}

func TestDatagenCustomAndRoundTrip(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-items", "20", "-avg-len", "3", "-n", "100", "-seed", "9"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	txs, vocab, err := data.ReadTransactions(strings.NewReader(out.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(txs) != 100 {
		t.Errorf("round trip read %d transactions", len(txs))
	}
	if vocab.Len() == 0 || vocab.Len() > 20 {
		t.Errorf("vocabulary size %d outside (0,20]", vocab.Len())
	}
}

func TestDatagenDeterministic(t *testing.T) {
	gen := func() string {
		var out bytes.Buffer
		if err := run([]string{"-profile", "webview", "-n", "30", "-seed", "4"}, &out); err != nil {
			t.Fatal(err)
		}
		return out.String()
	}
	if gen() != gen() {
		t.Error("same seed produced different streams")
	}
}

func TestDatagenErrors(t *testing.T) {
	cases := [][]string{
		{"-profile", "bogus"},
		{"-n", "0"},
		{"-items", "0"}, // invalid custom config
	}
	for i, args := range cases {
		var out bytes.Buffer
		if err := run(args, &out); err == nil {
			t.Errorf("case %d (%v) did not error", i, args)
		}
	}
}
