package main

// Bench history: -history FILE appends one compact JSONL line per run, so
// CI can accumulate a perf trajectory across commits in a single
// append-only artifact (BENCH_history.jsonl) instead of a pile of
// per-build reports. One line carries the measurement context plus the
// headline numbers per scenario; the full report (bytes/op, warnings,
// windows/op) stays in BENCH_pipeline.json.

import (
	"encoding/json"
	"os"
)

// historySchema identifies the JSONL line layout for downstream tooling.
const historySchema = "butterfly-bench-history/v1"

// historyEntry is one appended line.
type historyEntry struct {
	Schema     string            `json:"schema"`
	Timestamp  string            `json:"timestamp"`
	Go         string            `json:"go"`
	GOARCH     string            `json:"goarch"`
	CPUs       int               `json:"cpus"`
	GOMAXPROCS int               `json:"gomaxprocs"`
	Quick      bool              `json:"quick"`
	Scenarios  []historyScenario `json:"scenarios"`
}

// historyScenario is one scenario's headline numbers.
type historyScenario struct {
	Name          string  `json:"name"`
	NsPerOp       int64   `json:"ns_per_op"`
	WindowsPerSec float64 `json:"windows_per_sec,omitempty"`
	AllocsPerOp   int64   `json:"allocs_per_op"`
}

// historyLine renders one report as a newline-terminated JSONL record.
func historyLine(rep report) ([]byte, error) {
	e := historyEntry{
		Schema:     historySchema,
		Timestamp:  rep.Timestamp,
		Go:         rep.Go,
		GOARCH:     rep.GOARCH,
		CPUs:       rep.CPUs,
		GOMAXPROCS: rep.GOMAXPROCS,
		Quick:      rep.Quick,
	}
	for _, sc := range rep.Scenarios {
		e.Scenarios = append(e.Scenarios, historyScenario{
			Name:          sc.Name,
			NsPerOp:       sc.NsPerOp,
			WindowsPerSec: sc.WindowsPerSec,
			AllocsPerOp:   sc.AllocsPerOp,
		})
	}
	line, err := json.Marshal(e)
	if err != nil {
		return nil, err
	}
	return append(line, '\n'), nil
}

// appendHistory appends the report's history line to path, creating the
// file on first use. Appends are atomic at this line size on every
// platform CI runs, so concurrent builds interleave whole lines.
func appendHistory(path string, rep report) error {
	line, err := historyLine(rep)
	if err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(line); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
