package main

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func historyTestReport(ts string, ns int64) report {
	return report{
		Schema: benchSchema, Go: "go1.22", GOOS: "linux", GOARCH: "amd64",
		CPUs: 8, GOMAXPROCS: 8, Timestamp: ts, Quick: true,
		Scenarios: []result{
			{Name: "mine/eclat", NsPerOp: ns, AllocsPerOp: 10},
			{Name: "publish/workers=2", NsPerOp: 2 * ns, AllocsPerOp: 20, WindowsPerOp: 7, WindowsPerSec: 3.5},
		},
	}
}

// TestAppendHistory pins the JSONL contract: each run appends exactly one
// parseable line carrying the schema tag, the measurement context, and the
// headline numbers per scenario — and appending never rewrites earlier
// lines.
func TestAppendHistory(t *testing.T) {
	path := filepath.Join(t.TempDir(), "history.jsonl")
	if err := appendHistory(path, historyTestReport("2026-01-01T00:00:00Z", 1000)); err != nil {
		t.Fatal(err)
	}
	if err := appendHistory(path, historyTestReport("2026-01-02T00:00:00Z", 1100)); err != nil {
		t.Fatal(err)
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var entries []historyEntry
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var e historyEntry
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("line %d is not valid JSON: %v (%q)", len(entries)+1, err, sc.Text())
		}
		entries = append(entries, e)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("got %d lines, want 2", len(entries))
	}
	for i, e := range entries {
		if e.Schema != historySchema {
			t.Errorf("line %d schema %q, want %q", i+1, e.Schema, historySchema)
		}
		if len(e.Scenarios) != 2 {
			t.Errorf("line %d carries %d scenarios, want 2", i+1, len(e.Scenarios))
		}
	}
	if entries[0].Timestamp != "2026-01-01T00:00:00Z" || entries[1].Timestamp != "2026-01-02T00:00:00Z" {
		t.Errorf("append order lost: %q then %q", entries[0].Timestamp, entries[1].Timestamp)
	}
	if got := entries[1].Scenarios[0]; got.Name != "mine/eclat" || got.NsPerOp != 1100 {
		t.Errorf("scenario headline mangled: %+v", got)
	}
	if got := entries[0].Scenarios[1]; got.WindowsPerSec != 3.5 || got.AllocsPerOp != 20 {
		t.Errorf("scenario headline mangled: %+v", got)
	}
}
