package main

// The bench harness's own gate: the suite runs end to end in smoke mode and
// the emitted JSON is well-formed, schema-tagged, and complete — the
// acceptance criterion behind CI's artifact upload.

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestBenchSuiteWellFormedJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("bench suite exercises full pipeline runs")
	}
	if err := setBenchtime("1x"); err != nil {
		t.Fatal(err)
	}
	rep := runSuite(true, "2026-01-01T00:00:00Z")
	path := filepath.Join(t.TempDir(), "BENCH_pipeline.json")
	if err := writeReport(rep, path); err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var decoded report
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatalf("BENCH_pipeline.json is not valid JSON: %v\n%s", err, raw)
	}
	if decoded.Schema != benchSchema {
		t.Errorf("schema = %q, want %q", decoded.Schema, benchSchema)
	}
	if decoded.Go == "" || decoded.GOOS == "" || decoded.GOARCH == "" {
		t.Errorf("toolchain fields incomplete: %+v", decoded)
	}

	wantScenarios := []string{
		"mine/eclat", "mine/moment",
		"publish/workers=1", "publish/workers=2", "publish/workers=8",
		"publish/checkpointed", "publish/checkpointed-delta",
	}
	if len(decoded.Scenarios) != len(wantScenarios) {
		t.Fatalf("suite ran %d scenarios, want %d: %+v", len(decoded.Scenarios), len(wantScenarios), decoded.Scenarios)
	}
	for i, sc := range decoded.Scenarios {
		if sc.Name != wantScenarios[i] {
			t.Errorf("scenario %d is %q, want %q", i, sc.Name, wantScenarios[i])
		}
		if sc.NsPerOp <= 0 || sc.Iterations <= 0 {
			t.Errorf("scenario %s measured nothing: %+v", sc.Name, sc)
		}
		if sc.WindowsPerOp > 0 && sc.WindowsPerSec <= 0 {
			t.Errorf("scenario %s has windows but no throughput: %+v", sc.Name, sc)
		}
	}
	for _, sc := range decoded.Scenarios[2:] { // the publish tiers
		if sc.WindowsPerOp != benchWindows {
			t.Errorf("scenario %s windows_per_op = %d, want %d", sc.Name, sc.WindowsPerOp, benchWindows)
		}
	}
}
