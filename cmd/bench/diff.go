package main

// This file is the perf-regression gate behind `bench -diff`: a fresh run is
// compared scenario-by-scenario against the checked-in BENCH_pipeline.json
// and the process exits non-zero when the hot path got measurably worse.
//
// The comparison policy separates deterministic metrics from noisy ones:
//
//   - allocs/op is a property of the code, not the machine — the same build
//     allocates the same count at any CPU speed, even under -quick's single
//     iteration. A regression beyond allocTolerance always FAILS.
//   - windows/sec is wall-clock. Under comparable conditions (same quick
//     mode, CPU count, GOMAXPROCS) a drop beyond windowsTolerance FAILS;
//     when the contexts differ the drop degrades to a WARN, because a
//     one-iteration CI smoke run on a different box cannot indict the code.
//   - the durability tax — each publish/checkpointed* scenario's
//     windows/sec as a fraction of the same run's publish/workers=2 — is
//     gated unconditionally: numerator and denominator come from one
//     process on one box, so the ratio is a property of the code (sync
//     count and snapshot bytes per generation) the way allocs/op is, and
//     it FAILS beyond taxTolerance even when the contexts differ. Quietly
//     re-growing the tax is exactly what delta checkpointing was built to
//     prevent, so the checkpointed scenarios are never WARN-only.
//   - ns/op only ever WARNs: it moves with windows/sec on the pipeline
//     scenarios and is pure noise on the mining microbenchmarks' short runs.
//
// A scenario present in the baseline but missing from the fresh run FAILS
// loudly (a renamed or deleted scenario silently un-gates itself otherwise);
// a new scenario without a baseline WARNs until the baseline is refreshed.

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// Regression tolerances, as fractions of the baseline value.
const (
	allocTolerance   = 0.25 // allocs/op may grow this much before failing
	windowsTolerance = 0.15 // windows/sec may drop this much before failing
	nsTolerance      = 0.15 // ns/op beyond this warns (never fails)
	taxTolerance     = 0.25 // the checkpointed/plain throughput ratio may drop this much
)

// taxBaseScenario is the uncheckpointed run the durability tax is measured
// against: the checkpointed scenarios use the same records and worker tier.
const taxBaseScenario = "publish/workers=2"

// finding is one comparison outcome worth reporting.
type finding struct {
	level    string // "FAIL" or "WARN"
	scenario string
	msg      string
}

func (f finding) String() string { return f.level + " " + f.scenario + ": " + f.msg }

func hasFailures(findings []finding) bool {
	for _, f := range findings {
		if f.level == "FAIL" {
			return true
		}
	}
	return false
}

// loadBaseline reads and validates a checked-in bench report.
func loadBaseline(path string) (report, error) {
	var rep report
	raw, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(raw, &rep); err != nil {
		return rep, fmt.Errorf("parsing baseline %s: %w", path, err)
	}
	if rep.Schema != benchSchema {
		return rep, fmt.Errorf("baseline %s has schema %q, want %q", path, rep.Schema, benchSchema)
	}
	return rep, nil
}

// contextNote returns "" when the two reports were measured under comparable
// conditions, or the reason their wall-clock metrics are not comparable.
// GOMAXPROCS is compared only when both reports carry it (older baselines
// predate the field).
func contextNote(baseline, fresh report) string {
	switch {
	case baseline.Quick != fresh.Quick:
		return fmt.Sprintf("quick=%v vs baseline quick=%v", fresh.Quick, baseline.Quick)
	case baseline.CPUs != fresh.CPUs:
		return fmt.Sprintf("%d CPUs vs baseline %d", fresh.CPUs, baseline.CPUs)
	case baseline.GOMAXPROCS != 0 && fresh.GOMAXPROCS != 0 && baseline.GOMAXPROCS != fresh.GOMAXPROCS:
		return fmt.Sprintf("GOMAXPROCS=%d vs baseline %d", fresh.GOMAXPROCS, baseline.GOMAXPROCS)
	}
	return ""
}

// compareReports diffs a fresh run against the baseline and returns the
// findings, most severe first within each scenario. An empty slice means
// everything is within tolerance.
func compareReports(baseline, fresh report) []finding {
	var findings []finding
	note := contextNote(baseline, fresh)
	// Wall-clock regressions can only fail under a comparable context.
	wallLevel := "FAIL"
	if note != "" {
		wallLevel = "WARN"
	}

	freshByName := make(map[string]result, len(fresh.Scenarios))
	for _, r := range fresh.Scenarios {
		freshByName[r.Name] = r
	}
	baseByName := make(map[string]result, len(baseline.Scenarios))

	for _, base := range baseline.Scenarios {
		baseByName[base.Name] = base
		cur, ok := freshByName[base.Name]
		if !ok {
			findings = append(findings, finding{"FAIL", base.Name,
				"scenario in the baseline but missing from this run (renamed or deleted? refresh the baseline deliberately)"})
			continue
		}
		if base.AllocsPerOp > 0 {
			limit := float64(base.AllocsPerOp) * (1 + allocTolerance)
			if float64(cur.AllocsPerOp) > limit {
				findings = append(findings, finding{"FAIL", base.Name,
					fmt.Sprintf("allocs/op %d exceeds baseline %d by more than %.0f%%",
						cur.AllocsPerOp, base.AllocsPerOp, allocTolerance*100)})
			}
		}
		if base.WindowsPerSec > 0 && cur.WindowsPerSec > 0 {
			floor := base.WindowsPerSec * (1 - windowsTolerance)
			if cur.WindowsPerSec < floor {
				msg := fmt.Sprintf("windows/sec %.1f below baseline %.1f by more than %.0f%%",
					cur.WindowsPerSec, base.WindowsPerSec, windowsTolerance*100)
				if note != "" {
					msg += " (context not comparable: " + note + ")"
				}
				findings = append(findings, finding{wallLevel, base.Name, msg})
			}
		}
		if f, ok := durabilityTax(base, cur, baseline, fresh); ok {
			findings = append(findings, f)
		}
		if base.NsPerOp > 0 {
			limit := float64(base.NsPerOp) * (1 + nsTolerance)
			if float64(cur.NsPerOp) > limit {
				findings = append(findings, finding{"WARN", base.Name,
					fmt.Sprintf("ns/op %d exceeds baseline %d by more than %.0f%% (noise-tolerant: never fails)",
						cur.NsPerOp, base.NsPerOp, nsTolerance*100)})
			}
		}
	}
	for _, cur := range fresh.Scenarios {
		if _, ok := baseByName[cur.Name]; !ok {
			findings = append(findings, finding{"WARN", cur.Name,
				"scenario has no baseline entry; refresh BENCH_pipeline.json to gate it"})
		}
	}
	return findings
}

// durabilityTax gates a publish/checkpointed* scenario's throughput as a
// fraction of the same run's taxBaseScenario. Because both sides of each
// ratio were measured by one process on one machine, a ratio drop indicts
// the code, not the box — so this FAILS regardless of context, which is
// what keeps the checkpointed scenarios gated under CI's quick smoke runs.
func durabilityTax(base, cur result, baseline, fresh report) (finding, bool) {
	if !strings.HasPrefix(base.Name, "publish/checkpointed") {
		return finding{}, false
	}
	basePlain := scenarioWPS(baseline, taxBaseScenario)
	curPlain := scenarioWPS(fresh, taxBaseScenario)
	if base.WindowsPerSec <= 0 || cur.WindowsPerSec <= 0 || basePlain <= 0 || curPlain <= 0 {
		return finding{}, false
	}
	baseRatio := base.WindowsPerSec / basePlain
	curRatio := cur.WindowsPerSec / curPlain
	if curRatio >= baseRatio*(1-taxTolerance) {
		return finding{}, false
	}
	return finding{"FAIL", base.Name, fmt.Sprintf(
		"durability tax regressed: %.0f%% of %s throughput, baseline %.0f%% (ratio gate is machine-independent, fails in any context)",
		curRatio*100, taxBaseScenario, baseRatio*100)}, true
}

func scenarioWPS(rep report, name string) float64 {
	for _, s := range rep.Scenarios {
		if s.Name == name {
			return s.WindowsPerSec
		}
	}
	return 0
}

// runDiff loads the baseline, compares, prints findings to stderr, and
// reports whether the gate passed.
func runDiff(baselinePath string, fresh report) (ok bool, err error) {
	baseline, err := loadBaseline(baselinePath)
	if err != nil {
		return false, err
	}
	findings := compareReports(baseline, fresh)
	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "bench: diff: %s\n", f)
	}
	if hasFailures(findings) {
		return false, nil
	}
	if len(findings) == 0 {
		fmt.Fprintf(os.Stderr, "bench: diff: no regressions against %s\n", baselinePath)
	} else {
		fmt.Fprintf(os.Stderr, "bench: diff: warnings only, gate passes\n")
	}
	return true, nil
}
