package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// mkReport builds a minimal comparable report around one publish scenario.
func mkReport(allocs, ns int64, wps float64) report {
	return report{
		Schema: benchSchema,
		CPUs:   4, GOMAXPROCS: 4,
		Scenarios: []result{{
			Name:          "publish/workers=1",
			Iterations:    3,
			NsPerOp:       ns,
			AllocsPerOp:   allocs,
			BytesPerOp:    1 << 20,
			WindowsPerOp:  benchWindows,
			WindowsPerSec: wps,
		}},
	}
}

// mkTaxReport builds a report with the plain workers=2 scenario plus a
// checkpointed-delta scenario, the pair the durability-tax ratio gate reads.
func mkTaxReport(quick bool, plainWPS, ckptWPS float64) report {
	mk := func(name string, wps float64) result {
		return result{
			Name: name, Iterations: 3, NsPerOp: 8_000_000, AllocsPerOp: 10000,
			BytesPerOp: 1 << 20, WindowsPerOp: benchWindows, WindowsPerSec: wps,
		}
	}
	return report{
		Schema: benchSchema,
		CPUs:   4, GOMAXPROCS: 4,
		Quick: quick,
		Scenarios: []result{
			mk(taxBaseScenario, plainWPS),
			mk("publish/checkpointed-delta", ckptWPS),
		},
	}
}

func levelsFor(t *testing.T, findings []finding, scenario string) []string {
	t.Helper()
	var got []string
	for _, f := range findings {
		if f.scenario == scenario {
			got = append(got, f.level)
		}
	}
	return got
}

func TestCompareReports(t *testing.T) {
	base := mkReport(10000, 8_000_000, 800)
	tests := []struct {
		name      string
		baseline  report
		fresh     report
		wantFail  bool
		wantWarns int
		wantFails int
	}{
		{
			name:     "improvement passes",
			baseline: base,
			fresh:    mkReport(5000, 4_000_000, 1600),
		},
		{
			name:     "identical passes",
			baseline: base,
			fresh:    base,
		},
		{
			name:     "noise within tolerance passes",
			baseline: base,
			// allocs +20% (< 25%), windows/sec -10% (< 15%), ns +10% (< 15%)
			fresh: mkReport(12000, 8_800_000, 720),
		},
		{
			name:      "alloc regression fails",
			baseline:  base,
			fresh:     mkReport(12600, 8_000_000, 800), // +26%
			wantFail:  true,
			wantFails: 1,
		},
		{
			name:      "throughput regression fails",
			baseline:  base,
			fresh:     mkReport(10000, 8_000_000, 670), // -16.25%
			wantFail:  true,
			wantFails: 1,
		},
		{
			name:      "ns regression only warns",
			baseline:  base,
			fresh:     mkReport(10000, 9_600_000, 800), // ns +20%, wps unchanged
			wantWarns: 1,
		},
		{
			name:     "throughput regression degrades to warning under quick mode",
			baseline: base,
			fresh: func() report {
				r := mkReport(10000, 8_000_000, 500)
				r.Quick = true
				return r
			}(),
			wantWarns: 1,
		},
		{
			name:     "throughput regression degrades to warning under different cpu count",
			baseline: base,
			fresh: func() report {
				r := mkReport(10000, 8_000_000, 500)
				r.CPUs = 1
				r.GOMAXPROCS = 1
				return r
			}(),
			wantWarns: 1,
		},
		{
			// The tax ratio drops from 33% to 22% of plain throughput
			// (-33% > 25% tolerance): that fails even in quick mode, while
			// the absolute windows/sec drops only warn there.
			name:      "durability tax regression fails even under mismatched context",
			baseline:  mkTaxReport(false, 2000, 660),
			fresh:     mkTaxReport(true, 1500, 330),
			wantFail:  true,
			wantFails: 1,
			wantWarns: 2, // both scenarios' absolute windows/sec drops
		},
		{
			// A uniformly slower quick run preserves the tax ratio: the
			// checkpointed scenario stays WARN-only like its plain peer.
			name:      "slower box with preserved tax ratio passes",
			baseline:  mkTaxReport(false, 2000, 660),
			fresh:     mkTaxReport(true, 1000, 330),
			wantWarns: 2,
		},
		{
			// Same comparable context: the absolute windows/sec drop fails
			// on its own, and the ratio gate fires alongside it.
			name:      "checkpointed regression under comparable context fails twice",
			baseline:  mkTaxReport(false, 2000, 660),
			fresh:     mkTaxReport(false, 2000, 330),
			wantFail:  true,
			wantFails: 2,
		},
		{
			name:     "alloc regression still fails under mismatched context",
			baseline: base,
			fresh: func() report {
				r := mkReport(20000, 8_000_000, 800)
				r.Quick = true
				return r
			}(),
			wantFail:  true,
			wantFails: 1,
		},
		{
			name:     "missing scenario fails",
			baseline: base,
			fresh: func() report {
				r := mkReport(10000, 8_000_000, 800)
				r.Scenarios[0].Name = "publish/renamed"
				return r
			}(),
			wantFail:  true,
			wantFails: 1,
			wantWarns: 1, // the renamed scenario has no baseline entry
		},
		{
			name: "new scenario without baseline warns",
			baseline: func() report {
				r := base
				return r
			}(),
			fresh: func() report {
				r := mkReport(10000, 8_000_000, 800)
				r.Scenarios = append(r.Scenarios, result{Name: "publish/extra", AllocsPerOp: 1, NsPerOp: 1})
				return r
			}(),
			wantWarns: 1,
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			findings := compareReports(tc.baseline, tc.fresh)
			var fails, warns int
			for _, f := range findings {
				switch f.level {
				case "FAIL":
					fails++
				case "WARN":
					warns++
				default:
					t.Errorf("unexpected level %q in %v", f.level, f)
				}
			}
			if hasFailures(findings) != tc.wantFail {
				t.Errorf("hasFailures = %v, want %v (findings: %v)", hasFailures(findings), tc.wantFail, findings)
			}
			if fails != tc.wantFails {
				t.Errorf("got %d FAIL findings, want %d: %v", fails, tc.wantFails, findings)
			}
			if warns != tc.wantWarns {
				t.Errorf("got %d WARN findings, want %d: %v", warns, tc.wantWarns, findings)
			}
		})
	}
}

func TestLoadBaselineErrors(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		t.Helper()
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	tests := []struct {
		name    string
		path    string
		wantErr string
	}{
		{"missing file", filepath.Join(dir, "nope.json"), "no such file"},
		{"malformed json", write("bad.json", "{not json"), "parsing baseline"},
		{"truncated json", write("trunc.json", `{"schema":"butterfly-bench/v1","scenarios":[`), "parsing baseline"},
		{"wrong schema", write("schema.json", `{"schema":"other/v9","scenarios":[]}`), "has schema"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			_, err := loadBaseline(tc.path)
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("loadBaseline(%s) error = %v, want containing %q", tc.path, err, tc.wantErr)
			}
		})
	}
}

// The checked-in baseline must itself load through the gate's loader.
func TestCheckedInBaselineLoads(t *testing.T) {
	rep, err := loadBaseline("../../BENCH_pipeline.json")
	if err != nil {
		t.Fatalf("checked-in baseline does not load: %v", err)
	}
	if len(rep.Scenarios) == 0 {
		t.Fatal("checked-in baseline has no scenarios")
	}
	for _, s := range rep.Scenarios {
		if s.AllocsPerOp <= 0 {
			t.Errorf("baseline scenario %s has allocs_per_op %d; the alloc gate needs a positive baseline", s.Name, s.AllocsPerOp)
		}
	}
}
