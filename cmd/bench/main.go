// Command bench is the repository's scripted perf harness: it runs a fixed
// scenario suite — Eclat and Moment mining, pipeline publication at worker
// tiers 1/2/8, and checkpointed runs (all-full snapshots and delta chains)
// — through testing.Benchmark and
// writes the measurements to BENCH_pipeline.json (ns/op, windows/sec,
// allocs/op, bytes/op per scenario). The JSON is the machine-readable perf
// trajectory CI archives on every build, so a regression shows up as a
// diffable artifact rather than a hunch.
//
//	bench                 # full measurement, writes BENCH_pipeline.json
//	bench -quick          # CI smoke: one iteration per scenario
//	bench -out FILE       # write elsewhere
//
// Scenario inputs are fixed synthetic streams (data.WebViewLike, constant
// seeds), so runs are comparable across machines up to hardware speed.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/itemset"
	"repro/internal/mining"
	"repro/internal/mining/moment"
	"repro/internal/pipeline"
)

// benchSchema identifies the JSON layout for downstream tooling.
const benchSchema = "butterfly-bench/v1"

// Fixed scenario corpus: enough records for 7 published windows at the
// test-suite calibration, small enough that -quick finishes in seconds.
const (
	benchSeed         = 3
	benchRecords      = 900
	benchWindow       = 300
	benchPublishEvery = 100
	benchSupport      = 10
	benchVuln         = 5
	benchWindows      = 7 // publications per pipeline run: 300, 400, ..., 900
)

// scenario is one named benchmark plus the windows it publishes per
// iteration (0 for the mining microbenchmarks, which measure one snapshot).
type scenario struct {
	name    string
	windows int
	bench   func(b *testing.B)
}

// result is one scenario's measurement in the output JSON.
type result struct {
	Name          string  `json:"name"`
	Iterations    int     `json:"iterations"`
	NsPerOp       int64   `json:"ns_per_op"`
	AllocsPerOp   int64   `json:"allocs_per_op"`
	BytesPerOp    int64   `json:"bytes_per_op"`
	WindowsPerOp  int     `json:"windows_per_op,omitempty"`
	WindowsPerSec float64 `json:"windows_per_sec,omitempty"`
}

// report is the BENCH_pipeline.json document. CPUs and GOMAXPROCS record
// the measurement context: the -diff gate downgrades wall-clock regressions
// to warnings when they differ from the baseline's, and Warnings carries
// caveats about the run itself (e.g. worker tiers measured on one CPU).
type report struct {
	Schema     string   `json:"schema"`
	Go         string   `json:"go"`
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	CPUs       int      `json:"cpus"`
	GOMAXPROCS int      `json:"gomaxprocs,omitempty"`
	Timestamp  string   `json:"timestamp"`
	Quick      bool     `json:"quick,omitempty"`
	Warnings   []string `json:"warnings,omitempty"`
	Scenarios  []result `json:"scenarios"`
}

func benchParams() core.Params {
	return core.Params{Epsilon: 0.1, Delta: 0.4, MinSupport: benchSupport, VulnSupport: benchVuln}
}

// benchEclat mines one materialized window with the batch Eclat miner.
func benchEclat(records []itemset.Itemset) func(b *testing.B) {
	return func(b *testing.B) {
		db := itemset.NewDatabase(records[:benchWindow])
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := mining.Eclat(db, benchSupport); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// benchMoment slides the incremental Moment miner across the corpus and
// snapshots the frequent itemsets at every publication point — the mine
// stage's actual workload.
func benchMoment(records []itemset.Itemset) func(b *testing.B) {
	return func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m := moment.New(benchWindow, benchSupport)
			for pos, rec := range records {
				m.Push(rec)
				if pos+1 >= benchWindow && (pos+1-benchWindow)%benchPublishEvery == 0 {
					m.Frequent()
				}
			}
		}
	}
}

// benchPublish runs the full pipeline (mine, perturb, emit) at the given
// worker tier. fullEvery > 0 additionally checkpoints every window:
// fullEvery=1 writes a full snapshot per generation (the v1 durability tax),
// fullEvery=N>1 anchors a full every N generations and appends delta frames
// between them (the v2 chain format).
func benchPublish(records []itemset.Itemset, workers, fullEvery int) func(b *testing.B) {
	return func(b *testing.B) {
		cfg := pipeline.Config{
			WindowSize:   benchWindow,
			Params:       benchParams(),
			Scheme:       core.Hybrid{Lambda: 0.4},
			Seed:         11,
			PublishEvery: benchPublishEvery,
			Workers:      workers,
		}
		if fullEvery > 0 {
			dir, err := os.MkdirTemp("", "bench-ckpt-*")
			if err != nil {
				b.Fatal(err)
			}
			defer os.RemoveAll(dir)
			cfg.CheckpointDir = dir
			cfg.CheckpointEvery = 1
			cfg.CheckpointFullEvery = fullEvery
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p, err := pipeline.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			published := 0
			if err := p.Run(records, func(pipeline.Window) error {
				published++
				return nil
			}); err != nil {
				b.Fatal(err)
			}
			if published != benchWindows {
				b.Fatalf("published %d windows, want %d", published, benchWindows)
			}
		}
	}
}

func scenarios() []scenario {
	records := data.WebViewLike(benchSeed).Generate(benchRecords)
	s := []scenario{
		{name: "mine/eclat", bench: benchEclat(records)},
		{name: "mine/moment", windows: benchWindows, bench: benchMoment(records)},
	}
	for _, workers := range []int{1, 2, 8} {
		workers := workers
		s = append(s, scenario{
			name:    fmt.Sprintf("publish/workers=%d", workers),
			windows: benchWindows,
			bench:   benchPublish(records, workers, 0),
		})
	}
	s = append(s, scenario{
		name:    "publish/checkpointed",
		windows: benchWindows,
		bench:   benchPublish(records, 2, 1),
	},
		scenario{
			name:    "publish/checkpointed-delta",
			windows: benchWindows,
			bench:   benchPublish(records, 2, 16),
		})
	return s
}

// runSuite executes every scenario and assembles the report. timestamp may
// be empty (omitted from the JSON) when the caller has no clock to offer.
func runSuite(quick bool, timestamp string) report {
	rep := report{
		Schema:     benchSchema,
		Go:         runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		CPUs:       runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Timestamp:  timestamp,
		Quick:      quick,
	}
	if rep.GOMAXPROCS == 1 {
		rep.Warnings = append(rep.Warnings,
			"GOMAXPROCS=1: the workers=2/8 tiers ran on a single CPU, so their windows/sec measures scheduling overhead, not parallel speedup")
	}
	for _, sc := range scenarios() {
		fmt.Fprintf(os.Stderr, "bench: %s...\n", sc.name)
		if quick {
			// One iteration is enough for the alloc gate, but the
			// checkpointed scenarios feed the durability-tax ratio gate and
			// a single fsync-bound iteration is too noisy to gate on; ten
			// iterations still cost well under a second.
			bt := "1x"
			if strings.HasPrefix(sc.name, "publish/checkpointed") {
				bt = "10x"
			}
			if err := setBenchtime(bt); err != nil {
				fmt.Fprintf(os.Stderr, "bench: %v\n", err)
				os.Exit(1)
			}
		}
		r := testing.Benchmark(sc.bench)
		res := result{
			Name:         sc.name,
			Iterations:   r.N,
			NsPerOp:      r.NsPerOp(),
			AllocsPerOp:  r.AllocsPerOp(),
			BytesPerOp:   r.AllocedBytesPerOp(),
			WindowsPerOp: sc.windows,
		}
		if sc.windows > 0 && r.NsPerOp() > 0 {
			res.WindowsPerSec = float64(sc.windows) / (float64(r.NsPerOp()) / 1e9)
		}
		rep.Scenarios = append(rep.Scenarios, res)
	}
	return rep
}

// writeReport renders the report to path (or stdout for "-").
func writeReport(rep report, path string) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// setBenchtime configures testing.Benchmark's target via the test flags —
// the supported channel for tuning testing.Benchmark outside `go test`.
func setBenchtime(v string) error { return flag.Set("test.benchtime", v) }

func main() {
	testing.Init() // registers test.benchtime before our flags parse
	out := flag.String("out", "BENCH_pipeline.json", "output JSON path ('-' for stdout)")
	quick := flag.Bool("quick", false, "CI smoke mode: one iteration per scenario")
	diff := flag.String("diff", "",
		"baseline JSON to gate against: exit non-zero on a perf regression (see diff.go for the policy)")
	history := flag.String("history", "",
		"JSONL file to append this run's headline numbers to (see history.go; CI accumulates BENCH_history.jsonl)")
	flag.Parse()

	if *quick {
		if err := setBenchtime("1x"); err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			os.Exit(1)
		}
	}
	rep := runSuite(*quick, time.Now().UTC().Format(time.RFC3339))
	// The fresh report is always written first — a failing gate still leaves
	// both JSONs on disk for the CI artifact upload.
	if err := writeReport(rep, *out); err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}
	if *out != "-" {
		fmt.Fprintf(os.Stderr, "bench: wrote %s (%d scenarios)\n", *out, len(rep.Scenarios))
	}
	if *history != "" {
		if err := appendHistory(*history, rep); err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "bench: appended to %s\n", *history)
	}
	if *diff != "" {
		ok, err := runDiff(*diff, rep)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			os.Exit(1)
		}
		if !ok {
			fmt.Fprintf(os.Stderr, "bench: perf-regression gate FAILED against %s\n", *diff)
			os.Exit(1)
		}
	}
}
