// Package stream models a transaction data stream under the sliding-window
// model of §III of the Butterfly paper: a stream Ds is a sequence of records
// (r1, ..., rN); at each position N only the window Ds(N, H) of the H most
// recent records is considered.
package stream

import (
	"fmt"

	"repro/internal/itemset"
)

// Window is a fixed-capacity sliding window over a record stream. Records
// are pushed in stream order; once the window is full, each push evicts the
// oldest record. Window is not safe for concurrent use.
type Window struct {
	capacity int
	buf      []itemset.Itemset // ring buffer
	head     int               // index of the oldest record
	length   int               // number of records currently held
	position int               // N: total records pushed so far
}

// NewWindow creates a window of the given capacity H. It panics if H <= 0.
func NewWindow(capacity int) *Window {
	if capacity <= 0 {
		panic(fmt.Sprintf("stream: window capacity %d must be positive", capacity))
	}
	return &Window{
		capacity: capacity,
		buf:      make([]itemset.Itemset, capacity),
	}
}

// Capacity returns H, the maximum number of records held.
func (w *Window) Capacity() int { return w.capacity }

// Len returns the number of records currently in the window.
func (w *Window) Len() int { return w.length }

// Full reports whether the window holds exactly H records.
func (w *Window) Full() bool { return w.length == w.capacity }

// Position returns N, the total number of records pushed so far. Together
// with Capacity this identifies the window as Ds(N, H).
func (w *Window) Position() int { return w.position }

// Push appends a record to the window. If the window was full, the evicted
// (oldest) record is returned with evicted=true.
func (w *Window) Push(rec itemset.Itemset) (old itemset.Itemset, evicted bool) {
	w.position++
	if w.length < w.capacity {
		w.buf[(w.head+w.length)%w.capacity] = rec
		w.length++
		return itemset.Itemset{}, false
	}
	old = w.buf[w.head]
	w.buf[w.head] = rec
	w.head = (w.head + 1) % w.capacity
	return old, true
}

// Records returns the window content in stream order (oldest first). The
// returned slice is freshly allocated.
func (w *Window) Records() []itemset.Itemset {
	out := make([]itemset.Itemset, w.length)
	for i := 0; i < w.length; i++ {
		out[i] = w.buf[(w.head+i)%w.capacity]
	}
	return out
}

// At returns the i-th record in the window, 0 being the oldest.
func (w *Window) At(i int) itemset.Itemset {
	if i < 0 || i >= w.length {
		panic(fmt.Sprintf("stream: window index %d out of range [0,%d)", i, w.length))
	}
	return w.buf[(w.head+i)%w.capacity]
}

// Database materializes the current window content as a Database snapshot.
func (w *Window) Database() *itemset.Database {
	return itemset.NewDatabase(w.Records())
}

// Replay pushes every record of the stream through a window of capacity
// windowSize and invokes fn once per *full* window, after every slide
// (i.e. for Ds(H, H), Ds(H+1, H), ..., Ds(len(records), H)). If fn returns
// false, replay stops early. The window passed to fn must not be retained or
// mutated by fn.
func Replay(records []itemset.Itemset, windowSize int, fn func(w *Window) bool) {
	w := NewWindow(windowSize)
	for _, rec := range records {
		w.Push(rec)
		if w.Full() {
			if !fn(w) {
				return
			}
		}
	}
}

// ReplayStride is like Replay but only invokes fn every stride slides after
// the window first fills (stride >= 1). The first full window is always
// reported. This keeps long-stream experiments affordable while still
// sampling overlapping windows.
func ReplayStride(records []itemset.Itemset, windowSize, stride int, fn func(w *Window) bool) {
	if stride < 1 {
		panic("stream: stride must be >= 1")
	}
	w := NewWindow(windowSize)
	sinceReport := stride // force a report on the first full window
	for _, rec := range records {
		w.Push(rec)
		if !w.Full() {
			continue
		}
		sinceReport++
		if sinceReport >= stride {
			sinceReport = 0
			if !fn(w) {
				return
			}
		}
	}
}
