package stream

import (
	"testing"

	"repro/internal/itemset"
	"repro/internal/paperex"
)

func rec(items ...itemset.Item) itemset.Itemset { return itemset.New(items...) }

func TestWindowFillsThenSlides(t *testing.T) {
	w := NewWindow(3)
	if w.Full() {
		t.Fatal("new window reports full")
	}
	for i := 0; i < 3; i++ {
		_, evicted := w.Push(rec(itemset.Item(i)))
		if evicted {
			t.Fatalf("eviction while filling at %d", i)
		}
	}
	if !w.Full() || w.Len() != 3 {
		t.Fatal("window should be full after 3 pushes")
	}
	old, evicted := w.Push(rec(99))
	if !evicted {
		t.Fatal("no eviction on push into full window")
	}
	if !old.Equal(rec(0)) {
		t.Errorf("evicted %v, want {a}", old)
	}
	got := w.Records()
	want := []itemset.Itemset{rec(1), rec(2), rec(99)}
	for i := range want {
		if !got[i].Equal(want[i]) {
			t.Errorf("Records()[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestWindowPosition(t *testing.T) {
	w := NewWindow(2)
	for i := 1; i <= 5; i++ {
		w.Push(rec(itemset.Item(i)))
		if w.Position() != i {
			t.Errorf("Position = %d after %d pushes", w.Position(), i)
		}
	}
	if w.Len() != 2 {
		t.Errorf("Len = %d, want 2", w.Len())
	}
}

func TestWindowAt(t *testing.T) {
	w := NewWindow(3)
	for i := 0; i < 5; i++ {
		w.Push(rec(itemset.Item(i)))
	}
	// Window now holds records 2,3,4 oldest-first.
	for i := 0; i < 3; i++ {
		if got := w.At(i); !got.Equal(rec(itemset.Item(i + 2))) {
			t.Errorf("At(%d) = %v", i, got)
		}
	}
}

func TestWindowAtPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("At out of range did not panic")
		}
	}()
	NewWindow(2).At(0)
}

func TestNewWindowPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewWindow(0) did not panic")
		}
	}()
	NewWindow(0)
}

func TestWindowDatabaseSnapshot(t *testing.T) {
	w := NewWindow(2)
	w.Push(rec(1, 2))
	w.Push(rec(2, 3))
	db := w.Database()
	if db.Len() != 2 {
		t.Fatalf("snapshot Len = %d", db.Len())
	}
	if db.Support(rec(2)) != 2 {
		t.Errorf("snapshot support(2) = %d", db.Support(rec(2)))
	}
	// Snapshot must be stable under further pushes.
	w.Push(rec(9))
	if db.Support(rec(9)) != 0 {
		t.Error("snapshot mutated by later push")
	}
}

// The paper's Fig. 2 running example (12 records, H = 8), reconstructed in
// internal/paperex to satisfy the Fig. 3 support values.
func fig2Records() []itemset.Itemset { return paperex.Records() }

func TestReplayVisitsEveryFullWindow(t *testing.T) {
	recs := fig2Records()
	var positions []int
	Replay(recs, 8, func(w *Window) bool {
		positions = append(positions, w.Position())
		return true
	})
	want := []int{8, 9, 10, 11, 12}
	if len(positions) != len(want) {
		t.Fatalf("visited %v, want %v", positions, want)
	}
	for i := range want {
		if positions[i] != want[i] {
			t.Fatalf("visited %v, want %v", positions, want)
		}
	}
}

func TestReplayEarlyStop(t *testing.T) {
	n := 0
	Replay(fig2Records(), 8, func(w *Window) bool {
		n++
		return false
	})
	if n != 1 {
		t.Errorf("early stop visited %d windows", n)
	}
}

func TestReplayStride(t *testing.T) {
	var positions []int
	ReplayStride(fig2Records(), 8, 2, func(w *Window) bool {
		positions = append(positions, w.Position())
		return true
	})
	want := []int{8, 10, 12}
	if len(positions) != len(want) {
		t.Fatalf("visited %v, want %v", positions, want)
	}
	for i := range want {
		if positions[i] != want[i] {
			t.Fatalf("visited %v, want %v", positions, want)
		}
	}
}

func TestReplayStridePanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("stride 0 did not panic")
		}
	}()
	ReplayStride(nil, 4, 0, func(*Window) bool { return true })
}

func TestReplayShortStreamNeverFires(t *testing.T) {
	n := 0
	Replay(fig2Records()[:5], 8, func(*Window) bool { n++; return true })
	if n != 0 {
		t.Errorf("fn fired %d times on a stream shorter than the window", n)
	}
}

// Replaying the running example must land on the paperex Ds(12,8) snapshot.
func TestFig2ReplayMatchesPaperex(t *testing.T) {
	var last *itemset.Database
	Replay(fig2Records(), 8, func(w *Window) bool {
		last = w.Database()
		return true
	})
	want := paperex.Window12()
	abc := itemset.New(paperex.A, paperex.B, paperex.C)
	if got := last.Support(abc); got != want.Support(abc) {
		t.Errorf("T(abc) in Ds(12,8) = %d, want %d", got, want.Support(abc))
	}
	if got := last.Support(abc); got != 3 {
		t.Errorf("T(abc) in Ds(12,8) = %d, want 3 (Fig. 3)", got)
	}
}
