package pipeline

import (
	"errors"
	"fmt"
	"io"
	"sync/atomic"

	"repro/internal/data"
	"repro/internal/itemset"
)

// RecordSource delivers stream records one at a time — the ingest side of a
// supervised run. Unlike a materialized []itemset.Itemset, a RecordSource
// can be unbounded, arrive slowly, and fail.
//
// Next returns the next record. io.EOF ends the stream cleanly (the
// pipeline publishes the final window and returns). A *data.ParseError
// reports one malformed record that the source has already skipped past;
// the pipeline counts it against the bad-record budget (Config
// .MaxBadRecords) and continues. An error marked transient (see Transient /
// IsTransient) is retried with exponential backoff up to Config.EmitRetries
// attempts, on the assumption that the failed call consumed no record. Any
// other error aborts the run.
type RecordSource interface {
	Next() (itemset.Itemset, error)
}

// sliceSource adapts an in-memory record slice.
type sliceSource struct {
	records []itemset.Itemset
	next    int
}

// SliceSource returns a RecordSource over a fully-materialized record
// slice, the adapter behind the legacy Run entry point.
func SliceSource(records []itemset.Itemset) RecordSource {
	return &sliceSource{records: records}
}

func (s *sliceSource) Next() (itemset.Itemset, error) {
	if s.next >= len(s.records) {
		return itemset.Itemset{}, io.EOF
	}
	rec := s.records[s.next]
	s.next++
	return rec, nil
}

// generatorSource adapts a synthetic generator, bounded to n records.
type generatorSource struct {
	gen  *data.Generator
	left int
}

// GeneratorSource returns a RecordSource delivering the next n records of a
// synthetic generator one at a time, without materializing the stream.
func GeneratorSource(g *data.Generator, n int) RecordSource {
	return &generatorSource{gen: g, left: n}
}

func (s *generatorSource) Next() (itemset.Itemset, error) {
	if s.left <= 0 {
		return itemset.Itemset{}, io.EOF
	}
	s.left--
	return s.gen.Next(), nil
}

// ReaderSource streams transactions from r incrementally in the
// one-transaction-per-line format, interning tokens into vocab (nil
// allocates a fresh vocabulary) — no buffering of the whole input.
// Malformed lines surface as *data.ParseError, which the pipeline treats as
// skippable bad records under its budget.
func ReaderSource(r io.Reader, vocab *data.Vocabulary) RecordSource {
	return data.NewTransactionReader(r, vocab)
}

// DrainSource wraps a RecordSource with a stop switch for graceful
// shutdown: after Stop, Next reports io.EOF, so the pipeline finishes the
// windows already in flight, publishes the final window of the truncated
// stream, and returns cleanly — the SIGINT drain path of cmd/butterfly.
// Stop is safe to call from any goroutine, any number of times.
type DrainSource struct {
	src     RecordSource
	stopped atomic.Bool
}

// NewDrainSource wraps src.
func NewDrainSource(src RecordSource) *DrainSource {
	return &DrainSource{src: src}
}

// Stop makes all subsequent Next calls report end-of-stream.
func (d *DrainSource) Stop() { d.stopped.Store(true) }

// Stopped reports whether the source was stopped before its natural end.
func (d *DrainSource) Stopped() bool { return d.stopped.Load() }

// Next implements RecordSource.
func (d *DrainSource) Next() (itemset.Itemset, error) {
	if d.stopped.Load() {
		return itemset.Itemset{}, io.EOF
	}
	return d.src.Next()
}

// FastForward advances src past the first records well-formed records — the
// position-accounting primitive behind checkpoint resume. Malformed records
// (*data.ParseError) encountered while skipping are discarded and counted
// in skippedBad, mirroring how the original run skipped them; they do not
// count toward records. It returns an error if the source ends or fails
// before reaching the position: a source that cannot replay its original
// prefix cannot resume deterministically.
func FastForward(src RecordSource, records int) (skippedBad int, err error) {
	for consumed := 0; consumed < records; {
		_, err := src.Next()
		switch {
		case err == nil:
			consumed++
		case errors.As(err, new(*data.ParseError)):
			skippedBad++
		case errors.Is(err, io.EOF):
			return skippedBad, fmt.Errorf(
				"pipeline: source ended after %d records, before the fast-forward position %d", consumed, records)
		default:
			return skippedBad, fmt.Errorf("pipeline: fast-forwarding to record %d: %w", records, err)
		}
	}
	return skippedBad, nil
}

// BadRecord is one malformed input record skipped under the bad-record
// budget, quarantined in the run Report for the operator.
type BadRecord struct {
	// Line is the 1-based input line number, when the source knows it.
	Line int
	// Token is the offending token, clipped for display.
	Token string
	// Err is the parse failure.
	Err error
}

func (b BadRecord) String() string {
	return fmt.Sprintf("line %d: token %q: %v", b.Line, b.Token, b.Err)
}
