package pipeline_test

// Kill-and-resume acceptance suite for the crash-safe checkpointing
// tentpole. The correctness bar: a run killed at ANY checkpointed window
// boundary and resumed from the snapshot publishes the remaining windows
// BYTE-IDENTICALLY to an uninterrupted run — including re-published overlap
// windows, which the republication cache must re-serve unchanged (the §VI
// guarantee surviving the crash).

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/itemset"
	"repro/internal/pipeline"
)

// The fixture publishes 61 windows: window size 60 over 300 records,
// publishing every 4 slides → positions 60, 64, ..., 300.
const (
	resumeWindow  = 60
	resumeRecords = 300
	resumeEvery   = 4
	resumeWindows = (resumeRecords-resumeWindow)/resumeEvery + 1
)

func resumeConfig(workers int, store *checkpoint.Store, ckptEvery int) pipeline.Config {
	return pipeline.Config{
		WindowSize:      resumeWindow,
		Params:          core.Params{Epsilon: 0.1, Delta: 0.4, MinSupport: 10, VulnSupport: 5},
		Scheme:          core.Hybrid{Lambda: 0.4},
		Seed:            17,
		PublishEvery:    resumeEvery,
		Workers:         workers,
		Checkpoints:     store,
		CheckpointEvery: ckptEvery,
	}
}

// renderWindow serializes one published window to a canonical string, the
// unit of the byte-identity assertions.
func renderWindow(w pipeline.Window) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "window@%d\n", w.Position)
	for _, it := range w.Output.Items {
		fmt.Fprintf(&sb, "  %v %d\n", it.Set, it.Support)
	}
	return sb.String()
}

// errKilled is the permanent sink failure standing in for the process dying
// right after a window boundary.
var errKilled = errors.New("simulated kill")

// runKilled drives cfg over records through a sink that accepts the first
// kill windows and then dies. It returns the windows delivered before death;
// kill >= the total window count delivers everything without an error.
func runKilled(t *testing.T, cfg pipeline.Config, records []itemset.Itemset, kill int) []string {
	t.Helper()
	p, err := pipeline.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	_, err = p.RunContext(context.Background(), pipeline.SliceSource(records),
		func(w pipeline.Window) error {
			if len(out) >= kill {
				return errKilled
			}
			out = append(out, renderWindow(w))
			return nil
		})
	if kill < resumeWindows {
		if !errors.Is(err, errKilled) {
			t.Fatalf("killed run: %v, want the simulated kill", err)
		}
	} else if err != nil {
		t.Fatal(err)
	}
	if len(out) != min(kill, resumeWindows) {
		t.Fatalf("killed run delivered %d windows, want %d", len(out), min(kill, resumeWindows))
	}
	return out
}

// resumeRun loads the newest snapshot from store and continues the run over
// a fresh re-opened source, returning the windows it publishes.
func resumeRun(t *testing.T, cfg pipeline.Config, store *checkpoint.Store, records []itemset.Itemset) []string {
	t.Helper()
	snap, _, err := store.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if snap == nil {
		t.Fatal("no usable checkpoint to resume from")
	}
	cfg.Resume = snap
	p, err := pipeline.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	rep, err := p.RunContext(context.Background(), pipeline.SliceSource(records),
		func(w pipeline.Window) error {
			out = append(out, renderWindow(w))
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	// The replayed prefix is part of the resumed run's accounting, so the
	// report matches an uninterrupted run's view of the stream.
	if rep.Records != resumeRecords {
		t.Fatalf("resumed report counts %d records, want %d", rep.Records, resumeRecords)
	}
	return out
}

// reference runs cfg uninterrupted with no checkpointing and returns all
// windows.
func reference(t *testing.T, workers int, records []itemset.Itemset) []string {
	t.Helper()
	ref := runKilled(t, resumeConfig(workers, nil, 0), records, resumeWindows)
	if len(ref) != resumeWindows {
		t.Fatalf("fixture published %d windows, want %d", len(ref), resumeWindows)
	}
	return ref
}

func sameTail(t *testing.T, label string, got, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d windows, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: window %d differs:\n got %s\nwant %s", label, i, got[i], want[i])
		}
	}
}

// TestCheckpointingIsTransparent: turning checkpointing on changes no
// published byte.
func TestCheckpointingIsTransparent(t *testing.T) {
	records := testRecords(t, resumeRecords)
	for _, workers := range []int{1, 4} {
		store, err := checkpoint.NewStore(t.TempDir(), 0)
		if err != nil {
			t.Fatal(err)
		}
		got := runKilled(t, resumeConfig(workers, store, 1), records, resumeWindows)
		sameTail(t, fmt.Sprintf("checkpointed vs plain, workers=%d", workers),
			got, reference(t, workers, records))
		gens, err := store.Generations()
		if err != nil || len(gens) == 0 {
			t.Fatalf("no generations written: %v, %v", gens, err)
		}
	}
}

// TestKillAndResumeByteIdentical is the acceptance sweep: kill the run after
// EVERY checkpointed window boundary of the 61-window fixture and resume;
// the resumed tail must be byte-identical to the uninterrupted reference, at
// the serial tier and two chunked worker counts.
func TestKillAndResumeByteIdentical(t *testing.T) {
	records := testRecords(t, resumeRecords)
	step := 1
	if testing.Short() {
		step = 7
	}
	for _, workers := range []int{1, 2, 8} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			ref := reference(t, workers, records)
			for kill := 1; kill <= resumeWindows; kill += step {
				store, err := checkpoint.NewStore(t.TempDir(), 0)
				if err != nil {
					t.Fatal(err)
				}
				head := runKilled(t, resumeConfig(workers, store, 1), records, kill)
				sameTail(t, fmt.Sprintf("kill=%d head", kill), head, ref[:kill])
				tail := resumeRun(t, resumeConfig(workers, store, 1), store, records)
				sameTail(t, fmt.Sprintf("kill=%d resumed tail", kill), tail, ref[kill:])
			}
		})
	}
}

// TestSparseCheckpointRepublishesOverlapIdentically: with CheckpointEvery=3
// a kill between checkpoints resumes from an EARLIER boundary, re-publishing
// the overlap windows — which must be byte-identical to their first
// publication (the republication cache re-serving, §VI), not fresh draws.
func TestSparseCheckpointRepublishesOverlapIdentically(t *testing.T) {
	records := testRecords(t, resumeRecords)
	for _, workers := range []int{1, 4} {
		ref := reference(t, workers, records)
		for _, kill := range []int{4, 7, 11, 32} {
			store, err := checkpoint.NewStore(t.TempDir(), 0)
			if err != nil {
				t.Fatal(err)
			}
			runKilled(t, resumeConfig(workers, store, 3), records, kill)
			lastCkpt := (kill / 3) * 3
			tail := resumeRun(t, resumeConfig(workers, store, 3), store, records)
			label := fmt.Sprintf("workers=%d kill=%d (checkpoint at %d)", workers, kill, lastCkpt)
			sameTail(t, label, tail, ref[lastCkpt:])
		}
	}
}

// TestResumePastCorruptedLatestGeneration: bit rot in the newest snapshot
// falls back one generation; the longer re-published overlap is still
// byte-identical.
func TestResumePastCorruptedLatestGeneration(t *testing.T) {
	records := testRecords(t, resumeRecords)
	ref := reference(t, 2, records)
	const kill = 10
	store, err := checkpoint.NewStore(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	runKilled(t, resumeConfig(2, store, 1), records, kill)
	gens, err := store.Generations()
	if err != nil {
		t.Fatal(err)
	}
	if err := faultinject.FlipByte(gens[len(gens)-1], -1); err != nil {
		t.Fatal(err)
	}
	var warned bool
	store.Logf = func(string, ...any) { warned = true }
	tail := resumeRun(t, resumeConfig(2, store, 1), store, records)
	sameTail(t, "resume past corruption", tail, ref[kill-1:])
	if !warned {
		t.Fatal("corrupt generation skipped without a warning")
	}
}

// TestCrashDuringCheckpointSaveThenResume: the process dies INSIDE the
// checkpoint write protocol — before the write, before the rename, or with
// a torn file under the final name. In every case the store's previous
// generation carries the resume, byte-identically.
func TestCrashDuringCheckpointSaveThenResume(t *testing.T) {
	records := testRecords(t, resumeRecords)
	ref := reference(t, 2, records)
	for _, point := range []string{
		checkpoint.CrashBeforeWrite,
		checkpoint.CrashBeforeRename,
		checkpoint.CrashTornWrite,
	} {
		t.Run(point, func(t *testing.T) {
			const dieOnSave = 6
			store, err := checkpoint.NewStore(t.TempDir(), 0)
			if err != nil {
				t.Fatal(err)
			}
			store.Logf = func(string, ...any) {}
			plan := &faultinject.CrashPlan{Point: point, OnSave: dieOnSave}
			store.CrashHook = plan.Hook()
			p, err := pipeline.New(resumeConfig(2, store, 1))
			if err != nil {
				t.Fatal(err)
			}
			delivered := 0
			_, err = p.RunContext(context.Background(), pipeline.SliceSource(records),
				func(pipeline.Window) error { delivered++; return nil })
			if !errors.Is(err, checkpoint.ErrInjectedCrash) {
				t.Fatalf("run: %v, want the injected crash", err)
			}
			if plan.Fired() != 1 || delivered != dieOnSave {
				t.Fatalf("crash fired %d times after %d deliveries, want 1 after %d",
					plan.Fired(), delivered, dieOnSave)
			}
			// "Restart": a fresh store over the same directory, no crash plan.
			store, err = checkpoint.NewStore(store.Dir(), 0)
			if err != nil {
				t.Fatal(err)
			}
			store.Logf = func(string, ...any) {}
			tail := resumeRun(t, resumeConfig(2, store, 1), store, records)
			// Save dieOnSave never committed, so the resume point is the
			// previous boundary; window dieOnSave is re-published, identically.
			sameTail(t, point, tail, ref[dieOnSave-1:])
		})
	}
}

// TestResumeAcrossChunkedWorkerCounts: the chunked tier publishes
// identically for every worker count >= 2, so a snapshot from a workers=2
// run must resume byte-identically under workers=8 (and vice versa).
func TestResumeAcrossChunkedWorkerCounts(t *testing.T) {
	records := testRecords(t, resumeRecords)
	ref := reference(t, 2, records)
	const kill = 20
	store, err := checkpoint.NewStore(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	runKilled(t, resumeConfig(2, store, 1), records, kill)
	tail := resumeRun(t, resumeConfig(8, store, 1), store, records)
	sameTail(t, "workers 2 -> 8", tail, ref[kill:])
}

// TestResumeRefusesMismatchedConfiguration: a snapshot from one
// configuration must not restore into another — seed, scheme, window, or
// draw-order tier.
func TestResumeRefusesMismatchedConfiguration(t *testing.T) {
	records := testRecords(t, resumeRecords)
	store, err := checkpoint.NewStore(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	runKilled(t, resumeConfig(2, store, 1), records, 5)
	snap, _, err := store.Latest()
	if err != nil || snap == nil {
		t.Fatalf("no snapshot: %v", err)
	}
	mismatches := []func(*pipeline.Config){
		func(c *pipeline.Config) { c.Seed = 99 },
		func(c *pipeline.Config) { c.Scheme = core.Basic{} },
		func(c *pipeline.Config) { c.PublishEvery = 5 },
		func(c *pipeline.Config) { c.Workers = 1 }, // chunked -> sequential tier
		func(c *pipeline.Config) { c.Raw = true },
	}
	for i, mutate := range mismatches {
		cfg := resumeConfig(2, store, 1)
		mutate(&cfg)
		cfg.Resume = snap
		if _, err := pipeline.New(cfg); err == nil {
			t.Errorf("mismatch %d accepted for resume", i)
		}
	}
	// The unmutated configuration is accepted.
	cfg := resumeConfig(2, store, 1)
	cfg.Resume = snap
	if _, err := pipeline.New(cfg); err != nil {
		t.Fatalf("matching configuration refused: %v", err)
	}
}

// TestResumeRejectsShortSource: a source that cannot replay the consumed
// prefix (here: truncated) fails the resumed run loudly instead of silently
// re-mining a different stream.
func TestResumeRejectsShortSource(t *testing.T) {
	records := testRecords(t, resumeRecords)
	store, err := checkpoint.NewStore(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	runKilled(t, resumeConfig(1, store, 1), records, 10)
	snap, _, err := store.Latest()
	if err != nil || snap == nil {
		t.Fatalf("no snapshot: %v", err)
	}
	cfg := resumeConfig(1, store, 1)
	cfg.Resume = snap
	p, err := pipeline.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, err = p.RunContext(context.Background(),
		pipeline.SliceSource(records[:int(snap.Records)/2]),
		func(pipeline.Window) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "before the resume position") {
		t.Fatalf("short replay: %v, want a resume-position error", err)
	}
}

// TestFinalWindowCheckpointOnDrain: a stream that ends between publication
// points publishes its final window AND checkpoints it — the graceful-drain
// snapshot a restarted service resumes from.
func TestFinalWindowCheckpointOnDrain(t *testing.T) {
	records := testRecords(t, resumeRecords)
	store, err := checkpoint.NewStore(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	const cut = 298 // not a scheduled publication position
	cfg := resumeConfig(1, store, 5)
	p, err := pipeline.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var positions []int
	if _, err := p.RunContext(context.Background(), pipeline.SliceSource(records[:cut]),
		func(w pipeline.Window) error { positions = append(positions, w.Position); return nil }); err != nil {
		t.Fatal(err)
	}
	if positions[len(positions)-1] != cut {
		t.Fatalf("final window at %d, want the truncated stream end %d", positions[len(positions)-1], cut)
	}
	snap, _, err := store.Latest()
	if err != nil || snap == nil {
		t.Fatalf("no final checkpoint: %v", err)
	}
	if snap.Records != cut {
		t.Fatalf("final checkpoint at record %d, want %d", snap.Records, cut)
	}
	// The drained service restarts against the full stream and picks up
	// exactly where it stopped.
	cfg2 := resumeConfig(1, store, 5)
	cfg2.Resume = snap
	p2, err := pipeline.New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	var resumedPositions []int
	if _, err := p2.RunContext(context.Background(), pipeline.SliceSource(records),
		func(w pipeline.Window) error { resumedPositions = append(resumedPositions, w.Position); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(resumedPositions) == 0 || resumedPositions[0] <= cut {
		t.Fatalf("resumed positions %v, want all past the drain point %d", resumedPositions, cut)
	}
}
