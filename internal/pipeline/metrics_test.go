package pipeline

// Telemetry tests: the observation-only A/B contract (published bytes
// identical with metrics on and off at every worker tier), the recording
// contract (every stage signal lands in the registry), and the doc-sync
// gate (OBSERVABILITY.md and the live registry list exactly the same
// metric names, in both directions).

import (
	"context"
	"fmt"
	"io"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/itemset"
	"repro/internal/telemetry"
)

// funcSource adapts a closure to the RecordSource interface (test-only).
type funcSource func() (itemset.Itemset, error)

func (f funcSource) Next() (itemset.Itemset, error) { return f() }

func telemetryTestConfig(workers int, reg *telemetry.Registry) Config {
	return Config{
		WindowSize:   300,
		Params:       core.Params{Epsilon: 0.1, Delta: 0.4, MinSupport: 10, VulnSupport: 5},
		Scheme:       core.Hybrid{Lambda: 0.4},
		Seed:         11,
		PublishEvery: 100,
		Workers:      workers,
		Metrics:      reg,
	}
}

// renderRun executes one pipeline run and renders every published window to
// a canonical byte string (position plus every itemset and sanitized
// support, in output order).
func renderRun(t *testing.T, cfg Config, records []itemset.Itemset) string {
	t.Helper()
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	err = p.Run(records, func(w Window) error {
		fmt.Fprintf(&b, "== %d\n", w.Position)
		for _, it := range w.Output.Items {
			fmt.Fprintf(&b, "%s %d\n", it.Set.Key(), it.Support)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// TestTelemetryABIdentity is the observation-only gate: at workers 1, 2
// and 8, a telemetry-enabled run publishes output byte-identical to a
// telemetry-disabled run. CI executes this race-enabled.
func TestTelemetryABIdentity(t *testing.T) {
	records := data.WebViewLike(3).Generate(900)
	for _, workers := range []int{1, 2, 8} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			off := renderRun(t, telemetryTestConfig(workers, nil), records)
			on := renderRun(t, telemetryTestConfig(workers, telemetry.NewRegistry()), records)
			if off != on {
				t.Errorf("published output differs with telemetry enabled (workers=%d):\n--- off ---\n%s--- on ---\n%s",
					workers, off, on)
			}
			if !strings.Contains(off, "== 900") {
				t.Fatalf("run did not publish the final window:\n%s", off)
			}
		})
	}
}

// TestTelemetryRecording runs a multi-window stream and checks that every
// pipeline- and publisher-side signal landed in the registry with sane
// values.
func TestTelemetryRecording(t *testing.T) {
	reg := telemetry.NewRegistry()
	cfg := telemetryTestConfig(2, reg)
	cfg.CheckpointDir = t.TempDir()
	cfg.CheckpointEvery = 1
	records := data.WebViewLike(3).Generate(900)
	renderRun(t, cfg, records)

	count := func(name string) uint64 { return reg.CounterValue(name) }
	if got := count(MetricRecords); got != 900 {
		t.Errorf("%s = %d, want 900", MetricRecords, got)
	}
	windows := count(MetricWindows)
	if windows != 7 { // positions 300, 400, ..., 900
		t.Errorf("%s = %d, want 7", MetricWindows, windows)
	}
	if got := count(MetricCheckpoints); got != windows {
		t.Errorf("%s = %d, want %d (checkpoint-every=1)", MetricCheckpoints, got, windows)
	}
	if got := count(MetricBadRecords) + count(MetricRetries) + count(MetricPanics) + count(MetricWatchdogTrips); got != 0 {
		t.Errorf("fault counters nonzero on a clean run: %d", got)
	}

	var histCounts = map[string]uint64{}
	var gauges = map[string]float64{}
	for _, f := range reg.Snapshot() {
		for _, s := range f.Series {
			key := f.Name + s.Labels
			switch f.Type {
			case telemetry.TypeHistogram:
				histCounts[key] += s.Count
			case telemetry.TypeGauge:
				gauges[key] = s.Value
			}
		}
	}
	for _, stage := range []string{"mine", "perturb", "emit"} {
		key := MetricStageSeconds + `{stage="` + stage + `"}`
		if histCounts[key] != windows {
			t.Errorf("stage %s observed %d windows, want %d", stage, histCounts[key], windows)
		}
	}
	if histCounts[MetricCkptSave] != windows {
		t.Errorf("checkpoint-save histogram observed %d, want %d", histCounts[MetricCkptSave], windows)
	}
	if histCounts[core.MetricBiasOptSeconds] != windows {
		t.Errorf("bias-opt histogram observed %d, want %d", histCounts[core.MetricBiasOptSeconds], windows)
	}

	// A slide of 100 over a window of 300 keeps most itemsets' supports
	// moving, but across 7 windows SOME republication must have happened,
	// and every published itemset is either a hit or a miss.
	hits, misses := count(core.MetricCacheHits), count(core.MetricCacheMisses)
	if hits == 0 {
		t.Error("republication cache recorded zero hits over 7 overlapping windows")
	}
	if hits+misses == 0 {
		t.Fatal("no cache traffic recorded")
	}
	if gauges[core.MetricCacheEntries] == 0 {
		t.Error("cache-entries gauge never set")
	}

	// §V-C posture gauges: pred within the calibrated ε budget (loose 2x
	// slack — it is a mean, not the bound), prig proxy above the δ floor,
	// rates in [0, 1].
	pred, prig := gauges[core.MetricAvgPred], gauges[core.MetricAvgPrig]
	if pred <= 0 || pred > 2*cfg.Params.Epsilon {
		t.Errorf("avg_pred gauge %v outside (0, 2ε=%v]", pred, 2*cfg.Params.Epsilon)
	}
	if prig < cfg.Params.Delta {
		t.Errorf("avg_prig proxy %v below the δ floor %v", prig, cfg.Params.Delta)
	}
	for _, name := range []string{core.MetricROPP, core.MetricRRPP} {
		if v := gauges[name]; v <= 0 || v > 1 {
			t.Errorf("%s gauge %v outside (0, 1]", name, v)
		}
	}
	if gauges[MetricWindowSets] == 0 {
		t.Error("window-itemsets gauge never set")
	}
}

// TestTelemetryFaultCounters drives the retry and quarantine paths and
// checks the labeled counters.
func TestTelemetryFaultCounters(t *testing.T) {
	reg := telemetry.NewRegistry()
	cfg := telemetryTestConfig(2, reg)
	cfg.EmitRetries = 3
	cfg.MaxBadRecords = -1
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	records := data.WebViewLike(3).Generate(400)
	// A source that surfaces two malformed records mid-stream.
	i := 0
	badAt := map[int]bool{50: true, 60: true}
	src := funcSource(func() (itemset.Itemset, error) {
		if badAt[i] {
			delete(badAt, i)
			return itemset.Itemset{}, &data.ParseError{Line: i, Err: fmt.Errorf("synthetic")}
		}
		if i >= len(records) {
			return itemset.Itemset{}, io.EOF
		}
		rec := records[i]
		i++
		return rec, nil
	})
	emitFails := 2
	_, err = p.RunContext(context.Background(), src, func(w Window) error {
		if emitFails > 0 {
			emitFails--
			return Transient(fmt.Errorf("synthetic sink hiccup"))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.CounterValue(MetricBadRecords); got != 2 {
		t.Errorf("%s = %d, want 2", MetricBadRecords, got)
	}
	if got := reg.CounterValue(MetricRetries); got != 2 {
		t.Errorf("%s = %d, want 2 emit retries", MetricRetries, got)
	}
}

// TestObservabilityDocSync moved to internal/server (docsync_test.go): the
// server package sits above pipeline, publisher, tracer AND its own
// instruments, so it is the one place the FULL metric namespace can be
// assembled (this package cannot import internal/server without a cycle).
// The pipeline side of the registration is exported as RegisterMetrics.
