package pipeline

// Regression tests for the window-buffer freelist between the perturb and
// mine stages: recycling mined-result buffers through the pipeline must be
// invisible in the published bytes, and a Window handed to the emit callback
// must never be disturbed when the buffer it was mined from is recycled into
// a later window.

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/data"
)

// poolConfig shrinks the channel depth to 1 so mined-result buffers cycle
// through the freelist as aggressively as the pipeline allows.
func poolConfig(workers int) Config {
	cfg := telemetryTestConfig(workers, nil)
	cfg.Buffer = 1
	return cfg
}

// TestPooledPipelineRunIdentity: with the freelist under maximum pressure
// (Buffer=1), two runs over the same seeded stream publish byte-identical
// windows at every worker tier. CI executes this race-enabled.
func TestPooledPipelineRunIdentity(t *testing.T) {
	records := data.WebViewLike(3).Generate(900)
	for _, workers := range []int{1, 2, 8} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			run1 := renderRun(t, poolConfig(workers), records)
			run2 := renderRun(t, poolConfig(workers), records)
			if run1 != run2 {
				t.Errorf("published output differs between identical pooled runs (workers=%d):\n--- run1 ---\n%s--- run2 ---\n%s",
					workers, run1, run2)
			}
			if !strings.Contains(run1, "== 900") {
				t.Fatalf("run did not publish the final window:\n%s", run1)
			}
		})
	}
}

// TestPooledPipelineRetainedWindows is the cross-stage aliasing detector:
// every Window is rendered when delivered AND retained; after the run every
// retained Window is re-rendered and must match. If a published Output
// aliased a recycled mined-result buffer or publisher scratch, a later
// window would have scribbled over it.
func TestPooledPipelineRetainedWindows(t *testing.T) {
	records := data.WebViewLike(3).Generate(900)
	for _, workers := range []int{1, 8} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			p, err := New(poolConfig(workers))
			if err != nil {
				t.Fatal(err)
			}
			var retained []Window
			var atDelivery []string
			err = p.Run(records, func(w Window) error {
				retained = append(retained, w)
				atDelivery = append(atDelivery, renderPooledWindow(w))
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(retained) == 0 {
				t.Fatal("run published no windows")
			}
			for i, w := range retained {
				if got := renderPooledWindow(w); got != atDelivery[i] {
					t.Fatalf("window %d was mutated after delivery (buffer recycling aliased it):\n--- at delivery ---\n%s--- now ---\n%s",
						i, atDelivery[i], got)
				}
			}
			// Retained outputs must also index correctly after the run — the
			// lazy support index cannot depend on recycled mining state.
			last := retained[len(retained)-1].Output
			if len(last.Items) > 0 {
				it := last.Items[0]
				if sup, ok := last.Support(it.Set); !ok || sup != it.Support {
					t.Fatalf("retained output index broken: Support(%v) = %d,%v want %d,true",
						it.Set, sup, ok, it.Support)
				}
			}
		})
	}
}

func renderPooledWindow(w Window) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %d\n", w.Position)
	for _, it := range w.Output.Items {
		fmt.Fprintf(&b, "%s %d\n", it.Set.Key(), it.Support)
	}
	return b.String()
}

// TestPooledClosedOnlyRunIdentity covers the freelist's bypass: closed-only
// runs never recycle (the closure filter derives fresh results), and must
// remain deterministic with the small buffer all the same.
func TestPooledClosedOnlyRunIdentity(t *testing.T) {
	records := data.WebViewLike(3).Generate(900)
	cfg := poolConfig(2)
	cfg.ClosedOnly = true
	run1 := renderRun(t, cfg, records)
	run2 := renderRun(t, cfg, records)
	if run1 != run2 {
		t.Errorf("closed-only pooled runs differ:\n--- run1 ---\n%s--- run2 ---\n%s", run1, run2)
	}
}
