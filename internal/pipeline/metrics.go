package pipeline

// This file wires the supervised pipeline into the telemetry registry:
// one pre-registered instrument per stage signal, recorded through nil-safe
// methods so a run without telemetry (Config.Metrics == nil) pays a single
// pointer test per event. Everything recorded here is observational —
// wall-times, counts and sizes of work the pipeline was doing anyway; the
// A/B identity tests pin published bytes equal with metrics on and off.

import (
	"time"

	"repro/internal/telemetry"
)

// Pipeline metric names (see OBSERVABILITY.md for the full reference).
const (
	MetricRecords       = "butterfly_records_total"
	MetricBadRecords    = "butterfly_bad_records_total"
	MetricWindows       = "butterfly_windows_published_total"
	MetricRetries       = "butterfly_retries_total"
	MetricPanics        = "butterfly_panics_recovered_total"
	MetricWatchdogTrips = "butterfly_watchdog_trips_total"
	MetricCheckpoints   = "butterfly_checkpoints_total"
	MetricCkptSave      = "butterfly_checkpoint_save_seconds"
	MetricCkptKindSaves = "butterfly_checkpoint_delta_saves_total"
	MetricCkptChain     = "butterfly_checkpoint_delta_chain_frames"
	MetricCkptBytes     = "butterfly_checkpoint_delta_bytes"
	MetricResumeSeconds = "butterfly_resume_seconds"
	MetricStageSeconds  = "butterfly_stage_seconds"
	MetricWindowSets    = "butterfly_window_itemsets"
)

// RegisterMetrics pre-registers the pipeline's full instrument set on reg
// without running a stream — registration alone defines the namespace. The
// cross-package observability doc-sync test uses this to assemble the
// complete metric surface (pipeline + publisher + tracer + server) in one
// registry; a run with Config.Metrics = reg registers the same names
// idempotently.
func RegisterMetrics(reg *telemetry.Registry) {
	newPipeMetrics(reg)
}

// pipeMetrics holds the pipeline's registered instruments. A nil
// *pipeMetrics disables recording.
type pipeMetrics struct {
	records       *telemetry.Counter
	badRecords    *telemetry.Counter
	windows       *telemetry.Counter
	sourceRetries *telemetry.Counter
	emitRetries   *telemetry.Counter
	panics        *telemetry.Counter
	watchdogTrips *telemetry.Counter
	checkpoints   *telemetry.Counter

	fullSaves   *telemetry.Counter
	deltaSaves  *telemetry.Counter
	chainFrames *telemetry.Gauge

	mineDur    *telemetry.Histogram
	perturbDur *telemetry.Histogram
	emitDur    *telemetry.Histogram
	ckptSave   *telemetry.Histogram
	fullBytes  *telemetry.Histogram
	deltaBytes *telemetry.Histogram
	resumeDur  *telemetry.Gauge
	windowSets *telemetry.Gauge
}

// newPipeMetrics registers the pipeline instrument set on reg; nil reg
// yields nil (recording disabled). Registration is idempotent, so repeated
// runs over one registry accumulate rather than conflict.
func newPipeMetrics(reg *telemetry.Registry) *pipeMetrics {
	if reg == nil {
		return nil
	}
	stage := func(name string) *telemetry.Histogram {
		return reg.Histogram(MetricStageSeconds,
			"Per-window wall time of each pipeline stage (mine includes record ingest).",
			nil, telemetry.Labels{"stage": name})
	}
	return &pipeMetrics{
		records: reg.Counter(MetricRecords,
			"Well-formed records consumed from the source.", nil),
		badRecords: reg.Counter(MetricBadRecords,
			"Malformed records skipped and quarantined against the bad-record budget.", nil),
		windows: reg.Counter(MetricWindows,
			"Sanitized windows delivered to the emit sink.", nil),
		sourceRetries: reg.Counter(MetricRetries,
			"Retry attempts after transient failures, by operation.",
			telemetry.Labels{"op": "source"}),
		emitRetries: reg.Counter(MetricRetries,
			"Retry attempts after transient failures, by operation.",
			telemetry.Labels{"op": "emit"}),
		panics: reg.Counter(MetricPanics,
			"Panics recovered from stages, sources and sinks.", nil),
		watchdogTrips: reg.Counter(MetricWatchdogTrips,
			"Per-window watchdog expirations (each fails the run).", nil),
		checkpoints: reg.Counter(MetricCheckpoints,
			"Crash-safe snapshots written.", nil),
		fullSaves: reg.Counter(MetricCkptKindSaves,
			"Checkpoint generations persisted, by kind (full snapshot vs delta frame).",
			telemetry.Labels{"kind": "full"}),
		deltaSaves: reg.Counter(MetricCkptKindSaves,
			"Checkpoint generations persisted, by kind (full snapshot vs delta frame).",
			telemetry.Labels{"kind": "delta"}),
		chainFrames: reg.Gauge(MetricCkptChain,
			"Delta frames in the current chain since its anchor full snapshot (0 right after a full save).", nil),
		mineDur:    stage("mine"),
		perturbDur: stage("perturb"),
		emitDur:    stage("emit"),
		ckptSave: reg.Histogram(MetricCkptSave,
			"Checkpoint save latency (encode + fsync + rename + prune).", nil, nil),
		fullBytes: reg.Histogram(MetricCkptBytes,
			"Bytes written per persisted checkpoint generation, by kind.",
			ckptByteBuckets, telemetry.Labels{"kind": "full"}),
		deltaBytes: reg.Histogram(MetricCkptBytes,
			"Bytes written per persisted checkpoint generation, by kind.",
			ckptByteBuckets, telemetry.Labels{"kind": "delta"}),
		resumeDur: reg.Gauge(MetricResumeSeconds,
			"Wall time of the last checkpoint restore, including source fast-forward.", nil),
		windowSets: reg.Gauge(MetricWindowSets,
			"Published itemsets in the most recent window.", nil),
	}
}

func (m *pipeMetrics) addRecord() {
	if m != nil {
		m.records.Inc()
	}
}

func (m *pipeMetrics) addBadRecord() {
	if m != nil {
		m.badRecords.Inc()
	}
}

func (m *pipeMetrics) addWindow(itemsets int) {
	if m != nil {
		m.windows.Inc()
		m.windowSets.Set(float64(itemsets))
	}
}

func (m *pipeMetrics) addRetry(op string) {
	if m == nil {
		return
	}
	if op == "source" {
		m.sourceRetries.Inc()
	} else {
		m.emitRetries.Inc()
	}
}

func (m *pipeMetrics) addPanic() {
	if m != nil {
		m.panics.Inc()
	}
}

func (m *pipeMetrics) addWatchdogTrip() {
	if m != nil {
		m.watchdogTrips.Inc()
	}
}

// ckptByteBuckets sizes the per-save byte histogram: deltas land in the
// hundreds-of-bytes buckets, full snapshots in the tens-of-KiB ones, so the
// split is visible at a glance.
var ckptByteBuckets = []float64{256, 1024, 4096, 16384, 65536, 262144, 1048576}

func (m *pipeMetrics) addCheckpoint(took time.Duration) {
	if m != nil {
		m.checkpoints.Inc()
		m.ckptSave.Observe(took.Seconds())
	}
}

// addCheckpointSave records a persisted generation's kind, size and the
// resulting chain length.
func (m *pipeMetrics) addCheckpointSave(full bool, bytes, chainFrames int) {
	if m == nil {
		return
	}
	if full {
		m.fullSaves.Inc()
		m.fullBytes.Observe(float64(bytes))
	} else {
		m.deltaSaves.Inc()
		m.deltaBytes.Observe(float64(bytes))
	}
	m.chainFrames.Set(float64(chainFrames))
}

func (m *pipeMetrics) observeStage(h func(*pipeMetrics) *telemetry.Histogram, took time.Duration) {
	if m != nil {
		h(m).Observe(took.Seconds())
	}
}

func (m *pipeMetrics) observeMine(took time.Duration) {
	m.observeStage(func(m *pipeMetrics) *telemetry.Histogram { return m.mineDur }, took)
}

func (m *pipeMetrics) observePerturb(took time.Duration) {
	m.observeStage(func(m *pipeMetrics) *telemetry.Histogram { return m.perturbDur }, took)
}

func (m *pipeMetrics) observeEmit(took time.Duration) {
	m.observeStage(func(m *pipeMetrics) *telemetry.Histogram { return m.emitDur }, took)
}

func (m *pipeMetrics) observeResume(took time.Duration) {
	if m != nil {
		m.resumeDur.Set(took.Seconds())
	}
}
