// Package pipeline runs the end-to-end Butterfly publication loop — sliding
// window mining, output perturbation, and sanitized-window delivery — as a
// supervised, staged concurrent pipeline over a potentially unbounded
// record stream.
//
// The three stages communicate over bounded channels:
//
//	source ──▶ mine ──(mining.Result)──▶ perturb ──(Window)──▶ emit
//
// The miner stage pulls records incrementally from a RecordSource, pushes
// them into the incremental Moment miner, and snapshots the frequent
// itemsets at every publication point; the perturb stage sanitizes each
// snapshot with the core.Publisher (itself fanning the per-itemset
// perturbation out to a chunked worker pool); the emit stage hands finished
// windows to the caller's callback in stream order. While window w is being
// perturbed or emitted, the miner is already sliding toward window w+1, so
// the stages overlap instead of alternating.
//
// Supervision (see supervise.go): every stage runs under a recover guard
// that converts panics into run errors; context cancellation propagates
// through all stages with no goroutine leaks; malformed input records are
// skipped and counted against a configurable budget; transient emit and
// source failures are retried with exponential backoff, re-delivering the
// SAME already-perturbed window so retries never consume extra randomness;
// and an optional per-window watchdog bounds how long any window may take.
// A fault-injected run that eventually succeeds therefore publishes output
// byte-identical to a fault-free run.
//
// Determinism contract (see core.Publisher.SetWorkers): Workers <= 1 drives
// the publisher in its historical sequential draw order — published values
// are byte-identical to the pre-pipeline implementation. Workers >= 2 uses
// the chunked RNG; every worker count >= 2 publishes identical output for a
// fixed seed. Stage overlap, retries, and skipped bad records never change
// published values at any worker count.
package pipeline

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/itemset"
	"repro/internal/mining"
)

// Config assembles a publication pipeline.
type Config struct {
	// WindowSize is the sliding window H.
	WindowSize int
	// Params is the Butterfly calibration; Params.MinSupport doubles as the
	// mining threshold C.
	Params core.Params
	// Scheme selects the bias setting; nil means core.Basic.
	Scheme core.Scheme
	// Seed drives the perturbation; equal seeds reproduce equal outputs.
	Seed uint64
	// ClosedOnly restricts publication to closed frequent itemsets.
	ClosedOnly bool
	// Raw publishes true supports without perturbation (audit mode).
	Raw bool
	// PublishEvery publishes every N slides after the window first fills;
	// 0 publishes once, at the end of the record stream.
	PublishEvery int
	// Workers is the parallelism: <= 1 is the serial reference path, >= 2
	// enables the staged pipeline and the publisher's chunked perturbation.
	Workers int
	// Buffer is the depth of the inter-stage channels (default 4). Deeper
	// buffers let the miner run further ahead of the perturbation stage.
	Buffer int

	// MaxBadRecords is the bad-record budget: how many malformed input
	// records (surfaced by the source as *data.ParseError) may be skipped
	// and quarantined before the run fails. 0 — the default — fails fast on
	// the first malformed record; < 0 skips without limit.
	MaxBadRecords int
	// EmitRetries is the number of retry attempts for a transient emit or
	// source failure (including recovered callback panics) before the run
	// fails. 0 — the default — disables retries.
	EmitRetries int
	// EmitBackoff is the initial retry backoff, doubling per attempt up to
	// one second (default 5ms).
	EmitBackoff time.Duration
	// WindowTimeout is the per-window watchdog: a window whose perturbation
	// or emission (including retries and their backoff) takes longer fails
	// the run. 0 disables the watchdog.
	WindowTimeout time.Duration
}

// Window is one published release: the sanitized output of the sliding
// window ending at stream position Position.
type Window struct {
	// Position is N, the 1-based stream position of the window's last record.
	Position int
	// Output is the sanitized (or raw, in audit mode) mining output.
	Output *core.Output
}

// Pipeline is a reusable description of a publication run. Each call to Run
// or RunContext builds a fresh miner and publisher from the Config, so
// repeated runs over the same records reproduce the same outputs.
type Pipeline struct {
	cfg Config
}

// New validates the configuration and returns a Pipeline.
func New(cfg Config) (*Pipeline, error) {
	if cfg.Buffer < 0 {
		return nil, fmt.Errorf("pipeline: negative buffer %d", cfg.Buffer)
	}
	if cfg.PublishEvery < 0 {
		return nil, fmt.Errorf("pipeline: negative publish interval %d", cfg.PublishEvery)
	}
	if cfg.MaxBadRecords < -1 {
		return nil, fmt.Errorf("pipeline: bad-record budget %d (want -1, 0 or a positive budget)", cfg.MaxBadRecords)
	}
	if cfg.EmitRetries < 0 {
		return nil, fmt.Errorf("pipeline: negative emit retries %d", cfg.EmitRetries)
	}
	if cfg.EmitBackoff < 0 {
		return nil, fmt.Errorf("pipeline: negative emit backoff %v", cfg.EmitBackoff)
	}
	if cfg.WindowTimeout < 0 {
		return nil, fmt.Errorf("pipeline: negative window timeout %v", cfg.WindowTimeout)
	}
	// Delegate parameter/window validation to the stream constructor so the
	// two entry points cannot drift apart.
	if _, err := cfg.newStream(); err != nil {
		return nil, err
	}
	return &Pipeline{cfg: cfg}, nil
}

func (cfg Config) newStream() (*core.Stream, error) {
	return core.NewStream(core.StreamConfig{
		WindowSize: cfg.WindowSize,
		Params:     cfg.Params,
		Scheme:     cfg.Scheme,
		Seed:       cfg.Seed,
		ClosedOnly: cfg.ClosedOnly,
	})
}

// ErrShortStream matches (via errors.Is) the failure of a run whose record
// stream ended — or was drained by a DrainSource — before the sliding
// window ever filled, so callers can tell a deliberately-interrupted short
// run from a genuine stream defect.
var ErrShortStream = errors.New("pipeline: stream shorter than the window size")

// shortStreamError carries the counts; it reports true for
// errors.Is(err, ErrShortStream).
type shortStreamError struct {
	records, window int
	ended           bool // true: stream ended mid-fill; false: rejected up front
}

func (e *shortStreamError) Error() string {
	if e.ended {
		return fmt.Sprintf("pipeline: stream ended after %d records, fewer than the window size %d",
			e.records, e.window)
	}
	return fmt.Sprintf("pipeline: stream has %d records, fewer than the window size %d",
		e.records, e.window)
}

func (e *shortStreamError) Is(target error) bool { return target == ErrShortStream }

// minedWindow is one mining snapshot in flight between the mine and perturb
// stages. The *mining.Result is a fully materialized copy of the window's
// frequent itemsets, safe to perturb while the miner slides onward.
type minedWindow struct {
	position int
	res      *mining.Result
}

// Run streams records through the pipeline and calls emit once per published
// window, in stream order. It returns the first error from any stage
// (including emit, which cancels the upstream stages). The number of records
// must be at least WindowSize.
func (p *Pipeline) Run(records []itemset.Itemset, emit func(Window) error) error {
	if len(records) < p.cfg.WindowSize {
		return &shortStreamError{records: len(records), window: p.cfg.WindowSize}
	}
	_, err := p.RunContext(context.Background(), SliceSource(records), emit)
	return err
}

// RunContext streams records from src through the supervised pipeline and
// calls emit once per published window, in stream order. It returns when
// the source is exhausted (after publishing the final window), when ctx is
// canceled, or on the first unrecovered stage error — whichever comes
// first. The returned Report is a best-effort summary that is valid even
// on error, so interrupted runs can print partial results.
//
// Cancellation returns promptly: stage goroutines blocked on channels
// unwind immediately, and goroutines inside user callbacks unwind as soon
// as the callback returns; none of them are leaked past that.
func (p *Pipeline) RunContext(ctx context.Context, src RecordSource, emit func(Window) error) (*Report, error) {
	stream, err := p.cfg.newStream()
	if err != nil {
		return nil, err
	}
	workers := p.cfg.Workers
	if workers < 1 {
		workers = 1
	}
	stream.Publisher().SetWorkers(workers)

	run := newRunState(ctx, p.cfg)
	defer run.cancel()
	buffer := p.cfg.Buffer
	if buffer == 0 {
		buffer = 4
	}
	mined := make(chan minedWindow, buffer)
	outs := make(chan Window, buffer)

	var wg sync.WaitGroup
	wg.Add(3)
	go func() { // Stage 1: ingest records, slide, snapshot at publication points.
		defer wg.Done()
		defer close(mined)
		defer run.recoverStage("mine")
		run.mineLoop(stream, src, mined)
	}()
	go func() { // Stage 2: perturb each snapshot in arrival (= stream) order.
		defer wg.Done()
		defer close(outs)
		defer run.recoverStage("perturb")
		run.perturbLoop(stream, p.cfg, mined, outs)
	}()
	go func() { // Stage 3: deliver windows in order, with retries.
		defer wg.Done()
		defer run.recoverStage("emit")
		run.emitLoop(outs, emit)
	}()

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-run.ctx.Done():
		// Canceled (externally or by the watchdog): return within the
		// cancellation latency of a channel select. Stages unwind on their
		// own; a stage stuck inside a user callback finishes unwinding when
		// that callback returns, and the Report snapshot below is safe to
		// take concurrently.
	}
	return run.snapshot(), run.firstErr()
}

// mineLoop is stage 1: pull records from the source (absorbing bad records
// and transient faults), slide the window, and snapshot at every
// publication point. The final window of a finite stream is published even
// when the stream ends between publication points, matching the historical
// at-end release of the materialized path.
func (r *runState) mineLoop(stream *core.Stream, src RecordSource, mined chan<- minedWindow) {
	sinceFull := 0
	pos := 0     // stream position of the last well-formed record
	lastPub := 0 // position of the last snapshot handed to perturb
	for {
		if r.ctx.Err() != nil {
			return
		}
		rec, err := r.nextRecord(src)
		if err == io.EOF {
			break
		}
		if err != nil {
			r.fail(err)
			return
		}
		stream.Push(rec)
		pos++
		r.addRecord()
		if !stream.Ready() {
			continue
		}
		sinceFull++
		if !(r.cfg.PublishEvery > 0 && (sinceFull-1)%r.cfg.PublishEvery == 0) {
			continue
		}
		if !sendOrDone(r, mined, minedWindow{position: pos, res: stream.Mine()}) {
			return
		}
		lastPub = pos
	}
	if r.ctx.Err() != nil {
		return
	}
	if !stream.Ready() {
		r.fail(&shortStreamError{records: pos, window: r.cfg.WindowSize, ended: true})
		return
	}
	if lastPub != pos {
		sendOrDone(r, mined, minedWindow{position: pos, res: stream.Mine()})
	}
}

// nextRecord pulls one record from the source under supervision: recovered
// source panics and transient errors are retried with backoff (sharing the
// EmitRetries budget, counted per record), malformed records are skipped
// against the bad-record budget, and anything else is fatal.
func (r *runState) nextRecord(src RecordSource) (itemset.Itemset, error) {
	var rec itemset.Itemset
	attempts := 0
	for {
		err := safeCall(func() error {
			var e error
			rec, e = src.Next()
			return e
		})
		switch {
		case err == nil:
			return rec, nil
		case errors.Is(err, io.EOF):
			return itemset.Itemset{}, io.EOF
		}
		var pe *data.ParseError
		if errors.As(err, &pe) {
			if !r.recordBad(BadRecord{Line: pe.Line, Token: pe.Token, Err: pe.Err}) {
				return itemset.Itemset{}, fmt.Errorf(
					"pipeline: bad-record budget of %d exhausted (%d malformed records; last: %w)",
					r.cfg.MaxBadRecords, r.badCount(), pe)
			}
			continue
		}
		var panicked *panicError
		if errors.As(err, &panicked) {
			r.addPanic()
		}
		if !IsTransient(err) {
			return itemset.Itemset{}, fmt.Errorf("pipeline: record source: %w", err)
		}
		if attempts >= r.cfg.EmitRetries {
			return itemset.Itemset{}, fmt.Errorf(
				"pipeline: record source failed after %d retries: %w", attempts, err)
		}
		attempts++
		r.addRetry()
		backoff := r.cfg.EmitBackoff
		if backoff <= 0 {
			backoff = defaultBackoff
		}
		for i := 1; i < attempts; i++ {
			if backoff *= 2; backoff >= maxBackoff {
				backoff = maxBackoff
				break
			}
		}
		select {
		case <-time.After(backoff):
		case <-r.ctx.Done():
			return itemset.Itemset{}, r.ctx.Err()
		}
	}
}

// perturbLoop is stage 2: sanitize each snapshot. Publish is retry-safe on
// error (core rolls its state back), but perturbation failures here are
// internal — not sink flakiness — so they fail the run; the watchdog bounds
// each window's perturbation time.
func (r *runState) perturbLoop(stream *core.Stream, cfg Config, mined <-chan minedWindow, outs chan<- Window) {
	for m := range mined {
		if r.ctx.Err() != nil {
			return
		}
		var out *core.Output
		err := r.watchdog("perturbation", m.position, func() error {
			if cfg.Raw {
				out = core.NewRawOutput(m.res, cfg.WindowSize)
				return nil
			}
			var e error
			out, e = stream.Publisher().Publish(m.res, cfg.WindowSize)
			return e
		})
		if err != nil {
			r.fail(fmt.Errorf("pipeline: perturbing window at position %d: %w", m.position, err))
			return
		}
		if !sendOrDone(r, outs, Window{Position: m.position, Output: out}) {
			return
		}
	}
}

// emitLoop is stage 3: deliver windows in order. Each delivery is wrapped
// in the retry/backoff policy — the SAME perturbed window is re-emitted on
// transient failure, preserving determinism — and the watchdog bounds the
// whole per-window delivery including backoff.
func (r *runState) emitLoop(outs <-chan Window, emit func(Window) error) {
	for w := range outs {
		if r.ctx.Err() != nil {
			continue // drain so the perturb stage never blocks on us
		}
		w := w
		err := r.watchdog("emission", w.Position, func() error {
			return r.withRetries(fmt.Sprintf("emitting window at position %d", w.Position),
				func() error { return emit(w) })
		})
		if err != nil {
			r.fail(err)
			continue
		}
		r.addPublished()
	}
}
