// Package pipeline runs the end-to-end Butterfly publication loop — sliding
// window mining, output perturbation, and sanitized-window delivery — as a
// supervised, staged concurrent pipeline over a potentially unbounded
// record stream.
//
// The three stages communicate over bounded channels:
//
//	source ──▶ mine ──(mining.Result)──▶ perturb ──(Window)──▶ emit
//
// The miner stage pulls records incrementally from a RecordSource, pushes
// them into the incremental Moment miner, and snapshots the frequent
// itemsets at every publication point; the perturb stage sanitizes each
// snapshot with the core.Publisher (itself fanning the per-itemset
// perturbation out to a chunked worker pool); the emit stage hands finished
// windows to the caller's callback in stream order. While window w is being
// perturbed or emitted, the miner is already sliding toward window w+1, so
// the stages overlap instead of alternating.
//
// Supervision (see supervise.go): every stage runs under a recover guard
// that converts panics into run errors; context cancellation propagates
// through all stages with no goroutine leaks; malformed input records are
// skipped and counted against a configurable budget; transient emit and
// source failures are retried with exponential backoff, re-delivering the
// SAME already-perturbed window so retries never consume extra randomness;
// and an optional per-window watchdog bounds how long any window may take.
// A fault-injected run that eventually succeeds therefore publishes output
// byte-identical to a fault-free run.
//
// Determinism contract (see core.Publisher.SetWorkers): Workers <= 1 drives
// the publisher in its historical sequential draw order — published values
// are byte-identical to the pre-pipeline implementation. Workers >= 2 uses
// the chunked RNG; every worker count >= 2 publishes identical output for a
// fixed seed. Stage overlap, retries, and skipped bad records never change
// published values at any worker count.
//
// Observability (see metrics.go): when Config.Metrics carries a
// telemetry.Registry, the pipeline records per-stage wall-time histograms,
// throughput/retry/quarantine/watchdog counters and checkpoint timings, and
// the publisher adds cache and rolling §V-C posture instruments.
// Instrumentation is strictly observation-only — the A/B identity test pins
// published bytes identical with telemetry on or off at every worker tier.
package pipeline

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/itemset"
	"repro/internal/mining"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Config assembles a publication pipeline.
type Config struct {
	// WindowSize is the sliding window H.
	WindowSize int
	// Params is the Butterfly calibration; Params.MinSupport doubles as the
	// mining threshold C.
	Params core.Params
	// Scheme selects the bias setting; nil means core.Basic.
	Scheme core.Scheme
	// Seed drives the perturbation; equal seeds reproduce equal outputs.
	Seed uint64
	// ClosedOnly restricts publication to closed frequent itemsets.
	ClosedOnly bool
	// Raw publishes true supports without perturbation (audit mode).
	Raw bool
	// PublishEvery publishes every N slides after the window first fills;
	// 0 publishes once, at the end of the record stream.
	PublishEvery int
	// Workers is the parallelism: <= 1 is the serial reference path, >= 2
	// enables the staged pipeline and the publisher's chunked perturbation.
	Workers int
	// Buffer is the depth of the inter-stage channels (default 4). Deeper
	// buffers let the miner run further ahead of the perturbation stage.
	Buffer int

	// MaxBadRecords is the bad-record budget: how many malformed input
	// records (surfaced by the source as *data.ParseError) may be skipped
	// and quarantined before the run fails. 0 — the default — fails fast on
	// the first malformed record; < 0 skips without limit.
	MaxBadRecords int
	// EmitRetries is the number of retry attempts for a transient emit or
	// source failure (including recovered callback panics) before the run
	// fails. 0 — the default — disables retries.
	EmitRetries int
	// EmitBackoff is the initial retry backoff, doubling per attempt up to
	// one second (default 5ms).
	EmitBackoff time.Duration
	// WindowTimeout is the per-window watchdog: a window whose perturbation
	// or emission (including retries and their backoff) takes longer fails
	// the run. 0 disables the watchdog.
	WindowTimeout time.Duration

	// CheckpointDir, when non-empty, enables crash-safe checkpointing: a
	// versioned, checksummed snapshot of the run state (source position,
	// sliding-window buffer, full publisher state) is written atomically to
	// this directory after every CheckpointEvery-th published window, and
	// always after the final window of a finite or drained stream.
	CheckpointDir string
	// CheckpointEvery is the checkpoint interval in published windows; 0
	// with a CheckpointDir means every window. Negative is rejected.
	CheckpointEvery int
	// CheckpointKeep is how many full-snapshot generations to retain
	// (checkpoint.DefaultKeep when 0); each full's delta-chain segment is
	// retained and pruned with it.
	CheckpointKeep int
	// CheckpointFullEvery is the full-snapshot compaction interval: of every
	// CheckpointFullEvery checkpoint generations, the first is a full
	// snapshot and the rest are delta frames appended to its chain
	// (checkpoint format v2) — each frame costing one fsync of an open file
	// instead of the full temp+fsync+rename+fsync protocol, and serializing
	// only the state that changed since the previous generation. <= 1 makes
	// every generation a full snapshot (the historical v1 behavior, and the
	// default). The first generation of every run is always full, so a chain
	// never crosses a process restart. Recovery is unchanged for callers:
	// Store.Latest() returns the newest full extended by its chain's valid
	// frame prefix, and resume remains byte-identical.
	CheckpointFullEvery int
	// Checkpoints overrides CheckpointDir with a pre-built store — the
	// hook tests use to install crash plans; CLI callers use CheckpointDir.
	Checkpoints *checkpoint.Store
	// Resume, when non-nil, restores the run from a snapshot before any
	// stage starts: the publisher state is restored, the sliding window is
	// rebuilt from the snapshot's buffer, and the source is fast-forwarded
	// past the Records already consumed. The source must replay the SAME
	// record sequence from its beginning (re-opened file, re-seeded
	// generator); the run then publishes the remaining windows
	// byte-identically to an uninterrupted run. The snapshot's
	// configuration fingerprint must match this Config.
	Resume *checkpoint.Snapshot

	// Metrics, when non-nil, receives the run's telemetry: per-stage
	// wall-time histograms, record/retry/quarantine/checkpoint counters,
	// and the publisher's cache and §V-C posture gauges (see
	// OBSERVABILITY.md). Telemetry is observation-only — published output
	// is byte-identical with Metrics set or nil at every worker count.
	Metrics *telemetry.Registry

	// Warnf, when non-nil, receives the warnings the run absorbs without
	// failing — today the checkpoint store's corruption-fallback and prune
	// notices when the store is built here from CheckpointDir. Callers that
	// pass a pre-built store via Checkpoints keep wiring Store.Logf
	// themselves; callers that only hand over a directory previously lost
	// these warnings entirely (they bypassed the CLI's structured
	// statusLogger). Route it into a *slog.Logger or equivalent.
	Warnf func(format string, args ...any)

	// Trace, when non-nil, records each published window into the
	// in-process flight recorder: a root span per window with child spans
	// for source/mine/perturb/emit/checkpoint.save (and resume after a
	// restart), plus the publisher's bias-optimization and
	// republication-cache spans, all nested under the window's track (see
	// internal/trace and OBSERVABILITY.md §Tracing). Like Metrics, tracing
	// is strictly observation-only — published output is byte-identical
	// with Trace set or nil at every worker count — and the span hot path
	// does not allocate after warm-up.
	Trace *trace.Tracer
}

// Fingerprint is the configuration identity a snapshot is bound to; resume
// under a different fingerprint is refused (see checkpoint.Meta). The
// multi-stream server persists it in its stream manifest and re-verifies it
// when re-adopting a stream at boot.
func (cfg Config) Fingerprint() checkpoint.Meta { return cfg.fingerprint() }

// fingerprint is the unexported implementation of Fingerprint.
func (cfg Config) fingerprint() checkpoint.Meta {
	scheme := cfg.Scheme
	if scheme == nil {
		scheme = core.Basic{}
	}
	return checkpoint.Meta{
		WindowSize:   cfg.WindowSize,
		Epsilon:      cfg.Params.Epsilon,
		Delta:        cfg.Params.Delta,
		MinSupport:   cfg.Params.MinSupport,
		VulnSupport:  cfg.Params.VulnSupport,
		Seed:         cfg.Seed,
		Scheme:       scheme.Name(),
		ClosedOnly:   cfg.ClosedOnly,
		Raw:          cfg.Raw,
		Chunked:      cfg.Workers >= 2,
		PublishEvery: cfg.PublishEvery,
	}
}

// verifyResume rejects a snapshot that cannot deterministically continue
// this configuration.
func (cfg Config) verifyResume(s *checkpoint.Snapshot) error {
	if got, want := s.Meta, cfg.fingerprint(); got != want {
		return fmt.Errorf("pipeline: resume snapshot was taken under a different configuration (%+v, running %+v)",
			got, want)
	}
	if len(s.Window) != cfg.WindowSize {
		return fmt.Errorf("pipeline: resume snapshot window holds %d records, want the window size %d",
			len(s.Window), cfg.WindowSize)
	}
	if s.Records < uint64(cfg.WindowSize) {
		return fmt.Errorf("pipeline: resume snapshot position %d precedes the first full window of %d records",
			s.Records, cfg.WindowSize)
	}
	return nil
}

// Window is one published release: the sanitized output of the sliding
// window ending at stream position Position.
type Window struct {
	// Position is N, the 1-based stream position of the window's last record.
	Position int
	// Output is the sanitized (or raw, in audit mode) mining output.
	Output *core.Output

	// ckpt, when non-nil, is the full snapshot to persist once this window
	// has been delivered. It is assembled as the window flows through the
	// stages — the mine stage contributes position and window buffer, the
	// perturb stage the publisher state — so the saved snapshot is a
	// consistent cut without ever stalling the pipeline on a barrier.
	ckpt *checkpoint.Snapshot
	// delta, when non-nil, is the incremental generation to append instead
	// (CheckpointFullEvery > 1): the same consistent cut, carrying only the
	// change set since the previous generation. At most one of ckpt/delta
	// is set.
	delta *checkpoint.Delta
	// tr is the window's flight-recorder trace, threaded through the
	// stages alongside the data and committed by the emit stage (nil when
	// tracing is off). Like ckpt, it rides the channel hand-off, so each
	// stage owns it exclusively while recording its spans.
	tr *trace.Window
}

// Pipeline is a reusable description of a publication run. Each call to Run
// or RunContext builds a fresh miner and publisher from the Config, so
// repeated runs over the same records reproduce the same outputs.
type Pipeline struct {
	cfg Config

	// stagesDone is closed once the most recent RunContext's stage
	// goroutines have all unwound; see Wait.
	stagesDone chan struct{}
}

// Wait blocks until the stage goroutines of the most recent RunContext
// call have fully unwound. A canceled RunContext returns within the
// cancellation latency of a channel select while its stages are still
// draining — in particular the emit stage may be mid checkpoint save.
// Callers about to reclaim resources the stages touch (the checkpoint
// store, the durable directory) or to start another run against the same
// store must Wait first. Returns immediately if RunContext never ran.
func (p *Pipeline) Wait() {
	if p.stagesDone != nil {
		<-p.stagesDone
	}
}

// New validates the configuration and returns a Pipeline.
func New(cfg Config) (*Pipeline, error) {
	if cfg.Buffer < 0 {
		return nil, fmt.Errorf("pipeline: negative buffer %d", cfg.Buffer)
	}
	if cfg.PublishEvery < 0 {
		return nil, fmt.Errorf("pipeline: negative publish interval %d", cfg.PublishEvery)
	}
	if cfg.MaxBadRecords < -1 {
		return nil, fmt.Errorf("pipeline: bad-record budget %d (want -1, 0 or a positive budget)", cfg.MaxBadRecords)
	}
	if cfg.EmitRetries < 0 {
		return nil, fmt.Errorf("pipeline: negative emit retries %d", cfg.EmitRetries)
	}
	if cfg.EmitBackoff < 0 {
		return nil, fmt.Errorf("pipeline: negative emit backoff %v", cfg.EmitBackoff)
	}
	if cfg.WindowTimeout < 0 {
		return nil, fmt.Errorf("pipeline: negative window timeout %v", cfg.WindowTimeout)
	}
	if cfg.CheckpointEvery < 0 {
		return nil, fmt.Errorf("pipeline: negative checkpoint interval %d", cfg.CheckpointEvery)
	}
	if cfg.CheckpointKeep < 0 {
		return nil, fmt.Errorf("pipeline: negative checkpoint retention %d", cfg.CheckpointKeep)
	}
	if cfg.CheckpointFullEvery < 0 {
		return nil, fmt.Errorf("pipeline: negative full-snapshot interval %d", cfg.CheckpointFullEvery)
	}
	if cfg.CheckpointEvery > 0 && cfg.CheckpointDir == "" && cfg.Checkpoints == nil {
		return nil, fmt.Errorf("pipeline: checkpoint interval %d without a checkpoint directory", cfg.CheckpointEvery)
	}
	if cfg.Resume != nil {
		if err := cfg.verifyResume(cfg.Resume); err != nil {
			return nil, err
		}
	}
	// Delegate parameter/window validation to the stream constructor so the
	// two entry points cannot drift apart.
	if _, err := cfg.newStream(); err != nil {
		return nil, err
	}
	return &Pipeline{cfg: cfg}, nil
}

func (cfg Config) newStream() (*core.Stream, error) {
	return core.NewStream(core.StreamConfig{
		WindowSize: cfg.WindowSize,
		Params:     cfg.Params,
		Scheme:     cfg.Scheme,
		Seed:       cfg.Seed,
		ClosedOnly: cfg.ClosedOnly,
	})
}

// ErrShortStream matches (via errors.Is) the failure of a run whose record
// stream ended — or was drained by a DrainSource — before the sliding
// window ever filled, so callers can tell a deliberately-interrupted short
// run from a genuine stream defect.
var ErrShortStream = errors.New("pipeline: stream shorter than the window size")

// shortStreamError carries the counts; it reports true for
// errors.Is(err, ErrShortStream).
type shortStreamError struct {
	records, window int
	ended           bool // true: stream ended mid-fill; false: rejected up front
}

func (e *shortStreamError) Error() string {
	if e.ended {
		return fmt.Sprintf("pipeline: stream ended after %d records, fewer than the window size %d",
			e.records, e.window)
	}
	return fmt.Sprintf("pipeline: stream has %d records, fewer than the window size %d",
		e.records, e.window)
}

func (e *shortStreamError) Is(target error) bool { return target == ErrShortStream }

// minedWindow is one mining snapshot in flight between the mine and perturb
// stages. The *mining.Result is a fully materialized copy of the window's
// frequent itemsets, safe to perturb while the miner slides onward.
type minedWindow struct {
	position int
	res      *mining.Result
	// ckpt is the partially-filled full snapshot when one is due after this
	// window (see Window.ckpt); delta is its incremental counterpart (see
	// Window.delta). At most one is set.
	ckpt  *checkpoint.Snapshot
	delta *checkpoint.Delta
	// tr is the window's flight-recorder trace (see Window.tr).
	tr *trace.Window
}

// Run streams records through the pipeline and calls emit once per published
// window, in stream order. It returns the first error from any stage
// (including emit, which cancels the upstream stages). The number of records
// must be at least WindowSize.
func (p *Pipeline) Run(records []itemset.Itemset, emit func(Window) error) error {
	if len(records) < p.cfg.WindowSize {
		return &shortStreamError{records: len(records), window: p.cfg.WindowSize}
	}
	_, err := p.RunContext(context.Background(), SliceSource(records), emit)
	return err
}

// RunContext streams records from src through the supervised pipeline and
// calls emit once per published window, in stream order. It returns when
// the source is exhausted (after publishing the final window), when ctx is
// canceled, or on the first unrecovered stage error — whichever comes
// first. The returned Report is a best-effort summary that is valid even
// on error, so interrupted runs can print partial results.
//
// Cancellation returns promptly: stage goroutines blocked on channels
// unwind immediately, and goroutines inside user callbacks unwind as soon
// as the callback returns; none of them are leaked past that.
func (p *Pipeline) RunContext(ctx context.Context, src RecordSource, emit func(Window) error) (*Report, error) {
	stream, err := p.cfg.newStream()
	if err != nil {
		return nil, err
	}
	workers := p.cfg.Workers
	if workers < 1 {
		workers = 1
	}
	stream.Publisher().SetWorkers(workers)
	if p.cfg.Metrics != nil {
		stream.Publisher().SetMetrics(p.cfg.Metrics)
	}

	run := newRunState(ctx, p.cfg)
	defer run.cancel()
	run.ckpts = p.cfg.Checkpoints
	if run.ckpts == nil && p.cfg.CheckpointDir != "" {
		run.ckpts, err = checkpoint.NewStore(p.cfg.CheckpointDir, p.cfg.CheckpointKeep)
		if err != nil {
			return nil, err
		}
		// A store built here would otherwise swallow its corruption-fallback
		// and prune warnings; hand them to the caller's logger.
		run.ckpts.Logf = p.cfg.Warnf
		// The store is ours: release the open delta-chain segment descriptor
		// when the run ends. (A caller-provided store stays the caller's to
		// close.)
		defer run.ckpts.Close()
	}
	run.ckptEvery = p.cfg.CheckpointEvery
	if run.ckptEvery <= 0 {
		run.ckptEvery = 1
	}
	run.fullEvery = p.cfg.CheckpointFullEvery
	if run.fullEvery < 1 {
		run.fullEvery = 1
	}
	if rs := p.cfg.Resume; rs != nil {
		// Restore before any stage starts: rebuild the miner from the
		// snapshot's window buffer, restore the publisher, and let the mine
		// loop fast-forward the source past the consumed prefix. The resume
		// gauge spans from here to the end of that fast-forward.
		run.resumeStart = time.Now()
		if err := p.cfg.verifyResume(rs); err != nil {
			return nil, err
		}
		for _, rec := range rs.Window {
			stream.Push(rec)
		}
		if err := stream.Publisher().Restore(&rs.Publisher); err != nil {
			return nil, err
		}
		run.resume = rs
	}
	if run.ckpts != nil && run.fullEvery > 1 {
		// Delta generations serialize only the cache entries touched since
		// the previous generation; the publisher tracks them as it goes, and
		// the mine stage tracks the records appended to the window.
		stream.Publisher().SetDeltaTracking(true)
		run.trackAppend = true
	}
	buffer := p.cfg.Buffer
	if buffer == 0 {
		buffer = 4
	}
	mined := make(chan minedWindow, buffer)
	outs := make(chan Window, buffer)

	var wg sync.WaitGroup
	wg.Add(3)
	go func() { // Stage 1: ingest records, slide, snapshot at publication points.
		defer wg.Done()
		defer close(mined)
		defer run.recoverStage("mine")
		run.mineLoop(stream, src, mined)
	}()
	go func() { // Stage 2: perturb each snapshot in arrival (= stream) order.
		defer wg.Done()
		defer close(outs)
		defer run.recoverStage("perturb")
		run.perturbLoop(stream, p.cfg, mined, outs)
	}()
	go func() { // Stage 3: deliver windows in order, with retries.
		defer wg.Done()
		defer run.recoverStage("emit")
		run.emitLoop(outs, emit)
	}()

	done := make(chan struct{})
	p.stagesDone = done
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-run.ctx.Done():
		// Canceled (externally or by the watchdog): return within the
		// cancellation latency of a channel select. Stages unwind on their
		// own; a stage stuck inside a user callback finishes unwinding when
		// that callback returns, and the Report snapshot below is safe to
		// take concurrently.
	}
	return run.snapshot(), run.firstErr()
}

// mineLoop is stage 1: pull records from the source (absorbing bad records
// and transient faults), slide the window, and snapshot at every
// publication point. The final window of a finite stream is published even
// when the stream ends between publication points, matching the historical
// at-end release of the materialized path.
//
// On resume, the loop fast-forwards: the first resume.Records well-formed
// records are pulled and discarded — their effect already lives in the
// restored window buffer — which replays the exact bad-record and
// vocabulary-interning history of the pre-crash run, so the Report counts
// and every interned item id match the uninterrupted run.
func (r *runState) mineLoop(stream *core.Stream, src RecordSource, mined chan<- minedWindow) {
	pos := 0               // stream position of the last well-formed record
	skip := 0              // records already absorbed into the restored window
	lastPub := 0           // position of the last snapshot handed to perturb
	published := uint64(0) // publication index, drives the checkpoint schedule
	if rs := r.resume; rs != nil {
		skip = int(rs.Records)
		lastPub = skip
		published = rs.Published
	}
	windowStart := time.Now() // start of the current window's ingest+mine span
	tw := r.tracer.StartWindow()
	var srcDur time.Duration // time spent inside the source this window
	var srcRecords int64     // well-formed records ingested this window
	for {
		if r.ctx.Err() != nil {
			return
		}
		var rec itemset.Itemset
		var err error
		if tw != nil {
			s0 := time.Now()
			rec, err = r.nextRecord(src)
			srcDur += time.Since(s0)
		} else {
			rec, err = r.nextRecord(src)
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			r.fail(err)
			return
		}
		pos++
		r.addRecord()
		srcRecords++
		if pos <= skip {
			if pos == skip {
				// Fast-forward complete: the resume gauge covers restore
				// plus the replayed prefix, and the first traced window
				// carries the matching resume span.
				r.metrics.observeResume(time.Since(r.resumeStart))
				tw.Add(trace.KindResume, r.resumeStart, time.Since(r.resumeStart))
			}
			continue
		}
		stream.Push(rec)
		if r.trackAppend {
			r.pushAppended(rec)
		}
		if !stream.Ready() {
			continue
		}
		// The window fills exactly at the WindowSize-th well-formed record,
		// so the slide count is derivable from the position — which keeps it
		// continuous across a resume.
		sinceFull := pos - r.cfg.WindowSize + 1
		if !(r.cfg.PublishEvery > 0 && (sinceFull-1)%r.cfg.PublishEvery == 0) {
			continue
		}
		published++
		m := r.newMined(stream, pos, published, false)
		// The mine-stage observation ends when the snapshot is materialized,
		// BEFORE the (possibly backpressured) hand-off to perturb — it
		// measures mining work, not downstream congestion.
		mineDur := time.Since(windowStart)
		r.metrics.observeMine(mineDur)
		m.tr = r.finishMineSpans(tw, windowStart, mineDur, srcDur, srcRecords, pos, m.res.Len())
		if !sendOrDone(r, mined, m) {
			return
		}
		windowStart = time.Now()
		tw = r.tracer.StartWindow()
		srcDur, srcRecords = 0, 0
		lastPub = pos
	}
	if r.ctx.Err() != nil {
		return
	}
	if pos < skip {
		r.fail(fmt.Errorf("pipeline: source ended after %d records, before the resume position %d — "+
			"resume needs a source that replays the original stream", pos, skip))
		return
	}
	if !stream.Ready() {
		r.fail(&shortStreamError{records: pos, window: r.cfg.WindowSize, ended: true})
		return
	}
	if lastPub != pos {
		published++
		// The final window always checkpoints (when checkpointing is on):
		// this is the graceful-drain snapshot a restarted service resumes
		// from.
		m := r.newMined(stream, pos, published, true)
		mineDur := time.Since(windowStart)
		r.metrics.observeMine(mineDur)
		m.tr = r.finishMineSpans(tw, windowStart, mineDur, srcDur, srcRecords, pos, m.res.Len())
		sendOrDone(r, mined, m)
	}
}

// newMined packages one mining snapshot, attaching the partially-filled
// checkpoint when one is due: every ckptEvery-th publication, and always
// the final one. The window buffer is copied here, in the only stage that
// owns the miner.
//
// The full/delta schedule also lives here: the first generation of a run is
// always a full snapshot (a chain never crosses a restart), then every
// fullEvery-th is full and the rest are delta frames chained off it. A delta
// carries the records appended since the previous generation instead of the
// whole window buffer — when more than a window's worth arrived, only the
// last WindowSize survive, because the earlier ones have already slid out.
func (r *runState) newMined(stream *core.Stream, pos int, published uint64, final bool) minedWindow {
	// Snapshot into a recycled buffer from the freelist when one is ready
	// (see runState.results); identical content either way.
	var recycled *mining.Result
	if !r.cfg.ClosedOnly {
		select {
		case recycled = <-r.results:
		default:
		}
	}
	m := minedWindow{position: pos, res: stream.MineInto(recycled)}
	if r.ckpts == nil {
		return m
	}
	if !final && published%uint64(r.ckptEvery) != 0 {
		return m
	}
	r.ckptSeq++
	if r.fullEvery <= 1 || (r.ckptSeq-1)%uint64(r.fullEvery) == 0 {
		m.ckpt = &checkpoint.Snapshot{
			Meta:       r.cfg.fingerprint(),
			Records:    uint64(pos),
			BadRecords: uint64(r.badCount()),
			Published:  published,
			Window:     stream.WindowRecords(),
		}
	} else {
		app := r.appended
		if len(app) > r.cfg.WindowSize {
			app = app[len(app)-r.cfg.WindowSize:]
		}
		m.delta = &checkpoint.Delta{
			ParentRecords: r.lastCkptRecords,
			Records:       uint64(pos),
			BadRecords:    uint64(r.badCount()),
			Published:     published,
			Appended:      append([]itemset.Itemset(nil), app...),
		}
	}
	r.lastCkptRecords = uint64(pos)
	r.appended = r.appended[:0]
	return m
}

// pushAppended records one window-bound record for the next delta
// generation. The buffer compacts to the last WindowSize records once it
// doubles — anything older has slid out of the window, so no delta will
// ever serialize it.
func (r *runState) pushAppended(rec itemset.Itemset) {
	if w := r.cfg.WindowSize; len(r.appended) >= 2*w {
		n := copy(r.appended, r.appended[len(r.appended)-w:])
		r.appended = r.appended[:n]
	}
	r.appended = append(r.appended, rec)
}

// nextRecord pulls one record from the source under supervision: recovered
// source panics and transient errors are retried with backoff (sharing the
// EmitRetries budget, counted per record), malformed records are skipped
// against the bad-record budget, and anything else is fatal.
func (r *runState) nextRecord(src RecordSource) (itemset.Itemset, error) {
	var rec itemset.Itemset
	attempts := 0
	for {
		err := safeCall(func() error {
			var e error
			rec, e = src.Next()
			return e
		})
		switch {
		case err == nil:
			return rec, nil
		case errors.Is(err, io.EOF):
			return itemset.Itemset{}, io.EOF
		}
		var pe *data.ParseError
		if errors.As(err, &pe) {
			if !r.recordBad(BadRecord{Line: pe.Line, Token: pe.Token, Err: pe.Err}) {
				return itemset.Itemset{}, fmt.Errorf(
					"pipeline: bad-record budget of %d exhausted (%d malformed records; last: %w)",
					r.cfg.MaxBadRecords, r.badCount(), pe)
			}
			continue
		}
		var panicked *panicError
		if errors.As(err, &panicked) {
			r.addPanic()
		}
		if !IsTransient(err) {
			return itemset.Itemset{}, fmt.Errorf("pipeline: record source: %w", err)
		}
		if attempts >= r.cfg.EmitRetries {
			return itemset.Itemset{}, fmt.Errorf(
				"pipeline: record source failed after %d retries: %w", attempts, err)
		}
		attempts++
		r.addRetry("source")
		backoff := r.cfg.EmitBackoff
		if backoff <= 0 {
			backoff = defaultBackoff
		}
		for i := 1; i < attempts; i++ {
			if backoff *= 2; backoff >= maxBackoff {
				backoff = maxBackoff
				break
			}
		}
		select {
		case <-time.After(backoff):
		case <-r.ctx.Done():
			return itemset.Itemset{}, r.ctx.Err()
		}
	}
}

// perturbLoop is stage 2: sanitize each snapshot. Publish is retry-safe on
// error (core rolls its state back), but perturbation failures here are
// internal — not sink flakiness — so they fail the run; the watchdog bounds
// each window's perturbation time.
func (r *runState) perturbLoop(stream *core.Stream, cfg Config, mined <-chan minedWindow, outs chan<- Window) {
	for m := range mined {
		if r.ctx.Err() != nil {
			return
		}
		var out *core.Output
		// Direct the publisher's bias-opt and cache child spans into this
		// window's trace (a nil m.tr detaches; observation-only either way).
		stream.Publisher().SetTrace(m.tr)
		t0 := time.Now()
		err := r.watchdog("perturbation", m.position, func() error {
			if cfg.Raw {
				out = core.NewRawOutput(m.res, cfg.WindowSize)
				return nil
			}
			var e error
			out, e = stream.Publisher().Publish(m.res, cfg.WindowSize)
			return e
		})
		perturbDur := time.Since(t0)
		r.metrics.observePerturb(perturbDur)
		m.tr.Add(trace.KindPerturb, t0, perturbDur)
		if err != nil {
			// The failed window still lands in the flight recorder — the
			// abort-path trace dump should show what was in flight.
			r.tracer.Commit(m.tr)
			r.fail(fmt.Errorf("pipeline: perturbing window at position %d: %w", m.position, err))
			return
		}
		if m.ckpt != nil {
			// Capture the publisher immediately after this window's
			// perturbation — the consistent cut the checkpoint needs. In raw
			// mode the publisher is untouched and the snapshot simply
			// records its initial state. (With delta tracking on, this also
			// resets the change-set baseline: the next delta is relative to
			// this cut.)
			m.ckpt.Publisher = *stream.Publisher().Snapshot()
		} else if m.delta != nil {
			// The incremental counterpart: drain the cache entries touched
			// since the previous generation — O(changed), not O(cache).
			m.delta.Publisher = *stream.Publisher().SnapshotDelta()
		}
		// The sanitized output is assembled; nothing downstream references
		// the mining snapshot, so its buffer flows back to the mine stage.
		if !r.cfg.ClosedOnly {
			select {
			case r.results <- m.res:
			default:
			}
		}
		if !sendOrDone(r, outs, Window{Position: m.position, Output: out, ckpt: m.ckpt, delta: m.delta, tr: m.tr}) {
			return
		}
	}
}

// emitLoop is stage 3: deliver windows in order. Each delivery is wrapped
// in the retry/backoff policy — the SAME perturbed window is re-emitted on
// transient failure, preserving determinism — and the watchdog bounds the
// whole per-window delivery including backoff.
func (r *runState) emitLoop(outs <-chan Window, emit func(Window) error) {
	for w := range outs {
		if r.ctx.Err() != nil {
			continue // drain so the perturb stage never blocks on us
		}
		w := w
		t0 := time.Now()
		var attempts int64
		err := r.watchdog("emission", w.Position, func() error {
			return r.withRetries(fmt.Sprintf("emitting window at position %d", w.Position), w.tr,
				func() error { attempts++; return emit(w) })
		})
		emitDur := time.Since(t0)
		r.metrics.observeEmit(emitDur)
		sp := w.tr.Add(trace.KindEmit, t0, emitDur)
		if attempts > 0 {
			sp.Attr(trace.AttrRetries, attempts-1)
		}
		if err != nil {
			r.tracer.Commit(w.tr)
			r.fail(err)
			continue
		}
		r.addPublished()
		r.metrics.addWindow(w.Output.Len())
		if w.ckpt != nil || w.delta != nil {
			// Persist only after the window is delivered: a crash between
			// emit and save merely re-emits from the previous generation,
			// and the republication cache re-serves identical values.
			full := w.ckpt != nil
			c0 := time.Now()
			var saveErr error
			if full {
				saveErr = r.ckpts.Save(w.ckpt)
			} else {
				saveErr = r.ckpts.AppendDelta(w.delta)
			}
			saveDur := time.Since(c0)
			w.tr.Add(trace.KindCheckpointSave, c0, saveDur)
			if saveErr != nil {
				r.tracer.Commit(w.tr)
				r.fail(fmt.Errorf("pipeline: checkpointing window at position %d: %w", w.Position, saveErr))
				continue
			}
			r.addCheckpoint()
			r.metrics.addCheckpoint(saveDur)
			r.metrics.addCheckpointSave(full, r.ckpts.LastSaveBytes(), r.ckpts.ChainFrames())
		}
		// The window is fully delivered (and checkpointed when due): commit
		// its trace to the ring so snapshots and exemplars see it.
		r.tracer.Commit(w.tr)
	}
}
