// Package pipeline runs the end-to-end Butterfly publication loop — sliding
// window mining, output perturbation, and sanitized-window delivery — as a
// staged concurrent pipeline.
//
// The three stages communicate over bounded channels:
//
//	mine ──(mining.Result)──▶ perturb ──(Window)──▶ emit
//
// The miner stage pushes records into the incremental Moment miner and
// snapshots the frequent itemsets at every publication point; the perturb
// stage sanitizes each snapshot with the core.Publisher (itself fanning the
// per-itemset perturbation out to a chunked worker pool); the emit stage
// hands finished windows to the caller in stream order. While window w is
// being perturbed or emitted, the miner is already sliding toward window
// w+1, so the stages overlap instead of alternating.
//
// Determinism contract (see core.Publisher.SetWorkers): Workers <= 1 runs
// everything inline on the caller's goroutine with the historical sequential
// draw order — byte-identical to the pre-pipeline implementation. Workers
// >= 2 runs the staged pipeline with chunked RNG; every worker count >= 2
// publishes identical output for a fixed seed.
package pipeline

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/itemset"
	"repro/internal/mining"
)

// Config assembles a publication pipeline.
type Config struct {
	// WindowSize is the sliding window H.
	WindowSize int
	// Params is the Butterfly calibration; Params.MinSupport doubles as the
	// mining threshold C.
	Params core.Params
	// Scheme selects the bias setting; nil means core.Basic.
	Scheme core.Scheme
	// Seed drives the perturbation; equal seeds reproduce equal outputs.
	Seed uint64
	// ClosedOnly restricts publication to closed frequent itemsets.
	ClosedOnly bool
	// Raw publishes true supports without perturbation (audit mode).
	Raw bool
	// PublishEvery publishes every N slides after the window first fills;
	// 0 publishes once, at the end of the record stream.
	PublishEvery int
	// Workers is the parallelism: <= 1 is the serial reference path, >= 2
	// enables the staged pipeline and the publisher's chunked perturbation.
	Workers int
	// Buffer is the depth of the inter-stage channels (default 4). Deeper
	// buffers let the miner run further ahead of the perturbation stage.
	Buffer int
}

// Window is one published release: the sanitized output of the sliding
// window ending at stream position Position.
type Window struct {
	// Position is N, the 1-based stream position of the window's last record.
	Position int
	// Output is the sanitized (or raw, in audit mode) mining output.
	Output *core.Output
}

// Pipeline is a reusable description of a publication run. Each call to Run
// builds a fresh miner and publisher from the Config, so repeated runs over
// the same records reproduce the same outputs.
type Pipeline struct {
	cfg Config
}

// New validates the configuration and returns a Pipeline.
func New(cfg Config) (*Pipeline, error) {
	if cfg.Buffer < 0 {
		return nil, fmt.Errorf("pipeline: negative buffer %d", cfg.Buffer)
	}
	if cfg.PublishEvery < 0 {
		return nil, fmt.Errorf("pipeline: negative publish interval %d", cfg.PublishEvery)
	}
	// Delegate parameter/window validation to the stream constructor so the
	// two entry points cannot drift apart.
	if _, err := cfg.newStream(); err != nil {
		return nil, err
	}
	return &Pipeline{cfg: cfg}, nil
}

func (cfg Config) newStream() (*core.Stream, error) {
	return core.NewStream(core.StreamConfig{
		WindowSize: cfg.WindowSize,
		Params:     cfg.Params,
		Scheme:     cfg.Scheme,
		Seed:       cfg.Seed,
		ClosedOnly: cfg.ClosedOnly,
	})
}

// minedWindow is one mining snapshot in flight between the mine and perturb
// stages. The *mining.Result is a fully materialized copy of the window's
// frequent itemsets, safe to perturb while the miner slides onward.
type minedWindow struct {
	position int
	res      *mining.Result
}

// Run streams records through the pipeline and calls emit once per published
// window, in stream order. It returns the first error from any stage
// (including emit, which cancels the upstream stages). The number of records
// must be at least WindowSize.
func (p *Pipeline) Run(records []itemset.Itemset, emit func(Window) error) error {
	if len(records) < p.cfg.WindowSize {
		return fmt.Errorf("pipeline: stream has %d records, fewer than the window size %d",
			len(records), p.cfg.WindowSize)
	}
	stream, err := p.cfg.newStream()
	if err != nil {
		return err
	}
	if p.cfg.Workers <= 1 {
		return p.runSerial(stream, records, emit)
	}
	return p.runStaged(stream, records, emit)
}

// runSerial is the reference path: mine, perturb, and emit inline, exactly
// as the pre-pipeline implementation did. Its behaviour (including the RNG
// draw order) is frozen; the staged path is tested against it.
func (p *Pipeline) runSerial(stream *core.Stream, records []itemset.Itemset, emit func(Window) error) error {
	sinceFull := 0
	for i, rec := range records {
		stream.Push(rec)
		if !stream.Ready() {
			continue
		}
		sinceFull++
		if !p.publishDue(sinceFull, i == len(records)-1) {
			continue
		}
		var out *core.Output
		if p.cfg.Raw {
			out = core.NewRawOutput(stream.Mine(), p.cfg.WindowSize)
		} else {
			var err error
			out, err = stream.Publish()
			if err != nil {
				return err
			}
		}
		if err := emit(Window{Position: i + 1, Output: out}); err != nil {
			return err
		}
	}
	return nil
}

// publishDue reports whether a release is owed at the current slide.
func (p *Pipeline) publishDue(sinceFull int, atEnd bool) bool {
	due := p.cfg.PublishEvery > 0 && (sinceFull-1)%p.cfg.PublishEvery == 0
	return due || atEnd
}

// runStaged is the concurrent path: a miner goroutine and a perturbation
// goroutine connected by bounded channels, with emit running on the caller's
// goroutine. Channel order preserves stream order end to end.
func (p *Pipeline) runStaged(stream *core.Stream, records []itemset.Itemset, emit func(Window) error) error {
	stream.Publisher().SetWorkers(p.cfg.Workers)
	buffer := p.cfg.Buffer
	if buffer == 0 {
		buffer = 4
	}
	mined := make(chan minedWindow, buffer)
	outs := make(chan Window, buffer)
	errc := make(chan error, 2)
	done := make(chan struct{})
	var cancelOnce sync.Once
	cancel := func() { cancelOnce.Do(func() { close(done) }) }

	// Stage 1: slide the window and snapshot at publication points.
	go func() {
		defer close(mined)
		sinceFull := 0
		for i, rec := range records {
			stream.Push(rec)
			if !stream.Ready() {
				continue
			}
			sinceFull++
			if !p.publishDue(sinceFull, i == len(records)-1) {
				continue
			}
			snap := stream.Mine()
			select {
			case mined <- minedWindow{position: i + 1, res: snap}:
			case <-done:
				return
			}
		}
	}()

	// Stage 2: perturb each snapshot in arrival (= stream) order.
	go func() {
		defer close(outs)
		for m := range mined {
			var out *core.Output
			if p.cfg.Raw {
				out = core.NewRawOutput(m.res, p.cfg.WindowSize)
			} else {
				var err error
				out, err = stream.Publisher().Publish(m.res, p.cfg.WindowSize)
				if err != nil {
					errc <- err
					cancel()
					return
				}
			}
			select {
			case outs <- Window{Position: m.position, Output: out}:
			case <-done:
				return
			}
		}
	}()

	// Stage 3 (caller's goroutine): deliver windows in order.
	var emitErr error
	for w := range outs {
		if emitErr == nil {
			emitErr = emit(w)
			if emitErr != nil {
				cancel()
			}
		}
	}
	if emitErr != nil {
		return emitErr
	}
	select {
	case err := <-errc:
		return err
	default:
		return nil
	}
}
