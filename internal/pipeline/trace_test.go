package pipeline

// Flight-recorder tests: the span wiring of every stage (source, mine,
// perturb, emit, checkpoint.save, the publisher's bias-opt and cache
// children), retry nesting under emit, the resume span after a restart, and
// the tracing half of the observation-only A/B contract (the telemetry half
// lives in metrics_test.go).

import (
	"context"
	"fmt"
	"io"
	"testing"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/data"
	"repro/internal/itemset"
	"repro/internal/trace"
)

// spanNames collects a record's child-span names, with multiplicity.
func spanNames(rec trace.Record) map[string]int {
	names := map[string]int{}
	for _, sp := range rec.Spans {
		names[sp.Name]++
	}
	return names
}

// spanAttr returns the named attribute of the first span with kind name.
func spanAttr(rec trace.Record, name, key string) (int64, bool) {
	for _, sp := range rec.Spans {
		if sp.Name != name {
			continue
		}
		for _, a := range sp.Attrs {
			if a.Key == key {
				return a.Val, true
			}
		}
	}
	return 0, false
}

// TestTraceRecording runs a checkpointed multi-window stream and checks
// every published window committed a complete span ladder with the
// attributes the trace viewer keys on.
func TestTraceRecording(t *testing.T) {
	tr := trace.New(trace.Options{Windows: 32})
	cfg := telemetryTestConfig(2, nil)
	cfg.Trace = tr
	cfg.CheckpointDir = t.TempDir()
	cfg.CheckpointEvery = 1
	records := data.WebViewLike(3).Generate(900)
	renderRun(t, cfg, records)

	recs := tr.Snapshot()
	if len(recs) != 7 { // positions 300, 400, ..., 900
		t.Fatalf("flight recorder holds %d windows, want 7", len(recs))
	}
	for i, rec := range recs {
		wantPos := uint64(300 + 100*i)
		if rec.Window != wantPos {
			t.Errorf("record %d is window %d, want stream position %d", i, rec.Window, wantPos)
		}
		names := spanNames(rec)
		for _, want := range []string{"source", "mine", "perturb", "emit", "checkpoint.save", "bias.opt", "cache"} {
			if names[want] != 1 {
				t.Errorf("window %d has %d %q spans, want 1 (spans: %v)", rec.Window, names[want], want, names)
			}
		}
		if names["retry"] != 0 {
			t.Errorf("window %d has retry spans on a clean run", rec.Window)
		}
		wantRecords := int64(300)
		if i > 0 {
			wantRecords = 100 // slide between publications
		}
		if got, ok := spanAttr(rec, "source", "records"); !ok || got != wantRecords {
			t.Errorf("window %d source span records=%d (ok=%v), want %d", rec.Window, got, ok, wantRecords)
		}
		if got, ok := spanAttr(rec, "mine", "itemsets"); !ok || got <= 0 {
			t.Errorf("window %d mine span itemsets=%d (ok=%v), want > 0", rec.Window, got, ok)
		}
		hits, _ := spanAttr(rec, "cache", "cache_hits")
		misses, ok := spanAttr(rec, "cache", "cache_misses")
		if !ok || hits+misses == 0 {
			t.Errorf("window %d cache span traffic hits=%d misses=%d, want > 0", rec.Window, hits, misses)
		}
		if rec.Dropped != 0 {
			t.Errorf("window %d dropped %d spans", rec.Window, rec.Dropped)
		}
	}
}

// TestTraceRetrySpans drives transient emit failures and checks the retry
// spans nest under the affected window's emit span with attempt numbers.
func TestTraceRetrySpans(t *testing.T) {
	tr := trace.New(trace.Options{Windows: 32})
	cfg := telemetryTestConfig(1, nil)
	cfg.Trace = tr
	cfg.EmitRetries = 3
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	records := data.WebViewLike(3).Generate(400)
	emitFails := 2
	firstEmit := true
	err = p.Run(records, func(w Window) error {
		if firstEmit && emitFails > 0 {
			emitFails--
			return Transient(fmt.Errorf("synthetic sink hiccup"))
		}
		firstEmit = false
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	recs := tr.Snapshot()
	if len(recs) != 2 { // positions 300 and 400
		t.Fatalf("flight recorder holds %d windows, want 2", len(recs))
	}
	if got := spanNames(recs[0])["retry"]; got != 2 {
		t.Errorf("retried window has %d retry spans, want 2", got)
	}
	if att, ok := spanAttr(recs[0], "retry", "attempt"); !ok || att != 1 {
		t.Errorf("first retry span attempt=%d (ok=%v), want 1", att, ok)
	}
	if retries, ok := spanAttr(recs[0], "emit", "retries"); !ok || retries != 2 {
		t.Errorf("emit span retries=%d (ok=%v), want 2", retries, ok)
	}
	if got := spanNames(recs[1])["retry"]; got != 0 {
		t.Errorf("clean window has %d retry spans, want 0", got)
	}
	// Retry spans nest under the emit span by time containment.
	var emitSpan, retrySpan *trace.Span
	for i := range recs[0].Spans {
		switch recs[0].Spans[i].Name {
		case "emit":
			emitSpan = &recs[0].Spans[i]
		case "retry":
			if retrySpan == nil {
				retrySpan = &recs[0].Spans[i]
			}
		}
	}
	if retrySpan.Start < emitSpan.Start ||
		retrySpan.Start+retrySpan.Dur > emitSpan.Start+emitSpan.Dur {
		t.Errorf("retry span [%v +%v] not contained in emit span [%v +%v]",
			retrySpan.Start, retrySpan.Dur, emitSpan.Start, emitSpan.Dur)
	}
}

// TestTraceResumeSpan restarts a run from its checkpoint and checks the
// first window published after the restart carries a resume span covering
// the restore plus the fast-forward replay.
func TestTraceResumeSpan(t *testing.T) {
	store, err := checkpoint.NewStore(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	records := data.WebViewLike(3).Generate(900)
	cfg := telemetryTestConfig(2, nil)
	cfg.Checkpoints = store
	cfg.CheckpointEvery = 1

	// First run: stop (via a fatal emit error) after 3 windows.
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	published := 0
	_, _ = p.RunContext(context.Background(), SliceSource(records), func(w Window) error {
		published++
		if published == 3 {
			return fmt.Errorf("synthetic crash")
		}
		return nil
	})

	snap, _, err := store.Latest()
	if err != nil || snap == nil {
		t.Fatalf("no checkpoint to resume from: %v", err)
	}
	tr := trace.New(trace.Options{Windows: 32})
	cfg.Trace = tr
	cfg.Resume = snap
	p, err = New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.RunContext(context.Background(), SliceSource(records), func(Window) error { return nil }); err != nil {
		t.Fatal(err)
	}
	recs := tr.Snapshot()
	if len(recs) == 0 {
		t.Fatal("resumed run committed no trace windows")
	}
	if got := spanNames(recs[0])["resume"]; got != 1 {
		t.Errorf("first resumed window has %d resume spans, want 1 (spans: %v)", got, spanNames(recs[0]))
	}
	for _, rec := range recs[1:] {
		if got := spanNames(rec)["resume"]; got != 0 {
			t.Errorf("window %d after the first carries a resume span", rec.Window)
		}
	}
}

// TestTraceFailedWindowCommitted: a window whose emission exhausts the
// retry budget still lands in the flight recorder, so the abort-path trace
// dump shows the failure.
func TestTraceFailedWindowCommitted(t *testing.T) {
	tr := trace.New(trace.Options{Windows: 8})
	cfg := telemetryTestConfig(1, nil)
	cfg.Trace = tr
	cfg.EmitRetries = 1
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	records := data.WebViewLike(3).Generate(400)
	err = p.Run(records, func(w Window) error {
		return Transient(fmt.Errorf("sink down"))
	})
	if err == nil {
		t.Fatal("run succeeded despite a permanently failing sink")
	}
	recs := tr.Snapshot()
	if len(recs) != 1 {
		t.Fatalf("flight recorder holds %d windows, want the 1 failed window", len(recs))
	}
	if got := spanNames(recs[0])["retry"]; got != 2 { // initial attempt + 1 retry, both failed
		t.Errorf("failed window has %d retry spans, want 2", got)
	}
}

// TestTracingABIdentity is the tracing half of the observation-only gate:
// at workers 1, 2 and 8, a traced run publishes output byte-identical to an
// untraced run. CI executes this race-enabled alongside the telemetry half.
func TestTracingABIdentity(t *testing.T) {
	records := data.WebViewLike(3).Generate(900)
	for _, workers := range []int{1, 2, 8} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			off := renderRun(t, telemetryTestConfig(workers, nil), records)
			cfg := telemetryTestConfig(workers, nil)
			cfg.Trace = trace.New(trace.Options{})
			on := renderRun(t, cfg, records)
			if off != on {
				t.Errorf("published output differs with tracing enabled (workers=%d):\n--- off ---\n%s--- on ---\n%s",
					workers, off, on)
			}
			if got := len(cfg.Trace.Snapshot()); got != 7 {
				t.Errorf("traced run committed %d windows, want 7", got)
			}
		})
	}
}

// TestTraceSourceSpanCoversFaults: retried source reads and skipped bad
// records count into the window's source span rather than vanishing.
func TestTraceSourceSpanCoversFaults(t *testing.T) {
	tr := trace.New(trace.Options{Windows: 8})
	cfg := telemetryTestConfig(1, nil)
	cfg.Trace = tr
	cfg.MaxBadRecords = -1
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	records := data.WebViewLike(3).Generate(400)
	i := 0
	badAt := map[int]bool{50: true}
	src := funcSource(func() (itemset.Itemset, error) {
		if badAt[i] {
			delete(badAt, i)
			return itemset.Itemset{}, &data.ParseError{Line: i, Err: fmt.Errorf("synthetic")}
		}
		if i >= len(records) {
			return itemset.Itemset{}, io.EOF
		}
		rec := records[i]
		i++
		time.Sleep(time.Microsecond)
		return rec, nil
	})
	if _, err := p.RunContext(context.Background(), src, func(Window) error { return nil }); err != nil {
		t.Fatal(err)
	}
	recs := tr.Snapshot()
	if len(recs) != 2 {
		t.Fatalf("flight recorder holds %d windows, want 2", len(recs))
	}
	if d := recs[0].Spans[0].Dur; recs[0].Spans[0].Name != "source" || d <= 0 {
		t.Errorf("first span is %q with duration %v, want a positive source span", recs[0].Spans[0].Name, d)
	}
	// The bad record was skipped during the first window's ingest, so the
	// root carries the bad-record attribute.
	var bad int64
	for _, a := range recs[0].Attrs {
		if a.Key == "bad_records" {
			bad = a.Val
		}
	}
	if bad != 1 {
		t.Errorf("first window bad_records attr = %d, want 1", bad)
	}
}
