package pipeline_test

// Kill-and-resume acceptance suite for delta checkpointing. The bar is the
// same as resume_test.go's — a killed run resumed from the store publishes
// the remaining windows byte-identically — but here the store holds MIXED
// chains: anchor full snapshots every CheckpointFullEvery generations with
// CRC-framed delta chains between them, and recovery reconstructs the
// resume snapshot by replaying the newest full's chain.

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/faultinject"
	"repro/internal/pipeline"
)

// resumeFullEvery keeps three delta frames between anchors; with
// CheckpointEvery=1 over the 61-window fixture the sweep crosses ~15 full
// and ~45 delta generations, so every kill position lands on both kinds.
const resumeFullEvery = 4

func deltaConfig(workers int, store *checkpoint.Store, ckptEvery int) pipeline.Config {
	cfg := resumeConfig(workers, store, ckptEvery)
	cfg.CheckpointFullEvery = resumeFullEvery
	return cfg
}

// TestDeltaCheckpointingIsTransparent: switching from all-full generations
// to delta chains changes no published byte — and actually writes chains.
func TestDeltaCheckpointingIsTransparent(t *testing.T) {
	records := testRecords(t, resumeRecords)
	for _, workers := range []int{1, 4} {
		store, err := checkpoint.NewStore(t.TempDir(), 0)
		if err != nil {
			t.Fatal(err)
		}
		got := runKilled(t, deltaConfig(workers, store, 1), records, resumeWindows)
		sameTail(t, fmt.Sprintf("delta-checkpointed vs plain, workers=%d", workers),
			got, reference(t, workers, records))
		segs, err := filepath.Glob(filepath.Join(store.Dir(), "delta-*.bfdl"))
		if err != nil || len(segs) == 0 {
			t.Fatalf("no delta segments written: %v, %v", segs, err)
		}
	}
}

// TestKillAndResumeMixedChainsByteIdentical is the delta acceptance sweep:
// kill after EVERY checkpointed window boundary — so the newest durable
// generation alternates between anchor fulls and chain tips — and resume;
// the tail must be byte-identical to the uninterrupted reference at the
// serial tier and two chunked worker counts.
func TestKillAndResumeMixedChainsByteIdentical(t *testing.T) {
	records := testRecords(t, resumeRecords)
	step := 1
	if testing.Short() {
		step = 7
	}
	for _, workers := range []int{1, 2, 8} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			ref := reference(t, workers, records)
			chainResumes := 0
			for kill := 1; kill <= resumeWindows; kill += step {
				store, err := checkpoint.NewStore(t.TempDir(), 0)
				if err != nil {
					t.Fatal(err)
				}
				head := runKilled(t, deltaConfig(workers, store, 1), records, kill)
				sameTail(t, fmt.Sprintf("kill=%d head", kill), head, ref[:kill])
				if _, det, err := store.LatestDetail(); err != nil {
					t.Fatal(err)
				} else if det.Frames > 0 {
					chainResumes++
				}
				tail := resumeRun(t, deltaConfig(workers, store, 1), store, records)
				sameTail(t, fmt.Sprintf("kill=%d resumed tail", kill), tail, ref[kill:])
			}
			if chainResumes == 0 {
				t.Fatal("no kill position resumed through a delta chain — the sweep tested nothing new")
			}
		})
	}
}

// TestCrashDuringDeltaChainThenResume: the process dies INSIDE the write
// protocol of a mixed chain — before a delta append's write, mid-append
// (torn frame), or before an anchor full's rename. In every case the
// previous durable generation carries the resume, byte-identically.
func TestCrashDuringDeltaChainThenResume(t *testing.T) {
	records := testRecords(t, resumeRecords)
	ref := reference(t, 2, records)
	// With CheckpointEvery=1 and CheckpointFullEvery=4, generations
	// 1, 5, 9, ... are anchor fulls and the rest delta frames.
	cases := []struct {
		point     string
		dieOnSave int
	}{
		{checkpoint.CrashBeforeWrite, 7},  // a delta append: chain full@5 + delta@6 survives
		{checkpoint.CrashTornDelta, 6},    // first frame of full@5's chain torn: bare anchor survives
		{checkpoint.CrashTornDelta, 8},    // third frame torn: two valid frames survive
		{checkpoint.CrashBeforeRename, 9}, // an anchor full: full@5's chain (3 frames) survives
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("%s@%d", tc.point, tc.dieOnSave), func(t *testing.T) {
			store, err := checkpoint.NewStore(t.TempDir(), 0)
			if err != nil {
				t.Fatal(err)
			}
			store.Logf = func(string, ...any) {}
			plan := &faultinject.CrashPlan{Point: tc.point, OnSave: tc.dieOnSave}
			store.CrashHook = plan.Hook()
			p, err := pipeline.New(deltaConfig(2, store, 1))
			if err != nil {
				t.Fatal(err)
			}
			delivered := 0
			_, err = p.RunContext(context.Background(), pipeline.SliceSource(records),
				func(pipeline.Window) error { delivered++; return nil })
			if !errors.Is(err, checkpoint.ErrInjectedCrash) {
				t.Fatalf("run: %v, want the injected crash", err)
			}
			if plan.Fired() != 1 || delivered != tc.dieOnSave {
				t.Fatalf("crash fired %d times after %d deliveries, want 1 after %d",
					plan.Fired(), delivered, tc.dieOnSave)
			}
			// "Restart": a fresh store over the same directory, no crash plan.
			store, err = checkpoint.NewStore(store.Dir(), 0)
			if err != nil {
				t.Fatal(err)
			}
			store.Logf = func(string, ...any) {}
			snap, det, err := store.LatestDetail()
			if err != nil || snap == nil {
				t.Fatalf("no recoverable generation: %v", err)
			}
			// The failed save never became durable: recovery lands exactly
			// one generation back.
			if wantFrames := (tc.dieOnSave - 1 - 1) % resumeFullEvery; det.Frames != wantFrames {
				t.Fatalf("recovered %d chain frames, want %d", det.Frames, wantFrames)
			}
			tail := resumeRun(t, deltaConfig(2, store, 1), store, records)
			sameTail(t, tc.point, tail, ref[tc.dieOnSave-1:])
		})
	}
}

// TestDeltaResumeAcrossChunkedWorkerCounts: a chain written by a workers=2
// run resumes byte-identically under workers=8 — the snapshot reconstructed
// from anchor + frames is worker-count-portable like a full snapshot.
func TestDeltaResumeAcrossChunkedWorkerCounts(t *testing.T) {
	records := testRecords(t, resumeRecords)
	ref := reference(t, 2, records)
	const kill = 20 // generation 20 is a chain tip (3 frames past full@17)
	store, err := checkpoint.NewStore(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	runKilled(t, deltaConfig(2, store, 1), records, kill)
	if _, det, err := store.LatestDetail(); err != nil || det.Frames == 0 {
		t.Fatalf("kill point did not land on a chain tip: %+v, %v", det, err)
	}
	tail := resumeRun(t, deltaConfig(8, store, 1), store, records)
	sameTail(t, "workers 2 -> 8 through a chain", tail, ref[kill:])
}

// TestSparseDeltaCheckpointRepublishesOverlapIdentically: CheckpointEvery=3
// with chains on top — a kill between generations resumes from an earlier
// cut and the re-published overlap must be byte-identical (§VI through a
// reconstructed snapshot).
func TestSparseDeltaCheckpointRepublishesOverlapIdentically(t *testing.T) {
	records := testRecords(t, resumeRecords)
	for _, workers := range []int{1, 4} {
		ref := reference(t, workers, records)
		for _, kill := range []int{7, 11, 32} {
			store, err := checkpoint.NewStore(t.TempDir(), 0)
			if err != nil {
				t.Fatal(err)
			}
			runKilled(t, deltaConfig(workers, store, 3), records, kill)
			lastCkpt := (kill / 3) * 3
			tail := resumeRun(t, deltaConfig(workers, store, 3), store, records)
			label := fmt.Sprintf("workers=%d kill=%d (generation at %d)", workers, kill, lastCkpt)
			sameTail(t, label, tail, ref[lastCkpt:])
		}
	}
}
