package pipeline_test

import (
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/itemset"
	"repro/internal/pipeline"
)

func benchRun(b *testing.B, workers int, records []itemset.Itemset) {
	b.Helper()
	cfg := testConfig(workers)
	p, err := pipeline.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		windows := 0
		if err := p.Run(records, func(pipeline.Window) error {
			windows++
			return nil
		}); err != nil {
			b.Fatal(err)
		}
		if windows == 0 {
			b.Fatal("no windows published")
		}
	}
}

// BenchmarkRunSerial measures the Workers=1 reference path end to end
// (incremental mining + sequential perturbation, all inline).
func BenchmarkRunSerial(b *testing.B) {
	records := testRecords(b, 1600)
	benchRun(b, 1, records)
}

// BenchmarkRunStaged2 measures the staged pipeline with 2 workers.
func BenchmarkRunStaged2(b *testing.B) {
	records := testRecords(b, 1600)
	benchRun(b, 2, records)
}

// BenchmarkRunStaged8 measures the staged pipeline with 8 workers.
func BenchmarkRunStaged8(b *testing.B) {
	records := testRecords(b, 1600)
	benchRun(b, 8, records)
}

func benchCheckpointed(b *testing.B, fullEvery int) {
	b.Helper()
	records := testRecords(b, 1600)
	store, err := checkpoint.NewStore(b.TempDir(), 0)
	if err != nil {
		b.Fatal(err)
	}
	cfg := testConfig(2)
	cfg.CheckpointDir = store.Dir()
	cfg.CheckpointEvery = 1
	cfg.CheckpointFullEvery = fullEvery
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := pipeline.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := p.Run(records, func(pipeline.Window) error { return nil }); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunCheckpointed measures the durability tax at its steepest:
// a full snapshot fsynced after every published window.
func BenchmarkRunCheckpointed(b *testing.B) { benchCheckpointed(b, 1) }

// BenchmarkRunDeltaCheckpointed measures the same interval with delta
// chains: one anchor full then CRC-framed delta appends (DESIGN.md §2.15).
func BenchmarkRunDeltaCheckpointed(b *testing.B) { benchCheckpointed(b, 16) }
