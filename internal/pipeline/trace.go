package pipeline

// Flight-recorder span wiring for the mine stage. The perturb and emit
// stages record their spans inline (pipeline.go); the mine stage's span set
// is assembled here because one publication point closes three spans at
// once — the root window, the accumulated source time, and the ingest+mine
// interval — with the attributes the trace viewer keys on.

import (
	"time"

	"repro/internal/trace"
)

// finishMineSpans closes the mine stage's spans for one publication point
// and returns the window's trace, ready to ride the channel to the perturb
// stage. A nil tw (tracing off) returns nil. pos is the stream position —
// the window id and the trace track — and itemsets the mined snapshot size.
// The source span shares the mine span's start: ingest and mining interleave
// record by record, so the source span represents the slice of the
// ingest+mine interval spent inside the RecordSource.
func (r *runState) finishMineSpans(tw *trace.Window, windowStart time.Time,
	mineDur, srcDur time.Duration, records int64, pos, itemsets int) *trace.Window {
	if tw == nil {
		return nil
	}
	tw.SetID(uint64(pos))
	tw.Attr(trace.AttrWindow, int64(pos))
	tw.Attr(trace.AttrRecords, records)
	if bad := r.badCount(); bad > 0 {
		tw.Attr(trace.AttrBadRecords, int64(bad))
	}
	tw.Add(trace.KindSource, windowStart, srcDur).Attr(trace.AttrRecords, records)
	tw.Add(trace.KindMine, windowStart, mineDur).Attr(trace.AttrItemsets, int64(itemsets))
	return tw
}
