package pipeline

// This file is the stage-supervision layer of the streaming pipeline:
// first-error-wins failure recording, panic capture around user-supplied
// callbacks, bounded exponential-backoff retries for transient faults, and
// the per-window watchdog. The runState is the supervision tree of one
// RunContext call; the stage loops themselves live in pipeline.go.

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/itemset"
	"repro/internal/mining"
	"repro/internal/trace"
)

// transientError marks an error as retryable.
type transientError struct{ err error }

func (e *transientError) Error() string   { return "transient: " + e.err.Error() }
func (e *transientError) Unwrap() error   { return e.err }
func (e *transientError) Transient() bool { return true }

// Transient marks err as a transient fault: the supervised pipeline retries
// the failed operation (an emit or a source read) with exponential backoff
// instead of aborting the run. A nil err stays nil.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err: err}
}

// IsTransient reports whether err is marked retryable — wrapped by
// Transient, or carrying its own `Transient() bool` method (as the
// faultinject package's errors do).
func IsTransient(err error) bool {
	var t interface{ Transient() bool }
	return errors.As(err, &t) && t.Transient()
}

// panicError is a recovered panic from a user-supplied callback. It is
// transient: a sink that panicked on one delivery may well accept the
// idempotent re-delivery, and the retry budget bounds the optimism.
type panicError struct {
	val   any
	stack []byte
}

func (e *panicError) Error() string   { return fmt.Sprintf("recovered panic: %v", e.val) }
func (e *panicError) Transient() bool { return true }

// safeCall runs f, converting a panic into a *panicError.
func safeCall(f func() error) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &panicError{val: v, stack: debug.Stack()}
		}
	}()
	return f()
}

// maxQuarantine bounds the bad records kept in the Report; beyond it only
// the count grows.
const maxQuarantine = 16

// Report summarizes one RunContext call for the operator: how much of the
// stream was consumed, what was published, and what the supervision layer
// absorbed along the way. It is valid (best-effort) even when the run
// returns an error, so an interrupted run can print a partial summary.
type Report struct {
	// Records is the number of well-formed records consumed.
	Records int
	// BadRecords is the number of malformed records skipped.
	BadRecords int
	// Published is the number of windows delivered to the emit callback.
	Published int
	// Retries is the number of retry attempts performed after transient
	// emit/source failures.
	Retries int
	// PanicsRecovered is the number of panics converted to errors.
	PanicsRecovered int
	// Checkpoints is the number of crash-safe snapshots written.
	Checkpoints int
	// Quarantined holds the first few skipped bad records, with line
	// numbers, for the audit trail.
	Quarantined []BadRecord
}

// runState supervises one RunContext call. All stage goroutines share it;
// every mutation is guarded by mu, and the derived context carries the
// cancel signal to every blocking channel operation.
type runState struct {
	cfg    Config
	ctx    context.Context
	cancel context.CancelFunc

	// Durability plumbing (set once in RunContext, before the stages
	// start): the checkpoint store, the snapshot interval in published
	// windows, and the snapshot this run resumes from (nil for a fresh
	// run).
	ckpts     *checkpoint.Store
	ckptEvery int
	resume    *checkpoint.Snapshot

	// Delta-checkpoint scheduling (mine stage only, single-goroutine):
	// fullEvery is the compaction interval (1 = every generation full),
	// ckptSeq counts generations this run has scheduled, lastCkptRecords is
	// the previous generation's cut (the next delta's parent), and appended
	// buffers the records pushed into the window since then when
	// trackAppend is on.
	fullEvery       int
	ckptSeq         uint64
	lastCkptRecords uint64
	trackAppend     bool
	appended        []itemset.Itemset

	// Observability: the registered instrument set (nil without a
	// Config.Metrics registry; every recording method is nil-safe), the
	// flight recorder receiving per-window spans (nil disables tracing;
	// every trace method is nil-safe too), and the moment the resume
	// restore began (drives the resume-duration gauge).
	metrics     *pipeMetrics
	tracer      *trace.Tracer
	resumeStart time.Time

	// results is the window-buffer freelist between the perturb and mine
	// stages: once a window's sanitized output is assembled, its
	// *mining.Result — no longer referenced by anything downstream — flows
	// back so the miner snapshots the next window into the same storage.
	// Both ends are non-blocking sends/receives: an empty pool means mine
	// allocates fresh, a full pool drops the buffer. Closed-only runs skip
	// it (the closure filter derives fresh results regardless).
	results chan *mining.Result

	mu     sync.Mutex
	err    error
	report Report
}

func newRunState(ctx context.Context, cfg Config) *runState {
	rctx, cancel := context.WithCancel(ctx)
	buffer := cfg.Buffer
	if buffer == 0 {
		buffer = 4
	}
	return &runState{cfg: cfg, ctx: rctx, cancel: cancel,
		metrics: newPipeMetrics(cfg.Metrics), tracer: cfg.Trace,
		// Capacity covers every in-flight window (both channels plus the
		// stages' hands) so steady state recycles rather than drops.
		results: make(chan *mining.Result, 2*buffer+4)}
}

// fail records err as the run's failure — the first caller wins, every
// later error is dropped — and cancels the run so all stages unwind.
func (r *runState) fail(err error) {
	if err == nil {
		return
	}
	r.mu.Lock()
	if r.err == nil {
		r.err = err
	}
	r.mu.Unlock()
	r.cancel()
}

// firstErr returns the recorded failure, or the context error when the run
// was canceled from outside before any stage failed.
func (r *runState) firstErr() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.err != nil {
		return r.err
	}
	return r.ctx.Err()
}

// snapshot copies the report under the lock.
func (r *runState) snapshot() *Report {
	r.mu.Lock()
	defer r.mu.Unlock()
	rep := r.report
	rep.Quarantined = append([]BadRecord(nil), r.report.Quarantined...)
	return &rep
}

// The add* methods keep the Report and the telemetry counters in lockstep:
// both are written at the same call sites, so the CLI summary (sourced from
// telemetry) and the Report can never disagree.

func (r *runState) addRecord() {
	r.mu.Lock()
	r.report.Records++
	r.mu.Unlock()
	r.metrics.addRecord()
}

func (r *runState) addPublished() { r.mu.Lock(); r.report.Published++; r.mu.Unlock() }

func (r *runState) addCheckpoint() { r.mu.Lock(); r.report.Checkpoints++; r.mu.Unlock() }

// addRetry counts one retry attempt; op is "source" or "emit" and selects
// the labeled telemetry series (the Report pools both).
func (r *runState) addRetry(op string) {
	r.mu.Lock()
	r.report.Retries++
	r.mu.Unlock()
	r.metrics.addRetry(op)
}

func (r *runState) addPanic() {
	r.mu.Lock()
	r.report.PanicsRecovered++
	r.mu.Unlock()
	r.metrics.addPanic()
}

// recordBad counts one malformed record against the budget and quarantines
// it. It reports false when the budget is exhausted (MaxBadRecords == 0
// fails on the first bad record; < 0 is unlimited).
func (r *runState) recordBad(b BadRecord) (ok bool) {
	r.metrics.addBadRecord()
	r.mu.Lock()
	defer r.mu.Unlock()
	r.report.BadRecords++
	if len(r.report.Quarantined) < maxQuarantine {
		r.report.Quarantined = append(r.report.Quarantined, b)
	}
	return r.cfg.MaxBadRecords < 0 || r.report.BadRecords <= r.cfg.MaxBadRecords
}

func (r *runState) badCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.report.BadRecords
}

// recoverStage is the top-level safety net of a stage goroutine: a panic
// escaping the stage loop (i.e. from pipeline internals, not from a
// user callback already wrapped by safeCall) is converted into a fatal run
// error instead of crashing the process.
func (r *runState) recoverStage(stage string) {
	if v := recover(); v != nil {
		r.addPanic()
		r.fail(fmt.Errorf("pipeline: %s stage panicked: %v\n%s", stage, v, debug.Stack()))
	}
}

// Retry/backoff policy defaults (see Config.EmitBackoff).
const (
	defaultBackoff = 5 * time.Millisecond
	maxBackoff     = time.Second
)

// withRetries runs op (already panic-safe via safeCall) and retries
// transient failures — including recovered panics — with exponential
// backoff, up to cfg.EmitRetries retry attempts. Backoff sleeps abort
// early when the run is canceled. Non-transient errors and budget
// exhaustion return the last error. When tw is non-nil, every failed
// attempt is recorded as a retry span on the window's trace (nested under
// the emit span by time containment), numbered by its attempt.
func (r *runState) withRetries(what string, tw *trace.Window, op func() error) error {
	backoff := r.cfg.EmitBackoff
	if backoff <= 0 {
		backoff = defaultBackoff
	}
	for attempt := 0; ; attempt++ {
		var a0 time.Time
		if tw != nil {
			a0 = time.Now()
		}
		err := safeCall(op)
		if err == nil {
			return nil
		}
		if tw != nil {
			tw.Add(trace.KindRetry, a0, time.Since(a0)).Attr(trace.AttrAttempt, int64(attempt+1))
		}
		var pe *panicError
		if errors.As(err, &pe) {
			r.addPanic()
		}
		if !IsTransient(err) {
			return fmt.Errorf("pipeline: %s: %w", what, err)
		}
		if attempt >= r.cfg.EmitRetries {
			return fmt.Errorf("pipeline: %s failed after %d retries: %w", what, attempt, err)
		}
		r.addRetry("emit")
		select {
		case <-time.After(backoff):
		case <-r.ctx.Done():
			return r.ctx.Err()
		}
		if backoff *= 2; backoff > maxBackoff {
			backoff = maxBackoff
		}
	}
}

// watchdog bounds one window's processing in a stage: if f has not returned
// within cfg.WindowTimeout, the run fails (and is canceled) with a timeout
// error naming the stage, while f itself is left to unwind. A zero timeout
// disables the watchdog. Note the budget covers the whole per-window
// handling of the stage — for the emit stage that includes retry backoff,
// so WindowTimeout must exceed the worst-case retry schedule.
func (r *runState) watchdog(stage string, position int, f func() error) error {
	if r.cfg.WindowTimeout <= 0 {
		return f()
	}
	tm := time.AfterFunc(r.cfg.WindowTimeout, func() {
		r.metrics.addWatchdogTrip()
		r.fail(fmt.Errorf("pipeline: %s of window at position %d exceeded the %v watchdog",
			stage, position, r.cfg.WindowTimeout))
	})
	defer tm.Stop()
	return f()
}

// sendOrDone delivers v on ch unless the run is canceled first.
func sendOrDone[T any](r *runState, ch chan<- T, v T) bool {
	select {
	case ch <- v:
		return true
	case <-r.ctx.Done():
		return false
	}
}
