package pipeline_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/pipeline"
)

// Example runs a three-window publication over a synthetic click stream:
// a sliding window of 300 records, publishing every 100 slides, with the
// staged pipeline and chunked perturbation on two workers. Fixed seeds make
// the run fully deterministic — any worker count >= 2 prints the same thing.
func Example() {
	p, err := pipeline.New(pipeline.Config{
		WindowSize:   300,
		Params:       core.Params{Epsilon: 0.1, Delta: 0.4, MinSupport: 10, VulnSupport: 5},
		Scheme:       core.Hybrid{Lambda: 0.4},
		Seed:         1,
		PublishEvery: 100,
		Workers:      2,
	})
	if err != nil {
		panic(err)
	}
	records := data.WebViewLike(1).Generate(500)
	err = p.Run(records, func(w pipeline.Window) error {
		top := w.Output.Items[0]
		fmt.Printf("window ending at record %d: %d itemsets, top %v with sanitized support %d\n",
			w.Position, w.Output.Len(), top.Set, top.Support)
		return nil
	})
	if err != nil {
		panic(err)
	}
	// Output:
	// window ending at record 300: 31 itemsets, top {i307} with sanitized support 118
	// window ending at record 400: 34 itemsets, top {i307} with sanitized support 113
	// window ending at record 500: 34 itemsets, top {i307} with sanitized support 116
}
