package pipeline_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/pipeline"
	"repro/internal/telemetry"
)

// Example runs a three-window publication over a synthetic click stream:
// a sliding window of 300 records, publishing every 100 slides, with the
// staged pipeline and chunked perturbation on two workers. Fixed seeds make
// the run fully deterministic — any worker count >= 2 prints the same thing.
func Example() {
	p, err := pipeline.New(pipeline.Config{
		WindowSize:   300,
		Params:       core.Params{Epsilon: 0.1, Delta: 0.4, MinSupport: 10, VulnSupport: 5},
		Scheme:       core.Hybrid{Lambda: 0.4},
		Seed:         1,
		PublishEvery: 100,
		Workers:      2,
	})
	if err != nil {
		panic(err)
	}
	records := data.WebViewLike(1).Generate(500)
	err = p.Run(records, func(w pipeline.Window) error {
		top := w.Output.Items[0]
		fmt.Printf("window ending at record %d: %d itemsets, top %v with sanitized support %d\n",
			w.Position, w.Output.Len(), top.Set, top.Support)
		return nil
	})
	if err != nil {
		panic(err)
	}
	// Output:
	// window ending at record 300: 31 itemsets, top {i307} with sanitized support 118
	// window ending at record 400: 34 itemsets, top {i307} with sanitized support 113
	// window ending at record 500: 34 itemsets, top {i307} with sanitized support 116
}

// Example_telemetry attaches a telemetry.Registry to the same run. The
// registry is observation-only — the published windows are byte-identical
// with or without it — and afterwards holds the run's throughput counters,
// per-stage latency histograms, and the rolling privacy-posture gauges that
// cmd/butterfly serves at /metrics.
func Example_telemetry() {
	reg := telemetry.NewRegistry()
	params := core.Params{Epsilon: 0.1, Delta: 0.4, MinSupport: 10, VulnSupport: 5}
	p, err := pipeline.New(pipeline.Config{
		WindowSize:   300,
		Params:       params,
		Scheme:       core.Hybrid{Lambda: 0.4},
		Seed:         1,
		PublishEvery: 100,
		Workers:      2,
		Metrics:      reg,
	})
	if err != nil {
		panic(err)
	}
	records := data.WebViewLike(1).Generate(500)
	if err := p.Run(records, func(pipeline.Window) error { return nil }); err != nil {
		panic(err)
	}

	fmt.Printf("records consumed: %d\n", reg.CounterValue(pipeline.MetricRecords))
	fmt.Printf("windows published: %d\n", reg.CounterValue(pipeline.MetricWindows))
	// Durations vary run to run, but the histogram COUNTS are exact: every
	// stage observed every window.
	for _, f := range reg.Snapshot() {
		if f.Name == pipeline.MetricStageSeconds {
			for _, s := range f.Series {
				fmt.Printf("%s%s observations: %d\n", f.Name, s.Labels, s.Count)
			}
		}
	}
	// The rolling avg_prig proxy must sit on or above the privacy floor δ.
	for _, f := range reg.Snapshot() {
		if f.Name == core.MetricAvgPrig {
			fmt.Printf("avg_prig >= delta: %v\n", f.Series[0].Value >= params.Delta)
		}
	}
	// Output:
	// records consumed: 500
	// windows published: 3
	// butterfly_stage_seconds{stage="emit"} observations: 3
	// butterfly_stage_seconds{stage="mine"} observations: 3
	// butterfly_stage_seconds{stage="perturb"} observations: 3
	// avg_prig >= delta: true
}
