package pipeline_test

import (
	"bytes"
	"context"
	"errors"
	"io"
	"strings"
	"testing"

	"repro/internal/data"
	"repro/internal/itemset"
	"repro/internal/pipeline"
)

func drainSource(t *testing.T, src pipeline.RecordSource) []itemset.Itemset {
	t.Helper()
	var out []itemset.Itemset
	for {
		rec, err := src.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, rec)
	}
}

func TestSliceSourceDeliversAllThenEOF(t *testing.T) {
	records := testRecords(t, 10)
	src := pipeline.SliceSource(records)
	got := drainSource(t, src)
	if len(got) != 10 {
		t.Fatalf("delivered %d records, want 10", len(got))
	}
	for i := range got {
		if !got[i].Equal(records[i]) {
			t.Fatalf("record %d differs", i)
		}
	}
	if _, err := src.Next(); err != io.EOF {
		t.Fatalf("after exhaustion: %v, want io.EOF", err)
	}
}

func TestGeneratorSourceMatchesGenerate(t *testing.T) {
	want := data.WebViewLike(5).Generate(50)
	got := drainSource(t, pipeline.GeneratorSource(data.WebViewLike(5), 50))
	if len(got) != len(want) {
		t.Fatalf("delivered %d records, want %d", len(got), len(want))
	}
	for i := range got {
		if !got[i].Equal(want[i]) {
			t.Fatalf("record %d differs from materialized generation", i)
		}
	}
}

func TestReaderSourceStreamsAndSkipsNothingOnCleanInput(t *testing.T) {
	in := "a b\nc\na c\n"
	vocab := data.NewVocabulary()
	got := drainSource(t, pipeline.ReaderSource(strings.NewReader(in), vocab))
	if len(got) != 3 || vocab.Len() != 3 {
		t.Fatalf("records=%d vocab=%d, want 3/3", len(got), vocab.Len())
	}
}

func TestReaderSourceSurfacesParseErrors(t *testing.T) {
	src := pipeline.ReaderSource(strings.NewReader("a b\nx\x00 c\nd\n"), nil)
	if _, err := src.Next(); err != nil {
		t.Fatal(err)
	}
	var pe *data.ParseError
	if _, err := src.Next(); !errors.As(err, &pe) || pe.Line != 2 {
		t.Fatalf("second record: %v, want ParseError at line 2", err)
	}
	if _, err := src.Next(); err != nil {
		t.Fatalf("reader did not resynchronize after bad line: %v", err)
	}
}

func TestDrainSourceStopsEarly(t *testing.T) {
	src := pipeline.NewDrainSource(pipeline.SliceSource(testRecords(t, 100)))
	for i := 0; i < 5; i++ {
		if _, err := src.Next(); err != nil {
			t.Fatal(err)
		}
	}
	if src.Stopped() {
		t.Fatal("Stopped before Stop")
	}
	src.Stop()
	if _, err := src.Next(); err != io.EOF {
		t.Fatalf("after Stop: %v, want io.EOF", err)
	}
	if !src.Stopped() {
		t.Fatal("Stopped not reported")
	}
}

// streamText renders records in the one-transaction-per-line format with
// numeric tokens, the fixture for reader-based runs.
func streamText(t *testing.T, records []itemset.Itemset) string {
	t.Helper()
	var buf bytes.Buffer
	if err := data.WriteTransactions(&buf, records, nil); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// collectCtx runs the supervised path over src and returns the windows and
// report.
func collectCtx(t *testing.T, cfg pipeline.Config, src pipeline.RecordSource) ([]pipeline.Window, *pipeline.Report) {
	t.Helper()
	p, err := pipeline.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var out []pipeline.Window
	rep, err := p.RunContext(context.Background(), src, func(w pipeline.Window) error {
		out = append(out, w)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out, rep
}

// TestReaderSourceRunMatchesSliceRun: streaming the input file through
// ReaderSource must publish exactly what a materialized SliceSource run
// over the parsed records publishes, at both worker tiers.
func TestReaderSourceRunMatchesSliceRun(t *testing.T) {
	text := streamText(t, testRecords(t, 700))
	records, _, err := data.ReadTransactions(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		cfg := testConfig(workers)
		ref, _ := collectCtx(t, cfg, pipeline.SliceSource(records))
		got, rep := collectCtx(t, cfg, pipeline.ReaderSource(strings.NewReader(text), nil))
		sameWindows(t, "reader vs slice", ref, got)
		if rep.Records != len(records) || rep.BadRecords != 0 {
			t.Fatalf("report = %+v, want %d records and no bad ones", rep, len(records))
		}
	}
}

// corrupt injects malformed lines (NUL tokens) into a transaction text at
// every stride-th line, returning the corrupted text and the number of
// injected lines.
func corrupt(text string, stride int) (string, int) {
	lines := strings.Split(strings.TrimRight(text, "\n"), "\n")
	var out []string
	injected := 0
	for i, l := range lines {
		out = append(out, l)
		if i%stride == stride-1 {
			out = append(out, "corrupt\x00ed line")
			injected++
		}
	}
	return strings.Join(out, "\n") + "\n", injected
}

// TestBadRecordBudgetSkipsAndPreservesOutput: under a sufficient budget,
// malformed lines are skipped, counted, quarantined with line numbers —
// and the published windows are byte-identical to a clean-input run.
func TestBadRecordBudgetSkipsAndPreservesOutput(t *testing.T) {
	text := streamText(t, testRecords(t, 700))
	dirty, injected := corrupt(text, 100)
	if injected == 0 {
		t.Fatal("fixture produced no bad lines")
	}
	for _, workers := range []int{1, 4} {
		cfg := testConfig(workers)
		ref, _ := collectCtx(t, cfg, pipeline.ReaderSource(strings.NewReader(text), nil))

		cfg.MaxBadRecords = injected
		got, rep := collectCtx(t, cfg, pipeline.ReaderSource(strings.NewReader(dirty), nil))
		sameWindows(t, "dirty vs clean input", ref, got)
		if rep.BadRecords != injected {
			t.Fatalf("BadRecords = %d, want %d", rep.BadRecords, injected)
		}
		// The first bad line is injected after the 100th clean line, so it
		// sits at line 101 of the dirty input.
		if len(rep.Quarantined) == 0 || rep.Quarantined[0].Line != 101 {
			t.Fatalf("quarantine = %+v, want first bad line at 101", rep.Quarantined)
		}
		if !errors.Is(rep.Quarantined[0].Err, data.ErrTokenNUL) {
			t.Fatalf("quarantined reason = %v", rep.Quarantined[0].Err)
		}
	}
}

// TestBadRecordBudgetExhaustionFailsRun: one bad record over budget fails
// the run with an error naming the budget; the default budget of zero
// fails fast on the first malformed line.
func TestBadRecordBudgetExhaustionFailsRun(t *testing.T) {
	text := streamText(t, testRecords(t, 700))
	dirty, injected := corrupt(text, 100)

	cfg := testConfig(4)
	cfg.MaxBadRecords = injected - 1
	p, err := pipeline.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := p.RunContext(context.Background(), pipeline.ReaderSource(strings.NewReader(dirty), nil),
		func(pipeline.Window) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "bad-record budget") {
		t.Fatalf("budget exhaustion: %v", err)
	}
	if rep.BadRecords != injected {
		t.Fatalf("report.BadRecords = %d, want %d (the one over budget is counted)", rep.BadRecords, injected)
	}

	cfg.MaxBadRecords = 0 // fail-fast default
	p, err = pipeline.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.RunContext(context.Background(), pipeline.ReaderSource(strings.NewReader(dirty), nil),
		func(pipeline.Window) error { return nil }); err == nil || !errors.Is(err, data.ErrTokenNUL) {
		t.Fatalf("fail-fast: %v, want the parse failure", err)
	}
}

// TestUnlimitedBadRecordBudget: MaxBadRecords < 0 skips without limit.
func TestUnlimitedBadRecordBudget(t *testing.T) {
	text := streamText(t, testRecords(t, 700))
	dirty, injected := corrupt(text, 10)
	cfg := testConfig(2)
	cfg.MaxBadRecords = -1
	_, rep := collectCtx(t, cfg, pipeline.ReaderSource(strings.NewReader(dirty), nil))
	if rep.BadRecords != injected {
		t.Fatalf("BadRecords = %d, want %d", rep.BadRecords, injected)
	}
	if len(rep.Quarantined) > 16 {
		t.Fatalf("quarantine unbounded: %d entries", len(rep.Quarantined))
	}
}

// TestFastForwardGeneratorSource pins position accounting on the synthetic
// source: consume k records, then re-open an identically-seeded generator,
// FastForward past k, and the remaining sequence must be identical — the
// property checkpoint resume relies on.
func TestFastForwardGeneratorSource(t *testing.T) {
	const n, k = 120, 47
	first := pipeline.GeneratorSource(data.WebViewLike(5), n)
	var want []itemset.Itemset
	for i := 0; i < k; i++ {
		if _, err := first.Next(); err != nil {
			t.Fatal(err)
		}
	}
	want = drainSource(t, first)

	reopened := pipeline.GeneratorSource(data.WebViewLike(5), n)
	skippedBad, err := pipeline.FastForward(reopened, k)
	if err != nil || skippedBad != 0 {
		t.Fatalf("FastForward = (%d, %v), want (0, nil)", skippedBad, err)
	}
	got := drainSource(t, reopened)
	if len(got) != len(want) || len(got) != n-k {
		t.Fatalf("remaining records = %d, want %d", len(got), n-k)
	}
	for i := range got {
		if !got[i].Equal(want[i]) {
			t.Fatalf("record %d after fast-forward differs", i)
		}
	}
}

// drainWellFormed reads src to EOF, discarding malformed records the way
// the supervised pipeline does under an unlimited bad-record budget.
func drainWellFormed(t *testing.T, src pipeline.RecordSource) []itemset.Itemset {
	t.Helper()
	var out []itemset.Itemset
	for {
		rec, err := src.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			var pe *data.ParseError
			if errors.As(err, &pe) {
				continue
			}
			t.Fatal(err)
		}
		out = append(out, rec)
	}
}

// TestFastForwardReaderSource: the same property for file-backed input,
// including malformed lines inside the skipped prefix — they are discarded
// and counted, and the re-opened reader re-interns the same vocabulary.
func TestFastForwardReaderSource(t *testing.T) {
	text := streamText(t, testRecords(t, 60))
	dirty, injected := corrupt(text, 10)
	const k = 25 // well-formed records to skip; bad lines sit in this prefix

	first := pipeline.ReaderSource(strings.NewReader(dirty), data.NewVocabulary())
	consumed := 0
	for consumed < k {
		if _, err := first.Next(); err != nil {
			var pe *data.ParseError
			if errors.As(err, &pe) {
				continue
			}
			t.Fatal(err)
		}
		consumed++
	}
	want := drainWellFormed(t, first)

	vocab := data.NewVocabulary()
	reopened := pipeline.ReaderSource(strings.NewReader(dirty), vocab)
	skippedBad, err := pipeline.FastForward(reopened, k)
	if err != nil {
		t.Fatal(err)
	}
	if skippedBad == 0 || skippedBad > injected {
		t.Fatalf("skippedBad = %d, want between 1 and %d", skippedBad, injected)
	}
	got := drainWellFormed(t, reopened)
	if len(got) != len(want) {
		t.Fatalf("remaining records = %d, want %d", len(got), len(want))
	}
	for i := range got {
		if !got[i].Equal(want[i]) {
			t.Fatalf("record %d after fast-forward differs", i)
		}
	}
}

// TestFastForwardPastEnd: a source shorter than the target position is an
// error naming the shortfall, not a silent partial skip.
func TestFastForwardPastEnd(t *testing.T) {
	src := pipeline.SliceSource(testRecords(t, 10))
	if _, err := pipeline.FastForward(src, 11); err == nil ||
		!strings.Contains(err.Error(), "before the fast-forward position") {
		t.Fatalf("FastForward past the end: %v", err)
	}
}

// TestFastForwardZero is a no-op.
func TestFastForwardZero(t *testing.T) {
	records := testRecords(t, 5)
	src := pipeline.SliceSource(records)
	if _, err := pipeline.FastForward(src, 0); err != nil {
		t.Fatal(err)
	}
	if got := drainSource(t, src); len(got) != 5 {
		t.Fatalf("zero fast-forward consumed records: %d left", len(got))
	}
}
