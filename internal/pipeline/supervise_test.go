package pipeline_test

// Shutdown-path and supervision tests: emit errors mid-run, perturbation
// errors with Raw=false, context cancellation, watchdog timeouts, and
// transient-fault retries — each asserting that the first error wins
// deterministically and that no goroutine outlives the run.

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fec"
	"repro/internal/pipeline"
)

// leakCheck snapshots the goroutine count; the returned func fails the test
// if the count has not settled back by the deadline (a settle loop, since
// stages inside user callbacks unwind asynchronously after cancellation).
func leakCheck(t *testing.T) func() {
	t.Helper()
	before := runtime.NumGoroutine()
	return func() {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if runtime.NumGoroutine() <= before {
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		t.Fatalf("goroutine leak: %d before, %d after settle\n%s",
			before, runtime.NumGoroutine(), buf[:n])
	}
}

// TestEmitErrorMidRunShutsDownCleanly: a permanent emit failure mid-run
// cancels the upstream stages, returns that error (not a cancellation
// artifact), and leaks nothing — at both worker tiers, repeatedly, so the
// first-error choice is shown to be deterministic.
func TestEmitErrorMidRunShutsDownCleanly(t *testing.T) {
	sentinel := errors.New("sink rejected the window")
	records := testRecords(t, 900)
	for _, workers := range []int{1, 8} {
		for round := 0; round < 5; round++ {
			check := leakCheck(t)
			p, err := pipeline.New(testConfig(workers))
			if err != nil {
				t.Fatal(err)
			}
			calls := 0
			rep, err := p.RunContext(context.Background(), pipeline.SliceSource(records),
				func(pipeline.Window) error {
					calls++
					if calls == 2 {
						return sentinel
					}
					return nil
				})
			if !errors.Is(err, sentinel) {
				t.Fatalf("workers=%d round=%d: got %v, want the emit error", workers, round, err)
			}
			if rep.Published != 1 {
				t.Fatalf("workers=%d: published %d windows before the failure, want 1", workers, rep.Published)
			}
			check()
		}
	}
}

// wrongCountScheme returns the wrong number of biases, the one perturbation
// failure reachable through the public Scheme interface.
type wrongCountScheme struct{}

func (wrongCountScheme) Name() string                          { return "wrong-count" }
func (wrongCountScheme) SharedDraws() bool                     { return true }
func (wrongCountScheme) Biases([]fec.Class, core.Params) []int { return nil }

// TestPerturbErrorShutsDownCleanly: a perturbation failure with Raw=false
// fails the run with an error naming the window, emit never sees a window,
// and nothing leaks.
func TestPerturbErrorShutsDownCleanly(t *testing.T) {
	records := testRecords(t, 900)
	for _, workers := range []int{1, 8} {
		check := leakCheck(t)
		cfg := testConfig(workers)
		cfg.Scheme = wrongCountScheme{}
		p, err := pipeline.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		emitted := 0
		rep, err := p.RunContext(context.Background(), pipeline.SliceSource(records),
			func(pipeline.Window) error { emitted++; return nil })
		if err == nil || !strings.Contains(err.Error(), "perturbing window") {
			t.Fatalf("workers=%d: got %v, want a perturbation error", workers, err)
		}
		if emitted != 0 || rep.Published != 0 {
			t.Fatalf("workers=%d: %d windows emitted after perturbation failure", workers, emitted)
		}
		check()
	}
}

// TestContextCancellationReturnsPromptlyNoLeak: canceling the context
// mid-run returns context.Canceled well within a watchdog period, with all
// stage goroutines gone after the settle loop.
func TestContextCancellationReturnsPromptlyNoLeak(t *testing.T) {
	records := testRecords(t, 900)
	for _, workers := range []int{1, 8} {
		check := leakCheck(t)
		cfg := testConfig(workers)
		cfg.WindowTimeout = 2 * time.Second
		p, err := pipeline.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		start := time.Now()
		_, err = p.RunContext(ctx, pipeline.SliceSource(records),
			func(pipeline.Window) error {
				cancel() // first window: pull the plug mid-run
				return nil
			})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: got %v, want context.Canceled", workers, err)
		}
		if elapsed := time.Since(start); elapsed > cfg.WindowTimeout {
			t.Fatalf("workers=%d: cancellation took %v, want < %v", workers, elapsed, cfg.WindowTimeout)
		}
		check()
	}
}

// TestPreCanceledContext: a context canceled before the run starts returns
// immediately without publishing anything.
func TestPreCanceledContext(t *testing.T) {
	check := leakCheck(t)
	p, err := pipeline.New(testConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := p.RunContext(ctx, pipeline.SliceSource(testRecords(t, 900)),
		func(pipeline.Window) error { return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if rep.Published != 0 {
		t.Fatalf("published %d windows under a dead context", rep.Published)
	}
	check()
}

// TestWatchdogTimesOutStalledEmit: an emit that stalls past WindowTimeout
// fails the run with a watchdog error instead of hanging, and the stalled
// goroutine unwinds once the sleep finishes.
func TestWatchdogTimesOutStalledEmit(t *testing.T) {
	check := leakCheck(t)
	cfg := testConfig(4)
	cfg.WindowTimeout = 50 * time.Millisecond
	p, err := pipeline.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = p.RunContext(context.Background(), pipeline.SliceSource(testRecords(t, 900)),
		func(pipeline.Window) error {
			time.Sleep(400 * time.Millisecond) // a stuck sink
			return nil
		})
	if err == nil || !strings.Contains(err.Error(), "watchdog") {
		t.Fatalf("got %v, want a watchdog error", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("watchdog took %v to fire", elapsed)
	}
	check()
}

// TestEmitRetriesRecoverTransientFailures: transient emit errors within the
// retry budget are absorbed — the run completes with output identical to a
// fault-free run, and the report counts the retries.
func TestEmitRetriesRecoverTransientFailures(t *testing.T) {
	records := testRecords(t, 900)
	for _, workers := range []int{1, 4} {
		cfg := testConfig(workers)
		ref := collect(t, cfg, records)

		cfg.EmitRetries = 3
		cfg.EmitBackoff = time.Millisecond
		p, err := pipeline.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var got []pipeline.Window
		calls := 0
		rep, err := p.RunContext(context.Background(), pipeline.SliceSource(records),
			func(w pipeline.Window) error {
				calls++
				if calls%3 == 0 {
					return pipeline.Transient(fmt.Errorf("sink hiccup on call %d", calls))
				}
				got = append(got, w)
				return nil
			})
		if err != nil {
			t.Fatalf("workers=%d: transient failures not absorbed: %v", workers, err)
		}
		sameWindows(t, "retried vs fault-free", ref, got)
		if rep.Retries == 0 {
			t.Fatalf("workers=%d: report shows no retries", workers)
		}
		if rep.Published != len(ref) {
			t.Fatalf("workers=%d: published %d, want %d", workers, rep.Published, len(ref))
		}
	}
}

// TestEmitRetryBudgetExhausted: a sink that stays transiently broken longer
// than the budget fails the run with the underlying error attached.
func TestEmitRetryBudgetExhausted(t *testing.T) {
	check := leakCheck(t)
	cfg := testConfig(4)
	cfg.EmitRetries = 2
	cfg.EmitBackoff = time.Millisecond
	p, err := pipeline.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sentinel := errors.New("sink is down")
	_, err = p.RunContext(context.Background(), pipeline.SliceSource(testRecords(t, 900)),
		func(pipeline.Window) error { return pipeline.Transient(sentinel) })
	if !errors.Is(err, sentinel) || !strings.Contains(err.Error(), "after 2 retries") {
		t.Fatalf("got %v, want budget exhaustion wrapping the sink error", err)
	}
	check()
}

// TestEmitPanicRecoveredAndRetried: a panicking sink is recovered, counted,
// and retried like any transient fault; the run still publishes the
// fault-free output.
func TestEmitPanicRecoveredAndRetried(t *testing.T) {
	records := testRecords(t, 900)
	cfg := testConfig(4)
	ref := collect(t, cfg, records)

	cfg.EmitRetries = 1
	cfg.EmitBackoff = time.Millisecond
	p, err := pipeline.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var got []pipeline.Window
	panicked := false
	rep, err := p.RunContext(context.Background(), pipeline.SliceSource(records),
		func(w pipeline.Window) error {
			if !panicked {
				panicked = true
				panic("sink exploded once")
			}
			got = append(got, w)
			return nil
		})
	if err != nil {
		t.Fatalf("recovered panic not retried: %v", err)
	}
	sameWindows(t, "after panic retry", ref, got)
	if rep.PanicsRecovered != 1 {
		t.Fatalf("PanicsRecovered = %d, want 1", rep.PanicsRecovered)
	}
}

// TestPermanentEmitErrorNotRetried: non-transient errors fail immediately
// without consuming the retry budget.
func TestPermanentEmitErrorNotRetried(t *testing.T) {
	cfg := testConfig(2)
	cfg.EmitRetries = 5
	cfg.EmitBackoff = time.Millisecond
	p, err := pipeline.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sentinel := errors.New("schema mismatch")
	calls := 0
	rep, err := p.RunContext(context.Background(), pipeline.SliceSource(testRecords(t, 900)),
		func(pipeline.Window) error { calls++; return sentinel })
	if !errors.Is(err, sentinel) {
		t.Fatalf("got %v, want the permanent error", err)
	}
	if calls != 1 || rep.Retries != 0 {
		t.Fatalf("permanent error retried: %d calls, %d retries", calls, rep.Retries)
	}
}

// TestTransientMarking covers the error-classification helpers.
func TestTransientMarking(t *testing.T) {
	if pipeline.Transient(nil) != nil {
		t.Error("Transient(nil) != nil")
	}
	base := errors.New("boom")
	wrapped := pipeline.Transient(base)
	if !pipeline.IsTransient(wrapped) {
		t.Error("marked error not transient")
	}
	if pipeline.IsTransient(base) {
		t.Error("unmarked error transient")
	}
	if !errors.Is(wrapped, base) {
		t.Error("Transient broke the error chain")
	}
	if !pipeline.IsTransient(fmt.Errorf("ctx: %w", wrapped)) {
		t.Error("transience lost through wrapping")
	}
}

// TestConfigValidationSupervision exercises New's rejection of the
// supervision knobs.
func TestConfigValidationSupervision(t *testing.T) {
	bad := []func(*pipeline.Config){
		func(c *pipeline.Config) { c.MaxBadRecords = -2 },
		func(c *pipeline.Config) { c.EmitRetries = -1 },
		func(c *pipeline.Config) { c.EmitBackoff = -time.Second },
		func(c *pipeline.Config) { c.WindowTimeout = -time.Second },
	}
	for i, mutate := range bad {
		cfg := testConfig(1)
		mutate(&cfg)
		if _, err := pipeline.New(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}
