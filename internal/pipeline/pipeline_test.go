package pipeline_test

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/itemset"
	"repro/internal/pipeline"
)

func testConfig(workers int) pipeline.Config {
	return pipeline.Config{
		WindowSize:   400,
		Params:       core.Params{Epsilon: 0.1, Delta: 0.4, MinSupport: 10, VulnSupport: 5},
		Scheme:       core.Hybrid{Lambda: 0.4},
		Seed:         17,
		PublishEvery: 100,
		Workers:      workers,
	}
}

func testRecords(t testing.TB, n int) []itemset.Itemset {
	t.Helper()
	return data.WebViewLike(5).Generate(n)
}

func collect(t *testing.T, cfg pipeline.Config, records []itemset.Itemset) []pipeline.Window {
	t.Helper()
	p, err := pipeline.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var out []pipeline.Window
	if err := p.Run(records, func(w pipeline.Window) error {
		out = append(out, w)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

func sameWindows(t *testing.T, label string, a, b []pipeline.Window) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d vs %d windows", label, len(a), len(b))
	}
	for i := range a {
		if a[i].Position != b[i].Position {
			t.Fatalf("%s: window %d at position %d vs %d", label, i, a[i].Position, b[i].Position)
		}
		x, y := a[i].Output, b[i].Output
		if x.Len() != y.Len() {
			t.Fatalf("%s: window %d has %d vs %d itemsets", label, i, x.Len(), y.Len())
		}
		for j := range x.Items {
			if !x.Items[j].Set.Equal(y.Items[j].Set) || x.Items[j].Support != y.Items[j].Support {
				t.Fatalf("%s: window %d item %d differs: %v/%d vs %v/%d", label, i, j,
					x.Items[j].Set, x.Items[j].Support, y.Items[j].Set, y.Items[j].Support)
			}
		}
	}
}

// legacyDrive replicates the pre-pipeline publication loop verbatim on a
// core.Stream whose publisher runs with the given worker setting. It is the
// reference the pipeline paths are pinned against.
func legacyDrive(t *testing.T, cfg pipeline.Config, pubWorkers int, records []itemset.Itemset) []pipeline.Window {
	t.Helper()
	stream, err := core.NewStream(core.StreamConfig{
		WindowSize: cfg.WindowSize,
		Params:     cfg.Params,
		Scheme:     cfg.Scheme,
		Seed:       cfg.Seed,
		ClosedOnly: cfg.ClosedOnly,
	})
	if err != nil {
		t.Fatal(err)
	}
	stream.Publisher().SetWorkers(pubWorkers)
	var out []pipeline.Window
	sinceFull := 0
	for i, rec := range records {
		stream.Push(rec)
		if !stream.Ready() {
			continue
		}
		sinceFull++
		atEnd := i == len(records)-1
		due := cfg.PublishEvery > 0 && (sinceFull-1)%cfg.PublishEvery == 0
		if !due && !atEnd {
			continue
		}
		o, err := stream.Publish()
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, pipeline.Window{Position: i + 1, Output: o})
	}
	return out
}

// TestSerialPathMatchesLegacyDrive pins the Workers=1 pipeline to the
// historical inline loop: same windows, same sanitized supports, same order
// — the byte-compatibility guarantee behind `-workers 1`.
func TestSerialPathMatchesLegacyDrive(t *testing.T) {
	records := testRecords(t, 900)
	cfg := testConfig(1)
	sameWindows(t, "workers=1 vs legacy loop",
		legacyDrive(t, cfg, 1, records), collect(t, cfg, records))
}

// TestStagedMatchesSequentialChunkedDrive pins the staged concurrent path
// to a single-goroutine drive of the same chunked publisher: overlapping
// the stages must not change a single published value.
func TestStagedMatchesSequentialChunkedDrive(t *testing.T) {
	records := testRecords(t, 900)
	cfg := testConfig(4)
	sameWindows(t, "staged vs sequential chunked",
		legacyDrive(t, cfg, 2, records), collect(t, cfg, records))
}

// TestStagedWorkerCountInvariance requires identical output from every
// staged worker count (the chunked-RNG determinism contract end to end).
func TestStagedWorkerCountInvariance(t *testing.T) {
	records := testRecords(t, 900)
	ref := collect(t, testConfig(2), records)
	for _, workers := range []int{3, 4, 8} {
		sameWindows(t, "staged worker invariance", ref, collect(t, testConfig(workers), records))
	}
}

// TestRawModeIdenticalAcrossAllWorkerCounts: audit mode never touches the
// RNG, so raw output must be identical across every worker count including
// the serial path.
func TestRawModeIdenticalAcrossAllWorkerCounts(t *testing.T) {
	records := testRecords(t, 900)
	mk := func(workers int) pipeline.Config {
		cfg := testConfig(workers)
		cfg.Raw = true
		return cfg
	}
	ref := collect(t, mk(1), records)
	if len(ref) == 0 {
		t.Fatal("no raw windows published")
	}
	for _, workers := range []int{2, 6} {
		sameWindows(t, "raw invariance", ref, collect(t, mk(workers), records))
	}
}

// TestPublishCadence checks the publication positions for both paths:
// window H=400 over 900 records publishing every 100 slides gives releases
// at positions 400, 500, ..., 900.
func TestPublishCadence(t *testing.T) {
	records := testRecords(t, 900)
	want := []int{400, 500, 600, 700, 800, 900}
	for _, workers := range []int{1, 4} {
		got := collect(t, testConfig(workers), records)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d windows, want %d", workers, len(got), len(want))
		}
		for i, w := range got {
			if w.Position != want[i] {
				t.Errorf("workers=%d: window %d at position %d, want %d", workers, i, w.Position, want[i])
			}
		}
	}
	// PublishEvery=0 publishes exactly once, at the end.
	cfg := testConfig(4)
	cfg.PublishEvery = 0
	got := collect(t, cfg, records)
	if len(got) != 1 || got[0].Position != 900 {
		t.Fatalf("publishEvery=0: got %d windows (first position %d), want 1 at 900", len(got), got[0].Position)
	}
}

// TestConfigValidation exercises New's rejection paths.
func TestConfigValidation(t *testing.T) {
	bad := []pipeline.Config{
		{WindowSize: 0, Params: core.Params{Epsilon: 0.1, Delta: 0.4, MinSupport: 10, VulnSupport: 5}},
		func() pipeline.Config { c := testConfig(1); c.Buffer = -1; return c }(),
		func() pipeline.Config { c := testConfig(1); c.PublishEvery = -2; return c }(),
		func() pipeline.Config { c := testConfig(1); c.Params.Epsilon = -1; return c }(),
	}
	for i, cfg := range bad {
		if _, err := pipeline.New(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

// TestRunErrors covers the runtime failure paths: short streams and emit
// errors (which must cancel the upstream stages and come back verbatim).
func TestRunErrors(t *testing.T) {
	p, err := pipeline.New(testConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Run(testRecords(t, 100), func(pipeline.Window) error { return nil }); err == nil {
		t.Error("short stream accepted")
	}

	sentinel := errors.New("downstream full")
	for _, workers := range []int{1, 4} {
		p, err := pipeline.New(testConfig(workers))
		if err != nil {
			t.Fatal(err)
		}
		calls := 0
		err = p.Run(testRecords(t, 900), func(pipeline.Window) error {
			calls++
			if calls == 2 {
				return sentinel
			}
			return nil
		})
		if !errors.Is(err, sentinel) {
			t.Errorf("workers=%d: emit error not propagated: %v", workers, err)
		}
	}
}

// TestRunIsRepeatable: each Run builds fresh miner/publisher state, so two
// runs of one Pipeline over the same records are identical.
func TestRunIsRepeatable(t *testing.T) {
	records := testRecords(t, 900)
	cfg := testConfig(4)
	p, err := pipeline.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	run := func() []pipeline.Window {
		var out []pipeline.Window
		if err := p.Run(records, func(w pipeline.Window) error {
			out = append(out, w)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return out
	}
	sameWindows(t, "repeat runs", run(), run())
}
