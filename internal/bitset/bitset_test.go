package bitset

import (
	"testing"
	"testing/quick"
)

func TestSetGetClear(t *testing.T) {
	b := New(130)
	idxs := []int{0, 1, 63, 64, 65, 127, 128, 129}
	for _, i := range idxs {
		if b.Get(i) {
			t.Errorf("fresh bitset has bit %d set", i)
		}
		b.Set(i)
		if !b.Get(i) {
			t.Errorf("bit %d not set after Set", i)
		}
	}
	if b.Count() != len(idxs) {
		t.Errorf("Count = %d, want %d", b.Count(), len(idxs))
	}
	for _, i := range idxs {
		b.Clear(i)
		if b.Get(i) {
			t.Errorf("bit %d still set after Clear", i)
		}
	}
	if b.Count() != 0 {
		t.Errorf("Count = %d after clearing all", b.Count())
	}
}

func TestSetIdempotent(t *testing.T) {
	b := New(10)
	b.Set(3)
	b.Set(3)
	if b.Count() != 1 {
		t.Errorf("Count = %d after double Set", b.Count())
	}
}

func TestOutOfRangePanics(t *testing.T) {
	for _, fn := range []func(b *Bitset){
		func(b *Bitset) { b.Set(10) },
		func(b *Bitset) { b.Get(-1) },
		func(b *Bitset) { b.Clear(10) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("out-of-range access did not panic")
				}
			}()
			fn(New(10))
		}()
	}
}

func TestAndCountMatchesAnd(t *testing.T) {
	f := func(aset, bset []uint16) bool {
		a, b := New(1<<16), New(1<<16)
		for _, i := range aset {
			a.Set(int(i))
		}
		for _, i := range bset {
			b.Set(int(i))
		}
		return a.AndCount(b) == a.And(b).Count()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAndInto(t *testing.T) {
	a, b, dst := New(100), New(100), New(100)
	a.Set(1)
	a.Set(2)
	a.Set(99)
	b.Set(2)
	b.Set(99)
	a.AndInto(b, dst)
	if dst.Count() != 2 || !dst.Get(2) || !dst.Get(99) || dst.Get(1) {
		t.Errorf("AndInto wrong: count=%d", dst.Count())
	}
	// Aliasing dst with receiver must work.
	a.AndInto(b, a)
	if a.Count() != 2 || a.Get(1) {
		t.Error("AndInto aliased with receiver wrong")
	}
}

func TestCapacityMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("capacity mismatch did not panic")
		}
	}()
	New(64).AndCount(New(65))
}

func TestCloneIndependent(t *testing.T) {
	a := New(70)
	a.Set(5)
	c := a.Clone()
	c.Set(6)
	if a.Get(6) {
		t.Error("mutating clone affected original")
	}
	if !c.Get(5) {
		t.Error("clone lost original bit")
	}
}

func TestResetAndForEach(t *testing.T) {
	b := New(200)
	want := []int{3, 64, 128, 199}
	for _, i := range want {
		b.Set(i)
	}
	var got []int
	b.ForEach(func(i int) { got = append(got, i) })
	if len(got) != len(want) {
		t.Fatalf("ForEach visited %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ForEach visited %v, want %v", got, want)
		}
	}
	b.Reset()
	if b.Count() != 0 {
		t.Error("Reset left bits set")
	}
}

func TestZeroCapacity(t *testing.T) {
	b := New(0)
	if b.Count() != 0 {
		t.Error("zero-capacity bitset non-empty")
	}
	b.ForEach(func(int) { t.Error("ForEach fired on empty set") })
}

func BenchmarkAndCount(b *testing.B) {
	x, y := New(5000), New(5000)
	for i := 0; i < 5000; i += 3 {
		x.Set(i)
	}
	for i := 0; i < 5000; i += 7 {
		y.Set(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.AndCount(y)
	}
}
