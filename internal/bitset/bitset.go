// Package bitset implements a fixed-capacity bitset used as a vertical
// transaction-id bitmap by the miners: bit s is set when the transaction in
// window slot s contains the itemset the bitmap belongs to. Itemset support
// is then a popcount, and extending an itemset is a bitwise AND.
package bitset

import (
	"fmt"
	"math/bits"
)

// Bitset is a fixed-capacity set of bit positions [0, Cap). The zero value
// is unusable; create with New.
type Bitset struct {
	words []uint64
	cap   int
}

// New returns a Bitset able to hold bits [0, capacity).
func New(capacity int) *Bitset {
	if capacity < 0 {
		panic("bitset: negative capacity")
	}
	return &Bitset{
		words: make([]uint64, (capacity+63)/64),
		cap:   capacity,
	}
}

// Cap returns the capacity the set was created with.
func (b *Bitset) Cap() int { return b.cap }

func (b *Bitset) check(i int) {
	if i < 0 || i >= b.cap {
		panic(fmt.Sprintf("bitset: index %d out of range [0,%d)", i, b.cap))
	}
}

// Set sets bit i.
func (b *Bitset) Set(i int) {
	b.check(i)
	b.words[i>>6] |= 1 << (uint(i) & 63)
}

// Clear clears bit i.
func (b *Bitset) Clear(i int) {
	b.check(i)
	b.words[i>>6] &^= 1 << (uint(i) & 63)
}

// Get reports whether bit i is set.
func (b *Bitset) Get(i int) bool {
	b.check(i)
	return b.words[i>>6]&(1<<(uint(i)&63)) != 0
}

// Count returns the number of set bits.
func (b *Bitset) Count() int {
	n := 0
	for _, w := range b.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// AndCount returns the number of bits set in both b and other, without
// allocating. Both sets must share the same capacity.
func (b *Bitset) AndCount(other *Bitset) int {
	b.mustMatch(other)
	n := 0
	for i, w := range b.words {
		n += bits.OnesCount64(w & other.words[i])
	}
	return n
}

// And returns a new Bitset holding b ∩ other.
func (b *Bitset) And(other *Bitset) *Bitset {
	b.mustMatch(other)
	out := New(b.cap)
	for i, w := range b.words {
		out.words[i] = w & other.words[i]
	}
	return out
}

// AndInto stores b ∩ other into dst (which must share the capacity) and
// returns dst. dst may alias b or other.
func (b *Bitset) AndInto(other, dst *Bitset) *Bitset {
	b.mustMatch(other)
	b.mustMatch(dst)
	for i, w := range b.words {
		dst.words[i] = w & other.words[i]
	}
	return dst
}

// Clone returns a copy of b.
func (b *Bitset) Clone() *Bitset {
	out := New(b.cap)
	copy(out.words, b.words)
	return out
}

// Reset clears all bits.
func (b *Bitset) Reset() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// ForEach calls fn for each set bit in ascending order.
func (b *Bitset) ForEach(fn func(i int)) {
	for wi, w := range b.words {
		for w != 0 {
			tz := bits.TrailingZeros64(w)
			fn(wi*64 + tz)
			w &= w - 1
		}
	}
}

func (b *Bitset) mustMatch(other *Bitset) {
	if other.cap != b.cap {
		panic(fmt.Sprintf("bitset: capacity mismatch %d vs %d", b.cap, other.cap))
	}
}
