package moment

import (
	"testing"

	"repro/internal/itemset"
	"repro/internal/mining"
	"repro/internal/paperex"
	"repro/internal/rng"
)

// checkInvariants verifies the structural invariants of the enumeration
// tree against the materialized window.
func checkInvariants(t *testing.T, m *Miner) {
	t.Helper()
	db := m.Database()
	var walk func(n *node)
	walk = func(n *node) {
		for _, c := range n.children {
			truth := db.Support(c.set)
			if c.support != truth {
				t.Fatalf("node %v support %d, window says %d", c.set, c.support, truth)
			}
			if c.frequent != (c.support >= m.minSupport) {
				t.Fatalf("node %v frequent flag %v at support %d (C=%d)",
					c.set, c.frequent, c.support, m.minSupport)
			}
			if c.frequent && c.bm == nil {
				t.Fatalf("frequent node %v lost its bitmap", c.set)
			}
			if c.bm != nil && c.bm.Count() != c.support {
				t.Fatalf("node %v bitmap count %d != support %d", c.set, c.bm.Count(), c.support)
			}
			if !c.frequent && len(c.children) > 0 {
				t.Fatalf("border node %v has children", c.set)
			}
			walk(c)
		}
	}
	walk(m.root)
}

func sameResult(t *testing.T, got, want *mining.Result, label string) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("%s: %d itemsets, want %d", label, got.Len(), want.Len())
	}
	for _, fi := range want.Itemsets {
		sup, ok := got.Support(fi.Set)
		if !ok || sup != fi.Support {
			t.Fatalf("%s: T(%v) = %d,%v, want %d", label, fi.Set, sup, ok, fi.Support)
		}
	}
}

func randomRecord(src *rng.Source, universe, maxLen int) itemset.Itemset {
	n := 1 + src.Intn(maxLen)
	items := make([]itemset.Item, 0, n)
	for j := 0; j < n; j++ {
		items = append(items, itemset.Item(src.Intn(universe)))
	}
	return itemset.New(items...)
}

func TestMinerMatchesEclatEverySlide(t *testing.T) {
	src := rng.New(42)
	m := New(20, 4)
	for i := 0; i < 200; i++ {
		m.Push(randomRecord(src, 10, 6))
		want, err := mining.Eclat(m.Database(), 4)
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, m.Frequent(), want, "slide")
		checkInvariants(t, m)
	}
}

func TestMinerMatchesEclatVariedParams(t *testing.T) {
	src := rng.New(77)
	for trial := 0; trial < 8; trial++ {
		h := 5 + src.Intn(30)
		c := 1 + src.Intn(6)
		universe := 4 + src.Intn(10)
		m := New(h, c)
		for i := 0; i < 3*h; i++ {
			m.Push(randomRecord(src, universe, 5))
		}
		want, err := mining.Eclat(m.Database(), c)
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, m.Frequent(), want, "varied")
		checkInvariants(t, m)
	}
}

func TestMinerClosedMatchesEclatClosed(t *testing.T) {
	src := rng.New(99)
	m := New(25, 3)
	for i := 0; i < 120; i++ {
		m.Push(randomRecord(src, 8, 5))
	}
	want, err := mining.Eclat(m.Database(), 3)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, m.Closed(), want.Closed(), "closed")
}

func TestMinerOnPaperExample(t *testing.T) {
	m := New(paperex.WindowSize, 4)
	for _, rec := range paperex.Records() {
		m.Push(rec)
	}
	// Window is now Ds(12,8); Fig. 3 supports with C=4.
	res := m.Frequent()
	for _, tc := range []struct {
		set  itemset.Itemset
		want int
	}{
		{itemset.New(paperex.C), 8},
		{itemset.New(paperex.A, paperex.C), 5},
		{itemset.New(paperex.B, paperex.C), 5},
	} {
		sup, ok := res.Support(tc.set)
		if !ok || sup != tc.want {
			t.Errorf("T(%v) = %d,%v want %d", tc.set, sup, ok, tc.want)
		}
	}
	if _, ok := res.Support(itemset.New(paperex.A, paperex.B, paperex.C)); ok {
		t.Error("abc has support 3 < C=4, must not be frequent")
	}
	checkInvariants(t, m)
}

func TestMinerWarmupBeforeFull(t *testing.T) {
	m := New(10, 2)
	m.Push(itemset.New(1, 2))
	m.Push(itemset.New(1, 2))
	if m.Len() != 2 {
		t.Fatalf("Len = %d", m.Len())
	}
	res := m.Frequent()
	if sup, ok := res.Support(itemset.New(1, 2)); !ok || sup != 2 {
		t.Errorf("T({1,2}) = %d,%v", sup, ok)
	}
	checkInvariants(t, m)
}

func TestMinerEvictionToEmptyItem(t *testing.T) {
	// An item that appears once and then slides out must vanish from the
	// tree entirely.
	m := New(2, 1)
	m.Push(itemset.New(7))
	m.Push(itemset.New(1))
	m.Push(itemset.New(1)) // evicts {7}
	if _, ok := m.root.children[7]; ok {
		t.Error("item 7 still tracked after leaving the window")
	}
	res := m.Frequent()
	if _, ok := res.Support(itemset.New(7)); ok {
		t.Error("item 7 still reported frequent")
	}
	checkInvariants(t, m)
}

func TestMinerDuplicateRecords(t *testing.T) {
	m := New(4, 3)
	for i := 0; i < 10; i++ {
		m.Push(itemset.New(1, 2, 3))
	}
	res := m.Frequent()
	if sup, ok := res.Support(itemset.New(1, 2, 3)); !ok || sup != 4 {
		t.Errorf("T({1,2,3}) = %d,%v, want 4", sup, ok)
	}
	// All 7 subsets frequent.
	if res.Len() != 7 {
		t.Errorf("frequent count = %d, want 7", res.Len())
	}
	checkInvariants(t, m)
}

func TestMinerOscillation(t *testing.T) {
	// Drive an itemset repeatedly across the threshold to exercise
	// promotion/demotion cycling.
	m := New(4, 3)
	on := itemset.New(1, 2)
	off := itemset.New(9)
	src := rng.New(5)
	for i := 0; i < 300; i++ {
		if src.Intn(2) == 0 {
			m.Push(on)
		} else {
			m.Push(off)
		}
		want, err := mining.Eclat(m.Database(), 3)
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, m.Frequent(), want, "oscillation")
		checkInvariants(t, m)
	}
}

func TestMinerWindowAccessors(t *testing.T) {
	m := New(3, 1)
	if m.Capacity() != 3 || m.MinSupport() != 1 {
		t.Error("accessors wrong")
	}
	for i := 1; i <= 5; i++ {
		m.Push(itemset.New(itemset.Item(i)))
	}
	if m.Position() != 5 {
		t.Errorf("Position = %d", m.Position())
	}
	w := m.Window()
	if len(w) != 3 || !w[0].Equal(itemset.New(3)) || !w[2].Equal(itemset.New(5)) {
		t.Errorf("Window = %v", w)
	}
}

func TestNewPanicsOnBadArgs(t *testing.T) {
	for _, fn := range []func(){
		func() { New(0, 1) },
		func() { New(5, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad New args did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestMinerEmptyRecord(t *testing.T) {
	m := New(3, 1)
	m.Push(itemset.New())
	m.Push(itemset.New(1))
	res := m.Frequent()
	if sup, ok := res.Support(itemset.New(1)); !ok || sup != 1 {
		t.Errorf("T({1}) = %d,%v", sup, ok)
	}
	checkInvariants(t, m)
}

func TestMinerLongStreamStability(t *testing.T) {
	// Node count must stay bounded on a long stream with churn: the tree
	// cannot accumulate dead items or orphan subtrees.
	src := rng.New(31)
	m := New(30, 5)
	var maxNodes int
	for i := 0; i < 2000; i++ {
		m.Push(randomRecord(src, 15, 5))
		if n := m.nodeCount(); n > maxNodes {
			maxNodes = n
		}
	}
	final := m.nodeCount()
	if final == 0 {
		t.Fatal("tree empty after long stream")
	}
	// With 15 items the tracked set can never legitimately exceed a few
	// hundred nodes; a leak shows up as monotone growth far beyond this.
	if maxNodes > 4000 {
		t.Errorf("tracked nodes peaked at %d — leak suspected", maxNodes)
	}
	checkInvariants(t, m)
}

func BenchmarkMinerPush(b *testing.B) {
	src := rng.New(11)
	recs := make([]itemset.Itemset, 4096)
	for i := range recs {
		recs[i] = randomRecord(src, 50, 8)
	}
	m := New(2000, 25)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Push(recs[i%len(recs)])
	}
}

func BenchmarkMinerFrequentSnapshot(b *testing.B) {
	src := rng.New(11)
	m := New(2000, 25)
	for i := 0; i < 3000; i++ {
		m.Push(randomRecord(src, 50, 8))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Frequent()
	}
}

// Property: for arbitrary (H, C, universe) and long random streams, the
// incremental miner's closed sets equal Apriori's closed sets on the
// materialized window.
func TestMinerClosedPropertyAcrossParams(t *testing.T) {
	src := rng.New(1234)
	for trial := 0; trial < 5; trial++ {
		h := 10 + src.Intn(25)
		c := 2 + src.Intn(4)
		uni := 5 + src.Intn(8)
		m := New(h, c)
		for i := 0; i < 4*h; i++ {
			m.Push(randomRecord(src, uni, 6))
		}
		want, err := mining.Apriori(m.Database(), c)
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, m.Closed(), want.Closed(), "closed property")
	}
}

// A window full of identical maximal records then a hard switch to a
// disjoint alphabet: the tree must fully turn over without leaks.
func TestMinerAlphabetTurnover(t *testing.T) {
	m := New(8, 3)
	for i := 0; i < 8; i++ {
		m.Push(itemset.New(0, 1, 2))
	}
	before := m.nodeCount()
	for i := 0; i < 8; i++ {
		m.Push(itemset.New(10, 11))
	}
	res := m.Frequent()
	if _, ok := res.Support(itemset.New(0)); ok {
		t.Error("old alphabet still frequent after turnover")
	}
	if sup, ok := res.Support(itemset.New(10, 11)); !ok || sup != 8 {
		t.Errorf("new alphabet support = %d,%v", sup, ok)
	}
	if _, ok := m.root.children[0]; ok {
		t.Error("stale level-1 node survived")
	}
	after := m.nodeCount()
	if after > before {
		t.Errorf("node count grew across turnover: %d -> %d", before, after)
	}
	checkInvariants(t, m)
}

// Window of size 1: every push fully replaces the content.
func TestMinerWindowOfOne(t *testing.T) {
	m := New(1, 1)
	m.Push(itemset.New(1, 2))
	m.Push(itemset.New(3))
	res := m.Frequent()
	if res.Len() != 1 {
		t.Fatalf("window-of-one holds %d itemsets, want 1", res.Len())
	}
	if sup, ok := res.Support(itemset.New(3)); !ok || sup != 1 {
		t.Errorf("T({3}) = %d,%v", sup, ok)
	}
	checkInvariants(t, m)
}
