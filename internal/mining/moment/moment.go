// Package moment implements a Moment-style incremental frequent-itemset
// miner over a sliding window, the substrate the Butterfly prototype was
// built on (Chi et al., "Moment: Maintaining closed frequent itemsets over a
// stream sliding window", ICDM 2004).
//
// Like Moment, the miner keeps an in-memory enumeration tree over the items
// and updates it in time proportional to the change when the window slides,
// rather than re-mining each window. The node taxonomy differs from the
// original CET in one simplification that does not change the output: where
// Moment distinguishes unpromising-gateway and intermediate nodes to keep
// only closed itemsets materialized, this tree tracks every frequent itemset
// plus a candidate border (the lexicographic extensions of frequent nodes
// justified by frequent siblings — exactly the Apriori-gen candidates), and
// derives the closed subset on demand. Supports of frequent nodes are backed
// by vertical bitmaps over window slots so that border expansion after a
// promotion is a bitmap AND instead of a window rescan; border nodes carry
// only a counter, keeping memory proportional to the frequent set.
//
// The tree maintains two invariants after every slide:
//
//  1. every itemset frequent in the current window is present as a tree
//     path and marked frequent with its exact support, and
//  2. every tracked infrequent node is a leaf (the border).
//
// Invariant 1 holds inductively: supports are antitone under inclusion, so
// a newly frequent itemset P+i has frequent P and a frequent sibling
// parent(P)+i, and the promotion of whichever of the two crossed the
// threshold last created the candidate node for P+i.
package moment

import (
	"fmt"

	"repro/internal/bitset"
	"repro/internal/itemset"
	"repro/internal/mining"
)

// Miner incrementally maintains the frequent itemsets of the H most recent
// records. It is not safe for concurrent use.
type Miner struct {
	minSupport int
	capacity   int

	buf    []itemset.Itemset // window ring buffer
	head   int
	length int
	pos    int // total records pushed

	root *node
}

// node is one tracked itemset. Level-1 nodes (single items) always carry a
// bitmap — they are the basis every deeper bitmap is rebuilt from. Deeper
// nodes carry a bitmap only while frequent; border nodes maintain just the
// support counter via the add/remove walks.
type node struct {
	set      itemset.Itemset
	last     itemset.Item // last item of set (undefined at root)
	bm       *bitset.Bitset
	support  int
	frequent bool
	parent   *node
	children map[itemset.Item]*node
}

func (n *node) level1() bool { return n.set.Len() == 1 }

// New creates a Miner over a sliding window of the given capacity with the
// given minimum support C. It panics on non-positive arguments, matching the
// construction-time contract of stream.NewWindow.
func New(capacity, minSupport int) *Miner {
	if capacity <= 0 {
		panic(fmt.Sprintf("moment: window capacity %d must be positive", capacity))
	}
	if minSupport <= 0 {
		panic(fmt.Sprintf("moment: minimum support %d must be positive", minSupport))
	}
	m := &Miner{
		minSupport: minSupport,
		capacity:   capacity,
		buf:        make([]itemset.Itemset, capacity),
	}
	m.root = &node{
		children: map[itemset.Item]*node{},
		frequent: true,
	}
	return m
}

// MinSupport returns the mining threshold C.
func (m *Miner) MinSupport() int { return m.minSupport }

// Capacity returns the window size H.
func (m *Miner) Capacity() int { return m.capacity }

// Len returns the number of records currently in the window.
func (m *Miner) Len() int { return m.length }

// Position returns N, the total number of records pushed.
func (m *Miner) Position() int { return m.pos }

// Push slides the window by one record, evicting the oldest record first
// when the window is full, and updates the enumeration tree.
func (m *Miner) Push(rec itemset.Itemset) {
	m.pos++
	var slot int
	if m.length < m.capacity {
		slot = (m.head + m.length) % m.capacity
		m.length++
	} else {
		slot = m.head
		m.remove(m.buf[slot], slot)
		m.head = (m.head + 1) % m.capacity
	}
	m.buf[slot] = rec
	m.add(rec, slot)
}

// Window returns the current window content in stream order (oldest first).
func (m *Miner) Window() []itemset.Itemset {
	out := make([]itemset.Itemset, m.length)
	for i := 0; i < m.length; i++ {
		out[i] = m.buf[(m.head+i)%m.capacity]
	}
	return out
}

// Database materializes the current window as a Database snapshot.
func (m *Miner) Database() *itemset.Database {
	return itemset.NewDatabase(m.Window())
}

// Frequent returns the frequent itemsets of the current window.
func (m *Miner) Frequent() *mining.Result {
	return m.FrequentInto(nil)
}

// FrequentInto is Frequent recycling the storage of a previous window's
// result: recycled's itemset buffer is truncated and refilled in place, so
// a steady-state snapshot costs no allocation beyond occasional buffer
// growth. A nil recycled allocates fresh. The caller must be done with
// recycled's previous contents — the pipeline recycles a window's result
// only after its sanitized output has been assembled.
func (m *Miner) FrequentInto(recycled *mining.Result) *mining.Result {
	var out []mining.FrequentItemset
	if recycled != nil {
		out = recycled.Itemsets[:0]
	}
	var walk func(n *node)
	walk = func(n *node) {
		for _, c := range n.children {
			if c.frequent {
				out = append(out, mining.FrequentItemset{Set: c.set, Support: c.support})
				walk(c)
			}
		}
	}
	walk(m.root)
	return mining.NewResultInto(recycled, m.minSupport, out)
}

// Closed returns the closed frequent itemsets of the current window — the
// output Moment itself maintains.
func (m *Miner) Closed() *mining.Result {
	return m.Frequent().Closed()
}

// add integrates the record stored at the given window slot.
func (m *Miner) add(rec itemset.Itemset, slot int) {
	// Ensure level-1 nodes exist for every item of the record.
	for _, it := range rec.Items() {
		if _, ok := m.root.children[it]; !ok {
			m.root.children[it] = &node{
				set:      itemset.New(it),
				last:     it,
				bm:       bitset.New(m.capacity),
				parent:   m.root,
				children: map[itemset.Item]*node{},
			}
		}
	}

	// Walk every tracked subset of rec, setting the slot bit and counting.
	var promoted []*node
	var descend func(n *node, items []itemset.Item)
	descend = func(n *node, items []itemset.Item) {
		for idx, it := range items {
			c, ok := n.children[it]
			if !ok {
				continue
			}
			if c.bm != nil {
				c.bm.Set(slot)
			}
			c.support++
			if !c.frequent && c.support >= m.minSupport {
				c.frequent = true
				promoted = append(promoted, c)
			}
			descend(c, items[idx+1:])
		}
	}
	descend(m.root, rec.Items())

	// Promotions run after the walk so every bitmap they consult already
	// reflects the added record.
	for len(promoted) > 0 {
		n := promoted[0]
		promoted = promoted[1:]
		if n.bm == nil {
			itemNode := m.root.children[n.last]
			n.bm = n.parent.bm.And(itemNode.bm)
		}
		promoted = append(promoted, m.expand(n)...)
	}
}

// expand gives a freshly promoted node its candidate children and registers
// the candidate it justifies under each smaller frequent sibling. It returns
// any created node that is immediately frequent (cascade promotions), with
// its bitmap already materialized.
func (m *Miner) expand(n *node) []*node {
	var cascades []*node
	for it, sib := range n.parent.children {
		if sib == n || !sib.frequent {
			continue
		}
		var c *node
		if it > n.last {
			c = m.createChild(n, it)
		} else {
			c = m.createChild(sib, n.last)
		}
		if c != nil {
			cascades = append(cascades, c)
		}
	}
	return cascades
}

// createChild materializes the candidate parent+item if absent. The support
// is computed by ANDing the parent bitmap with the item's level-1 bitmap;
// the intersection itself is only allocated when the child starts frequent.
// It returns the node if it was both created and immediately frequent, nil
// otherwise.
func (m *Miner) createChild(parent *node, it itemset.Item) *node {
	if _, ok := parent.children[it]; ok {
		return nil
	}
	itemNode, ok := m.root.children[it]
	if !ok {
		return nil // the item has no occurrences in the window at all
	}
	c := &node{
		set:      parent.set.With(it),
		last:     it,
		support:  parent.bm.AndCount(itemNode.bm),
		parent:   parent,
		children: map[itemset.Item]*node{},
	}
	parent.children[it] = c
	if c.support >= m.minSupport {
		c.frequent = true
		c.bm = parent.bm.And(itemNode.bm)
		return c
	}
	return nil
}

// remove retracts the record stored at the given window slot.
func (m *Miner) remove(rec itemset.Itemset, slot int) {
	var demoted []*node
	var descend func(n *node, items []itemset.Item)
	descend = func(n *node, items []itemset.Item) {
		for idx, it := range items {
			c, ok := n.children[it]
			if !ok {
				continue
			}
			if c.bm != nil {
				c.bm.Clear(slot)
			}
			c.support--
			if c.frequent && c.support < m.minSupport {
				c.frequent = false
				demoted = append(demoted, c)
			}
			descend(c, items[idx+1:])
		}
	}
	descend(m.root, rec.Items())

	// A demoted node keeps its own slot in the tree (it is now border) but
	// loses its subtree — every tracked descendant has support at most the
	// demoted node's, hence is infrequent too — and its bitmap, which is
	// rebuilt from the parent if it is ever promoted again. Level-1 nodes
	// keep their bitmaps: they are the basis for every rebuild.
	for _, n := range demoted {
		n.children = map[itemset.Item]*node{}
		if !n.level1() {
			n.bm = nil
		}
	}

	// Drop level-1 nodes that vanished from the window entirely so the item
	// table cannot grow without bound on long streams.
	for it, c := range m.root.children {
		if c.support == 0 {
			delete(m.root.children, it)
		}
	}
}

// nodeCount returns the number of tracked nodes (frequent + border), used by
// efficiency tests and diagnostics.
func (m *Miner) nodeCount() int {
	n := 0
	var walk func(nd *node)
	walk = func(nd *node) {
		for _, c := range nd.children {
			n++
			walk(c)
		}
	}
	walk(m.root)
	return n
}
