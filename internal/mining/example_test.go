package mining_test

import (
	"fmt"

	"repro/internal/itemset"
	"repro/internal/mining"
)

// ExampleEclat mines a toy basket database; all three per-window miners
// (Apriori, Eclat, FPGrowth) return identical results.
func ExampleEclat() {
	db := itemset.NewDatabase([]itemset.Itemset{
		itemset.New(0, 1),    // {a,b}
		itemset.New(0, 1, 2), // {a,b,c}
		itemset.New(0, 2),    // {a,c}
		itemset.New(0, 1),    // {a,b}
	})
	res, err := mining.Eclat(db, 2)
	if err != nil {
		panic(err)
	}
	for _, fi := range res.Itemsets {
		fmt.Println(fi.Set, fi.Support)
	}
	// Output:
	// {a} 4
	// {b} 3
	// {a,b} 3
	// {c} 2
	// {a,c} 2
}

// ExampleResult_Closed keeps only closed itemsets: {b} vanishes because
// {a,b} has the same support.
func ExampleResult_Closed() {
	db := itemset.NewDatabase([]itemset.Itemset{
		itemset.New(0, 1), itemset.New(0, 1), itemset.New(0),
	})
	res, _ := mining.Apriori(db, 1)
	for _, fi := range res.Closed().Itemsets {
		fmt.Println(fi.Set, fi.Support)
	}
	// Output:
	// {a} 3
	// {a,b} 2
}
