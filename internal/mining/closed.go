package mining

import (
	"sort"

	"repro/internal/bitset"
	"repro/internal/itemset"
)

// ClosedLCM mines the closed frequent itemsets of db directly, without
// materializing the full frequent set, using prefix-preserving closure
// extension (the LCM enumeration of Uno et al., the modern formulation of
// the closed-set search that CHARM and Moment's CET perform): every closed
// frequent itemset is generated exactly once from its unique parent, so the
// search needs no subsumption bookkeeping.
//
// It returns exactly the same Result as mining-all-then-Closed(), and is the
// efficient path when only the closed sets are wanted (the output Moment
// publishes).
func ClosedLCM(db *itemset.Database, minSupport int) (*Result, error) {
	if err := validate(db, minSupport); err != nil {
		return nil, err
	}
	n := db.Len()
	if n == 0 || minSupport > n {
		return NewResult(minSupport, nil), nil
	}

	// Vertical bitmaps for all items (closure checks need every item, not
	// just the frequent ones — an infrequent item can never be in a closure
	// of a frequent tidset though, since |tid(i)| >= |closure tidset| is
	// required; keep frequent items only and order them).
	tidmaps := map[itemset.Item]*bitset.Bitset{}
	for tid, rec := range db.Records() {
		for _, it := range rec.Items() {
			bm, ok := tidmaps[it]
			if !ok {
				bm = bitset.New(n)
				tidmaps[it] = bm
			}
			bm.Set(tid)
		}
	}
	var items []itemset.Item
	for it, bm := range tidmaps {
		if bm.Count() >= minSupport {
			items = append(items, it)
		}
	}
	sort.Slice(items, func(i, j int) bool { return items[i] < items[j] })
	pos := make(map[itemset.Item]int, len(items))
	for i, it := range items {
		pos[it] = i
	}

	var out []FrequentItemset

	// closure returns the itemset of frequent items present in every
	// transaction of tids.
	closure := func(tids *bitset.Bitset) itemset.Itemset {
		cnt := tids.Count()
		var members []itemset.Item
		for _, it := range items {
			if tidmaps[it].AndCount(tids) == cnt {
				members = append(members, it)
			}
		}
		return itemset.New(members...)
	}

	// prefixPreserved reports whether the closure Y of an extension by
	// items[idx] agrees with X on all items strictly below items[idx].
	prefixPreserved := func(x, y itemset.Itemset, idx int) bool {
		for _, it := range y.Items() {
			p, ok := pos[it]
			if !ok {
				return false // closure contains an infrequent item: impossible here
			}
			if p >= idx {
				break
			}
			if !x.Contains(it) {
				return false
			}
		}
		return true
	}

	all := bitset.New(n)
	for i := 0; i < n; i++ {
		all.Set(i)
	}

	var extend func(x itemset.Itemset, tids *bitset.Bitset, coreIdx int)
	extend = func(x itemset.Itemset, tids *bitset.Bitset, coreIdx int) {
		for idx := coreIdx + 1; idx < len(items); idx++ {
			it := items[idx]
			if x.Contains(it) {
				continue
			}
			sup := tids.AndCount(tidmaps[it])
			if sup < minSupport {
				continue
			}
			sub := tids.And(tidmaps[it])
			y := closure(sub)
			if !prefixPreserved(x, y, idx) {
				continue // y is generated on another branch
			}
			out = append(out, FrequentItemset{Set: y, Support: sup})
			extend(y, sub, idx)
		}
	}

	root := closure(all)
	if !root.Empty() {
		out = append(out, FrequentItemset{Set: root, Support: n})
	}
	// Root extensions start below index -1... every branch item index. The
	// LCM parent of a closed set Y is defined via its core index; starting
	// from the root closure with coreIdx = -1 covers all of them, but the
	// prefix check must compare against the root closure.
	extend(root, all, -1)
	return NewResult(minSupport, out), nil
}
