package mining

import (
	"runtime"
	"sync"

	"repro/internal/itemset"
)

// EclatParallel mines the same frequent itemsets as Eclat, sharding the
// depth-first search across a bounded worker pool. Each prefix equivalence
// class — one frequent single item together with its larger siblings — is an
// independent subtree of the Eclat search space, so the classes are fanned
// out to the workers and mined without any shared mutable state: the root
// bitmaps are read-only after construction and every worker ANDs them into
// fresh bitmaps.
//
// The result is merged per class in root order and then normalized by
// NewResult, so the output is identical to Eclat's for every worker count.
// workers <= 0 means runtime.GOMAXPROCS(0); workers == 1 degenerates to the
// serial search.
func EclatParallel(db *itemset.Database, minSupport, workers int) (*Result, error) {
	if err := validate(db, minSupport); err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 {
		return Eclat(db, minSupport)
	}
	roots := eclatRoots(db, minSupport)
	var out []FrequentItemset
	for _, r := range roots {
		out = append(out, FrequentItemset{itemset.New(r.item), r.sup})
	}
	if workers > len(roots) && len(roots) > 0 {
		workers = len(roots)
	}

	// One task per prefix class, claimed off a channel so the early (large)
	// subtrees spread across workers; results land in per-class slots and are
	// concatenated in class order, keeping the merge deterministic.
	perClass := make([][]FrequentItemset, len(roots))
	tasks := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range tasks {
				r := roots[i]
				var local []FrequentItemset
				eclatExtend(itemset.New(r.item), r.bm, roots[i+1:], minSupport, &local)
				perClass[i] = local
			}
		}()
	}
	for i := range roots {
		tasks <- i
	}
	close(tasks)
	wg.Wait()

	for _, local := range perClass {
		out = append(out, local...)
	}
	return NewResult(minSupport, out), nil
}
