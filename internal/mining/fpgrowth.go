package mining

import (
	"sort"

	"repro/internal/itemset"
)

// FPGrowth mines all frequent itemsets of db with support >= minSupport
// using the FP-growth algorithm (Han, Pei & Yin): transactions are
// compressed into a frequency-ordered prefix tree (FP-tree) and frequent
// itemsets are enumerated by recursively building conditional trees, with
// the single-path shortcut enumerating the final combinations directly.
// It produces the same Result as Apriori and Eclat and serves as a third
// independent implementation for cross-checking — and as the faster option
// on long, dense transactions where Apriori's candidate scans degrade.
func FPGrowth(db *itemset.Database, minSupport int) (*Result, error) {
	if err := validate(db, minSupport); err != nil {
		return nil, err
	}

	// Pass 1: frequent items, ordered by descending support (ties by item
	// id) — the canonical FP-tree item order.
	counts := db.ItemSupports()
	type freqItem struct {
		item itemset.Item
		sup  int
	}
	var freq []freqItem
	for it, c := range counts {
		if c >= minSupport {
			freq = append(freq, freqItem{it, c})
		}
	}
	sort.Slice(freq, func(i, j int) bool {
		if freq[i].sup != freq[j].sup {
			return freq[i].sup > freq[j].sup
		}
		return freq[i].item < freq[j].item
	})
	rank := make(map[itemset.Item]int, len(freq))
	for i, f := range freq {
		rank[f.item] = i
	}

	// Pass 2: build the FP-tree over rank-ordered filtered transactions.
	tree := newFPTree(len(freq))
	for _, rec := range db.Records() {
		var ranked []int
		for _, it := range rec.Items() {
			if r, ok := rank[it]; ok {
				ranked = append(ranked, r)
			}
		}
		sort.Ints(ranked)
		tree.insert(ranked, 1)
	}

	var out []FrequentItemset
	emit := func(ranks []int, sup int) {
		items := make([]itemset.Item, len(ranks))
		for i, r := range ranks {
			items[i] = freq[r].item
		}
		out = append(out, FrequentItemset{Set: itemset.New(items...), Support: sup})
	}
	fpMine(tree, minSupport, nil, emit)
	return NewResult(minSupport, out), nil
}

// fpNode is one FP-tree node. Items are represented by their frequency
// rank; children are keyed by rank.
type fpNode struct {
	rank     int
	count    int
	parent   *fpNode
	children map[int]*fpNode
	next     *fpNode // header-list chaining of same-rank nodes
}

type fpTree struct {
	root    *fpNode
	headers []*fpNode // per rank: head of the node chain
	counts  []int     // per rank: total count in this tree
}

func newFPTree(nRanks int) *fpTree {
	return &fpTree{
		root:    &fpNode{rank: -1, children: map[int]*fpNode{}},
		headers: make([]*fpNode, nRanks),
		counts:  make([]int, nRanks),
	}
}

// insert adds a rank-sorted transaction with the given count.
func (t *fpTree) insert(ranked []int, count int) {
	n := t.root
	for _, r := range ranked {
		c, ok := n.children[r]
		if !ok {
			c = &fpNode{rank: r, parent: n, children: map[int]*fpNode{}}
			c.next = t.headers[r]
			t.headers[r] = c
			n.children[r] = c
		}
		c.count += count
		t.counts[r] += count
		n = c
	}
}

// singlePath returns the node chain if the tree is one path, else nil.
func (t *fpTree) singlePath() []*fpNode {
	var path []*fpNode
	n := t.root
	for {
		if len(n.children) == 0 {
			return path
		}
		if len(n.children) > 1 {
			return nil
		}
		for _, c := range n.children {
			n = c
		}
		path = append(path, n)
	}
}

// fpMine enumerates frequent itemsets of the tree, each extended by the
// current suffix (ranks of already-fixed items, any order).
func fpMine(t *fpTree, minSupport int, suffix []int, emit func(ranks []int, sup int)) {
	if path := t.singlePath(); path != nil {
		// Single-path shortcut: every combination of path nodes is frequent
		// with the count of its deepest member.
		emitCombos(path, minSupport, suffix, emit)
		return
	}
	// General case: for each frequent rank (bottom-up), emit suffix+rank and
	// recurse on its conditional tree.
	for r := len(t.headers) - 1; r >= 0; r-- {
		sup := t.counts[r]
		if sup < minSupport || t.headers[r] == nil {
			continue
		}
		newSuffix := append(append([]int{}, suffix...), r)
		emit(newSuffix, sup)

		// Conditional pattern base: prefix paths of every r-node.
		cond := newFPTree(len(t.headers))
		for n := t.headers[r]; n != nil; n = n.next {
			var prefix []int
			for p := n.parent; p != nil && p.rank >= 0; p = p.parent {
				prefix = append(prefix, p.rank)
			}
			// prefix collected deep-to-shallow: reverse to rank order.
			for i, j := 0, len(prefix)-1; i < j; i, j = i+1, j-1 {
				prefix[i], prefix[j] = prefix[j], prefix[i]
			}
			if len(prefix) > 0 {
				cond.insert(prefix, n.count)
			}
		}
		// Prune infrequent ranks inside the conditional base by rebuilding
		// with only frequent ranks (counts already aggregated in cond).
		pruned := pruneFPTree(cond, minSupport)
		if pruned != nil {
			fpMine(pruned, minSupport, newSuffix, emit)
		}
	}
}

// pruneFPTree rebuilds a conditional tree keeping only ranks frequent in it;
// returns nil when nothing survives.
func pruneFPTree(t *fpTree, minSupport int) *fpTree {
	keep := false
	for _, c := range t.counts {
		if c >= minSupport {
			keep = true
			break
		}
	}
	if !keep {
		return nil
	}
	out := newFPTree(len(t.counts))
	var walk func(n *fpNode, path []int)
	walk = func(n *fpNode, path []int) {
		if n.rank >= 0 {
			if t.counts[n.rank] >= minSupport {
				path = append(path, n.rank)
			}
			// A node's own count includes its subtree; insert only the leaf
			// increments: leafCount = n.count - Σ children counts.
			childSum := 0
			for _, c := range n.children {
				childSum += c.count
			}
			if delta := n.count - childSum; delta > 0 && len(path) > 0 {
				out.insert(path, delta)
			}
		}
		for _, c := range n.children {
			walk(c, path)
		}
	}
	walk(t.root, nil)
	return out
}

// emitCombos emits every non-empty combination of single-path nodes,
// supported by its deepest member's count, each combined with the suffix.
func emitCombos(path []*fpNode, minSupport int, suffix []int, emit func([]int, int)) {
	n := len(path)
	for mask := 1; mask < 1<<n; mask++ {
		sup := 0
		var ranks []int
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				ranks = append(ranks, path[i].rank)
				sup = path[i].count // deepest selected node has the smallest count
			}
		}
		if sup < minSupport {
			continue
		}
		emit(append(append([]int{}, suffix...), ranks...), sup)
	}
}
