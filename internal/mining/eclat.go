package mining

import (
	"sort"

	"repro/internal/bitset"
	"repro/internal/itemset"
)

// eclatVertical is one frequent single item with its vertical transaction-id
// bitmap — the root of one prefix equivalence class of the Eclat search tree.
type eclatVertical struct {
	item itemset.Item
	bm   *bitset.Bitset
	sup  int
}

// eclatRoots builds the vertical bitmaps of db's frequent single items,
// sorted by item id. The returned roots are read-only from here on: both the
// serial recursion and the parallel workers only AND them into fresh bitmaps,
// which is what makes sharing them across goroutines safe.
func eclatRoots(db *itemset.Database, minSupport int) []eclatVertical {
	n := db.Len()
	tidmaps := map[itemset.Item]*bitset.Bitset{}
	for tid, rec := range db.Records() {
		for _, it := range rec.Items() {
			bm, ok := tidmaps[it]
			if !ok {
				bm = bitset.New(n)
				tidmaps[it] = bm
			}
			bm.Set(tid)
		}
	}
	var roots []eclatVertical
	for it, bm := range tidmaps {
		if sup := bm.Count(); sup >= minSupport {
			roots = append(roots, eclatVertical{it, bm, sup})
		}
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].item < roots[j].item })
	return roots
}

// eclatExtend runs the depth-first Eclat extension below one prefix: at each
// prefix, try to extend with every frequent sibling item larger than the last
// one, appending discoveries to *out.
func eclatExtend(prefix itemset.Itemset, prefixBM *bitset.Bitset, siblings []eclatVertical, minSupport int, out *[]FrequentItemset) {
	for i, s := range siblings {
		bm := prefixBM.And(s.bm)
		sup := bm.Count()
		if sup < minSupport {
			continue
		}
		next := prefix.With(s.item)
		*out = append(*out, FrequentItemset{next, sup})
		eclatExtend(next, bm, siblings[i+1:], minSupport, out)
	}
}

// Eclat mines all frequent itemsets of db with support >= minSupport using
// depth-first search over vertical transaction-id bitmaps. It produces the
// same Result as Apriori, typically much faster on the dense windows the
// stream experiments use.
func Eclat(db *itemset.Database, minSupport int) (*Result, error) {
	if err := validate(db, minSupport); err != nil {
		return nil, err
	}
	roots := eclatRoots(db, minSupport)
	var out []FrequentItemset
	for _, r := range roots {
		out = append(out, FrequentItemset{itemset.New(r.item), r.sup})
	}
	for i, r := range roots {
		eclatExtend(itemset.New(r.item), r.bm, roots[i+1:], minSupport, &out)
	}
	return NewResult(minSupport, out), nil
}
