package mining

import (
	"sort"

	"repro/internal/bitset"
	"repro/internal/itemset"
)

// Eclat mines all frequent itemsets of db with support >= minSupport using
// depth-first search over vertical transaction-id bitmaps. It produces the
// same Result as Apriori, typically much faster on the dense windows the
// stream experiments use.
func Eclat(db *itemset.Database, minSupport int) (*Result, error) {
	if err := validate(db, minSupport); err != nil {
		return nil, err
	}
	n := db.Len()

	// Build vertical bitmaps for frequent single items.
	tidmaps := map[itemset.Item]*bitset.Bitset{}
	for tid, rec := range db.Records() {
		for _, it := range rec.Items() {
			bm, ok := tidmaps[it]
			if !ok {
				bm = bitset.New(n)
				tidmaps[it] = bm
			}
			bm.Set(tid)
		}
	}

	type vertical struct {
		item itemset.Item
		bm   *bitset.Bitset
		sup  int
	}
	var roots []vertical
	var out []FrequentItemset
	for it, bm := range tidmaps {
		if sup := bm.Count(); sup >= minSupport {
			roots = append(roots, vertical{it, bm, sup})
			out = append(out, FrequentItemset{itemset.New(it), sup})
		}
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].item < roots[j].item })

	// Depth-first extension: at each prefix, try to extend with every
	// frequent sibling item larger than the last one.
	var extend func(prefix itemset.Itemset, prefixBM *bitset.Bitset, siblings []vertical)
	extend = func(prefix itemset.Itemset, prefixBM *bitset.Bitset, siblings []vertical) {
		for i, s := range siblings {
			bm := prefixBM.And(s.bm)
			sup := bm.Count()
			if sup < minSupport {
				continue
			}
			next := prefix.With(s.item)
			out = append(out, FrequentItemset{next, sup})
			extend(next, bm, siblings[i+1:])
		}
	}
	for i, r := range roots {
		extend(itemset.New(r.item), r.bm, roots[i+1:])
	}
	return NewResult(minSupport, out), nil
}
