// Package mining implements frequent-itemset mining over a transaction
// database (one sliding-window snapshot in the stream setting).
//
// Two independent per-window miners are provided — levelwise Apriori and
// vertical-bitmap Eclat — plus closed-itemset filtering. The subpackage
// moment maintains the same result incrementally across window slides. The
// redundancy is deliberate: the miners cross-check one another in tests, and
// Apriori doubles as the self-evidently-correct baseline.
package mining

import (
	"fmt"
	"sort"

	"repro/internal/itemset"
)

// FrequentItemset couples an itemset with its support in the mined window.
type FrequentItemset struct {
	Set     itemset.Itemset
	Support int
}

// Result is the outcome of mining one window: every itemset with support at
// least MinSupport, with lookup by itemset.
type Result struct {
	// MinSupport is the threshold C the window was mined with.
	MinSupport int
	// Itemsets holds the frequent itemsets sorted by descending support,
	// ties broken by ascending size then lexicographic item order, so that
	// output order is deterministic.
	Itemsets []FrequentItemset

	byKey map[string]int // Key() -> Support
}

// NewResult assembles a Result from mined itemsets. It normalizes order and
// builds the lookup index.
func NewResult(minSupport int, sets []FrequentItemset) *Result {
	r := &Result{MinSupport: minSupport, Itemsets: sets}
	r.normalize()
	return r
}

func (r *Result) normalize() {
	sort.Slice(r.Itemsets, func(i, j int) bool {
		a, b := r.Itemsets[i], r.Itemsets[j]
		if a.Support != b.Support {
			return a.Support > b.Support
		}
		if a.Set.Len() != b.Set.Len() {
			return a.Set.Len() < b.Set.Len()
		}
		return a.Set.Key() < b.Set.Key()
	})
	r.byKey = make(map[string]int, len(r.Itemsets))
	for _, fi := range r.Itemsets {
		r.byKey[fi.Set.Key()] = fi.Support
	}
}

// Support returns the mined support of s and whether s is frequent.
func (r *Result) Support(s itemset.Itemset) (int, bool) {
	v, ok := r.byKey[s.Key()]
	return v, ok
}

// Len returns the number of frequent itemsets.
func (r *Result) Len() int { return len(r.Itemsets) }

// Closed returns the subset of r that is closed: itemsets with no proper
// superset of equal support. In a frequent-itemset collection it suffices to
// compare against supersets one item larger, because support is antitone
// under inclusion: if some superset has equal support, a one-item extension
// on the way to it does too.
func (r *Result) Closed() *Result {
	notClosed := make(map[string]bool)
	for _, fi := range r.Itemsets {
		if fi.Set.Len() < 2 {
			continue
		}
		items := fi.Set.Items()
		for _, drop := range items {
			sub := fi.Set.Without(drop)
			if sup, ok := r.byKey[sub.Key()]; ok && sup == fi.Support {
				notClosed[sub.Key()] = true
			}
		}
	}
	// The empty itemset is implicitly frequent with support = window size;
	// miners do not emit it, so nothing more to do.
	var out []FrequentItemset
	for _, fi := range r.Itemsets {
		if !notClosed[fi.Set.Key()] {
			out = append(out, fi)
		}
	}
	return NewResult(r.MinSupport, out)
}

// validate guards the mining entry points.
func validate(db *itemset.Database, minSupport int) error {
	if db == nil {
		return fmt.Errorf("mining: nil database")
	}
	if minSupport < 1 {
		return fmt.Errorf("mining: minimum support %d must be >= 1", minSupport)
	}
	return nil
}

// Apriori mines all frequent itemsets of db with support >= minSupport using
// the levelwise Apriori algorithm with prefix-join candidate generation and
// full subset pruning. It is the reference implementation: simple, obviously
// faithful to the definition, and used as ground truth in tests.
func Apriori(db *itemset.Database, minSupport int) (*Result, error) {
	if err := validate(db, minSupport); err != nil {
		return nil, err
	}
	var out []FrequentItemset

	// Level 1.
	itemCounts := db.ItemSupports()
	var level []itemset.Itemset
	for it, c := range itemCounts {
		if c >= minSupport {
			level = append(level, itemset.New(it))
			out = append(out, FrequentItemset{itemset.New(it), c})
		}
	}
	sort.Slice(level, func(i, j int) bool { return level[i].Key() < level[j].Key() })

	frequent := make(map[string]bool, len(level))
	for _, s := range level {
		frequent[s.Key()] = true
	}

	for len(level) > 1 {
		candidates := aprioriGen(level, frequent)
		if len(candidates) == 0 {
			break
		}
		counts := make([]int, len(candidates))
		for _, rec := range db.Records() {
			for ci, c := range candidates {
				if rec.ContainsAll(c) {
					counts[ci]++
				}
			}
		}
		level = level[:0]
		for ci, c := range candidates {
			if counts[ci] >= minSupport {
				level = append(level, c)
				frequent[c.Key()] = true
				out = append(out, FrequentItemset{c, counts[ci]})
			}
		}
	}
	return NewResult(minSupport, out), nil
}

// aprioriGen joins frequent k-itemsets sharing a (k-1)-prefix and prunes
// candidates with an infrequent k-subset.
func aprioriGen(level []itemset.Itemset, frequent map[string]bool) []itemset.Itemset {
	var candidates []itemset.Itemset
	for i := 0; i < len(level); i++ {
		for j := i + 1; j < len(level); j++ {
			a, b := level[i], level[j]
			k := a.Len()
			if !samePrefix(a, b, k-1) {
				break // level is sorted by Key, so prefixes are contiguous
			}
			var cand itemset.Itemset
			if a.At(k-1) < b.At(k-1) {
				cand = a.With(b.At(k - 1))
			} else {
				cand = b.With(a.At(k - 1))
			}
			if aprioriPrune(cand, frequent) {
				candidates = append(candidates, cand)
			}
		}
	}
	return candidates
}

func samePrefix(a, b itemset.Itemset, n int) bool {
	for i := 0; i < n; i++ {
		if a.At(i) != b.At(i) {
			return false
		}
	}
	return true
}

func aprioriPrune(cand itemset.Itemset, frequent map[string]bool) bool {
	for _, drop := range cand.Items() {
		if !frequent[cand.Without(drop).Key()] {
			return false
		}
	}
	return true
}
