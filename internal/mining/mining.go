// Package mining implements frequent-itemset mining over a transaction
// database (one sliding-window snapshot in the stream setting).
//
// Two independent per-window miners are provided — levelwise Apriori and
// vertical-bitmap Eclat — plus closed-itemset filtering. The subpackage
// moment maintains the same result incrementally across window slides. The
// redundancy is deliberate: the miners cross-check one another in tests, and
// Apriori doubles as the self-evidently-correct baseline.
package mining

import (
	"fmt"
	"slices"
	"sort"

	"repro/internal/itemset"
)

// FrequentItemset couples an itemset with its support in the mined window.
type FrequentItemset struct {
	Set     itemset.Itemset
	Support int
}

// Result is the outcome of mining one window: every itemset with support at
// least MinSupport, with lookup by itemset.
//
// The lookup index is built lazily by the first Support call: the streaming
// publish path partitions Itemsets positionally and never looks an itemset
// up, so eagerly interning a Key() string per itemset every window was pure
// garbage. A Result is safe for concurrent reads only once the index exists
// (call Support once before sharing, as the experiment harness does);
// window results inside the pipeline are owned by one stage at a time.
type Result struct {
	// MinSupport is the threshold C the window was mined with.
	MinSupport int
	// Itemsets holds the frequent itemsets sorted by descending support,
	// ties broken by ascending size then lexicographic item order, so that
	// output order is deterministic.
	Itemsets []FrequentItemset

	byKey map[string]int // Key() -> Support, built on first use
}

// NewResult assembles a Result from mined itemsets. It normalizes order;
// the lookup index is deferred to the first Support call.
func NewResult(minSupport int, sets []FrequentItemset) *Result {
	return NewResultInto(nil, minSupport, sets)
}

// NewResultInto is NewResult recycling an existing Result's storage: r's
// previous contents are discarded and replaced by sets (normalized in
// place). A nil r allocates fresh. The pipeline's window pool uses it to
// re-mine into buffers whose windows have already been published — callers
// must not retain the previous contents.
func NewResultInto(r *Result, minSupport int, sets []FrequentItemset) *Result {
	if r == nil {
		r = &Result{}
	}
	r.MinSupport = minSupport
	r.Itemsets = sets
	r.byKey = nil
	r.normalize()
	return r
}

func (r *Result) normalize() {
	slices.SortFunc(r.Itemsets, func(a, b FrequentItemset) int {
		if a.Support != b.Support {
			return b.Support - a.Support
		}
		if a.Set.Len() != b.Set.Len() {
			return a.Set.Len() - b.Set.Len()
		}
		return itemset.Compare(a.Set, b.Set)
	})
}

// index returns the Key() -> Support map, building it on first use.
func (r *Result) index() map[string]int {
	if r.byKey == nil {
		r.byKey = make(map[string]int, len(r.Itemsets))
		for _, fi := range r.Itemsets {
			r.byKey[fi.Set.Key()] = fi.Support
		}
	}
	return r.byKey
}

// Support returns the mined support of s and whether s is frequent.
func (r *Result) Support(s itemset.Itemset) (int, bool) {
	v, ok := r.index()[s.Key()]
	return v, ok
}

// Len returns the number of frequent itemsets.
func (r *Result) Len() int { return len(r.Itemsets) }

// Closed returns the subset of r that is closed: itemsets with no proper
// superset of equal support. In a frequent-itemset collection it suffices to
// compare against supersets one item larger, because support is antitone
// under inclusion: if some superset has equal support, a one-item extension
// on the way to it does too.
func (r *Result) Closed() *Result {
	notClosed := make(map[string]bool)
	byKey := r.index()
	for _, fi := range r.Itemsets {
		if fi.Set.Len() < 2 {
			continue
		}
		items := fi.Set.Items()
		for _, drop := range items {
			sub := fi.Set.Without(drop)
			if sup, ok := byKey[sub.Key()]; ok && sup == fi.Support {
				notClosed[sub.Key()] = true
			}
		}
	}
	// The empty itemset is implicitly frequent with support = window size;
	// miners do not emit it, so nothing more to do.
	var out []FrequentItemset
	for _, fi := range r.Itemsets {
		if !notClosed[fi.Set.Key()] {
			out = append(out, fi)
		}
	}
	return NewResult(r.MinSupport, out)
}

// validate guards the mining entry points.
func validate(db *itemset.Database, minSupport int) error {
	if db == nil {
		return fmt.Errorf("mining: nil database")
	}
	if minSupport < 1 {
		return fmt.Errorf("mining: minimum support %d must be >= 1", minSupport)
	}
	return nil
}

// Apriori mines all frequent itemsets of db with support >= minSupport using
// the levelwise Apriori algorithm with prefix-join candidate generation and
// full subset pruning. It is the reference implementation: simple, obviously
// faithful to the definition, and used as ground truth in tests.
func Apriori(db *itemset.Database, minSupport int) (*Result, error) {
	if err := validate(db, minSupport); err != nil {
		return nil, err
	}
	var out []FrequentItemset

	// Level 1.
	itemCounts := db.ItemSupports()
	var level []itemset.Itemset
	for it, c := range itemCounts {
		if c >= minSupport {
			level = append(level, itemset.New(it))
			out = append(out, FrequentItemset{itemset.New(it), c})
		}
	}
	sort.Slice(level, func(i, j int) bool { return level[i].Key() < level[j].Key() })

	frequent := make(map[string]bool, len(level))
	for _, s := range level {
		frequent[s.Key()] = true
	}

	for len(level) > 1 {
		candidates := aprioriGen(level, frequent)
		if len(candidates) == 0 {
			break
		}
		counts := make([]int, len(candidates))
		for _, rec := range db.Records() {
			for ci, c := range candidates {
				if rec.ContainsAll(c) {
					counts[ci]++
				}
			}
		}
		level = level[:0]
		for ci, c := range candidates {
			if counts[ci] >= minSupport {
				level = append(level, c)
				frequent[c.Key()] = true
				out = append(out, FrequentItemset{c, counts[ci]})
			}
		}
	}
	return NewResult(minSupport, out), nil
}

// aprioriGen joins frequent k-itemsets sharing a (k-1)-prefix and prunes
// candidates with an infrequent k-subset.
func aprioriGen(level []itemset.Itemset, frequent map[string]bool) []itemset.Itemset {
	var candidates []itemset.Itemset
	for i := 0; i < len(level); i++ {
		for j := i + 1; j < len(level); j++ {
			a, b := level[i], level[j]
			k := a.Len()
			if !samePrefix(a, b, k-1) {
				break // level is sorted by Key, so prefixes are contiguous
			}
			var cand itemset.Itemset
			if a.At(k-1) < b.At(k-1) {
				cand = a.With(b.At(k - 1))
			} else {
				cand = b.With(a.At(k - 1))
			}
			if aprioriPrune(cand, frequent) {
				candidates = append(candidates, cand)
			}
		}
	}
	return candidates
}

func samePrefix(a, b itemset.Itemset, n int) bool {
	for i := 0; i < n; i++ {
		if a.At(i) != b.At(i) {
			return false
		}
	}
	return true
}

func aprioriPrune(cand itemset.Itemset, frequent map[string]bool) bool {
	for _, drop := range cand.Items() {
		if !frequent[cand.Without(drop).Key()] {
			return false
		}
	}
	return true
}
