package mining_test

// Cross-miner differential harness: the repository deliberately carries four
// independent frequent-itemset miners (levelwise Apriori, vertical-bitmap
// Eclat — serial and sharded-parallel — FP-growth, and the incremental
// Moment tree). These tests pin them to each other on a corpus of seeded
// random databases: every miner must produce the exact same
// (itemset, support) map at every minimum support, and Moment must keep
// agreeing after every sliding-window update.

import (
	"fmt"
	"testing"

	"repro/internal/itemset"
	"repro/internal/mining"
	"repro/internal/mining/moment"
	"repro/internal/rng"
)

// randomDatabase draws a small random transaction database: nRecords
// transactions over a universe of nItems items, lengths 1..maxLen, with a
// mild popularity skew so that interesting multi-item patterns exist.
func randomDatabase(seed uint64, nRecords, nItems, maxLen int) *itemset.Database {
	src := rng.New(seed)
	zipf := rng.NewZipf(src, nItems, 0.8)
	recs := make([]itemset.Itemset, nRecords)
	for i := range recs {
		length := 1 + src.Intn(maxLen)
		items := make([]itemset.Item, 0, length)
		for j := 0; j < length; j++ {
			items = append(items, itemset.Item(zipf.Draw()))
		}
		recs[i] = itemset.New(items...)
	}
	return itemset.NewDatabase(recs)
}

// resultMap flattens a mining result into a support-by-key map for equality
// checks that ignore ordering.
func resultMap(res *mining.Result) map[string]int {
	m := make(map[string]int, res.Len())
	for _, fi := range res.Itemsets {
		m[fi.Set.Key()] = fi.Support
	}
	return m
}

// diffResults fails the test with a readable diff when two miners disagree.
func diffResults(t *testing.T, name string, want, got map[string]int) {
	t.Helper()
	if len(want) == len(got) {
		same := true
		for k, v := range want {
			if got[k] != v {
				same = false
				break
			}
		}
		if same {
			return
		}
	}
	t.Errorf("%s disagrees with Apriori: %d vs %d itemsets", name, len(got), len(want))
	for k, v := range want {
		if g, ok := got[k]; !ok {
			t.Errorf("  missing itemset (support %d)", v)
		} else if g != v {
			t.Errorf("  support mismatch: got %d want %d", g, v)
		}
		if t.Failed() && len(want) > 40 {
			t.Fatalf("  (stopping diff early)")
		}
	}
	for k := range got {
		if _, ok := want[k]; !ok {
			t.Errorf("  spurious itemset (support %d)", got[k])
		}
	}
}

// TestMinersAgreeOnRandomDatabases runs all four per-window miners (plus
// parallel Eclat at several worker counts) over ~50 seeded random databases
// and several minimum supports, requiring identical (itemset, support) maps.
func TestMinersAgreeOnRandomDatabases(t *testing.T) {
	const databases = 50
	minSupports := []int{2, 3, 5, 9}
	for seed := uint64(1); seed <= databases; seed++ {
		db := randomDatabase(seed, 60+int(seed%5)*10, 10, 6)
		for _, minsup := range minSupports {
			want, err := mining.Apriori(db, minsup)
			if err != nil {
				t.Fatal(err)
			}
			wantMap := resultMap(want)

			eclat, err := mining.Eclat(db, minsup)
			if err != nil {
				t.Fatal(err)
			}
			diffResults(t, fmt.Sprintf("seed %d minsup %d: Eclat", seed, minsup), wantMap, resultMap(eclat))

			fp, err := mining.FPGrowth(db, minsup)
			if err != nil {
				t.Fatal(err)
			}
			diffResults(t, fmt.Sprintf("seed %d minsup %d: FPGrowth", seed, minsup), wantMap, resultMap(fp))

			for _, workers := range []int{2, 3, 8} {
				par, err := mining.EclatParallel(db, minsup, workers)
				if err != nil {
					t.Fatal(err)
				}
				diffResults(t, fmt.Sprintf("seed %d minsup %d: EclatParallel(%d)", seed, minsup, workers), wantMap, resultMap(par))
			}
			if t.Failed() {
				t.Fatalf("stopping after first disagreeing database (seed %d)", seed)
			}
		}
	}
}

// TestParallelEclatIsOrderIdenticalToSerial pins the stronger property that
// the parallel merge reproduces not just the same map but the exact same
// normalized Result ordering as serial Eclat.
func TestParallelEclatIsOrderIdenticalToSerial(t *testing.T) {
	for seed := uint64(1); seed <= 10; seed++ {
		db := randomDatabase(seed, 120, 12, 7)
		serial, err := mining.Eclat(db, 3)
		if err != nil {
			t.Fatal(err)
		}
		par, err := mining.EclatParallel(db, 3, 4)
		if err != nil {
			t.Fatal(err)
		}
		if serial.Len() != par.Len() {
			t.Fatalf("seed %d: %d vs %d itemsets", seed, serial.Len(), par.Len())
		}
		for i := range serial.Itemsets {
			a, b := serial.Itemsets[i], par.Itemsets[i]
			if !a.Set.Equal(b.Set) || a.Support != b.Support {
				t.Fatalf("seed %d: order diverges at %d: %v/%d vs %v/%d",
					seed, i, a.Set, a.Support, b.Set, b.Support)
			}
		}
	}
}

// TestMomentAgreesAcrossSlides streams random records through the Moment
// miner and, on a cadence of window slides, re-mines the materialized window
// with all three per-window miners, requiring exact agreement each time.
func TestMomentAgreesAcrossSlides(t *testing.T) {
	const (
		capacity = 40
		minsup   = 3
		records  = 140
	)
	for seed := uint64(1); seed <= 8; seed++ {
		src := rng.New(seed * 7919)
		zipf := rng.NewZipf(src, 9, 0.9)
		m := moment.New(capacity, minsup)
		for i := 0; i < records; i++ {
			length := 1 + src.Intn(5)
			items := make([]itemset.Item, 0, length)
			for j := 0; j < length; j++ {
				items = append(items, itemset.Item(zipf.Draw()))
			}
			m.Push(itemset.New(items...))
			if m.Len() < capacity || i%13 != 0 {
				continue
			}
			db := m.Database()
			want, err := mining.Apriori(db, minsup)
			if err != nil {
				t.Fatal(err)
			}
			wantMap := resultMap(want)
			diffResults(t, fmt.Sprintf("seed %d pos %d: Moment", seed, i), wantMap, resultMap(m.Frequent()))
			eclat, err := mining.EclatParallel(db, minsup, 3)
			if err != nil {
				t.Fatal(err)
			}
			diffResults(t, fmt.Sprintf("seed %d pos %d: EclatParallel", seed, i), wantMap, resultMap(eclat))
			fp, err := mining.FPGrowth(db, minsup)
			if err != nil {
				t.Fatal(err)
			}
			diffResults(t, fmt.Sprintf("seed %d pos %d: FPGrowth", seed, i), wantMap, resultMap(fp))
			if t.Failed() {
				t.Fatalf("stopping after first disagreeing window (seed %d, position %d)", seed, i)
			}
		}
	}
}

// TestEclatParallelValidates pins the argument contract shared with the
// serial entry points.
func TestEclatParallelValidates(t *testing.T) {
	if _, err := mining.EclatParallel(nil, 2, 4); err == nil {
		t.Error("nil database accepted")
	}
	db := randomDatabase(1, 20, 6, 4)
	if _, err := mining.EclatParallel(db, 0, 4); err == nil {
		t.Error("zero support accepted")
	}
	if res, err := mining.EclatParallel(db, 2, 0); err != nil || res == nil {
		t.Errorf("workers=0 (GOMAXPROCS default) rejected: %v", err)
	}
}
