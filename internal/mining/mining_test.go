package mining

import (
	"testing"
	"testing/quick"

	"repro/internal/itemset"
	"repro/internal/paperex"
	"repro/internal/rng"
)

// bruteForce mines by definition: enumerate all subsets of all records and
// count support by scanning. Exponential, only for tiny fixtures.
func bruteForce(db *itemset.Database, minSupport int) *Result {
	seen := map[string]itemset.Itemset{}
	for _, rec := range db.Records() {
		rec.Subsets(func(sub itemset.Itemset) bool {
			if !sub.Empty() {
				seen[sub.Key()] = sub
			}
			return true
		})
	}
	var out []FrequentItemset
	for _, s := range seen {
		if sup := db.Support(s); sup >= minSupport {
			out = append(out, FrequentItemset{s, sup})
		}
	}
	return NewResult(minSupport, out)
}

func sameResult(t *testing.T, got, want *Result, label string) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("%s: %d frequent itemsets, want %d", label, got.Len(), want.Len())
	}
	for _, fi := range want.Itemsets {
		sup, ok := got.Support(fi.Set)
		if !ok {
			t.Fatalf("%s: missing frequent itemset %v", label, fi.Set)
		}
		if sup != fi.Support {
			t.Fatalf("%s: T(%v) = %d, want %d", label, fi.Set, sup, fi.Support)
		}
	}
}

func randomDB(src *rng.Source, records, universe, maxLen int) *itemset.Database {
	recs := make([]itemset.Itemset, records)
	for i := range recs {
		n := 1 + src.Intn(maxLen)
		items := make([]itemset.Item, 0, n)
		for j := 0; j < n; j++ {
			items = append(items, itemset.Item(src.Intn(universe)))
		}
		recs[i] = itemset.New(items...)
	}
	return itemset.NewDatabase(recs)
}

func TestAprioriOnPaperExample(t *testing.T) {
	db := paperex.Window12()
	res, err := Apriori(db, 5)
	if err != nil {
		t.Fatal(err)
	}
	// With C=5 in Ds(12,8): frequent are c(8), a(5), b(5)?, ac(5), bc(5)...
	// Ground truth from the fixture: a appears in r5..r9 = 5, b in r5,r6,r7,r10,r11 = 5,
	// d in r9,r11,r12 (+r4 not in window) = 3.
	for _, tc := range []struct {
		set  itemset.Itemset
		want int
	}{
		{itemset.New(paperex.C), 8},
		{itemset.New(paperex.A), 5},
		{itemset.New(paperex.B), 5},
		{itemset.New(paperex.A, paperex.C), 5},
		{itemset.New(paperex.B, paperex.C), 5},
	} {
		sup, ok := res.Support(tc.set)
		if !ok || sup != tc.want {
			t.Errorf("T(%v) = %d,%v want %d", tc.set, sup, ok, tc.want)
		}
	}
	if _, ok := res.Support(itemset.New(paperex.D)); ok {
		t.Error("d should be infrequent at C=5")
	}
	if _, ok := res.Support(itemset.New(paperex.A, paperex.B, paperex.C)); ok {
		t.Error("abc (support 3) should be infrequent at C=5")
	}
}

func TestAprioriMatchesBruteForce(t *testing.T) {
	src := rng.New(101)
	for trial := 0; trial < 30; trial++ {
		db := randomDB(src, 30, 8, 5)
		minSup := 1 + src.Intn(6)
		want := bruteForce(db, minSup)
		got, err := Apriori(db, minSup)
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, got, want, "apriori")
	}
}

func TestEclatMatchesApriori(t *testing.T) {
	src := rng.New(202)
	for trial := 0; trial < 30; trial++ {
		db := randomDB(src, 60, 12, 6)
		minSup := 2 + src.Intn(8)
		want, err := Apriori(db, minSup)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Eclat(db, minSup)
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, got, want, "eclat")
	}
}

func TestEclatMatchesAprioriProperty(t *testing.T) {
	src := rng.New(303)
	f := func(seed uint32) bool {
		s := rng.New(uint64(seed) ^ src.Uint64())
		db := randomDB(s, 25, 6, 4)
		minSup := 1 + s.Intn(5)
		a, err1 := Apriori(db, minSup)
		e, err2 := Eclat(db, minSup)
		if err1 != nil || err2 != nil || a.Len() != e.Len() {
			return false
		}
		for _, fi := range a.Itemsets {
			sup, ok := e.Support(fi.Set)
			if !ok || sup != fi.Support {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestClosedFiltering(t *testing.T) {
	// Classic example: records {a,b} x3, {a} x1. T(a)=4, T(b)=3, T(ab)=3.
	// b is NOT closed (ab has equal support); a and ab are closed.
	db := itemset.NewDatabase([]itemset.Itemset{
		itemset.New(0, 1), itemset.New(0, 1), itemset.New(0, 1), itemset.New(0),
	})
	res, err := Apriori(db, 1)
	if err != nil {
		t.Fatal(err)
	}
	closed := res.Closed()
	if _, ok := closed.Support(itemset.New(1)); ok {
		t.Error("b should not be closed")
	}
	if _, ok := closed.Support(itemset.New(0)); !ok {
		t.Error("a should be closed")
	}
	if _, ok := closed.Support(itemset.New(0, 1)); !ok {
		t.Error("ab should be closed")
	}
	if closed.Len() != 2 {
		t.Errorf("closed count = %d, want 2", closed.Len())
	}
}

// Every frequent itemset's support must be recoverable from its closed
// superset set: the support of X equals the max support among closed
// supersets of X. This is the fundamental property that makes closed sets a
// lossless compression.
func TestClosedLossless(t *testing.T) {
	src := rng.New(404)
	for trial := 0; trial < 20; trial++ {
		db := randomDB(src, 40, 8, 5)
		minSup := 2 + src.Intn(4)
		all, err := Eclat(db, minSup)
		if err != nil {
			t.Fatal(err)
		}
		closed := all.Closed()
		for _, fi := range all.Itemsets {
			best := -1
			for _, cl := range closed.Itemsets {
				if cl.Set.ContainsAll(fi.Set) && cl.Support > best {
					best = cl.Support
				}
			}
			if best != fi.Support {
				t.Fatalf("support of %v not recoverable from closed sets: %d vs %d",
					fi.Set, best, fi.Support)
			}
		}
	}
}

func TestClosedIdempotent(t *testing.T) {
	src := rng.New(505)
	db := randomDB(src, 40, 8, 5)
	res, err := Eclat(db, 3)
	if err != nil {
		t.Fatal(err)
	}
	c1 := res.Closed()
	c2 := c1.Closed()
	sameResult(t, c2, c1, "closed idempotence")
}

func TestResultLookup(t *testing.T) {
	res := NewResult(2, []FrequentItemset{
		{itemset.New(1), 5},
		{itemset.New(2), 3},
		{itemset.New(1, 2), 3},
	})
	if sup, ok := res.Support(itemset.New(1)); !ok || sup != 5 {
		t.Errorf("Support({1}) = %d,%v", sup, ok)
	}
	if _, ok := res.Support(itemset.New(9)); ok {
		t.Error("lookup of absent itemset succeeded")
	}
}

func TestResultDeterministicOrder(t *testing.T) {
	sets := []FrequentItemset{
		{itemset.New(2), 3},
		{itemset.New(1), 5},
		{itemset.New(1, 2), 3},
		{itemset.New(0), 3},
	}
	r := NewResult(2, sets)
	// Descending support; ties by size then key: {1}:5, {0}:3, {2}:3, {1,2}:3.
	wantFirst := itemset.New(1)
	if !r.Itemsets[0].Set.Equal(wantFirst) {
		t.Errorf("first = %v", r.Itemsets[0].Set)
	}
	if !r.Itemsets[1].Set.Equal(itemset.New(0)) || !r.Itemsets[2].Set.Equal(itemset.New(2)) {
		t.Errorf("tie order wrong: %v, %v", r.Itemsets[1].Set, r.Itemsets[2].Set)
	}
	if !r.Itemsets[3].Set.Equal(itemset.New(1, 2)) {
		t.Errorf("last = %v", r.Itemsets[3].Set)
	}
}

func TestMiningErrors(t *testing.T) {
	if _, err := Apriori(nil, 1); err == nil {
		t.Error("Apriori(nil) did not error")
	}
	db := itemset.NewDatabase(nil)
	if _, err := Apriori(db, 0); err == nil {
		t.Error("Apriori with minSupport 0 did not error")
	}
	if _, err := Eclat(db, -1); err == nil {
		t.Error("Eclat with negative minSupport did not error")
	}
}

func TestMiningEmptyDatabase(t *testing.T) {
	db := itemset.NewDatabase(nil)
	for _, mine := range []func(*itemset.Database, int) (*Result, error){Apriori, Eclat} {
		res, err := mine(db, 1)
		if err != nil {
			t.Fatal(err)
		}
		if res.Len() != 0 {
			t.Errorf("mining empty database returned %d itemsets", res.Len())
		}
	}
}

func TestMinSupportOne(t *testing.T) {
	db := itemset.NewDatabase([]itemset.Itemset{itemset.New(0, 1, 2)})
	res, err := Eclat(db, 1)
	if err != nil {
		t.Fatal(err)
	}
	// All 7 non-empty subsets of {a,b,c} are frequent.
	if res.Len() != 7 {
		t.Errorf("got %d itemsets, want 7", res.Len())
	}
}

func BenchmarkAprioriWindow2000(b *testing.B) {
	src := rng.New(7)
	db := randomDB(src, 2000, 60, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Apriori(db, 50); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEclatWindow2000(b *testing.B) {
	src := rng.New(7)
	db := randomDB(src, 2000, 60, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Eclat(db, 50); err != nil {
			b.Fatal(err)
		}
	}
}

func TestFPGrowthMatchesApriori(t *testing.T) {
	src := rng.New(505)
	for trial := 0; trial < 30; trial++ {
		db := randomDB(src, 50, 10, 6)
		minSup := 1 + src.Intn(8)
		want, err := Apriori(db, minSup)
		if err != nil {
			t.Fatal(err)
		}
		got, err := FPGrowth(db, minSup)
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, got, want, "fpgrowth")
	}
}

func TestFPGrowthMatchesEclatProperty(t *testing.T) {
	f := func(seed uint32) bool {
		s := rng.New(uint64(seed))
		db := randomDB(s, 30, 7, 5)
		minSup := 1 + s.Intn(5)
		a, err1 := Eclat(db, minSup)
		g, err2 := FPGrowth(db, minSup)
		if err1 != nil || err2 != nil || a.Len() != g.Len() {
			return false
		}
		for _, fi := range a.Itemsets {
			sup, ok := g.Support(fi.Set)
			if !ok || sup != fi.Support {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestFPGrowthSinglePathShortcut(t *testing.T) {
	// All transactions identical: the FP-tree is one path.
	var recs []itemset.Itemset
	for i := 0; i < 7; i++ {
		recs = append(recs, itemset.New(1, 2, 3, 4))
	}
	db := itemset.NewDatabase(recs)
	res, err := FPGrowth(db, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 15 {
		t.Errorf("single-path output %d itemsets, want 2^4-1=15", res.Len())
	}
	for _, fi := range res.Itemsets {
		if fi.Support != 7 {
			t.Errorf("T(%v) = %d, want 7", fi.Set, fi.Support)
		}
	}
}

func TestFPGrowthEdgeCases(t *testing.T) {
	if _, err := FPGrowth(nil, 1); err == nil {
		t.Error("nil db accepted")
	}
	empty := itemset.NewDatabase(nil)
	res, err := FPGrowth(empty, 1)
	if err != nil || res.Len() != 0 {
		t.Errorf("empty db: %v, %d itemsets", err, res.Len())
	}
	// Threshold above everything.
	db := itemset.NewDatabase([]itemset.Itemset{itemset.New(1)})
	res, err = FPGrowth(db, 2)
	if err != nil || res.Len() != 0 {
		t.Errorf("unreachable threshold: %v, %d", err, res.Len())
	}
}

func TestFPGrowthOnPaperExample(t *testing.T) {
	db := paperex.Window12()
	res, err := FPGrowth(db, 4)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Eclat(db, 4)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, res, want, "fpgrowth paperex")
}

func BenchmarkFPGrowthWindow2000(b *testing.B) {
	src := rng.New(7)
	db := randomDB(src, 2000, 60, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FPGrowth(db, 50); err != nil {
			b.Fatal(err)
		}
	}
}

func TestClosedLCMMatchesClosedFilter(t *testing.T) {
	src := rng.New(606)
	for trial := 0; trial < 40; trial++ {
		db := randomDB(src, 40, 9, 6)
		minSup := 1 + src.Intn(8)
		all, err := Eclat(db, minSup)
		if err != nil {
			t.Fatal(err)
		}
		want := all.Closed()
		got, err := ClosedLCM(db, minSup)
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, got, want, "lcm")
	}
}

func TestClosedLCMProperty(t *testing.T) {
	f := func(seed uint32) bool {
		s := rng.New(uint64(seed))
		db := randomDB(s, 25, 6, 4)
		minSup := 1 + s.Intn(4)
		all, err1 := Apriori(db, minSup)
		got, err2 := ClosedLCM(db, minSup)
		if err1 != nil || err2 != nil {
			return false
		}
		want := all.Closed()
		if got.Len() != want.Len() {
			return false
		}
		for _, fi := range want.Itemsets {
			sup, ok := got.Support(fi.Set)
			if !ok || sup != fi.Support {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestClosedLCMFullDatabaseClosure(t *testing.T) {
	// Item 0 in every record: the root closure {0} (support N) must be
	// emitted.
	db := itemset.NewDatabase([]itemset.Itemset{
		itemset.New(0, 1), itemset.New(0, 2), itemset.New(0),
	})
	res, err := ClosedLCM(db, 1)
	if err != nil {
		t.Fatal(err)
	}
	if sup, ok := res.Support(itemset.New(0)); !ok || sup != 3 {
		t.Errorf("root closure {0}: %d,%v", sup, ok)
	}
	// {1} alone is NOT closed ({0,1} has equal support).
	if _, ok := res.Support(itemset.New(1)); ok {
		t.Error("{1} reported closed despite {0,1} having equal support")
	}
	if _, ok := res.Support(itemset.New(0, 1)); !ok {
		t.Error("{0,1} missing")
	}
}

func TestClosedLCMEmptyAndThreshold(t *testing.T) {
	empty := itemset.NewDatabase(nil)
	res, err := ClosedLCM(empty, 1)
	if err != nil || res.Len() != 0 {
		t.Errorf("empty db: %v %d", err, res.Len())
	}
	db := itemset.NewDatabase([]itemset.Itemset{itemset.New(1)})
	res, err = ClosedLCM(db, 5)
	if err != nil || res.Len() != 0 {
		t.Errorf("threshold above N: %v %d", err, res.Len())
	}
}

func BenchmarkClosedLCMWindow2000(b *testing.B) {
	src := rng.New(7)
	db := randomDB(src, 2000, 60, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ClosedLCM(db, 50); err != nil {
			b.Fatal(err)
		}
	}
}
