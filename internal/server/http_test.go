package server

// Control-plane HTTP surface tests: method discipline (405 + Allow), error
// status mapping, and a fuzz target over the create-request parser — the
// server's largest attacker-controlled input.

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"unicode/utf8"
)

// TestMethodNotAllowed: every route registered with a method pattern
// answers wrong-method hits with 405 and an Allow header, not a handler
// error or a 404.
func TestMethodNotAllowed(t *testing.T) {
	_, c := newTestServer(t, Options{})
	c.create(testConfig("m", 1))
	cases := []struct{ method, path string }{
		{"DELETE", "/v1/streams"},
		{"PUT", "/v1/streams/m"},
		{"GET", "/v1/streams/m/records"},
		{"DELETE", "/v1/streams/m/close"},
		{"GET", "/v1/streams/m/pause"},
		{"POST", "/v1/streams/m/windows"},
	}
	for _, tc := range cases {
		resp, _ := c.do(tc.method, tc.path, nil)
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("%s %s: %d, want 405", tc.method, tc.path, resp.StatusCode)
		}
		if resp.Header.Get("Allow") == "" {
			t.Errorf("%s %s: 405 without an Allow header", tc.method, tc.path)
		}
	}
}

// TestErrorStatusMapping: 404 for unknown streams, 400 for malformed
// create bodies, 409 for duplicates, 400 for bad query parameters.
func TestErrorStatusMapping(t *testing.T) {
	_, c := newTestServer(t, Options{})
	c.create(testConfig("dup", 1))

	for _, tc := range []struct {
		method, path, body string
		want               int
	}{
		{"GET", "/v1/streams/ghost", "", http.StatusNotFound},
		{"DELETE", "/v1/streams/ghost", "", http.StatusNotFound},
		{"POST", "/v1/streams/ghost/records", "1 2\n", http.StatusNotFound},
		{"POST", "/v1/streams/ghost/close", "", http.StatusNotFound},
		{"GET", "/v1/streams/ghost/windows", "", http.StatusNotFound},
		{"POST", "/v1/streams", "", http.StatusBadRequest},
		{"POST", "/v1/streams", "{not json", http.StatusBadRequest},
		{"POST", "/v1/streams", `{"id":"bad id!"}`, http.StatusBadRequest},
		{"POST", "/v1/streams", `{"id":"negdepth","queue_depth":-1}`, http.StatusBadRequest},
		{"POST", "/v1/streams", `{"id":"noscheme","window":10,"scheme":"nope"}`, http.StatusBadRequest},
		{"GET", "/v1/streams/dup/windows?from=abc", "", http.StatusBadRequest},
		{"GET", "/v1/streams/dup/trace", "", http.StatusNotFound}, // created without trace_windows
	} {
		var body *strings.Reader
		if tc.body != "" {
			body = strings.NewReader(tc.body)
		} else {
			body = strings.NewReader("")
		}
		resp, b := c.do(tc.method, tc.path, body)
		if resp.StatusCode != tc.want {
			t.Errorf("%s %s: %d %s, want %d", tc.method, tc.path, resp.StatusCode, b, tc.want)
		}
	}

	// Duplicate create is a conflict, and the error body is JSON.
	cfgJSON, _ := json.Marshal(testConfig("dup", 1))
	resp, body := c.do("POST", "/v1/streams", strings.NewReader(string(cfgJSON)))
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate create: %d %s, want 409", resp.StatusCode, body)
	}
	var eb errorBody
	if err := json.Unmarshal(body, &eb); err != nil || eb.Error == "" {
		t.Fatalf("409 body %q is not an error JSON", body)
	}

	// Oversized create bodies are refused, not truncated.
	huge := `{"id":"big","window":100,"scheme":"` + strings.Repeat("x", 1<<20) + `"}`
	if resp, _ = c.do("POST", "/v1/streams", strings.NewReader(huge)); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized create body: %d, want 400", resp.StatusCode)
	}
}

// FuzzCreateRequest fuzzes the create-stream request parser. The invariants:
// never panic, and any config it accepts satisfies its own validator (so a
// crafted body cannot smuggle an invalid id into checkpoint paths or URLs).
func FuzzCreateRequest(f *testing.F) {
	valid, _ := json.Marshal(testConfig("seed-stream", 1))
	f.Add(string(valid))
	f.Add("")
	f.Add("{}")
	f.Add("{not json")
	f.Add(`{"id":"x","window":-5}`)
	f.Add(`{"id":"../../etc/passwd","window":100}`)
	f.Add(`{"id":"a","queue_depth":-9223372036854775808}`)
	f.Add(`{"id":"` + strings.Repeat("a", 100) + `"}`)
	f.Add(`{"id":"ok","scheme":"hybrid","lambda":1e308,"window":1}`)
	f.Add("[1,2,3]")
	f.Add(`"just a string"`)
	f.Fuzz(func(t *testing.T, body string) {
		cfg, err := parseCreateRequest([]byte(body))
		if err != nil {
			return
		}
		if verr := cfg.validate(); verr != nil {
			t.Fatalf("parseCreateRequest accepted a config its validator rejects: %v\nbody: %q", verr, body)
		}
		if !utf8.ValidString(cfg.ID) || strings.ContainsAny(cfg.ID, "/\\\x00") {
			t.Fatalf("accepted id %q is unsafe as a path segment", cfg.ID)
		}
	})
}
