package server

// Per-stream state: the ingest queue and its RecordSource adapter, the
// pause gate, the replay buffer that makes in-process restarts
// deterministic, the published-window store, and the stream state machine.
// The Server (server.go) owns the registry and the supervision loop; the
// HTTP layer (http.go) translates requests into the methods here.

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/data"
	"repro/internal/itemset"
	"repro/internal/pipeline"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/wal"
)

// Stream states, as reported by the control plane.
const (
	// StateRunning: the supervised pipeline is live and consuming ingest.
	StateRunning = "running"
	// StatePaused: ingest is refused and the source gate is closed;
	// windows already inside the pipeline still finish.
	StatePaused = "paused"
	// StateQuarantined: the circuit breaker tripped — BreakerFailures
	// consecutive window failures without progress. The stream's state and
	// windows remain inspectable; ingest is refused; a control-plane
	// resume resets the breaker and restarts from the last checkpoint.
	StateQuarantined = "quarantined"
	// StateDone: the stream was closed and drained to its final window
	// (and final checkpoint when checkpointing is on).
	StateDone = "done"
	// StateFailed: the run ended in a non-restartable way (for example a
	// stream closed before its window ever filled).
	StateFailed = "failed"
)

// queueItem is one ingest unit: a well-formed record, or a malformed line
// carried as its *data.ParseError so the pipeline's bad-record budget sees
// it exactly where it occurred in the stream.
type queueItem struct {
	rec itemset.Itemset
	bad *data.ParseError
	// seq is the count of well-formed records up to and including this
	// item (a bad item carries the seq of the preceding good one) — the
	// coordinate the replay buffer is pruned and restarted by.
	seq uint64
	// line is the 1-based cumulative accepted-line index (good + bad) — the
	// WAL's coordinate and the ?offset= dedup protocol's unit.
	line uint64
	// size is the item's approximate in-memory footprint, charged against
	// the server-wide inflight-bytes admission cap.
	size int64
	// enq is the wall-clock acceptance stamp (unix nanos), set when the
	// item's request group became durable and visible; zero on replay items
	// and when metrics are off. Feeds the queue-age and end-to-end latency
	// histograms only — never the pipeline.
	enq int64
}

func itemSize(it queueItem) int64 {
	if it.bad != nil {
		return 48
	}
	return 16 + 8*int64(it.rec.Len())
}

// publishedWindow is one sanitized release retained for GET /windows: the
// stream position plus the rendered audit-format body (the same bytes
// cmd/butterfly -dump-dir writes).
type publishedWindow struct {
	Position int    `json:"position"`
	Body     string `json:"body"`
}

// stream is one hosted sanitized stream.
type stream struct {
	id  string
	cfg StreamConfig
	srv *Server

	// Pipeline plumbing, fixed at creation. vocab is shared between the
	// ingest handlers (interning) and the emit path (rendering); it is
	// internally synchronized.
	pipeCfg pipeline.Config
	vocab   *data.Vocabulary
	store   *checkpoint.Store
	lease   *checkpoint.Lease
	release sync.Once
	tracer  *trace.Tracer

	// Durable-acceptance plumbing (nil without a server data dir): the
	// per-stream ingest WAL and the append-only token journal it depends
	// on. Fixed at creation/adoption, before the stream is visible.
	wal      *wal.Log
	tokens   *wal.TokenLog
	closeDur sync.Once
	// walBase is the accepted-line count recovered from the WAL at
	// adoption: lines at or below it were never enqueued by this process
	// and restart replay must always re-read them from the log. Immutable
	// after adoption.
	walBase uint64

	// Ingest: ingestMu serializes enqueues with the close of the queue
	// (so a handler can never send on a closed channel) and makes
	// concurrent POSTs to one stream append in lock-acquisition order.
	ingestMu sync.Mutex
	queue    chan queueItem
	closed   bool   // ingest closed; queue drains to io.EOF
	seq      uint64 // good records accepted, under ingestMu
	lines    uint64 // lines accepted (good + bad), under ingestMu

	runCtx context.Context
	stop   context.CancelFunc

	// progress is set by emit whenever a window is delivered; the
	// supervisor uses it to reset the consecutive-failure breaker.
	progress atomic.Bool

	// Per-stream labeled instruments (see metrics.go).
	mRecords *telemetry.Counter
	mWindows *telemetry.Counter

	// Latency bookkeeping (metrics-only, observation-only).
	lastCkptAt atomic.Int64 // unix nanos of the newest persisted checkpoint generation
	lastEmit   atomic.Int64 // unix nanos of the newest emitted window
	e2eStamps  e2eRing      // acceptance stamps keyed by record seq, under st.mu

	mu           sync.Mutex
	state        string
	lastErr      string
	unpaused     chan struct{} // closed when not paused
	done         chan struct{} // closed when the current supervision session exits
	consumed     uint64        // good records pulled from the queue by the source
	consumedLine uint64        // newest accepted line consumed by the source
	badSeen      uint64        // malformed lines accepted into the queue
	retained     []queueItem   // consumed items not yet covered by a checkpoint (memory-only mode)
	replayLost   bool          // retained overflowed ReplayLimit; restart is impossible
	consecFails  int
	restarts     int
	lastCkpt     uint64 // Records position of the newest checkpoint saved
	prevCkptLine uint64 // line position of the checkpoint before the newest (WAL truncation horizon)
	windows      []publishedWindow
	winTrunc     bool // oldest windows were evicted past the history limit
}

// closedChan is the shared always-open pause gate.
var closedChan = func() chan struct{} { c := make(chan struct{}); close(c); return c }()

// e2eRingSize bounds the per-stream end-to-end stamp table. Windows publish
// on the seq of their last record, so the table only needs to span one
// publish interval plus the queue; seqs further apart than the ring simply
// lose their exemplar (the histogram skips them, never mis-measures).
const e2eRingSize = 4096

// e2eRing maps record seq → acceptance stamp (unix nanos) for the most
// recent e2eRingSize good records. Guarded by the stream's st.mu.
type e2eRing struct {
	seq [e2eRingSize]uint64
	at  [e2eRingSize]int64
}

func (r *e2eRing) put(seq uint64, at int64) {
	i := seq % e2eRingSize
	r.seq[i], r.at[i] = seq, at
}

// take returns and clears the stamp for seq, so a window re-published after
// a restart cannot observe a stale acceptance time twice.
func (r *e2eRing) take(seq uint64) (int64, bool) {
	i := seq % e2eRingSize
	if r.seq[i] != seq || r.at[i] == 0 {
		return 0, false
	}
	at := r.at[i]
	r.seq[i], r.at[i] = 0, 0
	return at, true
}

// ---- state machine ----

func (st *stream) setState(s string, lastErr error) {
	st.mu.Lock()
	prev := st.state
	st.state = s
	if lastErr != nil {
		st.lastErr = lastErr.Error()
	}
	st.mu.Unlock()
	if prev != s {
		st.srv.metrics.moveState(prev, s)
	}
}

func (st *stream) currentState() string {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.state
}

// pause closes the source gate. Only a running stream can pause.
func (st *stream) pause() error {
	st.mu.Lock()
	if st.state != StateRunning {
		s := st.state
		st.mu.Unlock()
		return fmt.Errorf("stream is %s, not %s", s, StateRunning)
	}
	st.state = StatePaused
	st.unpaused = make(chan struct{})
	st.mu.Unlock()
	st.srv.metrics.moveState(StateRunning, StatePaused)
	return nil
}

// unpause reopens the source gate (idempotent; used by resume and drain).
func (st *stream) unpause() {
	st.mu.Lock()
	wasPaused := st.state == StatePaused
	if wasPaused {
		st.state = StateRunning
	}
	ch := st.unpaused
	st.unpaused = closedChan
	st.mu.Unlock()
	if ch != closedChan {
		select {
		case <-ch:
		default:
			close(ch)
		}
	}
	if wasPaused {
		st.srv.metrics.moveState(StatePaused, StateRunning)
	}
}

// gate returns the channel a source read must wait on; it is closed
// whenever the stream is not paused.
func (st *stream) gate() <-chan struct{} {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.unpaused
}

// runDone returns the channel closed when the current supervision session
// exits (quarantine, done, failed, or stop).
func (st *stream) runDone() <-chan struct{} {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.done
}

// ---- ingest ----

// errStreamClosed / friends classify ingest rejections for the HTTP layer.
var (
	errStreamClosed      = fmt.Errorf("stream ingest is closed")
	errStreamPaused      = fmt.Errorf("stream is paused")
	errStreamQuarantined = fmt.Errorf("stream is quarantined")
	errBackpressure      = fmt.Errorf("ingest queue full")
	errOverload          = fmt.Errorf("server inflight-bytes cap reached")
	errOffsetGap         = fmt.Errorf("ingest offset beyond accepted lines")
	errDurability        = fmt.Errorf("ingest durability sync failed")
)

// lineGuard releases bytes from an ingest body only up to the last '\n'
// seen, holding back the trailing partial line. On clean EOF the held tail
// is the client's final line and is flushed; when the body errors mid-read
// (dropped connection, truncated upload) the tail is discarded — a record
// cut off by the failure must never be committed, because the client
// retries from its accepted offset with the complete line.
type lineGuard struct {
	r       io.Reader
	chunk   []byte
	pending []byte // bytes after the last delivered '\n'
	out     []byte // complete lines ready to deliver
	err     error  // terminal: io.EOF or the body error
}

func (g *lineGuard) Read(p []byte) (int, error) {
	for len(g.out) == 0 {
		if g.err != nil {
			return 0, g.err
		}
		if g.chunk == nil {
			g.chunk = make([]byte, 32*1024)
		}
		n, err := g.r.Read(g.chunk)
		g.pending = append(g.pending, g.chunk[:n]...)
		if i := bytes.LastIndexByte(g.pending, '\n'); i >= 0 {
			g.out = append(g.out, g.pending[:i+1]...)
			g.pending = g.pending[i+1:]
		}
		switch {
		case err == io.EOF:
			g.out = append(g.out, g.pending...)
			g.pending = nil
			g.err = io.EOF
		case err != nil:
			g.pending = nil
			g.err = err
		}
	}
	n := copy(p, g.out)
	g.out = g.out[n:]
	return n, nil
}

// acceptedLines returns the stream's cumulative accepted-line count — the
// offset a well-behaved client should resume from. Reported with every
// ingest response so a client whose acked count fell behind the stream
// (recovery adopted synced-but-unacknowledged frames from a torn group)
// can fast-forward instead of re-sending lines that will only be skipped.
func (st *stream) acceptedLines() uint64 {
	st.ingestMu.Lock()
	defer st.ingestMu.Unlock()
	return st.lines
}

// ingest parses the request body incrementally (one transaction per line)
// and accepts records until the body ends, the per-stream queue fills
// (backpressure), or the server-wide inflight cap is hit (overload). It
// returns how many lines were accepted (good + bad); the caller maps err
// to 429/503/4xx. Partial acceptance is the contract: the client retries
// from its accepted offset.
//
// offset, when >= 0, is the client's count of lines it knows the stream
// accepted: the stream skips the overlap (already-accepted lines re-sent
// after a lost response), making retries idempotent. An offset ahead of
// the stream is a gap — records the client believes accepted that the
// stream never saw — and is refused with errOffsetGap.
//
// With a WAL, acceptance is durable acceptance: records stage in memory,
// the request's whole group is fsynced (token journal first — WAL frames
// reference its ids — then the frames), and only then do the records
// become visible to the pipeline and countable in the response. A group
// whose sync fails is unwound as if it never arrived, and the client
// re-sends it.
func (st *stream) ingest(body io.Reader, offset int64) (accepted int, bad int, err error) {
	st.ingestMu.Lock()
	defer st.ingestMu.Unlock()
	switch {
	case st.closed:
		return 0, 0, errStreamClosed
	}
	switch st.currentState() {
	case StatePaused:
		return 0, 0, errStreamPaused
	case StateQuarantined:
		return 0, 0, errStreamQuarantined
	case StateFailed:
		return 0, 0, errStreamClosed
	}
	var skip uint64
	if offset >= 0 {
		if o := uint64(offset); o > st.lines {
			return 0, 0, fmt.Errorf("%w: offset %d, stream has accepted %d lines",
				errOffsetGap, offset, st.lines)
		} else {
			skip = st.lines - o
		}
	}
	lines0, seq0 := st.lines, st.seq
	var (
		staged      []queueItem
		stagedBytes int64
		badStaged   uint64
	)
	// Request-scoped observability (strictly observation-only): a root span
	// per ingest request with aggregated parse / wal.append children, plus
	// the request-latency histogram. rw is nil when tracing is off and every
	// timing read is gated, so the disabled path costs one pointer test.
	rw := st.tracer.StartRoot(trace.KindIngest)
	var (
		reqStart   time.Time
		parseStart time.Time
		parseDur   time.Duration
		walStart   time.Time
		walDur     time.Duration
	)
	if rw != nil || st.srv.metrics != nil {
		reqStart = time.Now()
	}
	tr := data.NewTransactionReader(&lineGuard{r: body}, st.vocab)
parse:
	for {
		var (
			rec  itemset.Itemset
			rerr error
		)
		if rw != nil {
			t0 := time.Now()
			if parseStart.IsZero() {
				parseStart = t0
			}
			rec, rerr = tr.Next()
			parseDur += time.Since(t0)
		} else {
			rec, rerr = tr.Next()
		}
		var item queueItem
		switch {
		case rerr == io.EOF:
			break parse
		case rerr == nil:
			if skip > 0 {
				skip--
				continue
			}
			item = queueItem{rec: rec, seq: st.seq + 1, line: st.lines + 1}
		default:
			pe, ok := rerr.(*data.ParseError)
			if !ok {
				// The body itself failed mid-read (truncated upload, dropped
				// client): everything staged so far stays accepted.
				err = fmt.Errorf("reading ingest body: %w", rerr)
				break parse
			}
			if skip > 0 {
				skip--
				continue
			}
			// Re-home the line number onto the stream's cumulative
			// accepted-line space (the WAL's coordinate) for the audit trail.
			item = queueItem{
				bad:  &data.ParseError{Line: int(st.lines) + 1, Token: pe.Token, Err: pe.Err},
				seq:  st.seq,
				line: st.lines + 1,
			}
		}
		item.size = itemSize(item)
		if st.srv.inflight.Load()+stagedBytes+item.size > st.srv.opts.MaxInflightBytes {
			err = errOverload
			break parse
		}
		// Reserve queue capacity up front: this goroutine is the only
		// sender, so len can only shrink and the post-sync flush below can
		// never block.
		if len(st.queue)+len(staged) >= cap(st.queue) {
			err = errBackpressure
			break parse
		}
		if st.wal != nil {
			var t0 time.Time
			if rw != nil {
				t0 = time.Now()
				if walStart.IsZero() {
					walStart = t0
				}
			}
			werr := st.wal.Append(wal.Record{Line: item.line, Seq: item.seq, Rec: item.rec, Bad: item.bad})
			if rw != nil {
				walDur += time.Since(t0)
			}
			if werr != nil {
				err = fmt.Errorf("%w: %v", errDurability, werr)
				break parse
			}
		}
		staged = append(staged, item)
		stagedBytes += item.size
		if item.bad != nil {
			badStaged++
		} else {
			st.seq++
		}
		st.lines++
	}
	if len(staged) == 0 {
		return 0, 0, err
	}
	// Durability barrier: nothing below is acknowledged or handed to the
	// pipeline before the group's fsyncs return.
	syncStart := reqStart
	if rw != nil {
		syncStart = time.Now()
	}
	if serr := st.syncDurable(); serr != nil {
		// Unwind the acceptance: the staged lines never reached the disk or
		// the pipeline, so the counters must not claim them — the client
		// re-sends from its own offset and the dedup stays exact.
		st.lines, st.seq = lines0, seq0
		return 0, 0, fmt.Errorf("%w: %v", errDurability, serr)
	}
	if rw != nil && st.wal != nil {
		rw.Add(trace.KindWALFsync, syncStart, time.Since(syncStart))
	}
	// Visibility: charge the admission accounting and hand the group to
	// the pipeline. Capacity was reserved during staging, so these sends
	// cannot block.
	var (
		enqAt    int64
		enqStart time.Time
	)
	if st.srv.metrics != nil || rw != nil {
		enqStart = time.Now()
		enqAt = enqStart.UnixNano()
	}
	for _, it := range staged {
		it.enq = enqAt
		st.srv.addInflight(it.size)
		st.queue <- it
		if it.bad != nil {
			bad++
		} else {
			st.mRecords.Inc()
		}
		accepted++
	}
	if badStaged > 0 {
		st.mu.Lock()
		st.badSeen += badStaged
		st.mu.Unlock()
	}
	if rw != nil {
		rw.Add(trace.KindEnqueue, enqStart, time.Since(enqStart))
		rw.SetID(st.lines)
		if parseDur > 0 {
			rw.Add(trace.KindParse, parseStart, parseDur)
		}
		if walDur > 0 {
			rw.Add(trace.KindWALAppend, walStart, walDur)
		}
		rw.Attr(trace.AttrLines, int64(accepted))
		rw.Attr(trace.AttrRecords, int64(accepted-bad))
		rw.Attr(trace.AttrBadRecords, int64(bad))
		rw.Attr(trace.AttrQueueLen, int64(len(st.queue)))
		st.tracer.Commit(rw)
	}
	if st.srv.metrics != nil {
		st.srv.metrics.observeIngest(time.Since(reqStart))
	}
	return accepted, bad, err
}

// syncDurable fsyncs everything the current request accepted: newly
// interned vocabulary tokens first — so no durable WAL frame can ever
// reference an id the token journal does not cover — then the WAL group.
// Called with ingestMu held; a nil WAL makes it a no-op.
func (st *stream) syncDurable() error {
	if st.wal == nil {
		return nil
	}
	if n, total := st.tokens.Len(), st.vocab.Len(); total > n {
		toks := make([]string, 0, total-n)
		for i := n; i < total; i++ {
			toks = append(toks, st.vocab.Token(itemset.Item(i)))
		}
		st.tokens.Append(toks)
	}
	if err := st.tokens.Sync(); err != nil {
		return err
	}
	return st.wal.Sync()
}

// openDurable opens the stream's token journal and ingest WAL in dir,
// pre-interning recovered tokens so replayed WAL item ids resolve to the
// same strings they were written under. The returned report describes what
// WAL recovery found (always clean on a freshly-wiped create).
func (st *stream) openDurable(dir string, warnf func(string, ...any)) (wal.Report, error) {
	tlog, toks, err := wal.OpenTokens(dir, warnf)
	if err != nil {
		return wal.Report{}, fmt.Errorf("opening token journal: %w", err)
	}
	st.tokens = tlog
	for _, tok := range toks {
		st.vocab.ID(tok)
	}
	lg, rep, err := wal.Open(dir, wal.Options{
		SegmentBytes: st.srv.opts.WALSegmentBytes,
		Logf:         warnf,
		Metrics:      st.srv.opts.Registry,
		Stream:       st.id,
	})
	if err != nil {
		return wal.Report{}, fmt.Errorf("opening ingest wal: %w", err)
	}
	st.wal = lg
	if st.srv.opts.hookWAL != nil {
		st.srv.opts.hookWAL(st.id, lg)
	}
	return rep, nil
}

// closeIngest ends the stream: the queue drains to io.EOF, the pipeline
// publishes the final window and writes the final checkpoint. Idempotent.
func (st *stream) closeIngest() {
	st.ingestMu.Lock()
	defer st.ingestMu.Unlock()
	if !st.closed {
		st.closed = true
		close(st.queue)
	}
}

// drainQueue empties whatever ingest is still queued (delete path) and
// refunds the inflight-bytes accounting.
func (st *stream) drainQueue() {
	for {
		select {
		case it, ok := <-st.queue:
			if !ok {
				return
			}
			st.srv.addInflight(-it.size)
		default:
			return
		}
	}
}

// ---- source ----

// queueSource adapts the ingest queue to pipeline.RecordSource, replaying
// a synthetic skip prefix plus the retained tail first after a restart.
//
// The synth prefix exists because a resumed pipeline discards its first
// snapshot.Records well-formed records (they are already inside the
// restored window buffer); in-process the real records are gone — consumed
// and pruned — so the source synthesizes placeholders that the pipeline
// discards without ever pushing into the window.
//
// Each pipeline run gets its own queueSource scoped by ctx. RunContext can
// return from a failed run while the mine stage is still inside Next()
// (cancellation latency), so the supervisor must retire() the source — and
// wait for that in-flight read to land in the consumption accounting —
// before it reads the stream state to build the restart. Without the
// handshake a record dequeued by the dying run after buildRestart misses
// the replay buffer and is silently lost.
type queueSource struct {
	st     *stream
	ctx    context.Context
	synth  uint64
	replay []queueItem
	next   int

	mu      sync.Mutex
	dead    bool
	pending int
	settled chan struct{} // closed once dead with no pending Next
}

func newQueueSource(st *stream, ctx context.Context, synth uint64, replay []queueItem) *queueSource {
	return &queueSource{st: st, ctx: ctx, synth: synth, replay: replay,
		settled: make(chan struct{})}
}

// begin registers an in-flight Next call; it refuses once the source is
// retired so a straggling mine stage can never consume another record.
func (qs *queueSource) begin() bool {
	qs.mu.Lock()
	defer qs.mu.Unlock()
	if qs.dead {
		return false
	}
	qs.pending++
	return true
}

func (qs *queueSource) end() {
	qs.mu.Lock()
	defer qs.mu.Unlock()
	qs.pending--
	if qs.dead && qs.pending == 0 {
		close(qs.settled)
	}
}

// retire cancels the run context, marks the source dead, and blocks until
// any in-flight Next call has finished — after which the stream's consumed
// count and replay buffer are guaranteed to cover everything this run ever
// dequeued. cancel wakes a Next blocked on an empty queue; a Next that
// instead wins the race and dequeues one final record is waited for, and
// that record lands in the replay buffer rather than being lost.
func (qs *queueSource) retire(cancel context.CancelFunc) {
	cancel()
	qs.mu.Lock()
	if qs.dead {
		qs.mu.Unlock()
		<-qs.settled
		return
	}
	qs.dead = true
	if qs.pending == 0 {
		close(qs.settled)
	}
	qs.mu.Unlock()
	<-qs.settled
}

func (qs *queueSource) Next() (itemset.Itemset, error) {
	if !qs.begin() {
		return itemset.Itemset{}, context.Canceled
	}
	defer qs.end()
	st := qs.st
	for {
		select { // pause gate first: a paused stream delivers nothing new
		case <-st.gate():
		case <-qs.ctx.Done():
			return itemset.Itemset{}, qs.ctx.Err()
		}
		if qs.synth > 0 {
			qs.synth--
			return itemset.Itemset{}, nil
		}
		if qs.next < len(qs.replay) {
			it := qs.replay[qs.next]
			qs.next++
			if st.wal != nil {
				// WAL replay items after a process restart were never consumed
				// by this incarnation; the watermarks must advance here. (The
				// memory-only retained buffer accounted its items when they
				// were first consumed, so it changes nothing on replay.)
				st.noteReplayed(it)
			}
			if it.bad != nil {
				return itemset.Itemset{}, it.bad
			}
			return it.rec, nil
		}
		select {
		case it, ok := <-st.queue:
			if !ok {
				return itemset.Itemset{}, io.EOF
			}
			st.noteConsumed(it)
			if it.bad != nil {
				return itemset.Itemset{}, it.bad
			}
			return it.rec, nil
		case <-qs.ctx.Done():
			return itemset.Itemset{}, qs.ctx.Err()
		}
	}
}

// noteConsumed updates the consumption accounting for one freshly-dequeued
// item and, in memory-only mode, moves it into the retained replay buffer.
// In durable mode the WAL tail is the replay buffer and nothing is retained.
func (st *stream) noteConsumed(it queueItem) {
	st.srv.addInflight(-it.size)
	var now int64
	if m := st.srv.metrics; m != nil && it.enq > 0 {
		now = time.Now().UnixNano()
		m.observeQueueAge(time.Duration(now - it.enq))
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if it.bad == nil {
		st.consumed = it.seq
		if now > 0 {
			st.e2eStamps.put(it.seq, it.enq)
		}
	}
	if it.line > st.consumedLine {
		st.consumedLine = it.line
	}
	if st.wal != nil {
		return
	}
	if st.replayLost {
		return
	}
	if len(st.retained) >= st.srv.opts.ReplayLimit {
		// The window between checkpoints outgrew the replay budget; give
		// the memory back. A later restart attempt quarantines cleanly
		// instead of replaying a gap.
		st.retained = nil
		st.replayLost = true
		return
	}
	st.retained = append(st.retained, it)
}

// noteReplayed advances the consumption watermarks for an item delivered
// from a WAL replay list — with max semantics, because an in-process
// restart can replay items an earlier attempt already accounted.
func (st *stream) noteReplayed(it queueItem) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if it.bad == nil && it.seq > st.consumed {
		st.consumed = it.seq
	}
	if it.line > st.consumedLine {
		st.consumedLine = it.line
	}
}

// onCheckpointSave runs on every persisted checkpoint generation (wired to
// checkpoint.Store.OnSave): it advances the checkpoint watermarks, prunes
// WAL segments in durable mode, and prunes the retained replay buffer in
// memory-only mode.
//
// Only FULL snapshots move the WAL truncation floor. A delta frame is
// recoverable only by replaying its whole chain from the anchor full, so
// the records between the anchor and the chain tip must stay replayable —
// truncating up to a delta would strand the chain if its tail is later
// torn. Memory-only replay pruning has the same shape: the retained buffer
// must still cover everything after the newest FULL snapshot.
//
// The truncation additionally lags one full generation on purpose: restart
// loads the newest READABLE snapshot, and if the newest file is lost to bit
// rot the fallback generation still needs its WAL tail. The lag costs at
// most one compaction interval of extra segments.
func (st *stream) onCheckpointSave(sv checkpoint.Saved) {
	st.lastCkptAt.Store(time.Now().UnixNano())
	st.mu.Lock()
	st.lastCkpt = sv.Records
	if !sv.Full {
		st.mu.Unlock()
		return
	}
	horizon := st.prevCkptLine
	st.prevCkptLine = sv.Records + sv.BadRecords
	if st.wal == nil {
		i := 0
		for i < len(st.retained) && st.retained[i].seq <= sv.Records {
			i++
		}
		if i > 0 {
			st.retained = append(st.retained[:0], st.retained[i:]...)
		}
		// A fresh full checkpoint re-arms replayability: everything after
		// it is retained from here on.
		if st.replayLost && len(st.retained) == 0 && st.consumed == sv.Records {
			st.replayLost = false
		}
		st.mu.Unlock()
		return
	}
	st.mu.Unlock()
	if err := st.wal.TruncateBefore(horizon); err != nil {
		st.srv.log.Warn("wal truncation failed", "stream", st.id, "error", err.Error())
	}
}

// buildRestart assembles the deterministic-restart inputs: the resume
// snapshot (nil for a from-scratch restart), the synthetic skip prefix,
// and the tail to replay — read back from the WAL in durable mode, or
// taken from the retained buffer in memory-only mode (verifying it
// actually covers the gap between the snapshot and the consumption point).
func (st *stream) buildRestart() (snap *checkpoint.Snapshot, synth uint64, replay []queueItem, err error) {
	if st.store != nil {
		snap, _, err = st.store.Latest()
		if err != nil {
			return nil, 0, nil, fmt.Errorf("loading restart checkpoint: %w", err)
		}
	}
	var want uint64
	if snap != nil {
		want = snap.Records
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	consumed := st.consumed
	if st.wal != nil {
		// The replay bound: everything the pipeline may already have seen.
		// consumedLine covers this incarnation's consumption; walBase covers
		// lines recovered at adoption (never in this process's queue). Lines
		// past the bound are still queued and will arrive normally.
		bound := st.consumedLine
		if st.walBase > bound {
			bound = st.walBase
		}
		if consumed < want {
			// Crashed while still fast-forwarding a resume: re-present
			// everything consumed so far (the pipeline discards it again as
			// part of its own skip) and keep the snapshot.
			recs, terr := st.wal.Tail(0, bound)
			if terr != nil {
				return nil, 0, nil, fmt.Errorf("wal replay: %w", terr)
			}
			return snap, 0, walItems(recs), nil
		}
		var ckptLine uint64
		if snap != nil {
			ckptLine = snap.Records + snap.BadRecords
		}
		recs, terr := st.wal.Tail(ckptLine, bound)
		if terr != nil {
			return nil, 0, nil, fmt.Errorf("wal replay: %w", terr)
		}
		return snap, want, walItems(recs), nil
	}
	if st.replayLost {
		return nil, 0, nil, fmt.Errorf("replay buffer overflowed ReplayLimit between checkpoints; cannot restart deterministically")
	}
	if consumed < want {
		// Crashed while still fast-forwarding a process-restart resume:
		// re-present everything consumed so far (the pipeline discards it
		// again as part of its own skip) and keep the snapshot.
		synth = 0
		replay = append([]queueItem(nil), st.retained...)
		if gap := verifyReplay(replay, 0, consumed); gap != "" {
			return nil, 0, nil, fmt.Errorf("replay buffer %s", gap)
		}
		return snap, synth, replay, nil
	}
	synth = want
	for _, it := range st.retained {
		if it.seq > want {
			replay = append(replay, it)
		}
	}
	if gap := verifyReplay(replay, want, consumed); gap != "" {
		return nil, 0, nil, fmt.Errorf("replay buffer %s", gap)
	}
	return snap, synth, replay, nil
}

// walItems converts WAL records into replay queue items. Their inflight
// bytes were refunded when first consumed (or never charged, for lines
// recovered at boot), so size stays zero.
func walItems(recs []wal.Record) []queueItem {
	items := make([]queueItem, 0, len(recs))
	for _, r := range recs {
		items = append(items, queueItem{rec: r.Rec, bad: r.Bad, seq: r.Seq, line: r.Line})
	}
	return items
}

// verifyReplay checks that the good records in replay are exactly
// from+1 .. to, in order; it returns a description of the gap otherwise.
func verifyReplay(replay []queueItem, from, to uint64) string {
	next := from + 1
	for _, it := range replay {
		if it.bad != nil {
			continue
		}
		if it.seq != next {
			return fmt.Sprintf("skips from record %d to %d", next-1, it.seq)
		}
		next++
	}
	if next != to+1 {
		return fmt.Sprintf("ends at record %d, need %d", next-1, to)
	}
	return ""
}

// ---- emit ----

// emit renders one published window into the audit format and stores it
// for GET /windows. Re-published windows after a restart overwrite their
// position idempotently (consistent republication guarantees the bytes
// match anyway).
func (st *stream) emit(w pipeline.Window) error {
	entries := make([]data.PublishedEntry, 0, len(w.Output.Items))
	for _, it := range w.Output.Items {
		entries = append(entries, data.PublishedEntry{Support: it.Support, Set: it.Set})
	}
	var buf bytes.Buffer
	if err := data.WritePublished(&buf, entries, st.vocab); err != nil {
		return fmt.Errorf("rendering window at position %d: %w", w.Position, err)
	}
	st.storeWindow(w.Position, buf.String())
	st.progress.Store(true)
	st.mWindows.Inc()
	if m := st.srv.metrics; m != nil {
		now := time.Now().UnixNano()
		st.lastEmit.Store(now)
		st.mu.Lock()
		at, ok := st.e2eStamps.take(uint64(w.Position))
		st.mu.Unlock()
		if ok && now > at {
			m.observeE2E(st.id, uint64(w.Position), float64(now-at)/1e9)
		}
	}
	return nil
}

// checkpointAge returns seconds since the stream's last persisted
// checkpoint generation (0 before the first save) — the pull-style
// staleness gauge and the status JSON read it.
func (st *stream) checkpointAge() float64 {
	at := st.lastCkptAt.Load()
	if at == 0 {
		return 0
	}
	return time.Since(time.Unix(0, at)).Seconds()
}

func (st *stream) storeWindow(pos int, body string) {
	st.mu.Lock()
	defer st.mu.Unlock()
	ws := st.windows
	i := sort.Search(len(ws), func(i int) bool { return ws[i].Position >= pos })
	if i < len(ws) && ws[i].Position == pos {
		ws[i].Body = body
		return
	}
	ws = append(ws, publishedWindow{})
	copy(ws[i+1:], ws[i:])
	ws[i] = publishedWindow{Position: pos, Body: body}
	if limit := st.cfg.History; limit > 0 && len(ws) > limit {
		n := copy(ws, ws[len(ws)-limit:])
		ws = ws[:n]
		st.winTrunc = true
	}
	st.windows = ws
}

// windowsFrom returns the retained windows with Position >= from, plus
// whether older windows were evicted past the history limit.
func (st *stream) windowsFrom(from int) ([]publishedWindow, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	i := sort.Search(len(st.windows), func(i int) bool { return st.windows[i].Position >= from })
	out := make([]publishedWindow, len(st.windows)-i)
	copy(out, st.windows[i:])
	return out, st.winTrunc
}

// closeDurable closes the stream's WAL and token journal exactly once.
// Close drops any unsynced buffered frames — exactly what a crash would —
// so the abort path can use it as a crash simulation.
func (st *stream) closeDurable() {
	st.closeDur.Do(func() {
		if st.wal != nil {
			if err := st.wal.Close(); err != nil {
				st.srv.log.Warn("wal close failed", "stream", st.id, "error", err.Error())
			}
		}
		if st.tokens != nil {
			if err := st.tokens.Close(); err != nil {
				st.srv.log.Warn("token journal close failed", "stream", st.id, "error", err.Error())
			}
		}
		if st.store != nil {
			// Releases the open delta-chain segment descriptor; every
			// appended frame is already fsynced, so nothing is lost.
			if err := st.store.Close(); err != nil {
				st.srv.log.Warn("checkpoint store close failed", "stream", st.id, "error", err.Error())
			}
		}
	})
}

// releaseLease releases the stream's checkpoint lease exactly once.
func (st *stream) releaseLease() {
	st.release.Do(func() {
		if st.lease != nil {
			if err := st.lease.Release(); err != nil {
				st.srv.log.Warn("lease release failed", "stream", st.id, "error", err.Error())
			}
		}
	})
}

// status snapshots the stream for the control plane.
func (st *stream) status() StreamStatus {
	// WAL segment count takes the wal's own lock; read it before st.mu.
	var segs int
	if st.wal != nil {
		segs = st.wal.SegmentCount()
	}
	ckptAge := st.checkpointAge()
	st.mu.Lock()
	defer st.mu.Unlock()
	// A stream parked at adoption because its scheme no longer parses has
	// no pipeline config; fall back to the configured name.
	scheme := st.cfg.Scheme
	if st.pipeCfg.Scheme != nil {
		scheme = st.pipeCfg.Scheme.Name()
	}
	return StreamStatus{
		ID:                  st.id,
		State:               st.state,
		LastError:           st.lastErr,
		RecordsAccepted:     st.seqSnapshot(),
		RecordsConsumed:     st.consumed,
		BadRecords:          st.badSeen,
		QueueLen:            len(st.queue),
		QueueCap:            cap(st.queue),
		WindowsRetained:     len(st.windows),
		Restarts:            st.restarts,
		ConsecutiveFailures: st.consecFails,
		CheckpointRecords:   st.lastCkpt,
		Workers:             st.cfg.Workers,
		Scheme:              scheme,
		AcceptedLines:       st.lines,
		Durable:             st.wal != nil,
		ReplayLost:          st.replayLost,
		WALSegments:         segs,
		LastCheckpointAge:   ckptAge,
	}
}

// seqSnapshot reads the accepted-records counter without taking ingestMu
// (st.mu is already held by status); status is diagnostic, so a slightly
// stale value is fine.
func (st *stream) seqSnapshot() uint64 { return st.seq }

// finalState reports the state and last error after a supervision session
// has ended (the drain report's source of truth).
func (st *stream) finalState() (state, lastErr string) {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.state, st.lastErr
}
