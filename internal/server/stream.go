package server

// Per-stream state: the ingest queue and its RecordSource adapter, the
// pause gate, the replay buffer that makes in-process restarts
// deterministic, the published-window store, and the stream state machine.
// The Server (server.go) owns the registry and the supervision loop; the
// HTTP layer (http.go) translates requests into the methods here.

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/checkpoint"
	"repro/internal/data"
	"repro/internal/itemset"
	"repro/internal/pipeline"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Stream states, as reported by the control plane.
const (
	// StateRunning: the supervised pipeline is live and consuming ingest.
	StateRunning = "running"
	// StatePaused: ingest is refused and the source gate is closed;
	// windows already inside the pipeline still finish.
	StatePaused = "paused"
	// StateQuarantined: the circuit breaker tripped — BreakerFailures
	// consecutive window failures without progress. The stream's state and
	// windows remain inspectable; ingest is refused; a control-plane
	// resume resets the breaker and restarts from the last checkpoint.
	StateQuarantined = "quarantined"
	// StateDone: the stream was closed and drained to its final window
	// (and final checkpoint when checkpointing is on).
	StateDone = "done"
	// StateFailed: the run ended in a non-restartable way (for example a
	// stream closed before its window ever filled).
	StateFailed = "failed"
)

// queueItem is one ingest unit: a well-formed record, or a malformed line
// carried as its *data.ParseError so the pipeline's bad-record budget sees
// it exactly where it occurred in the stream.
type queueItem struct {
	rec itemset.Itemset
	bad *data.ParseError
	// seq is the count of well-formed records up to and including this
	// item (a bad item carries the seq of the preceding good one) — the
	// coordinate the replay buffer is pruned and restarted by.
	seq uint64
	// size is the item's approximate in-memory footprint, charged against
	// the server-wide inflight-bytes admission cap.
	size int64
}

func itemSize(it queueItem) int64 {
	if it.bad != nil {
		return 48
	}
	return 16 + 8*int64(it.rec.Len())
}

// publishedWindow is one sanitized release retained for GET /windows: the
// stream position plus the rendered audit-format body (the same bytes
// cmd/butterfly -dump-dir writes).
type publishedWindow struct {
	Position int    `json:"position"`
	Body     string `json:"body"`
}

// stream is one hosted sanitized stream.
type stream struct {
	id  string
	cfg StreamConfig
	srv *Server

	// Pipeline plumbing, fixed at creation. vocab is shared between the
	// ingest handlers (interning) and the emit path (rendering); it is
	// internally synchronized.
	pipeCfg pipeline.Config
	vocab   *data.Vocabulary
	store   *checkpoint.Store
	lease   *checkpoint.Lease
	release sync.Once
	tracer  *trace.Tracer

	// Ingest: ingestMu serializes enqueues with the close of the queue
	// (so a handler can never send on a closed channel) and makes
	// concurrent POSTs to one stream append in lock-acquisition order.
	ingestMu sync.Mutex
	queue    chan queueItem
	closed   bool   // ingest closed; queue drains to io.EOF
	seq      uint64 // good records accepted (enqueued), under ingestMu
	lineBase int    // lines accepted so far, offsets per-request ParseError line numbers

	runCtx context.Context
	stop   context.CancelFunc

	// progress is set by emit whenever a window is delivered; the
	// supervisor uses it to reset the consecutive-failure breaker.
	progress atomic.Bool

	// Per-stream labeled instruments (see metrics.go).
	mRecords *telemetry.Counter
	mWindows *telemetry.Counter

	mu          sync.Mutex
	state       string
	lastErr     string
	unpaused    chan struct{} // closed when not paused
	done        chan struct{} // closed when the current supervision session exits
	consumed    uint64        // good records pulled from the queue by the source
	badSeen     uint64        // malformed lines accepted into the queue
	retained    []queueItem   // consumed items not yet covered by a checkpoint
	replayLost  bool          // retained overflowed ReplayLimit; restart is impossible
	consecFails int
	restarts    int
	lastCkpt    uint64 // Records position of the newest checkpoint saved
	windows     []publishedWindow
	winTrunc    bool // oldest windows were evicted past the history limit
}

// closedChan is the shared always-open pause gate.
var closedChan = func() chan struct{} { c := make(chan struct{}); close(c); return c }()

// ---- state machine ----

func (st *stream) setState(s string, lastErr error) {
	st.mu.Lock()
	prev := st.state
	st.state = s
	if lastErr != nil {
		st.lastErr = lastErr.Error()
	}
	st.mu.Unlock()
	if prev != s {
		st.srv.metrics.moveState(prev, s)
	}
}

func (st *stream) currentState() string {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.state
}

// pause closes the source gate. Only a running stream can pause.
func (st *stream) pause() error {
	st.mu.Lock()
	if st.state != StateRunning {
		s := st.state
		st.mu.Unlock()
		return fmt.Errorf("stream is %s, not %s", s, StateRunning)
	}
	st.state = StatePaused
	st.unpaused = make(chan struct{})
	st.mu.Unlock()
	st.srv.metrics.moveState(StateRunning, StatePaused)
	return nil
}

// unpause reopens the source gate (idempotent; used by resume and drain).
func (st *stream) unpause() {
	st.mu.Lock()
	wasPaused := st.state == StatePaused
	if wasPaused {
		st.state = StateRunning
	}
	ch := st.unpaused
	st.unpaused = closedChan
	st.mu.Unlock()
	if ch != closedChan {
		select {
		case <-ch:
		default:
			close(ch)
		}
	}
	if wasPaused {
		st.srv.metrics.moveState(StatePaused, StateRunning)
	}
}

// gate returns the channel a source read must wait on; it is closed
// whenever the stream is not paused.
func (st *stream) gate() <-chan struct{} {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.unpaused
}

// runDone returns the channel closed when the current supervision session
// exits (quarantine, done, failed, or stop).
func (st *stream) runDone() <-chan struct{} {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.done
}

// ---- ingest ----

// errStreamClosed / friends classify ingest rejections for the HTTP layer.
var (
	errStreamClosed      = fmt.Errorf("stream ingest is closed")
	errStreamPaused      = fmt.Errorf("stream is paused")
	errStreamQuarantined = fmt.Errorf("stream is quarantined")
	errBackpressure      = fmt.Errorf("ingest queue full")
	errOverload          = fmt.Errorf("server inflight-bytes cap reached")
)

// lineGuard releases bytes from an ingest body only up to the last '\n'
// seen, holding back the trailing partial line. On clean EOF the held tail
// is the client's final line and is flushed; when the body errors mid-read
// (dropped connection, truncated upload) the tail is discarded — a record
// cut off by the failure must never be committed, because the client
// retries from its accepted offset with the complete line.
type lineGuard struct {
	r       io.Reader
	chunk   []byte
	pending []byte // bytes after the last delivered '\n'
	out     []byte // complete lines ready to deliver
	err     error  // terminal: io.EOF or the body error
}

func (g *lineGuard) Read(p []byte) (int, error) {
	for len(g.out) == 0 {
		if g.err != nil {
			return 0, g.err
		}
		if g.chunk == nil {
			g.chunk = make([]byte, 32*1024)
		}
		n, err := g.r.Read(g.chunk)
		g.pending = append(g.pending, g.chunk[:n]...)
		if i := bytes.LastIndexByte(g.pending, '\n'); i >= 0 {
			g.out = append(g.out, g.pending[:i+1]...)
			g.pending = g.pending[i+1:]
		}
		switch {
		case err == io.EOF:
			g.out = append(g.out, g.pending...)
			g.pending = nil
			g.err = io.EOF
		case err != nil:
			g.pending = nil
			g.err = err
		}
	}
	n := copy(p, g.out)
	g.out = g.out[n:]
	return n, nil
}

// ingest parses the request body incrementally (one transaction per line)
// and enqueues records until the body ends, the per-stream queue fills
// (backpressure), or the server-wide inflight cap is hit (overload). It
// returns how many lines were accepted (good + bad); the caller maps err
// to 429/503/4xx. Partial acceptance is the contract: the client retries
// from its accepted offset.
func (st *stream) ingest(body io.Reader) (accepted int, bad int, err error) {
	st.ingestMu.Lock()
	defer st.ingestMu.Unlock()
	switch {
	case st.closed:
		return 0, 0, errStreamClosed
	}
	switch st.currentState() {
	case StatePaused:
		return 0, 0, errStreamPaused
	case StateQuarantined:
		return 0, 0, errStreamQuarantined
	case StateFailed:
		return 0, 0, errStreamClosed
	}
	tr := data.NewTransactionReader(&lineGuard{r: body}, st.vocab)
	for {
		rec, rerr := tr.Next()
		var item queueItem
		switch {
		case rerr == io.EOF:
			st.lineBase += tr.Line()
			return accepted, bad, nil
		case rerr == nil:
			item = queueItem{rec: rec, seq: st.seq + 1}
		default:
			if pe, ok := rerr.(*data.ParseError); ok {
				// Re-home the per-request line number onto the stream's
				// cumulative line space for the quarantine audit trail.
				item = queueItem{
					bad: &data.ParseError{Line: st.lineBase + pe.Line, Token: pe.Token, Err: pe.Err},
					seq: st.seq,
				}
				break
			}
			// The body itself failed mid-read (truncated upload, dropped
			// client): everything accepted so far stays accepted.
			st.lineBase += tr.Line()
			return accepted, bad, fmt.Errorf("reading ingest body: %w", rerr)
		}
		item.size = itemSize(item)
		if st.srv.inflight.Load()+item.size > st.srv.opts.MaxInflightBytes {
			st.lineBase += tr.Line()
			return accepted, bad, errOverload
		}
		select {
		case st.queue <- item:
			st.srv.addInflight(item.size)
			if item.bad != nil {
				bad++
				st.mu.Lock()
				st.badSeen++
				st.mu.Unlock()
			} else {
				st.seq++
				st.mRecords.Inc()
			}
			accepted++
		default:
			st.lineBase += tr.Line()
			return accepted, bad, errBackpressure
		}
	}
}

// closeIngest ends the stream: the queue drains to io.EOF, the pipeline
// publishes the final window and writes the final checkpoint. Idempotent.
func (st *stream) closeIngest() {
	st.ingestMu.Lock()
	defer st.ingestMu.Unlock()
	if !st.closed {
		st.closed = true
		close(st.queue)
	}
}

// drainQueue empties whatever ingest is still queued (delete path) and
// refunds the inflight-bytes accounting.
func (st *stream) drainQueue() {
	for {
		select {
		case it, ok := <-st.queue:
			if !ok {
				return
			}
			st.srv.addInflight(-it.size)
		default:
			return
		}
	}
}

// ---- source ----

// queueSource adapts the ingest queue to pipeline.RecordSource, replaying
// a synthetic skip prefix plus the retained tail first after a restart.
//
// The synth prefix exists because a resumed pipeline discards its first
// snapshot.Records well-formed records (they are already inside the
// restored window buffer); in-process the real records are gone — consumed
// and pruned — so the source synthesizes placeholders that the pipeline
// discards without ever pushing into the window.
//
// Each pipeline run gets its own queueSource scoped by ctx. RunContext can
// return from a failed run while the mine stage is still inside Next()
// (cancellation latency), so the supervisor must retire() the source — and
// wait for that in-flight read to land in the consumption accounting —
// before it reads the stream state to build the restart. Without the
// handshake a record dequeued by the dying run after buildRestart misses
// the replay buffer and is silently lost.
type queueSource struct {
	st     *stream
	ctx    context.Context
	synth  uint64
	replay []queueItem
	next   int

	mu      sync.Mutex
	dead    bool
	pending int
	settled chan struct{} // closed once dead with no pending Next
}

func newQueueSource(st *stream, ctx context.Context, synth uint64, replay []queueItem) *queueSource {
	return &queueSource{st: st, ctx: ctx, synth: synth, replay: replay,
		settled: make(chan struct{})}
}

// begin registers an in-flight Next call; it refuses once the source is
// retired so a straggling mine stage can never consume another record.
func (qs *queueSource) begin() bool {
	qs.mu.Lock()
	defer qs.mu.Unlock()
	if qs.dead {
		return false
	}
	qs.pending++
	return true
}

func (qs *queueSource) end() {
	qs.mu.Lock()
	defer qs.mu.Unlock()
	qs.pending--
	if qs.dead && qs.pending == 0 {
		close(qs.settled)
	}
}

// retire cancels the run context, marks the source dead, and blocks until
// any in-flight Next call has finished — after which the stream's consumed
// count and replay buffer are guaranteed to cover everything this run ever
// dequeued. cancel wakes a Next blocked on an empty queue; a Next that
// instead wins the race and dequeues one final record is waited for, and
// that record lands in the replay buffer rather than being lost.
func (qs *queueSource) retire(cancel context.CancelFunc) {
	cancel()
	qs.mu.Lock()
	if qs.dead {
		qs.mu.Unlock()
		<-qs.settled
		return
	}
	qs.dead = true
	if qs.pending == 0 {
		close(qs.settled)
	}
	qs.mu.Unlock()
	<-qs.settled
}

func (qs *queueSource) Next() (itemset.Itemset, error) {
	if !qs.begin() {
		return itemset.Itemset{}, context.Canceled
	}
	defer qs.end()
	st := qs.st
	for {
		select { // pause gate first: a paused stream delivers nothing new
		case <-st.gate():
		case <-qs.ctx.Done():
			return itemset.Itemset{}, qs.ctx.Err()
		}
		if qs.synth > 0 {
			qs.synth--
			return itemset.Itemset{}, nil
		}
		if qs.next < len(qs.replay) {
			it := qs.replay[qs.next]
			qs.next++
			// Replayed items were consumed (and retained) by the previous
			// attempt; no accounting changes here.
			if it.bad != nil {
				return itemset.Itemset{}, it.bad
			}
			return it.rec, nil
		}
		select {
		case it, ok := <-st.queue:
			if !ok {
				return itemset.Itemset{}, io.EOF
			}
			st.noteConsumed(it)
			if it.bad != nil {
				return itemset.Itemset{}, it.bad
			}
			return it.rec, nil
		case <-qs.ctx.Done():
			return itemset.Itemset{}, qs.ctx.Err()
		}
	}
}

// noteConsumed moves one freshly-dequeued item into the replay buffer and
// updates the consumption accounting.
func (st *stream) noteConsumed(it queueItem) {
	st.srv.addInflight(-it.size)
	st.mu.Lock()
	defer st.mu.Unlock()
	if it.bad == nil {
		st.consumed = it.seq
	}
	if st.replayLost {
		return
	}
	if len(st.retained) >= st.srv.opts.ReplayLimit {
		// The window between checkpoints outgrew the replay budget; give
		// the memory back. A later restart attempt quarantines cleanly
		// instead of replaying a gap.
		st.retained = nil
		st.replayLost = true
		return
	}
	st.retained = append(st.retained, it)
}

// pruneRetained drops replay items covered by the checkpoint just saved
// (wired to checkpoint.Store.OnSave).
func (st *stream) pruneRetained(s *checkpoint.Snapshot) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.lastCkpt = s.Records
	i := 0
	for i < len(st.retained) && st.retained[i].seq <= s.Records {
		i++
	}
	if i > 0 {
		st.retained = append(st.retained[:0], st.retained[i:]...)
	}
	// A fresh checkpoint re-arms replayability: everything after it is
	// retained from here on.
	if st.replayLost && len(st.retained) == 0 && st.consumed == s.Records {
		st.replayLost = false
	}
}

// buildRestart assembles the deterministic-restart inputs: the resume
// snapshot (nil for a from-scratch restart), the synthetic skip prefix,
// and the retained tail to replay, verifying the replay buffer actually
// covers the gap between the snapshot and the consumption point.
func (st *stream) buildRestart() (snap *checkpoint.Snapshot, synth uint64, replay []queueItem, err error) {
	if st.store != nil {
		snap, _, err = st.store.Latest()
		if err != nil {
			return nil, 0, nil, fmt.Errorf("loading restart checkpoint: %w", err)
		}
	}
	var want uint64
	if snap != nil {
		want = snap.Records
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	consumed := st.consumed
	if st.replayLost {
		return nil, 0, nil, fmt.Errorf("replay buffer overflowed ReplayLimit between checkpoints; cannot restart deterministically")
	}
	if consumed < want {
		// Crashed while still fast-forwarding a process-restart resume:
		// re-present everything consumed so far (the pipeline discards it
		// again as part of its own skip) and keep the snapshot.
		synth = 0
		replay = append([]queueItem(nil), st.retained...)
		if gap := verifyReplay(replay, 0, consumed); gap != "" {
			return nil, 0, nil, fmt.Errorf("replay buffer %s", gap)
		}
		return snap, synth, replay, nil
	}
	synth = want
	for _, it := range st.retained {
		if it.seq > want {
			replay = append(replay, it)
		}
	}
	if gap := verifyReplay(replay, want, consumed); gap != "" {
		return nil, 0, nil, fmt.Errorf("replay buffer %s", gap)
	}
	return snap, synth, replay, nil
}

// verifyReplay checks that the good records in replay are exactly
// from+1 .. to, in order; it returns a description of the gap otherwise.
func verifyReplay(replay []queueItem, from, to uint64) string {
	next := from + 1
	for _, it := range replay {
		if it.bad != nil {
			continue
		}
		if it.seq != next {
			return fmt.Sprintf("skips from record %d to %d", next-1, it.seq)
		}
		next++
	}
	if next != to+1 {
		return fmt.Sprintf("ends at record %d, need %d", next-1, to)
	}
	return ""
}

// ---- emit ----

// emit renders one published window into the audit format and stores it
// for GET /windows. Re-published windows after a restart overwrite their
// position idempotently (consistent republication guarantees the bytes
// match anyway).
func (st *stream) emit(w pipeline.Window) error {
	entries := make([]data.PublishedEntry, 0, len(w.Output.Items))
	for _, it := range w.Output.Items {
		entries = append(entries, data.PublishedEntry{Support: it.Support, Set: it.Set})
	}
	var buf bytes.Buffer
	if err := data.WritePublished(&buf, entries, st.vocab); err != nil {
		return fmt.Errorf("rendering window at position %d: %w", w.Position, err)
	}
	st.storeWindow(w.Position, buf.String())
	st.progress.Store(true)
	st.mWindows.Inc()
	return nil
}

func (st *stream) storeWindow(pos int, body string) {
	st.mu.Lock()
	defer st.mu.Unlock()
	ws := st.windows
	i := sort.Search(len(ws), func(i int) bool { return ws[i].Position >= pos })
	if i < len(ws) && ws[i].Position == pos {
		ws[i].Body = body
		return
	}
	ws = append(ws, publishedWindow{})
	copy(ws[i+1:], ws[i:])
	ws[i] = publishedWindow{Position: pos, Body: body}
	if limit := st.cfg.History; limit > 0 && len(ws) > limit {
		n := copy(ws, ws[len(ws)-limit:])
		ws = ws[:n]
		st.winTrunc = true
	}
	st.windows = ws
}

// windowsFrom returns the retained windows with Position >= from, plus
// whether older windows were evicted past the history limit.
func (st *stream) windowsFrom(from int) ([]publishedWindow, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	i := sort.Search(len(st.windows), func(i int) bool { return st.windows[i].Position >= from })
	out := make([]publishedWindow, len(st.windows)-i)
	copy(out, st.windows[i:])
	return out, st.winTrunc
}

// releaseLease releases the stream's checkpoint lease exactly once.
func (st *stream) releaseLease() {
	st.release.Do(func() {
		if st.lease != nil {
			if err := st.lease.Release(); err != nil {
				st.srv.log.Warn("lease release failed", "stream", st.id, "error", err.Error())
			}
		}
	})
}

// status snapshots the stream for the control plane.
func (st *stream) status() StreamStatus {
	st.mu.Lock()
	defer st.mu.Unlock()
	return StreamStatus{
		ID:                  st.id,
		State:               st.state,
		LastError:           st.lastErr,
		RecordsAccepted:     st.seqSnapshot(),
		RecordsConsumed:     st.consumed,
		BadRecords:          st.badSeen,
		QueueLen:            len(st.queue),
		QueueCap:            cap(st.queue),
		WindowsRetained:     len(st.windows),
		Restarts:            st.restarts,
		ConsecutiveFailures: st.consecFails,
		CheckpointRecords:   st.lastCkpt,
		Workers:             st.cfg.Workers,
		Scheme:              st.pipeCfg.Scheme.Name(),
	}
}

// seqSnapshot reads the accepted-records counter without taking ingestMu
// (st.mu is already held by status); status is diagnostic, so a slightly
// stale value is fine.
func (st *stream) seqSnapshot() uint64 { return st.seq }

// finalState reports the state and last error after a supervision session
// has ended (the drain report's source of truth).
func (st *stream) finalState() (state, lastErr string) {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.state, st.lastErr
}
