package server

// Overload-behavior suite: backpressure (429), admission control (503),
// the per-tenant circuit breaker with quarantine and control-plane
// un-quarantine, pause/resume transparency, and hostile-client bodies
// (slow-loris and mid-upload drops). Complements server_test.go, which pins
// output identity; this file pins the failure-mode contract.

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/itemset"
	"repro/internal/pipeline"
	"repro/internal/telemetry"
)

// TestBackpressure: with the pipeline wedged (a source wrapper that never
// delivers), a stream's bounded queue fills and ingest answers 429 with the
// accepted prefix — the client's retry offset.
func TestBackpressure(t *testing.T) {
	gate := make(chan struct{})
	reg := telemetry.NewRegistry()
	_, c := newTestServer(t, Options{
		Registry: reg,
		WrapSource: func(id string, src pipeline.RecordSource) pipeline.RecordSource {
			return sourceFunc(func() (itemset.Itemset, error) {
				<-gate
				return src.Next()
			})
		},
	})
	t.Cleanup(func() { close(gate) }) // runs before srv.Abort (LIFO)

	cfg := testConfig("wedged", 1)
	cfg.QueueDepth = 8
	c.create(cfg)

	input := genInput(t, 1, 100)
	resp, body := c.do("POST", "/v1/streams/wedged/records", strings.NewReader(input))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("ingest into a full queue: %d %s, want 429", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 response missing Retry-After")
	}
	ir := decodeIngest(t, body)
	if ir.Accepted != 8 {
		t.Errorf("accepted %d records, want the queue depth 8", ir.Accepted)
	}
	if got := reg.CounterValue(MetricIngestRejections); got != 1 {
		t.Errorf("%s = %d, want 1", MetricIngestRejections, got)
	}
}

// TestOverloadInflightBytes: the server-wide inflight-bytes cap rejects
// ingest with 503 once queued-but-unconsumed records exceed it, regardless
// of per-stream queue room.
func TestOverloadInflightBytes(t *testing.T) {
	gate := make(chan struct{})
	reg := telemetry.NewRegistry()
	_, c := newTestServer(t, Options{
		Registry:         reg,
		MaxInflightBytes: 200,
		WrapSource: func(id string, src pipeline.RecordSource) pipeline.RecordSource {
			return sourceFunc(func() (itemset.Itemset, error) {
				<-gate
				return src.Next()
			})
		},
	})
	t.Cleanup(func() { close(gate) })

	c.create(testConfig("heavy", 1))
	input := genInput(t, 2, 100)
	resp, body := c.do("POST", "/v1/streams/heavy/records", strings.NewReader(input))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("ingest past the inflight cap: %d %s, want 503", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 response missing Retry-After")
	}
	ir := decodeIngest(t, body)
	if ir.Accepted == 0 || ir.Accepted >= 100 {
		t.Errorf("accepted %d records, want a partial prefix under the 200-byte cap", ir.Accepted)
	}
	if got := reg.CounterValue(MetricIngestRejections); got != 1 {
		t.Errorf("%s = %d, want 1", MetricIngestRejections, got)
	}
}

// TestAdmissionMaxStreams: stream slots are a hard admission cap — the
// N+1th create answers 503, and a delete frees the slot.
func TestAdmissionMaxStreams(t *testing.T) {
	_, c := newTestServer(t, Options{MaxStreams: 1})
	c.create(testConfig("only", 1))

	resp, body := c.do("POST", "/v1/streams",
		strings.NewReader(`{"id":"second","window":100,"epsilon":0.1,"delta":0.4,"min_support":10,"vuln_support":5,"scheme":"basic"}`))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("create past max-streams: %d %s, want 503", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 response missing Retry-After")
	}
	if resp, body = c.do("DELETE", "/v1/streams/only", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("delete: %d %s", resp.StatusCode, body)
	}
	c.create(testConfig("second", 2)) // the freed slot admits again
}

// TestBreakerQuarantineAndHeal: a stream whose sink fails persistently trips
// the breaker after BreakerFailures consecutive failed runs and is
// quarantined — ingest refused, neighbors untouched — until a control-plane
// resume restarts it; once the fault is gone the stream completes and its
// windows are byte-identical to a clean reference run (deterministic
// restart from the replay buffer).
func TestBreakerQuarantineAndHeal(t *testing.T) {
	var healed atomic.Bool
	reg := telemetry.NewRegistry()
	opts := Options{
		Registry:        reg,
		BreakerFailures: 2,
		RestartBackoff:  time.Millisecond,
		WrapSink: func(id string, emit func(pipeline.Window) error) func(pipeline.Window) error {
			if id != "sick" {
				return emit
			}
			return func(w pipeline.Window) error {
				if !healed.Load() {
					return fmt.Errorf("injected persistent sink failure")
				}
				return emit(w)
			}
		},
	}
	_, c := newTestServer(t, opts)

	cfg := testConfig("sick", 11)
	input := genInput(t, 11, 300)
	ref := referenceWindows(t, cfg, input)
	c.create(cfg)
	c.create(testConfig("neighbor", 12))
	neighborInput := genInput(t, 12, 300)

	// Ingest until the breaker interrupts: the sink starts failing at the
	// first publication, so quarantine can land while the client is still
	// sending. Rejected chunks are kept for after the heal.
	lines := strings.SplitAfter(strings.TrimRight(input, "\n")+"\n", "\n")
	off := 0
	deadline := time.Now().Add(30 * time.Second)
	for off < len(lines) {
		end := min(off+50, len(lines))
		resp, body := c.do("POST", "/v1/streams/sick/records",
			strings.NewReader(strings.Join(lines[off:end], "")))
		ir := decodeIngest(t, body)
		if resp.StatusCode == http.StatusConflict {
			break // quarantined mid-ingest; resend the rest after the heal
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("ingest sick: %d %s", resp.StatusCode, body)
		}
		off += ir.Accepted
		if time.Now().After(deadline) {
			t.Fatal("sick stream never rejected or drained its input")
		}
	}
	st := c.waitState("sick", StateQuarantined, 30*time.Second)
	if st.ConsecutiveFailures < 2 {
		t.Errorf("quarantined after %d consecutive failures, want >= 2", st.ConsecutiveFailures)
	}
	if got := reg.CounterValue(MetricQuarantines); got != 1 {
		t.Errorf("%s = %d, want 1", MetricQuarantines, got)
	}

	// Quarantine refuses ingest with 409 and leaves the stream inspectable.
	resp, body := c.do("POST", "/v1/streams/sick/records", strings.NewReader("1 2 3\n"))
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("ingest into quarantine: %d %s, want 409", resp.StatusCode, body)
	}

	// The healthy neighbor is not affected by its sick peer.
	c.ingestAll("neighbor", neighborInput)
	c.closeStream("neighbor")
	c.waitState("neighbor", StateDone, 30*time.Second)

	// Heal the fault, un-quarantine via the control plane, finish the stream.
	healed.Store(true)
	if resp, body = c.do("POST", "/v1/streams/sick/resume", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("resume out of quarantine: %d %s", resp.StatusCode, body)
	}
	c.ingestAll("sick", strings.Join(lines[off:], ""))
	c.closeStream("sick")
	c.waitState("sick", StateDone, 30*time.Second)

	got := c.windows("sick")
	if len(got) != len(ref) {
		t.Fatalf("healed stream published %d windows, reference %d", len(got), len(ref))
	}
	for pos, want := range ref {
		if got[pos] != want {
			t.Errorf("healed stream window at %d differs from the reference run", pos)
		}
	}
}

// TestPauseResume: pausing gates the source (no new windows) and refuses
// ingest with 409; resuming continues, and the pause leaves no trace in the
// published bytes.
func TestPauseResume(t *testing.T) {
	_, c := newTestServer(t, Options{})
	cfg := testConfig("p", 21)
	input := genInput(t, 21, 300)
	ref := referenceWindows(t, cfg, input)
	c.create(cfg)

	lines := strings.SplitAfter(strings.TrimRight(input, "\n")+"\n", "\n")
	c.ingestAll("p", strings.Join(lines[:150], ""))

	if resp, body := c.do("POST", "/v1/streams/p/pause", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("pause: %d %s", resp.StatusCode, body)
	}
	if resp, _ := c.do("POST", "/v1/streams/p/pause", nil); resp.StatusCode != http.StatusConflict {
		t.Fatalf("double pause: %d, want 409", resp.StatusCode)
	}
	resp, body := c.do("POST", "/v1/streams/p/records", strings.NewReader("1 2\n"))
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("ingest while paused: %d %s, want 409", resp.StatusCode, body)
	}

	if resp, body := c.do("POST", "/v1/streams/p/resume", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("resume: %d %s", resp.StatusCode, body)
	}
	c.ingestAll("p", strings.Join(lines[150:], ""))
	c.closeStream("p")
	c.waitState("p", StateDone, 30*time.Second)

	got := c.windows("p")
	if len(got) != len(ref) {
		t.Fatalf("published %d windows across a pause, reference %d", len(got), len(ref))
	}
	for pos, want := range ref {
		if got[pos] != want {
			t.Errorf("window at %d differs after a pause/resume cycle", pos)
		}
	}
}

// TestHostileClientBodies: a slow-loris upload (trickled bytes) and a
// connection dropped mid-upload. Neither corrupts the stream — the
// trickled body lands intact, the dropped body keeps its accepted prefix,
// and after the client retries from that offset the published windows are
// byte-identical to a clean run.
func TestHostileClientBodies(t *testing.T) {
	srv, c := newTestServer(t, Options{})
	cfg := testConfig("hostile", 31)
	input := genInput(t, 31, 200)
	ref := referenceWindows(t, cfg, input)
	c.create(cfg)

	lines := strings.SplitAfter(strings.TrimRight(input, "\n")+"\n", "\n")
	head, tail := strings.Join(lines[:100], ""), strings.Join(lines[100:], "")

	// Slow loris: the first half trickles in 7-byte reads.
	resp, body := c.do("POST", "/v1/streams/hostile/records",
		faultinject.SlowReader(strings.NewReader(head), 7, time.Millisecond))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("slow-loris ingest: %d %s", resp.StatusCode, body)
	}
	if ir := decodeIngest(t, body); ir.Accepted != 100 {
		t.Fatalf("slow-loris accepted %d lines, want 100", ir.Accepted)
	}

	// Dropped connection: the body errors after 64 bytes. The HTTP client
	// cannot fake a server-side read error, so drive the handler's ingest
	// path directly; the accepted prefix must stand and the error surface.
	st := srv.get("hostile")
	if st == nil {
		t.Fatal("stream not registered")
	}
	dropErr := errors.New("connection reset by peer")
	accepted, _, err := st.ingest(faultinject.HaltReader(strings.NewReader(tail), 64, dropErr), -1)
	if !errors.Is(err, dropErr) {
		t.Fatalf("halted body: err %v, want the injected drop", err)
	}
	if accepted == 0 || accepted >= 100 {
		t.Fatalf("halted body accepted %d lines, want a partial prefix", accepted)
	}

	// Client retry from the accepted offset completes the stream.
	rest := strings.Join(lines[100+accepted:], "")
	resp, body = c.do("POST", "/v1/streams/hostile/records", strings.NewReader(rest))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("retry ingest: %d %s", resp.StatusCode, body)
	}
	c.closeStream("hostile")
	c.waitState("hostile", StateDone, 30*time.Second)

	got := c.windows("hostile")
	if len(got) != len(ref) {
		t.Fatalf("published %d windows, reference %d", len(got), len(ref))
	}
	for pos, want := range ref {
		if got[pos] != want {
			t.Errorf("window at %d differs after hostile-client ingest", pos)
		}
	}
}

// decodeIngest unmarshals an ingest response body.
func decodeIngest(t *testing.T, body []byte) ingestResponse {
	t.Helper()
	var ir ingestResponse
	if err := json.Unmarshal(body, &ir); err != nil {
		t.Fatalf("bad ingest response %q: %v", body, err)
	}
	return ir
}
