package server

// The stream manifest is the server's durable registry: every admitted
// stream's validated config, pipeline fingerprint, and durable lifecycle
// state, kept under <data-dir>/manifest.json and rewritten atomically
// (checkpoint.AtomicWrite: temp file, fsync, rename, directory fsync) on
// create, quarantine, failure, close, and removal. Boot recovery
// (recovery.go) trusts it completely: manifest streams are re-adopted,
// stream directories it does not mention are swept as orphans, and a
// manifest that cannot be parsed stops recovery cold — guessing about
// stream identity is how perturbation state gets crossed between tenants.

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/checkpoint"
)

const (
	manifestVersion = 1
	manifestName    = "manifest.json"
	// streamsDirName nests per-stream directories one level below the data
	// dir so no stream id (manifest.json is a valid one) can collide with
	// the manifest itself.
	streamsDirName = "streams"
)

// Durable lifecycle states recorded in the manifest. Running and paused
// collapse to active: a pause gate is an in-memory, operator-session
// concept, while quarantine and failure describe the stream's relationship
// to its own history and must survive a reboot.
const (
	manifestActive      = "active"
	manifestQuarantined = "quarantined"
	manifestFailed      = "failed"
)

// manifestEntry is one stream's durable record.
type manifestEntry struct {
	// Config is the validated create-time config, with Resume cleared: a
	// re-adopted stream resumes from its own checkpoint + WAL, never from a
	// client replay.
	Config StreamConfig `json:"config"`
	// Fingerprint pins the pipeline parameters the stream's checkpoints and
	// WAL were written under; a mismatch at adoption quarantines the stream
	// instead of resuming it wrong.
	Fingerprint checkpoint.Meta `json:"fingerprint"`
	State       string          `json:"state"`
	// Closed records a client-initiated ingest close: an adopted stream
	// re-closes its queue after replay and drains to done.
	Closed bool `json:"closed,omitempty"`
	// LastError survives reboots so a quarantined stream still explains
	// itself in GET /v1/streams/{id} after the process that quarantined it
	// is gone.
	LastError string `json:"last_error,omitempty"`
}

type manifestFile struct {
	Version int                      `json:"version"`
	Streams map[string]manifestEntry `json:"streams"`
}

func (s *Server) manifestPath() string { return filepath.Join(s.opts.DataDir, manifestName) }
func (s *Server) streamsRoot() string  { return filepath.Join(s.opts.DataDir, streamsDirName) }

// streamDir is the per-stream durable directory: checkpoints, WAL segments,
// token journal, lease.
func (s *Server) streamDir(id string) string { return filepath.Join(s.streamsRoot(), id) }

// loadManifest reads the manifest into the in-memory mirror. A missing file
// is an empty manifest; an unparseable or future-version file is an error —
// recovery must refuse to run (and in particular must not orphan-sweep)
// rather than guess which streams were promised durability.
func (s *Server) loadManifest() error {
	s.manifestMu.Lock()
	defer s.manifestMu.Unlock()
	raw, err := os.ReadFile(s.manifestPath())
	if errors.Is(err, os.ErrNotExist) {
		s.manifest = map[string]manifestEntry{}
		return nil
	}
	if err != nil {
		return fmt.Errorf("reading stream manifest: %w", err)
	}
	var mf manifestFile
	if err := json.Unmarshal(raw, &mf); err != nil {
		return fmt.Errorf("stream manifest %s is unreadable: %w (repair or remove it; refusing to guess)",
			s.manifestPath(), err)
	}
	if mf.Version != manifestVersion {
		return fmt.Errorf("stream manifest %s is version %d, this server speaks %d",
			s.manifestPath(), mf.Version, manifestVersion)
	}
	if mf.Streams == nil {
		mf.Streams = map[string]manifestEntry{}
	}
	s.manifest = mf.Streams
	return nil
}

// saveManifestLocked rewrites the manifest atomically. Caller holds
// manifestMu.
func (s *Server) saveManifestLocked() error {
	buf, err := json.MarshalIndent(manifestFile{Version: manifestVersion, Streams: s.manifest}, "", "  ")
	if err != nil {
		return err
	}
	return checkpoint.AtomicWrite(s.manifestPath(), append(buf, '\n'))
}

// manifestPut records (or replaces) a stream's entry. Unlike the state
// helpers below it propagates the write error: a create whose manifest
// entry cannot be persisted has not durably happened and must be refused.
func (s *Server) manifestPut(id string, e manifestEntry) error {
	if s.opts.DataDir == "" {
		return nil
	}
	s.manifestMu.Lock()
	defer s.manifestMu.Unlock()
	if s.manifest == nil {
		s.manifest = map[string]manifestEntry{}
	}
	prev, had := s.manifest[id]
	s.manifest[id] = e
	if err := s.saveManifestLocked(); err != nil {
		if had {
			s.manifest[id] = prev
		} else {
			delete(s.manifest, id)
		}
		return fmt.Errorf("stream %s: persisting manifest: %w", id, err)
	}
	return nil
}

// manifestSetState moves a stream's durable state (best effort: the stream
// is already in the new state in memory; a failed write costs accuracy
// after a crash, not correctness — adoption re-derives what it can).
func (s *Server) manifestSetState(id, state, lastErr string) {
	s.manifestMutate(id, func(e *manifestEntry) {
		e.State = state
		e.LastError = lastErr
	})
}

// manifestSetClosed records a client-initiated ingest close.
func (s *Server) manifestSetClosed(id string) {
	s.manifestMutate(id, func(e *manifestEntry) { e.Closed = true })
}

func (s *Server) manifestMutate(id string, mut func(e *manifestEntry)) {
	if s.opts.DataDir == "" {
		return
	}
	s.manifestMu.Lock()
	defer s.manifestMu.Unlock()
	e, ok := s.manifest[id]
	if !ok {
		return
	}
	before := e
	mut(&e)
	if e == before {
		return
	}
	s.manifest[id] = e
	if err := s.saveManifestLocked(); err != nil {
		s.manifest[id] = before
		s.log.Warn("manifest update failed", "stream", id, "error", err.Error())
	}
}

// manifestRemove forgets a stream. Called before its directory is removed,
// so a crash mid-GC leaves an orphan directory for the boot sweep — never a
// manifest entry pointing at nothing.
func (s *Server) manifestRemove(id string) {
	if s.opts.DataDir == "" {
		return
	}
	s.manifestMu.Lock()
	defer s.manifestMu.Unlock()
	if _, ok := s.manifest[id]; !ok {
		return
	}
	delete(s.manifest, id)
	if err := s.saveManifestLocked(); err != nil {
		s.log.Warn("manifest removal failed", "stream", id, "error", err.Error())
	}
}

// manifestEntryFor returns a stream's durable entry, if any.
func (s *Server) manifestEntryFor(id string) (manifestEntry, bool) {
	s.manifestMu.Lock()
	defer s.manifestMu.Unlock()
	e, ok := s.manifest[id]
	return e, ok
}
