package server

// Boot-time recovery: Recover rebuilds the whole stream registry from the
// durable state a previous process left behind — the stream manifest, each
// stream's checkpoint generations, its ingest WAL, and its token journal.
// The contract it restores is "accepted == durable": every line a client
// got a 2xx for before the kill -9 is either inside the newest usable
// checkpoint or replayed from the WAL tail, and the windows published
// after recovery are byte-identical to the ones an uninterrupted run would
// have published (the recovery differential suite pins this at every crash
// point).
//
// Trust order: the manifest is authoritative for which streams exist — a
// directory it does not mention is an orphan (a crash between manifest
// removal and directory removal) and is swept; a manifest that cannot be
// parsed aborts recovery entirely rather than guessing. Within a stream,
// the newest readable checkpoint is authoritative for the pipeline state
// and the WAL is authoritative for everything accepted after it; torn
// final frames and corrupt segments degrade to the longest valid prefix
// with a logged warning, never to a failed boot.

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/pipeline"
	"repro/internal/wal"
)

// RecoverReport summarizes one boot recovery.
type RecoverReport struct {
	// Adopted counts streams re-registered and supervised (running, or
	// draining to done for streams whose ingest was closed).
	Adopted int
	// Parked counts streams re-registered in a terminal state: persisted
	// quarantines/failures, plus streams whose adoption itself failed
	// (unreadable checkpoints, fingerprint mismatch, non-contiguous WAL).
	Parked int
	// Replayed is the total WAL records handed to adopted streams' pipelines.
	Replayed int
	// Orphans lists stream directories swept because the manifest does not
	// mention them.
	Orphans []string

	// Phase timings, summed across streams — the butterfly_recovery_seconds
	// series, and the data that tunes CheckpointFullEvery: ChainApply grows
	// with the delta-chain length (full-every interval), WALReplay with the
	// lines accepted since the last FULL anchor.
	Took         time.Duration
	ManifestLoad time.Duration
	OrphanSweep  time.Duration
	ChainApply   time.Duration // anchor snapshot load + delta-frame replay
	WALOpen      time.Duration // WAL + token-journal scan/CRC validation
	WALReplay    time.Duration // reading the post-checkpoint tails back
	// ReplayRate is Replayed ÷ WALReplay in lines per second (0 when nothing
	// was replayed).
	ReplayRate float64
}

// adoptTiming is one stream's recovery-phase breakdown.
type adoptTiming struct {
	chainApply time.Duration
	walOpen    time.Duration
	walReplay  time.Duration
}

// Recover loads the manifest and re-adopts every stream it records. Call
// it once, after New and before serving traffic; it requires a DataDir.
func (s *Server) Recover() (RecoverReport, error) {
	var rep RecoverReport
	t0 := time.Now()
	if s.opts.DataDir == "" {
		return rep, fmt.Errorf("recover requires a server data dir")
	}
	if err := os.MkdirAll(s.streamsRoot(), 0o755); err != nil {
		return rep, fmt.Errorf("creating streams root: %w", err)
	}
	if err := s.loadManifest(); err != nil {
		return rep, err
	}
	rep.ManifestLoad = time.Since(t0)

	// Sweep directories the manifest does not claim. Safe exactly because an
	// unreadable manifest aborted above: reaching here means the manifest is
	// the complete list of streams that were promised durability.
	sweepStart := time.Now()
	entries, err := os.ReadDir(s.streamsRoot())
	if err != nil {
		return rep, fmt.Errorf("listing streams root: %w", err)
	}
	for _, de := range entries {
		if _, ok := s.manifestEntryFor(de.Name()); ok {
			continue
		}
		path := filepath.Join(s.streamsRoot(), de.Name())
		if err := os.RemoveAll(path); err != nil {
			s.log.Warn("orphan sweep failed", "path", path, "error", err.Error())
			continue
		}
		rep.Orphans = append(rep.Orphans, de.Name())
		s.log.Info("orphan stream directory swept", "stream", de.Name())
	}
	rep.OrphanSweep = time.Since(sweepStart)

	s.manifestMu.Lock()
	ids := make([]string, 0, len(s.manifest))
	for id := range s.manifest {
		ids = append(ids, id)
	}
	s.manifestMu.Unlock()
	sort.Strings(ids)

	for _, id := range ids {
		e, ok := s.manifestEntryFor(id)
		if !ok {
			continue
		}
		parked, replayed, tm := s.adopt(id, e)
		if parked {
			rep.Parked++
		} else {
			rep.Adopted++
			rep.Replayed += replayed
		}
		rep.ChainApply += tm.chainApply
		rep.WALOpen += tm.walOpen
		rep.WALReplay += tm.walReplay
	}
	rep.Took = time.Since(t0)
	if rep.Replayed > 0 && rep.WALReplay > 0 {
		rep.ReplayRate = float64(rep.Replayed) / rep.WALReplay.Seconds()
	}
	s.recordRecovery(rep)
	s.ready.Store(true)
	s.log.Info("recovery complete", "adopted", rep.Adopted, "parked", rep.Parked,
		"replayed", rep.Replayed, "orphans", len(rep.Orphans),
		"took", rep.Took.String(), "manifest_load", rep.ManifestLoad.String(),
		"chain_apply", rep.ChainApply.String(), "wal_open", rep.WALOpen.String(),
		"wal_replay", rep.WALReplay.String(),
		"replay_lines_per_sec", fmt.Sprintf("%.0f", rep.ReplayRate))
	return rep, nil
}

// recordRecovery publishes one recovery report to the registry and the
// /healthz surface.
func (s *Server) recordRecovery(rep RecoverReport) {
	s.recoverMu.Lock()
	s.lastRecovery = rep
	s.recoverMu.Unlock()
	m := s.metrics
	if m == nil {
		return
	}
	m.recoveryPhase(recPhaseManifestLoad).Set(rep.ManifestLoad.Seconds())
	m.recoveryPhase(recPhaseOrphanSweep).Set(rep.OrphanSweep.Seconds())
	m.recoveryPhase(recPhaseChainApply).Set(rep.ChainApply.Seconds())
	m.recoveryPhase(recPhaseWALOpen).Set(rep.WALOpen.Seconds())
	m.recoveryPhase(recPhaseWALReplay).Set(rep.WALReplay.Seconds())
	m.recoveryPhase(recPhaseAdopt).Set((rep.ChainApply + rep.WALOpen + rep.WALReplay).Seconds())
	m.recoveryPhase(recPhaseTotal).Set(rep.Took.Seconds())
	m.recoveryStreams(recOutcomeAdopted).Set(float64(rep.Adopted))
	m.recoveryStreams(recOutcomeParked).Set(float64(rep.Parked))
	m.setReplayRate(rep.ReplayRate)
}

// adopt re-registers one manifest stream. A stream that cannot be adopted
// runnable is parked — registered in a terminal state with whatever durable
// resources did open still attached, so the operator can inspect it via the
// control plane, resume it (quarantined), or delete it (which GCs the
// directory) — but never silently dropped: it is in the manifest, so it was
// promised durability.
func (s *Server) adopt(id string, e manifestEntry) (parked bool, replayed int, tm adoptTiming) {
	cfg := e.Config
	cfg.ID = id
	cfg.Resume = false
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = s.opts.QueueDepth
	}
	if cfg.History == 0 {
		cfg.History = s.opts.History
	}
	scheme, serr := core.SchemeByName(cfg.Scheme, cfg.Lambda, cfg.Gamma)
	st, warnf := s.buildStream(cfg, scheme)

	register := func(state string) {
		s.nstreams.Add(1)
		sh := s.shard(id)
		sh.mu.Lock()
		sh.m[id] = st
		sh.mu.Unlock()
		s.metrics.moveState("", state)
	}
	// park registers the stream terminally: no supervisor runs, done is
	// already closed so Delete and Shutdown never block on it. fresh marks a
	// quarantine minted by this adoption (metric + manifest update) as
	// opposed to one re-loaded from the manifest.
	park := func(state, cause string, fresh bool) {
		parked = true
		st.state = state
		st.lastErr = cause
		if st.wal == nil {
			// Adoption failed before the WAL opened: a later resume has no
			// replay source, and must refuse rather than restart with a hole.
			st.replayLost = true
		}
		close(st.done)
		register(state)
		if fresh {
			s.metrics.addQuarantine(quarAdoption)
			s.manifestSetState(id, manifestQuarantined, cause)
		}
		if e.Closed {
			st.closeIngest()
		}
		s.log.Warn("stream adopted parked", "stream", id, "state", state, "error", cause)
	}

	if serr != nil {
		park(StateQuarantined, fmt.Sprintf("scheme: %v", serr), true)
		return
	}
	dir := s.streamDir(id)
	lease, err := checkpoint.AcquireLease(dir, s.opts.Owner)
	if err != nil {
		park(StateQuarantined, err.Error(), true)
		return
	}
	st.lease = lease
	store, err := checkpoint.NewStore(dir, cfg.CheckpointKeep)
	if err != nil {
		park(StateQuarantined, err.Error(), true)
		return
	}
	store.Logf = warnf
	store.OnSave = st.onCheckpointSave
	st.store = store
	if s.opts.hookStore != nil {
		s.opts.hookStore(id, store)
	}
	if fp := st.pipeCfg.Fingerprint(); fp != e.Fingerprint {
		park(StateQuarantined, "manifest fingerprint does not match the stream config", true)
		return
	}
	walOpenStart := time.Now()
	walRep, err := st.openDurable(dir, warnf)
	tm.walOpen = time.Since(walOpenStart)
	if err != nil {
		park(StateQuarantined, err.Error(), true)
		return
	}
	if walRep.Outcome != wal.OutcomeClean {
		s.log.Warn("wal recovered with damage", "stream", id,
			"outcome", walRep.Outcome, "frames", walRep.Frames,
			"dropped_bytes", walRep.DroppedBytes, "dropped_segments", walRep.DroppedSegments)
	}
	snap, det, err := st.store.LatestDetail()
	tm.chainApply = det.LoadDur + det.ChainApplyDur
	if err != nil {
		park(StateQuarantined, fmt.Sprintf("loading checkpoint: %v", err), true)
		return
	}

	// Rebuild the acceptance counters. The checkpoint and the WAL each
	// bound them from below: a crash right after a checkpoint save may have
	// truncated the WAL past lines the checkpoint covers, and a crash
	// before any save leaves only the WAL.
	var ckptLine uint64
	if snap != nil {
		ckptLine = snap.Records + snap.BadRecords
		st.lastCkpt = snap.Records
		st.consumed = snap.Records
		st.consumedLine = ckptLine
	}
	lines := ckptLine
	if l := st.wal.LastLine(); l > lines {
		lines = l
	}
	seq := uint64(0)
	if snap != nil {
		seq = snap.Records
	}
	if q := st.wal.LastSeq(); q > seq {
		seq = q
	}
	st.lines, st.seq = lines, seq
	st.badSeen = lines - seq
	st.walBase = lines
	// The truncation horizon re-arms at the ANCHOR full snapshot's line,
	// not the delta-chain tip: the next full save truncates up to here, and
	// the chain the resume came from must stay replayable until then.
	st.prevCkptLine = det.AnchorRecords + det.AnchorBadRecords

	vcfg := st.pipeCfg
	vcfg.Checkpoints = st.store
	vcfg.Resume = snap
	if _, err := pipeline.New(vcfg); err != nil {
		park(StateQuarantined, err.Error(), true)
		return
	}
	replayStart := time.Now()
	tail, err := st.wal.Tail(ckptLine, lines)
	tm.walReplay = time.Since(replayStart)
	if err != nil {
		park(StateQuarantined, fmt.Sprintf("wal replay: %v", err), true)
		return
	}
	// A WAL that lost lines the checkpoint covers (corrupt segments dropped
	// to a prefix below it) must still accept appends at the stream's line
	// coordinates: seal it past the checkpoint.
	if err := st.wal.Rebase(lines, seq); err != nil {
		park(StateQuarantined, fmt.Sprintf("wal rebase: %v", err), true)
		return
	}

	// Persisted terminal states park as-is (resources attached, replay
	// bounds computed) so a later resume restarts them exactly like an
	// in-process un-quarantine would.
	switch e.State {
	case manifestQuarantined:
		park(StateQuarantined, e.LastError, false)
		return
	case manifestFailed:
		park(StateFailed, e.LastError, false)
		return
	}

	replayed = len(tail)
	var synth uint64
	if snap != nil {
		synth = snap.Records
	}
	ckptRecords := st.lastCkpt // read before the supervisor can checkpoint
	register(StateRunning)
	s.wg.Add(1)
	go s.supervise(st, snap, synth, walItems(tail))
	if e.Closed {
		// The client had already ended the stream; after replay it drains to
		// done (and its directory is then GC'd).
		st.closeIngest()
	}
	s.log.Info("stream adopted", "stream", id, "lines", lines,
		"checkpoint_records", ckptRecords, "replayed", replayed, "closed", e.Closed)
	return
}
