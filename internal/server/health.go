package server

// Liveness vs readiness, split the way orchestrators want them:
//
//   - /healthz is liveness plus a diagnostic snapshot. It answers 200 as
//     soon as the mux is up — during boot recovery, during drain, always —
//     because a process that is recovering is alive, and restarting it for
//     failing a health probe would only make the recovery longer. The body
//     carries the operator's first-glance state: stream counts by
//     lifecycle state, publish lag, checkpoint staleness, the last boot
//     recovery's phase timings, and the slowest end-to-end exemplar behind
//     butterfly_server_e2e_slowest_seconds.
//
//   - /readyz is readiness: 200 exactly when /v1 traffic will be accepted.
//     It answers 503 with machine-readable reasons while the server is
//     recovering (BeginBoot..Recover) or draining, so a load balancer
//     stops routing before clients see the 503s themselves.
//
// The /v1 surface is gated on the same readiness bit: until Recover
// completes, requests get 503 + Retry-After instead of racing
// half-adopted streams.

import (
	"errors"
	"net/http"
	"time"
)

// errRecovering gates the /v1 surface between BeginBoot and Recover.
var errRecovering = errors.New("server is recovering")

// BeginBoot marks the server not-ready until Recover completes. Call it
// before binding the listener on a durable (data-dir) boot: the health
// endpoints then answer immediately while /v1 refuses with 503. A server
// that never calls BeginBoot (tests, memory-only mode) is born ready.
func (s *Server) BeginBoot() {
	s.ready.Store(false)
}

// Ready reports whether the server currently accepts /v1 traffic.
func (s *Server) Ready() bool {
	return s.ready.Load() && !s.draining.Load()
}

// healthBody is the /healthz response.
type healthBody struct {
	// Status is "ok", "recovering", or "draining".
	Status        string  `json:"status"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	Ready         bool    `json:"ready"`
	Recovering    bool    `json:"recovering"`
	Draining      bool    `json:"draining"`
	// Streams counts hosted streams by lifecycle state (only states with
	// at least one stream appear).
	Streams map[string]int `json:"streams"`
	// PublishLagSeconds is the worst now-minus-last-publish over running
	// streams that have queued work and have published at least once — the
	// "a pipeline is wedged" signal. 0 when nothing lags.
	PublishLagSeconds float64 `json:"publish_lag_seconds"`
	// MaxCheckpointAgeSeconds is the stalest per-stream checkpoint age
	// (see butterfly_checkpoint_last_save_age_seconds). 0 when no stream
	// has saved yet.
	MaxCheckpointAgeSeconds float64 `json:"max_checkpoint_age_seconds"`
	// LastRecovery summarizes the most recent boot recovery (absent before
	// any Recover).
	LastRecovery *recoverySummary `json:"last_recovery,omitempty"`
	// SlowestE2E is the exemplar behind butterfly_server_e2e_slowest_seconds
	// (absent before any end-to-end observation).
	SlowestE2E *e2eExemplar `json:"slowest_e2e,omitempty"`
}

// recoverySummary is RecoverReport rendered for /healthz — durations in
// seconds, ready for dashboards and CheckpointFullEvery tuning.
type recoverySummary struct {
	Adopted              int     `json:"adopted"`
	Parked               int     `json:"parked"`
	Replayed             int     `json:"replayed"`
	Orphans              int     `json:"orphans"`
	TookSeconds          float64 `json:"took_seconds"`
	ManifestLoadSeconds  float64 `json:"manifest_load_seconds"`
	ChainApplySeconds    float64 `json:"chain_apply_seconds"`
	WALOpenSeconds       float64 `json:"wal_open_seconds"`
	WALReplaySeconds     float64 `json:"wal_replay_seconds"`
	ReplayLinesPerSecond float64 `json:"replay_lines_per_second"`
}

// e2eExemplar names the stream/window behind the slowest end-to-end
// latency seen so far.
type e2eExemplar struct {
	Stream  string  `json:"stream"`
	Window  uint64  `json:"window"`
	Seconds float64 `json:"seconds"`
}

// readyBody is the /readyz response.
type readyBody struct {
	Ready bool `json:"ready"`
	// Reasons lists why the server is not ready ("recovering",
	// "draining"); empty when ready.
	Reasons []string `json:"reasons,omitempty"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	ready, draining := s.ready.Load(), s.draining.Load()
	body := healthBody{
		Status:        "ok",
		UptimeSeconds: time.Since(s.started).Seconds(),
		Ready:         ready && !draining,
		Recovering:    !ready,
		Draining:      draining,
		Streams:       map[string]int{},
	}
	switch {
	case draining:
		body.Status = "draining"
	case !ready:
		body.Status = "recovering"
	}
	now := time.Now()
	for _, st := range s.all() {
		state := st.currentState()
		body.Streams[state]++
		if age := st.checkpointAge(); age > body.MaxCheckpointAgeSeconds {
			body.MaxCheckpointAgeSeconds = age
		}
		if state != StateRunning || len(st.queue) == 0 {
			continue
		}
		if at := st.lastEmit.Load(); at > 0 {
			if lag := now.Sub(time.Unix(0, at)).Seconds(); lag > body.PublishLagSeconds {
				body.PublishLagSeconds = lag
			}
		}
	}
	s.recoverMu.Lock()
	rep := s.lastRecovery
	s.recoverMu.Unlock()
	if rep.Took > 0 {
		body.LastRecovery = &recoverySummary{
			Adopted:              rep.Adopted,
			Parked:               rep.Parked,
			Replayed:             rep.Replayed,
			Orphans:              len(rep.Orphans),
			TookSeconds:          rep.Took.Seconds(),
			ManifestLoadSeconds:  rep.ManifestLoad.Seconds(),
			ChainApplySeconds:    rep.ChainApply.Seconds(),
			WALOpenSeconds:       rep.WALOpen.Seconds(),
			WALReplaySeconds:     rep.WALReplay.Seconds(),
			ReplayLinesPerSecond: rep.ReplayRate,
		}
	}
	if stream, window, sec := s.metrics.slowestE2E(); sec > 0 {
		body.SlowestE2E = &e2eExemplar{Stream: stream, Window: window, Seconds: sec}
	}
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	var body readyBody
	if !s.ready.Load() {
		body.Reasons = append(body.Reasons, "recovering")
	}
	if s.draining.Load() {
		body.Reasons = append(body.Reasons, "draining")
	}
	body.Ready = len(body.Reasons) == 0
	code := http.StatusOK
	if !body.Ready {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, body)
}

// gated wraps a /v1 handler with the readiness gate: while the server is
// between BeginBoot and Recover, the request is refused with 503 +
// Retry-After instead of touching a registry that is still being rebuilt.
// (Draining is not gated here — each handler maps errDraining itself, and
// reads like /windows stay useful during a drain.)
func (s *Server) gated(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if !s.ready.Load() {
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusServiceUnavailable, errRecovering)
			return
		}
		h(w, r)
	}
}
