package server

// The differential suite: the server's isolation contract is that every
// hosted stream publishes windows byte-identical to an independent
// single-process pipeline run over the same records — with concurrent
// neighbors, injected faults, in-process restarts, and process
// crash-and-resume all in play. CI runs these race-enabled.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/faultinject"
	"repro/internal/itemset"
	"repro/internal/pipeline"
	"repro/internal/telemetry"
)

// testParams are the known-feasible calibration used throughout
// (ε/δ = 0.25 ≥ K²/2C² = 0.125).
func testConfig(id string, seed uint64) StreamConfig {
	return StreamConfig{
		ID:           id,
		Window:       100,
		Epsilon:      0.1,
		Delta:        0.4,
		MinSupport:   10,
		VulnSupport:  5,
		Scheme:       "hybrid",
		Lambda:       0.4,
		Seed:         seed,
		PublishEvery: 50,
		Workers:      2,
		History:      100,
	}
}

// genInput renders n synthetic records in the one-transaction-per-line
// wire format (numeric tokens).
func genInput(t *testing.T, seed uint64, n int) string {
	t.Helper()
	var buf bytes.Buffer
	if err := data.WriteTransactions(&buf, data.WebViewLike(seed).Generate(n), nil); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// withBadLines splices a malformed line (NUL byte in a token) after every
// nth record, exercising the bad-record budget end to end.
func withBadLines(input string, every int) string {
	lines := strings.Split(strings.TrimRight(input, "\n"), "\n")
	var out strings.Builder
	for i, ln := range lines {
		out.WriteString(ln)
		out.WriteByte('\n')
		if (i+1)%every == 0 {
			out.WriteString("bad\x00token\n")
		}
	}
	return out.String()
}

// renderWindow matches stream.emit's rendering byte for byte.
func renderWindow(t *testing.T, w pipeline.Window, vocab *data.Vocabulary) string {
	t.Helper()
	entries := make([]data.PublishedEntry, 0, len(w.Output.Items))
	for _, it := range w.Output.Items {
		entries = append(entries, data.PublishedEntry{Support: it.Support, Set: it.Set})
	}
	var buf bytes.Buffer
	if err := data.WritePublished(&buf, entries, vocab); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// referenceWindows runs the standalone pipeline over input — no server, no
// faults, no checkpoints — and returns position → rendered window.
func referenceWindows(t *testing.T, cfg StreamConfig, input string) map[int]string {
	t.Helper()
	scheme, err := core.SchemeByName(cfg.Scheme, cfg.Lambda, cfg.Gamma)
	if err != nil {
		t.Fatal(err)
	}
	pcfg := pipeline.Config{
		WindowSize:    cfg.Window,
		Params:        paramsOf(cfg),
		Scheme:        scheme,
		Seed:          cfg.Seed,
		ClosedOnly:    cfg.ClosedOnly,
		Raw:           cfg.Raw,
		PublishEvery:  cfg.PublishEvery,
		Workers:       cfg.Workers,
		MaxBadRecords: cfg.MaxBadRecords,
	}
	p, err := pipeline.New(pcfg)
	if err != nil {
		t.Fatal(err)
	}
	vocab := data.NewVocabulary()
	out := map[int]string{}
	_, err = p.RunContext(context.Background(),
		pipeline.ReaderSource(strings.NewReader(input), vocab),
		func(w pipeline.Window) error {
			out[w.Position] = renderWindow(t, w, vocab)
			return nil
		})
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	return out
}

// ---- HTTP test client ----

type tClient struct {
	t    *testing.T
	base string
}

// newTestServer builds a Server, mounts its routes on an httptest server,
// and arranges teardown.
func newTestServer(t *testing.T, opts Options) (*Server, *tClient) {
	t.Helper()
	srv := New(opts)
	mux := http.NewServeMux()
	srv.Routes(mux)
	hs := httptest.NewServer(mux)
	t.Cleanup(hs.Close)
	t.Cleanup(srv.Abort)
	return srv, &tClient{t: t, base: hs.URL}
}

func (c *tClient) do(method, path string, body io.Reader) (*http.Response, []byte) {
	c.t.Helper()
	req, err := http.NewRequest(method, c.base+path, body)
	if err != nil {
		c.t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		c.t.Fatal(err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		c.t.Fatal(err)
	}
	return resp, b
}

func (c *tClient) create(cfg StreamConfig) StreamStatus {
	c.t.Helper()
	b, err := json.Marshal(cfg)
	if err != nil {
		c.t.Fatal(err)
	}
	resp, body := c.do("POST", "/v1/streams", bytes.NewReader(b))
	if resp.StatusCode != http.StatusCreated {
		c.t.Fatalf("create %s: %d %s", cfg.ID, resp.StatusCode, body)
	}
	var st StreamStatus
	if err := json.Unmarshal(body, &st); err != nil {
		c.t.Fatal(err)
	}
	return st
}

// ingestAll streams input to a stream in chunks, resuming from the
// accepted offset on 429/503 — the documented client retry contract.
func (c *tClient) ingestAll(id, input string) {
	c.t.Helper()
	lines := strings.Split(strings.TrimRight(input, "\n"), "\n")
	off := 0
	deadline := time.Now().Add(60 * time.Second)
	for off < len(lines) {
		end := off + 100
		if end > len(lines) {
			end = len(lines)
		}
		chunk := strings.Join(lines[off:end], "\n") + "\n"
		resp, body := c.do("POST", "/v1/streams/"+id+"/records", strings.NewReader(chunk))
		var ir ingestResponse
		if err := json.Unmarshal(body, &ir); err != nil {
			c.t.Fatalf("ingest %s: bad response %q", id, body)
		}
		switch resp.StatusCode {
		case http.StatusOK:
			off = end
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			off += ir.Accepted
			time.Sleep(5 * time.Millisecond)
		default:
			c.t.Fatalf("ingest %s: %d %s", id, resp.StatusCode, body)
		}
		if time.Now().After(deadline) {
			c.t.Fatalf("ingest %s: stuck at line %d/%d", id, off, len(lines))
		}
	}
}

func (c *tClient) closeStream(id string) {
	c.t.Helper()
	resp, body := c.do("POST", "/v1/streams/"+id+"/close", nil)
	if resp.StatusCode != http.StatusOK {
		c.t.Fatalf("close %s: %d %s", id, resp.StatusCode, body)
	}
}

func (c *tClient) status(id string) (int, StreamStatus) {
	c.t.Helper()
	resp, body := c.do("GET", "/v1/streams/"+id, nil)
	var st StreamStatus
	json.Unmarshal(body, &st)
	return resp.StatusCode, st
}

func (c *tClient) waitState(id, want string, timeout time.Duration) StreamStatus {
	c.t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		code, st := c.status(id)
		if code != http.StatusOK {
			c.t.Fatalf("status %s: %d", id, code)
		}
		if st.State == want {
			return st
		}
		if time.Now().After(deadline) {
			c.t.Fatalf("stream %s stuck in %q (want %q): %+v", id, st.State, want, st)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func (c *tClient) windows(id string) map[int]string {
	c.t.Helper()
	resp, body := c.do("GET", "/v1/streams/"+id+"/windows", nil)
	if resp.StatusCode != http.StatusOK {
		c.t.Fatalf("windows %s: %d %s", id, resp.StatusCode, body)
	}
	var out struct {
		Windows   []publishedWindow `json:"windows"`
		Truncated bool              `json:"truncated"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		c.t.Fatal(err)
	}
	m := map[int]string{}
	for _, w := range out.Windows {
		m[w.Position] = w.Body
	}
	return m
}

// ---- the differential identity suite ----

// diffSpec is one hosted stream of the differential matrix plus its fault
// injection. Lifetime counters (shared across restarts) make each injected
// fault one-shot, so a restarted run heals instead of looping.
type diffSpec struct {
	cfg   StreamConfig
	input string

	sinkFailAt  int64             // fail (permanently) the Nth emit of the stream's lifetime
	sinkPanicAt int64             // panic on the Nth emit
	srcFailAt   int64             // fail (permanently) the Nth source read
	transient   *faultinject.Plan // per-run retryable sink faults

	sinkCalls atomic.Int64
	srcCalls  atomic.Int64
}

// TestDifferentialIdentity hosts nine concurrent streams — clean ones
// across schemes and worker tiers, one fed malformed lines, one with
// retried transient sink faults, and three that hard-fail (sink error,
// sink panic, source error) and must restart from checkpoint + replay —
// and pins every stream's published windows byte-identical to independent
// single-stream reference runs.
func TestDifferentialIdentity(t *testing.T) {
	specs := []*diffSpec{
		{cfg: withScheme(testConfig("clean-basic", 1), "basic", 1)},
		{cfg: testConfig("clean-hybrid", 2)},
		{cfg: withScheme(testConfig("clean-ratio", 3), "ratio", 4)},
		{cfg: withScheme(testConfig("clean-order", 4), "order", 1)},
		{cfg: badBudget(testConfig("bad-lines", 5))},
		{cfg: withRetries(testConfig("transient-sink", 6), 5),
			transient: &faultinject.Plan{FailEvery: 4, MaxFailures: 3, StallOn: 2, Stall: 20 * time.Millisecond}},
		{cfg: testConfig("hard-sink", 7), sinkFailAt: 3},
		{cfg: testConfig("panic-sink", 8), sinkPanicAt: 2},
		{cfg: testConfig("hard-source", 9), srcFailAt: 350},
	}
	byID := map[string]*diffSpec{}
	inputs := map[string]string{}
	refs := map[string]map[int]string{}
	for i, sp := range specs {
		sp.cfg.CheckpointEvery = 1
		byID[sp.cfg.ID] = sp
		input := genInput(t, uint64(100+i), 500)
		if sp.cfg.ID == "bad-lines" {
			input = withBadLines(input, 40)
		}
		inputs[sp.cfg.ID] = input
		refs[sp.cfg.ID] = referenceWindows(t, sp.cfg, input)
		if len(refs[sp.cfg.ID]) == 0 {
			t.Fatalf("reference run for %s published nothing", sp.cfg.ID)
		}
	}

	opts := Options{
		DataDir:         t.TempDir(),
		Registry:        telemetry.NewRegistry(),
		BreakerFailures: 4, // one-shot faults must restart, not quarantine
		RestartBackoff:  time.Millisecond,
		WrapSource: func(id string, src pipeline.RecordSource) pipeline.RecordSource {
			sp := byID[id]
			if sp == nil || sp.srcFailAt == 0 {
				return src
			}
			return sourceFunc(func() (itemset.Itemset, error) {
				if sp.srcCalls.Add(1) == sp.srcFailAt {
					return itemset.Itemset{}, fmt.Errorf("injected permanent source failure")
				}
				return src.Next()
			})
		},
		WrapSink: func(id string, emit func(pipeline.Window) error) func(pipeline.Window) error {
			sp := byID[id]
			if sp == nil {
				return emit
			}
			if sp.transient != nil {
				emit = faultinject.NewSink(emit, *sp.transient).Emit
			}
			if sp.sinkFailAt == 0 && sp.sinkPanicAt == 0 {
				return emit
			}
			return func(w pipeline.Window) error {
				switch n := sp.sinkCalls.Add(1); {
				case n == sp.sinkFailAt:
					return fmt.Errorf("injected permanent sink failure at emit %d", n)
				case n == sp.sinkPanicAt:
					panic("injected sink panic")
				}
				return emit(w)
			}
		},
	}
	_, c := newTestServer(t, opts)

	var wg sync.WaitGroup
	for _, sp := range specs {
		c.create(sp.cfg)
		sp := sp
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.ingestAll(sp.cfg.ID, inputs[sp.cfg.ID])
			c.closeStream(sp.cfg.ID)
		}()
	}
	wg.Wait()

	for _, sp := range specs {
		id := sp.cfg.ID
		st := c.waitState(id, StateDone, 60*time.Second)
		got := c.windows(id)
		ref := refs[id]
		if len(got) != len(ref) {
			t.Errorf("%s: published %d windows, reference published %d", id, len(got), len(ref))
		}
		for pos, want := range ref {
			if got[pos] != want {
				t.Errorf("%s: window at position %d differs from the reference run\n--- server ---\n%s--- reference ---\n%s",
					id, pos, got[pos], want)
			}
		}
		faulted := sp.sinkFailAt != 0 || sp.sinkPanicAt != 0 || sp.srcFailAt != 0
		if faulted && st.Restarts == 0 {
			t.Errorf("%s: fault was injected but the stream never restarted", id)
		}
		if !faulted && st.Restarts != 0 {
			t.Errorf("%s: clean stream restarted %d times", id, st.Restarts)
		}
	}
}

// TestCrashRestartResume aborts a server mid-stream (simulated crash: no
// final checkpoints) and resumes the stream in a fresh server over the
// same checkpoint root with a full client-side replay; the resumed tail
// must be byte-identical to the uninterrupted reference run.
func TestCrashRestartResume(t *testing.T) {
	root := t.TempDir()
	cfg := testConfig("s", 42)
	cfg.CheckpointEvery = 1
	input := genInput(t, 7, 600)
	ref := referenceWindows(t, cfg, input)

	srv1, c1 := newTestServer(t, Options{DataDir: root})
	c1.create(cfg)
	lines := strings.SplitAfter(strings.TrimRight(input, "\n")+"\n", "\n")
	c1.ingestAll("s", strings.Join(lines[:400], ""))
	// Wait until at least one checkpoint beyond the first window exists so
	// the resume actually fast-forwards.
	deadline := time.Now().Add(30 * time.Second)
	for {
		_, st := c1.status("s")
		if st.CheckpointRecords >= uint64(cfg.Window) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no checkpoint after 400 records: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
	srv1.Abort() // crash: queued tail and any unsaved progress are lost

	_, c2 := newTestServer(t, Options{DataDir: root})
	rcfg := cfg
	rcfg.Resume = true
	st := c2.create(rcfg)
	if st.CheckpointRecords < uint64(cfg.Window) {
		t.Fatalf("resume did not load the checkpoint: %+v", st)
	}
	c2.ingestAll("s", input) // resume contract: replay from record 0
	c2.closeStream("s")
	c2.waitState("s", StateDone, 60*time.Second)

	got := c2.windows("s")
	if len(got) == 0 {
		t.Fatal("resumed stream republished nothing")
	}
	for pos, body := range got {
		if ref[pos] != body {
			t.Errorf("resumed window at position %d differs from the reference run", pos)
		}
	}
	final := 600
	if _, ok := got[final]; !ok {
		t.Errorf("resumed stream never published the final window at %d (got %d windows)", final, len(got))
	}
}

// ---- small config helpers ----

func paramsOf(cfg StreamConfig) core.Params {
	return core.Params{
		Epsilon: cfg.Epsilon, Delta: cfg.Delta,
		MinSupport: cfg.MinSupport, VulnSupport: cfg.VulnSupport,
	}
}

func withScheme(cfg StreamConfig, scheme string, workers int) StreamConfig {
	cfg.Scheme = scheme
	cfg.Workers = workers
	return cfg
}

func withRetries(cfg StreamConfig, retries int) StreamConfig {
	cfg.EmitRetries = retries
	return cfg
}

func badBudget(cfg StreamConfig) StreamConfig {
	cfg.MaxBadRecords = -1
	return cfg
}

// sourceFunc adapts a closure to pipeline.RecordSource.
type sourceFunc func() (itemset.Itemset, error)

func (f sourceFunc) Next() (itemset.Itemset, error) { return f() }
