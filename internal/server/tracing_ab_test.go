package server

// A/B identity for the observability surface itself: a server-hosted
// stream with the flight recorder and the telemetry registry fully on
// must publish windows byte-identical to the same stream with both off —
// and to a standalone reference run. This is the "observation-only"
// guarantee the tentpole instrumentation (ingest spans, latency
// histograms, end-to-end stamps) rides on. CI runs it race-enabled.

import (
	"encoding/json"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// runHosted hosts one stream, feeds it input, drains it, and returns its
// published windows (position → rendered body) plus the client for any
// follow-up requests.
func runHosted(t *testing.T, cfg StreamConfig, input string, reg *telemetry.Registry) (map[int]string, *tClient) {
	t.Helper()
	_, client := newTestServer(t, Options{Registry: reg})
	client.create(cfg)
	client.ingestAll(cfg.ID, input)
	client.closeStream(cfg.ID)
	client.waitState(cfg.ID, StateDone, 30*time.Second)
	return client.windows(cfg.ID), client
}

func TestServerTracingABIdentity(t *testing.T) {
	cfg := testConfig("ab-observe", 77)
	input := genInput(t, 77, 600)
	ref := referenceWindows(t, cfg, input)
	if len(ref) == 0 {
		t.Fatal("reference run published no windows")
	}

	// A: observability fully off — no registry, no flight recorder.
	cfgOff := cfg
	cfgOff.TraceWindows = 0
	winOff, _ := runHosted(t, cfgOff, input, nil)

	// B: observability fully on — registry plus a 64-window flight
	// recorder capturing ingest request spans and window spans.
	cfgOn := cfg
	cfgOn.TraceWindows = 64
	winOn, clientOn := runHosted(t, cfgOn, input, telemetry.NewRegistry())

	if len(winOff) != len(ref) || len(winOn) != len(ref) {
		t.Fatalf("window counts diverge: off=%d on=%d ref=%d", len(winOff), len(winOn), len(ref))
	}
	for pos, want := range ref {
		if winOff[pos] != want {
			t.Errorf("window %d: tracing-off body diverges from reference", pos)
		}
		if winOn[pos] != want {
			t.Errorf("window %d: tracing-on body diverges from reference", pos)
		}
	}

	// The traced stream's export must put an ingest request span and a
	// window span in the same Perfetto timeline: window roots on their
	// per-window tracks, ingest roots on the shared tid-0 "ingest" lane.
	resp, body := clientOn.do("GET", "/v1/streams/"+cfgOn.ID+"/trace", nil)
	if resp.StatusCode != 200 {
		t.Fatalf("trace export: %d %s", resp.StatusCode, body)
	}
	var export struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Cat  string `json:"cat"`
			Ph   string `json:"ph"`
			Pid  int    `json:"pid"`
			Tid  uint64 `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(body, &export); err != nil {
		t.Fatalf("trace export is not valid JSON: %v", err)
	}
	var sawIngest, sawWindow bool
	ingestPid, windowPid := -1, -1
	for _, ev := range export.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		switch ev.Cat {
		case "ingest":
			sawIngest = true
			ingestPid = ev.Pid
			if ev.Tid != 0 {
				t.Errorf("ingest root %q on tid %d, want the shared tid-0 lane", ev.Name, ev.Tid)
			}
		case "window":
			sawWindow = true
			windowPid = ev.Pid
		}
	}
	if !sawIngest || !sawWindow {
		t.Fatalf("trace export missing root spans: ingest=%v window=%v (%d events)",
			sawIngest, sawWindow, len(export.TraceEvents))
	}
	if ingestPid != windowPid {
		t.Errorf("ingest (pid %d) and window (pid %d) roots are in different processes; "+
			"one timeline must show both", ingestPid, windowPid)
	}
}
