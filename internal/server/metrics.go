package server

// Server-layer telemetry: stream lifecycle gauges, admission/backpressure
// rejection counters, restart/quarantine counters, and per-stream labeled
// throughput counters. Like the pipeline's instruments these are strictly
// observational — the differential suite pins server-hosted output
// byte-identical to standalone runs with metrics on.

import (
	"runtime"
	"strconv"
	"sync"
	"time"

	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/wal"
)

// Server metric names (see OBSERVABILITY.md for the full reference).
const (
	MetricStreams          = "butterfly_server_streams"
	MetricIngestRejections = "butterfly_server_ingest_rejections_total"
	MetricInflightBytes    = "butterfly_server_inflight_bytes"
	MetricRestarts         = "butterfly_server_restarts_total"
	MetricQuarantines      = "butterfly_server_quarantines_total"
	MetricStreamRecords    = "butterfly_server_stream_records_total"
	MetricStreamWindows    = "butterfly_server_stream_windows_total"
	MetricDrainSeconds     = "butterfly_server_drain_seconds"
	MetricIngestSeconds    = "butterfly_server_ingest_seconds"
	MetricQueueAge         = "butterfly_server_queue_age_seconds"
	MetricQueueDepth       = "butterfly_server_queue_depth"
	MetricE2ESeconds       = "butterfly_server_e2e_seconds"
	MetricE2ESlowest       = "butterfly_server_e2e_slowest_seconds"
	MetricRecoverySeconds  = "butterfly_recovery_seconds"
	MetricRecoveryStreams  = "butterfly_recovery_streams"
	MetricRecoveryReplay   = "butterfly_recovery_replay_lines_per_second"
	MetricBuildInfo        = "butterfly_build_info"
	MetricCheckpointAge    = "butterfly_checkpoint_last_save_age_seconds"
)

// Ingest rejection reasons (the MetricIngestRejections label values).
const (
	rejectBackpressure = "backpressure"
	rejectOverload     = "overload"
	rejectClosed       = "closed"
	rejectPaused       = "paused"
	rejectQuarantined  = "quarantined"
)

// Quarantine reasons (the MetricQuarantines label values).
const (
	quarBreaker           = "breaker"
	quarRestartImpossible = "restart_impossible"
	quarPanic             = "panic"
	quarConfig            = "config"
	quarAdoption          = "adoption"
)

// Boot-recovery phases (the MetricRecoverySeconds label values).
const (
	recPhaseManifestLoad = "manifest_load"
	recPhaseOrphanSweep  = "orphan_sweep"
	recPhaseAdopt        = "adopt"
	recPhaseChainApply   = "chain_apply"
	recPhaseWALOpen      = "wal_open"
	recPhaseWALReplay    = "wal_replay"
	recPhaseTotal        = "total"
)

// Boot-recovery stream outcomes (the MetricRecoveryStreams label values).
const (
	recOutcomeAdopted = "adopted"
	recOutcomeParked  = "parked"
)

// e2eBuckets extends the default duration ladder: a record's accepted-line
// → published-window latency is dominated by how long its window takes to
// fill, which on a slow stream is minutes, not the sub-second stage times
// DefBuckets was sized for.
var e2eBuckets = append(append([]float64(nil), telemetry.DefBuckets...), 30, 60, 300, 1800)

// RegisterMetrics pre-registers the server's instrument namespace on reg
// (with placeholder label values for the labeled families) so the
// observability doc-sync test can assemble the full metric surface without
// standing up a server.
func RegisterMetrics(reg *telemetry.Registry) {
	m := newServerMetrics(reg)
	m.rejection(rejectBackpressure)
	m.quarantineCounter(quarBreaker)
	m.streamCounters("example")
	m.streamQueueDepth("example", func() float64 { return 0 })
	m.streamCheckpointAge("example", func() float64 { return 0 })
	m.recoveryPhase(recPhaseTotal)
	m.recoveryStreams(recOutcomeAdopted)
	wal.RegisterMetrics(reg)
}

// serverMetrics holds the registered instruments; a nil *serverMetrics
// disables recording (Options.Registry == nil).
type serverMetrics struct {
	reg        *telemetry.Registry
	byState    map[string]*telemetry.Gauge
	inflight   *telemetry.Gauge
	restarts   *telemetry.Counter
	drainDur   *telemetry.Gauge
	ingestDur  *telemetry.Histogram
	queueAge   *telemetry.Histogram
	e2eDur     *telemetry.Histogram
	e2eSlowest *telemetry.Gauge
	replayRate *telemetry.Gauge

	// Slowest end-to-end exemplar: the stream/window pair behind the
	// MetricE2ESlowest gauge, surfaced by /healthz so the gauge is always
	// inspectable. Guarded by e2eMu (cold path: updated only on new maxima).
	e2eMu       sync.Mutex
	e2eMax      float64
	e2eExStream string
	e2eExWindow uint64
}

func newServerMetrics(reg *telemetry.Registry) *serverMetrics {
	if reg == nil {
		return nil
	}
	byState := map[string]*telemetry.Gauge{}
	for _, state := range []string{StateRunning, StatePaused, StateQuarantined, StateDone, StateFailed} {
		byState[state] = reg.Gauge(MetricStreams,
			"Hosted streams by lifecycle state.", telemetry.Labels{"state": state})
	}
	reg.Gauge(MetricBuildInfo,
		"Always 1; the labels identify the binary (go version, GOMAXPROCS, trace-ring size).",
		telemetry.Labels{
			"go_version": runtime.Version(),
			"gomaxprocs": strconv.Itoa(runtime.GOMAXPROCS(0)),
			"trace_ring": strconv.Itoa(trace.DefaultWindows),
		}).Set(1)
	return &serverMetrics{
		reg:     reg,
		byState: byState,
		inflight: reg.Gauge(MetricInflightBytes,
			"Approximate bytes queued across every stream's ingest queue.", nil),
		restarts: reg.Counter(MetricRestarts,
			"In-process stream restarts after a failed run (checkpoint + replay).", nil),
		drainDur: reg.Gauge(MetricDrainSeconds,
			"Wall time of the last graceful drain across all streams.", nil),
		ingestDur: reg.Histogram(MetricIngestSeconds,
			"Wall time of one accepted ingest request (parse + WAL append + group fsync + enqueue).",
			nil, nil),
		queueAge: reg.Histogram(MetricQueueAge,
			"Age of a record at dequeue: time spent waiting in the ingest queue before the pipeline consumed it.",
			nil, nil),
		e2eDur: reg.Histogram(MetricE2ESeconds,
			"End-to-end record latency: accepted ingest line to its window's sanitized publication.",
			e2eBuckets, nil),
		e2eSlowest: reg.Gauge(MetricE2ESlowest,
			"Slowest end-to-end record-to-publish latency seen so far (exemplar stream/window on /healthz).",
			nil),
		replayRate: reg.Gauge(MetricRecoveryReplay,
			"WAL replay throughput of the last boot recovery, in accepted lines per second.", nil),
	}
}

// moveState shifts one stream between lifecycle-state gauges; prev == ""
// counts a newly created stream.
func (m *serverMetrics) moveState(prev, next string) {
	if m == nil {
		return
	}
	if g := m.byState[prev]; g != nil {
		g.Add(-1)
	}
	if g := m.byState[next]; g != nil {
		g.Add(1)
	}
}

// rejection returns the labeled ingest-rejection counter for a reason
// (never nil; unregistered when metrics are off).
func (m *serverMetrics) rejection(reason string) *telemetry.Counter {
	if m == nil {
		return &telemetry.Counter{}
	}
	return m.reg.Counter(MetricIngestRejections,
		"Ingest requests rejected, by reason.", telemetry.Labels{"reason": reason})
}

// streamCounters returns the per-stream labeled throughput counters
// (never nil; unregistered when metrics are off).
func (m *serverMetrics) streamCounters(id string) (records, windows *telemetry.Counter) {
	if m == nil {
		return &telemetry.Counter{}, &telemetry.Counter{}
	}
	records = m.reg.Counter(MetricStreamRecords,
		"Well-formed records accepted into a stream's ingest queue.",
		telemetry.Labels{"stream": id})
	windows = m.reg.Counter(MetricStreamWindows,
		"Sanitized windows published by a stream.",
		telemetry.Labels{"stream": id})
	return records, windows
}

func (m *serverMetrics) setInflight(v int64) {
	if m != nil {
		m.inflight.Set(float64(v))
	}
}

func (m *serverMetrics) addRestart() {
	if m != nil {
		m.restarts.Inc()
	}
}

// quarantineCounter returns the labeled quarantine counter for a reason
// (never nil; unregistered when metrics are off).
func (m *serverMetrics) quarantineCounter(reason string) *telemetry.Counter {
	if m == nil {
		return &telemetry.Counter{}
	}
	return m.reg.Counter(MetricQuarantines,
		"Streams quarantined, by reason (breaker trip, impossible restart, supervisor panic, rejected config, failed adoption).",
		telemetry.Labels{"reason": reason})
}

func (m *serverMetrics) addQuarantine(reason string) {
	if m != nil {
		m.quarantineCounter(reason).Inc()
	}
}

func (m *serverMetrics) observeDrain(took time.Duration) {
	if m != nil {
		m.drainDur.Set(took.Seconds())
	}
}

func (m *serverMetrics) observeIngest(took time.Duration) {
	if m != nil {
		m.ingestDur.Observe(took.Seconds())
	}
}

func (m *serverMetrics) observeQueueAge(age time.Duration) {
	if m != nil {
		m.queueAge.Observe(age.Seconds())
	}
}

// observeE2E records one record-to-publish latency and keeps the slowest
// exemplar (stream + window id) behind the gauge.
func (m *serverMetrics) observeE2E(stream string, window uint64, sec float64) {
	if m == nil {
		return
	}
	m.e2eDur.Observe(sec)
	m.e2eMu.Lock()
	if sec > m.e2eMax {
		m.e2eMax = sec
		m.e2eExStream = stream
		m.e2eExWindow = window
		m.e2eSlowest.Set(sec)
	}
	m.e2eMu.Unlock()
}

// slowestE2E returns the slowest end-to-end exemplar (zeroes before any
// observation).
func (m *serverMetrics) slowestE2E() (stream string, window uint64, sec float64) {
	if m == nil {
		return "", 0, 0
	}
	m.e2eMu.Lock()
	defer m.e2eMu.Unlock()
	return m.e2eExStream, m.e2eExWindow, m.e2eMax
}

// streamQueueDepth registers the per-stream pull-style queue-depth gauge.
func (m *serverMetrics) streamQueueDepth(id string, fn func() float64) {
	if m == nil {
		return
	}
	m.reg.GaugeFunc(MetricQueueDepth,
		"Records waiting in a stream's ingest queue, read at scrape time (the autoscaling signal).",
		telemetry.Labels{"stream": id}, fn)
}

// streamCheckpointAge registers the per-stream checkpoint-staleness gauge.
func (m *serverMetrics) streamCheckpointAge(id string, fn func() float64) {
	if m == nil {
		return
	}
	m.reg.GaugeFunc(MetricCheckpointAge,
		"Seconds since a stream's last persisted checkpoint generation (0 before the first save).",
		telemetry.Labels{"stream": id}, fn)
}

// recoveryPhase returns the labeled boot-recovery phase-duration gauge.
func (m *serverMetrics) recoveryPhase(phase string) *telemetry.Gauge {
	if m == nil {
		return &telemetry.Gauge{}
	}
	return m.reg.Gauge(MetricRecoverySeconds,
		"Wall time of the last boot recovery, by phase (manifest load, orphan sweep, adopt total, chain apply, WAL open, WAL replay).",
		telemetry.Labels{"phase": phase})
}

// recoveryStreams returns the labeled boot-recovery stream-count gauge.
func (m *serverMetrics) recoveryStreams(outcome string) *telemetry.Gauge {
	if m == nil {
		return &telemetry.Gauge{}
	}
	return m.reg.Gauge(MetricRecoveryStreams,
		"Streams processed by the last boot recovery, by outcome (adopted runnable vs parked).",
		telemetry.Labels{"outcome": outcome})
}

func (m *serverMetrics) setReplayRate(v float64) {
	if m != nil {
		m.replayRate.Set(v)
	}
}
