package server

// Server-layer telemetry: stream lifecycle gauges, admission/backpressure
// rejection counters, restart/quarantine counters, and per-stream labeled
// throughput counters. Like the pipeline's instruments these are strictly
// observational — the differential suite pins server-hosted output
// byte-identical to standalone runs with metrics on.

import (
	"time"

	"repro/internal/telemetry"
	"repro/internal/wal"
)

// Server metric names (see OBSERVABILITY.md for the full reference).
const (
	MetricStreams          = "butterfly_server_streams"
	MetricIngestRejections = "butterfly_server_ingest_rejections_total"
	MetricInflightBytes    = "butterfly_server_inflight_bytes"
	MetricRestarts         = "butterfly_server_restarts_total"
	MetricQuarantines      = "butterfly_server_quarantines_total"
	MetricStreamRecords    = "butterfly_server_stream_records_total"
	MetricStreamWindows    = "butterfly_server_stream_windows_total"
	MetricDrainSeconds     = "butterfly_server_drain_seconds"
)

// Ingest rejection reasons (the MetricIngestRejections label values).
const (
	rejectBackpressure = "backpressure"
	rejectOverload     = "overload"
	rejectClosed       = "closed"
	rejectPaused       = "paused"
	rejectQuarantined  = "quarantined"
)

// Quarantine reasons (the MetricQuarantines label values).
const (
	quarBreaker           = "breaker"
	quarRestartImpossible = "restart_impossible"
	quarPanic             = "panic"
	quarConfig            = "config"
	quarAdoption          = "adoption"
)

// RegisterMetrics pre-registers the server's instrument namespace on reg
// (with placeholder label values for the labeled families) so the
// observability doc-sync test can assemble the full metric surface without
// standing up a server.
func RegisterMetrics(reg *telemetry.Registry) {
	m := newServerMetrics(reg)
	m.rejection(rejectBackpressure)
	m.quarantineCounter(quarBreaker)
	m.streamCounters("example")
	wal.RegisterMetrics(reg)
}

// serverMetrics holds the registered instruments; a nil *serverMetrics
// disables recording (Options.Registry == nil).
type serverMetrics struct {
	reg      *telemetry.Registry
	byState  map[string]*telemetry.Gauge
	inflight *telemetry.Gauge
	restarts *telemetry.Counter
	drainDur *telemetry.Gauge
}

func newServerMetrics(reg *telemetry.Registry) *serverMetrics {
	if reg == nil {
		return nil
	}
	byState := map[string]*telemetry.Gauge{}
	for _, state := range []string{StateRunning, StatePaused, StateQuarantined, StateDone, StateFailed} {
		byState[state] = reg.Gauge(MetricStreams,
			"Hosted streams by lifecycle state.", telemetry.Labels{"state": state})
	}
	return &serverMetrics{
		reg:     reg,
		byState: byState,
		inflight: reg.Gauge(MetricInflightBytes,
			"Approximate bytes queued across every stream's ingest queue.", nil),
		restarts: reg.Counter(MetricRestarts,
			"In-process stream restarts after a failed run (checkpoint + replay).", nil),
		drainDur: reg.Gauge(MetricDrainSeconds,
			"Wall time of the last graceful drain across all streams.", nil),
	}
}

// moveState shifts one stream between lifecycle-state gauges; prev == ""
// counts a newly created stream.
func (m *serverMetrics) moveState(prev, next string) {
	if m == nil {
		return
	}
	if g := m.byState[prev]; g != nil {
		g.Add(-1)
	}
	if g := m.byState[next]; g != nil {
		g.Add(1)
	}
}

// rejection returns the labeled ingest-rejection counter for a reason
// (never nil; unregistered when metrics are off).
func (m *serverMetrics) rejection(reason string) *telemetry.Counter {
	if m == nil {
		return &telemetry.Counter{}
	}
	return m.reg.Counter(MetricIngestRejections,
		"Ingest requests rejected, by reason.", telemetry.Labels{"reason": reason})
}

// streamCounters returns the per-stream labeled throughput counters
// (never nil; unregistered when metrics are off).
func (m *serverMetrics) streamCounters(id string) (records, windows *telemetry.Counter) {
	if m == nil {
		return &telemetry.Counter{}, &telemetry.Counter{}
	}
	records = m.reg.Counter(MetricStreamRecords,
		"Well-formed records accepted into a stream's ingest queue.",
		telemetry.Labels{"stream": id})
	windows = m.reg.Counter(MetricStreamWindows,
		"Sanitized windows published by a stream.",
		telemetry.Labels{"stream": id})
	return records, windows
}

func (m *serverMetrics) setInflight(v int64) {
	if m != nil {
		m.inflight.Set(float64(v))
	}
}

func (m *serverMetrics) addRestart() {
	if m != nil {
		m.restarts.Inc()
	}
}

// quarantineCounter returns the labeled quarantine counter for a reason
// (never nil; unregistered when metrics are off).
func (m *serverMetrics) quarantineCounter(reason string) *telemetry.Counter {
	if m == nil {
		return &telemetry.Counter{}
	}
	return m.reg.Counter(MetricQuarantines,
		"Streams quarantined, by reason (breaker trip, impossible restart, supervisor panic, rejected config, failed adoption).",
		telemetry.Labels{"reason": reason})
}

func (m *serverMetrics) addQuarantine(reason string) {
	if m != nil {
		m.quarantineCounter(reason).Inc()
	}
}

func (m *serverMetrics) observeDrain(took time.Duration) {
	if m != nil {
		m.drainDur.Set(took.Seconds())
	}
}
