package server

// Goroutine hygiene: a full stream lifecycle — create, ingest, close,
// delete, shutdown — must return the process to its baseline goroutine
// count. Supervisors, pipeline stages, and retired sources all have owners;
// anything left running here is a leak that would accumulate per stream in
// a long-lived server.

import (
	"context"
	"runtime"
	"runtime/pprof"
	"strings"
	"testing"
	"time"
)

func TestNoGoroutineLeaks(t *testing.T) {
	baseline := runtime.NumGoroutine()

	srv := New(Options{DataDir: t.TempDir()})
	for _, id := range []string{"a", "b", "c"} {
		cfg := testConfig(id, 1)
		cfg.CheckpointEvery = 1
		if _, err := srv.Create(cfg); err != nil {
			t.Fatal(err)
		}
		st := srv.get(id)
		if _, _, err := st.ingest(strings.NewReader(genInput(t, 50, 300)), -1); err != nil {
			t.Fatal(err)
		}
	}
	// One stream is deleted mid-flight; the others drain gracefully.
	if err := srv.Delete("c"); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"a", "b"} {
		if _, err := srv.CloseIngest(id); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	rep := srv.Shutdown(ctx)
	if !rep.Clean {
		t.Fatalf("shutdown not clean: %+v", rep)
	}

	// Goroutines unwind asynchronously after Shutdown returns; poll briefly.
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline+1 {
			return
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	var buf strings.Builder
	pprof.Lookup("goroutine").WriteTo(&buf, 1)
	t.Fatalf("goroutines: %d, baseline %d; leaked stacks:\n%s",
		runtime.NumGoroutine(), baseline, buf.String())
}
