package server

// The recovery differential suite: kill the daemon (simulated via Abort —
// buffered WAL frames drop exactly as a real death would drop them) at
// every crash boundary of the two durable write protocols — checkpoint
// save (before-write, before-rename, torn-write) and WAL group sync
// (before-sync, torn-sync) — plus clean kills between requests and a torn
// WAL tail, then Recover in a fresh server over the same data dir and pin:
//
//   - union of windows published across both incarnations == the
//     uninterrupted reference run, byte for byte (consistent
//     republication, zero accepted-record loss, no divergent duplicates);
//   - every line the client got a 2xx for survives (the client re-sends
//     from its acked offset and the ?offset= dedup absorbs the overlap).
//
// CI runs these race-enabled.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/faultinject"
	"repro/internal/pipeline"
	"repro/internal/telemetry"
	"repro/internal/wal"
)

// durClient drives ingest the way a durability-aware client must: tracking
// its acked line count and re-sending from it with ?offset= after any
// failure, so retries are idempotent and a lost response cannot double- or
// under-ingest.
type durClient struct {
	t     *testing.T
	c     *tClient
	id    string
	lines []string
	acked int
}

func newDurClient(t *testing.T, c *tClient, id, input string) *durClient {
	return &durClient{t: t, c: c, id: id,
		lines: strings.Split(strings.TrimRight(input, "\n"), "\n")}
}

func (d *durClient) rebase(c *tClient) { d.c = c }

// feed sends the unacked tail in small chunks. It returns false at the
// first durability failure (HTTP 500 — the injected crash landed inside
// this request's group sync) or when stop() reports the crash fired
// elsewhere (checkpoint-save injection); true once everything is acked.
func (d *durClient) feed(stop func() bool) bool {
	d.t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for d.acked < len(d.lines) {
		if stop != nil && stop() {
			return false
		}
		end := d.acked + 37
		if end > len(d.lines) {
			end = len(d.lines)
		}
		chunk := strings.Join(d.lines[d.acked:end], "\n") + "\n"
		resp, body := d.c.do("POST",
			fmt.Sprintf("/v1/streams/%s/records?offset=%d", d.id, d.acked),
			strings.NewReader(chunk))
		var ir ingestResponse
		if err := json.Unmarshal(body, &ir); err != nil {
			d.t.Fatalf("ingest %s: bad response %q", d.id, body)
		}
		switch resp.StatusCode {
		case http.StatusOK, http.StatusTooManyRequests, http.StatusServiceUnavailable:
			d.acked += ir.Accepted
			// The stream may hold more of our lines than we ever saw
			// acknowledged (recovery adopted a torn group's synced frames);
			// the response total is the authoritative resume offset.
			if n := int(ir.AcceptedLines); n > d.acked && n <= len(d.lines) {
				d.acked = n
			}
			if resp.StatusCode != http.StatusOK {
				time.Sleep(2 * time.Millisecond)
			}
		case http.StatusInternalServerError:
			// The whole group was unwound before acceptance; nothing acked.
			if ir.Accepted != 0 {
				d.t.Fatalf("ingest %s: durability failure acked %d lines", d.id, ir.Accepted)
			}
			return false
		default:
			d.t.Fatalf("ingest %s: %d %s", d.id, resp.StatusCode, body)
		}
		if time.Now().After(deadline) {
			d.t.Fatalf("ingest %s: stuck at line %d/%d", d.id, d.acked, len(d.lines))
		}
	}
	return true
}

// crashSpec is one kill boundary of the recovery matrix.
type crashSpec struct {
	name string
	// killAfter stops feeding once at least this many lines are acked (clean
	// kill between requests). 0: the injected hook decides the kill moment.
	killAfter int
	// ckptPoint/ckptSave install a checkpoint.Store crash at that protocol
	// point of the Nth save.
	ckptPoint string
	ckptSave  int
	// walPoint/walSync install a wal.Log crash at that point of the Nth
	// group sync.
	walPoint string
	walSync  int
	// tearTail appends garbage to the newest WAL segment after the kill —
	// the torn final frame a real power cut leaves.
	tearTail bool
	// badLines splices malformed lines into the input (budget unlimited),
	// pinning that the WAL carries bad-line positions through recovery.
	badLines bool
}

func TestRecoverKillAtEveryBoundary(t *testing.T) {
	specs := []crashSpec{
		{name: "kill-early", killAfter: 150},
		{name: "kill-late", killAfter: 450},
		{name: "kill-bad-lines", killAfter: 300, badLines: true},
		{name: "ckpt-before-write", ckptPoint: checkpoint.CrashBeforeWrite, ckptSave: 2},
		{name: "ckpt-before-rename", ckptPoint: checkpoint.CrashBeforeRename, ckptSave: 2},
		{name: "ckpt-torn-write", ckptPoint: checkpoint.CrashTornWrite, ckptSave: 3},
		{name: "wal-before-sync", walPoint: wal.CrashBeforeSync, walSync: 5},
		{name: "wal-torn-sync", walPoint: wal.CrashTornSync, walSync: 5},
		{name: "torn-tail", killAfter: 300, tearTail: true},
	}
	for _, sp := range specs {
		sp := sp
		t.Run(sp.name, func(t *testing.T) {
			t.Parallel()
			runCrashSpec(t, sp)
		})
	}
}

func runCrashSpec(t *testing.T, sp crashSpec) {
	root := t.TempDir()
	cfg := testConfig("s", 42)
	cfg.CheckpointEvery = 1
	input := genInput(t, 7, 600)
	if sp.badLines {
		cfg.MaxBadRecords = -1
		input = withBadLines(input, 40)
	}
	ref := referenceWindows(t, cfg, input)
	if len(ref) == 0 {
		t.Fatal("reference run published nothing")
	}

	var fired atomic.Bool
	opts1 := Options{DataDir: root, WALSegmentBytes: 4 << 10}
	if sp.ckptPoint != "" {
		plan := &faultinject.CrashPlan{Point: sp.ckptPoint, OnSave: sp.ckptSave}
		hook := plan.Hook()
		opts1.hookStore = func(_ string, store *checkpoint.Store) {
			store.CrashHook = func(point string, save int) bool {
				if hook(point, save) {
					fired.Store(true)
					return true
				}
				return false
			}
		}
	}
	if sp.walPoint != "" {
		opts1.hookWAL = func(_ string, lg *wal.Log) {
			lg.CrashHook = func(point string, sync int) bool {
				if point == sp.walPoint && sync == sp.walSync {
					fired.Store(true)
					return true
				}
				return false
			}
		}
	}

	srv1, c1 := newTestServer(t, opts1)
	c1.create(cfg)
	dc := newDurClient(t, c1, "s", input)
	stop := func() bool {
		if sp.killAfter > 0 {
			return dc.acked >= sp.killAfter
		}
		return fired.Load()
	}
	if done := dc.feed(stop); done {
		t.Fatalf("crash never fired; stream fully ingested (%d lines)", dc.acked)
	}
	if sp.ckptPoint != "" || sp.walPoint != "" {
		if !fired.Load() {
			t.Fatal("injected crash hook never fired")
		}
	}
	ackedAtKill := dc.acked
	srv1.Abort() // the kill: unsynced WAL buffers drop, nothing acked is lost
	win1 := c1.windows("s")

	if sp.tearTail {
		segs, err := filepath.Glob(filepath.Join(root, "streams", "s", wal.SegmentGlob))
		if err != nil || len(segs) == 0 {
			t.Fatalf("no wal segments to tear: %v (%d)", err, len(segs))
		}
		sort.Strings(segs)
		if err := faultinject.AppendBytes(segs[len(segs)-1],
			[]byte("\xde\xad\xbe\xef torn final frame")); err != nil {
			t.Fatal(err)
		}
	}

	srv2, c2 := newTestServer(t, Options{DataDir: root, WALSegmentBytes: 4 << 10})
	rep, err := srv2.Recover()
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if rep.Adopted != 1 || rep.Parked != 0 {
		t.Fatalf("recover adopted %d / parked %d, want 1/0", rep.Adopted, rep.Parked)
	}
	_, st := c2.status("s")
	if !st.Durable {
		t.Fatal("adopted stream is not durable")
	}
	if st.AcceptedLines < uint64(ackedAtKill) {
		t.Fatalf("recovery lost accepted lines: acked %d, recovered %d",
			ackedAtKill, st.AcceptedLines)
	}

	dc.rebase(c2)
	if done := dc.feed(nil); !done {
		t.Fatal("post-recovery feed crashed")
	}
	c2.closeStream("s")
	c2.waitState("s", StateDone, 60*time.Second)
	win2 := c2.windows("s")
	_, final := c2.status("s")
	if final.AcceptedLines != uint64(len(dc.lines)) {
		t.Fatalf("stream accepted %d lines total, client sent %d",
			final.AcceptedLines, len(dc.lines))
	}

	// The union across incarnations must be the reference run exactly:
	// every reference window present, overlapping republications
	// byte-identical, nothing extra.
	union := map[int]string{}
	for pos, body := range win1 {
		union[pos] = body
	}
	for pos, body := range win2 {
		if prev, ok := union[pos]; ok && prev != body {
			t.Errorf("window at position %d republished with different bytes", pos)
		}
		union[pos] = body
	}
	if len(union) != len(ref) {
		t.Errorf("union has %d windows, reference has %d", len(union), len(ref))
	}
	for pos, want := range ref {
		if union[pos] != want {
			t.Errorf("window at position %d differs from the reference run", pos)
		}
	}
	for pos := range union {
		if _, ok := ref[pos]; !ok {
			t.Errorf("union has spurious window at position %d", pos)
		}
	}
}

// TestRecoverManifestStates pins that durable lifecycle states survive the
// kill: a stream quarantined before the crash comes back quarantined with
// its LastError, next to a healthy neighbor that comes back running.
func TestRecoverManifestStates(t *testing.T) {
	root := t.TempDir()
	sink := func(id string, emit func(pipeline.Window) error) func(pipeline.Window) error {
		if id != "q" {
			return emit
		}
		return func(pipeline.Window) error {
			return fmt.Errorf("injected permanent sink failure")
		}
	}
	srv1, c1 := newTestServer(t, Options{
		DataDir: root, BreakerFailures: 2, RestartBackoff: time.Millisecond,
		WrapSink: sink,
	})
	c1.create(testConfig("ok", 1))
	c1.create(testConfig("q", 2))
	c1.ingestAll("ok", genInput(t, 3, 150))
	c1.ingestAll("q", genInput(t, 4, 150))
	c1.waitState("q", StateQuarantined, 30*time.Second)
	srv1.Abort()

	srv2, c2 := newTestServer(t, Options{DataDir: root})
	rep, err := srv2.Recover()
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if rep.Adopted != 1 || rep.Parked != 1 {
		t.Fatalf("recover adopted %d / parked %d, want 1/1", rep.Adopted, rep.Parked)
	}
	_, okSt := c2.status("ok")
	if okSt.State != StateRunning {
		t.Errorf("ok stream adopted as %q, want running", okSt.State)
	}
	_, qSt := c2.status("q")
	if qSt.State != StateQuarantined {
		t.Errorf("q stream adopted as %q, want quarantined", qSt.State)
	}
	if !strings.Contains(qSt.LastError, "injected permanent sink failure") {
		t.Errorf("quarantined stream lost its last error across the kill: %q", qSt.LastError)
	}
	// A resumed quarantine (the fault is gone on srv2) must drain cleanly.
	resp, body := c2.do("POST", "/v1/streams/q/resume", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("resume q: %d %s", resp.StatusCode, body)
	}
	c2.closeStream("q")
	c2.waitState("q", StateDone, 60*time.Second)
}

// TestRecoverOrphanSweep pins the GC ordering contract: directories the
// manifest does not claim are swept at boot, and an unreadable manifest
// aborts recovery without sweeping anything.
func TestRecoverOrphanSweep(t *testing.T) {
	root := t.TempDir()
	srv1, c1 := newTestServer(t, Options{DataDir: root})
	c1.create(testConfig("keep", 1))
	c1.ingestAll("keep", genInput(t, 2, 120))
	srv1.Abort()

	ghost := filepath.Join(root, "streams", "ghost")
	if err := os.MkdirAll(ghost, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(ghost, "junk"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}

	srv2, _ := newTestServer(t, Options{DataDir: root})
	rep, err := srv2.Recover()
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if len(rep.Orphans) != 1 || rep.Orphans[0] != "ghost" {
		t.Fatalf("orphans = %v, want [ghost]", rep.Orphans)
	}
	if _, err := os.Stat(ghost); !os.IsNotExist(err) {
		t.Error("orphan directory survived the sweep")
	}
	if rep.Adopted != 1 {
		t.Fatalf("adopted %d, want 1", rep.Adopted)
	}
	srv2.Abort()

	// Corrupt manifest: recovery must refuse and must not sweep.
	if err := os.WriteFile(filepath.Join(root, "manifest.json"), []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	srv3, _ := newTestServer(t, Options{DataDir: root})
	if _, err := srv3.Recover(); err == nil {
		t.Fatal("recover accepted a corrupt manifest")
	}
	if _, err := os.Stat(filepath.Join(root, "streams", "keep")); err != nil {
		t.Errorf("corrupt-manifest recovery touched stream directories: %v", err)
	}
}

// TestStreamGC pins durable-footprint reclamation: a drained (done) stream
// and a deleted stream both lose their manifest entry and directory, and a
// subsequent recovery adopts nothing.
func TestStreamGC(t *testing.T) {
	root := t.TempDir()
	srv, c := newTestServer(t, Options{DataDir: root})

	c.create(testConfig("drained", 1))
	c.ingestAll("drained", genInput(t, 2, 150))
	c.closeStream("drained")
	c.waitState("drained", StateDone, 60*time.Second)
	waitGone(t, filepath.Join(root, "streams", "drained"))
	if _, ok := srv.manifestEntryFor("drained"); ok {
		t.Error("done stream still in the manifest")
	}

	c.create(testConfig("deleted", 2))
	c.ingestAll("deleted", genInput(t, 3, 150))
	resp, body := c.do("DELETE", "/v1/streams/deleted", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete: %d %s", resp.StatusCode, body)
	}
	waitGone(t, filepath.Join(root, "streams", "deleted"))
	if _, ok := srv.manifestEntryFor("deleted"); ok {
		t.Error("deleted stream still in the manifest")
	}
	srv.Abort()

	srv2, _ := newTestServer(t, Options{DataDir: root})
	rep, err := srv2.Recover()
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if rep.Adopted != 0 || rep.Parked != 0 {
		t.Fatalf("gc'd streams were re-adopted: %+v", rep)
	}
}

func waitGone(t *testing.T, path string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		if _, err := os.Stat(path); os.IsNotExist(err) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s was never garbage-collected", path)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRecoverClosedStreamDrains pins the Closed manifest bit: a stream
// whose ingest was closed before the kill replays its WAL tail after
// recovery and drains to done with the reference windows — no client
// involvement at all.
func TestRecoverClosedStreamDrains(t *testing.T) {
	root := t.TempDir()
	cfg := testConfig("s", 9)
	cfg.CheckpointEvery = 1
	input := genInput(t, 11, 300)
	ref := referenceWindows(t, cfg, input)

	// Gate the first server's sink until it aborts: nothing publishes (or
	// checkpoints) before the kill, so the drain cannot finish — and GC the
	// stream — early. The Closed manifest bit must do all the draining after
	// recovery, fed purely by the WAL.
	var srv1 *Server
	srv1, c1 := newTestServer(t, Options{
		DataDir: root,
		WrapSink: func(_ string, _ func(pipeline.Window) error) func(pipeline.Window) error {
			return func(pipeline.Window) error {
				<-srv1.ctx.Done()
				return fmt.Errorf("sink gated until abort")
			}
		},
	})
	c1.create(cfg)
	c1.ingestAll("s", input)
	c1.closeStream("s")
	srv1.Abort()

	srv2, c2 := newTestServer(t, Options{DataDir: root})
	if _, err := srv2.Recover(); err != nil {
		t.Fatalf("recover: %v", err)
	}
	c2.waitState("s", StateDone, 60*time.Second)
	got := c2.windows("s")
	if len(got) != len(ref) {
		t.Errorf("recovered drain published %d windows, reference has %d", len(got), len(ref))
	}
	for pos, body := range got {
		if ref[pos] != body {
			t.Errorf("window at position %d differs from the reference run", pos)
		}
	}
	if _, ok := got[300]; !ok {
		t.Errorf("recovered closed stream never published its final window (got %d)", len(got))
	}
}

// TestIngestOffsetDedup pins the retry protocol at the unit level:
// duplicate re-sends are absorbed, gaps are refused.
func TestIngestOffsetDedup(t *testing.T) {
	_, c := newTestServer(t, Options{DataDir: t.TempDir()})
	c.create(testConfig("s", 1))
	lines := strings.Split(strings.TrimRight(genInput(t, 2, 30), "\n"), "\n")
	send := func(from, to int, offset int) (int, ingestResponse) {
		t.Helper()
		chunk := strings.Join(lines[from:to], "\n") + "\n"
		resp, body := c.do("POST",
			fmt.Sprintf("/v1/streams/s/records?offset=%d", offset), strings.NewReader(chunk))
		var ir ingestResponse
		if err := json.Unmarshal(body, &ir); err != nil {
			t.Fatalf("bad response %q", body)
		}
		return resp.StatusCode, ir
	}
	if code, ir := send(0, 10, 0); code != http.StatusOK || ir.Accepted != 10 {
		t.Fatalf("initial send: %d accepted %d", code, ir.Accepted)
	}
	// Full duplicate (lost response): absorbed, nothing re-accepted.
	if code, ir := send(0, 10, 0); code != http.StatusOK || ir.Accepted != 0 {
		t.Fatalf("duplicate send: %d accepted %d, want 200/0", code, ir.Accepted)
	}
	// Partial overlap: only the new tail is accepted.
	if code, ir := send(5, 20, 5); code != http.StatusOK || ir.Accepted != 10 {
		t.Fatalf("overlap send: %d accepted %d, want 200/10", code, ir.Accepted)
	}
	// Gap: the client claims lines the stream never saw.
	if code, _ := send(25, 30, 25); code != http.StatusConflict {
		t.Fatalf("gap send: %d, want 409", code)
	}
	_, st := c.status("s")
	if st.AcceptedLines != 20 {
		t.Fatalf("accepted_lines = %d, want 20", st.AcceptedLines)
	}
	if !st.Durable {
		t.Fatal("stream with a data dir is not durable")
	}
}

// TestWALCorruptSealedSegment pins the bit-rot contract: recovery adopts
// the stream on the longest valid prefix (with the damage logged and the
// recoveries metric counting it), and the client's next offset-carrying
// request surfaces the loss as a 409 gap instead of silently re-numbering.
func TestWALCorruptSealedSegment(t *testing.T) {
	root := t.TempDir()
	reg := telemetry.NewRegistry()
	// Fail every checkpoint save on the first server: everything accepted
	// lives only in the WAL, so the sealed-segment damage has no checkpoint
	// to hide behind. (Failed saves fail the run; generous breaker settings
	// keep the stream restarting instead of quarantining.)
	srv1, c1 := newTestServer(t, Options{
		DataDir: root, WALSegmentBytes: 2 << 10,
		BreakerFailures: 1000, RestartBackoff: time.Millisecond,
		hookStore: func(_ string, store *checkpoint.Store) {
			store.CrashHook = func(point string, _ int) bool {
				return point == checkpoint.CrashBeforeWrite
			}
		},
	})
	cfg := testConfig("s", 5)
	c1.create(cfg)
	dc := newDurClient(t, c1, "s", genInput(t, 6, 200))
	if !dc.feed(nil) {
		t.Fatal("feed crashed")
	}
	srv1.Abort()

	segs, err := filepath.Glob(filepath.Join(root, "streams", "s", wal.SegmentGlob))
	if err != nil || len(segs) < 2 {
		des, _ := os.ReadDir(filepath.Join(root, "streams", "s"))
		var names []string
		for _, de := range des {
			info, _ := de.Info()
			names = append(names, fmt.Sprintf("%s(%d)", de.Name(), info.Size()))
		}
		t.Fatalf("want >= 2 segments to corrupt a sealed one, got %d (%v); dir: %v", len(segs), err, names)
	}
	sort.Strings(segs)
	// Flip a byte mid-frame in the first (sealed) segment.
	if err := faultinject.FlipByte(segs[0], 64); err != nil {
		t.Fatal(err)
	}

	srv2, c2 := newTestServer(t, Options{DataDir: root, Registry: reg})
	rep, err := srv2.Recover()
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if rep.Adopted != 1 {
		_, dbg := c2.status("s")
		t.Fatalf("adopted %d, want 1 (corruption must degrade, not refuse): %+v / status %+v", rep.Adopted, rep, dbg)
	}
	_, st := c2.status("s")
	if st.AcceptedLines >= uint64(dc.acked) {
		t.Fatalf("corruption dropped nothing: recovered %d of %d acked", st.AcceptedLines, dc.acked)
	}
	// The client's resend sees the gap explicitly.
	resp, _ := c2.do("POST",
		fmt.Sprintf("/v1/streams/s/records?offset=%d", dc.acked),
		strings.NewReader("1 2 3\n"))
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("post-corruption resend: %d, want 409 gap", resp.StatusCode)
	}
}
