package server

// The observability doc gate, moved here from internal/pipeline: the server
// package sits above the pipeline, publisher, flight recorder AND its own
// instruments, so it is the one place the FULL metric namespace can be
// assembled against OBSERVABILITY.md.

import (
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/pipeline"
	"repro/internal/rng"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// docMetricName matches the first column of the OBSERVABILITY.md metric
// tables: | `butterfly_...` | type | ...
var docMetricName = regexp.MustCompile("^\\| `(butterfly_[a-z0-9_]+)`")

// TestObservabilityDocSync is the doc gate of the acceptance criteria:
// OBSERVABILITY.md's metric tables and the live registry must list exactly
// the same names. It registers the FULL instrument set (pipeline, publisher,
// flight recorder, and the server layer) without running a stream —
// registration alone defines the namespace.
func TestObservabilityDocSync(t *testing.T) {
	reg := telemetry.NewRegistry()
	pipeline.RegisterMetrics(reg)
	pub, err := core.NewPublisher(
		core.Params{Epsilon: 0.1, Delta: 0.4, MinSupport: 10, VulnSupport: 5}, nil, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	pub.SetMetrics(reg)
	trace.New(trace.Options{}).SetMetrics(reg)
	RegisterMetrics(reg)
	registered := reg.Names()
	if len(registered) == 0 {
		t.Fatal("no metrics registered")
	}

	doc, err := os.ReadFile(filepath.Join("..", "..", "OBSERVABILITY.md"))
	if err != nil {
		t.Fatalf("OBSERVABILITY.md unreadable: %v", err)
	}
	documented := map[string]bool{}
	for _, line := range strings.Split(string(doc), "\n") {
		if m := docMetricName.FindStringSubmatch(line); m != nil {
			documented[m[1]] = true
		}
	}
	if len(documented) == 0 {
		t.Fatal("no metric tables found in OBSERVABILITY.md")
	}
	for _, name := range registered {
		if !documented[name] {
			t.Errorf("metric %s is emitted by the code but missing from OBSERVABILITY.md", name)
		}
		delete(documented, name)
	}
	leftovers := make([]string, 0, len(documented))
	for name := range documented {
		leftovers = append(leftovers, name)
	}
	sort.Strings(leftovers)
	for _, name := range leftovers {
		t.Errorf("metric %s is documented in OBSERVABILITY.md but not registered by the code", name)
	}
}
