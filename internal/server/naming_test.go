package server

// A dependency-free promlint: every instrument the codebase can register —
// pipeline, publisher, flight recorder, WAL, server — must follow the
// Prometheus naming conventions OBSERVABILITY.md promises. Registration
// alone defines the namespace, so this runs without starting a stream,
// and CI gates on it next to the doc-sync test.

import (
	"regexp"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/pipeline"
	"repro/internal/rng"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

var (
	metricNameRE = regexp.MustCompile(`^butterfly_[a-z0-9_]+$`)
	labelKeyRE   = regexp.MustCompile(`([a-zA-Z_][a-zA-Z0-9_]*)=`)
	snakeKeyRE   = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)
)

func TestTelemetryNamingConventions(t *testing.T) {
	reg := telemetry.NewRegistry()
	pipeline.RegisterMetrics(reg)
	pub, err := core.NewPublisher(
		core.Params{Epsilon: 0.1, Delta: 0.4, MinSupport: 10, VulnSupport: 5}, nil, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	pub.SetMetrics(reg)
	trace.New(trace.Options{}).SetMetrics(reg)
	RegisterMetrics(reg)

	families := reg.Snapshot()
	if len(families) == 0 {
		t.Fatal("no metrics registered")
	}
	for _, fam := range families {
		name := fam.Name
		if !metricNameRE.MatchString(name) {
			t.Errorf("%s: name must match %s (snake_case, butterfly_ prefix)", name, metricNameRE)
		}
		if strings.Contains(name, "__") || strings.HasSuffix(name, "_") {
			t.Errorf("%s: name has empty segments", name)
		}
		// Reserved suffixes: the Prometheus text format synthesizes these
		// series itself for histograms, so a base name must never claim them.
		for _, reserved := range []string{"_count", "_sum", "_bucket"} {
			if strings.HasSuffix(name, reserved) {
				t.Errorf("%s: %s is a reserved histogram-series suffix", name, reserved)
			}
		}
		switch fam.Type {
		case telemetry.TypeCounter:
			if !strings.HasSuffix(name, "_total") {
				t.Errorf("%s: counters must end in _total", name)
			}
		case telemetry.TypeHistogram:
			if !strings.HasSuffix(name, "_seconds") && !strings.HasSuffix(name, "_bytes") {
				t.Errorf("%s: histograms must carry a base unit suffix (_seconds or _bytes)", name)
			}
		default:
			if strings.HasSuffix(name, "_total") {
				t.Errorf("%s: _total implies a counter, but the family is a %s", name, fam.Type)
			}
		}
		if fam.Help == "" {
			t.Errorf("%s: help string is empty", name)
			continue
		}
		if first := fam.Help[0]; first < 'A' || first > 'Z' {
			t.Errorf("%s: help %q should start with a capital letter", name, fam.Help)
		}
		if !strings.HasSuffix(fam.Help, ".") {
			t.Errorf("%s: help %q should end with a period", name, fam.Help)
		}
		for _, series := range fam.Series {
			for _, m := range labelKeyRE.FindAllStringSubmatch(series.Labels, -1) {
				if !snakeKeyRE.MatchString(m[1]) {
					t.Errorf("%s: label key %q is not snake_case", name, m[1])
				}
			}
		}
	}
}
