// Package server hosts many independent Butterfly sanitization streams in
// one long-running process: a sharded stream registry, an HTTP ingest path
// with backpressure and admission control, per-stream fault budgets with a
// circuit breaker that quarantines a misbehaving stream instead of killing
// the process, and a graceful drain that checkpoints every stream
// concurrently under a deadline.
//
// Isolation contract: each hosted stream runs the exact supervised
// pipeline a standalone cmd/butterfly process would run — same miner, same
// publisher, same checkpoint format, its own seed and vocabulary — so the
// windows it publishes are byte-identical to an independent single-stream
// run over the same records (the differential suite pins this, fault
// injection and all). Neighbors share nothing but the process: a stream
// that panics, stalls, or exhausts its fault budget is restarted from its
// own checkpoint or quarantined, and the streams around it never notice.
//
// Restart determinism: an in-process restart resumes from the newest
// checkpoint plus a retained replay buffer of the records consumed since
// it was written (pruned on every checkpoint save via the store's OnSave
// hook). If the buffer cannot bridge the gap — it overflowed ReplayLimit,
// or the newest readable checkpoint is older than the prune horizon — the
// stream is quarantined rather than restarted wrong: no replay, no resume.
package server

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"log/slog"
	"path/filepath"
	"regexp"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/pipeline"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Options configures a Server. The zero value is usable: every limit has a
// default, checkpointing is off without a CheckpointRoot, and logging and
// telemetry are off without a Logger/Registry.
type Options struct {
	// CheckpointRoot, when non-empty, enables per-stream crash-safe
	// checkpointing under CheckpointRoot/<stream-id>/, each directory
	// guarded by an exclusive lease so two servers (or a delete/resume
	// race) cannot interleave writes.
	CheckpointRoot string
	// MaxStreams caps concurrently hosted streams (default 1024); create
	// beyond it is refused with 503.
	MaxStreams int
	// MaxInflightBytes caps the approximate memory queued across every
	// stream's ingest queue (default 256 MiB); ingest beyond it is refused
	// with 503 until the pipelines drain.
	MaxInflightBytes int64
	// QueueDepth is the default per-stream ingest queue depth in records
	// (default 1024); a full queue refuses ingest with 429.
	QueueDepth int
	// History is the default number of published windows retained per
	// stream for GET /windows (default 64).
	History int
	// BreakerFailures is the circuit breaker threshold K: consecutive
	// failed runs without a published window before a stream is
	// quarantined instead of restarted (default 3).
	BreakerFailures int
	// RestartBackoff is the initial delay before an in-process restart,
	// doubling per consecutive failure (default 25ms).
	RestartBackoff time.Duration
	// ReplayLimit caps the per-stream replay buffer in records (default
	// 65536). A stream that outruns it between checkpoints loses in-process
	// restartability and quarantines on its next failure.
	ReplayLimit int
	// Shards is the registry shard count (default 16).
	Shards int
	// DrainTimeout is the default graceful-drain deadline used by callers
	// that pass Shutdown a background context (default 30s).
	DrainTimeout time.Duration
	// Logger receives structured lifecycle and warning logs (nil = off).
	Logger *slog.Logger
	// Registry receives server and pipeline telemetry (nil = off).
	Registry *telemetry.Registry
	// Owner names this process in checkpoint lease files (default
	// "butterflyd").
	Owner string

	// WrapSource and WrapSink, when non-nil, wrap each stream's record
	// source / emit sink on every (re)start — the chaos suite's injection
	// seam. Both must preserve the wrapped value's semantics when passing
	// through.
	WrapSource func(id string, src pipeline.RecordSource) pipeline.RecordSource
	WrapSink   func(id string, emit func(pipeline.Window) error) func(pipeline.Window) error
}

func (o *Options) setDefaults() {
	if o.MaxStreams <= 0 {
		o.MaxStreams = 1024
	}
	if o.MaxInflightBytes <= 0 {
		o.MaxInflightBytes = 256 << 20
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 1024
	}
	if o.History <= 0 {
		o.History = 64
	}
	if o.BreakerFailures <= 0 {
		o.BreakerFailures = 3
	}
	if o.RestartBackoff <= 0 {
		o.RestartBackoff = 25 * time.Millisecond
	}
	if o.ReplayLimit <= 0 {
		o.ReplayLimit = 65536
	}
	if o.Shards <= 0 {
		o.Shards = 16
	}
	if o.DrainTimeout <= 0 {
		o.DrainTimeout = 30 * time.Second
	}
	if o.Logger == nil {
		o.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if o.Owner == "" {
		o.Owner = "butterflyd"
	}
}

// Server is the multi-stream sanitization host.
type Server struct {
	opts    Options
	log     *slog.Logger
	metrics *serverMetrics

	shards   []*shard
	nstreams atomic.Int64
	inflight atomic.Int64
	draining atomic.Bool

	ctx    context.Context // parent of every stream's run context
	cancel context.CancelFunc
	wg     sync.WaitGroup // live supervisor goroutines
}

type shard struct {
	mu sync.RWMutex
	m  map[string]*stream
}

// New builds a Server. It never binds a socket itself — install the
// control plane on a mux with Routes and serve that however fits.
func New(opts Options) *Server {
	opts.setDefaults()
	s := &Server{
		opts:    opts,
		log:     opts.Logger,
		metrics: newServerMetrics(opts.Registry),
	}
	if opts.Registry != nil {
		// The hosted pipelines share the registry; registering here keeps
		// /metrics complete before the first stream runs.
		pipeline.RegisterMetrics(opts.Registry)
	}
	s.shards = make([]*shard, opts.Shards)
	for i := range s.shards {
		s.shards[i] = &shard{m: map[string]*stream{}}
	}
	s.ctx, s.cancel = context.WithCancel(context.Background())
	return s
}

func (s *Server) shard(id string) *shard {
	h := fnv.New32a()
	io.WriteString(h, id)
	return s.shards[h.Sum32()%uint32(len(s.shards))]
}

func (s *Server) get(id string) *stream {
	sh := s.shard(id)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.m[id]
}

// all snapshots the registry (sorted by id, for stable listings and drain
// logs).
func (s *Server) all() []*stream {
	var out []*stream
	for _, sh := range s.shards {
		sh.mu.RLock()
		for _, st := range sh.m {
			out = append(out, st)
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// StreamCount returns the number of hosted streams (all states).
func (s *Server) StreamCount() int { return int(s.nstreams.Load()) }

// addInflight adjusts the server-wide queued-bytes accounting.
func (s *Server) addInflight(d int64) {
	s.metrics.setInflight(s.inflight.Add(d))
}

// Sentinel errors the HTTP layer maps onto status codes.
var (
	errDraining       = errors.New("server is draining")
	errTooManyStreams = errors.New("max-streams cap reached")
	errStreamExists   = errors.New("stream already exists")
	errStreamNotFound = errors.New("stream not found")
)

// StreamConfig is the create-stream request: the standalone pipeline's
// knobs plus the stream's service envelope (queue depth, history, resume).
type StreamConfig struct {
	ID string `json:"id"`

	// Pipeline configuration (see cmd/butterfly's flags of the same names).
	Window       int     `json:"window"`
	Epsilon      float64 `json:"epsilon"`
	Delta        float64 `json:"delta"`
	MinSupport   int     `json:"min_support"`
	VulnSupport  int     `json:"vuln_support"`
	Scheme       string  `json:"scheme"`
	Lambda       float64 `json:"lambda"`
	Gamma        int     `json:"gamma"`
	Seed         uint64  `json:"seed"`
	PublishEvery int     `json:"publish_every"`
	Workers      int     `json:"workers"`
	ClosedOnly   bool    `json:"closed_only"`
	Raw          bool    `json:"raw"`

	// Fault budgets (per-tenant): malformed records tolerated before the
	// run fails (0 fails on the first, -1 is unlimited), and transient
	// emit/source retries per window.
	MaxBadRecords int `json:"max_bad_records"`
	EmitRetries   int `json:"emit_retries"`

	// Service envelope. Zero values take the server-wide defaults.
	QueueDepth      int `json:"queue_depth"`
	History         int `json:"history"`
	CheckpointEvery int `json:"checkpoint_every"`
	CheckpointKeep  int `json:"checkpoint_keep"`
	TraceWindows    int `json:"trace_windows"`
	// Resume restores the stream from its newest checkpoint. The client
	// must then replay the stream's records from the beginning — the
	// pipeline discards the already-published prefix and continues
	// byte-identically (see pipeline.Config.Resume).
	Resume bool `json:"resume"`
}

// streamIDPattern admits ids that are safe as checkpoint directory names
// and URL path segments.
var streamIDPattern = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$`)

func validateStreamID(id string) error {
	if !streamIDPattern.MatchString(id) {
		return fmt.Errorf("stream id %q: want 1-64 chars of [A-Za-z0-9._-], starting alphanumeric", id)
	}
	return nil
}

// validate checks the service envelope; pipeline knobs are validated by
// pipeline.New when the config is assembled.
func (c StreamConfig) validate() error {
	if err := validateStreamID(c.ID); err != nil {
		return err
	}
	if c.QueueDepth < 0 {
		return fmt.Errorf("negative queue depth %d", c.QueueDepth)
	}
	if c.History < 0 {
		return fmt.Errorf("negative history %d", c.History)
	}
	if c.TraceWindows < 0 {
		return fmt.Errorf("negative trace windows %d", c.TraceWindows)
	}
	return nil
}

// StreamStatus is the control plane's view of one stream.
type StreamStatus struct {
	ID                  string `json:"id"`
	State               string `json:"state"`
	LastError           string `json:"last_error,omitempty"`
	RecordsAccepted     uint64 `json:"records_accepted"`
	RecordsConsumed     uint64 `json:"records_consumed"`
	BadRecords          uint64 `json:"bad_records"`
	QueueLen            int    `json:"queue_len"`
	QueueCap            int    `json:"queue_cap"`
	WindowsRetained     int    `json:"windows_retained"`
	Restarts            int    `json:"restarts"`
	ConsecutiveFailures int    `json:"consecutive_failures"`
	CheckpointRecords   uint64 `json:"checkpoint_records"`
	Workers             int    `json:"workers"`
	Scheme              string `json:"scheme"`
}

// Create admits and starts a stream. The returned status reflects the
// stream just after start.
func (s *Server) Create(cfg StreamConfig) (StreamStatus, error) {
	if s.draining.Load() {
		return StreamStatus{}, errDraining
	}
	if err := cfg.validate(); err != nil {
		return StreamStatus{}, err
	}
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = s.opts.QueueDepth
	}
	if cfg.History == 0 {
		cfg.History = s.opts.History
	}
	scheme, err := core.SchemeByName(cfg.Scheme, cfg.Lambda, cfg.Gamma)
	if err != nil {
		return StreamStatus{}, err
	}
	if s.get(cfg.ID) != nil {
		return StreamStatus{}, fmt.Errorf("%w: %s", errStreamExists, cfg.ID)
	}
	// Admission: reserve a slot before doing any expensive setup.
	if s.nstreams.Add(1) > int64(s.opts.MaxStreams) {
		s.nstreams.Add(-1)
		return StreamStatus{}, fmt.Errorf("%w (%d)", errTooManyStreams, s.opts.MaxStreams)
	}
	undo := func() { s.nstreams.Add(-1) }

	st := &stream{
		id:       cfg.ID,
		cfg:      cfg,
		srv:      s,
		vocab:    data.NewVocabulary(),
		queue:    make(chan queueItem, cfg.QueueDepth),
		state:    StateRunning,
		unpaused: closedChan,
		done:     make(chan struct{}),
	}
	st.mRecords, st.mWindows = s.metrics.streamCounters(cfg.ID)
	st.runCtx, st.stop = context.WithCancel(s.ctx)
	if cfg.TraceWindows > 0 {
		st.tracer = trace.New(trace.Options{Windows: cfg.TraceWindows})
	}

	warnf := func(format string, args ...any) {
		s.log.Warn(fmt.Sprintf(format, args...), "stream", cfg.ID)
	}
	st.pipeCfg = pipeline.Config{
		WindowSize: cfg.Window,
		Params: core.Params{
			Epsilon: cfg.Epsilon, Delta: cfg.Delta,
			MinSupport: cfg.MinSupport, VulnSupport: cfg.VulnSupport,
		},
		Scheme:          scheme,
		Seed:            cfg.Seed,
		ClosedOnly:      cfg.ClosedOnly,
		Raw:             cfg.Raw,
		PublishEvery:    cfg.PublishEvery,
		Workers:         cfg.Workers,
		MaxBadRecords:   cfg.MaxBadRecords,
		EmitRetries:     cfg.EmitRetries,
		CheckpointEvery: cfg.CheckpointEvery,
		CheckpointKeep:  cfg.CheckpointKeep,
		Metrics:         s.opts.Registry,
		Warnf:           warnf,
		Trace:           st.tracer,
	}

	if s.opts.CheckpointRoot != "" {
		dir := filepath.Join(s.opts.CheckpointRoot, cfg.ID)
		lease, err := checkpoint.AcquireLease(dir, s.opts.Owner)
		if err != nil {
			undo()
			return StreamStatus{}, fmt.Errorf("stream %s: %w", cfg.ID, err)
		}
		store, err := checkpoint.NewStore(dir, cfg.CheckpointKeep)
		if err != nil {
			lease.Release()
			undo()
			return StreamStatus{}, err
		}
		store.Logf = warnf
		store.OnSave = st.pruneRetained
		st.store, st.lease = store, lease
	}

	var snap *checkpoint.Snapshot
	if cfg.Resume {
		if st.store == nil {
			st.releaseLease()
			undo()
			return StreamStatus{}, fmt.Errorf("stream %s: resume requires a server checkpoint root", cfg.ID)
		}
		snap, _, err = st.store.Latest()
		if err != nil {
			st.releaseLease()
			undo()
			return StreamStatus{}, fmt.Errorf("stream %s: loading resume checkpoint: %w", cfg.ID, err)
		}
		if snap == nil {
			st.releaseLease()
			undo()
			return StreamStatus{}, fmt.Errorf("stream %s: no checkpoint to resume from", cfg.ID)
		}
		st.lastCkpt = snap.Records
	}

	// Validate the full pipeline config (params, window, budgets, resume
	// fingerprint) before the stream becomes visible.
	vcfg := st.pipeCfg
	vcfg.Checkpoints = st.store
	vcfg.Resume = snap
	if _, err := pipeline.New(vcfg); err != nil {
		st.releaseLease()
		undo()
		return StreamStatus{}, err
	}

	sh := s.shard(cfg.ID)
	sh.mu.Lock()
	if _, dup := sh.m[cfg.ID]; dup {
		sh.mu.Unlock()
		st.releaseLease()
		undo()
		return StreamStatus{}, fmt.Errorf("%w: %s", errStreamExists, cfg.ID)
	}
	sh.m[cfg.ID] = st
	sh.mu.Unlock()

	s.metrics.moveState("", StateRunning)
	s.wg.Add(1)
	go s.supervise(st, snap, 0, nil)
	s.log.Info("stream created", "stream", cfg.ID, "resume", cfg.Resume,
		"queue_depth", cfg.QueueDepth, "workers", cfg.Workers)
	return st.status(), nil
}

// supervise runs one supervision session: the pipeline run loop with
// checkpoint+replay restarts and the circuit breaker. snap/synth/replay
// describe the starting point (see stream.buildRestart).
func (s *Server) supervise(st *stream, snap *checkpoint.Snapshot, synth uint64, replay []queueItem) {
	defer s.wg.Done()
	defer func() {
		if v := recover(); v != nil {
			// The pipeline recovers its own stage panics; this guards the
			// supervision scaffolding itself so one stream's bug can never
			// take down its neighbors.
			st.setState(StateQuarantined, fmt.Errorf("supervisor panic: %v", v))
			s.metrics.addQuarantine()
			s.log.Error("supervisor panic", "stream", st.id, "panic", fmt.Sprint(v))
		}
		st.mu.Lock()
		done := st.done
		st.mu.Unlock()
		close(done)
	}()
	for {
		cfg := st.pipeCfg
		cfg.Resume = snap
		cfg.Checkpoints = st.store
		st.progress.Store(false)
		p, err := pipeline.New(cfg)
		if err != nil {
			// Create validated this exact config; reaching here means the
			// restart inputs are inconsistent — not retryable.
			st.setState(StateQuarantined, err)
			s.metrics.addQuarantine()
			s.log.Error("stream config rejected on restart", "stream", st.id, "error", err.Error())
			return
		}
		runCtx, cancelRun := context.WithCancel(st.runCtx)
		qs := newQueueSource(st, runCtx, synth, replay)
		var src pipeline.RecordSource = qs
		if s.opts.WrapSource != nil {
			src = s.opts.WrapSource(st.id, src)
		}
		emit := st.emit
		if s.opts.WrapSink != nil {
			emit = s.opts.WrapSink(st.id, emit)
		}
		_, runErr := p.RunContext(runCtx, src, emit)
		// A failed RunContext can return while the mine stage is still
		// inside a source read; retire the source and wait for that read to
		// land before inspecting consumption state, or the record it dequeues
		// would miss the replay buffer and be dropped from the stream.
		qs.retire(cancelRun)
		if runErr == nil {
			st.setState(StateDone, nil)
			s.log.Info("stream drained", "stream", st.id)
			return
		}
		if st.runCtx.Err() != nil {
			// Deleted or server-aborted; nothing to restart.
			st.setState(StateFailed, runErr)
			return
		}
		if errors.Is(runErr, pipeline.ErrShortStream) {
			// Closed before the first window ever filled — a property of
			// the input, not a fault; restarting cannot help.
			st.setState(StateFailed, runErr)
			s.log.Warn("stream closed short", "stream", st.id, "error", runErr.Error())
			return
		}
		st.mu.Lock()
		if st.progress.Load() {
			st.consecFails = 0
		}
		st.consecFails++
		st.restarts++
		fails := st.consecFails
		st.mu.Unlock()
		s.metrics.addRestart()
		s.log.Warn("stream run failed", "stream", st.id,
			"error", runErr.Error(), "consecutive_failures", fails)
		if fails >= s.opts.BreakerFailures {
			st.setState(StateQuarantined, runErr)
			s.metrics.addQuarantine()
			s.log.Error("stream quarantined", "stream", st.id,
				"error", runErr.Error(), "failures", fails)
			return
		}
		var rerr error
		snap, synth, replay, rerr = st.buildRestart()
		if rerr != nil {
			st.setState(StateQuarantined, fmt.Errorf("%v (restart impossible: %v)", runErr, rerr))
			s.metrics.addQuarantine()
			s.log.Error("stream restart impossible", "stream", st.id, "error", rerr.Error())
			return
		}
		backoff := s.opts.RestartBackoff << (fails - 1)
		select {
		case <-time.After(backoff):
		case <-st.runCtx.Done():
			st.setState(StateFailed, st.runCtx.Err())
			return
		}
	}
}

// Status returns one stream's status.
func (s *Server) Status(id string) (StreamStatus, error) {
	st := s.get(id)
	if st == nil {
		return StreamStatus{}, fmt.Errorf("%w: %s", errStreamNotFound, id)
	}
	return st.status(), nil
}

// List returns every hosted stream's status, sorted by id.
func (s *Server) List() []StreamStatus {
	streams := s.all()
	out := make([]StreamStatus, 0, len(streams))
	for _, st := range streams {
		out = append(out, st.status())
	}
	return out
}

// Pause gates a running stream: ingest is refused and the source stops
// delivering; windows already inside the pipeline still complete.
func (s *Server) Pause(id string) (StreamStatus, error) {
	st := s.get(id)
	if st == nil {
		return StreamStatus{}, fmt.Errorf("%w: %s", errStreamNotFound, id)
	}
	if err := st.pause(); err != nil {
		return StreamStatus{}, err
	}
	s.log.Info("stream paused", "stream", id)
	return st.status(), nil
}

// Resume unpauses a paused stream, or resets a quarantined stream's
// breaker and restarts it from its newest checkpoint + replay buffer.
func (s *Server) Resume(id string) (StreamStatus, error) {
	if s.draining.Load() {
		return StreamStatus{}, errDraining
	}
	st := s.get(id)
	if st == nil {
		return StreamStatus{}, fmt.Errorf("%w: %s", errStreamNotFound, id)
	}
	switch st.currentState() {
	case StatePaused:
		st.unpause()
		s.log.Info("stream resumed", "stream", id)
		return st.status(), nil
	case StateQuarantined:
		snap, synth, replay, err := st.buildRestart()
		if err != nil {
			return StreamStatus{}, fmt.Errorf("stream %s cannot restart: %w", id, err)
		}
		// Re-check under the lock so two concurrent resumes cannot spawn
		// two supervisors for one stream.
		st.mu.Lock()
		if st.state != StateQuarantined {
			state := st.state
			st.mu.Unlock()
			return StreamStatus{}, fmt.Errorf("stream %s is no longer quarantined (%s)", id, state)
		}
		st.state = StateRunning
		st.consecFails = 0
		st.done = make(chan struct{})
		st.mu.Unlock()
		s.metrics.moveState(StateQuarantined, StateRunning)
		s.wg.Add(1)
		go s.supervise(st, snap, synth, replay)
		s.log.Info("stream un-quarantined", "stream", id)
		return st.status(), nil
	default:
		return StreamStatus{}, fmt.Errorf("stream %s is %s; resume applies to %s or %s streams",
			id, st.currentState(), StatePaused, StateQuarantined)
	}
}

// CloseIngest ends a stream's input: the pipeline drains the queue,
// publishes the final window, and writes the final checkpoint.
func (s *Server) CloseIngest(id string) (StreamStatus, error) {
	st := s.get(id)
	if st == nil {
		return StreamStatus{}, fmt.Errorf("%w: %s", errStreamNotFound, id)
	}
	st.unpause() // a paused stream must still be able to drain
	st.closeIngest()
	s.log.Info("stream ingest closed", "stream", id)
	return st.status(), nil
}

// Delete stops a stream promptly (no final drain — use CloseIngest first
// for a graceful end) and removes it from the registry. The checkpoint
// directory is left on disk for a later resume.
func (s *Server) Delete(id string) error {
	sh := s.shard(id)
	sh.mu.Lock()
	st := sh.m[id]
	delete(sh.m, id)
	sh.mu.Unlock()
	if st == nil {
		return fmt.Errorf("%w: %s", errStreamNotFound, id)
	}
	s.nstreams.Add(-1)
	st.stop()
	st.unpause()
	<-st.runDone()
	// closeIngest waits for any in-flight ingest request (they hold
	// ingestMu for their whole body) so drainQueue below sees a closed,
	// sender-free queue.
	st.closeIngest()
	st.drainQueue()
	st.releaseLease()
	s.metrics.moveState(st.currentState(), "")
	s.log.Info("stream deleted", "stream", id)
	return nil
}

// DrainReport summarizes a graceful shutdown: each stream's final state
// ("done", or "state: error" for anything less clean).
type DrainReport struct {
	Streams map[string]string
	Clean   bool
	Took    time.Duration
}

// Shutdown drains every stream concurrently: ingest closes, pipelines
// publish their final windows and checkpoints, leases release. Streams
// that outlive ctx are cancelled hard (their newest checkpoint still makes
// resume correct — the tail past it is simply republished on restart).
func (s *Server) Shutdown(ctx context.Context) DrainReport {
	s.draining.Store(true)
	t0 := time.Now()
	rep := DrainReport{Streams: map[string]string{}, Clean: true}
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, st := range s.all() {
		st := st
		wg.Add(1)
		go func() {
			defer wg.Done()
			st.unpause()
			closed := make(chan struct{})
			go func() {
				// May block behind a slow in-flight ingest request; the
				// deadline path below does not wait for it.
				st.closeIngest()
				close(closed)
			}()
			select {
			case <-closed:
			case <-ctx.Done():
				st.stop()
			}
			select {
			case <-st.runDone():
			case <-ctx.Done():
				st.stop()
				<-st.runDone()
			}
			st.releaseLease()
			state, lastErr := st.finalState()
			mu.Lock()
			defer mu.Unlock()
			if state == StateDone {
				rep.Streams[st.id] = state
			} else {
				rep.Streams[st.id] = state + ": " + lastErr
				rep.Clean = false
			}
		}()
	}
	wg.Wait()
	s.cancel()
	s.wg.Wait()
	rep.Took = time.Since(t0)
	s.metrics.observeDrain(rep.Took)
	s.log.Info("server drained", "streams", len(rep.Streams),
		"clean", rep.Clean, "took", rep.Took.String())
	return rep
}

// Abort cancels every stream immediately — the simulated crash: no final
// windows, no final checkpoints. Leases are released (the process is
// exiting on purpose); the stale-lease path covers real crashes.
func (s *Server) Abort() {
	s.draining.Store(true)
	s.cancel()
	streams := s.all()
	for _, st := range streams {
		st.unpause()
	}
	s.wg.Wait()
	for _, st := range streams {
		st.releaseLease()
	}
	s.log.Warn("server aborted", "streams", len(streams))
}
