// Package server hosts many independent Butterfly sanitization streams in
// one long-running process: a sharded stream registry, an HTTP ingest path
// with backpressure and admission control, per-stream fault budgets with a
// circuit breaker that quarantines a misbehaving stream instead of killing
// the process, and a graceful drain that checkpoints every stream
// concurrently under a deadline.
//
// Isolation contract: each hosted stream runs the exact supervised
// pipeline a standalone cmd/butterfly process would run — same miner, same
// publisher, same checkpoint format, its own seed and vocabulary — so the
// windows it publishes are byte-identical to an independent single-stream
// run over the same records (the differential suite pins this, fault
// injection and all). Neighbors share nothing but the process: a stream
// that panics, stalls, or exhausts its fault budget is restarted from its
// own checkpoint or quarantined, and the streams around it never notice.
//
// Restart determinism: an in-process restart resumes from the newest
// checkpoint plus a replay of the records consumed since it was written.
// With a data dir the replay comes from the stream's ingest WAL (durable,
// truncated as checkpoints advance); without one it comes from a retained
// in-memory buffer pruned on every checkpoint save via the store's OnSave
// hook. If the replay cannot bridge the gap — the memory buffer overflowed
// ReplayLimit, or the WAL tail is not contiguous with the checkpoint — the
// stream is quarantined rather than restarted wrong: no replay, no resume.
//
// Durability of acceptance: with a data dir, every 2xx ingest response
// means the accepted lines are fsynced to the stream's WAL (and any new
// vocabulary tokens to its journal) before they are visible to the
// pipeline, the stream manifest records every admitted stream atomically,
// and Recover rebuilds the whole registry — checkpoints, WAL tails,
// quarantine states — after a kill -9 with nothing accepted lost.
package server

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/pipeline"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/wal"
)

// Options configures a Server. The zero value is usable: every limit has a
// default, durability is off without a DataDir, and logging and telemetry
// are off without a Logger/Registry.
type Options struct {
	// DataDir, when non-empty, makes acceptance durable: each stream gets
	// crash-safe checkpoints, an ingest WAL, and a token journal under
	// DataDir/streams/<stream-id>/ (each directory guarded by an exclusive
	// lease so two servers cannot interleave writes), and the server keeps
	// a stream manifest at DataDir/manifest.json that Recover uses to
	// rebuild the registry after a crash.
	DataDir string
	// WALSegmentBytes rotates each stream's ingest WAL into a new segment
	// once the active one exceeds this size (0: the wal package default).
	WALSegmentBytes int64
	// MaxStreams caps concurrently hosted streams (default 1024); create
	// beyond it is refused with 503.
	MaxStreams int
	// MaxInflightBytes caps the approximate memory queued across every
	// stream's ingest queue (default 256 MiB); ingest beyond it is refused
	// with 503 until the pipelines drain.
	MaxInflightBytes int64
	// QueueDepth is the default per-stream ingest queue depth in records
	// (default 1024); a full queue refuses ingest with 429.
	QueueDepth int
	// History is the default number of published windows retained per
	// stream for GET /windows (default 64).
	History int
	// BreakerFailures is the circuit breaker threshold K: consecutive
	// failed runs without a published window before a stream is
	// quarantined instead of restarted (default 3).
	BreakerFailures int
	// RestartBackoff is the initial delay before an in-process restart,
	// doubling per consecutive failure (default 25ms).
	RestartBackoff time.Duration
	// ReplayLimit caps the per-stream replay buffer in records (default
	// 65536). A stream that outruns it between checkpoints loses in-process
	// restartability and quarantines on its next failure.
	ReplayLimit int
	// CheckpointFullEvery is the default full-snapshot compaction interval
	// for streams that leave checkpoint_full_every unset: every Nth
	// checkpoint generation is a full snapshot, the generations between are
	// delta frames. Default 1 — every generation full, the v1 behavior.
	CheckpointFullEvery int
	// Shards is the registry shard count (default 16).
	Shards int
	// DrainTimeout is the default graceful-drain deadline used by callers
	// that pass Shutdown a background context (default 30s).
	DrainTimeout time.Duration
	// Logger receives structured lifecycle and warning logs (nil = off).
	Logger *slog.Logger
	// Registry receives server and pipeline telemetry (nil = off).
	Registry *telemetry.Registry
	// Owner names this process in checkpoint lease files (default
	// "butterflyd").
	Owner string

	// WrapSource and WrapSink, when non-nil, wrap each stream's record
	// source / emit sink on every (re)start — the chaos suite's injection
	// seam. Both must preserve the wrapped value's semantics when passing
	// through.
	WrapSource func(id string, src pipeline.RecordSource) pipeline.RecordSource
	WrapSink   func(id string, emit func(pipeline.Window) error) func(pipeline.Window) error

	// hookStore / hookWAL, when non-nil, observe each stream's checkpoint
	// store and WAL just after they are opened (create, resume, or boot
	// adoption) — the crash-injection seam the recovery differential suite
	// uses to install CrashHooks. Test-only, same package.
	hookStore func(id string, store *checkpoint.Store)
	hookWAL   func(id string, lg *wal.Log)
}

func (o *Options) setDefaults() {
	if o.MaxStreams <= 0 {
		o.MaxStreams = 1024
	}
	if o.MaxInflightBytes <= 0 {
		o.MaxInflightBytes = 256 << 20
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 1024
	}
	if o.History <= 0 {
		o.History = 64
	}
	if o.BreakerFailures <= 0 {
		o.BreakerFailures = 3
	}
	if o.RestartBackoff <= 0 {
		o.RestartBackoff = 25 * time.Millisecond
	}
	if o.ReplayLimit <= 0 {
		o.ReplayLimit = 65536
	}
	if o.CheckpointFullEvery <= 0 {
		o.CheckpointFullEvery = 1
	}
	if o.Shards <= 0 {
		o.Shards = 16
	}
	if o.DrainTimeout <= 0 {
		o.DrainTimeout = 30 * time.Second
	}
	if o.Logger == nil {
		o.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if o.Owner == "" {
		o.Owner = "butterflyd"
	}
}

// Server is the multi-stream sanitization host.
type Server struct {
	opts    Options
	log     *slog.Logger
	metrics *serverMetrics

	shards   []*shard
	nstreams atomic.Int64
	inflight atomic.Int64
	draining atomic.Bool

	// Readiness (see health.go): New starts ready; BeginBoot flips the
	// server not-ready until Recover completes, so a booting daemon can
	// serve /healthz and refuse /v1 traffic with 503 instead of racing
	// half-adopted streams.
	ready   atomic.Bool
	started time.Time

	// lastRecovery holds the most recent Recover report for /healthz
	// (zero value before any recovery).
	recoverMu    sync.Mutex
	lastRecovery RecoverReport

	// manifest mirrors DataDir/manifest.json (see manifest.go).
	manifestMu sync.Mutex
	manifest   map[string]manifestEntry

	ctx    context.Context // parent of every stream's run context
	cancel context.CancelFunc
	wg     sync.WaitGroup // live supervisor goroutines
}

type shard struct {
	mu sync.RWMutex
	m  map[string]*stream
}

// New builds a Server. It never binds a socket itself — install the
// control plane on a mux with Routes and serve that however fits.
func New(opts Options) *Server {
	opts.setDefaults()
	s := &Server{
		opts:    opts,
		log:     opts.Logger,
		metrics: newServerMetrics(opts.Registry),
		started: time.Now(),
	}
	s.ready.Store(true)
	if opts.Registry != nil {
		// The hosted pipelines share the registry; registering here keeps
		// /metrics complete before the first stream runs.
		pipeline.RegisterMetrics(opts.Registry)
	}
	s.shards = make([]*shard, opts.Shards)
	for i := range s.shards {
		s.shards[i] = &shard{m: map[string]*stream{}}
	}
	s.ctx, s.cancel = context.WithCancel(context.Background())
	return s
}

func (s *Server) shard(id string) *shard {
	h := fnv.New32a()
	io.WriteString(h, id)
	return s.shards[h.Sum32()%uint32(len(s.shards))]
}

func (s *Server) get(id string) *stream {
	sh := s.shard(id)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.m[id]
}

// all snapshots the registry (sorted by id, for stable listings and drain
// logs).
func (s *Server) all() []*stream {
	var out []*stream
	for _, sh := range s.shards {
		sh.mu.RLock()
		for _, st := range sh.m {
			out = append(out, st)
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// StreamCount returns the number of hosted streams (all states).
func (s *Server) StreamCount() int { return int(s.nstreams.Load()) }

// addInflight adjusts the server-wide queued-bytes accounting.
func (s *Server) addInflight(d int64) {
	s.metrics.setInflight(s.inflight.Add(d))
}

// Sentinel errors the HTTP layer maps onto status codes.
var (
	errDraining       = errors.New("server is draining")
	errTooManyStreams = errors.New("max-streams cap reached")
	errStreamExists   = errors.New("stream already exists")
	errStreamNotFound = errors.New("stream not found")
)

// StreamConfig is the create-stream request: the standalone pipeline's
// knobs plus the stream's service envelope (queue depth, history, resume).
type StreamConfig struct {
	ID string `json:"id"`

	// Pipeline configuration (see cmd/butterfly's flags of the same names).
	Window       int     `json:"window"`
	Epsilon      float64 `json:"epsilon"`
	Delta        float64 `json:"delta"`
	MinSupport   int     `json:"min_support"`
	VulnSupport  int     `json:"vuln_support"`
	Scheme       string  `json:"scheme"`
	Lambda       float64 `json:"lambda"`
	Gamma        int     `json:"gamma"`
	Seed         uint64  `json:"seed"`
	PublishEvery int     `json:"publish_every"`
	Workers      int     `json:"workers"`
	ClosedOnly   bool    `json:"closed_only"`
	Raw          bool    `json:"raw"`

	// Fault budgets (per-tenant): malformed records tolerated before the
	// run fails (0 fails on the first, -1 is unlimited), and transient
	// emit/source retries per window.
	MaxBadRecords int `json:"max_bad_records"`
	EmitRetries   int `json:"emit_retries"`

	// Service envelope. Zero values take the server-wide defaults.
	QueueDepth      int `json:"queue_depth"`
	History         int `json:"history"`
	CheckpointEvery int `json:"checkpoint_every"`
	CheckpointKeep  int `json:"checkpoint_keep"`
	// CheckpointFullEvery is the full-snapshot compaction interval: every
	// Nth checkpoint generation is a full snapshot, the generations between
	// are delta frames (pipeline.Config.CheckpointFullEvery). 0 takes the
	// server-wide default; 1 makes every generation full (the v1 behavior).
	CheckpointFullEvery int `json:"checkpoint_full_every"`
	TraceWindows        int `json:"trace_windows"`
	// Resume restores the stream from its newest checkpoint. The client
	// must then replay the stream's records from the beginning — the
	// pipeline discards the already-published prefix and continues
	// byte-identically (see pipeline.Config.Resume).
	Resume bool `json:"resume"`
}

// streamIDPattern admits ids that are safe as checkpoint directory names
// and URL path segments.
var streamIDPattern = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$`)

func validateStreamID(id string) error {
	if !streamIDPattern.MatchString(id) {
		return fmt.Errorf("stream id %q: want 1-64 chars of [A-Za-z0-9._-], starting alphanumeric", id)
	}
	return nil
}

// validate checks the service envelope; pipeline knobs are validated by
// pipeline.New when the config is assembled.
func (c StreamConfig) validate() error {
	if err := validateStreamID(c.ID); err != nil {
		return err
	}
	if c.QueueDepth < 0 {
		return fmt.Errorf("negative queue depth %d", c.QueueDepth)
	}
	if c.History < 0 {
		return fmt.Errorf("negative history %d", c.History)
	}
	if c.TraceWindows < 0 {
		return fmt.Errorf("negative trace windows %d", c.TraceWindows)
	}
	return nil
}

// StreamStatus is the control plane's view of one stream.
type StreamStatus struct {
	ID                  string `json:"id"`
	State               string `json:"state"`
	LastError           string `json:"last_error,omitempty"`
	RecordsAccepted     uint64 `json:"records_accepted"`
	RecordsConsumed     uint64 `json:"records_consumed"`
	BadRecords          uint64 `json:"bad_records"`
	QueueLen            int    `json:"queue_len"`
	QueueCap            int    `json:"queue_cap"`
	WindowsRetained     int    `json:"windows_retained"`
	Restarts            int    `json:"restarts"`
	ConsecutiveFailures int    `json:"consecutive_failures"`
	CheckpointRecords   uint64 `json:"checkpoint_records"`
	Workers             int    `json:"workers"`
	Scheme              string `json:"scheme"`
	// AcceptedLines is the cumulative accepted-line count (good + bad) — the
	// coordinate the ?offset= ingest dedup protocol speaks.
	AcceptedLines uint64 `json:"accepted_lines"`
	// Durable reports whether acceptance is WAL-backed (server has a data
	// dir): a 2xx ingest response means the lines survive a kill -9.
	Durable bool `json:"durable"`
	// ReplayLost means the in-memory replay buffer overflowed ReplayLimit
	// (memory-only mode): the stream cannot restart deterministically until
	// its next checkpoint re-arms it. Always false in durable mode.
	ReplayLost bool `json:"replay_lost"`
	// WALSegments is the stream's current ingest-WAL segment count (durable
	// mode only).
	WALSegments int `json:"wal_segments,omitempty"`
	// LastCheckpointAge is seconds since the stream's last persisted
	// checkpoint generation (0 before the first save) — the staleness the
	// butterfly_checkpoint_last_save_age_seconds gauge reports.
	LastCheckpointAge float64 `json:"last_checkpoint_age,omitempty"`
}

// Create admits and starts a stream. The returned status reflects the
// stream just after start.
func (s *Server) Create(cfg StreamConfig) (StreamStatus, error) {
	if s.draining.Load() {
		return StreamStatus{}, errDraining
	}
	if err := cfg.validate(); err != nil {
		return StreamStatus{}, err
	}
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = s.opts.QueueDepth
	}
	if cfg.History == 0 {
		cfg.History = s.opts.History
	}
	if cfg.CheckpointFullEvery == 0 {
		cfg.CheckpointFullEvery = s.opts.CheckpointFullEvery
	}
	scheme, err := core.SchemeByName(cfg.Scheme, cfg.Lambda, cfg.Gamma)
	if err != nil {
		return StreamStatus{}, err
	}
	if s.get(cfg.ID) != nil {
		return StreamStatus{}, fmt.Errorf("%w: %s", errStreamExists, cfg.ID)
	}
	// Admission: reserve a slot before doing any expensive setup.
	if s.nstreams.Add(1) > int64(s.opts.MaxStreams) {
		s.nstreams.Add(-1)
		return StreamStatus{}, fmt.Errorf("%w (%d)", errTooManyStreams, s.opts.MaxStreams)
	}
	undo := func() { s.nstreams.Add(-1) }

	st, warnf := s.buildStream(cfg, scheme)

	if s.opts.DataDir != "" {
		dir := s.streamDir(cfg.ID)
		lease, err := checkpoint.AcquireLease(dir, s.opts.Owner)
		if err != nil {
			undo()
			return StreamStatus{}, fmt.Errorf("stream %s: %w", cfg.ID, err)
		}
		store, err := checkpoint.NewStore(dir, cfg.CheckpointKeep)
		if err != nil {
			lease.Release()
			undo()
			return StreamStatus{}, err
		}
		store.Logf = warnf
		store.OnSave = st.onCheckpointSave
		st.store, st.lease = store, lease
		if s.opts.hookStore != nil {
			s.opts.hookStore(cfg.ID, store)
		}
		// A create (fresh or resume) starts the client's line space at zero:
		// any WAL tail or token journal a predecessor left behind is in a
		// coordinate space this incarnation does not share. A resume keeps
		// the checkpoints — the client replays from the beginning and the
		// pipeline fast-forwards — while a fresh create wipes those too.
		if err := wipeDurableLog(dir); err != nil {
			st.releaseLease()
			undo()
			return StreamStatus{}, fmt.Errorf("stream %s: clearing stale wal: %w", cfg.ID, err)
		}
		if !cfg.Resume {
			if err := wipeCheckpoints(store); err != nil {
				st.releaseLease()
				undo()
				return StreamStatus{}, fmt.Errorf("stream %s: clearing stale checkpoints: %w", cfg.ID, err)
			}
		}
		if _, err := st.openDurable(dir, warnf); err != nil {
			st.closeDurable()
			st.releaseLease()
			undo()
			return StreamStatus{}, fmt.Errorf("stream %s: %w", cfg.ID, err)
		}
	}

	fail := func() {
		st.closeDurable()
		st.releaseLease()
		undo()
	}

	var snap *checkpoint.Snapshot
	if cfg.Resume {
		if st.store == nil {
			fail()
			return StreamStatus{}, fmt.Errorf("stream %s: resume requires a server data dir", cfg.ID)
		}
		snap, _, err = st.store.Latest()
		if err != nil {
			fail()
			return StreamStatus{}, fmt.Errorf("stream %s: loading resume checkpoint: %w", cfg.ID, err)
		}
		if snap == nil {
			fail()
			return StreamStatus{}, fmt.Errorf("stream %s: no checkpoint to resume from", cfg.ID)
		}
		st.lastCkpt = snap.Records
	}

	// Validate the full pipeline config (params, window, budgets, resume
	// fingerprint) before the stream becomes visible.
	vcfg := st.pipeCfg
	vcfg.Checkpoints = st.store
	vcfg.Resume = snap
	if _, err := pipeline.New(vcfg); err != nil {
		fail()
		return StreamStatus{}, err
	}

	sh := s.shard(cfg.ID)
	sh.mu.Lock()
	if _, dup := sh.m[cfg.ID]; dup {
		sh.mu.Unlock()
		fail()
		return StreamStatus{}, fmt.Errorf("%w: %s", errStreamExists, cfg.ID)
	}
	sh.m[cfg.ID] = st
	sh.mu.Unlock()

	// Durably register the stream before acknowledging the create: an
	// admission the manifest cannot record is refused, because a crash would
	// orphan-sweep its directory at the next boot.
	mcfg := cfg
	mcfg.Resume = false
	if err := s.manifestPut(cfg.ID, manifestEntry{
		Config:      mcfg,
		Fingerprint: st.pipeCfg.Fingerprint(),
		State:       manifestActive,
	}); err != nil {
		sh.mu.Lock()
		delete(sh.m, cfg.ID)
		sh.mu.Unlock()
		fail()
		return StreamStatus{}, err
	}

	s.metrics.moveState("", StateRunning)
	s.wg.Add(1)
	go s.supervise(st, snap, 0, nil)
	s.log.Info("stream created", "stream", cfg.ID, "resume", cfg.Resume,
		"queue_depth", cfg.QueueDepth, "workers", cfg.Workers)
	return st.status(), nil
}

// buildStream constructs a stream shell — channels, metrics, run context,
// tracer, pipeline config — not yet registered or supervised. scheme may
// be nil only when adoption is about to park the stream terminally.
func (s *Server) buildStream(cfg StreamConfig, scheme core.Scheme) (*stream, func(string, ...any)) {
	st := &stream{
		id:       cfg.ID,
		cfg:      cfg,
		srv:      s,
		vocab:    data.NewVocabulary(),
		queue:    make(chan queueItem, cfg.QueueDepth),
		state:    StateRunning,
		unpaused: closedChan,
		done:     make(chan struct{}),
	}
	st.mRecords, st.mWindows = s.metrics.streamCounters(cfg.ID)
	// Pull-style per-stream gauges: read the live channel length / atomic
	// stamp at scrape time, costing the hot path nothing.
	s.metrics.streamQueueDepth(cfg.ID, func() float64 { return float64(len(st.queue)) })
	s.metrics.streamCheckpointAge(cfg.ID, st.checkpointAge)
	st.runCtx, st.stop = context.WithCancel(s.ctx)
	if cfg.TraceWindows > 0 {
		st.tracer = trace.New(trace.Options{Windows: cfg.TraceWindows})
	}
	warnf := func(format string, args ...any) {
		s.log.Warn(fmt.Sprintf(format, args...), "stream", cfg.ID)
	}
	st.pipeCfg = pipeline.Config{
		WindowSize: cfg.Window,
		Params: core.Params{
			Epsilon: cfg.Epsilon, Delta: cfg.Delta,
			MinSupport: cfg.MinSupport, VulnSupport: cfg.VulnSupport,
		},
		Scheme:              scheme,
		Seed:                cfg.Seed,
		ClosedOnly:          cfg.ClosedOnly,
		Raw:                 cfg.Raw,
		PublishEvery:        cfg.PublishEvery,
		Workers:             cfg.Workers,
		MaxBadRecords:       cfg.MaxBadRecords,
		EmitRetries:         cfg.EmitRetries,
		CheckpointEvery:     cfg.CheckpointEvery,
		CheckpointKeep:      cfg.CheckpointKeep,
		CheckpointFullEvery: cfg.CheckpointFullEvery,
		Metrics:             s.opts.Registry,
		Warnf:               warnf,
		Trace:               st.tracer,
	}
	return st, warnf
}

// wipeDurableLog removes a directory's WAL segments and token journal: a
// fresh create's line space starts at zero, so a predecessor's durable log
// (left by a crash after delete, or an earlier stream of the same id)
// must not leak into it.
func wipeDurableLog(dir string) error {
	segs, err := filepath.Glob(filepath.Join(dir, wal.SegmentGlob))
	if err != nil {
		return err
	}
	for _, p := range segs {
		if err := os.Remove(p); err != nil {
			return err
		}
	}
	if err := os.Remove(filepath.Join(dir, wal.TokensName)); err != nil && !errors.Is(err, os.ErrNotExist) {
		return err
	}
	return nil
}

// wipeCheckpoints removes every generation — full snapshots and delta
// segments — a fresh (non-resume) create would otherwise silently inherit
// from a predecessor of the same id.
func wipeCheckpoints(store *checkpoint.Store) error {
	return store.Wipe()
}

// gcStream reclaims a stream's durable footprint once it can never run
// again (drained to done, or deleted): manifest entry first, directory
// second, so a crash between the two leaves an orphan directory for the
// boot sweep — never a manifest entry pointing at nothing.
func (s *Server) gcStream(st *stream) {
	st.closeDurable()
	st.releaseLease()
	if st.store == nil {
		return
	}
	s.manifestRemove(st.id)
	if err := os.RemoveAll(s.streamDir(st.id)); err != nil {
		s.log.Warn("stream gc failed", "stream", st.id, "error", err.Error())
	}
}

// supervise runs one supervision session: the pipeline run loop with
// checkpoint+replay restarts and the circuit breaker. snap/synth/replay
// describe the starting point (see stream.buildRestart).
func (s *Server) supervise(st *stream, snap *checkpoint.Snapshot, synth uint64, replay []queueItem) {
	defer s.wg.Done()
	defer func() {
		if v := recover(); v != nil {
			// The pipeline recovers its own stage panics; this guards the
			// supervision scaffolding itself so one stream's bug can never
			// take down its neighbors.
			st.setState(StateQuarantined, fmt.Errorf("supervisor panic: %v", v))
			s.metrics.addQuarantine(quarPanic)
			s.manifestSetState(st.id, manifestQuarantined, fmt.Sprintf("supervisor panic: %v", v))
			s.log.Error("supervisor panic", "stream", st.id, "panic", fmt.Sprint(v))
		}
		st.mu.Lock()
		done := st.done
		st.mu.Unlock()
		close(done)
	}()
	for {
		cfg := st.pipeCfg
		cfg.Resume = snap
		cfg.Checkpoints = st.store
		st.progress.Store(false)
		p, err := pipeline.New(cfg)
		if err != nil {
			// Create validated this exact config; reaching here means the
			// restart inputs are inconsistent — not retryable.
			st.setState(StateQuarantined, err)
			s.metrics.addQuarantine(quarConfig)
			s.manifestSetState(st.id, manifestQuarantined, err.Error())
			s.log.Error("stream config rejected on restart", "stream", st.id, "error", err.Error())
			return
		}
		runCtx, cancelRun := context.WithCancel(st.runCtx)
		qs := newQueueSource(st, runCtx, synth, replay)
		var src pipeline.RecordSource = qs
		if s.opts.WrapSource != nil {
			src = s.opts.WrapSource(st.id, src)
		}
		emit := st.emit
		if s.opts.WrapSink != nil {
			emit = s.opts.WrapSink(st.id, emit)
		}
		_, runErr := p.RunContext(runCtx, src, emit)
		// A failed RunContext can return while the mine stage is still
		// inside a source read; retire the source and wait for that read to
		// land before inspecting consumption state, or the record it dequeues
		// would miss the replay buffer and be dropped from the stream.
		qs.retire(cancelRun)
		// A canceled RunContext can likewise return while the emit stage is
		// still draining buffered windows — including checkpoint saves. Join
		// the stages before the restart loop reuses the store or a caller
		// (Delete, gcStream) reclaims the stream's durable directory.
		p.Wait()
		if runErr == nil {
			st.setState(StateDone, nil)
			// The stream is complete: its final window and checkpoint are
			// published, nothing remains to recover. Reclaim the durable
			// footprint.
			s.gcStream(st)
			s.log.Info("stream drained", "stream", st.id)
			return
		}
		if st.runCtx.Err() != nil {
			// Deleted or server-aborted; nothing to restart — and nothing to
			// persist: an abort is the simulated crash, so the manifest must
			// keep saying whatever it said before it.
			st.setState(StateFailed, runErr)
			return
		}
		if errors.Is(runErr, pipeline.ErrShortStream) {
			// Closed before the first window ever filled — a property of
			// the input, not a fault; restarting cannot help.
			st.setState(StateFailed, runErr)
			s.manifestSetState(st.id, manifestFailed, runErr.Error())
			s.log.Warn("stream closed short", "stream", st.id, "error", runErr.Error())
			return
		}
		st.mu.Lock()
		if st.progress.Load() {
			st.consecFails = 0
		}
		st.consecFails++
		st.restarts++
		fails := st.consecFails
		st.mu.Unlock()
		s.metrics.addRestart()
		s.log.Warn("stream run failed", "stream", st.id,
			"error", runErr.Error(), "consecutive_failures", fails)
		if fails >= s.opts.BreakerFailures {
			st.setState(StateQuarantined, runErr)
			s.metrics.addQuarantine(quarBreaker)
			s.manifestSetState(st.id, manifestQuarantined, runErr.Error())
			s.log.Error("stream quarantined", "stream", st.id,
				"error", runErr.Error(), "failures", fails)
			return
		}
		var rerr error
		snap, synth, replay, rerr = st.buildRestart()
		if rerr != nil {
			st.setState(StateQuarantined, fmt.Errorf("%v (restart impossible: %v)", runErr, rerr))
			s.metrics.addQuarantine(quarRestartImpossible)
			s.manifestSetState(st.id, manifestQuarantined,
				fmt.Sprintf("%v (restart impossible: %v)", runErr, rerr))
			s.log.Error("stream restart impossible", "stream", st.id, "error", rerr.Error())
			return
		}
		backoff := s.opts.RestartBackoff << (fails - 1)
		select {
		case <-time.After(backoff):
		case <-st.runCtx.Done():
			st.setState(StateFailed, st.runCtx.Err())
			return
		}
	}
}

// Status returns one stream's status.
func (s *Server) Status(id string) (StreamStatus, error) {
	st := s.get(id)
	if st == nil {
		return StreamStatus{}, fmt.Errorf("%w: %s", errStreamNotFound, id)
	}
	return st.status(), nil
}

// List returns every hosted stream's status, sorted by id.
func (s *Server) List() []StreamStatus {
	streams := s.all()
	out := make([]StreamStatus, 0, len(streams))
	for _, st := range streams {
		out = append(out, st.status())
	}
	return out
}

// Pause gates a running stream: ingest is refused and the source stops
// delivering; windows already inside the pipeline still complete.
func (s *Server) Pause(id string) (StreamStatus, error) {
	st := s.get(id)
	if st == nil {
		return StreamStatus{}, fmt.Errorf("%w: %s", errStreamNotFound, id)
	}
	if err := st.pause(); err != nil {
		return StreamStatus{}, err
	}
	s.log.Info("stream paused", "stream", id)
	return st.status(), nil
}

// Resume unpauses a paused stream, or resets a quarantined stream's
// breaker and restarts it from its newest checkpoint + replay buffer.
func (s *Server) Resume(id string) (StreamStatus, error) {
	if s.draining.Load() {
		return StreamStatus{}, errDraining
	}
	st := s.get(id)
	if st == nil {
		return StreamStatus{}, fmt.Errorf("%w: %s", errStreamNotFound, id)
	}
	switch st.currentState() {
	case StatePaused:
		st.unpause()
		s.log.Info("stream resumed", "stream", id)
		return st.status(), nil
	case StateQuarantined:
		snap, synth, replay, err := st.buildRestart()
		if err != nil {
			return StreamStatus{}, fmt.Errorf("stream %s cannot restart: %w", id, err)
		}
		// Re-check under the lock so two concurrent resumes cannot spawn
		// two supervisors for one stream.
		st.mu.Lock()
		if st.state != StateQuarantined {
			state := st.state
			st.mu.Unlock()
			return StreamStatus{}, fmt.Errorf("stream %s is no longer quarantined (%s)", id, state)
		}
		st.state = StateRunning
		st.consecFails = 0
		st.done = make(chan struct{})
		st.mu.Unlock()
		s.metrics.moveState(StateQuarantined, StateRunning)
		s.manifestSetState(id, manifestActive, "")
		s.wg.Add(1)
		go s.supervise(st, snap, synth, replay)
		s.log.Info("stream un-quarantined", "stream", id)
		return st.status(), nil
	default:
		return StreamStatus{}, fmt.Errorf("stream %s is %s; resume applies to %s or %s streams",
			id, st.currentState(), StatePaused, StateQuarantined)
	}
}

// CloseIngest ends a stream's input: the pipeline drains the queue,
// publishes the final window, and writes the final checkpoint.
func (s *Server) CloseIngest(id string) (StreamStatus, error) {
	st := s.get(id)
	if st == nil {
		return StreamStatus{}, fmt.Errorf("%w: %s", errStreamNotFound, id)
	}
	st.unpause() // a paused stream must still be able to drain
	st.closeIngest()
	// A client-initiated close is durable intent: a re-adopted stream
	// re-closes its queue after replay and drains to done. (Shutdown's
	// internal closeIngest is not recorded — a drain is not the client
	// ending the stream.)
	s.manifestSetClosed(id)
	s.log.Info("stream ingest closed", "stream", id)
	return st.status(), nil
}

// Delete stops a stream promptly (no final drain — use CloseIngest first
// for a graceful end) and removes it from the registry, the manifest, and
// the disk: checkpoints, WAL, and token journal are reclaimed.
func (s *Server) Delete(id string) error {
	sh := s.shard(id)
	sh.mu.Lock()
	st := sh.m[id]
	delete(sh.m, id)
	sh.mu.Unlock()
	if st == nil {
		return fmt.Errorf("%w: %s", errStreamNotFound, id)
	}
	s.nstreams.Add(-1)
	st.stop()
	st.unpause()
	<-st.runDone()
	// closeIngest waits for any in-flight ingest request (they hold
	// ingestMu for their whole body) so drainQueue below sees a closed,
	// sender-free queue.
	st.closeIngest()
	st.drainQueue()
	s.gcStream(st)
	s.metrics.moveState(st.currentState(), "")
	s.log.Info("stream deleted", "stream", id)
	return nil
}

// DrainReport summarizes a graceful shutdown: each stream's final state
// ("done", or "state: error" for anything less clean).
type DrainReport struct {
	Streams map[string]string
	Clean   bool
	Took    time.Duration
}

// Shutdown drains every stream concurrently: ingest closes, pipelines
// publish their final windows and checkpoints, leases release. Streams
// that outlive ctx are cancelled hard (their newest checkpoint still makes
// resume correct — the tail past it is simply republished on restart).
func (s *Server) Shutdown(ctx context.Context) DrainReport {
	s.draining.Store(true)
	t0 := time.Now()
	rep := DrainReport{Streams: map[string]string{}, Clean: true}
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, st := range s.all() {
		st := st
		wg.Add(1)
		go func() {
			defer wg.Done()
			st.unpause()
			closed := make(chan struct{})
			go func() {
				// May block behind a slow in-flight ingest request; the
				// deadline path below does not wait for it.
				st.closeIngest()
				close(closed)
			}()
			select {
			case <-closed:
			case <-ctx.Done():
				st.stop()
			}
			select {
			case <-st.runDone():
			case <-ctx.Done():
				st.stop()
				<-st.runDone()
			}
			st.closeDurable()
			st.releaseLease()
			state, lastErr := st.finalState()
			mu.Lock()
			defer mu.Unlock()
			if state == StateDone {
				rep.Streams[st.id] = state
			} else {
				rep.Streams[st.id] = state + ": " + lastErr
				rep.Clean = false
			}
		}()
	}
	wg.Wait()
	s.cancel()
	s.wg.Wait()
	rep.Took = time.Since(t0)
	s.metrics.observeDrain(rep.Took)
	s.log.Info("server drained", "streams", len(rep.Streams),
		"clean", rep.Clean, "took", rep.Took.String())
	return rep
}

// Abort cancels every stream immediately — the simulated crash: no final
// windows, no final checkpoints. Leases are released (the process is
// exiting on purpose); the stale-lease path covers real crashes.
func (s *Server) Abort() {
	s.draining.Store(true)
	s.cancel()
	streams := s.all()
	for _, st := range streams {
		st.unpause()
	}
	s.wg.Wait()
	for _, st := range streams {
		// Close drops any unsynced buffered WAL frames — exactly what the
		// real crash being simulated would lose.
		st.closeDurable()
		st.releaseLease()
	}
	s.log.Warn("server aborted", "streams", len(streams))
}
