package server

// HTTP control plane and ingest path, on the stdlib mux only. Routes use
// Go 1.22 method patterns, so a wrong-method hit on a known path gets 405
// with an Allow header for free. Every response is JSON; rejections carry
// an "error" field plus Retry-After where a retry is the right move.

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"repro/internal/checkpoint"
)

// Routes installs the control plane, ingest, and health handlers on mux,
// typically next to the telemetry registry's own /metrics and /debug
// routes. The /v1 surface is readiness-gated (see health.go): between
// BeginBoot and Recover it answers 503 + Retry-After; the health probes
// themselves are never gated.
func (s *Server) Routes(mux *http.ServeMux) {
	mux.HandleFunc("POST /v1/streams", s.gated(s.handleCreate))
	mux.HandleFunc("GET /v1/streams", s.gated(s.handleList))
	mux.HandleFunc("GET /v1/streams/{id}", s.gated(s.handleStatus))
	mux.HandleFunc("DELETE /v1/streams/{id}", s.gated(s.handleDelete))
	mux.HandleFunc("POST /v1/streams/{id}/records", s.gated(s.handleIngest))
	mux.HandleFunc("POST /v1/streams/{id}/close", s.gated(s.handleClose))
	mux.HandleFunc("POST /v1/streams/{id}/pause", s.gated(s.handlePause))
	mux.HandleFunc("POST /v1/streams/{id}/resume", s.gated(s.handleResume))
	mux.HandleFunc("GET /v1/streams/{id}/windows", s.gated(s.handleWindows))
	mux.HandleFunc("GET /v1/streams/{id}/trace", s.gated(s.handleTrace))
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

type errorBody struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errorBody{Error: err.Error()})
}

// parseCreateRequest decodes and validates a create-stream body. Split out
// (and fuzzed) separately from the handler: this is the server's largest
// attacker-controlled surface.
func parseCreateRequest(body []byte) (StreamConfig, error) {
	var cfg StreamConfig
	if len(body) == 0 {
		return cfg, fmt.Errorf("empty request body")
	}
	if err := json.Unmarshal(body, &cfg); err != nil {
		return cfg, fmt.Errorf("decoding create request: %w", err)
	}
	if err := cfg.validate(); err != nil {
		return cfg, err
	}
	return cfg, nil
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	body, err := readBodyLimited(w, r, 1<<20)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	cfg, err := parseCreateRequest(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	status, err := s.Create(cfg)
	switch {
	case err == nil:
		writeJSON(w, http.StatusCreated, status)
	case errors.Is(err, errDraining), errors.Is(err, errTooManyStreams):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, errStreamExists), errors.Is(err, checkpoint.ErrLeaseHeld):
		writeError(w, http.StatusConflict, err)
	default:
		writeError(w, http.StatusBadRequest, err)
	}
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Streams []StreamStatus `json:"streams"`
	}{Streams: s.List()})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	status, err := s.Status(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, status)
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	if err := s.Delete(r.PathValue("id")); err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Deleted string `json:"deleted"`
	}{Deleted: r.PathValue("id")})
}

// ingestResponse reports partial acceptance: on 429/503 the client resumes
// from its (accepted)th line. AcceptedLines is the stream's cumulative
// accepted-line total after the request — the authoritative resume offset,
// which can exceed what the client has seen acknowledged when recovery
// adopted frames from a request whose response never arrived.
type ingestResponse struct {
	Accepted      int    `json:"accepted"`
	Bad           int    `json:"bad"`
	AcceptedLines uint64 `json:"accepted_lines"`
	Error         string `json:"error,omitempty"`
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	st := s.get(r.PathValue("id"))
	if st == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("%w: %s", errStreamNotFound, r.PathValue("id")))
		return
	}
	// ?offset=N is the client's count of lines it knows the stream accepted;
	// the stream skips the overlap so a retry after a lost 2xx cannot
	// double-ingest. Omitted: append blindly (the pre-durability behavior).
	offset := int64(-1)
	if q := r.URL.Query().Get("offset"); q != "" {
		n, err := strconv.ParseInt(q, 10, 64)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("invalid offset=%q", q))
			return
		}
		offset = n
	}
	accepted, bad, err := st.ingest(r.Body, offset)
	resp := ingestResponse{Accepted: accepted, Bad: bad, AcceptedLines: st.acceptedLines()}
	if err != nil {
		resp.Error = err.Error()
	}
	switch {
	case err == nil:
		writeJSON(w, http.StatusOK, resp)
	case errors.Is(err, errBackpressure):
		s.metrics.rejection(rejectBackpressure).Inc()
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, resp)
	case errors.Is(err, errOverload):
		s.metrics.rejection(rejectOverload).Inc()
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, resp)
	case errors.Is(err, errStreamPaused):
		s.metrics.rejection(rejectPaused).Inc()
		writeJSON(w, http.StatusConflict, resp)
	case errors.Is(err, errStreamQuarantined):
		s.metrics.rejection(rejectQuarantined).Inc()
		writeJSON(w, http.StatusConflict, resp)
	case errors.Is(err, errStreamClosed):
		s.metrics.rejection(rejectClosed).Inc()
		writeJSON(w, http.StatusConflict, resp)
	case errors.Is(err, errOffsetGap):
		// The client believes lines were accepted that the stream never
		// saw — resending from the offset would leave a hole. Not retryable
		// without operator attention.
		writeJSON(w, http.StatusConflict, resp)
	case errors.Is(err, errDurability):
		// The group's fsync failed and the whole request was unwound; the
		// client re-sends from its own offset.
		writeJSON(w, http.StatusInternalServerError, resp)
	default:
		// The request body itself failed mid-read (truncated upload,
		// dropped connection). Everything accepted stays accepted.
		writeJSON(w, http.StatusBadRequest, resp)
	}
}

func (s *Server) handleClose(w http.ResponseWriter, r *http.Request) {
	s.controlOp(w, r, s.CloseIngest)
}

func (s *Server) handlePause(w http.ResponseWriter, r *http.Request) {
	s.controlOp(w, r, s.Pause)
}

func (s *Server) handleResume(w http.ResponseWriter, r *http.Request) {
	s.controlOp(w, r, s.Resume)
}

func (s *Server) controlOp(w http.ResponseWriter, r *http.Request, op func(string) (StreamStatus, error)) {
	status, err := op(r.PathValue("id"))
	switch {
	case err == nil:
		writeJSON(w, http.StatusOK, status)
	case errors.Is(err, errStreamNotFound):
		writeError(w, http.StatusNotFound, err)
	case errors.Is(err, errDraining):
		writeError(w, http.StatusServiceUnavailable, err)
	default:
		writeError(w, http.StatusConflict, err)
	}
}

func (s *Server) handleWindows(w http.ResponseWriter, r *http.Request) {
	st := s.get(r.PathValue("id"))
	if st == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("%w: %s", errStreamNotFound, r.PathValue("id")))
		return
	}
	from := 0
	if q := r.URL.Query().Get("from"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("invalid from=%q", q))
			return
		}
		from = n
	}
	windows, truncated := st.windowsFrom(from)
	writeJSON(w, http.StatusOK, struct {
		Stream    string            `json:"stream"`
		Windows   []publishedWindow `json:"windows"`
		Truncated bool              `json:"truncated"`
	}{Stream: st.id, Windows: windows, Truncated: truncated})
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	st := s.get(r.PathValue("id"))
	if st == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("%w: %s", errStreamNotFound, r.PathValue("id")))
		return
	}
	if st.tracer == nil {
		writeError(w, http.StatusNotFound,
			fmt.Errorf("stream %s has no flight recorder (create with trace_windows > 0)", st.id))
		return
	}
	st.tracer.Handler().ServeHTTP(w, r)
}

// readBodyLimited reads at most limit bytes; beyond it the request is
// refused rather than truncated.
func readBodyLimited(w http.ResponseWriter, r *http.Request, limit int64) ([]byte, error) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, limit))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return nil, fmt.Errorf("request body exceeds %d bytes", limit)
		}
		return nil, fmt.Errorf("reading request body: %w", err)
	}
	return body, nil
}
