// Package wal makes ingest acceptance durable: a per-stream segmented
// write-ahead log of CRC32-framed records, appended at HTTP accept time and
// group-fsynced before the 2xx leaves the server, so a kill -9 of the
// daemon loses nothing it acknowledged. The multi-stream server replays the
// log tail past the newest recovered checkpoint through its
// deterministic-restart path at boot (see internal/server), replacing the
// in-memory retained buffer and its ReplayLimit failure mode. The log is
// truncated only up to full-snapshot anchors — never delta frames — so the
// tail always covers everything past the anchor and a lost or corrupt delta
// chain costs replay time, not data (see TruncateBefore).
//
// Segment format, frozen at version 1 (file name wal-%016d.seg, the
// zero-padded base line making lexical order equal stream order):
//
//	magic "BFLYWAL1" | uint64 LE base line | frame*
//
// and each frame:
//
//	uint32 LE len(payload) | uint32 LE CRC32(IEEE, payload) | payload
//
// where the payload is
//
//	uvarint line | byte kind | uvarint seq |
//	  good: uvarint item count | uvarint delta-encoded items
//	  bad:  varint parse line | string token | string reason
//
// Lines are the stream's cumulative accepted-line coordinates (good + bad),
// strictly sequential across frames and segments; seq is the count of
// well-formed records up to and including the frame (a bad frame carries
// the seq of the preceding good one) — the same coordinates the server's
// queue items use. Decoding never panics and never yields a record beyond
// the last fully-valid frame: a torn tail or a corrupt segment recovers to
// the longest valid prefix with a logged warning, mirroring the checkpoint
// store's corrupt-generation fallback.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/data"
	"repro/internal/itemset"
	"repro/internal/telemetry"
)

const (
	segMagic  = "BFLYWAL1"
	segHeader = len(segMagic) + 8 // magic + uint64 base line
	segFormat = "wal-%016d.seg"
	segGlob   = "wal-*.seg"

	// frameOverhead is the fixed prefix of every frame: payload length and
	// payload checksum.
	frameOverhead = 8

	// MaxFrame bounds one frame's payload. A record is one ingest line, so
	// anything near this is corruption, not data; the decoder refuses larger
	// length headers before allocating.
	MaxFrame = 8 << 20

	kindGood = 0
	kindBad  = 1
)

// DefaultSegmentBytes is the rotation threshold when Options does not set one.
const DefaultSegmentBytes = 4 << 20

// SegmentGlob matches segment files and TokensName is the token journal's
// file name — exported so the server can wipe a directory's durable log when
// a fresh (non-adopting) create reuses it.
const (
	SegmentGlob = segGlob
	TokensName  = tokenLogName
)

// Crash points of the group-sync protocol, consulted through Log.CrashHook
// (the same shape as checkpoint.Store.CrashHook) so the recovery suite can
// simulate a process death at each stage:
//
//   - CrashBeforeSync: the buffered frames never reach the disk — exactly
//     what a kill -9 between accept and fsync loses. No response carrying
//     those lines was ever sent, so recovery owes the client nothing.
//   - CrashTornSync: half the buffered bytes land (a torn write); recovery
//     must drop the partial tail frame and keep every earlier frame.
const (
	CrashBeforeSync = "before-sync"
	CrashTornSync   = "torn-sync"
)

// ErrInjectedCrash is returned by Sync when the CrashHook fired.
var ErrInjectedCrash = errors.New("wal: injected crash")

// ErrCorrupt marks bytes that failed structural validation.
var ErrCorrupt = errors.New("wal: corrupt frame")

// errTorn marks an incomplete trailing frame — fewer bytes than its header
// promises. Distinguished from ErrCorrupt only to label the recovery
// outcome; both recover to the longest valid prefix.
var errTorn = errors.New("wal: torn trailing frame")

// Recovery outcome labels (the butterfly_server_wal_recoveries_total label
// values).
const (
	OutcomeClean    = "clean"
	OutcomeTornTail = "torn_tail"
	OutcomeCorrupt  = "corrupt"
)

// Record is one accepted ingest line: a well-formed record or a malformed
// line carried as its *data.ParseError, in the same shape the server's
// ingest queue uses.
type Record struct {
	// Line is the 1-based cumulative accepted-line index (good + bad).
	Line uint64
	// Seq is the count of well-formed records up to and including this one;
	// a bad record carries the seq of the preceding good one.
	Seq uint64
	Rec itemset.Itemset
	Bad *data.ParseError
}

// Options configures a Log.
type Options struct {
	// SegmentBytes is the rotation threshold (default DefaultSegmentBytes).
	SegmentBytes int64
	// Logf, when non-nil, receives warnings the log absorbs (torn tails,
	// corrupt segments dropped during recovery).
	Logf func(format string, args ...any)
	// Metrics, when non-nil, receives the wal instruments; Stream labels the
	// per-stream segment gauge.
	Metrics *telemetry.Registry
	Stream  string
}

// Report summarizes what Open recovered.
type Report struct {
	// Outcome is OutcomeClean, OutcomeTornTail or OutcomeCorrupt.
	Outcome string
	// Frames is the number of valid frames found on disk.
	Frames int
	// LastLine and LastSeq are the coordinates of the newest valid frame.
	LastLine, LastSeq uint64
	// DroppedBytes counts bytes discarded past the longest valid prefix;
	// DroppedSegments counts whole later segments discarded with them.
	DroppedBytes    int64
	DroppedSegments int
}

type segment struct {
	base uint64
	path string
}

// Log is one stream's write-ahead log. Appends buffer in memory; Sync
// flushes and fsyncs them as one group (the per-request durability barrier)
// and rotates segments past the size threshold. All methods are safe for
// concurrent use.
type Log struct {
	// CrashHook, when non-nil, is consulted with each crash point and the
	// 1-based sync number; returning true simulates a process crash there.
	// Set before the first Sync; test-only.
	CrashHook func(point string, sync int) bool

	mu       sync.Mutex
	dir      string
	segBytes int64
	logf     func(format string, args ...any)

	segs       []segment // all segments, oldest first; the last is active
	active     *os.File
	activeSize int64

	buf     []byte   // encoded frames awaiting Sync
	pending []Record // decoded form of buf, for Tail before durability
	last    uint64   // last appended line (buffered included)
	lastSeq uint64   // last appended good seq (buffered included)
	syncs   int
	failed  error // a Sync failed; the log refuses further writes

	m *metricsSet
}

type metricsSet struct {
	appendDur  *telemetry.Histogram
	fsyncDur   *telemetry.Histogram
	segments   *telemetry.Gauge
	recoveries func(outcome string) *telemetry.Counter
	replayed   *telemetry.Counter
}

// WAL metric names (see OBSERVABILITY.md).
const (
	MetricAppendSeconds   = "butterfly_server_wal_append_seconds"
	MetricFsyncSeconds    = "butterfly_server_wal_fsync_seconds"
	MetricSegments        = "butterfly_server_wal_segments"
	MetricRecoveries      = "butterfly_server_wal_recoveries_total"
	MetricReplayedRecords = "butterfly_server_wal_replayed_records_total"
)

// RegisterMetrics pre-registers the wal instrument namespace on reg (with
// placeholder label values) so the observability doc-sync test sees the
// full surface without standing up a server.
func RegisterMetrics(reg *telemetry.Registry) {
	m := newMetricsSet(reg, "example")
	m.recoveries(OutcomeClean)
}

func newMetricsSet(reg *telemetry.Registry, stream string) *metricsSet {
	if reg == nil {
		return nil
	}
	return &metricsSet{
		appendDur: reg.Histogram(MetricAppendSeconds,
			"Time encoding and buffering one accepted record into the ingest WAL.",
			telemetry.DefBuckets, nil),
		fsyncDur: reg.Histogram(MetricFsyncSeconds,
			"Time of one WAL group sync (write + fsync of a request's frames).",
			telemetry.DefBuckets, nil),
		segments: reg.Gauge(MetricSegments,
			"WAL segment files currently on disk, per stream.",
			telemetry.Labels{"stream": stream}),
		recoveries: func(outcome string) *telemetry.Counter {
			return reg.Counter(MetricRecoveries,
				"WAL boot recoveries, by outcome (clean, torn_tail, corrupt).",
				telemetry.Labels{"outcome": outcome})
		},
		replayed: reg.Counter(MetricReplayedRecords,
			"Records replayed from WAL tails into restarted pipelines.", nil),
	}
}

// Open scans dir's segments oldest-first, validates every frame, and
// recovers the longest valid prefix: a torn or corrupt frame truncates its
// segment there and discards all later segments, with warnings through
// Options.Logf. The returned log is positioned to append after the newest
// valid frame.
func Open(dir string, opts Options) (*Log, Report, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, Report{}, fmt.Errorf("wal: creating %s: %w", dir, err)
	}
	l := &Log{
		dir:      dir,
		segBytes: opts.SegmentBytes,
		logf:     opts.Logf,
		m:        newMetricsSet(opts.Metrics, opts.Stream),
	}
	rep, err := l.recover()
	if err != nil {
		return nil, rep, err
	}
	if l.m != nil {
		l.m.recoveries(rep.Outcome).Inc()
		l.m.segments.Set(float64(len(l.segs)))
	}
	return l, rep, nil
}

func (l *Log) warnf(format string, args ...any) {
	if l.logf != nil {
		l.logf(format, args...)
	}
}

// recover scans and repairs the on-disk state (called once, from Open).
func (l *Log) recover() (Report, error) {
	paths, err := filepath.Glob(filepath.Join(l.dir, segGlob))
	if err != nil {
		return Report{}, fmt.Errorf("wal: listing %s: %w", l.dir, err)
	}
	sort.Strings(paths)

	rep := Report{Outcome: OutcomeClean}
	var prev uint64 // last valid line seen across segments
	for i, path := range paths {
		buf, err := os.ReadFile(path)
		if err != nil {
			return rep, fmt.Errorf("wal: reading %s: %w", path, err)
		}
		base, herr := checkSegHeader(path, buf)
		if herr == nil {
			switch {
			case base <= prev:
				// Overlapping line ranges can only mean a forged or mangled
				// segment: lines are strictly sequential across rotations.
				herr = fmt.Errorf("%w: segment base %d at or below line %d", ErrCorrupt, base, prev)
			case base > prev+1:
				// A forward gap is legitimate history, not damage: checkpoint
				// pruning removes the oldest segments (so the first surviving
				// base is wherever the prune left it), and Rebase seals past
				// lines the newest checkpoint already covers. Tail still
				// verifies contiguity of any range it is asked to replay, so a
				// gap that actually lost needed records cannot go unnoticed.
				if i > 0 {
					l.warnf("wal: %d-line gap before segment %s (checkpoint-covered)", base-prev-1, path)
				}
				prev = base - 1
			}
		}
		if herr != nil {
			// The segment is unusable from byte zero: drop it and everything
			// after it. A header too short on the final segment is a torn
			// rotation; anything else is corruption.
			if i == len(paths)-1 && errors.Is(herr, errTorn) {
				rep.Outcome = OutcomeTornTail
			} else {
				rep.Outcome = OutcomeCorrupt
			}
			l.warnf("wal: dropping segment %s and %d after it: %v", path, len(paths)-1-i, herr)
			for _, p := range paths[i:] {
				if info, err := os.Stat(p); err == nil {
					rep.DroppedBytes += info.Size()
				}
				if err := os.Remove(p); err != nil {
					return rep, fmt.Errorf("wal: removing unusable segment %s: %w", p, err)
				}
				rep.DroppedSegments++
			}
			syncDir(l.dir)
			break
		}
		_, goodLen, serr := scanFrames(buf[segHeader:], prev, func(r Record) {
			rep.Frames++
			rep.LastLine, prev = r.Line, r.Line
			if r.Bad == nil {
				rep.LastSeq = r.Seq
			}
		})
		if serr == nil {
			l.segs = append(l.segs, segment{base: base, path: path})
			continue
		}
		// Truncate this segment to its valid prefix and discard all later
		// segments: their lines would leave a gap after the cut.
		keep := int64(segHeader + goodLen)
		dropped := int64(len(buf)) - keep
		final := i == len(paths)-1
		if final && errors.Is(serr, errTorn) {
			rep.Outcome = OutcomeTornTail
		} else {
			rep.Outcome = OutcomeCorrupt
		}
		l.warnf("wal: truncating %s to %d bytes (dropping %d) and %d later segments: %v",
			path, keep, dropped, len(paths)-1-i, serr)
		if err := os.Truncate(path, keep); err != nil {
			return rep, fmt.Errorf("wal: truncating %s: %w", path, err)
		}
		if err := fsyncFile(path); err != nil {
			return rep, err
		}
		rep.DroppedBytes += dropped
		for _, p := range paths[i+1:] {
			if info, err := os.Stat(p); err == nil {
				rep.DroppedBytes += info.Size()
			}
			if err := os.Remove(p); err != nil {
				return rep, fmt.Errorf("wal: removing unusable segment %s: %w", p, err)
			}
			rep.DroppedSegments++
		}
		syncDir(l.dir)
		l.segs = append(l.segs, segment{base: base, path: path})
		break
	}
	// prev, not rep.LastLine: an active segment left empty by a prune-then
	// -rotate still positions the log at its base-1, even with zero frames.
	l.last, l.lastSeq = prev, rep.LastSeq

	// Open (or create) the active segment for appending.
	if len(l.segs) == 0 {
		if err := l.newSegment(l.last + 1); err != nil {
			return rep, err
		}
	} else {
		act := l.segs[len(l.segs)-1]
		f, err := os.OpenFile(act.path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return rep, fmt.Errorf("wal: opening active segment: %w", err)
		}
		info, err := f.Stat()
		if err != nil {
			f.Close()
			return rep, fmt.Errorf("wal: sizing active segment: %w", err)
		}
		l.active, l.activeSize = f, info.Size()
	}
	return rep, nil
}

// checkSegHeader validates a segment's fixed header and returns its base
// line.
func checkSegHeader(path string, buf []byte) (uint64, error) {
	if len(buf) < segHeader {
		return 0, fmt.Errorf("%w: %d-byte segment header", errTorn, len(buf))
	}
	if string(buf[:len(segMagic)]) != segMagic {
		return 0, fmt.Errorf("%w: bad segment magic", ErrCorrupt)
	}
	base := binary.LittleEndian.Uint64(buf[len(segMagic):segHeader])
	name := filepath.Base(path)
	digits := strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".seg")
	nameBase, err := strconv.ParseUint(digits, 10, 64)
	if err != nil || nameBase != base {
		return 0, fmt.Errorf("%w: header base %d does not match file name %s", ErrCorrupt, base, name)
	}
	return base, nil
}

// scanFrames walks frames in b, calling fn for each valid one. Lines must
// be strictly sequential from prev+1. It returns the frame count, the byte
// length of the valid prefix, and the error that stopped the scan (nil when
// every byte validated).
func scanFrames(b []byte, prev uint64, fn func(Record)) (frames, goodLen int, err error) {
	off := 0
	for off < len(b) {
		rec, n, err := decodeFrame(b[off:])
		if err != nil {
			// A bad frame that is the last thing in the buffer looks like a
			// torn write even when its length header survived.
			if off+n >= len(b) && errors.Is(err, ErrCorrupt) && n > 0 {
				err = fmt.Errorf("%w (%v)", errTorn, err)
			}
			return frames, off, err
		}
		if rec.Line != prev+1 {
			return frames, off, fmt.Errorf("%w: line %d after %d", ErrCorrupt, rec.Line, prev)
		}
		prev = rec.Line
		frames++
		off += n
		if fn != nil {
			fn(rec)
		}
	}
	return frames, off, nil
}

// decodeFrame parses one frame at the start of b, returning the record and
// the total frame length. It never panics; n is 0 when even the frame
// header is unusable.
func decodeFrame(b []byte) (Record, int, error) {
	if len(b) < frameOverhead {
		return Record{}, 0, fmt.Errorf("%w: %d-byte frame header", errTorn, len(b))
	}
	plen := binary.LittleEndian.Uint32(b)
	sum := binary.LittleEndian.Uint32(b[4:])
	if plen > MaxFrame {
		return Record{}, 0, fmt.Errorf("%w: frame length %d exceeds %d", ErrCorrupt, plen, MaxFrame)
	}
	total := frameOverhead + int(plen)
	if len(b) < total {
		return Record{}, 0, fmt.Errorf("%w: %d of %d frame bytes", errTorn, len(b), total)
	}
	payload := b[frameOverhead:total]
	if got := crc32.ChecksumIEEE(payload); got != sum {
		return Record{}, total, fmt.Errorf("%w: checksum %08x, want %08x", ErrCorrupt, got, sum)
	}
	rec, err := decodePayload(payload)
	if err != nil {
		return Record{}, total, err
	}
	return rec, total, nil
}

// ---- payload codec ----

func appendRecord(b []byte, r Record) []byte {
	b = binary.AppendUvarint(b, r.Line)
	if r.Bad != nil {
		b = append(b, kindBad)
		b = binary.AppendUvarint(b, r.Seq)
		b = binary.AppendVarint(b, int64(r.Bad.Line))
		b = appendString(b, r.Bad.Token)
		msg := ""
		if r.Bad.Err != nil {
			msg = r.Bad.Err.Error()
		}
		return appendString(b, msg)
	}
	b = append(b, kindGood)
	b = binary.AppendUvarint(b, r.Seq)
	items := r.Rec.Items()
	b = binary.AppendUvarint(b, uint64(len(items)))
	prev := int64(-1)
	for _, it := range items {
		b = binary.AppendUvarint(b, uint64(int64(it)-prev-1))
		prev = int64(it)
	}
	return b
}

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// payloadReader is a panic-free cursor, validating every length against the
// remaining bytes before allocating (same discipline as checkpoint.Decode).
type payloadReader struct {
	b   []byte
	off int
}

func (r *payloadReader) remaining() int { return len(r.b) - r.off }

func (r *payloadReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: truncated uvarint at offset %d", ErrCorrupt, r.off)
	}
	r.off += n
	return v, nil
}

func (r *payloadReader) varint() (int64, error) {
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: truncated varint at offset %d", ErrCorrupt, r.off)
	}
	r.off += n
	return v, nil
}

func (r *payloadReader) str(what string) (string, error) {
	n, err := r.uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(r.remaining()) {
		return "", fmt.Errorf("%w: %s length %d exceeds %d remaining bytes",
			ErrCorrupt, what, n, r.remaining())
	}
	s := string(r.b[r.off : r.off+int(n)])
	r.off += int(n)
	return s, nil
}

func decodePayload(payload []byte) (Record, error) {
	r := &payloadReader{b: payload}
	var rec Record
	var err error
	if rec.Line, err = r.uvarint(); err != nil {
		return Record{}, err
	}
	if rec.Line == 0 {
		return Record{}, fmt.Errorf("%w: zero line", ErrCorrupt)
	}
	if r.remaining() < 1 {
		return Record{}, fmt.Errorf("%w: missing kind byte", ErrCorrupt)
	}
	kind := r.b[r.off]
	r.off++
	if rec.Seq, err = r.uvarint(); err != nil {
		return Record{}, err
	}
	switch kind {
	case kindGood:
		n, err := r.uvarint()
		if err != nil {
			return Record{}, err
		}
		if n > uint64(r.remaining()) {
			return Record{}, fmt.Errorf("%w: item count %d exceeds %d remaining bytes",
				ErrCorrupt, n, r.remaining())
		}
		items := make([]itemset.Item, n)
		prev := int64(-1)
		for i := range items {
			gap, err := r.uvarint()
			if err != nil {
				return Record{}, err
			}
			v := prev + 1 + int64(gap)
			if v > math.MaxInt32 {
				return Record{}, fmt.Errorf("%w: item id %d overflows", ErrCorrupt, v)
			}
			items[i] = itemset.Item(v)
			prev = v
		}
		rec.Rec = itemset.FromSorted(items)
	case kindBad:
		line, err := r.varint()
		if err != nil {
			return Record{}, err
		}
		if line < 0 || line > math.MaxInt32 {
			return Record{}, fmt.Errorf("%w: parse line %d out of range", ErrCorrupt, line)
		}
		token, err := r.str("bad token")
		if err != nil {
			return Record{}, err
		}
		msg, err := r.str("bad reason")
		if err != nil {
			return Record{}, err
		}
		rec.Bad = &data.ParseError{Line: int(line), Token: token, Err: errors.New(msg)}
	default:
		return Record{}, fmt.Errorf("%w: frame kind %d", ErrCorrupt, kind)
	}
	if r.remaining() != 0 {
		return Record{}, fmt.Errorf("%w: %d trailing payload bytes", ErrCorrupt, r.remaining())
	}
	return rec, nil
}

// ---- appends and durability ----

// Append buffers one record. It does not touch the disk: the record becomes
// durable at the next Sync, and the caller must not acknowledge the line
// before that Sync returns. Lines must be appended in order.
func (l *Log) Append(r Record) error {
	t0 := time.Now()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.failed != nil {
		return l.failed
	}
	if l.active == nil {
		return fmt.Errorf("wal: log is closed")
	}
	if r.Line != l.last+1 {
		return fmt.Errorf("wal: appending line %d after %d", r.Line, l.last)
	}
	payload := appendRecord(nil, r)
	if len(payload) > MaxFrame {
		return fmt.Errorf("wal: record at line %d encodes to %d bytes, beyond MaxFrame", r.Line, len(payload))
	}
	var hdr [frameOverhead]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
	l.buf = append(l.buf, hdr[:]...)
	l.buf = append(l.buf, payload...)
	l.pending = append(l.pending, r)
	l.last = r.Line
	if r.Bad == nil {
		l.lastSeq = r.Seq
	}
	if l.m != nil {
		l.m.appendDur.ObserveSince(t0)
	}
	return nil
}

// Sync makes every buffered frame durable — one write plus one fsync per
// ingest request, whatever the record count — and rotates the segment once
// it outgrows the threshold. A no-op when nothing is buffered.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.failed != nil {
		return l.failed
	}
	if len(l.buf) == 0 {
		return nil
	}
	if l.active == nil {
		return fmt.Errorf("wal: log is closed")
	}
	if err := l.syncLocked(); err != nil {
		// A failed group sync leaves the segment tail indeterminate (some of
		// the group's bytes may or may not have landed). Appending past that
		// hole could strand durable frames behind garbage, so the log refuses
		// everything from here on; reopening it — a process restart — repairs
		// the tail by longest-valid-prefix truncation.
		l.failed = err
		return err
	}
	return nil
}

func (l *Log) syncLocked() error {
	l.syncs++
	if l.crash(CrashBeforeSync) {
		return fmt.Errorf("%w: at %s", ErrInjectedCrash, CrashBeforeSync)
	}
	if l.crash(CrashTornSync) {
		// Simulated torn write: half the group lands and is even synced; the
		// frame cut in half must be dropped by recovery.
		if _, err := l.active.Write(l.buf[:len(l.buf)/2]); err != nil {
			return err
		}
		l.active.Sync()
		return fmt.Errorf("%w: at %s", ErrInjectedCrash, CrashTornSync)
	}
	t0 := time.Now()
	if _, err := l.active.Write(l.buf); err != nil {
		return fmt.Errorf("wal: writing segment: %w", err)
	}
	if err := l.active.Sync(); err != nil {
		return fmt.Errorf("wal: syncing segment: %w", err)
	}
	if l.m != nil {
		l.m.fsyncDur.ObserveSince(t0)
	}
	l.activeSize += int64(len(l.buf))
	l.buf = l.buf[:0]
	l.pending = l.pending[:0]
	if l.activeSize >= l.segBytes {
		if err := l.rotate(); err != nil {
			return err
		}
	}
	return nil
}

func (l *Log) crash(point string) bool {
	return l.CrashHook != nil && l.CrashHook(point, l.syncs)
}

// rotate seals the active segment and starts a new one based at the next
// line. Caller holds l.mu.
func (l *Log) rotate() error {
	if err := l.active.Close(); err != nil {
		return fmt.Errorf("wal: sealing segment: %w", err)
	}
	l.active = nil
	return l.newSegment(l.last + 1)
}

// newSegment creates and opens the segment based at line base. Caller holds
// l.mu (or is Open, before the log is shared).
func (l *Log) newSegment(base uint64) error {
	path := filepath.Join(l.dir, fmt.Sprintf(segFormat, base))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("wal: creating segment: %w", err)
	}
	hdr := make([]byte, 0, segHeader)
	hdr = append(hdr, segMagic...)
	hdr = binary.LittleEndian.AppendUint64(hdr, base)
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return fmt.Errorf("wal: writing segment header: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("wal: syncing segment header: %w", err)
	}
	syncDir(l.dir)
	l.segs = append(l.segs, segment{base: base, path: path})
	l.active, l.activeSize = f, int64(segHeader)
	if l.m != nil {
		l.m.segments.Set(float64(len(l.segs)))
	}
	return nil
}

// TruncateBefore removes sealed segments fully covered by line (every frame
// at or below it) — wired to checkpoint.Store.OnSave with the checkpoint's
// consumed-line position, keeping the tail exactly the records past the
// newest checkpoint (at segment granularity; the active segment is never
// removed).
//
// With delta checkpointing the caller must pass the line of the newest FULL
// snapshot anchor, never a delta frame's: a delta is recoverable only by
// replaying its chain from the anchor, so the records between the anchor and
// the chain tip must stay in the log or a corrupt chain tail would strand
// them (internal/server advances the floor only at full saves, lagging one
// full generation).
func (l *Log) TruncateBefore(line uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.active == nil {
		// Closed. A checkpoint save that was in flight when the server shut
		// this stream down may still deliver its OnSave afterwards — and by
		// then a successor process may own these files; removing them here
		// would pull segments out from under its recovery.
		return nil
	}
	removed := false
	for len(l.segs) > 1 && l.segs[1].base <= line+1 {
		if err := os.Remove(l.segs[0].path); err != nil {
			return fmt.Errorf("wal: pruning segment: %w", err)
		}
		l.segs = l.segs[1:]
		removed = true
	}
	if removed {
		syncDir(l.dir)
		if l.m != nil {
			l.m.segments.Set(float64(len(l.segs)))
		}
	}
	return nil
}

// Rebase positions the log to append after line, adopting seq as the good-
// record count there. Used at adoption when the newest checkpoint is ahead
// of everything the log retains (a damaged or fully pruned WAL): ingest
// appends in stream-line coordinates, so the log seals the active segment
// and starts a fresh one based past the checkpoint. The resulting gap is
// checkpoint-covered history; recovery tolerates it on the next open. A
// no-op when the log already reaches line.
func (l *Log) Rebase(line, seq uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.failed != nil {
		return l.failed
	}
	if l.active == nil {
		return fmt.Errorf("wal: log is closed")
	}
	if line <= l.last {
		return nil
	}
	if len(l.buf) > 0 {
		return fmt.Errorf("wal: rebasing to line %d with %d frames buffered", line, len(l.pending))
	}
	l.last, l.lastSeq = line, seq
	return l.rotate()
}

// Tail returns the records with from < line <= to, in order, verifying they
// are exactly the contiguous range from+1 .. to — the deterministic-restart
// replay list. Buffered (not yet synced) records are included: a record can
// be consumed by the pipeline before its request's group sync, and a replay
// that skipped it would lose it. from >= to returns nil.
func (l *Log) Tail(from, to uint64) ([]Record, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if to <= from {
		return nil, nil
	}
	var out []Record
	for i, seg := range l.segs {
		if i+1 < len(l.segs) && l.segs[i+1].base <= from+1 {
			continue // fully below the range
		}
		if seg.base > to {
			break
		}
		buf, err := os.ReadFile(seg.path)
		if err != nil {
			return nil, fmt.Errorf("wal: reading segment: %w", err)
		}
		if len(buf) < segHeader {
			return nil, fmt.Errorf("wal: segment %s shorter than its header", seg.path)
		}
		if _, _, err := scanFrames(buf[segHeader:], seg.base-1, func(r Record) {
			if r.Line > from && r.Line <= to {
				out = append(out, r)
			}
		}); err != nil {
			return nil, fmt.Errorf("wal: segment %s: %w", seg.path, err)
		}
	}
	for _, r := range l.pending {
		if r.Line > from && r.Line <= to {
			out = append(out, r)
		}
	}
	next := from + 1
	for _, r := range out {
		if r.Line != next {
			return nil, fmt.Errorf("wal: tail (%d,%d] skips from line %d to %d", from, to, next-1, r.Line)
		}
		next++
	}
	if next != to+1 {
		return nil, fmt.Errorf("wal: tail (%d,%d] ends at line %d", from, to, next-1)
	}
	if l.m != nil {
		l.m.replayed.Add(uint64(len(out)))
	}
	return out, nil
}

// LastLine returns the newest appended line (buffered included).
func (l *Log) LastLine() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.last
}

// LastSeq returns the newest appended good-record seq (buffered included).
func (l *Log) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastSeq
}

// SegmentCount returns the number of segment files on disk.
func (l *Log) SegmentCount() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.segs)
}

// Close releases the active segment handle. Buffered, never-synced frames
// are dropped — their lines were never acknowledged.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.active == nil {
		return nil
	}
	err := l.active.Close()
	l.active = nil
	return err
}

// ---- token journal ----

// TokenLog is the append-only vocabulary journal beside the WAL: one
// interned token per line, in interning order, so a recovered stream
// rebuilds the exact token→id assignment its WAL records (and checkpointed
// windows) were encoded under. Tokens are whitespace-delimited by the
// ingest grammar, so the newline framing is unambiguous; the journal is
// synced in the same per-request group as the WAL, before it, and is never
// truncated (unique tokens only — it grows with the vocabulary, not the
// stream).
type TokenLog struct {
	mu      sync.Mutex
	f       *os.File
	buf     []byte
	durable int   // tokens fully on disk
	total   int   // tokens appended (buffered included)
	failed  error // a Sync failed; the journal refuses further writes
}

// tokenLogName is the journal's file name inside the stream's wal dir.
const tokenLogName = "tokens.log"

// OpenTokens opens (creating if needed) dir's token journal and returns the
// recovered tokens in interning order. A partial trailing line — a torn
// write of a token that was never acknowledged — is dropped with a warning
// through logf and overwritten by the next append.
func OpenTokens(dir string, logf func(format string, args ...any)) (*TokenLog, []string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("wal: creating %s: %w", dir, err)
	}
	path := filepath.Join(dir, tokenLogName)
	buf, err := os.ReadFile(path)
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, nil, fmt.Errorf("wal: reading token journal: %w", err)
	}
	keep := len(buf)
	if i := strings.LastIndexByte(string(buf), '\n'); i+1 != len(buf) {
		keep = i + 1
		if logf != nil {
			logf("wal: dropping %d-byte torn tail of token journal", len(buf)-keep)
		}
		if err := os.Truncate(path, int64(keep)); err != nil {
			return nil, nil, fmt.Errorf("wal: truncating token journal: %w", err)
		}
		if err := fsyncFile(path); err != nil {
			return nil, nil, err
		}
	}
	var tokens []string
	if keep > 0 {
		tokens = strings.Split(string(buf[:keep-1]), "\n")
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: opening token journal: %w", err)
	}
	n := len(tokens)
	return &TokenLog{f: f, durable: n, total: n}, tokens, nil
}

// Len returns the number of appended tokens (buffered included).
func (t *TokenLog) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Append buffers newly interned tokens; they become durable at Sync.
func (t *TokenLog) Append(tokens []string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, tok := range tokens {
		t.buf = append(t.buf, tok...)
		t.buf = append(t.buf, '\n')
		t.total++
	}
}

// Sync flushes and fsyncs buffered tokens. A no-op when nothing is
// buffered.
func (t *TokenLog) Sync() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.failed != nil {
		return t.failed
	}
	if len(t.buf) == 0 {
		return nil
	}
	if t.f == nil {
		return fmt.Errorf("wal: token journal is closed")
	}
	if err := t.syncLocked(); err != nil {
		// The file tail is indeterminate after a failed write or fsync;
		// re-appending the buffer could duplicate a partial line and corrupt
		// the token→id assignment, so the journal refuses everything from
		// here on. Reopening it (a process restart) repairs the tail.
		t.failed = err
		return err
	}
	return nil
}

func (t *TokenLog) syncLocked() error {
	if _, err := t.f.Write(t.buf); err != nil {
		return fmt.Errorf("wal: writing token journal: %w", err)
	}
	if err := t.f.Sync(); err != nil {
		return fmt.Errorf("wal: syncing token journal: %w", err)
	}
	t.buf = t.buf[:0]
	t.durable = t.total
	return nil
}

// Close releases the journal handle, dropping unsynced buffered tokens.
func (t *TokenLog) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.f == nil {
		return nil
	}
	err := t.f.Close()
	t.f = nil
	return err
}

// ---- fs helpers ----

// syncDir best-effort fsyncs a directory so renames and removals are
// durable (same discipline as the checkpoint store).
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}

func fsyncFile(path string) error {
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		return fmt.Errorf("wal: reopening %s to sync: %w", path, err)
	}
	defer f.Close()
	if err := f.Sync(); err != nil {
		return fmt.Errorf("wal: syncing %s: %w", path, err)
	}
	return nil
}
