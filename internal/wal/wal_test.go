package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/data"
	"repro/internal/itemset"
	"repro/internal/telemetry"
)

func goodRec(line, seq uint64, items ...itemset.Item) Record {
	return Record{Line: line, Seq: seq, Rec: itemset.FromSorted(items)}
}

func badRec(line, seq uint64) Record {
	return Record{Line: line, Seq: seq,
		Bad: &data.ParseError{Line: int(line), Token: "x\x00y", Err: data.ErrTokenNUL}}
}

// appendN appends records lines from..to (every 5th line malformed), syncing
// every syncEvery lines.
func appendN(t *testing.T, l *Log, from, to uint64, syncEvery int) {
	t.Helper()
	seq := uint64(0)
	if from > 1 {
		// Recompute the good-record count below from: every 5th is bad.
		for line := uint64(1); line < from; line++ {
			if line%5 != 0 {
				seq++
			}
		}
	}
	n := 0
	for line := from; line <= to; line++ {
		var r Record
		if line%5 == 0 {
			r = badRec(line, seq)
		} else {
			seq++
			r = goodRec(line, seq, itemset.Item(line%7), itemset.Item(line%7+10), itemset.Item(line+20))
		}
		if err := l.Append(r); err != nil {
			t.Fatalf("append line %d: %v", line, err)
		}
		if n++; n%syncEvery == 0 {
			if err := l.Sync(); err != nil {
				t.Fatalf("sync at line %d: %v", line, err)
			}
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatalf("final sync: %v", err)
	}
}

func sameRecords(a, b []Record) error {
	if len(a) != len(b) {
		return fmt.Errorf("%d records, want %d", len(a), len(b))
	}
	for i := range a {
		x, y := a[i], b[i]
		if x.Line != y.Line || x.Seq != y.Seq {
			return fmt.Errorf("record %d: line/seq %d/%d, want %d/%d", i, x.Line, x.Seq, y.Line, y.Seq)
		}
		if (x.Bad == nil) != (y.Bad == nil) {
			return fmt.Errorf("record %d: kind mismatch", i)
		}
		if x.Bad != nil {
			if x.Bad.Line != y.Bad.Line || x.Bad.Token != y.Bad.Token || x.Bad.Err.Error() != y.Bad.Err.Error() {
				return fmt.Errorf("record %d: bad payload mismatch", i)
			}
			continue
		}
		xi, yi := x.Rec.Items(), y.Rec.Items()
		if len(xi) != len(yi) {
			return fmt.Errorf("record %d: %d items, want %d", i, len(xi), len(yi))
		}
		for j := range xi {
			if xi[j] != yi[j] {
				return fmt.Errorf("record %d item %d: %d, want %d", i, j, xi[j], yi[j])
			}
		}
	}
	return nil
}

// TestWALRoundTrip: records written across several rotations come back
// byte-exactly from a reopened log, with a clean recovery report.
func TestWALRoundTrip(t *testing.T) {
	dir := t.TempDir()
	reg := telemetry.NewRegistry()
	l, rep, err := Open(dir, Options{SegmentBytes: 512, Metrics: reg, Stream: "s"})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if rep.Outcome != OutcomeClean || rep.Frames != 0 {
		t.Fatalf("fresh open: %+v, want clean and empty", rep)
	}
	appendN(t, l, 1, 100, 7)
	if l.SegmentCount() < 3 {
		t.Errorf("100 records at 512-byte segments made %d segments, want >= 3", l.SegmentCount())
	}
	want, err := l.Tail(0, 100)
	if err != nil {
		t.Fatalf("tail before reopen: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	l2, rep, err := Open(dir, Options{SegmentBytes: 512})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	if rep.Outcome != OutcomeClean {
		t.Errorf("reopen outcome %q, want clean", rep.Outcome)
	}
	if rep.Frames != 100 || rep.LastLine != 100 || rep.LastSeq != 80 {
		t.Errorf("reopen report %+v, want 100 frames, last line 100, last seq 80", rep)
	}
	got, err := l2.Tail(0, 100)
	if err != nil {
		t.Fatalf("tail after reopen: %v", err)
	}
	if err := sameRecords(got, want); err != nil {
		t.Fatalf("reopened tail differs: %v", err)
	}
	// Partial ranges cross segment boundaries.
	mid, err := l2.Tail(37, 81)
	if err != nil {
		t.Fatalf("mid tail: %v", err)
	}
	if err := sameRecords(mid, want[37:81]); err != nil {
		t.Fatalf("mid tail differs: %v", err)
	}
}

// TestWALTailIncludesPending: records appended but not yet synced are part
// of the tail — a consumed-before-sync record must still be replayable.
func TestWALTailIncludesPending(t *testing.T) {
	l, _, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer l.Close()
	appendN(t, l, 1, 10, 100) // one final sync
	if err := l.Append(goodRec(11, 9, 1, 2, 3)); err != nil {
		t.Fatalf("append: %v", err)
	}
	got, err := l.Tail(8, 11)
	if err != nil {
		t.Fatalf("tail with pending: %v", err)
	}
	if len(got) != 3 || got[2].Line != 11 {
		t.Fatalf("tail with pending = %d records ending %d, want 3 ending line 11", len(got), got[len(got)-1].Line)
	}
}

// TestWALTruncateBefore: sealed segments fully covered by the checkpoint
// line disappear; the covering and active segments stay; the tail past the
// line remains replayable.
func TestWALTruncateBefore(t *testing.T) {
	l, _, err := Open(t.TempDir(), Options{SegmentBytes: 512})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer l.Close()
	appendN(t, l, 1, 100, 7)
	before := l.SegmentCount()
	if err := l.TruncateBefore(60); err != nil {
		t.Fatalf("truncate: %v", err)
	}
	if after := l.SegmentCount(); after >= before {
		t.Errorf("truncate kept %d of %d segments", after, before)
	}
	if _, err := l.Tail(60, 100); err != nil {
		t.Fatalf("tail past the truncation point: %v", err)
	}
	// Everything covered: only the active segment may remain.
	if err := l.TruncateBefore(100); err != nil {
		t.Fatalf("truncate all: %v", err)
	}
	if got, err := l.Tail(100, 100); err != nil || len(got) != 0 {
		t.Fatalf("empty tail after full truncation: %d records, %v", len(got), err)
	}
}

// TestWALTornTailRecovery: a partial trailing frame (torn write) is dropped
// on reopen with outcome torn_tail; every earlier frame survives and the
// log appends cleanly after the cut.
func TestWALTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	appendN(t, l, 1, 20, 100)
	l.Close()

	segs, _ := filepath.Glob(filepath.Join(dir, segGlob))
	if len(segs) != 1 {
		t.Fatalf("want 1 segment, have %d", len(segs))
	}
	info, _ := os.Stat(segs[0])
	if err := os.Truncate(segs[0], info.Size()-3); err != nil {
		t.Fatalf("tearing tail: %v", err)
	}

	var warned bool
	l2, rep, err := Open(dir, Options{Logf: func(string, ...any) { warned = true }})
	if err != nil {
		t.Fatalf("reopen torn: %v", err)
	}
	defer l2.Close()
	if rep.Outcome != OutcomeTornTail {
		t.Errorf("outcome %q, want torn_tail", rep.Outcome)
	}
	if !warned {
		t.Error("torn-tail recovery logged no warning")
	}
	if rep.LastLine != 19 {
		t.Errorf("recovered to line %d, want 19", rep.LastLine)
	}
	// The log continues from the cut.
	seq := l2.LastSeq()
	if err := l2.Append(goodRec(20, seq+1, 1, 2)); err != nil {
		t.Fatalf("append after torn recovery: %v", err)
	}
	if err := l2.Sync(); err != nil {
		t.Fatalf("sync after torn recovery: %v", err)
	}
}

// TestWALCorruptSegmentRecovery: bit rot inside a sealed middle segment
// recovers to the longest valid prefix — the damaged segment truncates and
// all later segments drop, outcome corrupt.
func TestWALCorruptSegmentRecovery(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{SegmentBytes: 512})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	appendN(t, l, 1, 100, 7)
	nsegs := l.SegmentCount()
	if nsegs < 3 {
		t.Fatalf("need >= 3 segments, have %d", nsegs)
	}
	l.Close()

	segs, _ := filepath.Glob(filepath.Join(dir, segGlob))
	mid := segs[1]
	buf, _ := os.ReadFile(mid)
	buf[segHeader+frameOverhead+1] ^= 0xFF // flip a payload byte of the first frame
	if err := os.WriteFile(mid, buf, 0o644); err != nil {
		t.Fatalf("corrupting %s: %v", mid, err)
	}

	l2, rep, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen corrupt: %v", err)
	}
	defer l2.Close()
	if rep.Outcome != OutcomeCorrupt {
		t.Errorf("outcome %q, want corrupt", rep.Outcome)
	}
	if rep.DroppedSegments == 0 {
		t.Error("corrupt middle segment dropped no later segments")
	}
	// The valid prefix is exactly segment 0's frames.
	if _, err := l2.Tail(0, rep.LastLine); err != nil {
		t.Fatalf("tail of recovered prefix: %v", err)
	}
	next := rep.LastLine + 1
	if err := l2.Append(goodRec(next, l2.LastSeq()+1, 4)); err != nil {
		t.Fatalf("append after corrupt recovery: %v", err)
	}
}

// TestWALCrashHooks: before-sync leaves the disk untouched (the whole group
// is lost, as a real kill -9 would lose it); torn-sync lands half the group
// and recovery drops the cut frame.
func TestWALCrashHooks(t *testing.T) {
	for _, point := range []string{CrashBeforeSync, CrashTornSync} {
		t.Run(point, func(t *testing.T) {
			dir := t.TempDir()
			l, _, err := Open(dir, Options{})
			if err != nil {
				t.Fatalf("open: %v", err)
			}
			appendN(t, l, 1, 10, 100) // 10 durable lines
			l.CrashHook = func(p string, sync int) bool { return p == point }
			for line := uint64(11); line <= 14; line++ {
				// Lines 5 and 10 of the prefix were bad, so seq = line - 2.
				if err := l.Append(goodRec(line, line-2, 9)); err != nil {
					t.Fatalf("append: %v", err)
				}
			}
			if err := l.Sync(); !errors.Is(err, ErrInjectedCrash) {
				t.Fatalf("sync with %s hook: %v, want injected crash", point, err)
			}
			l.Close()

			l2, rep, err := Open(dir, Options{Logf: t.Logf})
			if err != nil {
				t.Fatalf("reopen after %s: %v", point, err)
			}
			defer l2.Close()
			if rep.LastLine > 13 {
				t.Errorf("recovered past the crash: line %d", rep.LastLine)
			}
			if rep.LastLine < 10 {
				t.Errorf("crash at %s lost durable lines: recovered to %d, want >= 10", point, rep.LastLine)
			}
			if point == CrashBeforeSync && rep.LastLine != 10 {
				t.Errorf("before-sync crash left %d lines, want exactly the 10 durable ones", rep.LastLine)
			}
			// torn-sync may cut on or off a frame boundary; any prefix of the
			// unacknowledged group is a correct recovery (checked above).
		})
	}
}

// TestWALAppendOrdering: out-of-order lines are refused — the log's
// contiguity is an invariant, not a recovery-time surprise.
func TestWALAppendOrdering(t *testing.T) {
	l, _, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer l.Close()
	if err := l.Append(goodRec(1, 1, 1)); err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := l.Append(goodRec(3, 2, 1)); err == nil {
		t.Fatal("append of line 3 after line 1 succeeded")
	}
}

// TestWALTailGap: a tail request outside what the log holds is an error,
// not a silent short list (the restart path quarantines on it).
func TestWALTailGap(t *testing.T) {
	l, _, err := Open(t.TempDir(), Options{SegmentBytes: 256})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer l.Close()
	appendN(t, l, 1, 50, 5)
	if err := l.TruncateBefore(50); err != nil {
		t.Fatalf("truncate: %v", err)
	}
	first := l.segs[0].base
	if first == 1 {
		t.Skip("nothing pruned at this segment size")
	}
	if _, err := l.Tail(0, 50); err == nil {
		t.Fatal("tail over pruned lines succeeded")
	}
}

// TestTokenLogRoundTrip: tokens come back in interning order across reopen,
// and a torn trailing token is dropped, not half-read.
func TestTokenLogRoundTrip(t *testing.T) {
	dir := t.TempDir()
	tl, toks, err := OpenTokens(dir, nil)
	if err != nil {
		t.Fatalf("open tokens: %v", err)
	}
	if len(toks) != 0 {
		t.Fatalf("fresh journal has %d tokens", len(toks))
	}
	tl.Append([]string{"alpha", "beta"})
	if err := tl.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	tl.Append([]string{"gamma"})
	if err := tl.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	tl.Close()

	// Torn write: a partial fourth token with no newline.
	path := filepath.Join(dir, tokenLogName)
	f, _ := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	f.WriteString("del")
	f.Close()

	var warned bool
	tl2, toks, err := OpenTokens(dir, func(string, ...any) { warned = true })
	if err != nil {
		t.Fatalf("reopen tokens: %v", err)
	}
	defer tl2.Close()
	if strings.Join(toks, ",") != "alpha,beta,gamma" {
		t.Fatalf("recovered tokens %v", toks)
	}
	if !warned {
		t.Error("torn token tail logged no warning")
	}
	tl2.Append([]string{"delta"})
	if err := tl2.Sync(); err != nil {
		t.Fatalf("append after torn tail: %v", err)
	}
	_, toks, err = OpenTokens(dir, nil)
	if err != nil {
		t.Fatalf("third open: %v", err)
	}
	if strings.Join(toks, ",") != "alpha,beta,gamma,delta" {
		t.Fatalf("tokens after re-append: %v", toks)
	}
}

// buildFrame encodes one record as a wire frame (test helper shared with
// the fuzz seeds).
func buildFrame(r Record) []byte {
	payload := appendRecord(nil, r)
	var b []byte
	b = binary.LittleEndian.AppendUint32(b, uint32(len(payload)))
	b = binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(payload))
	return append(b, payload...)
}
