package wal

import (
	"encoding/binary"
	"testing"

	"repro/internal/data"
	"repro/internal/itemset"
)

// FuzzWALDecode throws arbitrary bytes at the frame scanner. Invariants:
// the decoder never panics, never yields a record past the last fully-valid
// frame (every yielded record re-validates from the reported good prefix),
// and yielded lines are strictly sequential — whatever the bytes claim.
func FuzzWALDecode(f *testing.F) {
	frame := func(recs ...Record) []byte {
		var b []byte
		for _, r := range recs {
			b = append(b, buildFrame(r)...)
		}
		return b
	}
	good := goodRec(1, 1, 3, 7, 8)
	bad := Record{Line: 2, Seq: 1, Bad: &data.ParseError{Line: 2, Token: "t\x00", Err: data.ErrTokenNUL}}
	two := frame(good, bad)

	// Seed corpus: the corruption shapes recovery must absorb.
	f.Add(two)              // fully valid
	f.Add(two[:len(two)-3]) // torn tail: final frame cut mid-payload
	f.Add(func() []byte {   // bad CRC on the final frame
		b := append([]byte(nil), two...)
		b[len(b)-1] ^= 0xFF
		return b
	}())
	f.Add([]byte{})                       // empty segment body
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0}) // zero-length payload, zero checksum
	f.Add(func() []byte {                 // length header claiming more than MaxFrame
		var b []byte
		b = binary.LittleEndian.AppendUint32(b, MaxFrame+1)
		b = binary.LittleEndian.AppendUint32(b, 0)
		return append(b, two...)
	}())
	f.Add(func() []byte { // a whole segment file, header included (misaligned scan)
		var b []byte
		b = append(b, segMagic...)
		b = binary.LittleEndian.AppendUint64(b, 1)
		return append(b, two...)
	}())
	f.Add(func() []byte { // cross-segment boundary: frames of two bases butted together
		b := frame(goodRec(1, 1, 2), goodRec(2, 2, 4))
		return append(b, frame(goodRec(3, 3, 5), goodRec(4, 4, 6))...)
	}())
	f.Add(frame(goodRec(1, 1), goodRec(5, 2))) // line gap: valid frames, broken continuity
	f.Add(frame(Record{Line: 1, Seq: 0, Bad: &data.ParseError{Line: 1, Token: "", Err: nil}}))

	f.Fuzz(func(t *testing.T, b []byte) {
		var recs []Record
		frames, goodLen, err := scanFrames(b, 0, func(r Record) { recs = append(recs, r) })
		if goodLen > len(b) {
			t.Fatalf("good prefix %d exceeds input %d", goodLen, len(b))
		}
		if frames != len(recs) {
			t.Fatalf("reported %d frames, yielded %d records", frames, len(recs))
		}
		if err == nil && goodLen != len(b) {
			t.Fatalf("clean scan consumed %d of %d bytes", goodLen, len(b))
		}
		// Nothing beyond the last valid frame: rescanning the reported good
		// prefix must yield exactly the same records, cleanly.
		recs2 := recs[:0:0]
		frames2, goodLen2, err2 := scanFrames(b[:goodLen], 0, func(r Record) { recs2 = append(recs2, r) })
		if err2 != nil || frames2 != frames || goodLen2 != goodLen {
			t.Fatalf("good prefix does not rescan cleanly: frames %d/%d, len %d/%d, err %v",
				frames2, frames, goodLen2, goodLen, err2)
		}
		prev := uint64(0)
		for i, r := range recs {
			if r.Line != prev+1 {
				t.Fatalf("record %d: line %d after %d", i, r.Line, prev)
			}
			prev = r.Line
			if r.Bad == nil {
				// Decoded itemsets are canonical: strictly increasing items.
				items := r.Rec.Items()
				for j := 1; j < len(items); j++ {
					if items[j] <= items[j-1] {
						t.Fatalf("record %d: non-canonical itemset %v", i, items)
					}
				}
			}
		}
		// Round trip: re-encoding what was decoded reproduces frames that
		// decode to the same records.
		var re []byte
		for _, r := range recs {
			re = append(re, buildFrame(r)...)
		}
		n3 := 0
		if _, _, err := scanFrames(re, 0, func(Record) { n3++ }); err != nil || n3 != len(recs) {
			t.Fatalf("re-encoded records do not round-trip: %d of %d, err %v", n3, len(recs), err)
		}
	})
}

// FuzzWALPayload targets the payload codec alone, under the frame checksum
// (which the frame scanner would normally reject mismatches with).
func FuzzWALPayload(f *testing.F) {
	f.Add(appendRecord(nil, goodRec(1, 1, 2, 5)))
	f.Add(appendRecord(nil, badRec(1, 0)))
	f.Add([]byte{1, 0})
	f.Add([]byte{1, 2, 0})
	f.Fuzz(func(t *testing.T, payload []byte) {
		rec, err := decodePayload(payload)
		if err != nil {
			return
		}
		if rec.Line == 0 {
			t.Fatal("decoded record with zero line")
		}
		if rec.Bad == nil {
			items := rec.Rec.Items()
			for j := 1; j < len(items); j++ {
				if items[j] <= items[j-1] {
					t.Fatalf("non-canonical itemset %v", items)
				}
			}
			_ = itemset.FromSorted(items)
		}
	})
}
