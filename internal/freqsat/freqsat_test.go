package freqsat

import (
	"testing"

	"repro/internal/itemset"
	"repro/internal/lattice"
	"repro/internal/paperex"
	"repro/internal/rng"
)

func exact(set itemset.Itemset, v int) Constraint {
	return Constraint{Set: set, Lo: v, Hi: v}
}

func TestValidation(t *testing.T) {
	bad := []Problem{
		{Items: nil, N: 5},
		{Items: []itemset.Item{0, 1, 2, 3, 4, 5}, N: 5},
		{Items: []itemset.Item{0}, N: -1},
		{Items: []itemset.Item{0}, N: MaxN + 1},
		{Items: []itemset.Item{0, 0}, N: 5},
		{Items: []itemset.Item{0}, N: 5, Constraints: []Constraint{{Set: itemset.New(0), Lo: 3, Hi: 2}}},
		{Items: []itemset.Item{0}, N: 5, Constraints: []Constraint{exact(itemset.New(1), 2)}},
	}
	for i, p := range bad {
		if _, err := p.Satisfiable(); err == nil {
			t.Errorf("case %d accepted: %+v", i, p)
		}
	}
}

func TestSatisfiableSimple(t *testing.T) {
	p := Problem{
		Items: []itemset.Item{0, 1},
		N:     10,
		Constraints: []Constraint{
			exact(itemset.New(0), 7),
			exact(itemset.New(1), 6),
			exact(itemset.New(0, 1), 4),
		},
	}
	ok, err := p.Satisfiable()
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("consistent instance reported unsatisfiable")
	}
}

func TestUnsatisfiableViolatesInclusion(t *testing.T) {
	// T(ab) cannot exceed T(a).
	p := Problem{
		Items: []itemset.Item{0, 1},
		N:     10,
		Constraints: []Constraint{
			exact(itemset.New(0), 3),
			exact(itemset.New(0, 1), 5),
		},
	}
	ok, err := p.Satisfiable()
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("T(ab) > T(a) reported satisfiable")
	}
}

func TestUnsatisfiableBonferroni(t *testing.T) {
	// T(a)=8, T(b)=8 in N=10 forces T(ab) >= 6; require T(ab) <= 2.
	p := Problem{
		Items: []itemset.Item{0, 1},
		N:     10,
		Constraints: []Constraint{
			exact(itemset.New(0), 8),
			exact(itemset.New(1), 8),
			{Set: itemset.New(0, 1), Lo: 0, Hi: 2},
		},
	}
	ok, err := p.Satisfiable()
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("Bonferroni-violating instance reported satisfiable")
	}
}

// The paper's Example 4 instance: with T(c)=8, T(ac)=5, T(bc)=5 in N=8, the
// exact feasible range of T(abc) is [2,5] — the optimal adversary can do no
// better than the non-derivable bounds on this instance.
func TestSupportRangeMatchesExample4(t *testing.T) {
	db := paperex.Window12()
	c := itemset.New(paperex.C)
	ac := itemset.New(paperex.A, paperex.C)
	bc := itemset.New(paperex.B, paperex.C)
	p := Problem{
		Items: []itemset.Item{paperex.A, paperex.B, paperex.C},
		N:     8,
		Constraints: []Constraint{
			exact(c, db.Support(c)),
			exact(ac, db.Support(ac)),
			exact(bc, db.Support(bc)),
		},
	}
	lo, hi, feasible, err := p.SupportRange(itemset.New(paperex.A, paperex.B, paperex.C))
	if err != nil {
		t.Fatal(err)
	}
	if !feasible {
		t.Fatal("real-data constraints reported infeasible")
	}
	if lo != 2 || hi != 5 {
		t.Errorf("exact range = [%d,%d], want [2,5]", lo, hi)
	}
}

// Soundness of the NDI bounds against the optimal adversary: on random tiny
// instances built from real (consistent) databases, the exact feasible
// range is always contained in the lattice.Bounds interval.
func TestNDIBoundsContainExactRange(t *testing.T) {
	src := rng.New(71)
	for trial := 0; trial < 25; trial++ {
		// Random database over 3 items, N up to 14.
		n := 6 + src.Intn(9)
		recs := make([]itemset.Itemset, n)
		for i := range recs {
			var items []itemset.Item
			for b := 0; b < 3; b++ {
				if src.Intn(2) == 1 {
					items = append(items, itemset.Item(b))
				}
			}
			recs[i] = itemset.New(items...)
		}
		db := itemset.NewDatabase(recs)
		target := itemset.New(0, 1, 2)

		// Publish all proper subsets; hide the target.
		var cons []Constraint
		published := map[string]int{}
		target.ProperSubsets(func(sub itemset.Itemset) bool {
			cons = append(cons, exact(sub, db.Support(sub)))
			published[sub.Key()] = db.Support(sub)
			return true
		})
		p := Problem{Items: []itemset.Item{0, 1, 2}, N: n, Constraints: cons}
		lo, hi, feasible, err := p.SupportRange(target)
		if err != nil {
			t.Fatal(err)
		}
		if !feasible {
			t.Fatalf("trial %d: constraints from a real database infeasible", trial)
		}
		truth := db.Support(target)
		if truth < lo || truth > hi {
			t.Fatalf("trial %d: truth %d outside exact range [%d,%d]", trial, truth, lo, hi)
		}
		iv, err := lattice.Bounds(target, lattice.MapLookup(published, n), n)
		if err != nil {
			t.Fatal(err)
		}
		if lo < iv.Lo || hi > iv.Hi {
			t.Errorf("trial %d: exact range [%d,%d] escapes NDI bounds %v", trial, lo, hi, iv)
		}
	}
}

func TestSupportRangeInfeasible(t *testing.T) {
	p := Problem{
		Items: []itemset.Item{0, 1},
		N:     4,
		Constraints: []Constraint{
			exact(itemset.New(0), 1),
			exact(itemset.New(0, 1), 3),
		},
	}
	_, _, feasible, err := p.SupportRange(itemset.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if feasible {
		t.Error("infeasible instance reported feasible")
	}
}

func TestSupportRangeUnconstrained(t *testing.T) {
	p := Problem{Items: []itemset.Item{0}, N: 7}
	lo, hi, feasible, err := p.SupportRange(itemset.New(0))
	if err != nil || !feasible {
		t.Fatal(err, feasible)
	}
	if lo != 0 || hi != 7 {
		t.Errorf("range = [%d,%d], want [0,7]", lo, hi)
	}
}

func TestSupportRangeRejectsForeignTarget(t *testing.T) {
	p := Problem{Items: []itemset.Item{0}, N: 3}
	if _, _, _, err := p.SupportRange(itemset.New(9)); err == nil {
		t.Error("foreign target accepted")
	}
}

func TestEmptyDatabaseProblem(t *testing.T) {
	p := Problem{Items: []itemset.Item{0}, N: 0,
		Constraints: []Constraint{exact(itemset.New(0), 0)}}
	ok, err := p.Satisfiable()
	if err != nil || !ok {
		t.Errorf("N=0 with zero supports should be satisfiable: %v %v", ok, err)
	}
}
