// Package freqsat decides itemset-frequency satisfiability (FREQSAT) for
// tiny instances: given a database size N and interval constraints on the
// supports of some itemsets, does a database exist that satisfies them all?
//
// The paper's Prior Knowledge 1 (§V-C) leans on Calders' result that
// FREQSAT is NP-complete in general, which is why an adversary cannot
// cheaply exploit inclusion–exclusion consistency to sharpen estimates at
// scale. This package implements the problem exactly — by exhaustive search
// over transaction-type multiplicities with interval pruning — for the tiny
// universes where it IS affordable. It serves two purposes: it is the
// optimal adversary against which the non-derivable bounds of package
// lattice can be judged in tests, and it documents concretely what the
// NP-completeness shields real deployments from.
package freqsat

import (
	"fmt"

	"repro/internal/itemset"
)

// Constraint requires Lo <= T(Set) <= Hi.
type Constraint struct {
	Set itemset.Itemset
	Lo  int
	Hi  int
}

// Problem is one FREQSAT instance over a fixed item universe and database
// size. Limits: at most MaxItems items and MaxN transactions; Satisfiable
// and SupportRange return an error beyond them or when the search exceeds
// its node budget.
type Problem struct {
	// Items is the item universe.
	Items []itemset.Item
	// N is the exact database size.
	N int
	// Constraints are the support requirements.
	Constraints []Constraint
}

// MaxItems bounds the universe (2^MaxItems transaction types).
const MaxItems = 5

// MaxN bounds the database size.
const MaxN = 48

// maxNodes bounds the DFS; exceeding it means the instance is too hard for
// the exhaustive solver and an error is returned rather than a wrong answer.
const maxNodes = 8_000_000

func (p Problem) validate() error {
	if len(p.Items) == 0 || len(p.Items) > MaxItems {
		return fmt.Errorf("freqsat: universe of %d items outside [1,%d]", len(p.Items), MaxItems)
	}
	if p.N < 0 || p.N > MaxN {
		return fmt.Errorf("freqsat: N=%d outside [0,%d]", p.N, MaxN)
	}
	seen := map[itemset.Item]bool{}
	for _, it := range p.Items {
		if seen[it] {
			return fmt.Errorf("freqsat: duplicate item %v", it)
		}
		seen[it] = true
	}
	for _, c := range p.Constraints {
		if c.Lo > c.Hi {
			return fmt.Errorf("freqsat: constraint on %v has Lo %d > Hi %d", c.Set, c.Lo, c.Hi)
		}
		for _, it := range c.Set.Items() {
			if !seen[it] {
				return fmt.Errorf("freqsat: constraint itemset %v uses item outside the universe", c.Set)
			}
		}
	}
	return nil
}

// solver holds the DFS state.
type solver struct {
	nTypes  int
	members [][]int // members[c] = type indexes containing constraint c's set
	lo, hi  []int
	n       int
	nodes   int
}

// Satisfiable reports whether some database over the universe meets every
// constraint.
func (p Problem) Satisfiable() (bool, error) {
	s, err := p.newSolver()
	if err != nil {
		return false, err
	}
	ok, err := s.search()
	return ok, err
}

// SupportRange returns the exact feasible range of T(target) across all
// databases satisfying the constraints. feasible is false when no database
// satisfies the constraints at all.
func (p Problem) SupportRange(target itemset.Itemset) (lo, hi int, feasible bool, err error) {
	for _, it := range target.Items() {
		found := false
		for _, u := range p.Items {
			if u == it {
				found = true
				break
			}
		}
		if !found {
			return 0, 0, false, fmt.Errorf("freqsat: target %v uses item outside the universe", target)
		}
	}
	// Ascend for the minimum, descend for the maximum; each probe adds a
	// pinning constraint on the target.
	probe := func(v int) (bool, error) {
		q := p
		q.Constraints = append(append([]Constraint{}, p.Constraints...),
			Constraint{Set: target, Lo: v, Hi: v})
		return q.Satisfiable()
	}
	lo, hi = -1, -1
	for v := 0; v <= p.N; v++ {
		ok, err := probe(v)
		if err != nil {
			return 0, 0, false, err
		}
		if ok {
			lo = v
			break
		}
	}
	if lo == -1 {
		return 0, 0, false, nil
	}
	for v := p.N; v >= lo; v-- {
		ok, err := probe(v)
		if err != nil {
			return 0, 0, false, err
		}
		if ok {
			hi = v
			break
		}
	}
	return lo, hi, true, nil
}

func (p Problem) newSolver() (*solver, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	m := len(p.Items)
	nTypes := 1 << m
	s := &solver{nTypes: nTypes, n: p.N}
	// Implicit constraint: total count == N is handled by the DFS budget.
	for _, c := range p.Constraints {
		var mask int
		for bit, it := range p.Items {
			if c.Set.Contains(it) {
				mask |= 1 << bit
			}
		}
		var members []int
		for t := 0; t < nTypes; t++ {
			if t&mask == mask {
				members = append(members, t)
			}
		}
		s.members = append(s.members, members)
		s.lo = append(s.lo, c.Lo)
		s.hi = append(s.hi, c.Hi)
	}
	return s, nil
}

// search runs DFS over counts of each transaction type.
func (s *solver) search() (bool, error) {
	// isMember[c][t] for O(1) checks; remainingMember[c][t] = whether any
	// type >= t is a member of constraint c (for lower-bound pruning).
	isMember := make([][]bool, len(s.members))
	remainingMember := make([][]bool, len(s.members))
	for c, mem := range s.members {
		isMember[c] = make([]bool, s.nTypes)
		for _, t := range mem {
			isMember[c][t] = true
		}
		remainingMember[c] = make([]bool, s.nTypes+1)
		for t := s.nTypes - 1; t >= 0; t-- {
			remainingMember[c][t] = remainingMember[c][t+1] || isMember[c][t]
		}
	}
	sums := make([]int, len(s.members))

	var dfs func(t, remaining int) (bool, error)
	dfs = func(t, remaining int) (bool, error) {
		s.nodes++
		if s.nodes > maxNodes {
			return false, fmt.Errorf("freqsat: search budget exceeded (%d nodes)", maxNodes)
		}
		if t == s.nTypes {
			if remaining != 0 {
				return false, nil
			}
			for c := range sums {
				if sums[c] < s.lo[c] || sums[c] > s.hi[c] {
					return false, nil
				}
			}
			return true, nil
		}
		// Prune: a constraint already over Hi can never recover; one whose
		// remaining member mass cannot reach Lo is dead.
		for c := range sums {
			if sums[c] > s.hi[c] {
				return false, nil
			}
			maxMore := 0
			if remainingMember[c][t] {
				maxMore = remaining
			}
			if sums[c]+maxMore < s.lo[c] {
				return false, nil
			}
		}
		for cnt := remaining; cnt >= 0; cnt-- {
			for c := range sums {
				if isMember[c][t] {
					sums[c] += cnt
				}
			}
			ok, err := dfs(t+1, remaining-cnt)
			for c := range sums {
				if isMember[c][t] {
					sums[c] -= cnt
				}
			}
			if err != nil || ok {
				return ok, err
			}
		}
		return false, nil
	}
	return dfs(0, s.n)
}
