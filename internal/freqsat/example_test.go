package freqsat_test

import (
	"fmt"

	"repro/internal/freqsat"
	"repro/internal/itemset"
)

// ExampleProblem_SupportRange reproduces the paper's Example 4 with the
// OPTIMAL adversary: given T(c)=8, T(ac)=5, T(bc)=5 over 8 records, the
// exact feasible range of T(abc) is [2,5] — the same interval the
// non-derivable bounds give, confirming they are tight on this instance.
func ExampleProblem_SupportRange() {
	a, b, c := itemset.Item(0), itemset.Item(1), itemset.Item(2)
	p := freqsat.Problem{
		Items: []itemset.Item{a, b, c},
		N:     8,
		Constraints: []freqsat.Constraint{
			{Set: itemset.New(c), Lo: 8, Hi: 8},
			{Set: itemset.New(a, c), Lo: 5, Hi: 5},
			{Set: itemset.New(b, c), Lo: 5, Hi: 5},
		},
	}
	lo, hi, feasible, err := p.SupportRange(itemset.New(a, b, c))
	if err != nil {
		panic(err)
	}
	fmt.Println(feasible, lo, hi)
	// Output:
	// true 2 5
}
