package telemetry

// This file is the read side of the registry: a consistent point-in-time
// snapshot structure, the Prometheus text-format encoder behind /metrics,
// and the JSON encoder behind /debug/vars. Snapshots read each atomic once;
// they never block writers.

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// SeriesSnapshot is one instrument's state at snapshot time.
type SeriesSnapshot struct {
	// Labels is the canonical `{k="v",...}` rendering ("" when unlabeled).
	Labels string `json:"labels,omitempty"`
	// Value carries a counter's count or a gauge's level.
	Value float64 `json:"value"`
	// Count/Sum/Bounds/Cumulative are histogram-only: observation count,
	// value sum, bucket upper bounds and CUMULATIVE per-bound counts.
	Count      uint64    `json:"count,omitempty"`
	Sum        float64   `json:"sum,omitempty"`
	Bounds     []float64 `json:"bounds,omitempty"`
	Cumulative []uint64  `json:"cumulative,omitempty"`
}

// FamilySnapshot is one metric name with all its series.
type FamilySnapshot struct {
	Name   string           `json:"name"`
	Help   string           `json:"help"`
	Type   string           `json:"type"`
	Series []SeriesSnapshot `json:"series"`
}

// Snapshot captures every registered metric, sorted by name (series sorted
// by label set). It is safe to call concurrently with instrument updates.
func (r *Registry) Snapshot() []FamilySnapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]FamilySnapshot, 0, len(r.families))
	for _, f := range r.families {
		fs := FamilySnapshot{Name: f.name, Help: f.help, Type: f.typ}
		for _, s := range f.series {
			ss := SeriesSnapshot{Labels: s.labels}
			switch m := s.metric.(type) {
			case *Counter:
				ss.Value = float64(m.Value())
			case *Gauge:
				ss.Value = m.Value()
			case *GaugeFunc:
				ss.Value = m.Value()
			case *Histogram:
				ss.Count = m.Count()
				ss.Sum = m.Sum()
				ss.Bounds, ss.Cumulative = m.Buckets()
			}
			fs.Series = append(fs.Series, ss)
		}
		out = append(out, fs)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): one `# HELP` / `# TYPE` header per family, then
// every series; histograms expand to `_bucket{le=...}`, `_sum` and
// `_count`. Output is byte-stable for a fixed registry state.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, f := range r.Snapshot() {
		if f.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.Name, f.Help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.Name, f.Type); err != nil {
			return err
		}
		for _, s := range f.Series {
			if err := writePromSeries(w, f, s); err != nil {
				return err
			}
		}
	}
	return nil
}

func writePromSeries(w io.Writer, f FamilySnapshot, s SeriesSnapshot) error {
	if f.Type != TypeHistogram {
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.Name, s.Labels, formatValue(s.Value))
		return err
	}
	for i, bound := range s.Bounds {
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
			f.Name, withLabel(s.Labels, "le", formatValue(bound)), s.Cumulative[i]); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
		f.Name, withLabel(s.Labels, "le", "+Inf"), s.Count); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.Name, s.Labels, formatValue(s.Sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.Name, s.Labels, s.Count)
	return err
}

// withLabel splices one more label into an already-rendered label set.
func withLabel(rendered, key, value string) string {
	extra := fmt.Sprintf("%s=%q", key, value)
	if rendered == "" {
		return "{" + extra + "}"
	}
	return strings.TrimSuffix(rendered, "}") + "," + extra + "}"
}

// formatValue renders a float the way Prometheus clients expect: integral
// values without an exponent, NaN/Inf spelled out.
func formatValue(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteJSON renders the full snapshot as indented JSON — the /debug/vars
// payload, convenient for jq-driven spot checks without a Prometheus
// scraper in the loop.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}
