package telemetry

// HTTP exposition: the handlers behind the CLI's -telemetry-addr. The mux
// deliberately reuses only the standard library — net/http/pprof gives the
// live-profiling endpoints, and the /metrics and /debug/vars handlers
// render straight off the lock-free registry, so scraping never perturbs
// the pipeline beyond the cost of reading atomics.

import (
	"net/http"
	"net/http/pprof"
)

// Handler serves the registry in the Prometheus text exposition format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// JSONHandler serves the registry snapshot as JSON (the /debug/vars page).
func (r *Registry) JSONHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = r.WriteJSON(w)
	})
}

// Mux returns the operator endpoint set:
//
//	/metrics           Prometheus text format
//	/debug/vars        JSON snapshot of the same registry
//	/debug/pprof/...   net/http/pprof (profile, heap, goroutine, trace, ...)
//
// pprof is registered explicitly on this private mux — the CLI never
// exposes http.DefaultServeMux, so importing net/http/pprof here does not
// leak profiling endpoints onto any other server in the process.
//
// The read-only endpoints are registered GET-only (which also admits
// HEAD), so a misdirected POST is answered 405 Method Not Allowed with an
// Allow header rather than a misleading 404 — scraping misconfigurations
// show up as what they are. pprof keeps its own method handling
// (/debug/pprof/symbol legitimately accepts POST).
func (r *Registry) Mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("GET /metrics", r.Handler())
	mux.Handle("GET /debug/vars", r.JSONHandler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
