package telemetry

import (
	"bytes"
	"encoding/json"
	"flag"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestCounterParallel hammers one counter from many goroutines; under
// -race this doubles as the lock-freedom proof for the hot path.
func TestCounterParallel(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("test_hits_total", "hits", nil)
	const workers, perWorker = 16, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
}

// TestGaugeParallel: concurrent Add must not lose updates (CAS loop).
func TestGaugeParallel(t *testing.T) {
	reg := NewRegistry()
	g := reg.Gauge("test_level", "level", nil)
	const workers, perWorker = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				g.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := g.Value(); got != workers*perWorker {
		t.Fatalf("gauge = %v, want %d", got, workers*perWorker)
	}
	g.Set(-2.5)
	if got := g.Value(); got != -2.5 {
		t.Fatalf("gauge after Set = %v, want -2.5", got)
	}
}

// TestHistogramParallel: concurrent observations keep count == Σ buckets
// and an exact sum for integer-valued observations.
func TestHistogramParallel(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("test_seconds", "latency", []float64{1, 2, 4}, nil)
	const workers, perWorker = 8, 4000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				h.Observe(float64(w % 5)) // 0..4 spans every bucket incl. +Inf is unused
			}
		}(w)
	}
	wg.Wait()
	if got := h.Count(); got != workers*perWorker {
		t.Fatalf("count = %d, want %d", got, workers*perWorker)
	}
	wantSum := 0.0
	for w := 0; w < workers; w++ {
		wantSum += float64(w%5) * perWorker
	}
	if got := h.Sum(); got != wantSum {
		t.Fatalf("sum = %v, want %v", got, wantSum)
	}
	_, cum := h.Buckets()
	if cum[len(cum)-1] > h.Count() {
		t.Fatalf("cumulative bucket %d exceeds count %d", cum[len(cum)-1], h.Count())
	}
}

// TestHistogramBucketBoundaries pins the `le` semantics: a value equal to
// an upper bound lands in that bucket (inclusive), just above it in the
// next, and beyond the last bound only in +Inf.
func TestHistogramBucketBoundaries(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("test_bounds", "", []float64{0.1, 1, 10}, nil)
	for _, v := range []float64{0.05, 0.1, 0.1000001, 1, 5, 10, 11, math.Inf(1)} {
		h.Observe(v)
	}
	bounds, cum := h.Buckets()
	if want := []float64{0.1, 1, 10}; !reflect.DeepEqual(bounds, want) {
		t.Fatalf("bounds = %v, want %v", bounds, want)
	}
	// le=0.1: {0.05, 0.1}; le=1: +{0.1000001, 1}; le=10: +{5, 10}; +Inf: +{11, Inf}.
	if want := []uint64{2, 4, 6}; !reflect.DeepEqual(cum, want) {
		t.Fatalf("cumulative = %v, want %v", cum, want)
	}
	if h.Count() != 8 {
		t.Fatalf("count = %d, want 8", h.Count())
	}
}

func TestHistogramRejectsBadBuckets(t *testing.T) {
	reg := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("non-increasing buckets accepted")
		}
	}()
	reg.Histogram("test_bad", "", []float64{1, 1}, nil)
}

// TestRegistryIdempotentAndConflicts: same (name, labels, type) returns the
// SAME instrument; same name under a different type panics.
func TestRegistryIdempotentAndConflicts(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("test_total", "", Labels{"op": "x"})
	b := reg.Counter("test_total", "", Labels{"op": "x"})
	if a != b {
		t.Fatal("re-registration returned a different instrument")
	}
	if c := reg.Counter("test_total", "", Labels{"op": "y"}); c == a {
		t.Fatal("distinct labels shared an instrument")
	}
	a.Add(3)
	reg.Counter("test_total", "", Labels{"op": "y"}).Add(4)
	if got := reg.CounterValue("test_total"); got != 7 {
		t.Fatalf("CounterValue = %d, want 7 (summed across series)", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("type conflict accepted")
		}
	}()
	reg.Gauge("test_total", "", nil)
}

// buildFixtureRegistry populates a registry with one of each instrument
// kind, labeled and unlabeled, with deterministic values — shared by the
// golden-file and JSON tests.
func buildFixtureRegistry() *Registry {
	reg := NewRegistry()
	reg.Counter("app_requests_total", "Requests served.", Labels{"code": "200"}).Add(17)
	reg.Counter("app_requests_total", "Requests served.", Labels{"code": "500"}).Add(2)
	reg.Gauge("app_temperature_celsius", "Current temperature.", nil).Set(36.6)
	h := reg.Histogram("app_latency_seconds", "Request latency.", []float64{0.01, 0.1, 1}, nil)
	for _, v := range []float64{0.005, 0.02, 0.02, 0.5, 3} {
		h.Observe(v)
	}
	return reg
}

// TestWritePrometheusGolden diffs the text exposition against the checked
// in golden file (regenerate with -update).
func TestWritePrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := buildFixtureRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "prometheus.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("prometheus text drifted from golden:\n--- got ---\n%s--- want ---\n%s", buf.Bytes(), want)
	}
}

// TestWriteJSON round-trips the snapshot through encoding/json and spot
// checks structure and values.
func TestWriteJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := buildFixtureRegistry().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var fams []FamilySnapshot
	if err := json.Unmarshal(buf.Bytes(), &fams); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if len(fams) != 3 {
		t.Fatalf("got %d families, want 3", len(fams))
	}
	byName := map[string]FamilySnapshot{}
	for _, f := range fams {
		byName[f.Name] = f
	}
	if got := byName["app_requests_total"]; len(got.Series) != 2 || got.Series[0].Value+got.Series[1].Value != 19 {
		t.Errorf("counter family wrong: %+v", got)
	}
	if h := byName["app_latency_seconds"].Series[0]; h.Count != 5 || h.Sum != 3.545 {
		t.Errorf("histogram snapshot wrong: %+v", h)
	}
}

// TestSnapshotWhileWriting: snapshots taken concurrently with updates must
// be internally sane (no torn reads under -race).
func TestSnapshotWhileWriting(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("test_total", "", nil)
	h := reg.Histogram("test_seconds", "", nil, nil)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 20000; i++ {
			c.Inc()
			h.Observe(0.001)
		}
	}()
	for i := 0; i < 50; i++ {
		for _, f := range reg.Snapshot() {
			for _, s := range f.Series {
				if f.Type == TypeHistogram && len(s.Cumulative) > 0 &&
					s.Cumulative[len(s.Cumulative)-1] > s.Count {
					t.Fatalf("cumulative > count in concurrent snapshot: %+v", s)
				}
			}
		}
	}
	<-done
}

// TestMuxEndpoints drives the exposition mux end to end: /metrics serves
// the text format, /debug/vars the JSON snapshot, /debug/pprof/ the pprof
// index.
func TestMuxEndpoints(t *testing.T) {
	reg := buildFixtureRegistry()
	srv := httptest.NewServer(reg.Mux())
	defer srv.Close()
	get := func(path string) (string, string) {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		return string(body), resp.Header.Get("Content-Type")
	}
	if body, ct := get("/metrics"); !strings.Contains(body, "app_requests_total{code=\"200\"} 17") ||
		!strings.Contains(ct, "text/plain") {
		t.Errorf("/metrics wrong (ct %q):\n%s", ct, body)
	}
	if body, ct := get("/debug/vars"); !strings.Contains(body, "\"app_latency_seconds\"") ||
		!strings.Contains(ct, "application/json") {
		t.Errorf("/debug/vars wrong (ct %q):\n%s", ct, body)
	}
	if body, _ := get("/debug/pprof/"); !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ index wrong:\n%s", body)
	}
}

// TestMuxMethodNotAllowed: the read-only endpoints answer a wrong-method
// hit with 405 + Allow, not a misleading 404 — a scraper misconfigured to
// POST sees its actual mistake.
func TestMuxMethodNotAllowed(t *testing.T) {
	reg := buildFixtureRegistry()
	srv := httptest.NewServer(reg.Mux())
	defer srv.Close()
	for _, path := range []string{"/metrics", "/debug/vars"} {
		resp, err := srv.Client().Post(srv.URL+path, "text/plain", strings.NewReader("x"))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("POST %s: status %d, want 405", path, resp.StatusCode)
		}
		if allow := resp.Header.Get("Allow"); !strings.Contains(allow, "GET") {
			t.Errorf("POST %s: Allow %q, want GET", path, allow)
		}
	}
}

func TestFormatValue(t *testing.T) {
	cases := map[float64]string{
		0: "0", 17: "17", -3: "-3", 0.25: "0.25",
		math.Inf(1): "+Inf", math.Inf(-1): "-Inf",
	}
	for v, want := range cases {
		if got := formatValue(v); got != want {
			t.Errorf("formatValue(%v) = %q, want %q", v, got, want)
		}
	}
	if got := formatValue(math.NaN()); got != "NaN" {
		t.Errorf("formatValue(NaN) = %q", got)
	}
}
