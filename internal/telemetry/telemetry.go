// Package telemetry is the runtime-observability substrate of the Butterfly
// service: lock-free counters, gauges and fixed-bucket histograms behind a
// named registry, with a consistent snapshot API and Prometheus-text /
// JSON encoders (see encode.go) and an HTTP exposition mux (see http.go).
//
// The package is deliberately dependency-free and hot-path friendly:
//
//   - Every instrument is a fixed set of atomics. Inc, Add, Set and Observe
//     perform no allocation and take no lock, so they are safe to call from
//     the pipeline stages and the publisher's perturbation loop under the
//     race detector with negligible overhead.
//   - Instruments are registered once, up front, with constant labels. There
//     is no dynamic label lookup on the hot path — a labeled family is just
//     N pre-registered instruments.
//   - Telemetry is observation-only by contract: nothing in this package
//     feeds back into the mining, perturbation or emission of published
//     windows. The pipeline's A/B tests pin published bytes identical with
//     telemetry enabled and disabled.
//
// Metric naming follows the Prometheus conventions: `snake_case` names,
// a `_total` suffix on counters, and base units (seconds) in histogram
// names. Every metric emitted by this repository is documented in
// OBSERVABILITY.md; a test diffs that document against the live registry in
// both directions, so doc and code cannot drift.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Labels is a set of constant labels attached to an instrument at
// registration time. Series identity is the sorted rendering of the set;
// the hot path never touches it.
type Labels map[string]string

// render produces the canonical `{k="v",...}` form (empty string for no
// labels), with keys sorted so equal sets render equally.
func (l Labels) render() string {
	if len(l) == 0 {
		return ""
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	s := "{"
	for i, k := range keys {
		if i > 0 {
			s += ","
		}
		s += fmt.Sprintf("%s=%q", k, l[k])
	}
	return s + "}"
}

// Counter is a monotonically increasing uint64. The zero value is usable
// but unregistered; obtain registered counters from Registry.Counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float64 that can go up and down, stored as atomic bits.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds d with a CAS loop (lock-free, no allocation).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// GaugeFunc is a gauge whose value is computed at snapshot time by a
// caller-supplied function — the idiom for values that already live
// somewhere cheap to read (a channel length, an atomic timestamp), where a
// push-updated Gauge would cost hot-path writes only to be stale at scrape.
// The function must be safe for concurrent use and must not block.
type GaugeFunc struct {
	fn func() float64
}

// Value computes the current value.
func (g *GaugeFunc) Value() float64 { return g.fn() }

// Histogram is a fixed-bucket cumulative histogram in the Prometheus
// model: Observe(v) increments the first bucket whose upper bound admits v
// (plus the implicit +Inf bucket), the total count, and the running sum.
// Buckets are fixed at registration; observations are lock-free.
type Histogram struct {
	bounds []float64 // strictly increasing upper bounds; +Inf implicit
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-updated
}

// DefBuckets is the default duration ladder (seconds), spanning 100µs to
// 10s — wide enough for a per-window mining stage on a large window and
// fine enough to see a cache-hit republication path.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

func newHistogram(buckets []float64) (*Histogram, error) {
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	for i := 1; i < len(buckets); i++ {
		if !(buckets[i] > buckets[i-1]) {
			return nil, fmt.Errorf("telemetry: histogram buckets not strictly increasing at %d (%v <= %v)",
				i, buckets[i], buckets[i-1])
		}
	}
	h := &Histogram{
		bounds: append([]float64(nil), buckets...),
		counts: make([]atomic.Uint64, len(buckets)+1),
	}
	return h, nil
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since t0 — the idiom for stage
// wall-time: `defer h.ObserveSince(time.Now())` or an explicit pair.
func (h *Histogram) ObserveSince(t0 time.Time) {
	h.Observe(time.Since(t0).Seconds())
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Buckets returns the upper bounds and the CUMULATIVE counts per bound
// (Prometheus `le` semantics), excluding the +Inf bucket (whose cumulative
// count is Count()). The two slices are freshly allocated.
func (h *Histogram) Buckets() (bounds []float64, cumulative []uint64) {
	bounds = append([]float64(nil), h.bounds...)
	cumulative = make([]uint64, len(h.bounds))
	var acc uint64
	for i := range h.bounds {
		acc += h.counts[i].Load()
		cumulative[i] = acc
	}
	return bounds, cumulative
}

// Instrument types, as exposed in snapshots and the text format.
const (
	TypeCounter   = "counter"
	TypeGauge     = "gauge"
	TypeHistogram = "histogram"
)

// series is one registered instrument under a family.
type series struct {
	labels string // canonical rendering, "" when unlabeled
	metric any    // *Counter | *Gauge | *GaugeFunc | *Histogram
}

// family groups the series sharing a metric name.
type family struct {
	name     string
	help     string
	typ      string
	series   []*series
	byLabels map[string]*series
}

// Registry holds named instruments. Registration takes a lock; the
// instruments themselves never do. Registering the same (name, labels)
// again returns the existing instrument, so independent components may
// idempotently wire the same registry; re-registering a name under a
// different instrument type panics (a wiring bug, not a runtime
// condition).
type Registry struct {
	mu       sync.RWMutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*family{}}
}

func (r *Registry) register(name, help, typ string, labels Labels, build func() any) any {
	if name == "" {
		panic("telemetry: empty metric name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.byName[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ, byLabels: map[string]*series{}}
		r.byName[name] = f
		r.families = append(r.families, f)
	}
	if f.typ != typ {
		panic(fmt.Sprintf("telemetry: metric %q registered as %s and %s", name, f.typ, typ))
	}
	key := labels.render()
	if s := f.byLabels[key]; s != nil {
		return s.metric
	}
	s := &series{labels: key, metric: build()}
	f.byLabels[key] = s
	f.series = append(f.series, s)
	sort.Slice(f.series, func(i, j int) bool { return f.series[i].labels < f.series[j].labels })
	return s.metric
}

// Counter registers (or returns the existing) counter name+labels.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	return r.register(name, help, TypeCounter, labels, func() any { return &Counter{} }).(*Counter)
}

// Gauge registers (or returns the existing) gauge name+labels.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	return r.register(name, help, TypeGauge, labels, func() any { return &Gauge{} }).(*Gauge)
}

// GaugeFunc registers a pull-style gauge whose value is fn() at snapshot
// time. It shares the gauge type (and exposition) with Gauge, so a family
// may not mix the two kinds under one name with the same labels — the first
// registration wins, like every other idempotent re-registration.
func (r *Registry) GaugeFunc(name, help string, labels Labels, fn func() float64) *GaugeFunc {
	if fn == nil {
		panic("telemetry: nil GaugeFunc function")
	}
	return r.register(name, help, TypeGauge, labels, func() any { return &GaugeFunc{fn: fn} }).(*GaugeFunc)
}

// Histogram registers (or returns the existing) histogram name+labels with
// the given bucket upper bounds (nil selects DefBuckets). Conflicting
// bucket layouts for the same series are a wiring bug and panic.
func (r *Registry) Histogram(name, help string, buckets []float64, labels Labels) *Histogram {
	m := r.register(name, help, TypeHistogram, labels, func() any {
		h, err := newHistogram(buckets)
		if err != nil {
			panic(err)
		}
		return h
	}).(*Histogram)
	return m
}

// Names returns every registered metric name, sorted. The doc-sync test
// diffs this list against OBSERVABILITY.md.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.families))
	for _, f := range r.families {
		names = append(names, f.name)
	}
	sort.Strings(names)
	return names
}

// CounterValue returns the summed value of every series of the named
// counter (0 when absent) — the CLI summary reads its numbers through this
// so the normal and interrupted paths cannot diverge.
func (r *Registry) CounterValue(name string) uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	f := r.byName[name]
	if f == nil || f.typ != TypeCounter {
		return 0
	}
	var total uint64
	for _, s := range f.series {
		total += s.metric.(*Counter).Value()
	}
	return total
}
