package telemetry_test

import (
	"os"

	"repro/internal/telemetry"
)

// Example registers one instrument of each kind, records a few events, and
// renders the registry in the Prometheus text format — the payload the
// CLI's -telemetry-addr serves at /metrics.
func Example() {
	reg := telemetry.NewRegistry()

	windows := reg.Counter("example_windows_total", "Windows published.", nil)
	retries := reg.Counter("example_retries_total", "Retries by operation.",
		telemetry.Labels{"op": "emit"})
	depth := reg.Gauge("example_queue_depth", "In-flight windows.", nil)
	latency := reg.Histogram("example_latency_seconds", "Publish latency.",
		[]float64{0.01, 0.1, 1}, nil)

	for i := 0; i < 3; i++ {
		windows.Inc()
		latency.Observe(0.02)
	}
	retries.Inc()
	depth.Set(2)

	_ = reg.WritePrometheus(os.Stdout)
	// Output:
	// # HELP example_latency_seconds Publish latency.
	// # TYPE example_latency_seconds histogram
	// example_latency_seconds_bucket{le="0.01"} 0
	// example_latency_seconds_bucket{le="0.1"} 3
	// example_latency_seconds_bucket{le="1"} 3
	// example_latency_seconds_bucket{le="+Inf"} 3
	// example_latency_seconds_sum 0.06
	// example_latency_seconds_count 3
	// # HELP example_queue_depth In-flight windows.
	// # TYPE example_queue_depth gauge
	// example_queue_depth 2
	// # HELP example_retries_total Retries by operation.
	// # TYPE example_retries_total counter
	// example_retries_total{op="emit"} 1
	// # HELP example_windows_total Windows published.
	// # TYPE example_windows_total counter
	// example_windows_total 3
	//
}
