package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRelSquaredError(t *testing.T) {
	if got := RelSquaredError(10, 12); math.Abs(got-0.04) > 1e-12 {
		t.Errorf("RelSquaredError(10,12) = %v, want 0.04", got)
	}
	if got := RelSquaredError(10, 10); got != 0 {
		t.Errorf("exact estimate error = %v", got)
	}
}

func TestRelSquaredErrorPanicsAtZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero truth did not panic")
		}
	}()
	RelSquaredError(0, 1)
}

func TestAvgPred(t *testing.T) {
	pairs := []Pair{{True: 10, Sanitized: 11}, {True: 20, Sanitized: 20}}
	want := (0.01 + 0) / 2
	if got := AvgPred(pairs); math.Abs(got-want) > 1e-12 {
		t.Errorf("AvgPred = %v, want %v", got, want)
	}
	if AvgPred(nil) != 0 {
		t.Error("empty AvgPred != 0")
	}
}

func TestAvgPrig(t *testing.T) {
	ests := []PatternEstimate{
		{True: 2, Estimate: 3},   // (1/2)² = 0.25
		{True: 1, Estimate: 0.5}, // 0.25
		{True: 0, Estimate: 5},   // skipped
	}
	if got := AvgPrig(ests); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("AvgPrig = %v, want 0.25", got)
	}
	if AvgPrig(nil) != 0 {
		t.Error("empty AvgPrig != 0")
	}
	if AvgPrig([]PatternEstimate{{True: 0, Estimate: 1}}) != 0 {
		t.Error("all-skipped AvgPrig != 0")
	}
}

func TestROPPPerfect(t *testing.T) {
	pairs := []Pair{{1, 10}, {2, 20}, {3, 30}}
	if got := ROPP(pairs); got != 1 {
		t.Errorf("ROPP = %v, want 1", got)
	}
}

func TestROPPSingleInversion(t *testing.T) {
	// Sanitized order of the first two swapped: 1 of 3 pairs broken.
	pairs := []Pair{{1, 25}, {2, 20}, {3, 30}}
	want := 2.0 / 3
	if got := ROPP(pairs); math.Abs(got-want) > 1e-12 {
		t.Errorf("ROPP = %v, want %v", got, want)
	}
}

func TestROPPTies(t *testing.T) {
	// Equal true supports, equal sanitized: preserved.
	if got := ROPP([]Pair{{5, 8}, {5, 8}}); got != 1 {
		t.Errorf("tied equal = %v", got)
	}
	// Equal true supports, different sanitized: half credit.
	if got := ROPP([]Pair{{5, 8}, {5, 9}}); got != 0.5 {
		t.Errorf("tied diff = %v", got)
	}
}

func TestROPPDegenerate(t *testing.T) {
	if ROPP(nil) != 1 || ROPP([]Pair{{1, 1}}) != 1 {
		t.Error("degenerate ROPP != 1")
	}
}

func TestROPPOrderInvariance(t *testing.T) {
	a := []Pair{{1, 5}, {3, 2}, {2, 9}}
	b := []Pair{{2, 9}, {1, 5}, {3, 2}}
	if ROPP(a) != ROPP(b) {
		t.Error("ROPP depends on input order")
	}
}

func TestRRPPExact(t *testing.T) {
	// Sanitized = 2x true for everything: all ratios exactly preserved.
	pairs := []Pair{{10, 20}, {20, 40}, {40, 80}}
	if got := RRPP(pairs, 0.95); got != 1 {
		t.Errorf("RRPP = %v, want 1", got)
	}
}

func TestRRPPViolation(t *testing.T) {
	// True ratio 0.5; sanitized ratio 10/11 ≈ 0.909: outside [0.475, 0.526].
	pairs := []Pair{{10, 10}, {20, 11}}
	if got := RRPP(pairs, 0.95); got != 0 {
		t.Errorf("RRPP = %v, want 0", got)
	}
}

func TestRRPPBoundary(t *testing.T) {
	// Ratio exactly k times the truth is preserved (inclusive bound).
	// true: 1/2, sanitized: k/2 exactly → preserved.
	pairs := []Pair{{1, 95}, {2, 200}} // sanRatio = 0.475 = 0.95 * 0.5
	if got := RRPP(pairs, 0.95); got != 1 {
		t.Errorf("RRPP boundary = %v, want 1", got)
	}
}

func TestRRPPNonPositiveSanitized(t *testing.T) {
	pairs := []Pair{{1, 1}, {2, 0}}
	if got := RRPP(pairs, 0.95); got != 0 {
		t.Errorf("RRPP with zero denominator = %v, want 0", got)
	}
}

func TestRRPPPanicsOnBadK(t *testing.T) {
	for _, k := range []float64{0, 1, -0.5, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("k=%v did not panic", k)
				}
			}()
			RRPP([]Pair{{1, 1}, {2, 2}}, k)
		}()
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("empty mean")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v", got)
	}
}

// Property: unperturbed output preserves everything.
func TestIdentityPerturbationPerfect(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) < 2 {
			return true
		}
		pairs := make([]Pair, len(raw))
		for i, v := range raw {
			sup := int(v) + 1
			pairs[i] = Pair{True: sup, Sanitized: sup}
		}
		return ROPP(pairs) == 1 && RRPP(pairs, 0.95) == 1 && AvgPred(pairs) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: ROPP and RRPP always land in [0,1].
func TestMetricsBounded(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) < 2 {
			return true
		}
		pairs := make([]Pair, 0, len(raw)/2)
		for i := 0; i+1 < len(raw); i += 2 {
			pairs = append(pairs, Pair{True: int(raw[i]%100) + 1, Sanitized: int(raw[i+1]) - 100})
		}
		if len(pairs) < 2 {
			return true
		}
		r := ROPP(pairs)
		q := RRPP(pairs, 0.95)
		return r >= 0 && r <= 1 && q >= 0 && q <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
