// Package metrics implements the utility and privacy measures of §V-C and
// §VII-B of the Butterfly paper: precision degradation (pred / avg_pred),
// privacy guarantee (prig / avg_prig), the rate of order-preserved pairs
// (ropp) and the rate of ratio-preserved pairs (rrpp).
package metrics

// Pair couples the true support of one published itemset with its sanitized
// value. The order metrics operate on slices of Pairs — one per published
// itemset of a window.
type Pair struct {
	True      int
	Sanitized int
}

// RelSquaredError returns (est − truth)²/truth², the building block of both
// pred and the empirical prig. It panics on truth == 0: vulnerable patterns
// with zero support are excluded from Phv by definition and published
// itemsets have support >= C > 0.
func RelSquaredError(truth float64, est float64) float64 {
	if truth == 0 {
		panic("metrics: relative error undefined at zero truth")
	}
	d := (est - truth) / truth
	return d * d
}

// AvgPred returns the average precision degradation over published itemsets:
// mean of (T̃(X) − T(X))²/T(X)². An empty slice yields 0.
func AvgPred(pairs []Pair) float64 {
	if len(pairs) == 0 {
		return 0
	}
	sum := 0.0
	for _, p := range pairs {
		sum += RelSquaredError(float64(p.True), float64(p.Sanitized))
	}
	return sum / float64(len(pairs))
}

// PatternEstimate couples the true support of one inferable vulnerable
// pattern with the adversary's estimate of it from sanitized output.
type PatternEstimate struct {
	True     int
	Estimate float64
}

// AvgPrig returns the average privacy guarantee over the inferable
// vulnerable patterns: mean of (T̂(p) − T(p))²/T(p)². Patterns with zero
// true support are skipped (prig is undefined there; the paper's Phv
// requires support > 0). An empty or all-skipped slice yields 0.
func AvgPrig(ests []PatternEstimate) float64 {
	sum, n := 0.0, 0
	for _, e := range ests {
		if e.True == 0 {
			continue
		}
		sum += RelSquaredError(float64(e.True), e.Estimate)
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// ROPP returns the rate of order-preserved pairs: over every unordered pair
// of published itemsets with T(I) <= T(J), the fraction whose sanitized
// supports satisfy T̃(I) <= T̃(J). Pairs with equal true support count as
// preserved only when the sanitized values are also equal — each of the two
// ordered readings of the paper's condition contributes half otherwise.
// Fewer than two itemsets yield 1 (nothing to invert).
func ROPP(pairs []Pair) float64 {
	n := len(pairs)
	if n < 2 {
		return 1
	}
	preserved, total := 0.0, 0.0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			a, b := pairs[i], pairs[j]
			total++
			switch {
			case a.True < b.True:
				if a.Sanitized <= b.Sanitized {
					preserved++
				}
			case a.True > b.True:
				if b.Sanitized <= a.Sanitized {
					preserved++
				}
			default: // tie in true support
				if a.Sanitized == b.Sanitized {
					preserved++
				} else {
					preserved += 0.5
				}
			}
		}
	}
	return preserved / total
}

// RRPP returns the rate of ratio-preserved pairs at tightness k ∈ (0,1):
// over every unordered pair with T(I) <= T(J), the fraction whose sanitized
// ratio lands within [k, 1/k] of the true ratio:
//
//	k·T(I)/T(J) <= T̃(I)/T̃(J) <= (1/k)·T(I)/T(J)
//
// Pairs whose sanitized denominator is non-positive never preserve the
// ratio. Fewer than two itemsets yield 1.
func RRPP(pairs []Pair, k float64) float64 {
	if k <= 0 || k >= 1 {
		panic("metrics: RRPP needs k in (0,1)")
	}
	n := len(pairs)
	if n < 2 {
		return 1
	}
	preserved, total := 0, 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			lo, hi := pairs[i], pairs[j]
			if lo.True > hi.True {
				lo, hi = hi, lo
			}
			total++
			if hi.True == 0 || hi.Sanitized <= 0 {
				continue
			}
			trueRatio := float64(lo.True) / float64(hi.True)
			sanRatio := float64(lo.Sanitized) / float64(hi.Sanitized)
			if k*trueRatio <= sanRatio && sanRatio <= trueRatio/k {
				preserved++
			}
		}
	}
	return float64(preserved) / float64(total)
}

// Mean returns the arithmetic mean of xs (0 for an empty slice): the
// experiments average per-window metrics over many windows.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}
