package core_test

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/itemset"
)

func stateTestStream(t *testing.T, workers int) (*core.Stream, []itemset.Itemset) {
	t.Helper()
	stream, err := core.NewStream(core.StreamConfig{
		WindowSize: 200,
		Params:     core.Params{Epsilon: 0.1, Delta: 0.4, MinSupport: 10, VulnSupport: 5},
		Scheme:     core.Hybrid{Lambda: 0.4},
		Seed:       17,
	})
	if err != nil {
		t.Fatal(err)
	}
	stream.Publisher().SetWorkers(workers)
	return stream, data.WebViewLike(5).Generate(500)
}

func renderOutput(o *core.Output) string {
	var sb strings.Builder
	for _, it := range o.Items {
		fmt.Fprintf(&sb, "%v=%d;", it.Set, it.Support)
	}
	return sb.String()
}

// TestPublisherSnapshotRestoreContinuesByteIdentical is the core half of the
// crash-resume guarantee: publish a stream of windows, snapshot the
// publisher mid-stream, rebuild a FRESH stream from the same configuration,
// restore the snapshot and the window buffer into it, and the remaining
// publications must be byte-identical — same sanitized supports, same
// republication-cache hits — at both draw-order tiers.
func TestPublisherSnapshotRestoreContinuesByteIdentical(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			ref, records := stateTestStream(t, workers)
			const cutAt = 260 // snapshot position, mid-stream
			var refTail []string
			var snap *core.PublisherState
			var window []itemset.Itemset
			for i, rec := range records {
				ref.Push(rec)
				if !ref.Ready() || (i+1)%20 != 0 {
					continue
				}
				out, err := ref.Publish()
				if err != nil {
					t.Fatal(err)
				}
				if i+1 == cutAt {
					snap = ref.Publisher().Snapshot()
					window = ref.WindowRecords()
				}
				if i+1 > cutAt {
					refTail = append(refTail, renderOutput(out))
				}
			}
			if snap == nil {
				t.Fatal("fixture never reached the snapshot position")
			}

			// The snapshot shares nothing with its publisher: the reference
			// stream has published far past the cut by now, so a live alias
			// would have diverged the captured state.
			resumed, _ := stateTestStream(t, workers)
			for _, rec := range window {
				resumed.Push(rec)
			}
			if err := resumed.Publisher().Restore(snap); err != nil {
				t.Fatal(err)
			}
			var gotTail []string
			for i := cutAt; i < len(records); i++ {
				resumed.Push(records[i])
				if (i+1)%20 != 0 {
					continue
				}
				out, err := resumed.Publish()
				if err != nil {
					t.Fatal(err)
				}
				gotTail = append(gotTail, renderOutput(out))
			}
			if len(gotTail) != len(refTail) {
				t.Fatalf("resumed run published %d windows, want %d", len(gotTail), len(refTail))
			}
			for i := range refTail {
				if gotTail[i] != refTail[i] {
					t.Fatalf("window %d after restore differs:\n got %s\nwant %s", i, gotTail[i], refTail[i])
				}
			}
		})
	}
}

// TestSnapshotIsDeepCopy: mutating the publisher after Snapshot must not
// disturb the captured state, and vice versa.
func TestSnapshotIsDeepCopy(t *testing.T) {
	stream, records := stateTestStream(t, 1)
	for i, rec := range records[:240] {
		stream.Push(rec)
		if stream.Ready() && (i+1)%20 == 0 {
			if _, err := stream.Publish(); err != nil {
				t.Fatal(err)
			}
		}
	}
	snap := stream.Publisher().Snapshot()
	before, err := stream.Publisher().Snapshot(), error(nil)
	if err != nil {
		t.Fatal(err)
	}
	// Mutate the captured copies.
	if len(snap.Cache) > 0 {
		snap.Cache[0].Sanitized = -999
	}
	if len(snap.Biases) > 0 {
		snap.Biases[0] = -999
	}
	after := stream.Publisher().Snapshot()
	if fmt.Sprintf("%+v", after) != fmt.Sprintf("%+v", before) {
		t.Fatal("mutating a snapshot leaked into the publisher")
	}
}

// TestRestoreValidation: a structurally inconsistent state fails loudly.
func TestRestoreValidation(t *testing.T) {
	stream, _ := stateTestStream(t, 1)
	pub := stream.Publisher()
	if err := pub.Restore(nil); err == nil {
		t.Fatal("nil state accepted")
	}
	if err := pub.Restore(&core.PublisherState{Window: -1}); err == nil {
		t.Fatal("negative window counter accepted")
	}
	if err := pub.Restore(&core.PublisherState{
		Ladder: []core.LadderRung{{Support: 10, Size: 1}},
		Biases: nil,
	}); err == nil {
		t.Fatal("ladder/bias length mismatch accepted")
	}
}

// TestSnapshotDeterministicCacheOrder: equal publishers snapshot to equal
// states even though the underlying cache is a map — required for
// byte-identical checkpoint files.
func TestSnapshotDeterministicCacheOrder(t *testing.T) {
	render := func() string {
		stream, records := stateTestStream(t, 1)
		for i, rec := range records[:300] {
			stream.Push(rec)
			if stream.Ready() && (i+1)%20 == 0 {
				if _, err := stream.Publish(); err != nil {
					t.Fatal(err)
				}
			}
		}
		return fmt.Sprintf("%+v", stream.Publisher().Snapshot())
	}
	if render() != render() {
		t.Fatal("identical runs snapshot to different states")
	}
}
