package core

// This file is the publisher's observability surface: the live
// privacy/utility posture of the release stream (§V-C of the paper) and the
// health of the consistent-republication cache, exported through the
// telemetry registry.
//
// Everything here is computed AFTER a window's perturbation is complete,
// from values the publisher already holds — true supports from the FEC
// partition and sanitized supports from the assembled output. No metric
// computation touches the RNG stream, the cache contents, or the draw
// order, so telemetry-on and telemetry-off runs publish identical bytes
// (the pipeline's A/B tests enforce this).
//
// The §V-C gauges are ROLLING aggregates over the last privacyRollWindows
// published windows, computed window-locally: each window's pred/ropp/rrpp
// needs only that window's (true, sanitized) pairs, which exist exactly
// once, inside Publish — buffering whole windows for a cross-window
// recomputation would couple memory to window size for no extra fidelity.
// avg_prig is the one metric whose faithful form (an adversary's inference
// error over vulnerable patterns) requires the attack simulation of
// internal/experiment; running an attack per published window is not a
// hot-path option, so the gauge reports the empirical guarantee proxy
//
//	2 · mean((T̃(X) − T(X))²) / K²
//
// — the realized perturbation energy pushed through the paper's P2 bound
// (every inference combines at least two perturbed supports, and vulnerable
// patterns have T(p) ≤ K). It converges to 2(σ²+β²)/K² ≥ PrivacyFloor ≥ δ,
// so an operator alarm on `avg_prig < δ` is sound; offline avg_prig stays
// with cmd/experiments.

import (
	"time"

	"repro/internal/fec"
	"repro/internal/metrics"
	"repro/internal/telemetry"
)

// Publisher metric names (see OBSERVABILITY.md for the full reference).
const (
	MetricCacheHits      = "butterfly_cache_hits_total"
	MetricCacheMisses    = "butterfly_cache_misses_total"
	MetricCacheEntries   = "butterfly_cache_entries"
	MetricBiasReuses     = "butterfly_bias_reuses_total"
	MetricBiasOptSeconds = "butterfly_bias_opt_seconds"
	MetricAvgPred        = "butterfly_privacy_avg_pred"
	MetricAvgPrig        = "butterfly_privacy_avg_prig"
	MetricROPP           = "butterfly_privacy_ropp"
	MetricRRPP           = "butterfly_privacy_rrpp"
)

// privacyRollWindows is the length of the rolling aggregate behind the
// §V-C gauges.
const privacyRollWindows = 32

// metricsPairCap bounds the itemsets entering the O(n²) order/ratio rates;
// the first metricsPairCap published itemsets in FEC-ladder order (a
// deterministic, support-sorted prefix) stand in for the full window.
const metricsPairCap = 256

// rrppK is the ratio tightness of the rrpp gauge — the paper's 0.95, the
// same default cmd/experiments uses.
const rrppK = 0.95

// pubMetrics holds the publisher's registered instruments.
type pubMetrics struct {
	cacheHits    *telemetry.Counter
	cacheMisses  *telemetry.Counter
	cacheEntries *telemetry.Gauge
	biasReuses   *telemetry.Counter
	biasOpt      *telemetry.Histogram
	avgPred      *telemetry.Gauge
	avgPrig      *telemetry.Gauge
	ropp         *telemetry.Gauge
	rrpp         *telemetry.Gauge
}

// windowPosture is one window's contribution to the rolling gauges.
type windowPosture struct {
	pred, prig, ropp, rrpp float64
}

// SetMetrics registers the publisher's instruments on reg and starts
// recording; a nil reg detaches telemetry. Recording is observation-only:
// it never changes published values (see the file comment).
func (pub *Publisher) SetMetrics(reg *telemetry.Registry) {
	if reg == nil {
		pub.metrics = nil
		return
	}
	pub.metrics = &pubMetrics{
		cacheHits: reg.Counter(MetricCacheHits,
			"Published itemsets re-served verbatim from the republication cache.", nil),
		cacheMisses: reg.Counter(MetricCacheMisses,
			"Published itemsets drawn fresh (no usable cache entry).", nil),
		cacheEntries: reg.Gauge(MetricCacheEntries,
			"Live republication-cache entries after the last sweep.", nil),
		biasReuses: reg.Counter(MetricBiasReuses,
			"Publish calls that reused the previous window's bias optimization.", nil),
		biasOpt: reg.Histogram(MetricBiasOptSeconds,
			"Per-window bias optimization latency (the paper's Opt cost).", nil, nil),
		avgPred: reg.Gauge(MetricAvgPred,
			"Rolling mean precision degradation of published supports (bounded by epsilon).", nil),
		avgPrig: reg.Gauge(MetricAvgPrig,
			"Rolling empirical privacy-guarantee proxy 2*mean(noise^2)/K^2 (floored by delta).", nil),
		ropp: reg.Gauge(MetricROPP,
			"Rolling rate of order-preserved pairs among published supports.", nil),
		rrpp: reg.Gauge(MetricRRPP,
			"Rolling rate of ratio-preserved pairs (tightness k=0.95).", nil),
	}
}

// recordCache adds one window's cache traffic and the post-sweep size.
func (pub *Publisher) recordCache(hits, misses int) {
	m := pub.metrics
	if m == nil {
		return
	}
	m.cacheHits.Add(uint64(hits))
	m.cacheMisses.Add(uint64(misses))
	m.cacheEntries.Set(float64(len(pub.cache)))
}

// recordPosture computes the window-local §V-C measures from the FEC
// partition (true supports) and the assembled output (sanitized supports),
// pushes them into the rolling ring, and refreshes the gauges with the
// rolling means.
func (pub *Publisher) recordPosture(classes []fec.Class, out *Output) {
	if pub.metrics == nil {
		return
	}
	pairs := make([]metrics.Pair, 0, min(fec.TotalMembers(classes), metricsPairCap))
	var sumPred, sumSq float64
	n := 0
	for _, class := range classes {
		for _, member := range class.Members {
			san, ok := out.Support(member)
			if !ok {
				continue
			}
			d := float64(san - class.Support)
			t := float64(class.Support)
			sumPred += (d / t) * (d / t)
			sumSq += d * d
			n++
			if len(pairs) < metricsPairCap {
				pairs = append(pairs, metrics.Pair{True: class.Support, Sanitized: san})
			}
		}
	}
	if n == 0 {
		return
	}
	k := float64(pub.params.VulnSupport)
	posture := windowPosture{
		pred: sumPred / float64(n),
		prig: 2 * (sumSq / float64(n)) / (k * k),
		ropp: metrics.ROPP(pairs),
		rrpp: metrics.RRPP(pairs, rrppK),
	}
	pub.roll[pub.rollNext%privacyRollWindows] = posture
	pub.rollNext++
	span := pub.rollNext
	if span > privacyRollWindows {
		span = privacyRollWindows
	}
	var sum windowPosture
	for i := 0; i < span; i++ {
		p := pub.roll[i]
		sum.pred += p.pred
		sum.prig += p.prig
		sum.ropp += p.ropp
		sum.rrpp += p.rrpp
	}
	m := pub.metrics
	m.avgPred.Set(sum.pred / float64(span))
	m.avgPrig.Set(sum.prig / float64(span))
	m.ropp.Set(sum.ropp / float64(span))
	m.rrpp.Set(sum.rrpp / float64(span))
}

// recordBiasOpt adds one window's bias-optimization latency.
func (pub *Publisher) recordBiasOpt(took time.Duration) {
	if pub.metrics != nil {
		pub.metrics.biasOpt.Observe(took.Seconds())
	}
}

// recordBiasReuse counts one incremental-path reuse.
func (pub *Publisher) recordBiasReuse() {
	if pub.metrics != nil {
		pub.metrics.biasReuses.Inc()
	}
}
