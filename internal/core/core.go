package core

import (
	"fmt"

	"repro/internal/itemset"
	"repro/internal/mining"
	"repro/internal/mining/moment"
	"repro/internal/rng"
)

// Stream is the end-to-end Butterfly pipeline of Fig. 1's last stage: an
// incremental sliding-window miner feeding the output perturbation. Push
// records as they arrive; Publish sanitized output whenever the application
// wants a release.
type Stream struct {
	miner *moment.Miner
	pub   *Publisher
	// closedOnly publishes only closed frequent itemsets (what the Moment
	// substrate natively maintains) instead of all frequent itemsets.
	closedOnly bool
}

// StreamConfig configures a Stream.
type StreamConfig struct {
	// WindowSize is the sliding window H.
	WindowSize int
	// Params is the Butterfly calibration; Params.MinSupport doubles as the
	// mining threshold C.
	Params Params
	// Scheme selects the bias setting; nil means Basic.
	Scheme Scheme
	// Seed drives the perturbation; equal seeds reproduce equal outputs.
	Seed uint64
	// ClosedOnly restricts publication to closed frequent itemsets.
	ClosedOnly bool
}

// NewStream validates the configuration and assembles the pipeline.
func NewStream(cfg StreamConfig) (*Stream, error) {
	if cfg.WindowSize <= 0 {
		return nil, fmt.Errorf("core: window size %d must be positive", cfg.WindowSize)
	}
	pub, err := NewPublisher(cfg.Params, cfg.Scheme, rng.New(cfg.Seed))
	if err != nil {
		return nil, err
	}
	return &Stream{
		miner:      moment.New(cfg.WindowSize, cfg.Params.MinSupport),
		pub:        pub,
		closedOnly: cfg.ClosedOnly,
	}, nil
}

// Push appends one record to the stream, sliding the window when full.
func (s *Stream) Push(rec itemset.Itemset) { s.miner.Push(rec) }

// Ready reports whether the window has filled at least once.
func (s *Stream) Ready() bool { return s.miner.Len() == s.miner.Capacity() }

// Mine returns the current window's raw (unsanitized) mining result. It is
// what a system WITHOUT output-privacy protection would release, and what
// the evaluation uses as ground truth.
func (s *Stream) Mine() *mining.Result {
	return s.MineInto(nil)
}

// MineInto is Mine recycling the storage of a previously mined (and fully
// consumed) result — the pipeline's window pool hands back results whose
// sanitized output has been emitted. A nil recycled allocates fresh. In
// closed-only mode the closure filter derives a fresh result regardless and
// recycled is ignored.
func (s *Stream) MineInto(recycled *mining.Result) *mining.Result {
	if s.closedOnly {
		return s.miner.Closed()
	}
	return s.miner.FrequentInto(recycled)
}

// Publish mines the current window and releases the sanitized output.
func (s *Stream) Publish() (*Output, error) {
	return s.pub.Publish(s.Mine(), s.miner.Capacity())
}

// Publisher exposes the underlying publisher (for diagnostics).
func (s *Stream) Publisher() *Publisher { return s.pub }

// Miner exposes the underlying incremental miner (for diagnostics).
func (s *Stream) Miner() *moment.Miner { return s.miner }
