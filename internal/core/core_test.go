package core

import (
	"testing"

	"repro/internal/itemset"
	"repro/internal/paperex"
	"repro/internal/rng"
)

func TestNewStreamValidates(t *testing.T) {
	if _, err := NewStream(StreamConfig{WindowSize: 0, Params: testParams()}); err == nil {
		t.Error("zero window accepted")
	}
	if _, err := NewStream(StreamConfig{WindowSize: 8, Params: Params{}}); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestStreamEndToEnd(t *testing.T) {
	p := Params{Epsilon: 0.25, Delta: 0.5, MinSupport: 4, VulnSupport: 1}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	s, err := NewStream(StreamConfig{
		WindowSize: paperex.WindowSize,
		Params:     p,
		Scheme:     Hybrid{Lambda: 0.4},
		Seed:       17,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range paperex.Records() {
		s.Push(rec)
	}
	if !s.Ready() {
		t.Fatal("stream not ready after 12 records into window 8")
	}
	raw := s.Mine()
	out, err := s.Publish()
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != raw.Len() {
		t.Fatalf("published %d itemsets, mined %d", out.Len(), raw.Len())
	}
	half := p.Alpha()/2 + p.MaxBias(1000) // generous envelope: bias + draw
	for _, fi := range raw.Itemsets {
		san, ok := out.Support(fi.Set)
		if !ok {
			t.Fatalf("%v missing from output", fi.Set)
		}
		if d := san - fi.Support; d > half || d < -half {
			t.Errorf("%v sanitized offset %d outside envelope ±%d", fi.Set, d, half)
		}
	}
}

func TestStreamClosedOnly(t *testing.T) {
	p := Params{Epsilon: 0.25, Delta: 0.5, MinSupport: 4, VulnSupport: 1}
	mk := func(closed bool) int {
		s, err := NewStream(StreamConfig{
			WindowSize: paperex.WindowSize,
			Params:     p,
			Seed:       1,
			ClosedOnly: closed,
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, rec := range paperex.Records() {
			s.Push(rec)
		}
		return s.Mine().Len()
	}
	all, closed := mk(false), mk(true)
	if closed > all {
		t.Errorf("closed (%d) exceeds all frequent (%d)", closed, all)
	}
	if closed == 0 {
		t.Error("no closed itemsets found")
	}
}

func TestStreamPerturbationSanity(t *testing.T) {
	// Across a long stream the sanitized output must track true supports
	// within ε on average.
	p := Params{Epsilon: 0.05, Delta: 0.5, MinSupport: 10, VulnSupport: 3}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	s, err := NewStream(StreamConfig{WindowSize: 50, Params: p, Scheme: Basic{}, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(123)
	var sumSqRel float64
	var count int
	for i := 0; i < 500; i++ {
		n := 1 + src.Intn(4)
		items := make([]itemset.Item, 0, n)
		for j := 0; j < n; j++ {
			items = append(items, itemset.Item(src.Intn(8)))
		}
		s.Push(itemset.New(items...))
		if !s.Ready() || i%10 != 0 {
			continue
		}
		raw := s.Mine()
		out, err := s.Publish()
		if err != nil {
			t.Fatal(err)
		}
		for _, fi := range raw.Itemsets {
			san, _ := out.Support(fi.Set)
			rel := float64(san-fi.Support) / float64(fi.Support)
			sumSqRel += rel * rel
			count++
		}
	}
	if count == 0 {
		t.Fatal("no published itemsets")
	}
	if avg := sumSqRel / float64(count); avg > p.Epsilon {
		t.Errorf("avg precision degradation %v exceeds ε=%v", avg, p.Epsilon)
	}
}
