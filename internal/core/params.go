// Package core implements Butterfly, the output-privacy countermeasure of
// the paper (Wang & Liu, ICDE 2008, §V–§VI): every published frequent-itemset
// support is perturbed with a discrete-uniform random offset whose variance
// is calibrated from the privacy requirement δ and whose bias is set — per
// frequency equivalence class — by the basic, order-preserving,
// ratio-preserving or hybrid scheme, subject to the precision requirement ε.
package core

import (
	"fmt"
	"math"
)

// Params carries the Butterfly calibration inputs.
//
// Epsilon (ε) caps the precision degradation of every published itemset:
// E[(T̃(X) − T(X))²] / T(X)² ≤ ε. Delta (δ) floors the privacy guarantee of
// every inferable vulnerable pattern p: Var[T̂(p)] / T(p)² ≥ δ. MinSupport is
// the mining threshold C and VulnSupport the vulnerability threshold K
// (patterns with support in (0, K] are the ones to protect; K < C).
type Params struct {
	Epsilon     float64
	Delta       float64
	MinSupport  int
	VulnSupport int
}

// Validate checks the parameters for internal consistency and feasibility.
// Feasibility follows §V-D: the variance needed for δ must leave the
// precision budget ε intact at the smallest possible support C, which
// requires ε/δ ≥ K²/(2C²) (the minimum precision-privacy ratio) — tightened
// here to account for the integer uncertainty region actually used.
func (p Params) Validate() error {
	if p.Epsilon <= 0 {
		return fmt.Errorf("core: epsilon %v must be positive", p.Epsilon)
	}
	if p.Delta <= 0 {
		return fmt.Errorf("core: delta %v must be positive", p.Delta)
	}
	if p.VulnSupport < 1 {
		return fmt.Errorf("core: vulnerable support K=%d must be >= 1", p.VulnSupport)
	}
	if p.MinSupport <= p.VulnSupport {
		return fmt.Errorf("core: minimum support C=%d must exceed vulnerable support K=%d",
			p.MinSupport, p.VulnSupport)
	}
	minPPR := float64(p.VulnSupport*p.VulnSupport) / (2 * float64(p.MinSupport*p.MinSupport))
	if p.Epsilon/p.Delta < minPPR {
		return fmt.Errorf("core: precision-privacy ratio ε/δ = %v below minimum K²/(2C²) = %v",
			p.Epsilon/p.Delta, minPPR)
	}
	// The integer uncertainty region inflates σ² slightly above δK²/2; the
	// precision constraint must still admit a (possibly zero) bias at T = C.
	if s2 := p.Sigma2(); s2 > p.Epsilon*float64(p.MinSupport*p.MinSupport) {
		return fmt.Errorf("core: integer uncertainty region variance %v exceeds precision budget εC² = %v; increase ε or C",
			s2, p.Epsilon*float64(p.MinSupport*p.MinSupport))
	}
	return nil
}

// Alpha returns the length α of the discrete-uniform uncertainty region
// [−α/2, α/2] around the bias: the smallest even integer whose variance
// ((α+1)²−1)/12 meets the privacy floor δK²/2 (σ² ≥ δK²/2, Inequation 2 of
// the paper). Even α keeps the region symmetric around an integer bias so
// the perturbation has exactly the configured bias.
func (p Params) Alpha() int {
	need := 1 + 6*p.Delta*float64(p.VulnSupport*p.VulnSupport)
	a := int(math.Ceil(math.Sqrt(need))) - 1
	if a < 0 {
		a = 0
	}
	if a%2 == 1 {
		a++
	}
	return a
}

// Sigma2 returns the actual perturbation variance σ² = ((α+1)²−1)/12 of the
// integer uncertainty region. It is at least δK²/2.
func (p Params) Sigma2() float64 {
	a := float64(p.Alpha())
	return ((a+1)*(a+1) - 1) / 12
}

// MaxBias returns the maximum adjustable bias β^m for a FEC with support t
// (Definition 7): the largest integer bias that keeps the precision
// constraint σ² + β² ≤ ε·t² intact, using the actual region variance.
func (p Params) MaxBias(t int) int {
	budget := p.Epsilon*float64(t)*float64(t) - p.Sigma2()
	if budget <= 0 {
		return 0
	}
	return int(math.Floor(math.Sqrt(budget)))
}

// MinPPR returns the theoretical minimum precision-privacy ratio K²/(2C²)
// for these thresholds (§V-D); ε/δ below it is infeasible.
func (p Params) MinPPR() float64 {
	return float64(p.VulnSupport*p.VulnSupport) / (2 * float64(p.MinSupport*p.MinSupport))
}

// PrivacyFloor returns the guaranteed lower bound 2σ²/K² on the relative
// estimation error of any inferred vulnerable pattern (P2 in §V-D): every
// inference combines at least two perturbed itemsets, and T(p) ≤ K.
func (p Params) PrivacyFloor() float64 {
	return 2 * p.Sigma2() / float64(p.VulnSupport*p.VulnSupport)
}

// PrecisionCeiling returns the guaranteed upper bound (σ² + βmax²)/C² on
// the precision degradation of any published itemset when biases respect
// MaxBias (P1 in §V-D, evaluated at the worst case T = C, β = MaxBias(C)).
func (p Params) PrecisionCeiling() float64 {
	b := float64(p.MaxBias(p.MinSupport))
	return (p.Sigma2() + b*b) / float64(p.MinSupport*p.MinSupport)
}
