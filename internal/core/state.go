package core

// This file is the durability boundary of the publisher: Snapshot captures
// everything Publish consults that is not derivable from the Config — the
// window counter, the RNG cursor, the consistent-republication cache, and
// the incremental-bias memo — and Restore rebuilds a publisher from it. A
// publisher restored from a snapshot taken at window w publishes windows
// w+1, w+2, ... byte-identically to the publisher the snapshot was taken
// from. That is what makes crash-and-resume safe against the republication
// attack of §VI: a resumed stream re-serves the SAME sanitized values for
// unchanged supports instead of re-drawing fresh noise an adversary could
// average out.

import (
	"fmt"
	"slices"
	"sort"

	"repro/internal/itemset"
)

// LadderRung is one step of the serialized FEC ladder: the (support,
// class-size) pair the incremental-bias memo is keyed by.
type LadderRung struct {
	Support int
	Size    int
}

// CacheEntry is one serialized republication-cache binding. Key is the
// compact itemset.Itemset.Key() encoding (binary, not printable).
type CacheEntry struct {
	Key         string
	TrueSupport int
	Sanitized   int
	LastSeen    int
}

// PublisherState is the complete serializable state of a Publisher. All
// fields are data, none are configuration: a restored publisher must be
// built with the same Params, Scheme, seed lineage and worker tier as the
// one snapshotted — the checkpoint layer fingerprints the configuration to
// enforce that.
type PublisherState struct {
	// Window is the number of Publish calls completed.
	Window int
	// RNG is the perturbation source cursor (rng.Source.State).
	RNG uint64
	// BiasReuses mirrors the incremental-path diagnostic counter.
	BiasReuses int
	// Ladder and Biases are the incremental-bias memo; both empty or both
	// of equal length.
	Ladder []LadderRung
	Biases []int
	// Cache holds the republication cache sorted by Key, so snapshots of
	// equal publishers serialize to equal bytes.
	Cache []CacheEntry
}

// PublisherDelta is the publisher-side payload of an incremental (delta)
// checkpoint: everything that changed since the previous snapshot baseline.
// The window counter, RNG cursor and bias memo are tiny and change every
// window, so they travel whole; the republication cache — the bulk of a full
// snapshot — travels as upserts and evictions only. Applying a delta to the
// baseline state (evictions first, then upserts) reproduces the full state a
// Snapshot at the same moment would have captured.
type PublisherDelta struct {
	// Window, RNG and BiasReuses are absolute values, not differences.
	Window     int
	RNG        uint64
	BiasReuses int
	// Ladder and Biases are the complete incremental-bias memo (small, and
	// usually changed): both empty or both of equal length.
	Ladder []LadderRung
	Biases []int
	// Upserts are the cache entries created or refreshed since the baseline,
	// sorted by Key; Evicted are the keys the age sweep removed since then,
	// sorted and deduplicated. A key may appear in both (evicted, then
	// re-published); eviction-before-upsert ordering makes that correct.
	Upserts []CacheEntry
	Evicted []string
}

// SetDeltaTracking turns dirty-entry tracking on or off and resets the
// baseline either way. With tracking on, every Snapshot or SnapshotDelta
// call starts a new baseline interval; SnapshotDelta then captures exactly
// the cache traffic of the interval. The checkpoint layer enables tracking
// only when delta checkpointing is configured, so the default publisher pays
// nothing for it.
func (pub *Publisher) SetDeltaTracking(on bool) {
	pub.deltaTrack = on
	pub.resetDeltaBaseline()
}

// resetDeltaBaseline clears the dirty flags and drops the accumulated
// upsert/eviction lists, starting a fresh interval.
func (pub *Publisher) resetDeltaBaseline() {
	for _, e := range pub.dirtyCache {
		e.dirty = false
	}
	pub.dirtyCache = pub.dirtyCache[:0]
	pub.evictedKeys = pub.evictedKeys[:0]
}

// SnapshotDelta captures the change set since the previous baseline and
// starts a new one. It shares nothing with the publisher. It must only be
// called with delta tracking on and with an earlier Snapshot (or restored
// state) as the baseline; the checkpoint layer enforces that pairing by
// construction (a chain always starts with a full snapshot).
func (pub *Publisher) SnapshotDelta() *PublisherDelta {
	d := &PublisherDelta{
		Window:     pub.window,
		RNG:        pub.src.State(),
		BiasReuses: pub.biasReuses,
	}
	if pub.lastBiases != nil {
		d.Ladder = make([]LadderRung, len(pub.lastLadder))
		for i, r := range pub.lastLadder {
			d.Ladder[i] = LadderRung{Support: r.support, Size: r.size}
		}
		d.Biases = append([]int(nil), pub.lastBiases...)
	}
	d.Upserts = make([]CacheEntry, 0, len(pub.dirtyCache))
	for _, e := range pub.dirtyCache {
		if pub.cache[e.key] != e {
			// Evicted since it was marked (possibly replaced by a fresh
			// entry, which carries its own dirty mark). The eviction itself
			// is in Evicted; serializing the dead entry would resurrect it.
			continue
		}
		d.Upserts = append(d.Upserts, CacheEntry{
			Key:         e.key,
			TrueSupport: e.trueSupport,
			Sanitized:   e.sanitized,
			LastSeen:    e.lastSeen,
		})
	}
	sort.Slice(d.Upserts, func(i, j int) bool { return d.Upserts[i].Key < d.Upserts[j].Key })
	d.Evicted = append([]string(nil), pub.evictedKeys...)
	sort.Strings(d.Evicted)
	d.Evicted = slices.Compact(d.Evicted)
	pub.resetDeltaBaseline()
	return d
}

// Snapshot captures the publisher's state. The returned value shares
// nothing with the publisher; mutating one never disturbs the other.
// With delta tracking on it also resets the change-set baseline: every
// snapshot of either kind is a chain link, and the next SnapshotDelta is
// relative to the most recent one.
func (pub *Publisher) Snapshot() *PublisherState {
	st := &PublisherState{
		Window:     pub.window,
		RNG:        pub.src.State(),
		BiasReuses: pub.biasReuses,
	}
	if pub.lastBiases != nil {
		st.Ladder = make([]LadderRung, len(pub.lastLadder))
		for i, r := range pub.lastLadder {
			st.Ladder[i] = LadderRung{Support: r.support, Size: r.size}
		}
		st.Biases = append([]int(nil), pub.lastBiases...)
	}
	st.Cache = make([]CacheEntry, 0, len(pub.cache))
	for k, e := range pub.cache {
		st.Cache = append(st.Cache, CacheEntry{
			Key:         k,
			TrueSupport: e.trueSupport,
			Sanitized:   e.sanitized,
			LastSeen:    e.lastSeen,
		})
	}
	sort.Slice(st.Cache, func(i, j int) bool { return st.Cache[i].Key < st.Cache[j].Key })
	if pub.deltaTrack {
		pub.resetDeltaBaseline()
	}
	return st
}

// Restore overwrites the publisher's state with a previously captured
// snapshot. Configuration (params, scheme, worker tier, cache policy) is
// left untouched. It validates the snapshot's internal consistency so a
// decoded-but-nonsensical checkpoint fails loudly here rather than
// corrupting later windows.
func (pub *Publisher) Restore(st *PublisherState) error {
	if st == nil {
		return fmt.Errorf("core: nil publisher state")
	}
	if st.Window < 0 {
		return fmt.Errorf("core: publisher state with negative window counter %d", st.Window)
	}
	if len(st.Ladder) != len(st.Biases) {
		return fmt.Errorf("core: publisher state with %d ladder rungs but %d biases",
			len(st.Ladder), len(st.Biases))
	}
	pub.window = st.Window
	pub.src.SetState(st.RNG)
	pub.biasReuses = st.BiasReuses
	pub.lastLadder, pub.lastBiases = nil, nil
	if len(st.Biases) > 0 {
		pub.lastLadder = make([]ladderRung, len(st.Ladder))
		for i, r := range st.Ladder {
			pub.lastLadder[i] = ladderRung{support: r.Support, size: r.Size}
		}
		pub.lastBiases = append([]int(nil), st.Biases...)
	}
	pub.cache = make(map[string]*cacheEntry, len(st.Cache))
	for _, e := range st.Cache {
		pub.cache[e.Key] = &cacheEntry{
			key:         e.Key,
			trueSupport: e.TrueSupport,
			sanitized:   e.Sanitized,
			lastSeen:    e.LastSeen,
		}
	}
	pub.resetDeltaBaseline()
	return nil
}

// WindowRecords returns the miner's current sliding-window content in
// stream order (oldest first) — the transaction buffer a checkpoint stores
// so a resumed stream can rebuild the mining state without replaying the
// whole prefix. The slice is freshly allocated; the itemsets are immutable.
func (s *Stream) WindowRecords() []itemset.Itemset { return s.miner.Window() }
