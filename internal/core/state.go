package core

// This file is the durability boundary of the publisher: Snapshot captures
// everything Publish consults that is not derivable from the Config — the
// window counter, the RNG cursor, the consistent-republication cache, and
// the incremental-bias memo — and Restore rebuilds a publisher from it. A
// publisher restored from a snapshot taken at window w publishes windows
// w+1, w+2, ... byte-identically to the publisher the snapshot was taken
// from. That is what makes crash-and-resume safe against the republication
// attack of §VI: a resumed stream re-serves the SAME sanitized values for
// unchanged supports instead of re-drawing fresh noise an adversary could
// average out.

import (
	"fmt"
	"sort"

	"repro/internal/itemset"
)

// LadderRung is one step of the serialized FEC ladder: the (support,
// class-size) pair the incremental-bias memo is keyed by.
type LadderRung struct {
	Support int
	Size    int
}

// CacheEntry is one serialized republication-cache binding. Key is the
// compact itemset.Itemset.Key() encoding (binary, not printable).
type CacheEntry struct {
	Key         string
	TrueSupport int
	Sanitized   int
	LastSeen    int
}

// PublisherState is the complete serializable state of a Publisher. All
// fields are data, none are configuration: a restored publisher must be
// built with the same Params, Scheme, seed lineage and worker tier as the
// one snapshotted — the checkpoint layer fingerprints the configuration to
// enforce that.
type PublisherState struct {
	// Window is the number of Publish calls completed.
	Window int
	// RNG is the perturbation source cursor (rng.Source.State).
	RNG uint64
	// BiasReuses mirrors the incremental-path diagnostic counter.
	BiasReuses int
	// Ladder and Biases are the incremental-bias memo; both empty or both
	// of equal length.
	Ladder []LadderRung
	Biases []int
	// Cache holds the republication cache sorted by Key, so snapshots of
	// equal publishers serialize to equal bytes.
	Cache []CacheEntry
}

// Snapshot captures the publisher's state. The returned value shares
// nothing with the publisher; mutating one never disturbs the other.
func (pub *Publisher) Snapshot() *PublisherState {
	st := &PublisherState{
		Window:     pub.window,
		RNG:        pub.src.State(),
		BiasReuses: pub.biasReuses,
	}
	if pub.lastBiases != nil {
		st.Ladder = make([]LadderRung, len(pub.lastLadder))
		for i, r := range pub.lastLadder {
			st.Ladder[i] = LadderRung{Support: r.support, Size: r.size}
		}
		st.Biases = append([]int(nil), pub.lastBiases...)
	}
	st.Cache = make([]CacheEntry, 0, len(pub.cache))
	for k, e := range pub.cache {
		st.Cache = append(st.Cache, CacheEntry{
			Key:         k,
			TrueSupport: e.trueSupport,
			Sanitized:   e.sanitized,
			LastSeen:    e.lastSeen,
		})
	}
	sort.Slice(st.Cache, func(i, j int) bool { return st.Cache[i].Key < st.Cache[j].Key })
	return st
}

// Restore overwrites the publisher's state with a previously captured
// snapshot. Configuration (params, scheme, worker tier, cache policy) is
// left untouched. It validates the snapshot's internal consistency so a
// decoded-but-nonsensical checkpoint fails loudly here rather than
// corrupting later windows.
func (pub *Publisher) Restore(st *PublisherState) error {
	if st == nil {
		return fmt.Errorf("core: nil publisher state")
	}
	if st.Window < 0 {
		return fmt.Errorf("core: publisher state with negative window counter %d", st.Window)
	}
	if len(st.Ladder) != len(st.Biases) {
		return fmt.Errorf("core: publisher state with %d ladder rungs but %d biases",
			len(st.Ladder), len(st.Biases))
	}
	pub.window = st.Window
	pub.src.SetState(st.RNG)
	pub.biasReuses = st.BiasReuses
	pub.lastLadder, pub.lastBiases = nil, nil
	if len(st.Biases) > 0 {
		pub.lastLadder = make([]ladderRung, len(st.Ladder))
		for i, r := range st.Ladder {
			pub.lastLadder[i] = ladderRung{support: r.Support, size: r.Size}
		}
		pub.lastBiases = append([]int(nil), st.Biases...)
	}
	pub.cache = make(map[string]*cacheEntry, len(st.Cache))
	for _, e := range st.Cache {
		pub.cache[e.Key] = &cacheEntry{
			trueSupport: e.TrueSupport,
			sanitized:   e.Sanitized,
			lastSeen:    e.LastSeen,
		}
	}
	return nil
}

// WindowRecords returns the miner's current sliding-window content in
// stream order (oldest first) — the transaction buffer a checkpoint stores
// so a resumed stream can rebuild the mining state without replaying the
// whole prefix. The slice is freshly allocated; the itemsets are immutable.
func (s *Stream) WindowRecords() []itemset.Itemset { return s.miner.Window() }
