package core

import (
	"math"
	"testing"

	"repro/internal/fec"
	"repro/internal/itemset"
	"repro/internal/rng"
)

// classesWith builds FECs with the given supports (ascending) and sizes 1.
func classesWith(supports ...int) []fec.Class {
	out := make([]fec.Class, len(supports))
	for i, s := range supports {
		out[i] = fec.Class{Support: s, Members: []itemset.Itemset{itemset.New(itemset.Item(i))}}
	}
	return out
}

func testParams() Params {
	return Params{Epsilon: 0.016, Delta: 0.4, MinSupport: 25, VulnSupport: 5}
}

func checkWithinMaxBias(t *testing.T, name string, classes []fec.Class, p Params, biases []int) {
	t.Helper()
	if len(biases) != len(classes) {
		t.Fatalf("%s: %d biases for %d classes", name, len(biases), len(classes))
	}
	for i, b := range biases {
		m := p.MaxBias(classes[i].Support)
		if b > m || b < -m {
			t.Errorf("%s: class %d (t=%d) bias %d outside ±%d",
				name, i, classes[i].Support, b, m)
		}
	}
}

func TestBasicBiasesAllZero(t *testing.T) {
	classes := classesWith(25, 30, 50)
	b := Basic{}.Biases(classes, testParams())
	for i, v := range b {
		if v != 0 {
			t.Errorf("basic bias[%d] = %d", i, v)
		}
	}
	if (Basic{}).SharedDraws() {
		t.Error("basic must draw per itemset")
	}
	if (Basic{}).Name() != "basic" {
		t.Error("name wrong")
	}
}

func TestRatioPreservingProportional(t *testing.T) {
	p := testParams()
	classes := classesWith(25, 50, 100, 200)
	b := RatioPreserving{}.Biases(classes, p)
	checkWithinMaxBias(t, "rp", classes, p, b)
	if b[0] != p.MaxBias(25) {
		t.Errorf("β1 = %d, want max adjustable bias %d", b[0], p.MaxBias(25))
	}
	// β_i/t_i should be (nearly) constant.
	r0 := float64(b[0]) / 25
	for i, c := range classes {
		r := float64(b[i]) / float64(c.Support)
		if math.Abs(r-r0) > 0.05*r0+0.05 {
			t.Errorf("ratio β/t at class %d = %v, want ≈ %v", i, r, r0)
		}
	}
}

func TestRatioPreservingEmptyAndSingle(t *testing.T) {
	p := testParams()
	if got := (RatioPreserving{}).Biases(nil, p); len(got) != 0 {
		t.Error("empty classes should give empty biases")
	}
	b := RatioPreserving{}.Biases(classesWith(30), p)
	if len(b) != 1 || b[0] != p.MaxBias(30) {
		t.Errorf("single class bias = %v", b)
	}
}

// Lemma 3 as a property: the proportional bias never exceeds the class's own
// maximum adjustable bias, across random support ladders.
func TestRatioPreservingLemma3(t *testing.T) {
	src := rng.New(606)
	p := testParams()
	for trial := 0; trial < 200; trial++ {
		n := 2 + src.Intn(20)
		sup := 25
		var sups []int
		for i := 0; i < n; i++ {
			sup += 1 + src.Intn(40)
			sups = append(sups, sup)
		}
		classes := classesWith(sups...)
		b := RatioPreserving{}.Biases(classes, p)
		for i := range classes {
			m := p.MaxBias(classes[i].Support)
			if b[i] > m {
				t.Fatalf("trial %d: bias %d exceeds βm %d at t=%d",
					trial, b[i], m, classes[i].Support)
			}
		}
	}
}

func TestOrderPreservingKeepsEstimatorOrder(t *testing.T) {
	p := testParams()
	src := rng.New(707)
	for trial := 0; trial < 50; trial++ {
		n := 2 + src.Intn(15)
		sup := 25
		var sups []int
		for i := 0; i < n; i++ {
			sup += 1 + src.Intn(6) // dense ladder: overlaps likely
			sups = append(sups, sup)
		}
		classes := classesWith(sups...)
		for _, gamma := range []int{1, 2, 3} {
			b := OrderPreserving{Gamma: gamma}.Biases(classes, p)
			checkWithinMaxBias(t, "op", classes, p, b)
			for i := 1; i < n; i++ {
				ei := classes[i].Support + b[i]
				ep := classes[i-1].Support + b[i-1]
				if ei <= ep {
					t.Fatalf("trial %d γ=%d: estimator order violated at %d: %d <= %d",
						trial, gamma, i, ei, ep)
				}
			}
		}
	}
}

// On a dense ladder the DP should spread estimators further apart than the
// zero-bias assignment, reducing the overlap cost.
func TestOrderPreservingReducesOverlapCost(t *testing.T) {
	p := testParams()
	classes := classesWith(25, 26, 27, 28, 29, 30)
	alpha := p.Alpha()
	cost := func(b []int) float64 {
		total := 0.0
		for i := 0; i < len(classes); i++ {
			for j := 0; j < i; j++ {
				d := (classes[i].Support + b[i]) - (classes[j].Support + b[j])
				if d < alpha+1 {
					w := float64(classes[i].Size() + classes[j].Size())
					total += w * float64(alpha+1-d) * float64(alpha+1-d)
				}
			}
		}
		return total
	}
	zero := make([]int, len(classes))
	op := OrderPreserving{Gamma: 2}.Biases(classes, p)
	if cost(op) > cost(zero) {
		t.Errorf("DP cost %v exceeds zero-bias cost %v (biases %v)", cost(op), cost(zero), op)
	}
}

// Larger γ can only improve (or tie) the exhaustive pairwise cost on a small
// instance where the full DP is exact.
func TestOrderPreservingGammaMonotone(t *testing.T) {
	p := testParams()
	classes := classesWith(25, 26, 28, 29, 31)
	alpha := p.Alpha()
	cost := func(b []int) float64 {
		total := 0.0
		for i := 0; i < len(classes); i++ {
			for j := 0; j < i; j++ {
				d := (classes[i].Support + b[i]) - (classes[j].Support + b[j])
				if d < alpha+1 {
					w := float64(classes[i].Size() + classes[j].Size())
					total += w * float64(alpha+1-d) * float64(alpha+1-d)
				}
			}
		}
		return total
	}
	c1 := cost(OrderPreserving{Gamma: 1}.Biases(classes, p))
	c4 := cost(OrderPreserving{Gamma: 4}.Biases(classes, p))
	if c4 > c1+1e-9 {
		t.Errorf("γ=4 cost %v worse than γ=1 cost %v", c4, c1)
	}
}

func TestOrderPreservingEdgeCases(t *testing.T) {
	p := testParams()
	if got := (OrderPreserving{}).Biases(nil, p); len(got) != 0 {
		t.Error("empty classes")
	}
	b := OrderPreserving{}.Biases(classesWith(40), p)
	if len(b) != 1 {
		t.Fatalf("single class: %v", b)
	}
	checkWithinMaxBias(t, "op-single", classesWith(40), p, b)
}

func TestOrderPreservingCandidatesIncludeAnchors(t *testing.T) {
	p := Params{Epsilon: 0.05, Delta: 0.2, MinSupport: 25, VulnSupport: 5}
	s := OrderPreserving{GridSize: 7}
	c := s.candidates(p, 500) // βm large, grid sampled
	bm := p.MaxBias(500)
	has := func(v int) bool {
		for _, x := range c {
			if x == v {
				return true
			}
		}
		return false
	}
	if !has(0) || !has(bm) || !has(-bm) {
		t.Errorf("candidates %v missing anchors 0/±%d", c, bm)
	}
	for i := 1; i < len(c); i++ {
		if c[i] <= c[i-1] {
			t.Errorf("candidates not sorted: %v", c)
		}
	}
}

func TestHybridInterpolates(t *testing.T) {
	p := testParams()
	classes := classesWith(25, 40, 80, 160)
	op := OrderPreserving{Gamma: 2}.Biases(classes, p)
	rp := RatioPreserving{}.Biases(classes, p)
	h0 := Hybrid{Lambda: 0}.Biases(classes, p)
	h1 := Hybrid{Lambda: 1}.Biases(classes, p)
	for i := range classes {
		if h0[i] != rp[i] {
			t.Errorf("λ=0 class %d: %d != rp %d", i, h0[i], rp[i])
		}
		if h1[i] != op[i] {
			t.Errorf("λ=1 class %d: %d != op %d", i, h1[i], op[i])
		}
	}
	h := Hybrid{Lambda: 0.4}.Biases(classes, p)
	checkWithinMaxBias(t, "hybrid", classes, p, h)
	for i := range classes {
		lo, hi := min(op[i], rp[i]), max(op[i], rp[i])
		if h[i] < lo || h[i] > hi {
			t.Errorf("hybrid bias %d outside [%d,%d]", h[i], lo, hi)
		}
	}
}

func TestHybridPanicsOnBadLambda(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("λ=2 did not panic")
		}
	}()
	Hybrid{Lambda: 2}.Biases(classesWith(25, 30), testParams())
}

func TestSchemeNames(t *testing.T) {
	if (OrderPreserving{Gamma: 3}).Name() != "order-preserving(γ=3)" {
		t.Error("op name")
	}
	if (RatioPreserving{}).Name() != "ratio-preserving" {
		t.Error("rp name")
	}
	if (Hybrid{Lambda: 0.4}).Name() != "hybrid(λ=0.4)" {
		t.Error("hybrid name")
	}
}

// TestOrderPreservingDenseSparseAgree pins the flat-array DP to the sparse
// map DP: for random FEC ladders and a spread of γ/grid settings, both paths
// must choose the identical bias assignment — including cost ties, which
// both must resolve toward the smallest encoded state key. This is what
// keeps published bytes stable across the denseStateLimit boundary.
func TestOrderPreservingDenseSparseAgree(t *testing.T) {
	src := rng.New(20260808)
	for trial := 0; trial < 200; trial++ {
		n := 1 + src.Intn(12)
		classes := make([]fec.Class, n)
		sup := 20 + src.Intn(10)
		for i := range classes {
			size := 1 + src.Intn(4)
			members := make([]itemset.Itemset, size)
			for j := range members {
				members[j] = itemset.New(itemset.Item(i*10 + j))
			}
			classes[i] = fec.Class{Support: sup, Members: members}
			sup += 1 + src.Intn(40)
		}
		p := Params{Epsilon: 0.01 + src.Float64()*0.1, Delta: 0.4, MinSupport: 10, VulnSupport: 5}
		gamma := 1 + src.Intn(3)
		grid := []int{0, 5, 13}[src.Intn(3)]
		s := OrderPreserving{Gamma: gamma, GridSize: grid}
		cands := make([][]int, n)
		maxGrid := 0
		for i, c := range classes {
			cands[i] = s.candidates(p, c.Support)
			if len(cands[i]) > maxGrid {
				maxGrid = len(cands[i])
			}
		}
		dense := s.biasesDense(classes, p, cands, maxGrid, make([]int, n))
		sparse := s.biasesSparse(classes, p, cands, maxGrid, make([]int, n))
		for i := range dense {
			if dense[i] != sparse[i] {
				t.Fatalf("trial %d (γ=%d grid=%d n=%d): dense %v != sparse %v",
					trial, gamma, grid, n, dense, sparse)
			}
		}
	}
}

// TestOrderPreservingSmallBeamDenseSparseAgree exercises the beam bound in
// both DP paths (MaxStates far below the state space) and pins them equal.
func TestOrderPreservingSmallBeamDenseSparseAgree(t *testing.T) {
	src := rng.New(7)
	for trial := 0; trial < 60; trial++ {
		n := 2 + src.Intn(8)
		classes := make([]fec.Class, n)
		sup := 25
		for i := range classes {
			classes[i] = fec.Class{Support: sup, Members: []itemset.Itemset{itemset.New(itemset.Item(i))}}
			sup += 1 + src.Intn(25)
		}
		p := Params{Epsilon: 0.05, Delta: 0.4, MinSupport: 10, VulnSupport: 5}
		s := OrderPreserving{Gamma: 2, MaxStates: 3}
		cands := make([][]int, n)
		maxGrid := 0
		for i, c := range classes {
			cands[i] = s.candidates(p, c.Support)
			if len(cands[i]) > maxGrid {
				maxGrid = len(cands[i])
			}
		}
		dense := s.biasesDense(classes, p, cands, maxGrid, make([]int, n))
		sparse := s.biasesSparse(classes, p, cands, maxGrid, make([]int, n))
		for i := range dense {
			if dense[i] != sparse[i] {
				t.Fatalf("trial %d: beam-bounded dense %v != sparse %v", trial, dense, sparse)
			}
		}
	}
}
