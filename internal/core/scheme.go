package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/fec"
)

// Scheme assigns a perturbation bias to each frequency equivalence class.
// Implementations must return one bias per class, respecting |β_i| <=
// p.MaxBias(t_i); classes arrive in ascending support order as produced by
// fec.Partition.
type Scheme interface {
	// Name identifies the scheme in experiment output.
	Name() string
	// Biases computes the per-class biases.
	Biases(classes []fec.Class, p Params) []int
	// SharedDraws reports whether all members of a FEC share one random
	// draw (the optimized schemes) or each itemset is perturbed
	// independently (the basic scheme).
	SharedDraws() bool
}

// Basic is the basic Butterfly approach of §V-C: zero bias everywhere
// (minimum precision-privacy ratio) and an independent draw per itemset.
type Basic struct{}

// Name implements Scheme.
func (Basic) Name() string { return "basic" }

// SharedDraws implements Scheme: the basic scheme perturbs each itemset
// independently.
func (Basic) SharedDraws() bool { return false }

// Biases implements Scheme: all zeros.
func (Basic) Biases(classes []fec.Class, _ Params) []int {
	return make([]int, len(classes))
}

// RatioPreserving is the bottom-up bias setting of Algorithm 2 (§VI-B):
// the smallest class takes its maximum adjustable bias and every other
// class scales it in proportion to its support, which maximizes the
// Markov-bound proxy of every pairwise (k,1/k) ratio probability. Lemma 3
// guarantees the scaled biases stay within their own maximum adjustable
// bias; rounding is clamped defensively anyway.
type RatioPreserving struct{}

// Name implements Scheme.
func (RatioPreserving) Name() string { return "ratio-preserving" }

// SharedDraws implements Scheme.
func (RatioPreserving) SharedDraws() bool { return true }

// Biases implements Scheme.
func (RatioPreserving) Biases(classes []fec.Class, p Params) []int {
	out := make([]int, len(classes))
	if len(classes) == 0 {
		return out
	}
	t1 := classes[0].Support
	b1 := p.MaxBias(t1)
	for i, c := range classes {
		b := int(math.Round(float64(b1) * float64(c.Support) / float64(t1)))
		if m := p.MaxBias(c.Support); b > m {
			b = m
		}
		out[i] = b
	}
	return out
}

// OrderPreserving is the dynamic-programming bias setting of Algorithm 1
// (§VI-A): choose biases minimizing the weighted sum of pairwise inversion
// costs Σ_{i<j} (s_i+s_j)(α+1−d_ij)² over overlapping uncertainty regions,
// subject to strictly increasing perturbation estimators e_i = t_i + β_i.
// Each class interacts only with its γ predecessors (the paper's lookback
// approximation); candidate biases are drawn from a grid of at most
// GridSize values per class to bound the DP state space.
type OrderPreserving struct {
	// Gamma is the DP lookback depth γ. Zero means the default of 2, the
	// knee of the quality/cost curve in the paper's Fig. 6; a negative
	// value means a true γ of 0 (no pairwise terms at all, degenerating to
	// zero biases — the Fig. 6 sweep's leftmost point).
	Gamma int
	// GridSize caps the candidate biases per class (0 means default 13).
	// The grid always contains −β^m, 0 and β^m.
	GridSize int
	// MaxStates beam-bounds the DP: after each class, only the cheapest
	// MaxStates states survive (0 means default 4096). The bound bites only
	// at large γ, where the exact state space GridSize^γ explodes; the
	// paper's own γ-truncation already accepts near-optimality there.
	MaxStates int
}

// Name implements Scheme.
func (s OrderPreserving) Name() string { return fmt.Sprintf("order-preserving(γ=%d)", s.gamma()) }

// SharedDraws implements Scheme.
func (OrderPreserving) SharedDraws() bool { return true }

func (s OrderPreserving) gamma() int {
	if s.Gamma < 0 {
		return 0
	}
	if s.Gamma == 0 {
		return 2
	}
	return s.Gamma
}

func (s OrderPreserving) maxStates() int {
	if s.MaxStates <= 0 {
		return 4096
	}
	return s.MaxStates
}

func (s OrderPreserving) gridSize() int {
	if s.GridSize <= 0 {
		return 13
	}
	if s.GridSize < 3 {
		return 3
	}
	return s.GridSize
}

// candidates returns the bias grid for one class: every integer in
// [−β^m, β^m] when that is small, otherwise an even sampling that always
// includes the endpoints and zero.
func (s OrderPreserving) candidates(p Params, t int) []int {
	bm := p.MaxBias(t)
	m := s.gridSize()
	if 2*bm+1 <= m {
		out := make([]int, 0, 2*bm+1)
		for b := -bm; b <= bm; b++ {
			out = append(out, b)
		}
		return out
	}
	seen := map[int]bool{}
	out := make([]int, 0, m+1)
	add := func(b int) {
		if !seen[b] {
			seen[b] = true
			out = append(out, b)
		}
	}
	step := 2 * float64(bm) / float64(m-1)
	for k := 0; k < m; k++ {
		add(int(math.Round(-float64(bm) + float64(k)*step)))
	}
	add(0)
	// Keep the grid sorted after the possible append of 0.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Biases implements Scheme via the γ-lookback dynamic program.
func (s OrderPreserving) Biases(classes []fec.Class, p Params) []int {
	n := len(classes)
	out := make([]int, n)
	if n == 0 {
		return out
	}
	gamma := s.gamma()
	if gamma == 0 {
		return out // no pairwise terms: the zero-bias assignment is optimal
	}
	alpha := p.Alpha()

	cands := make([][]int, n)
	for i, c := range classes {
		cands[i] = s.candidates(p, c.Support)
	}

	// cost of the (j, i) pair (j < i) given their biases.
	pairCost := func(j, i, bj, bi int) float64 {
		d := (classes[i].Support + bi) - (classes[j].Support + bj)
		if d >= alpha+1 {
			return 0
		}
		w := float64(classes[j].Size() + classes[i].Size())
		gap := float64(alpha + 1 - d)
		return w * gap * gap
	}

	// DP over states: the candidate indices of the most recent min(γ, i+1)
	// classes, encoded base-maxGrid.
	maxGrid := 0
	for _, c := range cands {
		if len(c) > maxGrid {
			maxGrid = len(c)
		}
	}
	encode := func(idxs []int) uint64 {
		var k uint64
		for _, v := range idxs {
			k = k*uint64(maxGrid) + uint64(v)
		}
		return k
	}

	type entry struct {
		cost float64
		prev uint64 // predecessor state key
		ok   bool
	}
	// states[i] maps the state after choosing class i's bias.
	states := make([]map[uint64]entry, n)

	states[0] = map[uint64]entry{}
	for ci := range cands[0] {
		states[0][encode([]int{ci})] = entry{cost: 0, ok: true}
	}

	// Map iteration order is randomized; DP must process states in a fixed
	// order so equal-cost ties resolve identically across runs.
	sortedKeys := func(m map[uint64]entry) []uint64 {
		keys := make([]uint64, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
		return keys
	}

	for i := 1; i < n; i++ {
		states[i] = map[uint64]entry{}
		span := min(gamma, i) // classes i-span..i-1 are in the predecessor state
		for _, key := range sortedKeys(states[i-1]) {
			ent := states[i-1][key]
			idxs := decode(key, min(gamma, i), maxGrid)
			// idxs holds candidate indices of classes i-span..i-1.
			lastIdx := idxs[len(idxs)-1]
			eprev := classes[i-1].Support + cands[i-1][lastIdx]
			for ci, bi := range cands[i] {
				if classes[i].Support+bi <= eprev {
					continue // estimator order violated
				}
				add := 0.0
				for off, cj := range idxs {
					j := i - span + off
					add += pairCost(j, i, cands[j][cj], bi)
				}
				// Pairs farther than γ back are treated as non-overlapping.
				nidxs := append(append([]int{}, idxs...), ci)
				if len(nidxs) > gamma {
					nidxs = nidxs[1:]
				}
				nkey := encode(nidxs)
				cand := entry{cost: ent.cost + add, prev: key, ok: true}
				if cur, ok := states[i][nkey]; !ok || cand.cost < cur.cost {
					states[i][nkey] = cand
				}
			}
		}
		if len(states[i]) == 0 {
			// Cannot happen: the all-zero-bias chain is always feasible
			// because class supports are strictly increasing. Guard anyway.
			zero := indexOf(cands[i], 0)
			states[i][encode([]int{zero})] = entry{ok: true}
		}
		// Beam bound: keep only the cheapest states so large γ stays
		// tractable (GridSize^γ states otherwise).
		if beam := s.maxStates(); len(states[i]) > beam {
			keys := sortedKeys(states[i])
			sort.Slice(keys, func(a, b int) bool {
				ca, cb := states[i][keys[a]].cost, states[i][keys[b]].cost
				if ca != cb {
					return ca < cb
				}
				return keys[a] < keys[b]
			})
			for _, k := range keys[beam:] {
				delete(states[i], k)
			}
		}
	}

	// Pick the cheapest final state (first in key order on ties) and
	// backtrack.
	var bestKey uint64
	best := math.Inf(1)
	for _, key := range sortedKeys(states[n-1]) {
		if ent := states[n-1][key]; ent.cost < best {
			best = ent.cost
			bestKey = key
		}
	}
	key := bestKey
	for i := n - 1; i >= 0; i-- {
		idxs := decode(key, min(gamma, i+1), maxGrid)
		out[i] = cands[i][idxs[len(idxs)-1]]
		key = states[i][key].prev
	}
	return out
}

func decode(key uint64, length, base int) []int {
	out := make([]int, length)
	for i := length - 1; i >= 0; i-- {
		out[i] = int(key % uint64(base))
		key /= uint64(base)
	}
	return out
}

func indexOf(xs []int, v int) int {
	for i, x := range xs {
		if x == v {
			return i
		}
	}
	return 0
}

// Hybrid combines the order- and ratio-preserving biases linearly
// (§VI-C): β = λ·β_OP + (1−λ)·β_RP. λ=1 reduces to order preservation,
// λ=0 to ratio preservation; the paper finds λ≈0.4 a good overall balance.
type Hybrid struct {
	// Lambda weights order preservation; must lie in [0, 1].
	Lambda float64
	// Order configures the embedded order-preserving DP.
	Order OrderPreserving
}

// Name implements Scheme.
func (h Hybrid) Name() string { return fmt.Sprintf("hybrid(λ=%.2g)", h.Lambda) }

// SharedDraws implements Scheme.
func (Hybrid) SharedDraws() bool { return true }

// Biases implements Scheme.
func (h Hybrid) Biases(classes []fec.Class, p Params) []int {
	if h.Lambda < 0 || h.Lambda > 1 {
		panic(fmt.Sprintf("core: hybrid λ=%v outside [0,1]", h.Lambda))
	}
	op := h.Order.Biases(classes, p)
	rp := RatioPreserving{}.Biases(classes, p)
	out := make([]int, len(classes))
	for i := range out {
		b := int(math.Round(h.Lambda*float64(op[i]) + (1-h.Lambda)*float64(rp[i])))
		if m := p.MaxBias(classes[i].Support); b > m {
			b = m
		} else if b < -m {
			b = -m
		}
		out[i] = b
	}
	return out
}
