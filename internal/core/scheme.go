package core

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/fec"
)

// Scheme assigns a perturbation bias to each frequency equivalence class.
// Implementations must return one bias per class, respecting |β_i| <=
// p.MaxBias(t_i); classes arrive in ascending support order as produced by
// fec.Partition.
type Scheme interface {
	// Name identifies the scheme in experiment output.
	Name() string
	// Biases computes the per-class biases.
	Biases(classes []fec.Class, p Params) []int
	// SharedDraws reports whether all members of a FEC share one random
	// draw (the optimized schemes) or each itemset is perturbed
	// independently (the basic scheme).
	SharedDraws() bool
}

// Basic is the basic Butterfly approach of §V-C: zero bias everywhere
// (minimum precision-privacy ratio) and an independent draw per itemset.
type Basic struct{}

// Name implements Scheme.
func (Basic) Name() string { return "basic" }

// SharedDraws implements Scheme: the basic scheme perturbs each itemset
// independently.
func (Basic) SharedDraws() bool { return false }

// Biases implements Scheme: all zeros.
func (Basic) Biases(classes []fec.Class, _ Params) []int {
	return make([]int, len(classes))
}

// RatioPreserving is the bottom-up bias setting of Algorithm 2 (§VI-B):
// the smallest class takes its maximum adjustable bias and every other
// class scales it in proportion to its support, which maximizes the
// Markov-bound proxy of every pairwise (k,1/k) ratio probability. Lemma 3
// guarantees the scaled biases stay within their own maximum adjustable
// bias; rounding is clamped defensively anyway.
type RatioPreserving struct{}

// Name implements Scheme.
func (RatioPreserving) Name() string { return "ratio-preserving" }

// SharedDraws implements Scheme.
func (RatioPreserving) SharedDraws() bool { return true }

// Biases implements Scheme.
func (RatioPreserving) Biases(classes []fec.Class, p Params) []int {
	out := make([]int, len(classes))
	if len(classes) == 0 {
		return out
	}
	t1 := classes[0].Support
	b1 := p.MaxBias(t1)
	for i, c := range classes {
		b := int(math.Round(float64(b1) * float64(c.Support) / float64(t1)))
		if m := p.MaxBias(c.Support); b > m {
			b = m
		}
		out[i] = b
	}
	return out
}

// OrderPreserving is the dynamic-programming bias setting of Algorithm 1
// (§VI-A): choose biases minimizing the weighted sum of pairwise inversion
// costs Σ_{i<j} (s_i+s_j)(α+1−d_ij)² over overlapping uncertainty regions,
// subject to strictly increasing perturbation estimators e_i = t_i + β_i.
// Each class interacts only with its γ predecessors (the paper's lookback
// approximation); candidate biases are drawn from a grid of at most
// GridSize values per class to bound the DP state space.
type OrderPreserving struct {
	// Gamma is the DP lookback depth γ. Zero means the default of 2, the
	// knee of the quality/cost curve in the paper's Fig. 6; a negative
	// value means a true γ of 0 (no pairwise terms at all, degenerating to
	// zero biases — the Fig. 6 sweep's leftmost point).
	Gamma int
	// GridSize caps the candidate biases per class (0 means default 13).
	// The grid always contains −β^m, 0 and β^m.
	GridSize int
	// MaxStates beam-bounds the DP: after each class, only the cheapest
	// MaxStates states survive (0 means default 4096). The bound bites only
	// at large γ, where the exact state space GridSize^γ explodes; the
	// paper's own γ-truncation already accepts near-optimality there.
	MaxStates int
}

// Name implements Scheme.
func (s OrderPreserving) Name() string { return fmt.Sprintf("order-preserving(γ=%d)", s.gamma()) }

// SharedDraws implements Scheme.
func (OrderPreserving) SharedDraws() bool { return true }

func (s OrderPreserving) gamma() int {
	if s.Gamma < 0 {
		return 0
	}
	if s.Gamma == 0 {
		return 2
	}
	return s.Gamma
}

func (s OrderPreserving) maxStates() int {
	if s.MaxStates <= 0 {
		return 4096
	}
	return s.MaxStates
}

func (s OrderPreserving) gridSize() int {
	if s.GridSize <= 0 {
		return 13
	}
	if s.GridSize < 3 {
		return 3
	}
	return s.GridSize
}

// candidates returns the bias grid for one class: every integer in
// [−β^m, β^m] when that is small, otherwise an even sampling that always
// includes the endpoints and zero. The grid is small (at most gridSize+1
// entries), so duplicate elimination is a linear scan — no map, no
// allocation beyond the result slice. This runs once per class per
// un-memoized Publish, so it is on the publish hot path.
func (s OrderPreserving) candidates(p Params, t int) []int {
	bm := p.MaxBias(t)
	m := s.gridSize()
	if 2*bm+1 <= m {
		out := make([]int, 0, 2*bm+1)
		for b := -bm; b <= bm; b++ {
			out = append(out, b)
		}
		return out
	}
	out := make([]int, 0, m+1)
	step := 2 * float64(bm) / float64(m-1)
	for k := 0; k <= m; k++ {
		b := 0 // the final pass appends 0, matching the historical grid
		if k < m {
			b = int(math.Round(-float64(bm) + float64(k)*step))
		}
		dup := false
		for _, x := range out {
			if x == b {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, b)
		}
	}
	// Keep the grid sorted after the possible append of 0.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// denseStateLimit is the largest per-tier state space (maxGrid^min(γ, n))
// the DP runs on flat arrays. Beyond it — large γ at a wide grid — the
// historical sparse map implementation takes over: it bounds live states by
// the beam instead of materializing the full key space. Both paths compute
// the identical bias assignment (a property test cross-checks them); the
// dense path exists because the map DP was the publish hot path's dominant
// allocator (~100k allocs per benched op before the rewrite).
const denseStateLimit = 4096

// Biases implements Scheme via the γ-lookback dynamic program.
func (s OrderPreserving) Biases(classes []fec.Class, p Params) []int {
	n := len(classes)
	out := make([]int, n)
	if n == 0 {
		return out
	}
	gamma := s.gamma()
	if gamma == 0 {
		return out // no pairwise terms: the zero-bias assignment is optimal
	}
	cands := make([][]int, n)
	maxGrid := 0
	for i, c := range classes {
		cands[i] = s.candidates(p, c.Support)
		if len(cands[i]) > maxGrid {
			maxGrid = len(cands[i])
		}
	}
	space := 1
	for k := 0; k < min(gamma, n); k++ {
		space *= maxGrid
		if space > denseStateLimit {
			return s.biasesSparse(classes, p, cands, maxGrid, out)
		}
	}
	return s.biasesDense(classes, p, cands, maxGrid, out)
}

// biasesDense is the flat-array DP: states are dense arrays indexed by the
// encoded candidate-index tuple, with +Inf marking absent states. Iterating
// keys in ascending order reproduces the sparse implementation's
// sorted-key processing order exactly, so tie-breaking — first-processed
// state wins equal costs — and therefore the chosen biases are identical.
// The whole tier fits a few KiB (the caller guarantees the state space is
// at most denseStateLimit), and the only allocations are a handful of flat
// slices sized once per call.
func (s OrderPreserving) biasesDense(classes []fec.Class, p Params, cands [][]int, maxGrid int, out []int) []int {
	n := len(classes)
	gamma := s.gamma()
	alpha := p.Alpha()
	beam := s.maxStates()
	inf := math.Inf(1)

	pow := func(k int) int {
		r := 1
		for ; k > 0; k-- {
			r *= maxGrid
		}
		return r
	}
	// prev[offsets[i]+key] is the predecessor key of state `key` after
	// class i — the backtracking chain, stored as one flat arena.
	offsets := make([]int, n+1)
	for i := 0; i < n; i++ {
		offsets[i+1] = offsets[i] + pow(min(gamma, i+1))
	}
	prev := make([]int32, offsets[n])

	spaceFull := pow(min(gamma, n))
	cost := make([]float64, spaceFull)
	next := make([]float64, spaceFull)
	idxs := make([]int, gamma)

	space0 := pow(1)
	for k := 0; k < space0; k++ {
		cost[k] = inf
	}
	for ci := range cands[0] {
		cost[ci] = 0
	}

	for i := 1; i < n; i++ {
		spanPrev := min(gamma, i) // classes i-spanPrev..i-1 are in the predecessor state
		spacePrev := pow(spanPrev)
		spaceCur := pow(min(gamma, i+1))
		for k := 0; k < spaceCur; k++ {
			next[k] = inf
		}
		grow := spanPrev < gamma
		dropMod := 1
		if !grow {
			dropMod = pow(gamma - 1)
		}
		live := 0
		for key := 0; key < spacePrev; key++ {
			entCost := cost[key]
			if math.IsInf(entCost, 1) {
				continue
			}
			// Decode key into the candidate indices of classes
			// i-spanPrev..i-1 (most significant digit first).
			k := key
			for j := spanPrev - 1; j >= 0; j-- {
				idxs[j] = k % maxGrid
				k /= maxGrid
			}
			eprev := classes[i-1].Support + cands[i-1][idxs[spanPrev-1]]
			for ci, bi := range cands[i] {
				if classes[i].Support+bi <= eprev {
					continue // estimator order violated
				}
				add := 0.0
				for off := 0; off < spanPrev; off++ {
					j := i - spanPrev + off
					d := (classes[i].Support + bi) - (classes[j].Support + cands[j][idxs[off]])
					if d >= alpha+1 {
						continue
					}
					w := float64(classes[j].Size() + classes[i].Size())
					gap := float64(alpha + 1 - d)
					add += w * gap * gap
				}
				var nkey int
				if grow {
					nkey = key*maxGrid + ci
				} else {
					nkey = (key%dropMod)*maxGrid + ci
				}
				c := entCost + add
				if math.IsInf(next[nkey], 1) {
					live++
					next[nkey] = c
					prev[offsets[i]+nkey] = int32(key)
				} else if c < next[nkey] {
					next[nkey] = c
					prev[offsets[i]+nkey] = int32(key)
				}
			}
		}
		if live == 0 {
			// Cannot happen: the all-zero-bias chain is always feasible
			// because class supports are strictly increasing. Guard anyway.
			zero := indexOf(cands[i], 0)
			next[zero] = 0
			prev[offsets[i]+zero] = 0
			live = 1
		}
		// Beam bound: keep only the cheapest states (ties by key, matching
		// the sparse path) so a small MaxStates stays honored.
		if live > beam {
			keys := make([]int, 0, live)
			for k := 0; k < spaceCur; k++ {
				if !math.IsInf(next[k], 1) {
					keys = append(keys, k)
				}
			}
			sort.Slice(keys, func(a, b int) bool {
				ca, cb := next[keys[a]], next[keys[b]]
				if ca != cb {
					return ca < cb
				}
				return keys[a] < keys[b]
			})
			for _, k := range keys[beam:] {
				next[k] = inf
			}
		}
		cost, next = next, cost
	}

	// Pick the cheapest final state (smallest key on ties) and backtrack.
	bestKey := 0
	best := inf
	for key := 0; key < pow(min(gamma, n)); key++ {
		if cost[key] < best {
			best = cost[key]
			bestKey = key
		}
	}
	key := bestKey
	for i := n - 1; i >= 0; i-- {
		out[i] = cands[i][key%maxGrid] // the last tuple element is the low digit
		key = int(prev[offsets[i]+key])
	}
	return out
}

// biasesSparse is the historical map-based DP, kept for state spaces too
// large to materialize densely (large γ × wide grid — the beam bound keeps
// the maps small there). It must stay behaviorally identical to
// biasesDense; TestOrderPreservingDenseSparseAgree pins that.
func (s OrderPreserving) biasesSparse(classes []fec.Class, p Params, cands [][]int, maxGrid int, out []int) []int {
	n := len(classes)
	gamma := s.gamma()
	alpha := p.Alpha()

	// cost of the (j, i) pair (j < i) given their biases.
	pairCost := func(j, i, bj, bi int) float64 {
		d := (classes[i].Support + bi) - (classes[j].Support + bj)
		if d >= alpha+1 {
			return 0
		}
		w := float64(classes[j].Size() + classes[i].Size())
		gap := float64(alpha + 1 - d)
		return w * gap * gap
	}

	// DP over states: the candidate indices of the most recent min(γ, i+1)
	// classes, encoded base-maxGrid.
	encode := func(idxs []int) uint64 {
		var k uint64
		for _, v := range idxs {
			k = k*uint64(maxGrid) + uint64(v)
		}
		return k
	}

	type entry struct {
		cost float64
		prev uint64 // predecessor state key
		ok   bool
	}
	// states[i] maps the state after choosing class i's bias.
	states := make([]map[uint64]entry, n)

	states[0] = map[uint64]entry{}
	for ci := range cands[0] {
		states[0][encode([]int{ci})] = entry{cost: 0, ok: true}
	}

	// Map iteration order is randomized; DP must process states in a fixed
	// order so equal-cost ties resolve identically across runs.
	sortedKeys := func(m map[uint64]entry) []uint64 {
		keys := make([]uint64, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
		return keys
	}

	for i := 1; i < n; i++ {
		states[i] = map[uint64]entry{}
		span := min(gamma, i) // classes i-span..i-1 are in the predecessor state
		for _, key := range sortedKeys(states[i-1]) {
			ent := states[i-1][key]
			idxs := decode(key, min(gamma, i), maxGrid)
			// idxs holds candidate indices of classes i-span..i-1.
			lastIdx := idxs[len(idxs)-1]
			eprev := classes[i-1].Support + cands[i-1][lastIdx]
			for ci, bi := range cands[i] {
				if classes[i].Support+bi <= eprev {
					continue // estimator order violated
				}
				add := 0.0
				for off, cj := range idxs {
					j := i - span + off
					add += pairCost(j, i, cands[j][cj], bi)
				}
				// Pairs farther than γ back are treated as non-overlapping.
				nidxs := append(append([]int{}, idxs...), ci)
				if len(nidxs) > gamma {
					nidxs = nidxs[1:]
				}
				nkey := encode(nidxs)
				cand := entry{cost: ent.cost + add, prev: key, ok: true}
				if cur, ok := states[i][nkey]; !ok || cand.cost < cur.cost {
					states[i][nkey] = cand
				}
			}
		}
		if len(states[i]) == 0 {
			// Cannot happen: the all-zero-bias chain is always feasible
			// because class supports are strictly increasing. Guard anyway.
			zero := indexOf(cands[i], 0)
			states[i][encode([]int{zero})] = entry{ok: true}
		}
		// Beam bound: keep only the cheapest states so large γ stays
		// tractable (GridSize^γ states otherwise).
		if beam := s.maxStates(); len(states[i]) > beam {
			keys := sortedKeys(states[i])
			sort.Slice(keys, func(a, b int) bool {
				ca, cb := states[i][keys[a]].cost, states[i][keys[b]].cost
				if ca != cb {
					return ca < cb
				}
				return keys[a] < keys[b]
			})
			for _, k := range keys[beam:] {
				delete(states[i], k)
			}
		}
	}

	// Pick the cheapest final state (first in key order on ties) and
	// backtrack.
	var bestKey uint64
	best := math.Inf(1)
	for _, key := range sortedKeys(states[n-1]) {
		if ent := states[n-1][key]; ent.cost < best {
			best = ent.cost
			bestKey = key
		}
	}
	key := bestKey
	for i := n - 1; i >= 0; i-- {
		idxs := decode(key, min(gamma, i+1), maxGrid)
		out[i] = cands[i][idxs[len(idxs)-1]]
		key = states[i][key].prev
	}
	return out
}

func decode(key uint64, length, base int) []int {
	out := make([]int, length)
	for i := length - 1; i >= 0; i-- {
		out[i] = int(key % uint64(base))
		key /= uint64(base)
	}
	return out
}

func indexOf(xs []int, v int) int {
	for i, x := range xs {
		if x == v {
			return i
		}
	}
	return 0
}

// Hybrid combines the order- and ratio-preserving biases linearly
// (§VI-C): β = λ·β_OP + (1−λ)·β_RP. λ=1 reduces to order preservation,
// λ=0 to ratio preservation; the paper finds λ≈0.4 a good overall balance.
type Hybrid struct {
	// Lambda weights order preservation; must lie in [0, 1].
	Lambda float64
	// Order configures the embedded order-preserving DP.
	Order OrderPreserving
}

// Name implements Scheme.
func (h Hybrid) Name() string { return fmt.Sprintf("hybrid(λ=%.2g)", h.Lambda) }

// SharedDraws implements Scheme.
func (Hybrid) SharedDraws() bool { return true }

// Biases implements Scheme.
func (h Hybrid) Biases(classes []fec.Class, p Params) []int {
	if h.Lambda < 0 || h.Lambda > 1 {
		panic(fmt.Sprintf("core: hybrid λ=%v outside [0,1]", h.Lambda))
	}
	op := h.Order.Biases(classes, p)
	rp := RatioPreserving{}.Biases(classes, p)
	out := make([]int, len(classes))
	for i := range out {
		b := int(math.Round(h.Lambda*float64(op[i]) + (1-h.Lambda)*float64(rp[i])))
		if m := p.MaxBias(classes[i].Support); b > m {
			b = m
		} else if b < -m {
			b = -m
		}
		out[i] = b
	}
	return out
}

// SchemeByName builds a bias scheme from its CLI/control-plane spelling:
// "basic", "order"/"op" (with lookback gamma), "ratio"/"rp", or "hybrid"
// (λ = lambda blending order against ratio). It is the single parser behind
// cmd/butterfly's -scheme flag and the sanitization server's per-stream
// stream configs, so the two surfaces cannot drift.
func SchemeByName(name string, lambda float64, gamma int) (Scheme, error) {
	switch strings.ToLower(name) {
	case "basic":
		return Basic{}, nil
	case "order", "op":
		return OrderPreserving{Gamma: gamma}, nil
	case "ratio", "rp":
		return RatioPreserving{}, nil
	case "hybrid", "":
		if lambda < 0 || lambda > 1 {
			return nil, fmt.Errorf("core: hybrid lambda %v outside [0,1]", lambda)
		}
		return Hybrid{Lambda: lambda, Order: OrderPreserving{Gamma: gamma}}, nil
	default:
		return nil, fmt.Errorf("core: unknown scheme %q (basic, order, ratio, hybrid)", name)
	}
}
