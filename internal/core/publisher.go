package core

import (
	"fmt"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fec"
	"repro/internal/itemset"
	"repro/internal/mining"
	"repro/internal/rng"
	"repro/internal/trace"
)

// PublishedItemset is one sanitized entry of the released mining output.
type PublishedItemset struct {
	Set itemset.Itemset
	// Support is the sanitized support T̃(X) = T(X) + β + r.
	Support int
}

// Output is the sanitized mining output of one window — what leaves the
// system. It deliberately carries no true supports.
//
// The lookup index behind Support is built lazily on first use: the publish
// hot path only appends and sorts Items, and most outputs are written out or
// diffed positionally without a single lookup, so interning a key string per
// itemset per window was pure garbage. An Output is safe for concurrent
// reads only once the index exists (call Support once before sharing);
// windows inside the pipeline are owned by one stage at a time.
type Output struct {
	// WindowSize is H; the sliding-window protocol makes it public.
	WindowSize int
	// Items are the published itemsets, sorted by descending sanitized
	// support (ties by size then key), the order a mining frontend displays.
	Items []PublishedItemset

	byKey map[string]int // Key() -> Support, built on first use
}

// index returns the Key() -> Support map, building it on first use.
func (o *Output) index() map[string]int {
	if o.byKey == nil {
		o.byKey = make(map[string]int, len(o.Items))
		for _, it := range o.Items {
			o.byKey[it.Set.Key()] = it.Support
		}
	}
	return o.byKey
}

// Support returns the published support of s.
func (o *Output) Support(s itemset.Itemset) (int, bool) {
	v, ok := o.index()[s.Key()]
	return v, ok
}

// Len returns the number of published itemsets.
func (o *Output) Len() int { return len(o.Items) }

// NewRawOutput packages an unsanitized mining result in the Output format —
// what a system WITHOUT output-privacy protection releases. It exists for
// audits and side-by-side comparisons; production publication goes through
// Publisher.Publish.
func NewRawOutput(res *mining.Result, windowSize int) *Output {
	out := &Output{
		WindowSize: windowSize,
		Items:      make([]PublishedItemset, 0, res.Len()),
	}
	for _, fi := range res.Itemsets {
		out.Items = append(out.Items, PublishedItemset{Set: fi.Set, Support: fi.Support})
	}
	return out
}

// Publisher perturbs mining results window after window. It owns the
// consistent-republication cache that blocks the averaging attack of Prior
// Knowledge 2 (§V-C): as long as an itemset's true support is unchanged
// between consecutive windows, the previously published sanitized value is
// republished verbatim instead of being redrawn.
//
// Publisher is not safe for concurrent use.
type Publisher struct {
	params Params
	scheme Scheme
	src    *rng.Source

	// cache maps itemset.Itemset.Key() strings to republication entries.
	// Entries are pointers so the steady-state hit path can look up with
	// `cache[string(keyBuf)]` (a conversion the compiler elides — zero
	// allocations) and refresh the entry through the pointer; a key string is
	// materialized only when a genuinely new itemset is inserted.
	cache         map[string]*cacheEntry
	cacheDisabled bool
	maxCacheAge   int
	window        int

	// Per-window scratch, reused across Publish calls so a steady-state
	// window allocates almost nothing (see DESIGN.md §2.12 for the ownership
	// rules). All of it holds values only BETWEEN phases of one Publish call;
	// nothing published aliases it.
	classScratch  []fec.Class       // FEC partition of the current window
	memberScratch []itemset.Itemset // flat backing array for classScratch members
	ladderScratch []ladderRung      // current window's ladder, compared to lastLadder
	drawScratch   []int             // batched shared-draw offsets, one per class
	keyBuf        []byte            // AppendKey scratch for cache lookups
	perChunk      [][]chunkItem     // parallel path: per-chunk item buffers

	// Incremental bias reuse (the paper's §VII "incremental version"
	// future work): when consecutive windows produce the same FEC ladder —
	// the same (support, class-size) sequence — the bias optimization would
	// recompute the identical answer, so the previous biases are reused.
	lastLadder []ladderRung
	lastBiases []int
	biasReuses int

	// Delta-snapshot tracking (SetDeltaTracking): when deltaTrack is on,
	// every cache mutation appends the entry to dirtyCache exactly once per
	// baseline interval, and the age sweep records removed keys in
	// evictedKeys, so SnapshotDelta can serialize only what changed —
	// O(changed), not O(cache). Off by default; the only cost when off is one
	// predictable branch per cache write.
	deltaTrack  bool
	dirtyCache  []*cacheEntry
	evictedKeys []string

	// workers selects the perturbation path: <= 1 runs the historical
	// sequential draw order, >= 2 the chunked parallel order (see SetWorkers).
	workers int

	// chunkHook, when non-nil, runs at the start of every parallel
	// perturbation chunk. Test-only: fault-injection tests use it to drive
	// the worker panic-recovery path.
	chunkHook func(chunk int)

	optDur     time.Duration
	perturbDur time.Duration

	// Observability (see telemetry.go): the registered instrument set and
	// the rolling ring behind the §V-C posture gauges. nil metrics disables
	// recording; none of it influences published values. tr is the current
	// window's flight-recorder trace (SetTrace), receiving the
	// bias-optimization and republication-cache child spans.
	metrics  *pubMetrics
	tr       *trace.Window
	roll     [privacyRollWindows]windowPosture
	rollNext int
}

// publishChunkClasses is the number of FECs per perturbation chunk in the
// parallel publish path. It is a fixed constant — NOT derived from the worker
// count — so that chunk boundaries, and therefore every chunk's RNG stream,
// are identical no matter how many workers execute them.
const publishChunkClasses = 4

type ladderRung struct {
	support int
	size    int
}

type cacheEntry struct {
	// key is the entry's own cache key (itemset.Itemset.Key()). It is stored
	// on the entry so delta tracking can emit upserts straight from the dirty
	// list without re-deriving keys from the map.
	key         string
	trueSupport int
	sanitized   int
	lastSeen    int
	// dirty marks the entry as touched since the last snapshot baseline; it
	// is meaningful only while delta tracking is on (SetDeltaTracking).
	dirty bool
}

// NewPublisher validates the parameters and returns a Publisher using the
// given scheme and random source. A nil scheme defaults to Basic; a nil
// source panics (reproducibility is a requirement, not an option).
func NewPublisher(p Params, scheme Scheme, src *rng.Source) (*Publisher, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if scheme == nil {
		scheme = Basic{}
	}
	if src == nil {
		panic("core: NewPublisher requires a random source")
	}
	return &Publisher{
		params:      p,
		scheme:      scheme,
		src:         src,
		cache:       map[string]*cacheEntry{},
		maxCacheAge: 64,
	}, nil
}

// Params returns the calibration the publisher was built with.
func (pub *Publisher) Params() Params { return pub.params }

// Scheme returns the active bias-setting scheme.
func (pub *Publisher) Scheme() Scheme { return pub.scheme }

// Publish sanitizes one window's mining result. windowSize is H (used for
// the public output header; it may exceed res's record count during stream
// warm-up).
//
// Publish is retry-safe: every error return leaves the publisher exactly as
// it was before the call — window counter, RNG stream, republication cache
// and bias memo untouched — so a supervised pipeline may retry the same
// window and obtain the output a fault-free run would have published.
func (pub *Publisher) Publish(res *mining.Result, windowSize int) (*Output, error) {
	if res == nil {
		return nil, fmt.Errorf("core: nil mining result")
	}
	pub.classScratch, pub.memberScratch = fec.PartitionInto(res, pub.classScratch, pub.memberScratch)
	classes := pub.classScratch
	reusesBefore := pub.biasReuses
	t0 := time.Now()
	biases, err := pub.biasesFor(classes)
	optTook := time.Since(t0)
	pub.optDur += optTook
	pub.recordBiasOpt(optTook)
	pub.tr.Add(trace.KindBiasOpt, t0, optTook).
		Attr(trace.AttrBiasReused, int64(pub.biasReuses-reusesBefore))
	if err != nil {
		return nil, err
	}
	t0 = time.Now()
	defer func() { pub.perturbDur += time.Since(t0) }()
	alpha := pub.params.Alpha()
	half := alpha / 2

	pub.window++
	out := &Output{
		WindowSize: windowSize,
		Items:      make([]PublishedItemset, 0, fec.TotalMembers(classes)),
	}
	var hits, misses int
	if pub.workers > 1 {
		savedSrc := *pub.src
		hits, misses, err = pub.perturbChunked(out, classes, biases, half)
		if err != nil {
			// Roll back so a retry redraws the identical perturbation.
			*pub.src = savedSrc
			pub.window--
			return nil, err
		}
	} else {
		hits, misses = pub.perturbSequential(out, classes, biases, half)
	}
	slices.SortFunc(out.Items, func(a, b PublishedItemset) int {
		if a.Support != b.Support {
			return b.Support - a.Support
		}
		if a.Set.Len() != b.Set.Len() {
			return a.Set.Len() - b.Set.Len()
		}
		return itemset.Compare(a.Set, b.Set)
	})
	pub.sweepCache()
	// Observability, strictly after the output is final: cache traffic and
	// the window's §V-C posture (telemetry.go), plus the cache child span —
	// it covers the perturbation interval the cache served, carrying the
	// hit/miss tally. No-ops without a registry / trace window.
	pub.recordCache(hits, misses)
	pub.recordPosture(classes, out)
	cs := pub.tr.Add(trace.KindCache, t0, time.Since(t0))
	cs.Attr(trace.AttrCacheHits, int64(hits))
	cs.Attr(trace.AttrCacheMisses, int64(misses))
	return out, nil
}

// perturbSequential is the historical perturbation loop: one RNG stream,
// consumed class by class in support order. Its draw order — and therefore
// its output for a fixed seed — is frozen; the byte-compatibility of
// workers=1 publication with pre-parallel releases depends on it. The
// returned hit/miss tally feeds the cache-traffic telemetry.
//
// Shared-draw schemes consume exactly one draw per class, in class order, so
// those draws are batched through rng.FillIntRange — same values, same
// cursor, one call. The basic scheme's per-itemset draws interleave with the
// per-class ones and stay inline.
func (pub *Publisher) perturbSequential(out *Output, classes []fec.Class, biases []int, half int) (hits, misses int) {
	sharedDraws := pub.scheme.SharedDraws()
	var draws []int
	if sharedDraws {
		if cap(pub.drawScratch) < len(classes) {
			pub.drawScratch = make([]int, len(classes))
		}
		draws = pub.drawScratch[:len(classes)]
		pub.src.FillIntRange(-half, half, draws)
	}
	keyBuf := pub.keyBuf
	for ci, class := range classes {
		// One shared draw per FEC keeps intra-class equality (optimized
		// schemes); the basic scheme redraws per itemset.
		var sharedOffset int
		if sharedDraws {
			sharedOffset = biases[ci] + draws[ci]
		} else {
			sharedOffset = biases[ci] + pub.src.IntRange(-half, half)
		}
		for _, member := range class.Members {
			keyBuf = member.AppendKey(keyBuf[:0])
			e := pub.cache[string(keyBuf)] // alloc-free lookup
			var sanitized int
			if e != nil && !pub.cacheDisabled && e.trueSupport == class.Support {
				sanitized = e.sanitized
				hits++
			} else if sharedDraws {
				sanitized = class.Support + sharedOffset
				misses++
			} else {
				sanitized = class.Support + biases[ci] + pub.src.IntRange(-half, half)
				misses++
			}
			if e != nil {
				e.trueSupport = class.Support
				e.sanitized = sanitized
				e.lastSeen = pub.window
				pub.markDirty(e)
			} else {
				k := string(keyBuf)
				e = &cacheEntry{
					key:         k,
					trueSupport: class.Support,
					sanitized:   sanitized,
					lastSeen:    pub.window,
				}
				pub.cache[k] = e
				pub.markDirty(e)
			}
			out.Items = append(out.Items, PublishedItemset{Set: member, Support: sanitized})
		}
	}
	pub.keyBuf = keyBuf
	return hits, misses
}

// chunkItem is one perturbed itemset produced by a parallel chunk, carrying
// the cache update to apply after the fan-in. It deliberately carries no key
// string: workers probe the cache through a reusable byte buffer, and the
// single-goroutine fan-in recomputes keys the same way, so a window's worth
// of key strings is never materialized.
type chunkItem struct {
	set         itemset.Itemset
	trueSupport int
	sanitized   int
}

// perturbChunked is the parallel perturbation path. The FEC ladder is cut
// into fixed-size chunks of publishChunkClasses classes; chunk c draws from
// its own rng.Source seeded with Mix(windowSeed, c), where windowSeed is one
// draw from the publisher's stream. Chunk boundaries and seeds depend only on
// the data and the publisher's seed, never on the worker count, so any pool
// size >= 2 publishes identical output. The republication cache is read-only
// during the fan-out (the publisher goroutine is the only writer, and it
// writes only after wg.Wait), which keeps the path race-free.
// It returns an error — without writing any cache entry — if a worker
// panicked, so Publish can roll the publisher state back and stay
// retry-safe. The hit/miss tally is taken during the single-goroutine
// fan-in, where the cache still holds its pre-window content, so it equals
// the decisions the workers made against that same read-only view.
func (pub *Publisher) perturbChunked(out *Output, classes []fec.Class, biases []int, half int) (hits, misses int, err error) {
	windowSeed := pub.src.Uint64()
	nChunks := (len(classes) + publishChunkClasses - 1) / publishChunkClasses
	if nChunks == 0 {
		return 0, 0, nil
	}
	workers := pub.workers
	if workers > nChunks {
		workers = nChunks
	}
	sharedDraws := pub.scheme.SharedDraws()

	// Per-chunk buffers are publisher scratch: the slice-of-slices and each
	// chunk's backing array are reused window after window. Distinct workers
	// write distinct elements, so no synchronization beyond wg is needed.
	if cap(pub.perChunk) < nChunks {
		fresh := make([][]chunkItem, nChunks)
		copy(fresh, pub.perChunk)
		pub.perChunk = fresh
	}
	perChunk := pub.perChunk[:nChunks]

	// Chunks are claimed off a shared counter: if a worker dies to a
	// recovered panic, the survivors drain the remainder.
	var next atomic.Int64
	var panicOnce sync.Once
	var panicErr error
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if v := recover(); v != nil {
					panicOnce.Do(func() {
						panicErr = fmt.Errorf("core: perturbation worker panicked: %v", v)
					})
				}
			}()
			var keyBuf []byte
			var chunkDraws [publishChunkClasses]int
			for {
				c := int(next.Add(1)) - 1
				if c >= nChunks {
					return
				}
				if pub.chunkHook != nil {
					pub.chunkHook(c)
				}
				src := rng.New(rng.Mix(windowSeed, uint64(c)))
				start := c * publishChunkClasses
				end := start + publishChunkClasses
				if end > len(classes) {
					end = len(classes)
				}
				// Shared-draw schemes consume one draw per class from the
				// chunk's source, in order — batch them (see
				// perturbSequential); the basic scheme stays inline.
				var draws []int
				if sharedDraws {
					draws = chunkDraws[:end-start]
					src.FillIntRange(-half, half, draws)
				}
				local := perChunk[c][:0]
				for ci := start; ci < end; ci++ {
					class := classes[ci]
					var sharedOffset int
					if sharedDraws {
						sharedOffset = biases[ci] + draws[ci-start]
					} else {
						sharedOffset = biases[ci] + src.IntRange(-half, half)
					}
					for _, member := range class.Members {
						keyBuf = member.AppendKey(keyBuf[:0])
						// Read-only probe: the publisher goroutine writes the
						// cache only after wg.Wait.
						e := pub.cache[string(keyBuf)]
						var sanitized int
						if e != nil && !pub.cacheDisabled && e.trueSupport == class.Support {
							sanitized = e.sanitized
						} else if sharedDraws {
							sanitized = class.Support + sharedOffset
						} else {
							sanitized = class.Support + biases[ci] + src.IntRange(-half, half)
						}
						local = append(local, chunkItem{
							set:         member,
							trueSupport: class.Support,
							sanitized:   sanitized,
						})
					}
				}
				perChunk[c] = local
			}
		}()
	}
	wg.Wait()
	if panicErr != nil {
		return 0, 0, panicErr
	}

	keyBuf := pub.keyBuf
	for _, local := range perChunk {
		for _, it := range local {
			keyBuf = it.set.AppendKey(keyBuf[:0])
			e := pub.cache[string(keyBuf)]
			if e != nil && !pub.cacheDisabled && e.trueSupport == it.trueSupport {
				hits++
			} else {
				misses++
			}
			if e != nil {
				e.trueSupport = it.trueSupport
				e.sanitized = it.sanitized
				e.lastSeen = pub.window
				pub.markDirty(e)
			} else {
				k := string(keyBuf)
				e = &cacheEntry{
					key:         k,
					trueSupport: it.trueSupport,
					sanitized:   it.sanitized,
					lastSeen:    pub.window,
				}
				pub.cache[k] = e
				pub.markDirty(e)
			}
			out.Items = append(out.Items, PublishedItemset{Set: it.set, Support: it.sanitized})
		}
	}
	pub.keyBuf = keyBuf
	return hits, misses, nil
}

// SetWorkers selects the perturbation path of subsequent Publish calls.
//
// The determinism contract is two-tiered:
//
//   - workers <= 1 (the default) runs the historical sequential draw order;
//     output is byte-identical to pre-parallel releases for a fixed seed.
//   - workers >= 2 runs the chunked-RNG parallel order; output is identical
//     for EVERY worker count >= 2 with a fixed seed, because chunk boundaries
//     and per-chunk seeds are functions of the data alone.
//
// The two tiers draw different random offsets (one stream vs. one stream per
// chunk), so workers=1 and workers=2 outputs differ — both are deterministic,
// equally calibrated, and equally private.
func (pub *Publisher) SetWorkers(workers int) {
	if workers < 1 {
		workers = 1
	}
	pub.workers = workers
}

// SetTrace directs the next Publish call's bias-optimization and
// republication-cache child spans into w, the current window of the
// in-process flight recorder (nil detaches). Tracing is observation-only —
// it never influences published values. The pipeline's perturb stage calls
// this once per window, before Publish, so the spans nest under the right
// window track.
func (pub *Publisher) SetTrace(w *trace.Window) { pub.tr = w }

// Workers reports the configured perturbation parallelism (see SetWorkers).
func (pub *Publisher) Workers() int {
	if pub.workers < 1 {
		return 1
	}
	return pub.workers
}

// biasesFor computes (or reuses) the per-class biases. The bias of a class
// depends only on its support and size plus its neighbours' (all schemes are
// functions of the FEC ladder), so when the ladder repeats between windows —
// the common case under a slide of one record — the previous result is
// returned without re-running the optimization.
// A scheme returning the wrong number of biases is rejected BEFORE the memo
// is written, so a misbehaving call can never poison later windows.
func (pub *Publisher) biasesFor(classes []fec.Class) ([]int, error) {
	ladder := pub.ladderScratch[:0]
	for _, c := range classes {
		ladder = append(ladder, ladderRung{support: c.Support, size: c.Size()})
	}
	pub.ladderScratch = ladder
	if pub.lastBiases != nil && sameLadder(ladder, pub.lastLadder) {
		pub.biasReuses++
		pub.recordBiasReuse()
		return pub.lastBiases, nil
	}
	biases := pub.scheme.Biases(classes, pub.params)
	if len(biases) != len(classes) {
		return nil, fmt.Errorf("core: scheme %s returned %d biases for %d classes",
			pub.scheme.Name(), len(biases), len(classes))
	}
	// The memo must survive the scratch's next reuse: copy, reusing the
	// memo's own capacity.
	pub.lastLadder = append(pub.lastLadder[:0], ladder...)
	pub.lastBiases = biases
	return biases, nil
}

func sameLadder(a, b []ladderRung) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// BiasReuses reports how many Publish calls reused the previous window's
// bias optimization (diagnostics for the incremental path).
func (pub *Publisher) BiasReuses() int { return pub.biasReuses }

// sweepCache evicts entries for itemsets that have not been published
// recently, bounding memory on long streams without re-randomizing values
// that reappear quickly with unchanged support.
func (pub *Publisher) sweepCache() {
	if pub.window%16 != 0 {
		return
	}
	for k, e := range pub.cache {
		if pub.window-e.lastSeen > pub.maxCacheAge {
			delete(pub.cache, k)
			if pub.deltaTrack {
				pub.evictedKeys = append(pub.evictedKeys, k)
			}
		}
	}
}

// markDirty records e in the dirty list the first time it is touched inside
// the current baseline interval. A cache hit that merely refreshes lastSeen
// still counts: lastSeen drives future age-sweep evictions, which influence
// published bytes, so it must travel in the delta.
func (pub *Publisher) markDirty(e *cacheEntry) {
	if pub.deltaTrack && !e.dirty {
		e.dirty = true
		pub.dirtyCache = append(pub.dirtyCache, e)
	}
}

// CacheLen reports the number of live republication-cache entries
// (diagnostics and tests).
func (pub *Publisher) CacheLen() int { return len(pub.cache) }

// SetRepublicationCache enables or disables consistent republication
// (enabled by default). Disabling it redraws the perturbation every window
// even for unchanged supports — DELIBERATELY INSECURE: it re-opens the
// averaging attack of Prior Knowledge 2 and exists only so experiments and
// tests can demonstrate that attack.
func (pub *Publisher) SetRepublicationCache(enabled bool) {
	pub.cacheDisabled = !enabled
}

// Timing reports the cumulative time spent in bias optimization (the "Opt"
// cost of the paper's Fig. 8) and in the perturbation/publication itself
// (the "Basic" cost), across all Publish calls so far.
func (pub *Publisher) Timing() (opt, perturb time.Duration) {
	return pub.optDur, pub.perturbDur
}
