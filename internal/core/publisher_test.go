package core

import (
	"fmt"
	"math"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/fec"
	"repro/internal/itemset"
	"repro/internal/mining"
	"repro/internal/rng"
)

func resultWith(t *testing.T, pairs map[int][]itemset.Itemset) *mining.Result {
	t.Helper()
	var sets []mining.FrequentItemset
	for sup, members := range pairs {
		for _, m := range members {
			sets = append(sets, mining.FrequentItemset{Set: m, Support: sup})
		}
	}
	return mining.NewResult(25, sets)
}

func TestNewPublisherValidates(t *testing.T) {
	if _, err := NewPublisher(Params{}, nil, rng.New(1)); err == nil {
		t.Error("invalid params accepted")
	}
	pub, err := NewPublisher(testParams(), nil, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if pub.Scheme().Name() != "basic" {
		t.Error("nil scheme did not default to basic")
	}
}

func TestNewPublisherPanicsOnNilSource(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil source did not panic")
		}
	}()
	_, _ = NewPublisher(testParams(), nil, nil)
}

func TestPublishPerturbsWithinRegion(t *testing.T) {
	p := testParams()
	pub, err := NewPublisher(p, Basic{}, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	res := resultWith(t, map[int][]itemset.Itemset{
		25: {itemset.New(1)},
		40: {itemset.New(2)},
		90: {itemset.New(3)},
	})
	out, err := pub.Publish(res, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 3 || out.WindowSize != 2000 {
		t.Fatalf("output shape wrong: %d items", out.Len())
	}
	half := p.Alpha() / 2
	for _, fi := range res.Itemsets {
		san, ok := out.Support(fi.Set)
		if !ok {
			t.Fatalf("itemset %v missing from output", fi.Set)
		}
		if d := san - fi.Support; d < -half || d > half {
			t.Errorf("basic offset %d outside ±%d", d, half)
		}
	}
}

func TestPublishEmptyResult(t *testing.T) {
	pub, _ := NewPublisher(testParams(), nil, rng.New(1))
	out, err := pub.Publish(mining.NewResult(25, nil), 100)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Errorf("empty result published %d items", out.Len())
	}
}

func TestPublishNilResult(t *testing.T) {
	pub, _ := NewPublisher(testParams(), nil, rng.New(1))
	if _, err := pub.Publish(nil, 100); err == nil {
		t.Error("nil result accepted")
	}
}

// Prior Knowledge 2: unchanged supports republish the identical sanitized
// value across consecutive windows, blocking the averaging attack.
func TestConsistentRepublication(t *testing.T) {
	pub, _ := NewPublisher(testParams(), Basic{}, rng.New(3))
	res := resultWith(t, map[int][]itemset.Itemset{
		40: {itemset.New(1)},
		60: {itemset.New(2)},
	})
	first, err := pub.Publish(res, 100)
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w < 50; w++ {
		out, err := pub.Publish(res, 100)
		if err != nil {
			t.Fatal(err)
		}
		for _, item := range first.Items {
			got, ok := out.Support(item.Set)
			if !ok || got != item.Support {
				t.Fatalf("window %d: republished %d, first was %d", w, got, item.Support)
			}
		}
	}
}

func TestRepublicationRedrawsOnSupportChange(t *testing.T) {
	pub, _ := NewPublisher(testParams(), Basic{}, rng.New(3))
	mk := func(sup int) *mining.Result {
		return resultWith(t, map[int][]itemset.Itemset{sup: {itemset.New(1)}})
	}
	// Publish at support 40 repeatedly, then change to 41: the cached value
	// must not persist (E[T̃] tracks the new support).
	var v40 int
	out, _ := pub.Publish(mk(40), 100)
	v40, _ = out.Support(itemset.New(1))
	out2, _ := pub.Publish(mk(40), 100)
	if got, _ := out2.Support(itemset.New(1)); got != v40 {
		t.Fatal("same support did not republish")
	}
	// After the change the published value must center on 41, and over many
	// redraw trials differ from the old cached value at least sometimes.
	diff := false
	for i := 0; i < 20; i++ {
		o41, _ := pub.Publish(mk(41), 100)
		got, _ := o41.Support(itemset.New(1))
		if got != v40 {
			diff = true
		}
		o40, _ := pub.Publish(mk(40), 100)
		if got, _ = o40.Support(itemset.New(1)); got == 0 {
			t.Fatal("lost itemset")
		}
	}
	if !diff {
		t.Error("support change never produced a fresh draw")
	}
}

// The averaging attack the republication cache blocks: publishing the same
// support W times must NOT let the mean of observations converge to the
// true support any better than a single observation.
func TestRepublicationBlocksAveraging(t *testing.T) {
	p := testParams()
	const trials = 300
	var errCached, errFresh float64
	for seed := 0; seed < trials; seed++ {
		pub, _ := NewPublisher(p, Basic{}, rng.New(uint64(seed)))
		res := resultWith(t, map[int][]itemset.Itemset{40: {itemset.New(1)}})
		sum := 0.0
		const windows = 30
		for w := 0; w < windows; w++ {
			out, _ := pub.Publish(res, 100)
			v, _ := out.Support(itemset.New(1))
			sum += float64(v)
		}
		avg := sum / windows
		errCached += (avg - 40) * (avg - 40)

		// A broken publisher that redraws every window: averaging works.
		src := rng.New(uint64(seed) + 7777)
		sum = 0
		half := p.Alpha() / 2
		for w := 0; w < windows; w++ {
			sum += float64(40 + src.IntRange(-half, half))
		}
		avg = sum / windows
		errFresh += (avg - 40) * (avg - 40)
	}
	errCached /= trials
	errFresh /= trials
	// With the cache the averaging error stays at full single-draw variance;
	// without it the error shrinks by ~the number of windows.
	if errCached < 3*errFresh {
		t.Errorf("averaging attack not blocked: cached MSE %v vs fresh MSE %v",
			errCached, errFresh)
	}
}

// Shared draws keep FEC members identical after sanitization.
func TestSharedDrawsPreserveFECEquality(t *testing.T) {
	pub, _ := NewPublisher(testParams(), RatioPreserving{}, rng.New(5))
	res := resultWith(t, map[int][]itemset.Itemset{
		40: {itemset.New(1), itemset.New(2), itemset.New(3)},
		70: {itemset.New(4), itemset.New(5)},
	})
	out, err := pub.Publish(res, 100)
	if err != nil {
		t.Fatal(err)
	}
	v1, _ := out.Support(itemset.New(1))
	v2, _ := out.Support(itemset.New(2))
	v3, _ := out.Support(itemset.New(3))
	if v1 != v2 || v2 != v3 {
		t.Errorf("FEC members diverged: %d %d %d", v1, v2, v3)
	}
	v4, _ := out.Support(itemset.New(4))
	v5, _ := out.Support(itemset.New(5))
	if v4 != v5 {
		t.Errorf("FEC members diverged: %d %d", v4, v5)
	}
}

// Empirical moments of the basic perturbation: mean ≈ true support (zero
// bias), variance ≈ σ².
func TestPerturbationMoments(t *testing.T) {
	p := testParams()
	const trials = 20000
	src := rng.New(99)
	var sum, sumSq float64
	for i := 0; i < trials; i++ {
		pub, _ := NewPublisher(p, Basic{}, src.Split())
		res := resultWith(t, map[int][]itemset.Itemset{50: {itemset.New(1)}})
		out, _ := pub.Publish(res, 100)
		v, _ := out.Support(itemset.New(1))
		sum += float64(v)
		sumSq += float64(v) * float64(v)
	}
	mean := sum / trials
	variance := sumSq/trials - mean*mean
	if math.Abs(mean-50) > 0.1 {
		t.Errorf("mean = %v, want ≈ 50", mean)
	}
	if math.Abs(variance-p.Sigma2())/p.Sigma2() > 0.06 {
		t.Errorf("variance = %v, want ≈ σ² = %v", variance, p.Sigma2())
	}
}

func TestOutputSortedBySanitizedSupport(t *testing.T) {
	pub, _ := NewPublisher(testParams(), Basic{}, rng.New(11))
	res := resultWith(t, map[int][]itemset.Itemset{
		30: {itemset.New(1)}, 60: {itemset.New(2)}, 90: {itemset.New(3)},
	})
	out, _ := pub.Publish(res, 100)
	for i := 1; i < len(out.Items); i++ {
		if out.Items[i].Support > out.Items[i-1].Support {
			t.Fatal("output not sorted by descending sanitized support")
		}
	}
}

func TestCacheSweep(t *testing.T) {
	pub, _ := NewPublisher(testParams(), Basic{}, rng.New(13))
	pub.maxCacheAge = 4
	// Publish an itemset once, then keep publishing a different one.
	resA := resultWith(t, map[int][]itemset.Itemset{40: {itemset.New(1)}})
	resB := resultWith(t, map[int][]itemset.Itemset{40: {itemset.New(2)}})
	if _, err := pub.Publish(resA, 100); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if _, err := pub.Publish(resB, 100); err != nil {
			t.Fatal(err)
		}
	}
	if pub.CacheLen() != 1 {
		t.Errorf("cache has %d entries after sweep, want 1", pub.CacheLen())
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	run := func() []int {
		pub, _ := NewPublisher(testParams(), Hybrid{Lambda: 0.4}, rng.New(42))
		res := resultWith(t, map[int][]itemset.Itemset{
			30: {itemset.New(1)}, 55: {itemset.New(2), itemset.New(3)},
		})
		out, _ := pub.Publish(res, 100)
		var vals []int
		for _, it := range out.Items {
			vals = append(vals, it.Support)
		}
		return vals
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different outputs")
		}
	}
}

// The incremental bias path: identical FEC ladders across windows reuse the
// optimization; a changed ladder recomputes.
func TestIncrementalBiasReuse(t *testing.T) {
	pub, _ := NewPublisher(testParams(), OrderPreserving{Gamma: 2}, rng.New(21))
	resA := resultWith(t, map[int][]itemset.Itemset{
		30: {itemset.New(1)}, 35: {itemset.New(2)},
	})
	// Same ladder, different member identity: still reusable.
	resB := resultWith(t, map[int][]itemset.Itemset{
		30: {itemset.New(9)}, 35: {itemset.New(2)},
	})
	resC := resultWith(t, map[int][]itemset.Itemset{
		30: {itemset.New(1)}, 36: {itemset.New(2)},
	})
	for _, r := range []*mining.Result{resA, resA, resB} {
		if _, err := pub.Publish(r, 100); err != nil {
			t.Fatal(err)
		}
	}
	if got := pub.BiasReuses(); got != 2 {
		t.Errorf("BiasReuses = %d after identical ladders, want 2", got)
	}
	if _, err := pub.Publish(resC, 100); err != nil {
		t.Fatal(err)
	}
	if got := pub.BiasReuses(); got != 2 {
		t.Errorf("BiasReuses = %d after ladder change, want still 2", got)
	}
}

// Bias reuse must not change published values relative to a publisher that
// recomputes every window: the biases are a pure function of the ladder.
func TestIncrementalBiasReuseSemanticsUnchanged(t *testing.T) {
	res := resultWith(t, map[int][]itemset.Itemset{
		30: {itemset.New(1)}, 40: {itemset.New(2)}, 55: {itemset.New(3)},
	})
	classes := fec.Partition(res)
	p := testParams()
	scheme := Hybrid{Lambda: 0.4}
	want := scheme.Biases(classes, p)
	pub, _ := NewPublisher(p, scheme, rng.New(5))
	if _, err := pub.Publish(res, 100); err != nil {
		t.Fatal(err)
	}
	got, err := pub.biasesFor(classes) // second call: the reuse path
	if err != nil {
		t.Fatal(err)
	}
	if pub.BiasReuses() != 1 {
		t.Fatalf("reuse path not taken")
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("reused bias[%d] = %d, fresh computation gives %d", i, got[i], want[i])
		}
	}
}

// flakyScheme misbehaves (wrong bias count) for its first failUntil calls,
// then delegates to the wrapped scheme. It drives the Publish error paths
// that the retry-safety contract covers.
type flakyScheme struct {
	Scheme
	calls     int
	failUntil int
}

func (s *flakyScheme) Biases(classes []fec.Class, p Params) []int {
	s.calls++
	if s.calls <= s.failUntil {
		return nil // wrong length: rejected by the publisher
	}
	return s.Scheme.Biases(classes, p)
}

// TestPublishRetrySafeAfterSchemeError: a Publish call that fails must leave
// the publisher state (window counter, RNG, cache, bias memo) untouched, so
// the retried call publishes exactly what a fault-free publisher would have.
func TestPublishRetrySafeAfterSchemeError(t *testing.T) {
	res := resultWith(t, map[int][]itemset.Itemset{
		30: {itemset.New(1), itemset.New(2)}, 40: {itemset.New(3)}, 55: {itemset.New(1, 3)},
	})
	p := testParams()
	for _, workers := range []int{1, 4} {
		flaky, _ := NewPublisher(p, &flakyScheme{Scheme: Hybrid{Lambda: 0.4}, failUntil: 1}, rng.New(9))
		flaky.SetWorkers(workers)
		if _, err := flaky.Publish(res, 100); err == nil {
			t.Fatalf("workers=%d: misbehaving scheme accepted", workers)
		}
		got, err := flaky.Publish(res, 100) // the retry
		if err != nil {
			t.Fatalf("workers=%d: retry failed: %v", workers, err)
		}

		clean, _ := NewPublisher(p, Hybrid{Lambda: 0.4}, rng.New(9))
		clean.SetWorkers(workers)
		want, err := clean.Publish(res, 100)
		if err != nil {
			t.Fatal(err)
		}
		sameOutputs(t, fmt.Sprintf("retry after scheme error, workers=%d", workers),
			[]*Output{want}, []*Output{got})
	}
}

// TestPublishRecoversWorkerPanic: a panic inside a parallel perturbation
// chunk is recovered into an error, the publisher state rolls back, and the
// retried Publish matches a fault-free run byte for byte.
func TestPublishRecoversWorkerPanic(t *testing.T) {
	res := resultWith(t, map[int][]itemset.Itemset{
		30: {itemset.New(1), itemset.New(2)}, 40: {itemset.New(3)},
		55: {itemset.New(1, 3)}, 70: {itemset.New(4)}, 90: {itemset.New(5)},
	})
	p := testParams()
	flaky, _ := NewPublisher(p, Hybrid{Lambda: 0.4}, rng.New(9))
	flaky.SetWorkers(4)
	var fired atomic.Bool
	flaky.chunkHook = func(int) {
		if fired.CompareAndSwap(false, true) {
			panic("injected chunk panic")
		}
	}
	if _, err := flaky.Publish(res, 100); err == nil {
		t.Fatal("worker panic not surfaced as an error")
	} else if !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("unexpected error: %v", err)
	}
	if flaky.CacheLen() != 0 {
		t.Fatalf("failed publish wrote %d cache entries", flaky.CacheLen())
	}
	flaky.chunkHook = nil
	got, err := flaky.Publish(res, 100)
	if err != nil {
		t.Fatalf("retry failed: %v", err)
	}

	clean, _ := NewPublisher(p, Hybrid{Lambda: 0.4}, rng.New(9))
	clean.SetWorkers(4)
	want, err := clean.Publish(res, 100)
	if err != nil {
		t.Fatal(err)
	}
	sameOutputs(t, "retry after worker panic", []*Output{want}, []*Output{got})
}
