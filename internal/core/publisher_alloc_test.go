package core

// Allocation pins for the publish hot path. The publisher's per-window
// scratch (FEC arena, ladder memo, batched draws, key buffer, pointer-backed
// republication cache) exists so a steady-state window costs a handful of
// allocations — the Output header and its Items backing — rather than one
// or more per published itemset. These tests pin that property with
// testing.AllocsPerRun so a regression (a map rebuilt per window, a key
// string interned per itemset, a comparator allocating per comparison)
// fails loudly with a number attached.
//
// The bounds are per-WINDOW and deliberately leave headroom over the
// measured steady state (single digits at workers=1; a few dozen at
// workers=8, which pays per-goroutine setup): they are tripwires for
// per-itemset regressions — the mined windows here hold ~140 itemsets, so
// even a single alloc-per-itemset defect blows through them.

import (
	"fmt"
	"testing"

	"repro/internal/itemset"
	"repro/internal/mining"
)

// pinBounds: measured steady state is ~5 allocs/window at workers=1 and
// ~35 at workers=8 (8 goroutines + their key buffers + scheduling).
const (
	allocBoundSequential = 16
	allocBoundChunked    = 96
)

// denseResult builds a window with nClasses FECs of perClass itemsets each —
// dense enough that a per-itemset allocation regression overshoots the pin
// by an order of magnitude.
func denseResult(nClasses, perClass, baseSupport int) *mining.Result {
	var sets []mining.FrequentItemset
	next := itemset.Item(0)
	for c := 0; c < nClasses; c++ {
		for k := 0; k < perClass; k++ {
			sets = append(sets, mining.FrequentItemset{
				Set:     itemset.New(next, next+1, next+2),
				Support: baseSupport + c,
			})
			next += 3
		}
	}
	return mining.NewResult(baseSupport, sets)
}

func pinPublishAllocs(t *testing.T, workers int, cacheHits bool) {
	if raceEnabled {
		t.Skip("allocation pins are meaningless under the race detector's shadow allocations")
	}
	pub := newTestPublisher(t, Hybrid{Lambda: 0.4})
	pub.SetWorkers(workers)
	if !cacheHits {
		// DELIBERATELY INSECURE test mode: disabling consistent
		// republication forces the miss path every window.
		pub.SetRepublicationCache(false)
	}
	steady := denseResult(40, 10, 12)
	// Warm-up: populate the cache, grow every scratch buffer to the
	// window's high-water mark, and warm the bias memo.
	for i := 0; i < 5; i++ {
		if _, err := pub.Publish(steady, 150); err != nil {
			t.Fatal(err)
		}
	}
	bound := float64(allocBoundSequential)
	if workers > 1 {
		bound = allocBoundChunked
	}
	allocs := testing.AllocsPerRun(32, func() {
		if _, err := pub.Publish(steady, 150); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("workers=%d cacheHits=%v: %.1f allocs/window for %d itemsets", workers, cacheHits, allocs, steady.Len())
	if allocs > bound {
		t.Errorf("steady-state Publish allocates %.1f objects/window (workers=%d, cacheHits=%v, %d itemsets), want <= %.0f",
			allocs, workers, cacheHits, steady.Len(), bound)
	}
	// The pin must also stay far below one alloc per itemset — the regime
	// the flat buffers replaced.
	if allocs > float64(steady.Len())/2 {
		t.Errorf("steady-state Publish allocates %.1f objects for %d itemsets — per-itemset allocation is back",
			allocs, steady.Len())
	}
}

func TestPublishAllocsPinned(t *testing.T) {
	for _, workers := range []int{1, 8} {
		for _, hits := range []bool{true, false} {
			name := fmt.Sprintf("workers=%d/hits=%v", workers, hits)
			t.Run(name, func(t *testing.T) { pinPublishAllocs(t, workers, hits) })
		}
	}
}
