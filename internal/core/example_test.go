package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/itemset"
	"repro/internal/mining"
	"repro/internal/rng"
)

// ExamplePublisher sanitizes one window's mining result: the published
// supports are perturbed within the calibrated region, so exact values are
// not reproducible in documentation — but their count and membership are.
func ExamplePublisher() {
	params := core.Params{Epsilon: 0.04, Delta: 0.4, MinSupport: 25, VulnSupport: 5}
	pub, err := core.NewPublisher(params, core.Hybrid{Lambda: 0.4}, rng.New(1))
	if err != nil {
		panic(err)
	}
	res := mining.NewResult(25, []mining.FrequentItemset{
		{Set: itemset.New(0), Support: 120},
		{Set: itemset.New(1), Support: 90},
		{Set: itemset.New(0, 1), Support: 60},
	})
	out, err := pub.Publish(res, 2000)
	if err != nil {
		panic(err)
	}
	fmt.Println("published itemsets:", out.Len())
	san, _ := out.Support(itemset.New(0, 1))
	fmt.Println("sanitized value within ±20% of 60:", san > 48 && san < 72)
	// Output:
	// published itemsets: 3
	// sanitized value within ±20% of 60: true
}

// ExampleParams_Validate shows the feasibility rule ε/δ >= K²/(2C²).
func ExampleParams_Validate() {
	ok := core.Params{Epsilon: 0.016, Delta: 0.4, MinSupport: 25, VulnSupport: 5}
	bad := core.Params{Epsilon: 0.001, Delta: 1.0, MinSupport: 25, VulnSupport: 20}
	fmt.Println("paper defaults feasible:", ok.Validate() == nil)
	fmt.Println("starved ppr feasible:", bad.Validate() == nil)
	fmt.Printf("minimum ε/δ at C=25, K=5: %.3g\n", ok.MinPPR())
	// Output:
	// paper defaults feasible: true
	// starved ppr feasible: false
	// minimum ε/δ at C=25, K=5: 0.02
}
