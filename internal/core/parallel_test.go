package core

// Regression tests for the chunked-RNG parallel publication path. The
// determinism contract under test (see Publisher.SetWorkers):
//
//   - workers <= 1 is the frozen historical sequential draw order;
//   - every worker count >= 2 publishes byte-identical output for a fixed
//     seed, because chunk boundaries and per-chunk seeds are functions of
//     the data alone, never of the pool size.

import (
	"testing"

	"repro/internal/data"
	"repro/internal/itemset"
	"repro/internal/mining"
	"repro/internal/rng"
)

// minedWindows mines a few overlapping windows of a synthetic stream,
// giving the publisher a realistic multi-window workload (changing supports
// exercise both cache hits and fresh draws).
func minedWindows(t *testing.T) []*mining.Result {
	t.Helper()
	gen := data.WebViewLike(3)
	records := gen.Generate(900)
	var out []*mining.Result
	for start := 0; start+600 <= len(records); start += 100 {
		db := itemset.NewDatabase(records[start : start+600])
		res, err := mining.Eclat(db, 12)
		if err != nil {
			t.Fatal(err)
		}
		if res.Len() == 0 {
			t.Fatal("empty window, workload too sparse")
		}
		out = append(out, res)
	}
	return out
}

func publishAll(t *testing.T, workers int, scheme Scheme, results []*mining.Result) []*Output {
	t.Helper()
	p := Params{Epsilon: 0.1, Delta: 0.4, MinSupport: 12, VulnSupport: 5}
	pub, err := NewPublisher(p, scheme, rng.New(99))
	if err != nil {
		t.Fatal(err)
	}
	if workers > 0 {
		pub.SetWorkers(workers)
	}
	outs := make([]*Output, len(results))
	for i, res := range results {
		out, err := pub.Publish(res, 600)
		if err != nil {
			t.Fatal(err)
		}
		outs[i] = out
	}
	return outs
}

func sameOutputs(t *testing.T, label string, a, b []*Output) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d vs %d windows", label, len(a), len(b))
	}
	for w := range a {
		if a[w].Len() != b[w].Len() {
			t.Fatalf("%s: window %d has %d vs %d itemsets", label, w, a[w].Len(), b[w].Len())
		}
		for i := range a[w].Items {
			x, y := a[w].Items[i], b[w].Items[i]
			if !x.Set.Equal(y.Set) || x.Support != y.Support {
				t.Fatalf("%s: window %d item %d: %v/%d vs %v/%d",
					label, w, i, x.Set, x.Support, y.Set, y.Support)
			}
		}
	}
}

// TestChunkedPublishWorkerCountInvariance publishes the same multi-window
// stream with pools of 2, 3, 5 and 8 workers and requires identical output
// from all of them, for both a shared-draw scheme and the per-itemset Basic
// scheme.
func TestChunkedPublishWorkerCountInvariance(t *testing.T) {
	results := minedWindows(t)
	for _, scheme := range []Scheme{Basic{}, Hybrid{Lambda: 0.4}} {
		ref := publishAll(t, 2, scheme, results)
		for _, workers := range []int{3, 5, 8} {
			got := publishAll(t, workers, scheme, results)
			sameOutputs(t, scheme.Name(), ref, got)
		}
	}
}

// TestSequentialPathUnchangedBySetWorkers pins that SetWorkers(1) and the
// default (never calling SetWorkers) are the same frozen draw order.
func TestSequentialPathUnchangedBySetWorkers(t *testing.T) {
	results := minedWindows(t)
	sameOutputs(t, "workers=1 vs default",
		publishAll(t, 0, Basic{}, results),
		publishAll(t, 1, Basic{}, results))
}

// TestChunkedPublishStaysInPerturbationRegion checks the (ε, δ) calibration
// is honoured by the parallel path: under the Basic scheme (bias 0) every
// sanitized support stays within α/2 of the true support.
func TestChunkedPublishStaysInPerturbationRegion(t *testing.T) {
	results := minedWindows(t)
	p := Params{Epsilon: 0.1, Delta: 0.4, MinSupport: 12, VulnSupport: 5}
	half := p.Alpha() / 2
	outs := publishAll(t, 4, Basic{}, results)
	for w, out := range outs {
		for _, item := range out.Items {
			trueSup, ok := results[w].Support(item.Set)
			if !ok {
				t.Fatalf("window %d published unmined itemset %v", w, item.Set)
			}
			if diff := item.Support - trueSup; diff < -half || diff > half {
				t.Fatalf("window %d: %v perturbed by %d, outside ±%d", w, item.Set, diff, half)
			}
		}
	}
}

// TestChunkedPublishRepublishesConsistently pins that the republication
// cache works identically under the parallel path: republishing a window
// whose supports did not change returns the same sanitized values.
func TestChunkedPublishRepublishesConsistently(t *testing.T) {
	results := minedWindows(t)
	p := Params{Epsilon: 0.1, Delta: 0.4, MinSupport: 12, VulnSupport: 5}
	pub, err := NewPublisher(p, Hybrid{Lambda: 0.4}, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	pub.SetWorkers(4)
	first, err := pub.Publish(results[0], 600)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		again, err := pub.Publish(results[0], 600)
		if err != nil {
			t.Fatal(err)
		}
		sameOutputs(t, "republication", []*Output{first}, []*Output{again})
	}
}

// TestChunkedSharedDrawsKeepClassesEqual checks that under shared-draw
// schemes all members of a frequency equivalence class still publish the
// same sanitized value when perturbed by the chunked path (the chunk split
// is by class, so a class never straddles two RNG streams). The
// republication cache is disabled because a cache hit from an earlier
// window legitimately differs from the current window's class draw — in the
// sequential path just the same.
func TestChunkedSharedDrawsKeepClassesEqual(t *testing.T) {
	results := minedWindows(t)
	p := Params{Epsilon: 0.1, Delta: 0.4, MinSupport: 12, VulnSupport: 5}
	pub, err := NewPublisher(p, Hybrid{Lambda: 0.4}, rng.New(99))
	if err != nil {
		t.Fatal(err)
	}
	pub.SetWorkers(8)
	pub.SetRepublicationCache(false)
	outs := make([]*Output, len(results))
	for i, res := range results {
		if outs[i], err = pub.Publish(res, 600); err != nil {
			t.Fatal(err)
		}
	}
	for w, out := range outs {
		byTrue := map[int]int{} // true support -> sanitized
		for _, item := range out.Items {
			trueSup, _ := results[w].Support(item.Set)
			if prev, seen := byTrue[trueSup]; seen && prev != item.Support {
				t.Fatalf("window %d: class with support %d published both %d and %d",
					w, trueSup, prev, item.Support)
			}
			byTrue[trueSup] = item.Support
		}
	}
}
