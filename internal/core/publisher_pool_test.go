package core

// Regression tests for the publisher's per-window scratch reuse (the FEC
// partition arena, ladder memo, batched draws, key buffer, and per-chunk
// buffers): published output must be byte-identical run over run, and an
// Output handed out by Publish must never be disturbed by later windows
// reusing the scratch it was assembled from.

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/data"
	"repro/internal/mining"
	"repro/internal/mining/moment"
	"repro/internal/rng"
)

// poolTestSchemes covers the shared-draw (batched RNG) and per-itemset draw
// paths plus the DP-backed scheme whose biases exercise the ladder memo.
func poolTestSchemes() []Scheme {
	return []Scheme{Basic{}, Hybrid{Lambda: 0.4}, OrderPreserving{}}
}

// minedSequence mines a deterministic multi-window snapshot sequence: a
// fixed synthetic stream through the incremental miner, snapshotting every
// publishEvery slides. The publisher sees exactly what the pipeline would
// hand it, including windows whose supports shift (cache misses) and
// windows whose supports repeat (cache hits).
func minedSequence(t *testing.T) []*mining.Result {
	t.Helper()
	const (
		window       = 150
		publishEvery = 25
		records      = 900
	)
	m := moment.New(window, 8)
	var out []*mining.Result
	for pos, rec := range data.WebViewLike(5).Generate(records) {
		m.Push(rec)
		if pos+1 >= window && (pos+1-window)%publishEvery == 0 {
			out = append(out, m.Frequent())
		}
	}
	if len(out) < 20 {
		t.Fatalf("only %d snapshots mined, want >= 20 for a meaningful reuse test", len(out))
	}
	return out
}

// renderOutput canonicalizes an Output: every itemset key and sanitized
// support in published order.
func renderOutput(out *Output) string {
	var b strings.Builder
	fmt.Fprintf(&b, "H=%d\n", out.WindowSize)
	for _, it := range out.Items {
		fmt.Fprintf(&b, "%s %d\n", it.Set.Key(), it.Support)
	}
	return b.String()
}

// publishSequence runs the snapshot sequence through one fresh publisher
// and returns the retained Outputs plus each window's render taken at
// publication time.
func publishSequence(t *testing.T, scheme Scheme, workers int, seq []*mining.Result) (outs []*Output, renders []string) {
	t.Helper()
	pub := newTestPublisher(t, scheme)
	pub.SetWorkers(workers)
	for _, res := range seq {
		out, err := pub.Publish(res, 150)
		if err != nil {
			t.Fatal(err)
		}
		outs = append(outs, out)
		renders = append(renders, renderOutput(out))
	}
	return outs, renders
}

func newTestPublisher(t *testing.T, scheme Scheme) *Publisher {
	t.Helper()
	pub, err := NewPublisher(Params{Epsilon: 0.1, Delta: 0.4, MinSupport: 10, VulnSupport: 5},
		scheme, rng.New(41))
	if err != nil {
		t.Fatal(err)
	}
	return pub
}

// TestPooledPublishRunIdentity runs the same seeded snapshot sequence
// through two independent publishers at every worker tier and requires
// byte-identical output — the scratch arenas must be invisible to the
// published bytes.
func TestPooledPublishRunIdentity(t *testing.T) {
	seq := minedSequence(t)
	for _, scheme := range poolTestSchemes() {
		for _, workers := range []int{1, 2, 8} {
			t.Run(fmt.Sprintf("%s/workers=%d", scheme.Name(), workers), func(t *testing.T) {
				_, run1 := publishSequence(t, scheme, workers, seq)
				_, run2 := publishSequence(t, scheme, workers, seq)
				for i := range run1 {
					if run1[i] != run2[i] {
						t.Fatalf("window %d differs between identical runs:\n--- run1 ---\n%s--- run2 ---\n%s",
							i, run1[i], run2[i])
					}
				}
			})
		}
	}
}

// TestPooledPublishDoesNotCorruptRetainedOutputs is the aliasing detector:
// every Output is re-rendered AFTER the whole sequence has been published
// and must equal the render taken when it was handed out. If any published
// window aliased publisher scratch, a later window's reuse would have
// scribbled over it.
func TestPooledPublishDoesNotCorruptRetainedOutputs(t *testing.T) {
	seq := minedSequence(t)
	for _, scheme := range poolTestSchemes() {
		for _, workers := range []int{1, 8} {
			t.Run(fmt.Sprintf("%s/workers=%d", scheme.Name(), workers), func(t *testing.T) {
				outs, renders := publishSequence(t, scheme, workers, seq)
				for i, out := range outs {
					if got := renderOutput(out); got != renders[i] {
						t.Fatalf("window %d was mutated after publication (scratch aliasing):\n--- at publish ---\n%s--- now ---\n%s",
							i, renders[i], got)
					}
				}
			})
		}
	}
}

// TestMineIntoRecycledIdentity pins the miner-side half of the window pool:
// mining into a recycled result buffer yields snapshots identical to fresh
// allocation, window after window.
func TestMineIntoRecycledIdentity(t *testing.T) {
	const window, every = 150, 25
	fresh := moment.New(window, 8)
	pooled := moment.New(window, 8)
	var recycled *mining.Result
	var lastRender string
	for pos, rec := range data.WebViewLike(5).Generate(900) {
		fresh.Push(rec)
		pooled.Push(rec)
		if pos+1 >= window && (pos+1-window)%every == 0 {
			want := fresh.Frequent()
			recycled = pooled.FrequentInto(recycled)
			if want.Len() != recycled.Len() {
				t.Fatalf("pos %d: recycled snapshot has %d itemsets, fresh %d", pos, recycled.Len(), want.Len())
			}
			for i := range want.Itemsets {
				w, g := want.Itemsets[i], recycled.Itemsets[i]
				if w.Support != g.Support || !w.Set.Equal(g.Set) {
					t.Fatalf("pos %d itemset %d: recycled %v/%d, fresh %v/%d",
						pos, i, g.Set, g.Support, w.Set, w.Support)
				}
			}
			lastRender = fmt.Sprintf("%d:%d", pos, recycled.Len())
		}
	}
	if lastRender == "" {
		t.Fatal("stream never published")
	}
	// The recycled result must also index correctly after reuse.
	if recycled.Len() > 0 {
		fi := recycled.Itemsets[0]
		if sup, ok := recycled.Support(fi.Set); !ok || sup != fi.Support {
			t.Fatalf("recycled result index broken: Support(%v) = %d,%v want %d,true",
				fi.Set, sup, ok, fi.Support)
		}
	}
}

// TestPublisherSnapshotRestoreWithPointerCache pins that Snapshot deep-copies
// the pointer-backed republication cache: mutating the publisher after a
// snapshot must not leak into the captured state, and a publisher restored
// from it republishes identically (the §VI resume guarantee).
func TestPublisherSnapshotRestoreWithPointerCache(t *testing.T) {
	seq := minedSequence(t)
	pub := newTestPublisher(t, Hybrid{Lambda: 0.4})
	half := len(seq) / 2
	for _, res := range seq[:half] {
		if _, err := pub.Publish(res, 150); err != nil {
			t.Fatal(err)
		}
	}
	st := pub.Snapshot()
	before := append([]CacheEntry(nil), st.Cache...)

	// Drive the original on; its cache mutations must not reach st.
	var origRenders []string
	for _, res := range seq[half:] {
		out, err := pub.Publish(res, 150)
		if err != nil {
			t.Fatal(err)
		}
		origRenders = append(origRenders, renderOutput(out))
	}
	for i := range before {
		if st.Cache[i] != before[i] {
			t.Fatalf("snapshot cache entry %d changed after further publishing: %+v -> %+v",
				i, before[i], st.Cache[i])
		}
	}

	restored := newTestPublisher(t, Hybrid{Lambda: 0.4})
	if err := restored.Restore(st); err != nil {
		t.Fatal(err)
	}
	for i, res := range seq[half:] {
		out, err := restored.Publish(res, 150)
		if err != nil {
			t.Fatal(err)
		}
		if got := renderOutput(out); got != origRenders[i] {
			t.Fatalf("restored publisher diverged at window %d:\n--- original ---\n%s--- restored ---\n%s",
				i, origRenders[i], got)
		}
	}
}
