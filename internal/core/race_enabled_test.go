//go:build race

package core

// raceEnabled reports that this binary was built with -race: the race
// detector's shadow allocations would fail the allocation pin tests, which
// guard performance, not safety — the -race CI step runs the identity suites
// instead.
const raceEnabled = true
