package core

import (
	"math"
	"testing"
	"testing/quick"
)

// Paper defaults: C=25, K=5.
func paperParams(eps, delta float64) Params {
	return Params{Epsilon: eps, Delta: delta, MinSupport: 25, VulnSupport: 5}
}

func TestValidateAcceptsPaperDefaults(t *testing.T) {
	// Fig. 4 fixes ε/δ = 0.04 with δ up to 1.0.
	for _, delta := range []float64{0.2, 0.4, 0.6, 0.8, 1.0} {
		p := paperParams(0.04*delta, delta)
		if err := p.Validate(); err != nil {
			t.Errorf("δ=%v: %v", delta, err)
		}
	}
}

func TestValidateRejectsBadInputs(t *testing.T) {
	cases := []struct {
		name string
		p    Params
	}{
		{"zero epsilon", Params{Epsilon: 0, Delta: 0.4, MinSupport: 25, VulnSupport: 5}},
		{"zero delta", Params{Epsilon: 0.01, Delta: 0, MinSupport: 25, VulnSupport: 5}},
		{"K >= C", Params{Epsilon: 0.01, Delta: 0.4, MinSupport: 5, VulnSupport: 5}},
		{"zero K", Params{Epsilon: 0.01, Delta: 0.4, MinSupport: 25, VulnSupport: 0}},
		{"ppr below minimum", Params{Epsilon: 0.001, Delta: 1.0, MinSupport: 25, VulnSupport: 20}},
	}
	for _, tc := range cases {
		if err := tc.p.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", tc.name, tc.p)
		}
	}
}

func TestAlphaMeetsPrivacyFloor(t *testing.T) {
	f := func(d10 uint8, k8 uint8) bool {
		delta := 0.05 + float64(d10%20)*0.05 // 0.05..1.0
		k := 1 + int(k8%10)
		p := Params{Epsilon: 1, Delta: delta, MinSupport: 10 * k, VulnSupport: k}
		a := p.Alpha()
		if a%2 != 0 || a < 0 {
			return false
		}
		// σ² from α must meet δK²/2, and α−2 must not (minimality).
		// Tolerate one ULP of float noise between the two derivations.
		need := delta * float64(k*k) / 2
		if p.Sigma2() < need*(1-1e-9) {
			return false
		}
		if a >= 2 {
			// The next smaller even region (α−2) must not have sufficed.
			prev := float64(a - 1) // its region has (α−2)+1 = α−1 values
			if (prev*prev-1)/12 >= need*(1+1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSigma2MatchesRegion(t *testing.T) {
	p := paperParams(0.016, 0.4)
	a := float64(p.Alpha())
	want := ((a+1)*(a+1) - 1) / 12
	if p.Sigma2() != want {
		t.Errorf("Sigma2 = %v, want %v", p.Sigma2(), want)
	}
	if p.Sigma2() < p.Delta*float64(p.VulnSupport*p.VulnSupport)/2 {
		t.Error("Sigma2 below privacy requirement")
	}
}

func TestMaxBiasRespectsPrecision(t *testing.T) {
	p := paperParams(0.016, 0.4)
	for _, tsup := range []int{25, 30, 50, 100, 1000} {
		b := float64(p.MaxBias(tsup))
		if p.Sigma2()+b*b > p.Epsilon*float64(tsup)*float64(tsup)+1e-9 {
			t.Errorf("MaxBias(%d) = %v violates σ²+β² <= εt²", tsup, b)
		}
		// Maximality: b+1 must violate.
		b1 := b + 1
		if p.Sigma2()+b1*b1 <= p.Epsilon*float64(tsup)*float64(tsup) {
			t.Errorf("MaxBias(%d) = %v not maximal", tsup, b)
		}
	}
}

func TestMaxBiasZeroWhenNoBudget(t *testing.T) {
	// ε t² barely above σ² at t=C leaves no room at all.
	p := paperParams(0.016, 0.4)
	if got := p.MaxBias(0); got != 0 {
		t.Errorf("MaxBias(0) = %d", got)
	}
}

func TestMaxBiasMonotoneInSupport(t *testing.T) {
	p := paperParams(0.02, 0.5)
	prev := -1
	for tsup := 25; tsup <= 500; tsup += 25 {
		b := p.MaxBias(tsup)
		if b < prev {
			t.Fatalf("MaxBias not monotone: MaxBias(%d)=%d after %d", tsup, b, prev)
		}
		prev = b
	}
}

func TestMinPPR(t *testing.T) {
	p := paperParams(0.016, 0.4)
	want := 25.0 / (2 * 625.0)
	if math.Abs(p.MinPPR()-want) > 1e-12 {
		t.Errorf("MinPPR = %v, want %v", p.MinPPR(), want)
	}
}

func TestPrivacyFloorAtLeastDelta(t *testing.T) {
	// 2σ²/K² >= δ because σ² >= δK²/2.
	for _, delta := range []float64{0.2, 0.5, 1.0} {
		p := paperParams(0.04*delta, delta)
		if p.PrivacyFloor() < delta {
			t.Errorf("PrivacyFloor %v < δ %v", p.PrivacyFloor(), delta)
		}
	}
}

func TestPrecisionCeilingAtMostEpsilon(t *testing.T) {
	for _, eps := range []float64{0.008, 0.016, 0.04} {
		p := paperParams(eps, eps/0.04)
		if err := p.Validate(); err != nil {
			t.Fatalf("ε=%v: %v", eps, err)
		}
		if c := p.PrecisionCeiling(); c > eps+1e-9 {
			t.Errorf("PrecisionCeiling %v > ε %v", c, eps)
		}
	}
}
