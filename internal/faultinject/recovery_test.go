package faultinject_test

// Recovery suite: drives the supervised pipeline through injected faults —
// transient source and sink failures, a mid-run sink panic, malformed input
// lines within the bad-record budget — and proves the run still publishes
// output byte-identical to a fault-free reference run, at every worker
// tier. Run it with -race; the CI workflow does.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/faultinject"
	"repro/internal/pipeline"
)

func recoveryConfig(workers int) pipeline.Config {
	return pipeline.Config{
		WindowSize:   400,
		Params:       core.Params{Epsilon: 0.1, Delta: 0.4, MinSupport: 10, VulnSupport: 5},
		Scheme:       core.Hybrid{Lambda: 0.4},
		Seed:         17,
		PublishEvery: 100,
		Workers:      workers,
	}
}

// fixtureText renders a 700-record synthetic stream in the transaction file
// format; every run in this suite parses the same text.
func fixtureText(t *testing.T) string {
	t.Helper()
	var buf bytes.Buffer
	if err := data.WriteTransactions(&buf, data.WebViewLike(5).Generate(700), nil); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// corruptText injects a malformed line (NUL token) after every stride-th
// line, returning the dirty text and the injection count.
func corruptText(text string, stride int) (string, int) {
	lines := strings.Split(strings.TrimRight(text, "\n"), "\n")
	var out []string
	injected := 0
	for i, l := range lines {
		out = append(out, l)
		if i%stride == stride-1 {
			out = append(out, "bad\x00token line")
			injected++
		}
	}
	return strings.Join(out, "\n") + "\n", injected
}

// renderWindows serializes published windows to the on-disk format, the
// byte-level identity the suite asserts on.
func renderWindows(t *testing.T, windows []pipeline.Window) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, w := range windows {
		fmt.Fprintf(&buf, "# window at position %d\n", w.Position)
		entries := make([]data.PublishedEntry, 0, w.Output.Len())
		for _, it := range w.Output.Items {
			entries = append(entries, data.PublishedEntry{Support: it.Support, Set: it.Set})
		}
		if err := data.WritePublished(&buf, entries, nil); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// TestFaultInjectedRunIsByteIdenticalToFaultFree is the recovery suite's
// centerpiece: transient failures on every 7th source read and every 5th
// sink delivery, one injected sink panic, and malformed lines exactly
// filling the bad-record budget — and the published bytes must not move,
// at workers 1 (sequential draw order), 2 and 8 (chunked draw order).
func TestFaultInjectedRunIsByteIdenticalToFaultFree(t *testing.T) {
	text := fixtureText(t)
	dirty, injected := corruptText(text, 100)
	if injected == 0 {
		t.Fatal("fixture produced no malformed lines")
	}
	for _, workers := range []int{1, 2, 8} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			// Fault-free reference over the clean text.
			cfg := recoveryConfig(workers)
			p, err := pipeline.New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			var ref []pipeline.Window
			if _, err := p.RunContext(context.Background(),
				pipeline.ReaderSource(strings.NewReader(text), nil),
				func(w pipeline.Window) error { ref = append(ref, w); return nil }); err != nil {
				t.Fatal(err)
			}
			refBytes := renderWindows(t, ref)

			// Faulty run: dirty input behind a flaky source, into a flaky,
			// once-panicking sink.
			cfg.MaxBadRecords = injected
			cfg.EmitRetries = 4
			cfg.EmitBackoff = time.Millisecond
			p, err = pipeline.New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			src := faultinject.NewSource(
				pipeline.ReaderSource(strings.NewReader(dirty), nil),
				faultinject.Plan{FailEvery: 7})
			var got []pipeline.Window
			sink := faultinject.NewSink(func(w pipeline.Window) error {
				got = append(got, w)
				return nil
			}, faultinject.Plan{FailEvery: 5, PanicOn: 3})
			rep, err := p.RunContext(context.Background(), src, sink.Emit)
			if err != nil {
				t.Fatalf("fault-injected run failed outright: %v", err)
			}

			if !bytes.Equal(refBytes, renderWindows(t, got)) {
				t.Fatalf("fault-injected output diverged from the fault-free run "+
					"(%d vs %d windows)", len(got), len(ref))
			}
			if rep.BadRecords != injected {
				t.Fatalf("BadRecords = %d, want %d", rep.BadRecords, injected)
			}
			if rep.Retries == 0 {
				t.Fatal("report shows no retries despite injected transient faults")
			}
			if rep.PanicsRecovered == 0 {
				t.Fatal("report shows no recovered panics despite the injected sink panic")
			}
			if rep.Published != len(ref) {
				t.Fatalf("Published = %d, want %d", rep.Published, len(ref))
			}
			if src.Failures() == 0 || sink.Failures() == 0 {
				t.Fatalf("fault plans never fired: source %d, sink %d",
					src.Failures(), sink.Failures())
			}
		})
	}
}

// TestPermanentSinkFaultFailsRun: a permanent injected fault is fatal even
// with retries budgeted, and it surfaces as the run error.
func TestPermanentSinkFaultFailsRun(t *testing.T) {
	cfg := recoveryConfig(2)
	cfg.EmitRetries = 5
	cfg.EmitBackoff = time.Millisecond
	p, err := pipeline.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sink := faultinject.NewSink(func(pipeline.Window) error { return nil },
		faultinject.Plan{FailEvery: 2, Permanent: true})
	rep, err := p.RunContext(context.Background(),
		pipeline.ReaderSource(strings.NewReader(fixtureText(t)), nil), sink.Emit)
	var fe *faultinject.FaultError
	if !errors.As(err, &fe) || !fe.Permanent {
		t.Fatalf("err = %v, want the permanent FaultError", err)
	}
	if rep.Retries != 0 {
		t.Fatalf("permanent fault was retried %d times", rep.Retries)
	}
}

// TestInjectedStallTripsWatchdog: a stalled sink delivery exceeds the
// per-window watchdog and fails the run instead of hanging it.
func TestInjectedStallTripsWatchdog(t *testing.T) {
	cfg := recoveryConfig(4)
	cfg.WindowTimeout = 50 * time.Millisecond
	p, err := pipeline.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sink := faultinject.NewSink(func(pipeline.Window) error { return nil },
		faultinject.Plan{StallOn: 1, Stall: 400 * time.Millisecond})
	start := time.Now()
	_, err = p.RunContext(context.Background(),
		pipeline.ReaderSource(strings.NewReader(fixtureText(t)), nil), sink.Emit)
	if err == nil || !strings.Contains(err.Error(), "watchdog") {
		t.Fatalf("err = %v, want a watchdog timeout", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("watchdog took %v to unwind", elapsed)
	}
}

// TestCancellationUnderFaultsReturnsPromptlyNoLeak: canceling mid-run while
// faults are being injected still returns within the watchdog period and
// leaks no goroutines.
func TestCancellationUnderFaultsReturnsPromptlyNoLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	cfg := recoveryConfig(8)
	cfg.WindowTimeout = 2 * time.Second
	cfg.EmitRetries = 4
	cfg.EmitBackoff = time.Millisecond
	cfg.MaxBadRecords = -1
	p, err := pipeline.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dirty, _ := corruptText(fixtureText(t), 50)
	src := faultinject.NewSource(
		pipeline.ReaderSource(strings.NewReader(dirty), nil),
		faultinject.Plan{FailEvery: 9})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	start := time.Now()
	_, err = p.RunContext(ctx, src, func(pipeline.Window) error {
		cancel()
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > cfg.WindowTimeout {
		t.Fatalf("cancellation took %v, want < %v", elapsed, cfg.WindowTimeout)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	t.Fatalf("goroutine leak: %d before, %d after settle\n%s",
		before, runtime.NumGoroutine(), buf[:n])
}
