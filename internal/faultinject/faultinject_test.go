package faultinject

import (
	"errors"
	"io"
	"testing"
	"time"

	"repro/internal/itemset"
)

// countSource yields records forever and counts how often it was actually
// consulted, so tests can prove faulted calls consume nothing.
type countSource struct{ n int }

func (c *countSource) Next() (itemset.Itemset, error) {
	c.n++
	return itemset.New(itemset.Item(c.n)), nil
}

func TestFailEveryScheduleAndNoConsumptionOnFault(t *testing.T) {
	inner := &countSource{}
	src := NewSource(inner, Plan{FailEvery: 2})
	for call := 1; call <= 6; call++ {
		_, err := src.Next()
		if call%2 == 0 {
			var fe *FaultError
			if !errors.As(err, &fe) {
				t.Fatalf("call %d: err = %v, want a FaultError", call, err)
			}
			if fe.Call != call || fe.Op != "source" || !fe.Transient() {
				t.Fatalf("call %d: fault = %+v", call, fe)
			}
		} else if err != nil {
			t.Fatalf("call %d: unexpected error %v", call, err)
		}
	}
	if inner.n != 3 {
		t.Fatalf("inner source consulted %d times, want 3 (faults must not consume)", inner.n)
	}
	if src.Calls() != 6 || src.Failures() != 3 {
		t.Fatalf("calls=%d failures=%d, want 6/3", src.Calls(), src.Failures())
	}
}

func TestMaxFailuresStopsInjecting(t *testing.T) {
	src := NewSource(&countSource{}, Plan{FailEvery: 1, MaxFailures: 2})
	failed := 0
	for i := 0; i < 5; i++ {
		if _, err := src.Next(); err != nil {
			failed++
		}
	}
	if failed != 2 || src.Failures() != 2 {
		t.Fatalf("failed %d calls (reported %d), want 2", failed, src.Failures())
	}
}

func TestPermanentFaultIsNotTransient(t *testing.T) {
	src := NewSource(&countSource{}, Plan{FailEvery: 1, Permanent: true})
	_, err := src.Next()
	var fe *FaultError
	if !errors.As(err, &fe) || fe.Transient() {
		t.Fatalf("err = %v, want a permanent FaultError", err)
	}
}

func TestPanicOnFiresExactlyOnce(t *testing.T) {
	src := NewSource(&countSource{}, Plan{PanicOn: 2})
	if _, err := src.Next(); err != nil {
		t.Fatal(err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("call 2 did not panic")
			}
		}()
		src.Next()
	}()
	if _, err := src.Next(); err != nil {
		t.Fatalf("call 3 after the panic: %v", err)
	}
}

func TestStallOnDelaysTheCall(t *testing.T) {
	src := NewSource(&countSource{}, Plan{StallOn: 1, Stall: 30 * time.Millisecond})
	start := time.Now()
	if _, err := src.Next(); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Fatalf("stalled call returned after %v, want >= 30ms", elapsed)
	}
}

func TestSinkWrapperFailsWithoutDelivering(t *testing.T) {
	var delivered []int
	sink := NewSink(func(v int) error {
		delivered = append(delivered, v)
		return nil
	}, Plan{FailEvery: 3})
	for v := 1; v <= 7; v++ {
		err := sink.Emit(v)
		if v%3 == 0 && err == nil {
			t.Fatalf("call %d did not fail", v)
		}
		if v%3 != 0 && err != nil {
			t.Fatalf("call %d: %v", v, err)
		}
	}
	want := []int{1, 2, 4, 5, 7}
	if len(delivered) != len(want) {
		t.Fatalf("delivered %v, want %v", delivered, want)
	}
	for i := range want {
		if delivered[i] != want[i] {
			t.Fatalf("delivered %v, want %v", delivered, want)
		}
	}
	if sink.Calls() != 7 || sink.Failures() != 2 {
		t.Fatalf("calls=%d failures=%d, want 7/2", sink.Calls(), sink.Failures())
	}
}

func TestSinkPropagatesInnerError(t *testing.T) {
	sentinel := errors.New("disk full")
	sink := NewSink(func(int) error { return sentinel }, Plan{})
	if err := sink.Emit(1); !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want the sink's own error", err)
	}
}

// TestZeroPlanIsTransparent: the zero Plan never interferes.
func TestZeroPlanIsTransparent(t *testing.T) {
	inner := &countSource{}
	src := NewSource(inner, Plan{})
	for i := 0; i < 100; i++ {
		if _, err := src.Next(); err != nil {
			t.Fatal(err)
		}
	}
	if inner.n != 100 || src.Failures() != 0 {
		t.Fatalf("consulted=%d failures=%d, want 100/0", inner.n, src.Failures())
	}
}

// eofSource proves EOF passes through untouched.
type eofSource struct{}

func (eofSource) Next() (itemset.Itemset, error) { return itemset.Itemset{}, io.EOF }

func TestEOFPassesThrough(t *testing.T) {
	src := NewSource(eofSource{}, Plan{FailEvery: 2})
	if _, err := src.Next(); err != io.EOF {
		t.Fatalf("err = %v, want io.EOF", err)
	}
}
