package faultinject_test

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/faultinject"
)

func TestCrashPlanFiresOncePerMatch(t *testing.T) {
	plan := &faultinject.CrashPlan{Point: "before-rename", OnSave: 2}
	hook := plan.Hook()
	if hook("before-rename", 1) {
		t.Fatal("fired on the wrong save")
	}
	if hook("before-write", 2) {
		t.Fatal("fired at the wrong point")
	}
	if !hook("before-rename", 2) {
		t.Fatal("did not fire at the planned point")
	}
	if plan.Fired() != 1 {
		t.Fatalf("Fired = %d, want 1", plan.Fired())
	}
}

func TestZeroCrashPlanNeverFires(t *testing.T) {
	plan := &faultinject.CrashPlan{}
	hook := plan.Hook()
	for save := 0; save < 4; save++ {
		if hook("before-write", save) || hook("", save) {
			t.Fatal("zero plan fired")
		}
	}
}

func tempFile(t *testing.T, content []byte) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "victim")
	if err := os.WriteFile(path, content, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestTruncateFile(t *testing.T) {
	path := tempFile(t, []byte("0123456789"))
	if err := faultinject.TruncateFile(path, 4); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "0123" {
		t.Fatalf("after truncation: %q, %v", got, err)
	}
	if err := faultinject.TruncateFile(path, 100); err == nil {
		t.Fatal("truncation past the end accepted")
	}
	if err := faultinject.TruncateFile(path, -1); err == nil {
		t.Fatal("negative keep accepted")
	}
}

func TestFlipByte(t *testing.T) {
	path := tempFile(t, []byte{0x00, 0x11, 0x22})
	if err := faultinject.FlipByte(path, 1); err != nil {
		t.Fatal(err)
	}
	if err := faultinject.FlipByte(path, -1); err != nil { // last byte
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{0x00, 0xEE, 0xDD}
	if string(got) != string(want) {
		t.Fatalf("after flips: %x, want %x", got, want)
	}
	if err := faultinject.FlipByte(path, 3); err == nil {
		t.Fatal("offset past the end accepted")
	}
	if err := faultinject.FlipByte(path, -4); err == nil {
		t.Fatal("offset before the start accepted")
	}
}
