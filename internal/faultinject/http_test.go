package faultinject

import (
	"errors"
	"io"
	"strings"
	"testing"
	"time"
)

func TestSlowReaderTricklesAndCompletes(t *testing.T) {
	const payload = "a b c\nd e f\n"
	sr := SlowReader(strings.NewReader(payload), 3, 0)
	buf := make([]byte, 64)
	n, err := sr.Read(buf)
	if err != nil || n != 3 {
		t.Fatalf("first read = (%d, %v), want (3, nil)", n, err)
	}
	rest, err := io.ReadAll(sr)
	if err != nil {
		t.Fatal(err)
	}
	if got := string(buf[:3]) + string(rest); got != payload {
		t.Fatalf("reassembled %q, want %q", got, payload)
	}
}

func TestSlowReaderDelays(t *testing.T) {
	sr := SlowReader(strings.NewReader("abcdef"), 2, 20*time.Millisecond)
	t0 := time.Now()
	if _, err := io.ReadAll(sr); err != nil {
		t.Fatal(err)
	}
	// 3 chunks: delays before reads 2 and 3 (the first is free).
	if took := time.Since(t0); took < 40*time.Millisecond {
		t.Fatalf("6 bytes at 2/read with 20ms delay took only %v", took)
	}
}

func TestHaltReaderBreaksOff(t *testing.T) {
	boom := errors.New("connection reset")
	hr := HaltReader(strings.NewReader("0123456789"), 4, boom)
	got, err := io.ReadAll(hr)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want injected %v", err, boom)
	}
	if string(got) != "0123" {
		t.Fatalf("delivered %q before halting, want %q", got, "0123")
	}
	// Default error is the truncated-body one a server actually sees.
	hr = HaltReader(strings.NewReader("xy"), 1, nil)
	if _, err := io.ReadAll(hr); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("default halt error = %v, want io.ErrUnexpectedEOF", err)
	}
}
