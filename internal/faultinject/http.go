package faultinject

// HTTP-side fault injectors: hostile-client request bodies for exercising a
// server's ingest path. Like the source/sink wrappers, they are fully
// deterministic — schedules are keyed by byte position and fixed delays,
// never randomness — so a chaos test that uses them is exactly
// reproducible.

import (
	"io"
	"time"
)

// SlowReader wraps r so that reads trickle: at most chunk bytes are
// returned per Read, and every read after the first sleeps delay first —
// the slow-loris client that keeps a request body open far longer than its
// size warrants. chunk <= 0 defaults to 1.
func SlowReader(r io.Reader, chunk int, delay time.Duration) io.Reader {
	if chunk <= 0 {
		chunk = 1
	}
	return &slowReader{r: r, chunk: chunk, delay: delay}
}

type slowReader struct {
	r     io.Reader
	chunk int
	delay time.Duration
	reads int
}

func (s *slowReader) Read(p []byte) (int, error) {
	if s.reads > 0 && s.delay > 0 {
		time.Sleep(s.delay)
	}
	s.reads++
	if len(p) > s.chunk {
		p = p[:s.chunk]
	}
	return s.r.Read(p)
}

// HaltReader wraps r so the body breaks off after n bytes with err — the
// client whose connection dropped mid-upload. A nil err defaults to
// io.ErrUnexpectedEOF, which is what a server reading a truncated HTTP/1.1
// body observes.
func HaltReader(r io.Reader, n int, err error) io.Reader {
	if err == nil {
		err = io.ErrUnexpectedEOF
	}
	return &haltReader{r: r, left: n, err: err}
}

type haltReader struct {
	r    io.Reader
	left int
	err  error
}

func (h *haltReader) Read(p []byte) (int, error) {
	if h.left <= 0 {
		return 0, h.err
	}
	if len(p) > h.left {
		p = p[:h.left]
	}
	n, err := h.r.Read(p)
	h.left -= n
	if err == nil && h.left <= 0 {
		err = h.err
	}
	return n, err
}
