package faultinject

// Crash injection for the checkpoint write protocol: CrashPlan schedules a
// simulated process death at a chosen point of a chosen save (plugging into
// checkpoint.Store.CrashHook structurally, the same way FlakySource plugs
// into pipeline.RecordSource without an import), and the file corruptors
// damage already-written snapshot files the way real-world failures do —
// truncation (torn write) and bit rot (flipped bytes). Everything is
// deterministic, keyed by save number and byte offset.

import (
	"fmt"
	"os"
)

// CrashPlan schedules one simulated crash inside a checkpoint store's write
// protocol. The zero plan never fires.
type CrashPlan struct {
	// Point is the protocol point to die at — one of the checkpoint
	// package's Crash* constants ("before-write", "before-rename",
	// "torn-write").
	Point string
	// OnSave is the 1-based save number to die on (0: never).
	OnSave int

	fired int
}

// Hook adapts the plan to checkpoint.Store.CrashHook. The returned func
// reports true — crash now — when the store reaches the planned point of
// the planned save.
func (p *CrashPlan) Hook() func(point string, save int) bool {
	return func(point string, save int) bool {
		if p.OnSave != 0 && save == p.OnSave && point == p.Point {
			p.fired++
			return true
		}
		return false
	}
}

// Fired reports how many times the plan's crash fired.
func (p *CrashPlan) Fired() int { return p.fired }

// TruncateFile cuts a file down to the first keep bytes — a torn or
// partial write. keep must not exceed the current size.
func TruncateFile(path string, keep int64) error {
	info, err := os.Stat(path)
	if err != nil {
		return err
	}
	if keep < 0 || keep > info.Size() {
		return fmt.Errorf("faultinject: cannot keep %d of %d bytes of %s", keep, info.Size(), path)
	}
	return os.Truncate(path, keep)
}

// AppendBytes appends raw bytes to an existing file — garbage past the last
// valid frame, the shape a torn log-append leaves behind.
func AppendBytes(path string, b []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := f.Write(b); err != nil {
		return err
	}
	return f.Sync()
}

// FlipByte XORs 0xFF into the byte at offset — one spot of bit rot. A
// negative offset counts back from the end of the file.
func FlipByte(path string, offset int64) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return err
	}
	if offset < 0 {
		offset += info.Size()
	}
	if offset < 0 || offset >= info.Size() {
		return fmt.Errorf("faultinject: offset %d outside %s (%d bytes)", offset, path, info.Size())
	}
	var b [1]byte
	if _, err := f.ReadAt(b[:], offset); err != nil {
		return err
	}
	b[0] ^= 0xFF
	if _, err := f.WriteAt(b[:], offset); err != nil {
		return err
	}
	return f.Sync()
}
