// Package faultinject provides deterministic fault-injection wrappers for
// exercising the supervised publication pipeline: record sources and sinks
// that fail on a schedule (transiently or permanently), panic on a chosen
// call, or stall to trip the watchdog.
//
// The wrappers fail BEFORE delegating to the wrapped source or sink, so a
// failed call consumes nothing: when the supervisor retries it, the
// underlying stream continues exactly where it left off. That property is
// what lets the recovery test suite demand byte-identical output from a
// fault-injected run and a fault-free run.
//
// Everything here is deterministic — fault schedules are keyed by call
// number, never by time or randomness — so recovery tests are exactly
// reproducible.
package faultinject

import (
	"fmt"
	"time"

	"repro/internal/itemset"
)

// Source is the record-source shape the wrappers decorate. It is
// structurally identical to pipeline.RecordSource, so wrapped sources plug
// straight into Pipeline.RunContext without this package importing the
// pipeline.
type Source interface {
	Next() (itemset.Itemset, error)
}

// Plan is a deterministic fault schedule, keyed by 1-based call number.
// The zero Plan injects nothing.
type Plan struct {
	// FailEvery makes every Nth call fail (0: never).
	FailEvery int
	// MaxFailures stops injecting failures after this many (0: unlimited).
	MaxFailures int
	// Permanent makes injected failures permanent (fatal to the run)
	// instead of transient (retryable).
	Permanent bool
	// PanicOn makes exactly this call panic (0: never).
	PanicOn int
	// StallOn makes exactly this call sleep for Stall before proceeding
	// (0: never) — watchdog bait.
	StallOn int
	// Stall is the stall duration for StallOn.
	Stall time.Duration
}

// FaultError is one injected failure. It is transient unless the plan says
// Permanent — the `Transient() bool` method is what pipeline.IsTransient
// looks for.
type FaultError struct {
	// Op names the wrapped operation ("source", "sink").
	Op string
	// Call is the 1-based call number that failed.
	Call int
	// Permanent mirrors the plan.
	Permanent bool
}

func (e *FaultError) Error() string {
	kind := "transient"
	if e.Permanent {
		kind = "permanent"
	}
	return fmt.Sprintf("faultinject: %s %s fault on call %d", kind, e.Op, e.Call)
}

// Transient implements the marker interface pipeline.IsTransient detects.
func (e *FaultError) Transient() bool { return !e.Permanent }

// schedule tracks plan progress. Wrappers are used from a single pipeline
// stage goroutine, like the sources and sinks they decorate; counters are
// plain ints read by tests only after the run returns.
type schedule struct {
	plan     Plan
	op       string
	calls    int
	failures int
	panics   int
	stalls   int
}

// inject advances the schedule by one call and returns the injected fault,
// or nil when this call passes through. Panics and stalls fire here too.
func (s *schedule) inject() error {
	s.calls++
	if s.plan.StallOn == s.calls {
		s.stalls++
		time.Sleep(s.plan.Stall)
	}
	if s.plan.PanicOn == s.calls {
		s.panics++
		panic(fmt.Sprintf("faultinject: injected %s panic on call %d", s.op, s.calls))
	}
	if s.plan.FailEvery > 0 && s.calls%s.plan.FailEvery == 0 &&
		(s.plan.MaxFailures == 0 || s.failures < s.plan.MaxFailures) {
		s.failures++
		return &FaultError{Op: s.op, Call: s.calls, Permanent: s.plan.Permanent}
	}
	return nil
}

// FlakySource wraps a Source with a fault plan.
type FlakySource struct {
	src Source
	sch schedule
}

// NewSource wraps src so that its Next calls fail, panic, or stall on the
// plan's schedule. Faulted calls never touch src, so retries resume the
// stream without loss.
func NewSource(src Source, plan Plan) *FlakySource {
	return &FlakySource{src: src, sch: schedule{plan: plan, op: "source"}}
}

// Next implements Source (and pipeline.RecordSource).
func (f *FlakySource) Next() (itemset.Itemset, error) {
	if err := f.sch.inject(); err != nil {
		return itemset.Itemset{}, err
	}
	return f.src.Next()
}

// Calls reports how many Next calls were made (including faulted ones).
func (f *FlakySource) Calls() int { return f.sch.calls }

// Failures reports how many calls were failed by injection.
func (f *FlakySource) Failures() int { return f.sch.failures }

// FlakySink decorates a sink callback (such as the pipeline's emit
// function) with a fault plan; build one with NewSink.
type FlakySink[T any] struct {
	sink func(T) error
	sch  schedule
}

// NewSink wraps sink so that calls fail, panic, or stall on the plan's
// schedule. Faulted calls never invoke the wrapped sink, so an idempotent
// re-delivery after a retry reaches it exactly once.
func NewSink[T any](sink func(T) error, plan Plan) *FlakySink[T] {
	return &FlakySink[T]{sink: sink, sch: schedule{plan: plan, op: "sink"}}
}

// Emit is the decorated callback; pass it to Pipeline.RunContext.
func (f *FlakySink[T]) Emit(v T) error {
	if err := f.sch.inject(); err != nil {
		return err
	}
	return f.sink(v)
}

// Calls reports how many Emit calls were made (including faulted ones).
func (f *FlakySink[T]) Calls() int { return f.sch.calls }

// Failures reports how many calls were failed by injection.
func (f *FlakySink[T]) Failures() int { return f.sch.failures }
