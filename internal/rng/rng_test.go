package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMixDeterministicAndSensitive(t *testing.T) {
	if Mix(1, 2, 3) != Mix(1, 2, 3) {
		t.Fatal("Mix not deterministic")
	}
	// Order and value sensitivity: structured coordinates that differ in any
	// component must give different seeds.
	seen := map[uint64][]uint64{}
	for _, parts := range [][]uint64{
		{}, {0}, {1}, {0, 0}, {0, 1}, {1, 0}, {1, 1}, {1, 2}, {2, 1}, {1, 2, 3}, {3, 2, 1},
	} {
		h := Mix(parts...)
		if prev, dup := seen[h]; dup {
			t.Errorf("Mix(%v) collides with Mix(%v)", parts, prev)
		}
		seen[h] = parts
	}
}

func TestMixDerivedStreamsDecorrelated(t *testing.T) {
	// Streams seeded from adjacent chunk coordinates must not track each
	// other: compare the first draws of neighbouring chunk seeds.
	const chunks = 64
	firsts := map[uint64]bool{}
	for c := uint64(0); c < chunks; c++ {
		v := New(Mix(12345, c)).Uint64()
		if firsts[v] {
			t.Fatalf("duplicate first draw across chunk streams at chunk %d", c)
		}
		firsts[v] = true
	}
}

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed sources diverged at draw %d", i)
		}
	}
}

func TestDistinctSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical draws", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	a := New(7)
	c := a.Split()
	if a.Uint64() == c.Uint64() {
		t.Fatal("split source mirrors parent")
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(3)
	for _, n := range []int{1, 2, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntRange(t *testing.T) {
	s := New(9)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := s.IntRange(-3, 3)
		if v < -3 || v > 3 {
			t.Fatalf("IntRange(-3,3) = %d out of range", v)
		}
		seen[v] = true
	}
	for v := -3; v <= 3; v++ {
		if !seen[v] {
			t.Errorf("IntRange never produced %d in 1000 draws", v)
		}
	}
}

func TestIntRangeSingleton(t *testing.T) {
	s := New(5)
	for i := 0; i < 10; i++ {
		if v := s.IntRange(4, 4); v != 4 {
			t.Fatalf("IntRange(4,4) = %d", v)
		}
	}
}

func TestIntRangePanicsWhenInverted(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("IntRange(2,1) did not panic")
		}
	}()
	New(1).IntRange(2, 1)
}

// The discrete uniform on [lo,hi] must have mean (lo+hi)/2 and variance
// ((hi-lo+1)^2 - 1)/12 — the Butterfly calibration depends on exactly these
// moments, so verify them empirically.
func TestIntRangeMoments(t *testing.T) {
	s := New(11)
	lo, hi := -10, 14
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := float64(s.IntRange(lo, hi))
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	wantMean := float64(lo+hi) / 2
	span := float64(hi - lo + 1)
	wantVar := (span*span - 1) / 12
	if math.Abs(mean-wantMean) > 0.1 {
		t.Errorf("mean = %.3f, want %.3f", mean, wantMean)
	}
	if math.Abs(variance-wantVar)/wantVar > 0.02 {
		t.Errorf("variance = %.3f, want %.3f", variance, wantVar)
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(13)
	for i := 0; i < 10000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(17)
	check := func(n uint8) bool {
		p := s.Perm(int(n))
		if len(p) != int(n) {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= int(n) || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestPoissonMean(t *testing.T) {
	s := New(19)
	for _, mean := range []float64{0.5, 2.5, 6.5, 80} {
		const n = 50000
		sum := 0
		for i := 0; i < n; i++ {
			sum += s.Poisson(mean)
		}
		got := float64(sum) / n
		if math.Abs(got-mean)/mean > 0.05 {
			t.Errorf("Poisson(%v) empirical mean %.3f", mean, got)
		}
	}
}

func TestPoissonNonNegative(t *testing.T) {
	s := New(23)
	if s.Poisson(0) != 0 {
		t.Error("Poisson(0) != 0")
	}
	if s.Poisson(-1) != 0 {
		t.Error("Poisson(-1) != 0")
	}
}

func TestNormalMoments(t *testing.T) {
	s := New(29)
	const n = 100000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := s.Normal()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("Normal mean = %.4f", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("Normal variance = %.4f", variance)
	}
}

func TestGeometricMean(t *testing.T) {
	s := New(31)
	p := 0.25
	const n = 50000
	sum := 0
	for i := 0; i < n; i++ {
		sum += s.Geometric(p)
	}
	got := float64(sum) / n
	want := (1 - p) / p
	if math.Abs(got-want)/want > 0.05 {
		t.Errorf("Geometric(%v) mean %.3f want %.3f", p, got, want)
	}
}

func TestGeometricEdge(t *testing.T) {
	s := New(37)
	if v := s.Geometric(1); v != 0 {
		t.Errorf("Geometric(1) = %d", v)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Geometric(0) did not panic")
		}
	}()
	s.Geometric(0)
}

func TestZipfRankZeroMostPopular(t *testing.T) {
	s := New(41)
	z := NewZipf(s, 100, 1.0)
	counts := make([]int, 100)
	for i := 0; i < 100000; i++ {
		counts[z.Draw()]++
	}
	if counts[0] <= counts[50] {
		t.Errorf("rank 0 (%d) not more popular than rank 50 (%d)", counts[0], counts[50])
	}
	if counts[0] <= counts[99] {
		t.Errorf("rank 0 (%d) not more popular than rank 99 (%d)", counts[0], counts[99])
	}
}

func TestZipfUniformWhenSkewZero(t *testing.T) {
	s := New(43)
	z := NewZipf(s, 10, 0)
	counts := make([]int, 10)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[z.Draw()]++
	}
	for r, c := range counts {
		if math.Abs(float64(c)-n/10)/(n/10) > 0.05 {
			t.Errorf("rank %d count %d deviates from uniform", r, c)
		}
	}
}

func TestZipfDrawInRange(t *testing.T) {
	s := New(47)
	z := NewZipf(s, 7, 1.2)
	for i := 0; i < 10000; i++ {
		if v := z.Draw(); v < 0 || v >= 7 {
			t.Fatalf("Zipf draw %d out of range", v)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		s.Uint64()
	}
}

func BenchmarkIntRange(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		s.IntRange(-50, 50)
	}
}

// TestStateRoundTrip: capturing the cursor and restoring it into a fresh
// source continues the exact sequence — the property checkpoint resume
// serializes.
func TestStateRoundTrip(t *testing.T) {
	src := New(42)
	for i := 0; i < 100; i++ {
		src.Uint64()
	}
	cursor := src.State()
	want := make([]uint64, 16)
	for i := range want {
		want[i] = src.Uint64()
	}
	restored := New(999) // seed irrelevant once SetState overwrites it
	restored.SetState(cursor)
	for i, w := range want {
		if got := restored.Uint64(); got != w {
			t.Fatalf("draw %d after SetState: %d, want %d", i, got, w)
		}
	}
}

func TestMarshalBinaryRoundTrip(t *testing.T) {
	src := New(7)
	src.Uint64()
	data, err := src.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 8 {
		t.Fatalf("marshaled state is %d bytes, want 8", len(data))
	}
	var back Source
	if err := back.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if back.State() != src.State() {
		t.Fatal("unmarshaled cursor differs")
	}
	if src.Uint64() != back.Uint64() {
		t.Fatal("unmarshaled source diverges")
	}
	if err := back.UnmarshalBinary(data[:5]); err == nil {
		t.Fatal("short state accepted")
	}
}

// TestFillIntRangeMatchesSequentialDraws pins the batch API's contract: a
// single FillIntRange call must reproduce exactly the values AND the final
// cursor of the equivalent IntRange loop, for assorted ranges (including
// ones wide enough to exercise the rejection path) and batch sizes.
func TestFillIntRangeMatchesSequentialDraws(t *testing.T) {
	cases := []struct{ lo, hi int }{
		{0, 0}, {-3, 3}, {-50, 50}, {0, 1}, {-1000000, 1000000}, {7, 7},
	}
	for _, tc := range cases {
		for _, n := range []int{0, 1, 2, 7, 256} {
			a := New(99)
			b := New(99)
			want := make([]int, n)
			for i := range want {
				want[i] = a.IntRange(tc.lo, tc.hi)
			}
			got := make([]int, n)
			b.FillIntRange(tc.lo, tc.hi, got)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("[%d,%d] n=%d: batch[%d]=%d, sequential=%d",
						tc.lo, tc.hi, n, i, got[i], want[i])
				}
			}
			if a.State() != b.State() {
				t.Fatalf("[%d,%d] n=%d: cursor diverged: %x vs %x",
					tc.lo, tc.hi, n, a.State(), b.State())
			}
		}
	}
}

// TestFillIntRangeRejectionPath forces the modulo-rejection loop (a range
// size that does not divide 2^64) across many draws and checks bounds.
func TestFillIntRangeRejectionPath(t *testing.T) {
	s := New(5)
	dst := make([]int, 4096)
	s.FillIntRange(0, 2, dst) // 3 does not divide 2^64
	for i, v := range dst {
		if v < 0 || v > 2 {
			t.Fatalf("dst[%d] = %d outside [0,2]", i, v)
		}
	}
	ref := New(5)
	for i := range dst {
		if w := ref.IntRange(0, 2); w != dst[i] {
			t.Fatalf("dst[%d] = %d, want %d", i, dst[i], w)
		}
	}
}

func TestFillIntRangePanicsOnBadRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FillIntRange(3, 2) did not panic")
		}
	}()
	New(1).FillIntRange(3, 2, make([]int, 1))
}
