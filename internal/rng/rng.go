// Package rng provides small, deterministic random-number utilities used by
// the Butterfly perturbation schemes and by the synthetic data generators.
//
// All experiment code in this repository must be reproducible from a seed, so
// instead of the global math/rand source every component owns an explicit
// *rng.Source. The generator is SplitMix64: tiny state, excellent statistical
// quality for simulation purposes, and trivially seedable.
package rng

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Mix deterministically combines the given 64-bit words into one
// well-scrambled seed by folding each word through the SplitMix64 finalizer.
// It is the canonical way to derive independent sub-stream seeds from
// structured coordinates (base seed, window index, chunk index, ...): equal
// inputs give equal seeds, and nearby inputs give decorrelated streams.
func Mix(parts ...uint64) uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	for _, p := range parts {
		h ^= p
		h += 0x9e3779b97f4a7c15
		h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
		h = (h ^ (h >> 27)) * 0x94d049bb133111eb
		h ^= h >> 31
	}
	return h
}

// Source is a deterministic pseudo-random source (SplitMix64).
// It is NOT safe for concurrent use; give each goroutine its own Source,
// e.g. via Split.
type Source struct {
	state uint64
}

// New returns a Source seeded with seed. Distinct seeds give independent
// looking streams; the zero seed is valid.
func New(seed uint64) *Source {
	return &Source{state: seed}
}

// Split derives a new, independent Source from s. The derived source is
// decorrelated from subsequent output of s because it is seeded from a
// dedicated draw.
func (s *Source) Split() *Source {
	return &Source{state: s.Uint64() ^ 0x9e3779b97f4a7c15}
}

// State returns the generator's internal cursor. Together with SetState it
// is the stable serialization of a Source: a Source restored from a recorded
// state produces exactly the draw sequence the original would have produced
// from the moment of recording — the property crash-safe checkpointing of
// the publication stream depends on.
func (s *Source) State() uint64 { return s.state }

// SetState rewinds (or fast-forwards) the generator to a cursor previously
// obtained from State.
func (s *Source) SetState(state uint64) { s.state = state }

// sourceStateLen is the serialized size of a Source: one 64-bit cursor.
const sourceStateLen = 8

// MarshalBinary implements encoding.BinaryMarshaler: 8 bytes, little-endian
// cursor. The format is frozen — checkpoint files depend on it.
func (s *Source) MarshalBinary() ([]byte, error) {
	return binary.LittleEndian.AppendUint64(nil, s.state), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler, accepting exactly
// the MarshalBinary format.
func (s *Source) UnmarshalBinary(data []byte) error {
	if len(data) != sourceStateLen {
		return fmt.Errorf("rng: source state is %d bytes, want %d", len(data), sourceStateLen)
	}
	s.state = binary.LittleEndian.Uint64(data)
	return nil
}

// Uint64 returns the next 64 pseudo-random bits.
func (s *Source) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless method would be overkill here; plain
	// modulo bias is negligible for n << 2^64 but we still reject to keep
	// the distribution exactly uniform (it matters for variance tests).
	max := uint64(n)
	limit := math.MaxUint64 - math.MaxUint64%max
	for {
		v := s.Uint64()
		if v < limit {
			return int(v % max)
		}
	}
}

// IntRange returns a uniform integer in the inclusive interval [lo, hi].
// It panics if lo > hi.
func (s *Source) IntRange(lo, hi int) int {
	if lo > hi {
		panic("rng: IntRange with lo > hi")
	}
	return lo + s.Intn(hi-lo+1)
}

// FillIntRange fills dst with uniform integers in the inclusive interval
// [lo, hi], drawing exactly the sequence len(dst) successive IntRange(lo, hi)
// calls would draw — same values, same cursor advance. It exists for the
// publish hot path: one call amortizes the method dispatch and bounds checks
// of a whole window's per-class draws without perturbing the draw order the
// determinism contract freezes. It panics if lo > hi.
func (s *Source) FillIntRange(lo, hi int, dst []int) {
	if lo > hi {
		panic("rng: FillIntRange with lo > hi")
	}
	max := uint64(hi - lo + 1)
	limit := math.MaxUint64 - math.MaxUint64%max
	state := s.state
	for i := range dst {
		for {
			state += 0x9e3779b97f4a7c15
			z := state
			z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
			z = (z ^ (z >> 27)) * 0x94d049bb133111eb
			if v := z ^ (z >> 31); v < limit {
				dst[i] = lo + int(v%max)
				break
			}
		}
	}
	s.state = state
}

// Float64 returns a uniform float64 in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Perm returns a pseudo-random permutation of the integers [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Poisson returns a Poisson-distributed integer with the given mean, using
// Knuth's method for small means and a normal approximation for large ones.
// Means this repository uses are transaction lengths (< 50), so Knuth's
// method dominates in practice.
func (s *Source) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 60 {
		// Normal approximation with continuity correction.
		v := s.Normal()*math.Sqrt(mean) + mean + 0.5
		if v < 0 {
			return 0
		}
		return int(v)
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= s.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Normal returns a standard normally distributed float64 (Box–Muller).
func (s *Source) Normal() float64 {
	for {
		u := s.Float64()
		if u == 0 {
			continue
		}
		v := s.Float64()
		return math.Sqrt(-2*math.Log(u)) * math.Cos(2*math.Pi*v)
	}
}

// Geometric returns a geometric random variate counting the number of
// failures before the first success with success probability p in (0, 1].
func (s *Source) Geometric(p float64) int {
	if p <= 0 || p > 1 {
		panic("rng: Geometric needs p in (0,1]")
	}
	if p == 1 {
		return 0
	}
	u := s.Float64()
	for u == 0 {
		u = s.Float64()
	}
	return int(math.Floor(math.Log(u) / math.Log(1-p)))
}

// Zipf draws from a Zipf distribution over ranks [0, n) with exponent
// skew >= 0 (skew == 0 degenerates to uniform). It uses a precomputed CDF
// table for exact draws; construct one Zipf per (n, skew) pair and reuse it.
type Zipf struct {
	cdf []float64
	src *Source
}

// NewZipf builds a Zipf sampler over n ranks with the given skew.
func NewZipf(src *Source, n int, skew float64) *Zipf {
	if n <= 0 {
		panic("rng: NewZipf with non-positive n")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), skew)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf, src: src}
}

// Draw returns a rank in [0, n), rank 0 being the most popular.
func (z *Zipf) Draw() int {
	u := z.src.Float64()
	// Binary search for the first cdf entry >= u.
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
