// Package trace is the per-window span tracer of the Butterfly service — an
// in-process flight recorder. Where the telemetry package answers "how is
// the run doing on aggregate", this package answers "what did window 48200
// spend its time on": every published window carries a root span with child
// spans per pipeline stage (source, mine, perturb, emit, checkpoint.save,
// resume) and per publisher phase (bias.opt, cache), each with numeric
// attributes (record counts, cache traffic, retry attempts). The server
// layer reuses the same ring with ingest-request roots (StartRoot with
// KindIngest, children parse/wal.append/wal.fsync/enqueue.wait), so a
// single per-stream trace shows a record's full path from HTTP accept to
// published window.
//
// The design is a flight recorder, not a streaming exporter:
//
//   - While a window is in flight, its spans are recorded into a plain,
//     fixed-size record owned EXCLUSIVELY by the pipeline goroutine currently
//     processing that window. Ownership moves with the window through the
//     stage channels, so recording a span is a handful of plain stores —
//     lock-free, allocation-free, and race-free by construction.
//   - When the window finishes, Commit copies the record into a fixed-size
//     ring of seqlock slots (all-atomic fields, writers never block readers,
//     readers retry torn reads), retaining the most recent Options.Windows
//     windows. Records are recycled through a free list, so the steady-state
//     hot path allocates nothing (asserted by testing.AllocsPerRun in the
//     package tests).
//   - A top-K slowest-window exemplar store survives ring eviction: the
//     windows an operator actually wants to inspect after a latency incident
//     are still there even if thousands of fast windows have since lapped
//     the ring.
//
// Snapshots (for the /debug/trace/events endpoint and -trace-out files) are
// encoded as Chrome trace-event JSON — loadable in Perfetto or
// chrome://tracing — by chrome.go; metrics.go mirrors span durations into
// the telemetry registry so traces and /metrics cross-reference by window
// id. Tracing is strictly observation-only: the pipeline's A/B identity
// tests pin published bytes identical with tracing on and off.
package trace

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Kind identifies what a span measured. Kinds are a closed set so span
// records stay fixed-size and allocation-free; String returns the stable
// name used in the Chrome JSON and the telemetry label.
type Kind uint8

const (
	// KindWindow is the root span: the whole life of one published window,
	// from the first record of its slide to its delivery (and checkpoint).
	KindWindow Kind = iota
	// KindSource is the aggregate time the mine stage spent blocked in
	// RecordSource.Next for this window's slide.
	KindSource
	// KindMine is the mine stage: record ingest + incremental mining +
	// snapshot materialization (excludes the hand-off backpressure).
	KindMine
	// KindPerturb is the perturb stage: the Butterfly sanitization of one
	// mining snapshot.
	KindPerturb
	// KindEmit is the emit stage: sink delivery including retries and their
	// backoff.
	KindEmit
	// KindCheckpointSave is the crash-safe snapshot write after delivery.
	KindCheckpointSave
	// KindResume is the checkpoint restore + source fast-forward on a
	// resumed run (a child of the first published window).
	KindResume
	// KindBiasOpt is the publisher's bias optimization (the paper's "Opt"
	// cost), a child of perturb.
	KindBiasOpt
	// KindCache is the publisher's perturbation/cache-consult phase, a child
	// of perturb carrying the cache hit/miss tally.
	KindCache
	// KindRetry is one failed delivery attempt that was retried, a child of
	// emit.
	KindRetry
	// KindIngest is a server-side root span: one HTTP ingest request's whole
	// life inside a stream, from the first parsed byte to the last record
	// enqueued (recorded by internal/server, not the pipeline).
	KindIngest
	// KindParse is the aggregate record-decode time of one ingest request, a
	// child of ingest.
	KindParse
	// KindWALAppend is the aggregate WAL encode+stage time of one ingest
	// request, a child of ingest.
	KindWALAppend
	// KindWALFsync is the group sync that made one ingest request durable
	// before its 2xx, a child of ingest.
	KindWALFsync
	// KindEnqueue is the time one ingest request spent blocked handing its
	// accepted records to the pipeline queue, a child of ingest.
	KindEnqueue

	numKinds = int(KindEnqueue) + 1
)

var kindNames = [numKinds]string{
	"window", "source", "mine", "perturb", "emit",
	"checkpoint.save", "resume", "bias.opt", "cache", "retry",
	"ingest", "parse", "wal.append", "wal.fsync", "enqueue.wait",
}

// String returns the stable span name ("mine", "checkpoint.save", ...).
func (k Kind) String() string {
	if int(k) < numKinds {
		return kindNames[k]
	}
	return "unknown"
}

// Kinds returns every span kind, in declaration order (metrics registration
// and the doc-sync test iterate it).
func Kinds() []Kind {
	ks := make([]Kind, numKinds)
	for i := range ks {
		ks[i] = Kind(i)
	}
	return ks
}

// AttrKey identifies a numeric span attribute. Like Kind it is a closed
// set, keeping attribute storage fixed-size.
type AttrKey uint8

const (
	// AttrWindow is the window id (the 1-based stream position of the
	// window's last record) — the join key against the telemetry gauges.
	AttrWindow AttrKey = iota
	// AttrRecords is the cumulative well-formed records consumed when the
	// window was mined.
	AttrRecords
	// AttrBadRecords is the cumulative malformed records skipped.
	AttrBadRecords
	// AttrRetries is the number of retried delivery attempts this window.
	AttrRetries
	// AttrAttempt is the 1-based attempt index on a retry span.
	AttrAttempt
	// AttrCacheHits is the republication-cache hits of this window.
	AttrCacheHits
	// AttrCacheMisses is the republication-cache misses of this window.
	AttrCacheMisses
	// AttrItemsets is the published itemset count of this window.
	AttrItemsets
	// AttrBiasReused is 1 when the bias optimization reused the previous
	// window's result (identical FEC ladder), else 0.
	AttrBiasReused
	// AttrLines is the accepted-line count of an ingest request (good + bad).
	AttrLines
	// AttrQueueLen is the pipeline queue depth observed when an ingest
	// request finished enqueuing.
	AttrQueueLen

	numAttrKeys = int(AttrQueueLen) + 1
)

var attrKeyNames = [numAttrKeys]string{
	"window", "records", "bad_records", "retries", "attempt",
	"cache_hits", "cache_misses", "itemsets", "bias_reused",
	"lines", "queue_len",
}

// String returns the stable attribute name used in the Chrome JSON args.
func (k AttrKey) String() string {
	if int(k) < numAttrKeys {
		return attrKeyNames[k]
	}
	return "unknown"
}

// Fixed record geometry. A window with more than MaxSpans spans (e.g. a
// pathological retry storm) drops the excess and counts it in Dropped.
const (
	// MaxSpans bounds the spans of one window record (root excluded).
	MaxSpans = 24
	// MaxAttrs bounds the attributes of one span.
	MaxAttrs = 6
)

// spanData is one completed span in an in-flight (plain, exclusively owned)
// window record. Times are nanoseconds since the tracer epoch.
type spanData struct {
	kind  Kind
	nattr int8
	start int64
	dur   int64
	akey  [MaxAttrs]AttrKey
	aval  [MaxAttrs]int64
}

// windowData is the plain form of one window's trace: the in-flight record,
// the exemplar-store slot, and the unit the seqlock ring copies.
type windowData struct {
	id      uint64 // window id (stream position); 0 until SetID
	commit  uint64 // commit sequence, assigned by Commit
	start   int64  // root span start, nanos since epoch
	dur     int64  // root span duration, set by Commit
	kind    Kind   // root span kind; zero value is KindWindow
	nroot   int8   // attributes on the root span
	nspans  int32
	dropped int32
	rkey    [MaxAttrs]AttrKey
	rval    [MaxAttrs]int64
	spans   [MaxSpans]spanData
}

func (d *windowData) reset() { *d = windowData{} }

// Window is the in-flight trace of one published window. It is owned by
// exactly one goroutine at a time — the pipeline hands it from stage to
// stage with the window itself, and the channel transfer provides the
// happens-before edge — so its methods perform plain stores: no locks, no
// atomics, no allocation. All methods are nil-receiver safe; a disabled
// tracer hands out nil Windows and the instrumentation call sites need no
// guards.
type Window struct {
	t *Tracer
	windowData
}

// SetID binds the window id (stream position). Call it as soon as the id is
// known; it is the join key against metrics and logs.
func (w *Window) SetID(id uint64) {
	if w != nil {
		w.id = id
	}
}

// Attr sets a root-span attribute (last write wins is not needed: keys are
// distinct by convention; a full attribute table drops the write).
func (w *Window) Attr(key AttrKey, val int64) {
	if w == nil {
		return
	}
	if int(w.nroot) < MaxAttrs {
		w.rkey[w.nroot] = key
		w.rval[w.nroot] = val
		w.nroot++
	}
}

// SpanRef addresses one recorded span of a Window for attribute writes. The
// zero value is inert.
type SpanRef struct {
	w *Window
	i int32 // 1-based; 0 = invalid
}

// Attr sets an attribute on the referenced span.
func (s SpanRef) Attr(key AttrKey, val int64) {
	if s.w == nil || s.i == 0 {
		return
	}
	sp := &s.w.spans[s.i-1]
	if int(sp.nattr) < MaxAttrs {
		sp.akey[sp.nattr] = key
		sp.aval[sp.nattr] = val
		sp.nattr++
	}
}

// Add records one completed span: it started at start and ran for d. Spans
// may be recorded in any order; the Chrome encoder renders nesting from
// time containment. Returns a SpanRef for attribute writes.
func (w *Window) Add(kind Kind, start time.Time, d time.Duration) SpanRef {
	if w == nil {
		return SpanRef{}
	}
	if w.nspans >= MaxSpans {
		w.dropped++
		return SpanRef{}
	}
	sp := &w.spans[w.nspans]
	sp.kind = kind
	sp.nattr = 0
	sp.start = start.Sub(w.t.epoch).Nanoseconds()
	sp.dur = d.Nanoseconds()
	w.nspans++
	return SpanRef{w: w, i: w.nspans}
}

// ringSpan is the all-atomic form of spanData inside a seqlock ring slot.
type ringSpan struct {
	word  atomic.Uint64 // kind<<8 | nattr
	start atomic.Int64
	dur   atomic.Int64
	akey  [MaxAttrs]atomic.Uint32
	aval  [MaxAttrs]atomic.Int64
}

// ringRec is one seqlock slot: seq is odd while a commit is copying into
// the slot; readers retry on a torn or in-progress read. Every data field
// is atomic, so concurrent copy-out is race-detector-clean.
type ringRec struct {
	seq     atomic.Uint64
	id      atomic.Uint64
	commit  atomic.Uint64
	start   atomic.Int64
	dur     atomic.Int64
	rootw   atomic.Uint64 // kind<<8 | nroot
	rkey    [MaxAttrs]atomic.Uint32
	rval    [MaxAttrs]atomic.Int64
	nspans  atomic.Int32
	dropped atomic.Int32
	spans   [MaxSpans]ringSpan
}

// store copies d into the slot (caller holds the seqlock write claim).
func (r *ringRec) store(d *windowData) {
	r.id.Store(d.id)
	r.commit.Store(d.commit)
	r.start.Store(d.start)
	r.dur.Store(d.dur)
	r.rootw.Store(uint64(d.kind)<<8 | uint64(d.nroot))
	for i := 0; i < int(d.nroot); i++ {
		r.rkey[i].Store(uint32(d.rkey[i]))
		r.rval[i].Store(d.rval[i])
	}
	n := d.nspans
	r.nspans.Store(n)
	r.dropped.Store(d.dropped)
	for i := int32(0); i < n; i++ {
		sp, dst := &d.spans[i], &r.spans[i]
		dst.word.Store(uint64(sp.kind)<<8 | uint64(sp.nattr))
		dst.start.Store(sp.start)
		dst.dur.Store(sp.dur)
		for a := 0; a < int(sp.nattr); a++ {
			dst.akey[a].Store(uint32(sp.akey[a]))
			dst.aval[a].Store(sp.aval[a])
		}
	}
}

// load copies the slot into d, returning false on a torn/in-progress/empty
// read (the caller retries or skips the slot).
func (r *ringRec) load(d *windowData) bool {
	for tries := 0; tries < 8; tries++ {
		s1 := r.seq.Load()
		if s1 == 0 {
			return false // never written
		}
		if s1%2 == 1 {
			continue // commit in progress
		}
		d.id = r.id.Load()
		d.commit = r.commit.Load()
		d.start = r.start.Load()
		d.dur = r.dur.Load()
		rootw := r.rootw.Load()
		d.kind = Kind(rootw >> 8)
		d.nroot = int8(rootw & 0xff)
		if d.nroot < 0 || int(d.nroot) > MaxAttrs {
			continue
		}
		for i := 0; i < int(d.nroot); i++ {
			d.rkey[i] = AttrKey(r.rkey[i].Load())
			d.rval[i] = r.rval[i].Load()
		}
		n := r.nspans.Load()
		if n < 0 || n > MaxSpans {
			continue
		}
		d.nspans = n
		d.dropped = r.dropped.Load()
		ok := true
		for i := int32(0); i < n; i++ {
			src, dst := &r.spans[i], &d.spans[i]
			word := src.word.Load()
			dst.kind = Kind(word >> 8)
			dst.nattr = int8(word & 0xff)
			if int(dst.nattr) > MaxAttrs {
				ok = false
				break
			}
			dst.start = src.start.Load()
			dst.dur = src.dur.Load()
			for a := 0; a < int(dst.nattr); a++ {
				dst.akey[a] = AttrKey(src.akey[a].Load())
				dst.aval[a] = src.aval[a].Load()
			}
		}
		if ok && r.seq.Load() == s1 {
			return true
		}
	}
	return false
}

// Options configures a Tracer.
type Options struct {
	// Windows is the ring capacity — how many recent windows the flight
	// recorder retains (default 256).
	Windows int
	// TopK is the slowest-window exemplar store size (default 8; 0 uses the
	// default, negative disables the store).
	TopK int
}

// Defaults for Options.
const (
	DefaultWindows = 256
	DefaultTopK    = 8
)

// Tracer is the flight recorder. All methods are safe for concurrent use
// and nil-receiver safe: a nil *Tracer is a disabled tracer whose
// StartWindow returns nil, making instrumented code zero-cost when tracing
// is off (one pointer test per call site).
type Tracer struct {
	epoch time.Time
	now   func() time.Time // test seam; nil means time.Now

	seq  atomic.Uint64 // commit sequence
	ring []ringRec

	free chan *Window

	exMu   sync.Mutex
	exRecs []windowData // top-K by root duration; dur==0 slots are empty
	exMin  atomic.Int64 // admission fast-path threshold once the store fills
	exFull atomic.Bool

	metrics *traceMetrics // see metrics.go; nil disables mirroring
}

// New returns a Tracer retaining the last opts.Windows windows.
func New(opts Options) *Tracer {
	if opts.Windows <= 0 {
		opts.Windows = DefaultWindows
	}
	topK := opts.TopK
	if topK == 0 {
		topK = DefaultTopK
	}
	if topK < 0 {
		topK = 0
	}
	t := &Tracer{
		epoch: time.Now(),
		ring:  make([]ringRec, opts.Windows),
		// The free list holds more records than the pipeline has windows in
		// flight, so the steady state never allocates; a drained list (e.g.
		// records abandoned by an aborted run) just re-allocates lazily.
		free:   make(chan *Window, 32),
		exRecs: make([]windowData, topK),
	}
	return t
}

// Capacity returns the ring size (retained windows).
func (t *Tracer) Capacity() int {
	if t == nil {
		return 0
	}
	return len(t.ring)
}

func (t *Tracer) clock() time.Time {
	if t.now != nil {
		return t.now()
	}
	return time.Now()
}

// StartWindow begins recording one window's trace. The returned Window is
// exclusively owned by the caller (hand it off with the window itself);
// finish with Commit. A nil tracer returns a nil Window, whose methods all
// no-op.
func (t *Tracer) StartWindow() *Window {
	return t.StartRoot(KindWindow)
}

// StartRoot begins recording a trace rooted at an arbitrary span kind — the
// server uses KindIngest roots so one ring carries both window traces and
// the ingest requests that fed them. Only KindWindow roots compete for the
// slowest-window exemplar store and gauge; every root kind shares the ring.
func (t *Tracer) StartRoot(kind Kind) *Window {
	if t == nil {
		return nil
	}
	var w *Window
	select {
	case w = <-t.free:
		w.reset()
	default:
		w = &Window{}
	}
	w.t = t
	w.kind = kind
	w.start = t.clock().Sub(t.epoch).Nanoseconds()
	return w
}

// Commit finalizes w's root span, publishes the record into the ring
// (evicting the oldest window), offers it to the slowest-window exemplar
// store, mirrors span durations into the telemetry registry (when
// SetMetrics was called), and recycles the record. w must not be used after
// Commit. Nil tracer or nil w no-op.
func (t *Tracer) Commit(w *Window) {
	if t == nil || w == nil {
		return
	}
	w.dur = t.clock().Sub(t.epoch).Nanoseconds() - w.start
	if w.dur <= 0 {
		w.dur = 1 // keep committed records distinguishable from empty slots
	}
	w.commit = t.seq.Add(1)
	slot := &t.ring[int((w.commit-1)%uint64(len(t.ring)))]
	// Claim the slot's seqlock. Concurrent commits land on distinct slots
	// (the commit sequence spreads them); contention here needs two commits
	// a full ring apart racing — possible with tiny test rings, so spin.
	for {
		s := slot.seq.Load()
		if s%2 == 0 && slot.seq.CompareAndSwap(s, s+1) {
			break
		}
	}
	slot.store(&w.windowData)
	slot.seq.Add(1)

	if w.kind == KindWindow {
		t.admitExemplar(&w.windowData)
	}
	t.observe(&w.windowData)

	select {
	case t.free <- w:
	default: // free list full; let the GC take it
	}
}

// admitExemplar offers one committed window to the top-K store. The fast
// path — window no slower than the current K-th slowest once the store is
// full — is two atomic loads; admission itself copies into a pre-allocated
// slot under a short mutex.
func (t *Tracer) admitExemplar(d *windowData) {
	if len(t.exRecs) == 0 {
		return
	}
	if t.exFull.Load() && d.dur <= t.exMin.Load() {
		return
	}
	t.exMu.Lock()
	defer t.exMu.Unlock()
	minIdx, minDur := -1, int64(0)
	for i := range t.exRecs {
		e := &t.exRecs[i]
		if e.dur == 0 { // empty slot
			minIdx, minDur = i, 0
			break
		}
		if minIdx == -1 || e.dur < minDur {
			minIdx, minDur = i, e.dur
		}
	}
	if d.dur <= minDur && t.exRecs[minIdx].dur != 0 {
		return
	}
	t.exRecs[minIdx] = *d
	newMin, full := int64(0), true
	for i := range t.exRecs {
		e := &t.exRecs[i]
		if e.dur == 0 {
			full = false
			continue
		}
		if newMin == 0 || e.dur < newMin {
			newMin = e.dur
		}
	}
	t.exMin.Store(newMin)
	t.exFull.Store(full)
}

// Attr is one decoded span attribute.
type Attr struct {
	Key string `json:"key"`
	Val int64  `json:"val"`
}

// Span is one decoded span of a snapshot record.
type Span struct {
	Name  string        `json:"name"`
	Start time.Duration `json:"start"` // since the tracer epoch
	Dur   time.Duration `json:"dur"`
	Attrs []Attr        `json:"attrs,omitempty"`
}

// Record is one root span's decoded trace (a window, or a server-side
// ingest request).
type Record struct {
	Window  uint64        `json:"window"`
	Kind    string        `json:"kind"` // root span kind ("window", "ingest", ...)
	Seq     uint64        `json:"seq"`  // commit order
	Start   time.Duration `json:"start"`
	Dur     time.Duration `json:"dur"`
	Dropped int           `json:"dropped,omitempty"`
	Attrs   []Attr        `json:"attrs,omitempty"`
	Spans   []Span        `json:"spans"`
}

func decodeAttrs(n int, keys *[MaxAttrs]AttrKey, vals *[MaxAttrs]int64) []Attr {
	if n == 0 {
		return nil
	}
	out := make([]Attr, n)
	for i := 0; i < n; i++ {
		out[i] = Attr{Key: keys[i].String(), Val: vals[i]}
	}
	return out
}

func (d *windowData) record() Record {
	rec := Record{
		Window:  d.id,
		Kind:    d.kind.String(),
		Seq:     d.commit,
		Start:   time.Duration(d.start),
		Dur:     time.Duration(d.dur),
		Dropped: int(d.dropped),
		Attrs:   decodeAttrs(int(d.nroot), &d.rkey, &d.rval),
		Spans:   make([]Span, d.nspans),
	}
	for i := int32(0); i < d.nspans; i++ {
		sp := &d.spans[i]
		rec.Spans[i] = Span{
			Name:  sp.kind.String(),
			Start: time.Duration(sp.start),
			Dur:   time.Duration(sp.dur),
			Attrs: decodeAttrs(int(sp.nattr), &sp.akey, &sp.aval),
		}
	}
	return rec
}

// Snapshot decodes the retained windows — the ring union the slowest-window
// exemplars, de-duplicated — sorted by commit order. It never blocks
// writers; a slot mid-commit is skipped after bounded retries. Safe to call
// at any time, including concurrently with commits; nil tracer returns nil.
func (t *Tracer) Snapshot() []Record {
	if t == nil {
		return nil
	}
	seen := make(map[uint64]bool, len(t.ring))
	out := make([]Record, 0, len(t.ring)+len(t.exRecs))
	var d windowData
	for i := range t.ring {
		if t.ring[i].load(&d) && !seen[d.commit] {
			seen[d.commit] = true
			out = append(out, d.record())
		}
	}
	t.exMu.Lock()
	for i := range t.exRecs {
		e := &t.exRecs[i]
		if e.dur != 0 && !seen[e.commit] {
			seen[e.commit] = true
			out = append(out, e.record())
		}
	}
	t.exMu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Exemplars decodes just the slowest-window store, slowest first.
func (t *Tracer) Exemplars() []Record {
	if t == nil {
		return nil
	}
	t.exMu.Lock()
	out := make([]Record, 0, len(t.exRecs))
	for i := range t.exRecs {
		if e := &t.exRecs[i]; e.dur != 0 {
			out = append(out, e.record())
		}
	}
	t.exMu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Dur > out[j].Dur })
	return out
}
