package trace

// Telemetry bridge: span durations mirrored into the PR 4 registry so the
// aggregate view (/metrics) and the per-window view (/debug/trace/events)
// cross-reference — an operator who sees a fat butterfly_trace_span_seconds
// bucket pulls the trace and finds the exact windows via the slowest-window
// exemplars. Mirroring happens once per window at Commit, off the span hot
// path, and is observation-only like everything else here.

import (
	"sync/atomic"

	"repro/internal/telemetry"
)

// Trace metric names (see OBSERVABILITY.md for the full reference).
const (
	// MetricSpanSeconds is a histogram family labeled span=<kind> recording
	// every committed span's duration, including the root (span="window").
	MetricSpanSeconds = "butterfly_trace_span_seconds"
	// MetricSlowestWindow is a gauge holding the slowest root-span duration
	// committed so far (the top slowest-window exemplar).
	MetricSlowestWindow = "butterfly_trace_slowest_window_seconds"
)

// traceMetrics holds the registered instrument set: one histogram per span
// kind (pre-registered, so the commit path does no label lookups) and the
// slowest-window gauge.
type traceMetrics struct {
	spans   [numKinds]*telemetry.Histogram
	slowest *telemetry.Gauge
	maxDur  atomic.Int64 // nanos; commits may race, so CAS the max
}

// SetMetrics registers the tracer's instruments on reg and starts mirroring
// at every Commit; a nil reg detaches. Registration is idempotent across
// tracers sharing a registry.
func (t *Tracer) SetMetrics(reg *telemetry.Registry) {
	if t == nil {
		return
	}
	if reg == nil {
		t.metrics = nil
		return
	}
	m := &traceMetrics{
		slowest: reg.Gauge(MetricSlowestWindow,
			"Slowest committed window's root-span duration (the top flight-recorder exemplar).", nil),
	}
	for _, k := range Kinds() {
		m.spans[k] = reg.Histogram(MetricSpanSeconds,
			"Committed span durations from the per-window flight recorder, by span kind.",
			nil, telemetry.Labels{"span": k.String()})
	}
	t.metrics = m
}

// observe mirrors one committed window into the registry (no-op when
// SetMetrics was not called). Called from Commit only.
func (t *Tracer) observe(d *windowData) {
	m := t.metrics
	if m == nil {
		return
	}
	if int(d.kind) < numKinds {
		m.spans[d.kind].Observe(float64(d.dur) / 1e9)
	}
	for i := int32(0); i < d.nspans; i++ {
		sp := &d.spans[i]
		if int(sp.kind) < numKinds {
			m.spans[sp.kind].Observe(float64(sp.dur) / 1e9)
		}
	}
	// The gauge tracks the max window-root duration (ingest roots share the
	// ring but not this gauge); commits may race, so CAS the monotone max and
	// only the winning writer refreshes the gauge.
	if d.kind != KindWindow {
		return
	}
	for {
		cur := m.maxDur.Load()
		if d.dur <= cur {
			break
		}
		if m.maxDur.CompareAndSwap(cur, d.dur) {
			m.slowest.Set(float64(d.dur) / 1e9)
			break
		}
	}
}
