package trace

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// fakeClock steps a synthetic clock by a fixed amount per reading, making
// span times and durations deterministic.
type fakeClock struct {
	mu   sync.Mutex
	t    time.Time
	step time.Duration
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(c.step)
	return c.t
}

// newTestTracer returns a tracer on a deterministic clock starting at the
// epoch and advancing step per reading.
func newTestTracer(opts Options, step time.Duration) (*Tracer, *fakeClock) {
	t := New(opts)
	c := &fakeClock{t: t.epoch, step: step}
	t.now = c.now
	return t, c
}

// commitWindow records one synthetic window with a mine and an emit span;
// every span carries the window id as an attribute so torn reads are
// detectable.
func commitWindow(tr *Tracer, id uint64) {
	w := tr.StartWindow()
	w.SetID(id)
	w.Attr(AttrWindow, int64(id))
	w.Add(KindMine, tr.clock(), time.Millisecond).Attr(AttrWindow, int64(id))
	w.Add(KindEmit, tr.clock(), time.Millisecond).Attr(AttrWindow, int64(id))
	tr.Commit(w)
}

func TestTracerBasicSnapshot(t *testing.T) {
	tr, _ := newTestTracer(Options{Windows: 8}, time.Millisecond)
	for id := uint64(1); id <= 3; id++ {
		commitWindow(tr, id)
	}
	recs := tr.Snapshot()
	if len(recs) != 3 {
		t.Fatalf("snapshot holds %d records, want 3", len(recs))
	}
	for i, rec := range recs {
		if rec.Window != uint64(i+1) {
			t.Errorf("record %d has window id %d, want %d (commit-ordered)", i, rec.Window, i+1)
		}
		if rec.Dur <= 0 {
			t.Errorf("record %d has non-positive root duration %v", i, rec.Dur)
		}
		if len(rec.Spans) != 2 {
			t.Fatalf("record %d has %d spans, want 2", i, len(rec.Spans))
		}
		if rec.Spans[0].Name != "mine" || rec.Spans[1].Name != "emit" {
			t.Errorf("record %d span names %q/%q, want mine/emit", i, rec.Spans[0].Name, rec.Spans[1].Name)
		}
		for _, sp := range rec.Spans {
			if len(sp.Attrs) != 1 || sp.Attrs[0].Key != "window" || sp.Attrs[0].Val != int64(rec.Window) {
				t.Errorf("record %d span %s attrs %v, want window=%d", i, sp.Name, sp.Attrs, rec.Window)
			}
		}
	}
}

// TestTracerRingWraparound floods a small ring and checks only the newest
// Capacity windows remain (exemplars aside, which keep their own copies).
func TestTracerRingWraparound(t *testing.T) {
	tr, _ := newTestTracer(Options{Windows: 4, TopK: -1}, time.Microsecond)
	for id := uint64(1); id <= 10; id++ {
		commitWindow(tr, id)
	}
	recs := tr.Snapshot()
	if len(recs) != 4 {
		t.Fatalf("snapshot holds %d records, want ring capacity 4", len(recs))
	}
	for i, rec := range recs {
		want := uint64(7 + i)
		if rec.Window != want {
			t.Errorf("record %d is window %d, want %d (newest 4 retained)", i, rec.Window, want)
		}
	}
}

// TestTracerConcurrentCommitEvictionRace drives many concurrent committers
// around a tiny ring while readers snapshot continuously — the wraparound
// eviction race under -race. Every span carries its window id as an
// attribute; a torn read would surface as a record whose span attributes
// disagree with its id.
func TestTracerConcurrentCommitEvictionRace(t *testing.T) {
	tr := New(Options{Windows: 4, TopK: 4})
	const writers, perWriter = 8, 200
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, rec := range tr.Snapshot() {
					for _, sp := range rec.Spans {
						for _, a := range sp.Attrs {
							if a.Key == "window" && a.Val != int64(rec.Window) {
								t.Errorf("torn read: record %d has span attr window=%d", rec.Window, a.Val)
								return
							}
						}
					}
				}
			}
		}()
	}
	var writerWG sync.WaitGroup
	for g := 0; g < writers; g++ {
		writerWG.Add(1)
		go func(g int) {
			defer writerWG.Done()
			for i := 0; i < perWriter; i++ {
				commitWindow(tr, uint64(g*perWriter+i+1))
			}
		}(g)
	}
	writerWG.Wait()
	close(stop)
	wg.Wait()
	if got := len(tr.Snapshot()); got < 4 {
		t.Errorf("post-race snapshot holds %d records, want >= ring capacity 4", got)
	}
}

// TestTracerExemplarsSurviveEviction commits one slow window early, floods
// the ring with fast windows, and checks the slow window is still visible —
// in the exemplar store and in the full snapshot.
func TestTracerExemplarsSurviveEviction(t *testing.T) {
	tr, clock := newTestTracer(Options{Windows: 4, TopK: 2}, time.Microsecond)

	clock.step = 50 * time.Millisecond // slow window: wide clock steps
	commitWindow(tr, 999)
	clock.step = time.Microsecond
	for id := uint64(1); id <= 20; id++ {
		commitWindow(tr, id)
	}

	ex := tr.Exemplars()
	if len(ex) == 0 || ex[0].Window != 999 {
		t.Fatalf("slowest exemplar is %+v, want window 999", ex)
	}
	found := false
	for _, rec := range tr.Snapshot() {
		if rec.Window == 999 {
			found = true
		}
	}
	if !found {
		t.Error("window 999 evicted from the ring was not preserved by the exemplar store")
	}
	if got := len(tr.Snapshot()); got != 4+2 {
		t.Errorf("snapshot holds %d records, want 4 ring + 2 surviving exemplars (TopK)", got)
	}
}

// TestTracerZeroAllocHotPath is the acceptance criterion: after warm-up,
// recording and committing a full window allocates nothing.
func TestTracerZeroAllocHotPath(t *testing.T) {
	tr := New(Options{Windows: 16})
	reg := telemetry.NewRegistry()
	tr.SetMetrics(reg)
	record := func() {
		w := tr.StartWindow()
		w.SetID(42)
		w.Attr(AttrRecords, 1000)
		sp := w.Add(KindMine, time.Now(), time.Millisecond)
		sp.Attr(AttrWindow, 42)
		w.Add(KindPerturb, time.Now(), time.Millisecond)
		w.Add(KindEmit, time.Now(), time.Millisecond).Attr(AttrRetries, 0)
		tr.Commit(w)
	}
	for i := 0; i < 64; i++ {
		record() // warm the free list and the exemplar store
	}
	if allocs := testing.AllocsPerRun(100, record); allocs != 0 {
		t.Errorf("span hot path allocates %v objects per window after warm-up, want 0", allocs)
	}
}

// TestTracerGoroutineLeak pins the design point that the tracer spawns no
// goroutines of its own — heavy use leaves the goroutine count unchanged.
func TestTracerGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	tr := New(Options{Windows: 8})
	for id := uint64(1); id <= 100; id++ {
		commitWindow(tr, id)
	}
	tr.Snapshot()
	tr.Exemplars()
	time.Sleep(10 * time.Millisecond)
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("tracer use grew the goroutine count from %d to %d", before, after)
	}
}

// TestTracerNilSafety: a disabled tracer and its nil windows must be inert
// on every method.
func TestTracerNilSafety(t *testing.T) {
	var tr *Tracer
	w := tr.StartWindow()
	if w != nil {
		t.Fatal("nil tracer returned a non-nil window")
	}
	w.SetID(1)
	w.Attr(AttrWindow, 1)
	w.Add(KindMine, time.Now(), time.Second).Attr(AttrWindow, 1)
	tr.Commit(w)
	tr.SetMetrics(telemetry.NewRegistry())
	if tr.Snapshot() != nil || tr.Exemplars() != nil {
		t.Error("nil tracer snapshot not nil")
	}
	if tr.Capacity() != 0 {
		t.Error("nil tracer capacity not 0")
	}

	// A live tracer must also tolerate span overflow by counting drops.
	live := New(Options{Windows: 2})
	lw := live.StartWindow()
	for i := 0; i < MaxSpans+5; i++ {
		lw.Add(KindRetry, time.Now(), time.Millisecond)
	}
	live.Commit(lw)
	recs := live.Snapshot()
	if len(recs) != 1 || recs[0].Dropped != 5 {
		t.Fatalf("overflowed window recorded %+v, want Dropped=5", recs)
	}
}

// TestTracerMetricsMirror checks the commit-time telemetry bridge: span
// histograms fill by kind and the slowest-window gauge tracks the max.
func TestTracerMetricsMirror(t *testing.T) {
	tr, clock := newTestTracer(Options{Windows: 8}, time.Millisecond)
	reg := telemetry.NewRegistry()
	tr.SetMetrics(reg)
	commitWindow(tr, 1)
	clock.step = 100 * time.Millisecond
	commitWindow(tr, 2)

	var slowest float64
	hist := map[string]uint64{}
	for _, f := range reg.Snapshot() {
		for _, s := range f.Series {
			switch f.Name {
			case MetricSlowestWindow:
				slowest = s.Value
			case MetricSpanSeconds:
				hist[s.Labels] += s.Count
			}
		}
	}
	if slowest < 0.1 {
		t.Errorf("slowest-window gauge %v, want >= 0.1s (the slow window)", slowest)
	}
	for _, label := range []string{`{span="window"}`, `{span="mine"}`, `{span="emit"}`} {
		if hist[label] != 2 {
			t.Errorf("span histogram %s observed %d, want 2", label, hist[label])
		}
	}
}
