package trace

// Chrome trace-event export: the flight recorder's snapshot rendered in the
// Trace Event Format (the JSON that Perfetto and chrome://tracing load).
// Each window becomes its own track (tid = window id) holding the root span
// with the stage spans nested inside it by time containment, so the UI
// shows source/mine/perturb/emit/checkpoint bars per window and retry spans
// nested under emit. Server-side ingest roots (KindIngest) share the same
// process but render on a dedicated "ingest" track (tid 0), so one Perfetto
// timeline shows a record's full path: its ingest request on the ingest
// lane, its window on the window lane, same time axis. Timestamps are
// microseconds since the tracer epoch.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
)

// chromeEvent is one entry of the traceEvents array. Args is a map so the
// encoder emits keys sorted (encoding/json sorts map keys), keeping the
// output byte-stable for the golden test.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  uint64         `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the top-level JSON object.
type chromeTrace struct {
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	TraceEvents     []chromeEvent `json:"traceEvents"`
}

const chromePid = 1

func micros(d int64) float64 { return float64(d) / 1e3 }

func attrArgs(attrs []Attr) map[string]any {
	if len(attrs) == 0 {
		return nil
	}
	args := make(map[string]any, len(attrs))
	for _, a := range attrs {
		args[a.Key] = a.Val
	}
	return args
}

// chromeEvents renders decoded records into trace events. Window roots get
// one track each (tid = window id); every other root kind — ingest requests
// — lands on the shared tid-0 "ingest" track.
func chromeEvents(records []Record) []chromeEvent {
	events := []chromeEvent{{
		Name: "process_name", Ph: "M", Pid: chromePid,
		Args: map[string]any{"name": "butterfly pipeline"},
	}, {
		Name: "thread_name", Ph: "M", Pid: chromePid, Tid: 0,
		Args: map[string]any{"name": "ingest"},
	}}
	for _, rec := range records {
		tid := rec.Window
		if rec.Kind != "" && rec.Kind != KindWindow.String() {
			tid = 0
		}
		root := chromeEvent{
			Name: fmt.Sprintf("%s %d", rootKindName(rec.Kind), rec.Window),
			Cat:  rootKindName(rec.Kind),
			Ph:   "X",
			Ts:   micros(rec.Start.Nanoseconds()),
			Dur:  micros(rec.Dur.Nanoseconds()),
			Pid:  chromePid,
			Tid:  tid,
			Args: attrArgs(rec.Attrs),
		}
		if rec.Dropped > 0 {
			if root.Args == nil {
				root.Args = map[string]any{}
			}
			root.Args["dropped_spans"] = int64(rec.Dropped)
		}
		events = append(events, root)
		for _, sp := range rec.Spans {
			events = append(events, chromeEvent{
				Name: sp.Name,
				Cat:  "stage",
				Ph:   "X",
				Ts:   micros(sp.Start.Nanoseconds()),
				Dur:  micros(sp.Dur.Nanoseconds()),
				Pid:  chromePid,
				Tid:  tid,
				Args: attrArgs(sp.Attrs),
			})
		}
	}
	return events
}

// rootKindName defaults pre-Kind records (older snapshots decode with an
// empty Kind) to "window".
func rootKindName(kind string) string {
	if kind == "" {
		return KindWindow.String()
	}
	return kind
}

// WriteChrome writes the current snapshot (ring ∪ exemplars) as Chrome
// trace-event JSON. A nil tracer writes an empty, still-valid trace.
func (t *Tracer) WriteChrome(w io.Writer) error {
	trace := chromeTrace{
		DisplayTimeUnit: "ms",
		TraceEvents:     chromeEvents(t.Snapshot()),
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(trace)
}

// WriteChromeFile writes the snapshot to path (0644, truncating), syncing
// before close so the flight-recorder dump survives the process exiting
// right after — the whole point of dumping on the abort path.
func (t *Tracer) WriteChromeFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteChrome(f); err != nil {
		f.Close()
		return fmt.Errorf("writing %s: %w", path, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("syncing %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("closing %s: %w", path, err)
	}
	return nil
}

// Handler serves the snapshot as Chrome trace-event JSON — the
// /debug/trace/events endpoint. Safe to scrape during a live run: snapshot
// reads never block the pipeline's span writers.
func (t *Tracer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = t.WriteChrome(w)
	})
}
