package trace

import (
	"flag"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// goldenTracer builds a deterministic two-window trace on a fake clock:
// window 7 with the full stage ladder plus a retry, window 8 overflowing
// its span table so the dropped counter renders.
func goldenTracer() *Tracer {
	tr, clock := newTestTracer(Options{Windows: 8, TopK: 2}, 0)
	at := func(ms int64) time.Time { return tr.epoch.Add(time.Duration(ms) * time.Millisecond) }

	w := tr.StartWindow()
	w.SetID(7)
	w.Attr(AttrWindow, 7)
	w.Attr(AttrRecords, 300)
	w.Add(KindSource, at(0), 2*time.Millisecond).Attr(AttrRecords, 300)
	w.Add(KindMine, at(2), 10*time.Millisecond).Attr(AttrItemsets, 41)
	sp := w.Add(KindPerturb, at(12), 5*time.Millisecond)
	sp.Attr(AttrCacheHits, 12)
	sp.Attr(AttrCacheMisses, 29)
	w.Add(KindBiasOpt, at(12), 3*time.Millisecond).Attr(AttrBiasReused, 0)
	w.Add(KindEmit, at(17), 4*time.Millisecond).Attr(AttrRetries, 1)
	w.Add(KindRetry, at(17), time.Millisecond).Attr(AttrAttempt, 1)
	w.Add(KindCheckpointSave, at(21), 2*time.Millisecond)
	clock.t = at(23)
	tr.Commit(w)

	w = tr.StartWindow()
	w.SetID(8)
	w.Attr(AttrWindow, 8)
	for i := 0; i < MaxSpans+2; i++ {
		w.Add(KindRetry, at(30+int64(i)), time.Millisecond)
	}
	clock.t = at(60)
	tr.Commit(w)
	return tr
}

// TestChromeGolden pins the exact Chrome trace-event JSON the encoder
// emits. Regenerate with `go test ./internal/trace/ -run ChromeGolden -update`.
func TestChromeGolden(t *testing.T) {
	var buf strings.Builder
	if err := goldenTracer().WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "chrome.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(buf.String()), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden (run with -update to create): %v", err)
	}
	if buf.String() != string(want) {
		t.Errorf("Chrome trace JSON drifted from golden:\ngot:\n%s\nwant:\n%s", buf.String(), want)
	}
}

// TestChromeNilTracer: a nil tracer must still write a valid, loadable
// (empty) trace — the -trace-out flush path cannot crash a disabled run.
func TestChromeNilTracer(t *testing.T) {
	var tr *Tracer
	var buf strings.Builder
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"traceEvents"`) {
		t.Errorf("nil tracer wrote %q, want a valid empty trace object", buf.String())
	}
}

// TestChromeWriteFile round-trips the snapshot through -trace-out's file
// writer.
func TestChromeWriteFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := goldenTracer().WriteChromeFile(path); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"displayTimeUnit": "ms"`, `"window 7"`, `"checkpoint.save"`, `"dropped_spans": 2`} {
		if !strings.Contains(string(b), want) {
			t.Errorf("trace file missing %s", want)
		}
	}
}

// TestChromeHandler serves the same JSON over HTTP — the
// /debug/trace/events endpoint contract.
func TestChromeHandler(t *testing.T) {
	srv := httptest.NewServer(goldenTracer().Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json; charset=utf-8" {
		t.Errorf("Content-Type = %q", ct)
	}
	var buf strings.Builder
	if _, err := io.Copy(&buf, resp.Body); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"ph": "X"`) || !strings.Contains(buf.String(), `"process_name"`) {
		t.Errorf("endpoint served %q, want complete trace events", buf.String())
	}
}
