package attack

import (
	"repro/internal/itemset"
	"repro/internal/lattice"
)

// Estimator is an adversary's best-guess machinery against one (typically
// sanitized) view: it resolves every lattice member either to its published
// value, to a value pinned by tight bounds, or to the midpoint of its
// non-derivable bounds, and combines them by inclusion–exclusion.
//
// This is the §V-C adversary the privacy metric measures: with unbiased
// perturbation the published values are the minimum-MSE estimates of the
// true supports (Lemma 1), so plugging them into the inclusion–exclusion sum
// yields the minimum-MSE pattern estimate the paper analyzes.
type Estimator struct {
	t    *table
	opts Options
}

// NewEstimator prepares an estimator over a view, running the completion
// pass once so repeated estimates share the pinning work. Set
// opts.SkipCompletion to resolve missing members directly from their bounds
// instead: a tight bound's midpoint is its exact value, so only second-order
// pins (values that sharpen other itemsets' bounds) are lost — a large
// speedup when estimating many patterns across many windows.
func NewEstimator(v *View, opts Options) *Estimator {
	opts = opts.withDefaults()
	t := newTable(v)
	// Knowledge points override sanitized values BEFORE completion so their
	// exactness propagates into every bound computed from them.
	for _, kp := range opts.Knowledge {
		t.put(kp.Set, kp.Support)
	}
	if !opts.SkipCompletion {
		completeTable(t, opts)
	}
	return &Estimator{t: t, opts: opts}
}

// EstimatePattern returns the adversary's estimate of T(I·¬(J\I)) given the
// view. Lattice members without an exact (published or pinned) value
// contribute the midpoint of their bounds. ok is false only if the lattice
// is malformed (I ⊄ J or oversized).
func (e *Estimator) EstimatePattern(i, j itemset.Itemset) (est float64, ok bool) {
	lo, hi := 0.0, 0.0
	err := lattice.Enumerate(i, j, func(x itemset.Itemset, dist int) bool {
		xlo, xhi := e.resolve(x)
		if dist%2 == 0 {
			lo += xlo
			hi += xhi
		} else {
			lo -= xhi
			hi -= xlo
		}
		return true
	})
	if err != nil {
		return 0, false
	}
	return (lo + hi) / 2, true
}

// EstimateItemset returns the adversary's estimate of T(X) for a single
// itemset: the exact table value when known, otherwise the bounds midpoint.
func (e *Estimator) EstimateItemset(x itemset.Itemset) float64 {
	lo, hi := e.resolve(x)
	return (lo + hi) / 2
}

func (e *Estimator) resolve(x itemset.Itemset) (lo, hi float64) {
	if v, ok := e.t.lookup(x); ok {
		return float64(v), float64(v)
	}
	iv, err := lattice.Bounds(x, e.t.lookup, e.t.windowSize)
	if err != nil || iv.Empty() {
		return 0, float64(e.t.windowSize)
	}
	return float64(iv.Lo), float64(iv.Hi)
}
