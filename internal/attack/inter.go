package attack

import (
	"repro/internal/itemset"
	"repro/internal/lattice"
)

// InterWindow runs the two-stage inference of §IV-C against consecutive
// published windows separated by `slide` record replacements: first estimate
// the support transition of unpublished itemsets from the transitions of
// published ones, then intersect the shifted previous-window bounds with the
// current-window bounds; every pinned support joins the table and the
// intra-window derivation runs on the augmented table.
//
// With slide == 1 the transition stage is exact constraint propagation over
// the membership bits of the single leaving and entering record (a record
// contains itemset X iff it contains every item of X, so itemset
// memberships factor through item memberships). For larger slides the
// transition degrades to the coarse bound |ΔT(X)| <= slide.
//
// The returned inferences include only findings beyond IntraWindow(cur):
// run IntraWindow separately for the single-window breaches.
//
// The paper's "and vice versa" direction — inferring the PREVIOUS window's
// vulnerable patterns from the pair — is the same computation with the
// arguments swapped: InterWindow(cur, prev, slide, opts). The transition
// model is symmetric (the entering record of one direction is the leaving
// record of the other).
func InterWindow(prev, cur *View, slide int, opts Options) []Inference {
	if slide < 1 {
		panic("attack: slide must be >= 1")
	}
	opts = opts.withDefaults()

	prevT := newTable(prev)
	completeTable(prevT, opts)
	curT := newTable(cur)
	completeTable(curT, opts)
	baseline := IntraWindow(cur, opts)
	baseKeys := map[string]bool{}
	for _, inf := range baseline {
		baseKeys[inf.Pattern.Key()] = true
	}

	var prop *transition
	if slide == 1 {
		prop = propagateTransition(prevT, curT)
	}

	// Try to pin every border candidate of the current table, plus any
	// itemset the previous window published that the current one did not.
	candidates := curT.borderCandidates(opts.MaxTargetSize)
	for _, s := range prevT.sortedSets() {
		if !curT.has(s) && s.Len() <= opts.MaxTargetSize {
			candidates = append(candidates, s)
		}
	}

	var pinned []pin
	for _, j := range candidates {
		if curT.has(j) {
			continue
		}
		ivCur, err := lattice.Bounds(j, curT.lookup, curT.windowSize)
		if err != nil {
			continue
		}
		ivPrev := exactOrBounds(prevT, j)
		dlo, dhi := -slide, slide
		if prop != nil {
			dlo, dhi = prop.deltaRange(j)
		}
		iv := ivCur.Intersect(ivPrev.Shift(dlo, dhi))
		if iv.Tight() && !iv.Empty() {
			curT.put(j, iv.Lo)
			pinned = append(pinned, pin{j, iv.Lo})
		}
	}
	if len(pinned) == 0 {
		return nil
	}
	// New pins can make further bounds tight; finish with a completion pass.
	completeTable(curT, opts)

	var out []Inference
	for _, p := range pinned {
		if vulnerable(p.val, opts) {
			out = append(out, Inference{
				Pattern: itemset.NewPattern(p.set, itemset.New()),
				I:       p.set,
				J:       p.set,
				Support: p.val,
				Source:  Inter,
			})
		}
	}
	for _, inf := range deriveAll(curT, opts, Inter) {
		if !baseKeys[inf.Pattern.Key()] {
			out = append(out, inf)
		}
	}
	return dedup(out)
}

func exactOrBounds(t *table, j itemset.Itemset) lattice.Interval {
	if v, ok := t.lookup(j); ok {
		return lattice.Interval{Lo: v, Hi: v}
	}
	iv, err := lattice.Bounds(j, t.lookup, t.windowSize)
	if err != nil {
		return lattice.Interval{Lo: 0, Hi: t.windowSize}
	}
	return iv
}

// transition holds the propagated membership bits of the leaving (out) and
// entering (in) record for a window slide of one. Bit values: -1 unknown,
// 0 absent, 1 present.
type transition struct {
	out map[itemset.Item]int8
	in  map[itemset.Item]int8
	// disjunction constraints: at least one item of the set has bit 0.
	outZero []itemset.Itemset
	inZero  []itemset.Itemset
	// coupled itemsets with ΔT = 0: out-membership == in-membership.
	coupled []itemset.Itemset
}

// propagateTransition derives what the published support deltas reveal about
// the single leaving/entering record.
func propagateTransition(prevT, curT *table) *transition {
	tr := &transition{
		out: map[itemset.Item]int8{},
		in:  map[itemset.Item]int8{},
	}
	// Initialize every item appearing in either table as unknown.
	seen := map[itemset.Item]bool{}
	for _, t := range []*table{prevT, curT} {
		for _, s := range t.sets {
			for _, it := range s.Items() {
				if !seen[it] {
					seen[it] = true
					tr.out[it] = -1
					tr.in[it] = -1
				}
			}
		}
	}
	// Seed constraints from itemsets with known support in both windows.
	for k, s := range curT.sets {
		pv, ok := prevT.vals[k]
		if !ok {
			continue
		}
		cv := curT.vals[k]
		switch cv - pv {
		case -1: // the leaving record contained s; the entering one did not
			tr.setAll(tr.out, s)
			tr.inZero = append(tr.inZero, s)
		case 1:
			tr.setAll(tr.in, s)
			tr.outZero = append(tr.outZero, s)
		case 0:
			tr.coupled = append(tr.coupled, s)
		default:
			// |Δ| > 1 is impossible for a slide of one; the "published"
			// values must be sanitized. Transition knowledge is then void.
			return nil
		}
	}
	tr.fixpoint()
	return tr
}

// setAll forces every item bit of s to 1 in the given side.
func (tr *transition) setAll(side map[itemset.Item]int8, s itemset.Itemset) {
	for _, it := range s.Items() {
		side[it] = 1
	}
}

// conj evaluates the membership of itemset s on one side: 1 if every item
// bit is 1, 0 if any bit is 0, -1 otherwise.
func conj(side map[itemset.Item]int8, s itemset.Itemset) int8 {
	all1 := true
	for _, it := range s.Items() {
		b, ok := side[it]
		if !ok {
			b = -1
		}
		switch b {
		case 0:
			return 0
		case -1:
			all1 = false
		}
	}
	if all1 {
		return 1
	}
	return -1
}

// fixpoint runs unit propagation over the disjunction and coupling
// constraints until no bit changes.
func (tr *transition) fixpoint() {
	for changed := true; changed; {
		changed = false
		changed = tr.propZero(tr.out, tr.outZero) || changed
		changed = tr.propZero(tr.in, tr.inZero) || changed
		for _, s := range tr.coupled {
			o, i := conj(tr.out, s), conj(tr.in, s)
			if o == i {
				continue
			}
			if o == 1 && i == -1 {
				changed = tr.imposeConj(tr.in, s, 1) || changed
			} else if i == 1 && o == -1 {
				changed = tr.imposeConj(tr.out, s, 1) || changed
			} else if o == 0 && i == -1 {
				tr.inZero = append(tr.inZero, s)
				changed = tr.propZero(tr.in, tr.inZero) || changed
			} else if i == 0 && o == -1 {
				tr.outZero = append(tr.outZero, s)
				changed = tr.propZero(tr.out, tr.outZero) || changed
			}
		}
	}
}

// propZero applies unit propagation to "some item bit is 0" constraints:
// when all but one item is known 1 and one is unknown, that one must be 0.
func (tr *transition) propZero(side map[itemset.Item]int8, cons []itemset.Itemset) bool {
	changed := false
	for _, s := range cons {
		unknown := itemset.Item(-1)
		nUnknown := 0
		satisfied := false
		for _, it := range s.Items() {
			switch side[it] {
			case 0:
				satisfied = true
			case -1:
				unknown = it
				nUnknown++
			}
		}
		if satisfied {
			continue
		}
		if nUnknown == 1 {
			side[unknown] = 0
			changed = true
		}
		// nUnknown == 0 with no zero would be a contradiction; sanitized
		// inputs can produce it, in which case the adversary's model is
		// simply wrong and we leave the bits as they are.
	}
	return changed
}

// imposeConj forces conj(side, s) to the given value (only 1 is needed).
func (tr *transition) imposeConj(side map[itemset.Item]int8, s itemset.Itemset, v int8) bool {
	changed := false
	if v == 1 {
		for _, it := range s.Items() {
			if side[it] != 1 {
				side[it] = 1
				changed = true
			}
		}
	}
	return changed
}

// deltaRange returns the possible range of ΔT(j) = T_cur(j) − T_prev(j)
// implied by the propagated record bits.
func (tr *transition) deltaRange(j itemset.Itemset) (lo, hi int) {
	if tr == nil {
		return -1, 1
	}
	o, i := conj(tr.out, j), conj(tr.in, j)
	olo, ohi := bitRange(o)
	ilo, ihi := bitRange(i)
	return ilo - ohi, ihi - olo
}

func bitRange(b int8) (lo, hi int) {
	switch b {
	case 0:
		return 0, 0
	case 1:
		return 1, 1
	default:
		return 0, 1
	}
}
