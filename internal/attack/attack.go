// Package attack implements the adversary of §IV of the Butterfly paper:
// intra-window inference (deriving generalized-pattern supports from one
// window's published frequent itemsets, completing missing supports whose
// non-derivable bounds are tight) and inter-window inference (pinning
// unpublished supports by combining bounds in overlapping windows with the
// support transition between them).
//
// The same code serves two roles. Pointed at unperturbed mining output it is
// the "analysis program" of §VII-A that finds every inferable hard-vulnerable
// pattern (the Phv set behind the avg_prig metric); pointed at sanitized
// output it is the attacker whose estimation error Butterfly lower-bounds.
package attack

import (
	"sort"

	"repro/internal/itemset"
)

// Source records which inference technique produced a finding.
type Source int

const (
	// Intra marks findings derivable from a single window's output.
	Intra Source = iota
	// Inter marks findings that additionally needed the previous window.
	Inter
)

// String names the source for reports.
func (s Source) String() string {
	if s == Intra {
		return "intra-window"
	}
	return "inter-window"
}

// Inference is one derived pattern support. When the adversary works from
// sanitized output the Support is its best estimate, not the truth.
type Inference struct {
	Pattern itemset.Pattern
	I, J    itemset.Itemset // the lattice X_I^J that derived it
	Support int
	Source  Source
}

// Options tunes the adversary.
type Options struct {
	// VulnSupport is K: only patterns with 0 < support <= K are reported.
	// Zero disables the filter and reports every derivable pattern.
	VulnSupport int
	// MaxTargetSize caps the size of itemsets the adversary tries to pin or
	// derive from; lattice work grows as 3^size. Defaults to 6.
	MaxTargetSize int
	// MaxCompletionRounds caps the fixpoint iterations when pinning missing
	// supports. Defaults to 3.
	MaxCompletionRounds int
	// SkipCompletion makes NewEstimator resolve missing lattice members
	// from their bounds directly instead of running the pinning fixpoint
	// first. IntraWindow/InterWindow ignore it.
	SkipCompletion bool
	// Knowledge models the paper's Prior Knowledge 3 ("knowledge points"):
	// itemsets whose TRUE support the adversary knows exactly from side
	// channels — published dataset statistics, the unperturbed top-k, etc.
	// NewEstimator overrides the sanitized values with these; each
	// knowledge point removes one itemset's worth of variance from every
	// inference that touches it.
	Knowledge []KnowledgePoint
}

// KnowledgePoint is one itemset whose exact support the adversary holds.
type KnowledgePoint struct {
	Set     itemset.Itemset
	Support int
}

func (o Options) withDefaults() Options {
	if o.MaxTargetSize == 0 {
		o.MaxTargetSize = 6
	}
	if o.MaxCompletionRounds == 0 {
		o.MaxCompletionRounds = 3
	}
	return o
}

// View is what the adversary sees of one window: the published itemsets with
// their (possibly sanitized) supports, and the window size H, which the
// sliding-window protocol makes public.
type View struct {
	WindowSize int
	sets       []itemset.Itemset
	supports   map[string]int
}

// NewView builds a View from parallel slices of published itemsets and
// support values.
func NewView(windowSize int, sets []itemset.Itemset, supports []int) *View {
	if len(sets) != len(supports) {
		panic("attack: sets/supports length mismatch")
	}
	v := &View{
		WindowSize: windowSize,
		sets:       make([]itemset.Itemset, len(sets)),
		supports:   make(map[string]int, len(sets)),
	}
	copy(v.sets, sets)
	for i, s := range sets {
		v.supports[s.Key()] = supports[i]
	}
	return v
}

// Support returns the published support of s.
func (v *View) Support(s itemset.Itemset) (int, bool) {
	if s.Empty() {
		return v.WindowSize, true
	}
	val, ok := v.supports[s.Key()]
	return val, ok
}

// Sets returns the published itemsets. Callers must not modify the slice.
func (v *View) Sets() []itemset.Itemset { return v.sets }

// Len returns the number of published itemsets.
func (v *View) Len() int { return len(v.sets) }

// table is the adversary's working set of exact (or believed-exact) supports,
// growing as bounds become tight.
type table struct {
	windowSize int
	vals       map[string]int
	sets       map[string]itemset.Itemset
	items      map[itemset.Item]bool
}

func newTable(v *View) *table {
	t := &table{
		windowSize: v.WindowSize,
		vals:       make(map[string]int, v.Len()),
		sets:       make(map[string]itemset.Itemset, v.Len()),
		items:      map[itemset.Item]bool{},
	}
	for _, s := range v.sets {
		val, _ := v.Support(s)
		t.put(s, val)
	}
	return t
}

func (t *table) put(s itemset.Itemset, val int) {
	k := s.Key()
	t.vals[k] = val
	t.sets[k] = s
	if s.Len() == 1 {
		t.items[s.At(0)] = true
	}
}

func (t *table) has(s itemset.Itemset) bool {
	if s.Empty() {
		return true
	}
	_, ok := t.vals[s.Key()]
	return ok
}

func (t *table) lookup(s itemset.Itemset) (int, bool) {
	if s.Empty() {
		return t.windowSize, true
	}
	v, ok := t.vals[s.Key()]
	return v, ok
}

// singleItems returns the items published as frequent singletons, sorted.
func (t *table) singleItems() []itemset.Item {
	out := make([]itemset.Item, 0, len(t.items))
	for it := range t.items {
		out = append(out, it)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// sortedSets returns the known itemsets in deterministic order.
func (t *table) sortedSets() []itemset.Itemset {
	out := make([]itemset.Itemset, 0, len(t.sets))
	for _, s := range t.sets {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Len() != out[j].Len() {
			return out[i].Len() < out[j].Len()
		}
		return out[i].Key() < out[j].Key()
	})
	return out
}

// borderCandidates returns itemsets one item beyond the known table —
// J = F ∪ {i} for known F and known single item i — that are not known
// themselves and respect the size cap.
func (t *table) borderCandidates(maxSize int) []itemset.Itemset {
	items := t.singleItems()
	seen := map[string]bool{}
	var out []itemset.Itemset
	for _, f := range t.sortedSets() {
		if f.Len()+1 > maxSize {
			continue
		}
		for _, it := range items {
			if f.Contains(it) {
				continue
			}
			j := f.With(it)
			k := j.Key()
			if seen[k] || t.has(j) {
				continue
			}
			seen[k] = true
			out = append(out, j)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Len() != out[j].Len() {
			return out[i].Len() < out[j].Len()
		}
		return out[i].Key() < out[j].Key()
	})
	return out
}
