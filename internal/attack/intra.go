package attack

import (
	"repro/internal/itemset"
	"repro/internal/lattice"
)

// IntraWindow runs the single-window inference attack of §IV-B against a
// published view. It first completes the table — computing non-derivable
// bounds for border itemsets and adopting every tight bound as an exact
// value, to a fixpoint — then derives the support of every pattern
// I·¬(J\I) whose lattice is fully known. Findings are filtered to hard
// vulnerable patterns (0 < support <= K) when opts.VulnSupport > 0.
func IntraWindow(v *View, opts Options) []Inference {
	opts = opts.withDefaults()
	t := newTable(v)
	pinned := completeTable(t, opts)
	var out []Inference
	// Pinned itemsets with vulnerable support are themselves breaches: an
	// itemset is the pattern with an empty negative part.
	for _, p := range pinned {
		if vulnerable(p.val, opts) {
			out = append(out, Inference{
				Pattern: itemset.NewPattern(p.set, itemset.New()),
				I:       p.set,
				J:       p.set,
				Support: p.val,
				Source:  Intra,
			})
		}
	}
	out = append(out, deriveAll(t, opts, Intra)...)
	return dedup(out)
}

type pin struct {
	set itemset.Itemset
	val int
}

// completeTable pins border itemsets whose bounds are tight, iterating to a
// fixpoint (bounded by opts.MaxCompletionRounds). It returns the pins made.
func completeTable(t *table, opts Options) []pin {
	var pins []pin
	for round := 0; round < opts.MaxCompletionRounds; round++ {
		progress := false
		for _, j := range t.borderCandidates(opts.MaxTargetSize) {
			iv, err := lattice.Bounds(j, t.lookup, t.windowSize)
			if err != nil {
				continue
			}
			if iv.Tight() {
				t.put(j, iv.Lo)
				pins = append(pins, pin{j, iv.Lo})
				progress = true
			}
		}
		if !progress {
			break
		}
	}
	return pins
}

// deriveAll derives every pattern I·¬(J\I) with I and J\I non-empty whose
// lattice X_I^J lies entirely in the table.
func deriveAll(t *table, opts Options, src Source) []Inference {
	var out []Inference
	for _, j := range t.sortedSets() {
		if j.Len() < 2 || j.Len() > opts.MaxTargetSize {
			continue
		}
		j.ProperSubsets(func(i itemset.Itemset) bool {
			sup, ok, err := lattice.DerivePattern(i, j, t.lookup)
			if err != nil || !ok {
				return true
			}
			if vulnerable(sup, opts) {
				out = append(out, Inference{
					Pattern: lattice.PatternOf(i, j),
					I:       i,
					J:       j,
					Support: sup,
					Source:  src,
				})
			}
			return true
		})
	}
	return out
}

func vulnerable(sup int, opts Options) bool {
	if opts.VulnSupport <= 0 {
		return true
	}
	return sup > 0 && sup <= opts.VulnSupport
}

func dedup(in []Inference) []Inference {
	seen := map[string]bool{}
	out := in[:0]
	for _, inf := range in {
		k := inf.Pattern.Key()
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, inf)
	}
	return out
}
