package attack_test

import (
	"fmt"

	"repro/internal/attack"
	"repro/internal/itemset"
	"repro/internal/mining"
	"repro/internal/paperex"
)

// ExampleInterWindow replays the paper's Example 5: neither window of the
// running example leaks on its own, but the pair pins the unpublished
// T(abc) and uncovers a support-1 pattern.
func ExampleInterWindow() {
	view := func(db *itemset.Database) *attack.View {
		res, err := mining.Eclat(db, 4)
		if err != nil {
			panic(err)
		}
		sets := make([]itemset.Itemset, res.Len())
		sups := make([]int, res.Len())
		for i, fi := range res.Itemsets {
			sets[i] = fi.Set
			sups[i] = fi.Support
		}
		return attack.NewView(db.Len(), sets, sups)
	}
	prev := view(paperex.Window11())
	cur := view(paperex.Window12())
	opts := attack.Options{VulnSupport: 1}

	fmt.Println("intra-window breaches (prev, cur):",
		len(attack.IntraWindow(prev, opts)), len(attack.IntraWindow(cur, opts)))
	for _, inf := range attack.InterWindow(prev, cur, 1, opts) {
		fmt.Printf("inter-window: %v has support %d\n", inf.Pattern, inf.Support)
	}
	// Output:
	// intra-window breaches (prev, cur): 0 0
	// inter-window: c¬a¬b has support 1
}
