package attack

import (
	"testing"

	"repro/internal/itemset"
	"repro/internal/mining"
	"repro/internal/paperex"
	"repro/internal/rng"
)

// viewOf publishes the true frequent itemsets of a database at threshold c.
func viewOf(t *testing.T, db *itemset.Database, c int) *View {
	t.Helper()
	res, err := mining.Eclat(db, c)
	if err != nil {
		t.Fatal(err)
	}
	return viewOfResult(res, db.Len())
}

func viewOfResult(res *mining.Result, windowSize int) *View {
	sets := make([]itemset.Itemset, res.Len())
	sups := make([]int, res.Len())
	for i, fi := range res.Itemsets {
		sets[i] = fi.Set
		sups[i] = fi.Support
	}
	return NewView(windowSize, sets, sups)
}

func hasPattern(infs []Inference, p itemset.Pattern) (Inference, bool) {
	for _, inf := range infs {
		if inf.Pattern.Equal(p) {
			return inf, true
		}
	}
	return Inference{}, false
}

func TestViewBasics(t *testing.T) {
	v := NewView(10, []itemset.Itemset{itemset.New(1)}, []int{7})
	if got, ok := v.Support(itemset.New(1)); !ok || got != 7 {
		t.Errorf("Support = %d,%v", got, ok)
	}
	if got, ok := v.Support(itemset.New()); !ok || got != 10 {
		t.Errorf("empty Support = %d,%v", got, ok)
	}
	if _, ok := v.Support(itemset.New(2)); ok {
		t.Error("absent itemset resolved")
	}
	if v.Len() != 1 {
		t.Errorf("Len = %d", v.Len())
	}
}

func TestViewPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched view did not panic")
		}
	}()
	NewView(1, []itemset.Itemset{itemset.New(1)}, nil)
}

// Intra-window inference on the paper's Ds(12,8) with C=4: the output
// includes abc's full lattice... it does not (abc has support 3 < 4), and
// the bounds [2,5] are not tight, so with K=1 no intra-window breach exists
// through the X_c^abc lattice. This is the "immune" half of Example 5.
func TestIntraWindowImmuneOnExample(t *testing.T) {
	v := viewOf(t, paperex.Window12(), 4)
	infs := IntraWindow(v, Options{VulnSupport: 1})
	p := itemset.NewPattern(itemset.New(paperex.C), itemset.New(paperex.A, paperex.B))
	if inf, found := hasPattern(infs, p); found {
		t.Errorf("pattern %v should not be intra-window derivable, got support %d",
			p, inf.Support)
	}
}

// A window whose full lattice is published leaks the pattern directly: with
// C=3 in Ds(12,8), abc (support 3) is published, so c¬a¬b = 1 is derivable.
func TestIntraWindowDerivesWhenLatticePublished(t *testing.T) {
	v := viewOf(t, paperex.Window12(), 3)
	infs := IntraWindow(v, Options{VulnSupport: 1})
	p := itemset.NewPattern(itemset.New(paperex.C), itemset.New(paperex.A, paperex.B))
	inf, found := hasPattern(infs, p)
	if !found {
		t.Fatalf("pattern %v not derived; got %d inferences", p, len(infs))
	}
	if inf.Support != 1 {
		t.Errorf("derived support = %d, want 1", inf.Support)
	}
	if inf.Source != Intra {
		t.Errorf("source = %v", inf.Source)
	}
	// Inferred values must equal ground truth when derived from clean output.
	truth := paperex.Window12().PatternSupport(p)
	if inf.Support != truth {
		t.Errorf("derived %d, truth %d", inf.Support, truth)
	}
}

// All intra-window inferences from clean output must match ground truth —
// the derivation is exact arithmetic, so any mismatch is a bug.
func TestIntraWindowSoundOnCleanOutput(t *testing.T) {
	src := rng.New(909)
	for trial := 0; trial < 10; trial++ {
		recs := make([]itemset.Itemset, 40)
		for i := range recs {
			n := 1 + src.Intn(4)
			items := make([]itemset.Item, 0, n)
			for j := 0; j < n; j++ {
				items = append(items, itemset.Item(src.Intn(6)))
			}
			recs[i] = itemset.New(items...)
		}
		db := itemset.NewDatabase(recs)
		v := viewOf(t, db, 5)
		infs := IntraWindow(v, Options{}) // no K filter: check everything
		for _, inf := range infs {
			if truth := db.PatternSupport(inf.Pattern); truth != inf.Support {
				t.Fatalf("pattern %v derived %d, truth %d", inf.Pattern, inf.Support, truth)
			}
		}
	}
}

// Tight-bound completion: hide one frequent itemset whose bounds collapse.
// Records: 5x{a,b}, 3x{a}, 2x{b}? Build a case where T(ab) is pinned:
// if T(a) = T(ab') ... use lower bound == upper bound: T(a)=5, T(b)=5, N=5
// forces T(ab) in [5,5].
func TestIntraWindowPinsTightBounds(t *testing.T) {
	var recs []itemset.Itemset
	for i := 0; i < 5; i++ {
		recs = append(recs, itemset.New(0, 1, 2))
	}
	recs = append(recs, itemset.New(3))
	db := itemset.NewDatabase(recs)
	// Publish only the singletons: a=b=c=5, d=1 infrequent at C=2.
	v := viewOf(t, db, 5)
	// v publishes a,b,c and all pairs/triple... mine at C=5 gives all of
	// them; instead publish only size-1 sets to force pinning.
	var sets []itemset.Itemset
	var sups []int
	for _, fi := range []itemset.Itemset{itemset.New(0), itemset.New(1), itemset.New(2)} {
		sets = append(sets, fi)
		sups = append(sups, db.Support(fi))
	}
	v = NewView(db.Len(), sets, sups)
	infs := IntraWindow(v, Options{VulnSupport: 1})
	// With T(a)=T(b)=N=6? N=6, T(a)=5,T(b)=5: lower bound T(ab) >= 4; upper
	// <= 5 — not tight. Make N=5 by dropping the {d} record? Then d breaks.
	// Simpler assertion: derivations from pinned tables stay sound.
	for _, inf := range infs {
		if truth := db.PatternSupport(inf.Pattern); truth != inf.Support {
			t.Fatalf("pattern %v derived %d, truth %d", inf.Pattern, inf.Support, truth)
		}
	}
}

// The full Example 5 reproduction: windows Ds(11,8) and Ds(12,8), C=4, K=1.
// Neither window leaks intra-window; combining them pins T_cur(abc)=3 and
// derives the support-1 pattern c¬a¬b.
func TestInterWindowExample5(t *testing.T) {
	prev := viewOf(t, paperex.Window11(), 4)
	cur := viewOf(t, paperex.Window12(), 4)
	opts := Options{VulnSupport: 1}

	if n := len(IntraWindow(prev, opts)); n != 0 {
		t.Fatalf("Ds(11,8) has %d intra-window breaches, want 0", n)
	}
	if n := len(IntraWindow(cur, opts)); n != 0 {
		t.Fatalf("Ds(12,8) has %d intra-window breaches, want 0", n)
	}

	infs := InterWindow(prev, cur, 1, opts)
	p := itemset.NewPattern(itemset.New(paperex.C), itemset.New(paperex.A, paperex.B))
	inf, found := hasPattern(infs, p)
	if !found {
		t.Fatalf("inter-window attack missed %v; found %v", p, infs)
	}
	if inf.Support != 1 {
		t.Errorf("derived support = %d, want 1", inf.Support)
	}
	if inf.Source != Inter {
		t.Errorf("source = %v, want inter-window", inf.Source)
	}
	truth := paperex.Window12().PatternSupport(p)
	if inf.Support != truth {
		t.Errorf("derived %d, truth %d", inf.Support, truth)
	}
}

// The transition propagation must pin T_cur(abc) = 3 exactly.
func TestInterWindowPinsTransition(t *testing.T) {
	prev := viewOf(t, paperex.Window11(), 4)
	cur := viewOf(t, paperex.Window12(), 4)
	// Without the K filter, the pinned itemset abc (support 3) appears as a
	// pure-itemset inference when K >= 3.
	infs := InterWindow(prev, cur, 1, Options{VulnSupport: 3})
	abc := itemset.NewPattern(itemset.New(paperex.A, paperex.B, paperex.C), itemset.New())
	inf, found := hasPattern(infs, abc)
	if !found {
		t.Fatalf("abc not pinned; inferences: %v", infs)
	}
	if inf.Support != 3 {
		t.Errorf("pinned T(abc) = %d, want 3", inf.Support)
	}
}

// Inter-window findings on clean output must also match ground truth.
func TestInterWindowSoundOnCleanOutput(t *testing.T) {
	src := rng.New(313)
	for trial := 0; trial < 8; trial++ {
		recs := make([]itemset.Itemset, 41)
		for i := range recs {
			n := 1 + src.Intn(4)
			items := make([]itemset.Item, 0, n)
			for j := 0; j < n; j++ {
				items = append(items, itemset.Item(src.Intn(6)))
			}
			recs[i] = itemset.New(items...)
		}
		prevDB := itemset.NewDatabase(recs[:40])
		curDB := itemset.NewDatabase(recs[1:])
		prev := viewOf(t, prevDB, 5)
		cur := viewOf(t, curDB, 5)
		for _, inf := range InterWindow(prev, cur, 1, Options{}) {
			if truth := curDB.PatternSupport(inf.Pattern); truth != inf.Support {
				t.Fatalf("trial %d: pattern %v derived %d, truth %d",
					trial, inf.Pattern, inf.Support, truth)
			}
		}
	}
}

func TestInterWindowPanicsOnBadSlide(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("slide 0 did not panic")
		}
	}()
	v := NewView(1, nil, nil)
	InterWindow(v, v, 0, Options{})
}

func TestEstimatorOnCleanOutput(t *testing.T) {
	// On unperturbed output the estimator must reproduce exact derivations.
	v := viewOf(t, paperex.Window12(), 3)
	e := NewEstimator(v, Options{})
	i := itemset.New(paperex.C)
	j := itemset.New(paperex.A, paperex.B, paperex.C)
	est, ok := e.EstimatePattern(i, j)
	if !ok {
		t.Fatal("estimate failed")
	}
	if est != 1 {
		t.Errorf("estimate = %v, want exactly 1 on clean output", est)
	}
}

func TestEstimatorMidpointOnMissing(t *testing.T) {
	// Publish only c, ac, bc of Ds(12,8): abc resolves to bounds [2,5],
	// so the pattern estimate is 8-5-5+3.5 = 1.5.
	db := paperex.Window12()
	sets := []itemset.Itemset{
		itemset.New(paperex.C),
		itemset.New(paperex.A, paperex.C),
		itemset.New(paperex.B, paperex.C),
	}
	sups := make([]int, len(sets))
	for i, s := range sets {
		sups[i] = db.Support(s)
	}
	v := NewView(8, sets, sups)
	e := NewEstimator(v, Options{})
	est, ok := e.EstimatePattern(itemset.New(paperex.C), itemset.New(paperex.A, paperex.B, paperex.C))
	if !ok {
		t.Fatal("estimate failed")
	}
	if est != 1.5 {
		t.Errorf("estimate = %v, want 1.5 (midpoint of [0,3])", est)
	}
	// Itemset estimate: midpoint of [2,5].
	if got := e.EstimateItemset(itemset.New(paperex.A, paperex.B, paperex.C)); got != 3.5 {
		t.Errorf("EstimateItemset = %v, want 3.5", got)
	}
}

func TestSourceString(t *testing.T) {
	if Intra.String() != "intra-window" || Inter.String() != "inter-window" {
		t.Error("Source strings wrong")
	}
}

func TestDedupKeepsFirst(t *testing.T) {
	p := itemset.NewPattern(itemset.New(1), itemset.New(2))
	infs := dedup([]Inference{
		{Pattern: p, Support: 1, Source: Intra},
		{Pattern: p, Support: 1, Source: Inter},
	})
	if len(infs) != 1 || infs[0].Source != Intra {
		t.Errorf("dedup wrong: %v", infs)
	}
}
