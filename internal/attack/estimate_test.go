package attack

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/itemset"
	"repro/internal/mining"
	"repro/internal/paperex"
	"repro/internal/rng"
)

// sanitizedView publishes a mining result through a Butterfly publisher.
func sanitizedView(t *testing.T, res *mining.Result, windowSize int, seed uint64) *View {
	t.Helper()
	p := core.Params{Epsilon: 0.3, Delta: 0.8, MinSupport: res.MinSupport, VulnSupport: 1}
	pub, err := core.NewPublisher(p, core.Basic{}, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	out, err := pub.Publish(res, windowSize)
	if err != nil {
		t.Fatal(err)
	}
	sets := make([]itemset.Itemset, out.Len())
	sups := make([]int, out.Len())
	for i, it := range out.Items {
		sets[i] = it.Set
		sups[i] = it.Support
	}
	return NewView(windowSize, sets, sups)
}

// With full knowledge points covering the lattice, the adversary's estimate
// is exact again despite perturbation — knowledge points nullify Butterfly
// on the itemsets they cover (which is exactly why the paper counts them
// against the variance budget).
func TestKnowledgePointsRestoreExactness(t *testing.T) {
	db := paperex.Window12()
	res, err := mining.Eclat(db, 3)
	if err != nil {
		t.Fatal(err)
	}
	san := sanitizedView(t, res, 8, 99)

	i := itemset.New(paperex.C)
	j := itemset.New(paperex.A, paperex.B, paperex.C)

	// Without knowledge: the estimate is almost surely off on some draw.
	// With the full lattice known: exactly 1.
	var kps []KnowledgePoint
	for _, x := range []itemset.Itemset{
		itemset.New(paperex.C),
		itemset.New(paperex.A, paperex.C),
		itemset.New(paperex.B, paperex.C),
		itemset.New(paperex.A, paperex.B, paperex.C),
	} {
		kps = append(kps, KnowledgePoint{Set: x, Support: db.Support(x)})
	}
	est := NewEstimator(san, Options{Knowledge: kps})
	got, ok := est.EstimatePattern(i, j)
	if !ok {
		t.Fatal("estimate failed")
	}
	if got != 1 {
		t.Errorf("estimate with full knowledge = %v, want exactly 1", got)
	}
}

// Partial knowledge monotonically improves (or at worst does not hurt) the
// adversary's average error across many perturbation draws.
func TestKnowledgePointsReduceError(t *testing.T) {
	db := paperex.Window12()
	res, err := mining.Eclat(db, 3)
	if err != nil {
		t.Fatal(err)
	}
	i := itemset.New(paperex.C)
	j := itemset.New(paperex.A, paperex.B, paperex.C)
	truth := float64(db.PatternSupport(itemset.NewPattern(i, j.Minus(i))))

	kp := []KnowledgePoint{
		{Set: itemset.New(paperex.A, paperex.C), Support: db.Support(itemset.New(paperex.A, paperex.C))},
		{Set: itemset.New(paperex.B, paperex.C), Support: db.Support(itemset.New(paperex.B, paperex.C))},
	}
	const trials = 400
	var errNone, errKP float64
	for s := 0; s < trials; s++ {
		san := sanitizedView(t, res, 8, uint64(1000+s))
		e0, _ := NewEstimator(san, Options{}).EstimatePattern(i, j)
		e1, _ := NewEstimator(san, Options{Knowledge: kp}).EstimatePattern(i, j)
		errNone += (e0 - truth) * (e0 - truth)
		errKP += (e1 - truth) * (e1 - truth)
	}
	if errKP >= errNone {
		t.Errorf("knowledge points did not help: MSE %v (with) vs %v (without)",
			errKP/trials, errNone/trials)
	}
}

// The estimator's average squared error on a pattern must be at least the
// calibrated variance floor when it has no side knowledge: Σσ² over the
// (at least two) perturbed lattice members the derivation combines.
func TestEstimatorErrorMeetsVarianceFloor(t *testing.T) {
	db := paperex.Window12()
	res, err := mining.Eclat(db, 3)
	if err != nil {
		t.Fatal(err)
	}
	params := core.Params{Epsilon: 0.3, Delta: 0.8, MinSupport: 3, VulnSupport: 1}
	i := itemset.New(paperex.C)
	j := itemset.New(paperex.A, paperex.B, paperex.C)
	truth := float64(db.PatternSupport(itemset.NewPattern(i, j.Minus(i))))

	const trials = 2000
	var sumSq float64
	for s := 0; s < trials; s++ {
		san := sanitizedView(t, res, 8, uint64(50000+s))
		e, ok := NewEstimator(san, Options{SkipCompletion: true}).EstimatePattern(i, j)
		if !ok {
			t.Fatal("estimate failed")
		}
		sumSq += (e - truth) * (e - truth)
	}
	mse := sumSq / trials
	floor := 2 * params.Sigma2()
	if mse < floor*0.9 {
		t.Errorf("adversary MSE %v below the 2σ² floor %v — privacy analysis violated",
			mse, floor)
	}
}

func TestKnowledgePointOverridesSanitizedValue(t *testing.T) {
	// A single-itemset "pattern": the estimate equals the knowledge point
	// regardless of what was published.
	sets := []itemset.Itemset{itemset.New(1)}
	v := NewView(100, sets, []int{57}) // sanitized says 57
	est := NewEstimator(v, Options{Knowledge: []KnowledgePoint{{Set: itemset.New(1), Support: 50}}})
	if got := est.EstimateItemset(itemset.New(1)); got != 50 {
		t.Errorf("EstimateItemset = %v, want knowledge value 50", got)
	}
}

// Sanity: math.Round of estimates stays finite on degenerate views.
func TestEstimatorDegenerateView(t *testing.T) {
	v := NewView(10, nil, nil)
	est := NewEstimator(v, Options{})
	got, ok := est.EstimatePattern(itemset.New(1), itemset.New(1, 2))
	if !ok {
		t.Fatal("estimate refused")
	}
	if math.IsNaN(got) || math.IsInf(got, 0) {
		t.Errorf("estimate = %v", got)
	}
}
