package attack

import (
	"testing"

	"repro/internal/itemset"
	"repro/internal/paperex"
	"repro/internal/rng"
)

// Inter-window with a stride greater than one degrades gracefully to the
// coarse |Δ| <= slide bound and must never derive a WRONG value from clean
// output.
func TestInterWindowLargeSlideSound(t *testing.T) {
	src := rng.New(911)
	for trial := 0; trial < 6; trial++ {
		recs := make([]itemset.Itemset, 60)
		for i := range recs {
			n := 1 + src.Intn(4)
			items := make([]itemset.Item, 0, n)
			for j := 0; j < n; j++ {
				items = append(items, itemset.Item(src.Intn(6)))
			}
			recs[i] = itemset.New(items...)
		}
		const h, slide = 40, 7
		prevDB := itemset.NewDatabase(recs[:h])
		curDB := itemset.NewDatabase(recs[slide : h+slide])
		prev := viewOf(t, prevDB, 5)
		cur := viewOf(t, curDB, 5)
		for _, inf := range InterWindow(prev, cur, slide, Options{}) {
			if truth := curDB.PatternSupport(inf.Pattern); truth != inf.Support {
				t.Fatalf("trial %d: %v derived %d, truth %d", trial, inf.Pattern, inf.Support, truth)
			}
		}
	}
}

// Running the attacks on *sanitized* views must not panic or loop — the
// values are internally inconsistent (deltas beyond ±slide, impossible
// bounds) and the adversary code has to absorb that.
func TestAttacksToleratePerturbedViews(t *testing.T) {
	src := rng.New(913)
	perturb := func(v *View) *View {
		sets := make([]itemset.Itemset, 0, v.Len())
		sups := make([]int, 0, v.Len())
		for _, s := range v.Sets() {
			val, _ := v.Support(s)
			sets = append(sets, s)
			sups = append(sups, val+src.IntRange(-4, 4))
		}
		return NewView(v.WindowSize, sets, sups)
	}
	prev := perturb(viewOf(t, paperex.Window11(), 4))
	cur := perturb(viewOf(t, paperex.Window12(), 4))
	// No assertion on content — just completion without panic, and dedup.
	_ = IntraWindow(cur, Options{VulnSupport: 3})
	_ = InterWindow(prev, cur, 1, Options{VulnSupport: 3})
}

// The completion fixpoint must respect MaxCompletionRounds.
func TestCompletionRoundsBounded(t *testing.T) {
	v := viewOf(t, paperex.Window12(), 3)
	// With rounds=1 vs rounds=3 the attack may pin fewer values but must
	// never report anything unsound.
	db := paperex.Window12()
	for _, rounds := range []int{1, 3} {
		for _, inf := range IntraWindow(v, Options{MaxCompletionRounds: rounds}) {
			if truth := db.PatternSupport(inf.Pattern); truth != inf.Support {
				t.Fatalf("rounds=%d: %v derived %d, truth %d", rounds, inf.Pattern, inf.Support, truth)
			}
		}
	}
}

// MaxTargetSize must cap lattice work: with size 2 the abc-based breaches
// disappear while pair-level ones remain sound.
func TestMaxTargetSizeCaps(t *testing.T) {
	v := viewOf(t, paperex.Window12(), 3)
	db := paperex.Window12()
	infs := IntraWindow(v, Options{MaxTargetSize: 2})
	for _, inf := range infs {
		if inf.J.Len() > 2 {
			t.Errorf("target %v exceeds MaxTargetSize 2", inf.J)
		}
		if truth := db.PatternSupport(inf.Pattern); truth != inf.Support {
			t.Errorf("%v derived %d, truth %d", inf.Pattern, inf.Support, truth)
		}
	}
}

// An empty view yields no inferences and no panics anywhere.
func TestAttacksOnEmptyView(t *testing.T) {
	v := NewView(10, nil, nil)
	if got := IntraWindow(v, Options{}); len(got) != 0 {
		t.Errorf("IntraWindow on empty view: %v", got)
	}
	if got := InterWindow(v, v, 1, Options{}); len(got) != 0 {
		t.Errorf("InterWindow on empty views: %v", got)
	}
}

// Transition propagation: a +1 delta pins the entering record's membership.
func TestTransitionPlusDelta(t *testing.T) {
	// prev: T(a)=3; cur: T(a)=4 with slide 1 → entering record contains a,
	// leaving one does not. If also T(ab) rose 2→3, entering contains ab.
	mk := func(a, ab int) *View {
		return NewView(10,
			[]itemset.Itemset{itemset.New(0), itemset.New(0, 1)},
			[]int{a, ab})
	}
	prevT := newTable(mk(3, 2))
	curT := newTable(mk(4, 3))
	tr := propagateTransition(prevT, curT)
	if tr == nil {
		t.Fatal("transition rejected consistent deltas")
	}
	lo, hi := tr.deltaRange(itemset.New(0, 1))
	if lo != 1 || hi != 1 {
		t.Errorf("Δ(ab) = [%d,%d], want [1,1]", lo, hi)
	}
}

// Impossible deltas (|Δ| > 1 under slide 1) must void the transition model
// rather than propagate nonsense.
func TestTransitionRejectsImpossibleDelta(t *testing.T) {
	mk := func(a int) *View {
		return NewView(10, []itemset.Itemset{itemset.New(0)}, []int{a})
	}
	prevT := newTable(mk(3))
	curT := newTable(mk(7))
	if tr := propagateTransition(prevT, curT); tr != nil {
		t.Error("impossible delta produced a transition model")
	}
}

// The paper's "vice versa": the current window's output refines the
// PREVIOUS window's unpublished supports by swapping the arguments.
// Scenario: T(ab) rises 3 -> 4 across one slide; ab is published only in
// the newer window (C=4), yet the pair pins the OLDER window's T(ab)=3.
func TestInterWindowViceVersa(t *testing.T) {
	const n = 20
	older := NewView(n,
		[]itemset.Itemset{itemset.New(0), itemset.New(1)},
		[]int{6, 6}) // ab=3 hidden below C
	newer := NewView(n,
		[]itemset.Itemset{itemset.New(0), itemset.New(1), itemset.New(0, 1)},
		[]int{7, 7, 4})

	// Backward direction: "previous" = newer, "current" = older.
	infs := InterWindow(newer, older, 1, Options{VulnSupport: 3})
	ab := itemset.NewPattern(itemset.New(0, 1), itemset.New())
	found := false
	for _, inf := range infs {
		if inf.Pattern.Equal(ab) {
			found = true
			if inf.Support != 3 {
				t.Errorf("backward-pinned T(ab) = %d, want 3", inf.Support)
			}
			if inf.Source != Inter {
				t.Errorf("source = %v", inf.Source)
			}
		}
	}
	if !found {
		t.Fatalf("vice-versa direction failed to pin ab in the older window; got %v", infs)
	}
}
