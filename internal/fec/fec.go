// Package fec implements frequency equivalence classes (Definition 5 of the
// Butterfly paper): a partition of the frequent itemsets into classes of
// equal support, strictly ordered by that support. The optimized Butterfly
// schemes perturb per-FEC rather than per-itemset so that the equality of
// supports within a class — and, as far as possible, the order and ratio
// between classes — survives sanitization.
package fec

import (
	"slices"

	"repro/internal/itemset"
	"repro/internal/mining"
)

// Class is one frequency equivalence class: the frequent itemsets sharing a
// support value.
type Class struct {
	// Support is t_i, the common support of all members.
	Support int
	// Members holds the itemsets of the class in deterministic order.
	Members []itemset.Itemset
}

// Size returns s_i, the number of member itemsets.
func (c Class) Size() int { return len(c.Members) }

// Partition groups the frequent itemsets of a mining result into FECs,
// returned in strictly ascending support order (f_1 ≺ f_2 ≺ ... in the
// paper's notation).
func Partition(res *mining.Result) []Class {
	classes, _ := PartitionInto(res, nil, nil)
	return classes
}

// PartitionInto is Partition writing into caller-owned scratch: classes is
// truncated and refilled, and every class's Members field aliases a range of
// the single flat members buffer (also truncated and refilled), so a
// steady-state window partitions with zero allocations. Both scratch slices
// may be nil. The returned slices replace the arguments (they may have been
// grown); the classes are only valid until the scratch is reused.
//
// mining.Result guarantees Itemsets sorted by descending support, ties by
// ascending size then key order — exactly the partition order reversed — so
// classes are contiguous runs read back-to-front, with no hashing or sorting.
// Because Result's fields are exported, the invariant is verified in one O(n)
// pass first; an out-of-order result (hand-built, e.g. in tests) takes a
// sort-based fallback with identical output.
func PartitionInto(res *mining.Result, classes []Class, members []itemset.Itemset) ([]Class, []itemset.Itemset) {
	sets := res.Itemsets
	classes = classes[:0]
	// Reserve full capacity up front: Members subslices alias the backing
	// array, so it must not be reallocated mid-fill.
	if cap(members) < len(sets) {
		members = make([]itemset.Itemset, 0, len(sets))
	} else {
		members = members[:0]
	}
	if len(sets) == 0 {
		return classes, members
	}
	if !partitionOrdered(sets) {
		return partitionUnsorted(sets, classes, members)
	}
	for end := len(sets); end > 0; {
		start := end - 1
		for start > 0 && sets[start-1].Support == sets[end-1].Support {
			start--
		}
		base := len(members)
		for i := start; i < end; i++ {
			members = append(members, sets[i].Set)
		}
		classes = append(classes, Class{
			Support: sets[end-1].Support,
			Members: members[base:len(members):len(members)],
		})
		end = start
	}
	return classes, members
}

// partitionOrdered reports whether sets is in the normalized mining.Result
// order (support descending, then size ascending, then key order ascending).
func partitionOrdered(sets []mining.FrequentItemset) bool {
	for i := 1; i < len(sets); i++ {
		a, b := sets[i-1], sets[i]
		switch {
		case a.Support != b.Support:
			if a.Support < b.Support {
				return false
			}
		case a.Set.Len() != b.Set.Len():
			if a.Set.Len() > b.Set.Len() {
				return false
			}
		case itemset.Compare(a.Set, b.Set) > 0:
			return false
		}
	}
	return true
}

// partitionUnsorted handles results whose Itemsets were reordered after
// construction: sort a copy directly into partition order (support ascending,
// members by size then key) and emit runs forward.
func partitionUnsorted(sets []mining.FrequentItemset, classes []Class, members []itemset.Itemset) ([]Class, []itemset.Itemset) {
	tmp := make([]mining.FrequentItemset, len(sets))
	copy(tmp, sets)
	slices.SortFunc(tmp, func(a, b mining.FrequentItemset) int {
		if a.Support != b.Support {
			return a.Support - b.Support
		}
		if a.Set.Len() != b.Set.Len() {
			return a.Set.Len() - b.Set.Len()
		}
		return itemset.Compare(a.Set, b.Set)
	})
	for i := 0; i < len(tmp); {
		base := len(members)
		j := i
		for j < len(tmp) && tmp[j].Support == tmp[i].Support {
			members = append(members, tmp[j].Set)
			j++
		}
		classes = append(classes, Class{
			Support: tmp[i].Support,
			Members: members[base:len(members):len(members)],
		})
		i = j
	}
	return classes, members
}

// TotalMembers returns the number of itemsets across all classes.
func TotalMembers(classes []Class) int {
	n := 0
	for _, c := range classes {
		n += c.Size()
	}
	return n
}
