// Package fec implements frequency equivalence classes (Definition 5 of the
// Butterfly paper): a partition of the frequent itemsets into classes of
// equal support, strictly ordered by that support. The optimized Butterfly
// schemes perturb per-FEC rather than per-itemset so that the equality of
// supports within a class — and, as far as possible, the order and ratio
// between classes — survives sanitization.
package fec

import (
	"sort"

	"repro/internal/itemset"
	"repro/internal/mining"
)

// Class is one frequency equivalence class: the frequent itemsets sharing a
// support value.
type Class struct {
	// Support is t_i, the common support of all members.
	Support int
	// Members holds the itemsets of the class in deterministic order.
	Members []itemset.Itemset
}

// Size returns s_i, the number of member itemsets.
func (c Class) Size() int { return len(c.Members) }

// Partition groups the frequent itemsets of a mining result into FECs,
// returned in strictly ascending support order (f_1 ≺ f_2 ≺ ... in the
// paper's notation).
func Partition(res *mining.Result) []Class {
	bySupport := map[int][]itemset.Itemset{}
	for _, fi := range res.Itemsets {
		bySupport[fi.Support] = append(bySupport[fi.Support], fi.Set)
	}
	out := make([]Class, 0, len(bySupport))
	for sup, members := range bySupport {
		sort.Slice(members, func(i, j int) bool {
			if members[i].Len() != members[j].Len() {
				return members[i].Len() < members[j].Len()
			}
			return members[i].Key() < members[j].Key()
		})
		out = append(out, Class{Support: sup, Members: members})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Support < out[j].Support })
	return out
}

// TotalMembers returns the number of itemsets across all classes.
func TotalMembers(classes []Class) int {
	n := 0
	for _, c := range classes {
		n += c.Size()
	}
	return n
}
