package fec

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/itemset"
	"repro/internal/mining"
	"repro/internal/rng"
)

func TestPartitionOrdersAndGroups(t *testing.T) {
	res := mining.NewResult(2, []mining.FrequentItemset{
		{Set: itemset.New(1), Support: 5},
		{Set: itemset.New(2), Support: 3},
		{Set: itemset.New(3), Support: 5},
		{Set: itemset.New(1, 2), Support: 3},
		{Set: itemset.New(4), Support: 9},
	})
	classes := Partition(res)
	if len(classes) != 3 {
		t.Fatalf("got %d classes, want 3", len(classes))
	}
	wantSupports := []int{3, 5, 9}
	wantSizes := []int{2, 2, 1}
	for i, c := range classes {
		if c.Support != wantSupports[i] {
			t.Errorf("class %d support = %d, want %d", i, c.Support, wantSupports[i])
		}
		if c.Size() != wantSizes[i] {
			t.Errorf("class %d size = %d, want %d", i, c.Size(), wantSizes[i])
		}
	}
	if TotalMembers(classes) != 5 {
		t.Errorf("TotalMembers = %d", TotalMembers(classes))
	}
}

func TestPartitionEmpty(t *testing.T) {
	classes := Partition(mining.NewResult(2, nil))
	if len(classes) != 0 {
		t.Errorf("empty result produced %d classes", len(classes))
	}
}

func TestPartitionDeterministicMemberOrder(t *testing.T) {
	mk := func() []Class {
		res := mining.NewResult(1, []mining.FrequentItemset{
			{Set: itemset.New(3), Support: 4},
			{Set: itemset.New(1), Support: 4},
			{Set: itemset.New(2, 5), Support: 4},
			{Set: itemset.New(2), Support: 4},
		})
		return Partition(res)
	}
	a, b := mk(), mk()
	for i := range a {
		for j := range a[i].Members {
			if !a[i].Members[j].Equal(b[i].Members[j]) {
				t.Fatal("member order not deterministic")
			}
		}
	}
	// Singletons before pairs, by key.
	m := a[0].Members
	if m[0].Len() != 1 || m[len(m)-1].Len() != 2 {
		t.Errorf("member order wrong: %v", m)
	}
}

// Property: partition is a bijection on itemsets, classes strictly
// increasing, members' supports match the class.
func TestPartitionProperty(t *testing.T) {
	f := func(seed uint32) bool {
		src := rng.New(uint64(seed))
		n := 1 + src.Intn(40)
		sets := make([]mining.FrequentItemset, 0, n)
		used := map[string]bool{}
		for i := 0; i < n; i++ {
			s := itemset.New(itemset.Item(src.Intn(10)), itemset.Item(src.Intn(10)))
			if used[s.Key()] {
				continue
			}
			used[s.Key()] = true
			sets = append(sets, mining.FrequentItemset{Set: s, Support: 1 + src.Intn(6)})
		}
		res := mining.NewResult(1, sets)
		classes := Partition(res)
		if TotalMembers(classes) != res.Len() {
			return false
		}
		prev := -1
		for _, c := range classes {
			if c.Support <= prev {
				return false
			}
			prev = c.Support
			for _, m := range c.Members {
				if sup, ok := res.Support(m); !ok || sup != c.Support {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// referencePartition is the original map-and-sort implementation, kept in the
// test as ground truth for the flat run-based production path.
func referencePartition(res *mining.Result) []Class {
	bySupport := map[int][]itemset.Itemset{}
	for _, fi := range res.Itemsets {
		bySupport[fi.Support] = append(bySupport[fi.Support], fi.Set)
	}
	out := make([]Class, 0, len(bySupport))
	for sup, members := range bySupport {
		sort.Slice(members, func(i, j int) bool {
			if members[i].Len() != members[j].Len() {
				return members[i].Len() < members[j].Len()
			}
			return members[i].Key() < members[j].Key()
		})
		out = append(out, Class{Support: sup, Members: members})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Support < out[j].Support })
	return out
}

func randomResult(src *rng.Source) *mining.Result {
	n := src.Intn(50)
	sets := make([]mining.FrequentItemset, 0, n)
	used := map[string]bool{}
	for i := 0; i < n; i++ {
		items := make([]itemset.Item, 1+src.Intn(4))
		for j := range items {
			items[j] = itemset.Item(src.Intn(300)) // cross the 256 byte-order boundary
		}
		s := itemset.New(items...)
		if used[s.Key()] {
			continue
		}
		used[s.Key()] = true
		sets = append(sets, mining.FrequentItemset{Set: s, Support: 1 + src.Intn(8)})
	}
	return mining.NewResult(1, sets)
}

func classesEqual(t *testing.T, got, want []Class) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d classes, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Support != want[i].Support {
			t.Fatalf("class %d support = %d, want %d", i, got[i].Support, want[i].Support)
		}
		if len(got[i].Members) != len(want[i].Members) {
			t.Fatalf("class %d size = %d, want %d", i, len(got[i].Members), len(want[i].Members))
		}
		for j := range got[i].Members {
			if !got[i].Members[j].Equal(want[i].Members[j]) {
				t.Fatalf("class %d member %d = %v, want %v", i, j, got[i].Members[j], want[i].Members[j])
			}
		}
	}
}

// The flat run-based path must agree byte-for-byte with the original
// map-and-sort implementation: class order, member order, everything.
func TestPartitionMatchesReference(t *testing.T) {
	for trial := 0; trial < 200; trial++ {
		src := rng.New(uint64(trial) * 7919)
		res := randomResult(src)
		classesEqual(t, Partition(res), referencePartition(res))
	}
}

// A result whose Itemsets were reordered after construction (the fields are
// exported) must take the sort-based fallback and still match the reference.
func TestPartitionUnsortedFallback(t *testing.T) {
	for trial := 0; trial < 100; trial++ {
		src := rng.New(uint64(trial)*31 + 5)
		res := randomResult(src)
		if res.Len() < 2 {
			continue
		}
		// Shuffle Itemsets in place.
		for i := res.Len() - 1; i > 0; i-- {
			j := src.Intn(i + 1)
			res.Itemsets[i], res.Itemsets[j] = res.Itemsets[j], res.Itemsets[i]
		}
		classesEqual(t, Partition(res), referencePartition(res))
	}
}

// PartitionInto with recycled scratch must produce output identical to a
// fresh Partition and, once the buffers are warm, allocate nothing.
func TestPartitionIntoReuse(t *testing.T) {
	src := rng.New(99)
	var classes []Class
	var members []itemset.Itemset
	results := make([]*mining.Result, 10)
	for i := range results {
		results[i] = randomResult(src)
	}
	for _, res := range results {
		classes, members = PartitionInto(res, classes, members)
		classesEqual(t, classes, referencePartition(res))
	}
	// Warm: every subsequent partition of the largest result is alloc-free.
	big := results[0]
	for _, res := range results {
		if res.Len() > big.Len() {
			big = res
		}
	}
	classes, members = PartitionInto(big, classes, members)
	allocs := testing.AllocsPerRun(50, func() {
		classes, members = PartitionInto(big, classes, members)
	})
	if allocs != 0 {
		t.Errorf("warm PartitionInto allocated %.1f objects/op, want 0", allocs)
	}
}
