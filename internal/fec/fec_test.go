package fec

import (
	"testing"
	"testing/quick"

	"repro/internal/itemset"
	"repro/internal/mining"
	"repro/internal/rng"
)

func TestPartitionOrdersAndGroups(t *testing.T) {
	res := mining.NewResult(2, []mining.FrequentItemset{
		{Set: itemset.New(1), Support: 5},
		{Set: itemset.New(2), Support: 3},
		{Set: itemset.New(3), Support: 5},
		{Set: itemset.New(1, 2), Support: 3},
		{Set: itemset.New(4), Support: 9},
	})
	classes := Partition(res)
	if len(classes) != 3 {
		t.Fatalf("got %d classes, want 3", len(classes))
	}
	wantSupports := []int{3, 5, 9}
	wantSizes := []int{2, 2, 1}
	for i, c := range classes {
		if c.Support != wantSupports[i] {
			t.Errorf("class %d support = %d, want %d", i, c.Support, wantSupports[i])
		}
		if c.Size() != wantSizes[i] {
			t.Errorf("class %d size = %d, want %d", i, c.Size(), wantSizes[i])
		}
	}
	if TotalMembers(classes) != 5 {
		t.Errorf("TotalMembers = %d", TotalMembers(classes))
	}
}

func TestPartitionEmpty(t *testing.T) {
	classes := Partition(mining.NewResult(2, nil))
	if len(classes) != 0 {
		t.Errorf("empty result produced %d classes", len(classes))
	}
}

func TestPartitionDeterministicMemberOrder(t *testing.T) {
	mk := func() []Class {
		res := mining.NewResult(1, []mining.FrequentItemset{
			{Set: itemset.New(3), Support: 4},
			{Set: itemset.New(1), Support: 4},
			{Set: itemset.New(2, 5), Support: 4},
			{Set: itemset.New(2), Support: 4},
		})
		return Partition(res)
	}
	a, b := mk(), mk()
	for i := range a {
		for j := range a[i].Members {
			if !a[i].Members[j].Equal(b[i].Members[j]) {
				t.Fatal("member order not deterministic")
			}
		}
	}
	// Singletons before pairs, by key.
	m := a[0].Members
	if m[0].Len() != 1 || m[len(m)-1].Len() != 2 {
		t.Errorf("member order wrong: %v", m)
	}
}

// Property: partition is a bijection on itemsets, classes strictly
// increasing, members' supports match the class.
func TestPartitionProperty(t *testing.T) {
	f := func(seed uint32) bool {
		src := rng.New(uint64(seed))
		n := 1 + src.Intn(40)
		sets := make([]mining.FrequentItemset, 0, n)
		used := map[string]bool{}
		for i := 0; i < n; i++ {
			s := itemset.New(itemset.Item(src.Intn(10)), itemset.Item(src.Intn(10)))
			if used[s.Key()] {
				continue
			}
			used[s.Key()] = true
			sets = append(sets, mining.FrequentItemset{Set: s, Support: 1 + src.Intn(6)})
		}
		res := mining.NewResult(1, sets)
		classes := Partition(res)
		if TotalMembers(classes) != res.Len() {
			return false
		}
		prev := -1
		for _, c := range classes {
			if c.Support <= prev {
				return false
			}
			prev = c.Support
			for _, m := range c.Members {
				if sup, ok := res.Support(m); !ok || sup != c.Support {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
